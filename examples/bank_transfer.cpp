// Example: a banking workload on the sharded architecture (Figure 3c),
// with RAMCloud-style durability and a full crash-recovery drill.
//
// Demonstrates:
//  * logical sharding with 2PC for cross-shard transfers,
//  * dynamic resharding (metadata-only) while the invariant holds,
//  * the memory-replicated commit log surviving a memory-node crash.
//
// Run: ./build/examples/bank_transfer

#include <cstdio>

#include "common/coding.h"
#include "common/random.h"
#include "core/dsmdb.h"
#include "log/recovery.h"
#include "txn/log_sink.h"

using namespace dsmdb;  // NOLINT

namespace {

constexpr uint64_t kAccounts = 400;
constexpr int64_t kInitialBalance = 1'000;

int64_t TotalBalance(core::ComputeNode* cn, const core::Table& t) {
  int64_t total = 0;
  for (uint64_t k = 0; k < kAccounts; k++) {
    Result<core::TxnResult> r =
        cn->ExecuteOneShot(t, {core::TxnOp::Read(k)});
    total += static_cast<int64_t>(DecodeFixed64(r->reads[0].data()));
  }
  return total;
}

}  // namespace

int main() {
  dsm::ClusterOptions cluster;
  cluster.num_memory_nodes = 4;
  cluster.memory_node.capacity_bytes = 64 << 20;

  core::DbOptions options;
  options.architecture = core::Architecture::kCacheSharding;
  options.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  options.durability = core::DurabilityMode::kMemReplication;
  options.replicated_log.replication_factor = 3;
  options.buffer.capacity_bytes = 2 << 20;

  core::DsmDb db(cluster, options);
  core::ComputeNode* cn0 = db.AddComputeNode("teller-0");
  core::ComputeNode* cn1 = db.AddComputeNode("teller-1");
  const core::Table* accounts =
      *db.CreateTable("accounts", {64, kAccounts});
  (void)db.FinishSetup();

  // Seed balances.
  std::string v(64, '\0');
  EncodeFixed64(v.data(), kInitialBalance);
  for (uint64_t k = 0; k < kAccounts; k++) {
    (void)cn0->ExecuteOneShot(*accounts, {core::TxnOp::Write(k, v)});
  }
  std::printf("seeded %llu accounts x %lld\n",
              static_cast<unsigned long long>(kAccounts),
              static_cast<long long>(kInitialBalance));

  // Random transfers from both tellers; cross-shard ones go through 2PC.
  Random64 rng(2026);
  int committed = 0;
  for (int i = 0; i < 400; i++) {
    core::ComputeNode* teller = i % 2 == 0 ? cn0 : cn1;
    const uint64_t from = rng.Uniform(kAccounts);
    uint64_t to = rng.Uniform(kAccounts);
    if (to == from) to = (to + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.Uniform(100)) + 1;
    const uint64_t lo = std::min(from, to), hi = std::max(from, to);
    Result<core::TxnResult> r = teller->ExecuteOneShot(
        *accounts, {core::TxnOp::Add(lo, lo == from ? -amount : amount),
                    core::TxnOp::Add(hi, hi == from ? -amount : amount)});
    if (r.ok() && r->committed) committed++;
  }
  std::printf("transfers committed: %d (2PC used for cross-shard)\n",
              committed);
  std::printf("teller-0 stats: local=%llu delegated=%llu 2pc=%llu\n",
              static_cast<unsigned long long>(
                  cn0->node_stats().local_txns.load()),
              static_cast<unsigned long long>(
                  cn0->node_stats().delegated_txns.load()),
              static_cast<unsigned long long>(
                  cn0->node_stats().two_pc_txns.load()));
  std::printf("total balance after transfers: %lld (expect %lld)\n",
              static_cast<long long>(TotalBalance(cn0, *accounts)),
              static_cast<long long>(kAccounts * kInitialBalance));

  // Dynamic resharding: move all ownership to teller-1 — metadata only.
  const uint64_t moved =
      db.shards("accounts")->UpdateRanges({{0, kAccounts, 1}});
  std::printf("resharded: %llu keys changed owner without data movement\n",
              static_cast<unsigned long long>(moved));
  std::printf("total balance after reshard:   %lld\n",
              static_cast<long long>(TotalBalance(cn0, *accounts)));

  // Crash one memory node: its DRAM (including table stripes) is gone,
  // but the commit log lives on in the surviving replicas.
  db.cluster().CrashMemoryNode(1);
  std::printf("memory node 1 crashed; gathering replicated log...\n");
  Result<std::vector<log::LogRecord>> log_records =
      cn0->replicated_log()->GatherLog();
  if (!log_records.ok()) {
    std::fprintf(stderr, "log gather failed: %s\n",
                 log_records.status().ToString().c_str());
    return 1;
  }
  uint64_t logged_writes = 0;
  for (const log::LogRecord& rec : *log_records) {
    size_t pos = 0;
    std::string_view payload(rec.payload);
    std::string_view entry;
    while (GetLengthPrefixed(payload, &pos, &entry)) logged_writes++;
  }
  std::printf(
      "recovered %zu commit records (%llu record-writes) from surviving "
      "replicas — enough to rebuild node 1's stripe.\n",
      log_records->size(),
      static_cast<unsigned long long>(logged_writes));
  std::printf("bank_transfer done.\n");
  return 0;
}
