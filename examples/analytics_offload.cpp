// Example: near-data computing on the DSM layer (Function Offloading
// APIs, Challenge #1 / Challenge #9).
//
// A compute node owns an "orders" array in remote memory and needs a
// filtered aggregate. We run it two ways:
//  1. pull: read the data through the local buffer pool and aggregate on
//     the compute node's fast cores;
//  2. push: offload the aggregate to the memory node's wimpy cores and
//     move only the 16-byte result.
// Then we print the simulated cost of each, at two network speeds.
//
// Run: ./build/examples/analytics_offload

#include <cstdio>

#include "buffer/buffer_pool.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"

using namespace dsmdb;  // NOLINT

namespace {

constexpr uint64_t kOrders = 200'000;  // 8-byte order amounts
constexpr uint32_t kFilterSumFn = 1;

struct Deployment {
  explicit Deployment(double rtt_factor) {
    dsm::ClusterOptions opts;
    opts.num_memory_nodes = 1;
    opts.memory_node.capacity_bytes = 64 << 20;
    opts.memory_node.cpu_speed_factor = 4.0;  // wimpy near-data cores
    opts.network = opts.network.WithRttFactor(rtt_factor);
    cluster = std::make_unique<dsm::Cluster>(opts);
    client = std::make_unique<dsm::DsmClient>(
        cluster.get(), cluster->AddComputeNode("analyst"));
    orders = *client->Alloc(kOrders * 8, 0);

    // Load synthetic order amounts (host-side setup, untimed).
    Random64 rng(7);
    char* base = cluster->memory_node(0)->base() + orders.offset;
    for (uint64_t i = 0; i < kOrders; i++) {
      EncodeFixed64(base + i * 8, rng.Uniform(1'000));
    }

    // Register the near-data filter+sum: SUM(amount WHERE amount >= min).
    const uint64_t data_off = orders.offset;
    cluster->memory_node(0)->RegisterOffload(
        kFilterSumFn,
        [data_off](dsm::MemoryNode& node, std::string_view arg,
                   std::string* out) -> uint64_t {
          const uint64_t n = DecodeFixed64(arg.data());
          const uint64_t min = DecodeFixed64(arg.data() + 8);
          uint64_t sum = 0, matches = 0;
          for (uint64_t i = 0; i < n; i++) {
            const uint64_t a = DecodeFixed64(node.base() + data_off + i * 8);
            if (a >= min) {
              sum += a;
              matches++;
            }
          }
          PutFixed64(out, sum);
          PutFixed64(out, matches);
          return 5 * n;  // ns per tuple before the wimpy-core slowdown
        });
  }

  std::unique_ptr<dsm::Cluster> cluster;
  std::unique_ptr<dsm::DsmClient> client;
  dsm::GlobalAddress orders;
};

}  // namespace

int main() {
  for (double rtt : {1.0, 16.0}) {
    Deployment d(rtt);
    std::printf("--- network: %.0fx ConnectX-6 RTT ---\n", rtt);

    // Pull: scan through the local cache, aggregate on fast cores.
    buffer::BufferPoolOptions popts;
    popts.capacity_bytes = kOrders * 8 * 2;
    popts.charge_policy_overhead = false;
    buffer::BufferPool pool(d.client.get(), popts);
    SimClock::Reset();
    uint64_t pull_sum = 0, pull_matches = 0;
    std::vector<char> chunk(4096);
    for (uint64_t off = 0; off < kOrders * 8; off += chunk.size()) {
      const size_t len = std::min<uint64_t>(chunk.size(), kOrders * 8 - off);
      (void)pool.Read(d.orders.Plus(off), chunk.data(), len);
      for (size_t i = 0; i + 8 <= len; i += 8) {
        const uint64_t a = DecodeFixed64(chunk.data() + i);
        if (a >= 500) {
          pull_sum += a;
          pull_matches++;
        }
      }
      SimClock::Advance(len / 8 * 4);  // fast-core tuple cost
    }
    const double pull_ms = SimClock::Now() / 1e6;

    // Push: near-data filter+sum, result only.
    SimClock::Reset();
    std::string arg, out;
    PutFixed64(&arg, kOrders);
    PutFixed64(&arg, 500);
    if (auto s = d.client->Offload(0, kFilterSumFn, arg, &out); !s.ok()) {
      std::fprintf(stderr, "offload failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const double push_ms = SimClock::Now() / 1e6;
    const uint64_t push_sum = DecodeFixed64(out.data());
    const uint64_t push_matches = DecodeFixed64(out.data() + 8);

    if (pull_sum != push_sum || pull_matches != push_matches) {
      std::fprintf(stderr, "MISMATCH between pull and push results!\n");
      return 1;
    }
    std::printf("query: SUM(amount) WHERE amount >= 500 over %llu orders\n",
                static_cast<unsigned long long>(kOrders));
    std::printf("  result: sum=%llu matches=%llu\n",
                static_cast<unsigned long long>(push_sum),
                static_cast<unsigned long long>(push_matches));
    std::printf("  pull (cache + fast cores): %8.2f ms simulated\n",
                pull_ms);
    std::printf("  push (near-data, wimpy):   %8.2f ms simulated -> %s\n",
                push_ms, push_ms < pull_ms ? "offload wins" : "pull wins");

    // Re-run the pull with a warm cache: the crossover the paper expects.
    SimClock::Reset();
    for (uint64_t off = 0; off < kOrders * 8; off += chunk.size()) {
      const size_t len = std::min<uint64_t>(chunk.size(), kOrders * 8 - off);
      (void)pool.Read(d.orders.Plus(off), chunk.data(), len);
      SimClock::Advance(len / 8 * 4);
    }
    std::printf("  pull again (warm cache):   %8.2f ms simulated\n\n",
                SimClock::Now() / 1e6);
  }
  std::printf("analytics_offload done.\n");
  return 0;
}
