// Example: a multi-node YCSB run comparing the three Figure-3
// architectures end to end, with an indexed (non-dense-key) table lookup
// path via the Sherman B+tree.
//
// Run: ./build/examples/ycsb_cluster

#include <cstdio>
#include <memory>

#include "common/coding.h"
#include "core/dsmdb.h"
#include "index/sherman_btree.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace dsmdb;  // NOLINT

namespace {

void RunArchitecture(core::Architecture arch) {
  dsm::ClusterOptions cluster;
  cluster.num_memory_nodes = 2;
  cluster.memory_node.capacity_bytes = 64 << 20;

  core::DbOptions options;
  options.architecture = arch;
  options.cc.protocol = txn::CcProtocolKind::kOcc;
  options.buffer.capacity_bytes = 4 << 20;
  options.buffer.charge_policy_overhead = false;

  core::DsmDb db(cluster, options);
  std::vector<core::ComputeNode*> nodes = {db.AddComputeNode(),
                                           db.AddComputeNode()};
  const core::Table* t = *db.CreateTable("usertable", {64, 10'000});
  (void)db.FinishSetup();

  workload::YcsbOptions yopts;
  yopts.num_keys = 10'000;
  yopts.write_fraction = 0.2;
  yopts.zipf_theta = 0.9;
  yopts.ops_per_txn = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = 2;
  dropts.txns_per_thread = 300;

  workload::DriverResult result = workload::RunDriver(
      nodes, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        if (wl_tid != tid) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
          wl_tid = tid;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });

  std::printf("%-22s %s\n",
              std::string(core::ArchitectureName(arch)).c_str(),
              result.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("YCSB-B-ish (20%% writes, zipf 0.9), 2 compute nodes x 2 "
              "threads, OCC:\n\n");
  RunArchitecture(core::Architecture::kNoCacheNoSharding);
  RunArchitecture(core::Architecture::kCacheNoSharding);
  RunArchitecture(core::Architecture::kCacheSharding);

  // Secondary-index flavor: map sparse order ids to dense table slots
  // with a Sherman B+tree shared by both compute nodes.
  std::printf("\nsecondary index (Sherman B+tree) over sparse keys:\n");
  dsm::ClusterOptions cluster;
  cluster.num_memory_nodes = 2;
  cluster.memory_node.capacity_bytes = 64 << 20;
  core::DbOptions options;
  options.architecture = core::Architecture::kNoCacheNoSharding;
  core::DsmDb db(cluster, options);
  core::ComputeNode* cn = db.AddComputeNode();
  const core::Table* t = *db.CreateTable("orders", {64, 1'000});
  (void)db.FinishSetup();

  dsm::GlobalAddress meta = *index::ShermanBTree::Create(&db.admin());
  index::ShermanBTree idx(&cn->dsm(), meta, {});
  Random64 rng(1);
  for (uint64_t slot = 0; slot < 1'000; slot++) {
    const uint64_t sparse_key = rng.Next() | 1;  // e.g. an order UUID
    (void)idx.Insert(sparse_key, slot);
    if (slot == 500) {
      // Remember one key to look up later.
      std::string v(64, '\0');
      EncodeFixed64(v.data(), 987);
      (void)cn->ExecuteOneShot(*t, {core::TxnOp::Write(slot, v)});
      std::printf("  inserted order %llu -> slot %llu\n",
                  static_cast<unsigned long long>(sparse_key),
                  static_cast<unsigned long long>(slot));
      Result<uint64_t> found = idx.Search(sparse_key);
      Result<core::TxnResult> row =
          cn->ExecuteOneShot(*t, {core::TxnOp::Read(*found)});
      std::printf("  lookup via index:  slot=%llu value=%llu\n",
                  static_cast<unsigned long long>(*found),
                  static_cast<unsigned long long>(
                      DecodeFixed64(row->reads[0].data())));
    }
  }
  std::printf("  index holds %llu keys; lookups cost ~1 RTT with the "
              "internal-node cache (%zu nodes cached)\n",
              static_cast<unsigned long long>(idx.stats().inserts.load()),
              idx.CachedNodes());
  std::printf("\nycsb_cluster done.\n");
  return 0;
}
