// Quickstart: a minimal DSM-DB program.
//
// Builds the Figure-2 deployment — memory nodes forming a DSM layer,
// compute nodes attached over the (simulated) RDMA fabric — creates a
// table, and runs transactions from two compute nodes against the shared
// memory pool. Demonstrates the multi-master property: both compute nodes
// write, something shared-storage databases reserve for a single primary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/coding.h"
#include "core/dsmdb.h"

using namespace dsmdb;  // NOLINT

int main() {
  // 1. The cluster: 2 memory nodes (big DRAM, wimpy CPUs) + the fabric.
  dsm::ClusterOptions cluster;
  cluster.num_memory_nodes = 2;
  cluster.memory_node.capacity_bytes = 64 << 20;

  // 2. The database: Figure 3b — compute nodes cache hot pages locally
  //    and a directory-based protocol keeps the caches coherent.
  core::DbOptions options;
  options.architecture = core::Architecture::kCacheNoSharding;
  options.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  options.buffer.capacity_bytes = 4 << 20;

  core::DsmDb db(cluster, options);
  core::ComputeNode* cn0 = db.AddComputeNode("compute-0");
  core::ComputeNode* cn1 = db.AddComputeNode("compute-1");

  // 3. DDL: a table of 64-byte records with dense keys [0, 1000).
  const core::Table* accounts = *db.CreateTable("accounts", {64, 1'000});
  if (auto s = db.FinishSetup(); !s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. Compute node 0 writes a record (multi-master: any node can).
  std::string value(64, '\0');
  EncodeFixed64(value.data(), 4242);
  Result<core::TxnResult> w =
      cn0->ExecuteOneShot(*accounts, {core::TxnOp::Write(7, value)});
  if (!w.ok() || !w->committed) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  std::printf("compute-0 committed: accounts[7] = 4242\n");

  // 5. Compute node 1 reads it back through the shared DSM layer.
  Result<core::TxnResult> r =
      cn1->ExecuteOneShot(*accounts, {core::TxnOp::Read(7)});
  std::printf("compute-1 read:      accounts[7] = %llu\n",
              static_cast<unsigned long long>(
                  DecodeFixed64(r->reads[0].data())));

  // 6. An interactive transaction (read-modify-write) on node 1.
  auto txn = *cn1->Begin();
  std::string cur;
  (void)txn->Read(accounts->RefFor(7), &cur);
  EncodeFixed64(cur.data(), DecodeFixed64(cur.data()) + 1);
  (void)txn->Write(accounts->RefFor(7), cur);
  if (txn->Commit().ok()) {
    std::printf("compute-1 committed: accounts[7] += 1\n");
  }

  Result<core::TxnResult> check =
      cn0->ExecuteOneShot(*accounts, {core::TxnOp::Read(7)});
  std::printf("compute-0 read:      accounts[7] = %llu\n",
              static_cast<unsigned long long>(
                  DecodeFixed64(check->reads[0].data())));
  std::printf("quickstart done.\n");
  return 0;
}
