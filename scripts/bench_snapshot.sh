#!/usr/bin/env bash
# Runs the tracked benches (E2 durability, E4 CC protocols, E11 commit,
# E13 raw verbs) and folds their stats exports into one snapshot file,
# BENCH_<label>.json, at the repo root. Each BenchEnv bench writes its full
# stats JSON (counters, histograms, latency_breakdown, timeseries) to the
# file named by --stats=<file>; this script collects those per-bench files.
#
# Compare two snapshots with scripts/bench_compare.py (exits nonzero on a
# >10% throughput or p50 regression).
#
# Usage: scripts/bench_snapshot.sh [build-dir] [label]
#   default build-dir: build     default label: PR4
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
label="${2:-PR4}"
out="$repo_root/BENCH_${label}.json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

declare -A benches=(
  [E2_durability]=bench_durability
  [E4_cc_protocols]=bench_cc_protocols
  [E11_commit]=bench_commit
)

for key in "${!benches[@]}"; do
  bin="$build_dir/bench/${benches[$key]}"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  echo "== running ${benches[$key]} =="
  "$bin" --stats="$tmp_dir/$key.json" >"$tmp_dir/$key.out" 2>/dev/null
  if [[ ! -s "$tmp_dir/$key.json" ]]; then
    # Older bench binaries without --stats print a STATS_JSON line instead.
    grep '^STATS_JSON ' "$tmp_dir/$key.out" | tail -1 | cut -d' ' -f2- \
      >"$tmp_dir/$key.json"
  fi
done

# E13 is a google-benchmark binary (no BenchEnv stats export); capture its
# native JSON report, which carries the pipeline sweep's closed_form_pct_err
# counters that acceptance checks against.
echo "== running bench_rdma_verbs =="
"$build_dir/bench/bench_rdma_verbs" --benchmark_min_time=0.05 \
  --benchmark_format=json >"$tmp_dir/E13_rdma_verbs.json" 2>/dev/null

python3 - "$tmp_dir" "$out" "$label" <<'PY'
import json
import pathlib
import sys

tmp_dir, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
label = sys.argv[3]
snapshot = {
    "pr": label,
    "stats": {},
}
for f in sorted(tmp_dir.glob("*.json")):
    snapshot["stats"][f.stem] = json.loads(f.read_text())
out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
print(f"wrote {out}")
PY
