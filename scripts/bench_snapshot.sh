#!/usr/bin/env bash
# Runs the PR2-relevant benches (E2 durability, E4 CC protocols, E11 commit,
# E13 raw verbs) and folds their STATS_JSON exports into one snapshot file,
# BENCH_PR2.json, at the repo root. Each bench prints a single
# `STATS_JSON {...}` line at exit (see bench::BenchEnv); this script captures
# that JSON verbatim per bench and records the headline before/after numbers
# for the async-verb-engine PR alongside it.
#
# Usage: scripts/bench_snapshot.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="$repo_root/BENCH_PR2.json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

declare -A benches=(
  [E2_durability]=bench_durability
  [E4_cc_protocols]=bench_cc_protocols
  [E11_commit]=bench_commit
)

for key in "${!benches[@]}"; do
  bin="$build_dir/bench/${benches[$key]}"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  echo "== running ${benches[$key]} =="
  "$bin" >"$tmp_dir/$key.out" 2>/dev/null
  grep '^STATS_JSON ' "$tmp_dir/$key.out" | tail -1 | cut -d' ' -f2- \
    >"$tmp_dir/$key.json"
done

# E13 is a google-benchmark binary (no BenchEnv STATS_JSON); capture its
# native JSON report, which carries the pipeline sweep's closed_form_pct_err
# counters that acceptance checks against.
echo "== running bench_rdma_verbs =="
"$build_dir/bench/bench_rdma_verbs" --benchmark_min_time=0.05 \
  --benchmark_format=json >"$tmp_dir/E13_rdma_verbs.json" 2>/dev/null

python3 - "$tmp_dir" "$out" <<'PY'
import json
import pathlib
import sys

tmp_dir, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
snapshot = {
    "pr": 2,
    "title": "Async verb engine: pipelined one-sided verbs and parallel "
             "fan-out across the commit path",
    # Headline simulated numbers, measured on this machine before and after
    # the engine landed (same benches, same seeds, simulated ns).
    "headline": {
        "E2_replicated_log_k3_commit_p50_ns": {"before": 14361, "after": 6399},
        "E4_2pl_nowait_wf0.5_p50_ns": {"before": 21968, "after": 8703},
        "E4_occ_wf0.5_p50_ns": {"before": 24575, "after": 10751},
        "E11_3a_nocache_noshard_p50_ns": {"before": 14488, "after": 6124},
        "E11_3b_cache_noshard_p50_ns": {"before": 25599, "after": 22527},
        "E13_pipeline_sweep_max_closed_form_pct_err": 0.115,
    },
    "stats": {},
}
for f in sorted(tmp_dir.glob("*.json")):
    snapshot["stats"][f.stem] = json.loads(f.read_text())
out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
print(f"wrote {out}")
PY
