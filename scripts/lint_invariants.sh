#!/usr/bin/env bash
# lint_invariants.sh — static lints for repo protocol invariants that the
# runtime checker (src/check) can only catch when the offending path is
# actually executed. These are lexical approximations (brace/paren depth
# tracking, not a real parser); a finding can be suppressed on its line —
# or on the line that opens the offending scope — with:
#
#     // lint-allow: <rule>
#
# Rules:
#   call-under-lock    Two-sided Fabric::Call posted while a blocking lock
#                      (std::lock_guard / unique_lock / scoped_lock /
#                      shared_lock) is held in an enclosing scope that is
#                      not covered by a check::NoCallZone. The handler may
#                      itself need the lock => deadlock under sim scheduling.
#   simwait-in-handler rt::SimWait inside an RPC handler registration
#                      (RegisterRpcHandler lambda) without a SimNoPark in
#                      the same region. A parked handler blocks its caller's
#                      completion and can deadlock the single-runner baton.
#   simclock-set       Direct SimClock::Set outside the two sanctioned
#                      scopes in src/common/sim_clock.h (and the definition
#                      in sim_clock.cc). Everything else must go through
#                      Reset/Advance/AdvanceTo so time never moves backwards
#                      mid-run.
#
# Exit status: 0 when clean, 1 when any rule fires. Used as a CI step and
# from check_matrix.sh.
set -u

cd "$(dirname "$0")/.." || exit 2

files=()
while IFS= read -r f; do files+=("$f"); done \
  < <(find src -name '*.cc' -o -name '*.h' | sort)

fail=0

# ---------------------------------------------------------------------------
# Rule 1: call-under-lock
# ---------------------------------------------------------------------------
# Awk tracks brace depth per file. A lock declaration arms the rule at its
# depth; leaving that depth disarms it. NoCallZone covers its own scope the
# same way (inside a NoCallZone the runtime checker already flags the Call,
# so the lint only reports the windows runtime checking cannot see).
rule1_out=$(awk '
  FNR == 1 { depth = 0; nlock = 0; nzone = 0 }
  {
    line = $0
    sub(/\/\/.*lint-allow: *call-under-lock.*/, "LINT_ALLOW", line)
    code = line
    sub(/\/\/.*/, "", code)   # strip trailing comments before counting braces
    if (match(code, /std::(lock_guard|unique_lock|scoped_lock|shared_lock)[< ]/) &&
        line !~ /LINT_ALLOW/) {
      # Arm at the depth where the declaration actually sits, accounting for
      # braces earlier on the same line ("{ std::lock_guard ... }" idiom).
      pre = substr(code, 1, RSTART - 1)
      d = depth + gsub(/{/, "{", pre) - gsub(/}/, "}", pre)
      lock_depth[nlock++] = d
    }
    if (match(code, /NoCallZone +[A-Za-z_]+ *\(/)) {
      pre = substr(code, 1, RSTART - 1)
      zone_depth[nzone++] = depth + gsub(/{/, "{", pre) - gsub(/}/, "}", pre)
    }
    if (code ~ /(\.|->)Call *\(/ && line !~ /LINT_ALLOW/ &&
        nlock > 0 && nzone == 0) {
      printf "%s:%d: Fabric::Call while a blocking lock is held (no NoCallZone) [call-under-lock]\n", FILENAME, FNR
    }
    n = gsub(/{/, "{", code); depth += n
    n = gsub(/}/, "}", code); depth -= n
    while (nlock > 0 && depth < lock_depth[nlock - 1]) nlock--
    while (nzone > 0 && depth < zone_depth[nzone - 1]) nzone--
  }
' "${files[@]}")
if [[ -n "$rule1_out" ]]; then
  echo "$rule1_out"
  fail=1
fi

# ---------------------------------------------------------------------------
# Rule 2: simwait-in-handler
# ---------------------------------------------------------------------------
# A RegisterRpcHandler(...) statement opens a region tracked by paren depth;
# SimWait inside it is flagged unless the same region declares a SimNoPark.
# (Handlers that delegate to out-of-line functions are covered at runtime by
# the scheduler''s park accounting; this catches the inline-lambda case.)
rule2_out=$(awk '
  FNR == 1 { inreg = 0; pdepth = 0; sawnopark = 0; nwait = 0; start = 0 }
  {
    line = $0
    code = line
    sub(/\/\/.*/, "", code)
    if (!inreg && code ~ /RegisterRpcHandler *\(/) {
      inreg = 1; pdepth = 0; sawnopark = 0; nwait = 0; start = FNR
    }
    if (inreg) {
      if (code ~ /SimNoPark/) sawnopark = 1
      if (code ~ /SimWait *\(/ && line !~ /lint-allow: *simwait-in-handler/) {
        wait_line[nwait++] = FNR
      }
      n = gsub(/\(/, "(", code); pdepth += n
      n = gsub(/\)/, ")", code); pdepth -= n
      if (pdepth <= 0 && FNR >= start) {
        if (!sawnopark) {
          for (i = 0; i < nwait; i++) {
            printf "%s:%d: SimWait inside an RPC handler registration without SimNoPark [simwait-in-handler]\n", FILENAME, wait_line[i]
          }
        }
        inreg = 0
      }
    }
  }
' "${files[@]}")
if [[ -n "$rule2_out" ]]; then
  echo "$rule2_out"
  fail=1
fi

# ---------------------------------------------------------------------------
# Rule 3: simclock-set
# ---------------------------------------------------------------------------
# The only sanctioned callers live in src/common/sim_clock.h (the two scope
# guards that save/restore t0) plus the definition in sim_clock.cc.
rule3_out=$(grep -n 'SimClock::Set *(' \
    $(printf '%s\n' "${files[@]}" | grep -v 'src/common/sim_clock\.\(h\|cc\)$') \
    /dev/null \
  | grep -v 'lint-allow: *simclock-set')
if [[ -n "$rule3_out" ]]; then
  echo "$rule3_out" | sed 's/$/: direct SimClock::Set outside sim_clock.h sanctioned scopes [simclock-set]/'
  fail=1
fi

if [[ $fail -eq 0 ]]; then
  echo "lint_invariants: OK (${#files[@]} files, 3 rules)"
else
  echo "lint_invariants: FAIL"
fi
exit $fail
