#!/usr/bin/env python3
"""Compares two BENCH_*.json snapshots (see scripts/bench_snapshot.sh).

Walks the per-bench stats blocks shared by both snapshots and reports the
delta of every throughput scalar (``*.throughput_tps``) and every latency
histogram p50. Exits nonzero when any throughput drops, or any p50 rises,
by more than the regression threshold (default 10%). Histograms with fewer
than --min-count samples on either side are skipped: a p50 over a handful
of aborted attempts is scheduling noise, not a regression signal.
Metrics present on only one side are listed explicitly — "new (no
baseline)" or "dropped by candidate" — but never gate the exit code.

A markdown summary table is written next to the candidate JSON
(``<candidate>.compare.md``) so CI runs are reviewable without re-running
locally; disable with --no-markdown.

Usage: scripts/bench_compare.py BASELINE.json CANDIDATE.json
       [--threshold=0.10] [--min-count=100] [--no-markdown]
"""

import json
import os
import sys

THROUGHPUT_SUFFIX = ".throughput_tps"
LATENCY_SUFFIX = "_ns"


def load(path):
    with open(path) as f:
        snap = json.load(f)
    # Accept both a full snapshot ({"stats": {bench: {...}}}) and a single
    # bench's --stats file ({"counters": ..., "histograms": ...}).
    if "stats" in snap:
        return snap["stats"]
    return {"bench": snap}


def walk(stats, min_count):
    """Yields (metric_name, value, kind) with kind in {tput, p50}."""
    for bench, block in sorted(stats.items()):
        if not isinstance(block, dict):
            continue
        for name, value in sorted(block.get("scalars", {}).items()):
            if name.endswith(THROUGHPUT_SUFFIX):
                yield f"{bench}:{name}", float(value), "tput"
        for name, hist in sorted(block.get("histograms", {}).items()):
            if name.endswith(LATENCY_SUFFIX) and isinstance(hist, dict):
                p50 = hist.get("p50")
                if (p50 is not None and float(p50) > 0
                        and float(hist.get("count", 0)) >= min_count):
                    yield f"{bench}:{name}:p50", float(p50), "p50"


def write_markdown(path, base_path, cand_path, threshold, rows,
                   regressions, only_base=(), only_cand=(), base=None,
                   cand=None):
    """Emits the comparison as a reviewable markdown table."""
    lines = [
        "# Bench comparison",
        "",
        f"- baseline: `{base_path}`",
        f"- candidate: `{cand_path}`",
        f"- threshold: {threshold:.0%}",
        f"- verdict: {'**FAIL**' if regressions else 'OK'}",
        "",
        "| metric | kind | base | candidate | delta | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for key, kind, b, c, delta, regressed in rows:
        status = "**REGRESSION**" if regressed else ""
        lines.append(f"| `{key}` | {kind} | {b:.1f} | {c:.1f} "
                     f"| {delta:+.1%} | {status} |")
    # Asymmetric metrics get their own rows so a new bench (or a dropped
    # one) is visible in review instead of silently shrinking the table.
    for key in only_cand:
        v, kind = cand[key]
        lines.append(f"| `{key}` | {kind} | — | {v:.1f} | — | "
                     "new (no baseline) |")
    for key in only_base:
        v, kind = base[key]
        lines.append(f"| `{key}` | {kind} | {v:.1f} | — | — | "
                     "dropped by candidate |")
    if regressions:
        lines += ["", "## Regressed metrics", ""]
        for key, kind, b, c, delta in regressions:
            direction = "dropped" if kind == "tput" else "rose"
            lines.append(f"- `{key}` ({kind}) {direction} {abs(delta):.1%}: "
                         f"{b:.1f} -> {c:.1f} (gate: {threshold:.0%})")
    lines.append("")
    with open(path, "w") as f:
        f.write("\n".join(lines))


def main(argv):
    threshold = 0.10
    min_count = 100
    markdown = True
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--min-count="):
            min_count = float(arg.split("=", 1)[1])
        elif arg == "--no-markdown":
            markdown = False
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    base = dict(
        (k, (v, kind)) for k, v, kind in walk(load(paths[0]), min_count))
    cand = dict(
        (k, (v, kind)) for k, v, kind in walk(load(paths[1]), min_count))
    shared = sorted(set(base) & set(cand))
    if not shared:
        print("error: the snapshots share no comparable metrics",
              file=sys.stderr)
        return 2

    regressions = []
    rows = []
    width = max(len(k) for k in shared)
    print(f"comparing {paths[0]} (base) -> {paths[1]} (candidate), "
          f"threshold {threshold:.0%}\n")
    for key in shared:
        b, kind = base[key]
        c, _ = cand[key]
        if b == 0:
            continue
        delta = (c - b) / b
        # Throughput regresses when it drops; latency when it rises.
        regressed = (kind == "tput" and delta < -threshold) or (
            kind == "p50" and delta > threshold)
        flag = "  REGRESSION" if regressed else ""
        print(f"  {key:<{width}}  {b:>14.1f} -> {c:>14.1f}  "
              f"{delta:+7.1%}{flag}")
        rows.append((key, kind, b, c, delta, regressed))
        if regressed:
            regressions.append((key, kind, b, c, delta))

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"\n  {len(only_base)} metric(s) only in base "
              "(dropped by candidate):")
        for key in only_base:
            v, kind = base[key]
            print(f"    {key} ({kind}, base {v:.1f})")
    if only_cand:
        print(f"\n  {len(only_cand)} metric(s) new in candidate "
              "(no baseline, not gated):")
        for key in only_cand:
            v, kind = cand[key]
            print(f"    {key} ({kind}, candidate {v:.1f})")

    if markdown:
        md_path = os.path.splitext(paths[1])[0] + ".compare.md"
        write_markdown(md_path, paths[0], paths[1], threshold, rows,
                       regressions, only_base, only_cand, base, cand)
        print(f"\nmarkdown summary: {md_path}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed beyond "
              f"{threshold:.0%}:")
        for key, kind, b, c, delta in regressions:
            direction = ("throughput dropped" if kind == "tput"
                         else "p50 latency rose")
            print(f"  {key}: {direction} {abs(delta):.1%} "
                  f"({b:.1f} -> {c:.1f}, gate {threshold:.0%})")
        return 1
    print(f"\nOK: no regression beyond {threshold:.0%} across "
          f"{len(shared)} shared metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
