#!/usr/bin/env bash
# One entry point for the verification matrix: builds and runs the tier-1
# tests under every hardening config and prints a summary table.
#
#   plain   - stock RelWithDebInfo build, full ctest suite
#   tsan    - -fsanitize=thread
#   asan    - -fsanitize=address
#   ubsan   - -fsanitize=undefined -fno-sanitize-recover=all
#   check   - -DDSMDB_CHECK=on (protocol-level sim-TSan + lockdep), full suite
#   explore - -DDSMDB_CHECK=on; invariant lint + isolation-oracle PCT sweep
#             (check_explore: 200 schedules x 2 seeds per protocol, with and
#             without fault injection, plus both seeded-broken variants which
#             must be *detected*); no ctest
#   bench   - plain build; bench_snapshot vs the newest BENCH_PR*.json via
#             bench_compare.py (>10% throughput drop / p50 rise gates).
#             Opt-in: not part of the default config list (pick the baseline
#             deliberately), but its FAIL propagates through the summary
#             table and the exit code exactly like every other config.
#
# Usage: scripts/check_matrix.sh [config ...]
#   default: plain tsan asan ubsan check explore
#
# Environment:
#   TESTS=<ctest -R regex>   restrict which tests run (sanitizer configs
#                            default to the concurrency-heavy suites; plain
#                            and check always run the full suite unless TESTS
#                            is set)
#   JOBS=<n>                 parallelism (default: nproc)
#   EXPLORE_SCHEDULES=<n>    schedules per (protocol, seed) for the explore
#                            config (default 200 = the acceptance bar;
#                            use 20 for a quick local smoke)
#   BENCH_BASELINE=<file>    snapshot to compare against for the bench
#                            config (default: newest BENCH_PR*.json)
#
# Tier-1 runtime budget (1-core container, RelWithDebInfo): plain ctest
# ~2 min after a ~8 min build; the check build adds ~20% compile time and
# ~2x test runtime; the explore sweep itself is ~2 min at 200 schedules
# (6 protocols x 2 seeds x 2 fault modes ~ 4800 schedule-runs at ~25 ms
# each) — budget ~12 min per config end-to-end, dominated by the build.
#
# Exit status is nonzero if any selected config fails; the final exit is
# recomputed from the summary table itself so a FAIL row can never coexist
# with exit 0. CI's sanitizer jobs call this script with a single config
# argument each so failures attribute to the right job.
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
configs=("$@")
if [[ ${#configs[@]} -eq 0 ]]; then
  configs=(plain tsan asan ubsan check explore)
fi

# Sanitizer runs are slow; by default point them at the suites that exercise
# the fabric, the async engine, and all six CC protocols. Override via TESTS.
sanitizer_default_filter='RdmaFabricTest|AsyncEngineTest|TraceTest|Protocols/|Sched|Chaos|Fault'

cmake_args_for() {
  case "$1" in
    plain) echo "" ;;
    tsan)  echo "-DDSMDB_SANITIZE=thread" ;;
    asan)  echo "-DDSMDB_SANITIZE=address" ;;
    ubsan) echo "-DDSMDB_SANITIZE=undefined" ;;
    check) echo "-DDSMDB_CHECK=on" ;;
    explore) echo "-DDSMDB_CHECK=on" ;;
    bench) echo "" ;;
    *) echo "error: unknown config '$1'" \
            "(want plain|tsan|asan|ubsan|check|explore|bench)" >&2
       return 1 ;;
  esac
}

declare -A results
overall=0

# Isolation-oracle sweep (the `explore` config): the invariant lint, then
# the PCT schedule explorer over all six protocols — clean runs must stay
# clean (with and without fault injection) and the two seeded-broken
# variants must each be flagged. Every step's exit status gates the row.
run_explore() {
  local build_dir="$1"
  local explore="$build_dir/bench/check_explore"
  local n="${EXPLORE_SCHEDULES:-200}"
  "$repo_root/scripts/lint_invariants.sh" || return 1
  [[ -x "$explore" ]] || { echo "error: $explore not built" >&2; return 1; }
  "$explore" --protocol=all --schedules="$n" --seeds=1,2 || return 1
  "$explore" --protocol=all --schedules="$n" --seeds=1,2 --faults=1 \
    || return 1
  "$explore" --protocol=2pl-nowait --broken=2pl_early_release \
      --expect-anomaly --schedules=50 --seeds=1 || return 1
  "$explore" --protocol=occ --broken=occ_skip_recheck \
      --expect-anomaly --schedules=50 --seeds=1 || return 1
}

# Bench regression gate (the `bench` config): snapshot the tracked benches
# from this build and diff against the baseline with bench_compare.py. Its
# nonzero exit (any gated >10% regression) is the row's result — the
# summary table and the script exit both reflect it.
run_bench() {
  local build_dir="$1"
  local baseline="${BENCH_BASELINE:-}"
  if [[ -z "$baseline" ]]; then
    baseline="$(ls -1 "$repo_root"/BENCH_PR*.json 2>/dev/null | sort -V | tail -1)"
  fi
  if [[ -z "$baseline" || ! -f "$baseline" ]]; then
    echo "error: no BENCH_PR*.json baseline found (set BENCH_BASELINE)" >&2
    return 1
  fi
  echo "bench gate baseline: $baseline"
  "$repo_root/scripts/bench_snapshot.sh" "$build_dir" matrix || return 1
  python3 "$repo_root/scripts/bench_compare.py" \
      "$baseline" "$repo_root/BENCH_matrix.json"
}

for cfg in "${configs[@]}"; do
  extra="$(cmake_args_for "$cfg")" || { results[$cfg]="BAD-CONFIG"; overall=1; continue; }
  build_dir="$repo_root/build-matrix-$cfg"
  echo "=============================================================="
  echo "== config: $cfg  (build dir: $build_dir)"
  echo "=============================================================="

  # shellcheck disable=SC2086  # $extra is intentionally word-split
  if ! cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo $extra >"$build_dir.configure.log" 2>&1; then
    echo "configure FAILED (see $build_dir.configure.log)"
    results[$cfg]="CONFIGURE-FAIL"; overall=1; continue
  fi
  if ! cmake --build "$build_dir" -j "$jobs" >"$build_dir.build.log" 2>&1; then
    echo "build FAILED (tail of $build_dir.build.log):"
    tail -20 "$build_dir.build.log"
    results[$cfg]="BUILD-FAIL"; overall=1; continue
  fi

  case "$cfg" in
    explore)
      if run_explore "$build_dir"; then
        results[$cfg]="PASS"
      else
        results[$cfg]="EXPLORE-FAIL"
      fi
      continue ;;
    bench)
      if run_bench "$build_dir"; then
        results[$cfg]="PASS"
      else
        results[$cfg]="BENCH-FAIL"
      fi
      continue ;;
  esac

  filter="${TESTS:-}"
  if [[ -z "$filter" ]]; then
    case "$cfg" in
      tsan|asan|ubsan) filter="$sanitizer_default_filter" ;;
    esac
  fi
  ctest_args=(--test-dir "$build_dir" --output-on-failure -j "$jobs")
  [[ -n "$filter" ]] && ctest_args+=(-R "$filter")

  if ctest "${ctest_args[@]}"; then
    results[$cfg]="PASS"
  else
    results[$cfg]="TEST-FAIL"
  fi
done

echo
echo "==================== check matrix summary ===================="
printf '%-8s %s\n' "config" "result"
printf '%-8s %s\n' "------" "------"
# The exit code is recomputed from the table rows themselves: any row that
# is not exactly PASS fails the run, so the table can never print a failure
# while the script exits 0 (the bug this replaces: per-step `overall=1`
# bookkeeping drifted out of sync with the rows as steps were added).
for cfg in "${configs[@]}"; do
  printf '%-8s %s\n' "$cfg" "${results[$cfg]:-SKIPPED}"
  [[ "${results[$cfg]:-SKIPPED}" == "PASS" ]] || overall=1
done
echo "=============================================================="
exit "$overall"
