#!/usr/bin/env bash
# One entry point for the verification matrix: builds and runs the tier-1
# tests under every hardening config and prints a summary table.
#
#   plain  - stock RelWithDebInfo build, full ctest suite
#   tsan   - -fsanitize=thread
#   asan   - -fsanitize=address
#   ubsan  - -fsanitize=undefined -fno-sanitize-recover=all
#   check  - -DDSMDB_CHECK=on (protocol-level sim-TSan + lockdep), full suite
#
# Usage: scripts/check_matrix.sh [config ...]
#   default: all five configs
#
# Environment:
#   TESTS=<ctest -R regex>   restrict which tests run (sanitizer configs
#                            default to the concurrency-heavy suites; plain
#                            and check always run the full suite unless TESTS
#                            is set)
#   JOBS=<n>                 parallelism (default: nproc)
#
# Exit status is nonzero if any selected config fails. CI's sanitizer jobs
# call this script with a single config argument each so failures attribute
# to the right job.
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"
configs=("$@")
if [[ ${#configs[@]} -eq 0 ]]; then
  configs=(plain tsan asan ubsan check)
fi

# Sanitizer runs are slow; by default point them at the suites that exercise
# the fabric, the async engine, and all six CC protocols. Override via TESTS.
sanitizer_default_filter='RdmaFabricTest|AsyncEngineTest|TraceTest|Protocols/|Sched|Chaos|Fault'

cmake_args_for() {
  case "$1" in
    plain) echo "" ;;
    tsan)  echo "-DDSMDB_SANITIZE=thread" ;;
    asan)  echo "-DDSMDB_SANITIZE=address" ;;
    ubsan) echo "-DDSMDB_SANITIZE=undefined" ;;
    check) echo "-DDSMDB_CHECK=on" ;;
    *) echo "error: unknown config '$1' (want plain|tsan|asan|ubsan|check)" >&2
       return 1 ;;
  esac
}

declare -A results
overall=0

for cfg in "${configs[@]}"; do
  extra="$(cmake_args_for "$cfg")" || { results[$cfg]="BAD-CONFIG"; overall=1; continue; }
  build_dir="$repo_root/build-matrix-$cfg"
  echo "=============================================================="
  echo "== config: $cfg  (build dir: $build_dir)"
  echo "=============================================================="

  # shellcheck disable=SC2086  # $extra is intentionally word-split
  if ! cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo $extra >"$build_dir.configure.log" 2>&1; then
    echo "configure FAILED (see $build_dir.configure.log)"
    results[$cfg]="CONFIGURE-FAIL"; overall=1; continue
  fi
  if ! cmake --build "$build_dir" -j "$jobs" >"$build_dir.build.log" 2>&1; then
    echo "build FAILED (tail of $build_dir.build.log):"
    tail -20 "$build_dir.build.log"
    results[$cfg]="BUILD-FAIL"; overall=1; continue
  fi

  filter="${TESTS:-}"
  if [[ -z "$filter" ]]; then
    case "$cfg" in
      tsan|asan|ubsan) filter="$sanitizer_default_filter" ;;
    esac
  fi
  ctest_args=(--test-dir "$build_dir" --output-on-failure -j "$jobs")
  [[ -n "$filter" ]] && ctest_args+=(-R "$filter")

  if ctest "${ctest_args[@]}"; then
    results[$cfg]="PASS"
  else
    results[$cfg]="TEST-FAIL"; overall=1
  fi
done

echo
echo "==================== check matrix summary ===================="
printf '%-8s %s\n' "config" "result"
printf '%-8s %s\n' "------" "------"
for cfg in "${configs[@]}"; do
  printf '%-8s %s\n' "$cfg" "${results[$cfg]:-SKIPPED}"
done
echo "=============================================================="
exit "$overall"
