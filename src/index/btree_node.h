#ifndef DSMDB_INDEX_BTREE_NODE_H_
#define DSMDB_INDEX_BTREE_NODE_H_

#include <cstdint>
#include <cstring>

#include "common/coding.h"
#include "dsm/gaddr.h"

namespace dsmdb::index {

/// On-DSM B+tree node layout (Sherman-style [62]): the lock word and two
/// version words bracket the body so a single one-sided READ can be
/// validated like a seqlock.
///
///   0   lock word      (8)  RDMA CAS spinlock for writers
///   8   header version (8)  writer bumps BEFORE mutating the body
///   16  meta           (8)  is_leaf | level | count
///   24  right sibling  (8)  packed GlobalAddress (B-link pointer)
///   32  high key       (8)  fence: all keys in this node are < high_key
///   40  entries        (16 * kNodeCap)  sorted (key, child/value) pairs
///   ..  footer version (8)  writer bumps AFTER mutating the body
///
/// A read snapshot is consistent iff lock == 0 and header == footer.
///
/// Entry conventions: an internal node stores (separator key, child addr)
/// pairs where the separator is the smallest key reachable via the child;
/// entry 0 of a node spanning the low end uses key 0 as sentinel. A leaf
/// stores (key, value) pairs.
inline constexpr uint32_t kNodeCap = 32;

inline constexpr uint64_t kOffLock = 0;
inline constexpr uint64_t kOffHeaderVer = 8;
inline constexpr uint64_t kOffMeta = 16;
inline constexpr uint64_t kOffSibling = 24;
inline constexpr uint64_t kOffHighKey = 32;
inline constexpr uint64_t kOffEntries = 40;
inline constexpr uint64_t kOffFooterVer = kOffEntries + 16ULL * kNodeCap;
inline constexpr uint64_t kNodeBytes = kOffFooterVer + 8;

/// Decoded node image (host-side copy of one DSM node).
struct BTreeNode {
  uint64_t lock = 0;
  uint64_t version = 0;
  bool is_leaf = true;
  uint8_t level = 0;
  uint32_t count = 0;
  uint64_t sibling = 0;   // packed GlobalAddress, 0 = none
  uint64_t high_key = UINT64_MAX;
  uint64_t keys[kNodeCap] = {};
  uint64_t vals[kNodeCap] = {};

  /// Parses `buf` (kNodeBytes). Returns false if the snapshot is torn
  /// (locked or header/footer mismatch). Pass `ignore_lock` when the
  /// caller itself holds the node lock.
  bool Decode(const char* buf, bool ignore_lock = false) {
    lock = DecodeFixed64(buf + kOffLock);
    version = DecodeFixed64(buf + kOffHeaderVer);
    const uint64_t footer = DecodeFixed64(buf + kOffFooterVer);
    if ((!ignore_lock && lock != 0) || version != footer) return false;
    const uint64_t meta = DecodeFixed64(buf + kOffMeta);
    is_leaf = (meta & 1) != 0;
    level = static_cast<uint8_t>((meta >> 8) & 0xFF);
    count = static_cast<uint32_t>(meta >> 32);
    if (count > kNodeCap) return false;
    sibling = DecodeFixed64(buf + kOffSibling);
    high_key = DecodeFixed64(buf + kOffHighKey);
    for (uint32_t i = 0; i < count; i++) {
      keys[i] = DecodeFixed64(buf + kOffEntries + 16ULL * i);
      vals[i] = DecodeFixed64(buf + kOffEntries + 16ULL * i + 8);
    }
    return true;
  }

  /// Serializes the *body* (meta..entries) into `buf` (kNodeBytes);
  /// lock/version words are managed by the writer protocol.
  void EncodeBody(char* buf) const {
    const uint64_t meta = (is_leaf ? 1ULL : 0ULL) |
                          (static_cast<uint64_t>(level) << 8) |
                          (static_cast<uint64_t>(count) << 32);
    EncodeFixed64(buf + kOffMeta, meta);
    EncodeFixed64(buf + kOffSibling, sibling);
    EncodeFixed64(buf + kOffHighKey, high_key);
    for (uint32_t i = 0; i < count; i++) {
      EncodeFixed64(buf + kOffEntries + 16ULL * i, keys[i]);
      EncodeFixed64(buf + kOffEntries + 16ULL * i + 8, vals[i]);
    }
    // Zero the unused tail so snapshots are deterministic.
    for (uint32_t i = count; i < kNodeCap; i++) {
      EncodeFixed64(buf + kOffEntries + 16ULL * i, 0);
      EncodeFixed64(buf + kOffEntries + 16ULL * i + 8, 0);
    }
  }

  /// Index of the child to descend for `key` (internal nodes):
  /// the last entry with keys[i] <= key.
  uint32_t ChildIndex(uint64_t key) const {
    uint32_t lo = 0;
    for (uint32_t i = 1; i < count; i++) {
      if (keys[i] <= key) {
        lo = i;
      } else {
        break;
      }
    }
    return lo;
  }

  /// Position of `key` in a leaf, or count if absent.
  uint32_t Find(uint64_t key) const {
    for (uint32_t i = 0; i < count; i++) {
      if (keys[i] == key) return i;
    }
    return count;
  }
};

}  // namespace dsmdb::index

#endif  // DSMDB_INDEX_BTREE_NODE_H_
