#ifndef DSMDB_INDEX_RACE_HASH_H_
#define DSMDB_INDEX_RACE_HASH_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"

namespace dsmdb::index {

struct RaceHashStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> cas_retries{0};
  std::atomic<uint64_t> full_buckets{0};
};

/// One-sided RDMA hash index in the spirit of RACE [76]:
///  * every key hashes to TWO candidate buckets (d-choice balancing);
///  * a GET reads both buckets with ONE doorbell-batched read;
///  * an INSERT claims an empty slot lock-free with a single RDMA CAS on
///    the key word, then fills the value;
///  * no compute-node locks, no memory-node CPU involvement.
///
/// Simplifications vs. the full RACE design, documented in DESIGN.md: the
/// directory is fixed at creation (no lock-free extendible resizing), and
/// slots store full 8-byte keys rather than fingerprint+pointer pairs.
/// Keys and values must be non-zero (0 marks an empty/in-flight slot).
///
/// Slot layout: 16 bytes = key word (CAS target) | value word.
class RaceHash {
 public:
  static constexpr uint32_t kSlotsPerBucket = 8;
  static constexpr uint64_t kSlotBytes = 16;
  static constexpr uint64_t kBucketBytes = kSlotsPerBucket * kSlotBytes;

  /// Allocates a table with `num_buckets` buckets (rounded up to a power
  /// of two) and returns its base address to share across compute nodes.
  static Result<dsm::GlobalAddress> Create(dsm::DsmClient* dsm,
                                           uint64_t num_buckets);

  RaceHash(dsm::DsmClient* dsm, dsm::GlobalAddress base,
           uint64_t num_buckets);

  /// Inserts key -> value. kAlreadyExists if present; kOutOfMemory if both
  /// candidate buckets are full (fixed-capacity table).
  Status Insert(uint64_t key, uint64_t value);

  /// Point lookup (both candidate buckets in one doorbell batch).
  Result<uint64_t> Get(uint64_t key);

  /// Updates an existing key's value (kNotFound if absent).
  Status Update(uint64_t key, uint64_t value);

  /// Removes the key (kNotFound if absent).
  Status Delete(uint64_t key);

  RaceHashStats& stats() { return stats_; }
  uint64_t num_buckets() const { return num_buckets_; }

 private:
  uint64_t BucketIndex(uint64_t key, int choice) const;
  dsm::GlobalAddress BucketAddr(uint64_t bucket) const {
    return base_.Plus(bucket * kBucketBytes);
  }
  /// Reads both candidate buckets into `scratch` (2 * kBucketBytes).
  Status ReadBothBuckets(uint64_t key, char* scratch, uint64_t* b0,
                         uint64_t* b1);

  dsm::DsmClient* dsm_;
  dsm::GlobalAddress base_;
  uint64_t num_buckets_;  // power of two
  RaceHashStats stats_;
};

}  // namespace dsmdb::index

#endif  // DSMDB_INDEX_RACE_HASH_H_
