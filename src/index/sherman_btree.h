#ifndef DSMDB_INDEX_SHERMAN_BTREE_H_
#define DSMDB_INDEX_SHERMAN_BTREE_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/spin_latch.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "index/btree_node.h"

namespace dsmdb::index {

struct BTreeOptions {
  /// Sherman's key trick (Challenge #10): cache internal nodes in compute-
  /// node memory so a lookup costs ~1 round trip (the leaf read) instead of
  /// one per level. Costs local memory; turning it off yields the naive
  /// remote B+tree baseline.
  bool cache_internal_nodes = true;
  uint32_t max_read_retries = 64;
  uint32_t lock_max_attempts = 256;
};

struct BTreeStats {
  std::atomic<uint64_t> searches{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> read_retries{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> splits{0};
  std::atomic<uint64_t> link_chases{0};
};

/// A write-optimized distributed B+tree on disaggregated memory, following
/// Sherman [62]:
///  * all data-plane accesses are one-sided RDMA;
///  * readers validate lock-free snapshots via bracketed version words;
///  * writers serialize per node with a 1-RTT RDMA CAS spinlock and
///    publish with doorbell-batched (version, body, version) writes;
///  * B-link sibling pointers + fence keys make concurrent splits safe for
///    lock-free readers and stale caches;
///  * optionally caches internal nodes locally (the Sherman design point).
///
/// Maps uint64 keys to uint64 values (e.g. packed record addresses).
/// Deletes do not rebalance (research-prototype convention). One instance
/// per compute node per tree; instances on different nodes share the tree
/// through the meta block's address.
class ShermanBTree {
 public:
  /// Allocates a fresh tree (meta block + empty root leaf) in DSM.
  static Result<dsm::GlobalAddress> Create(dsm::DsmClient* dsm);

  ShermanBTree(dsm::DsmClient* dsm, dsm::GlobalAddress meta,
               BTreeOptions options = {});

  /// Inserts or overwrites `key`.
  Status Insert(uint64_t key, uint64_t value);

  /// Point lookup.
  Result<uint64_t> Search(uint64_t key);

  /// Removes `key` (kNotFound if absent).
  Status Delete(uint64_t key);

  /// Up to `limit` pairs with key >= `start`, in key order.
  Result<std::vector<std::pair<uint64_t, uint64_t>>> Scan(uint64_t start,
                                                          size_t limit);

  BTreeStats& stats() { return stats_; }
  const BTreeOptions& options() const { return options_; }
  /// Drops this handle's internal-node cache (e.g. for ablations).
  void DropCache();
  size_t CachedNodes() const;

 private:
  struct Meta {
    uint64_t root_packed;
    uint64_t height;
  };

  Result<Meta> ReadMeta();
  Status WriteMeta(const Meta& meta);

  /// Validated lock-free snapshot read (retries torn reads).
  Status ReadNodeValidated(dsm::GlobalAddress addr, BTreeNode* node);
  /// Snapshot read while *we* hold the node's lock.
  Status ReadNodeLocked(dsm::GlobalAddress addr, BTreeNode* node);
  /// Publishes a locked node's new body: doorbell batch of
  /// (header version, body, footer version) — one round trip.
  Status WriteNodeLocked(dsm::GlobalAddress addr, const BTreeNode& node,
                         uint64_t new_version);
  /// Writes a fully-formed, not-yet-linked node (versions 0, unlocked).
  Status WriteFreshNode(dsm::GlobalAddress addr, const BTreeNode& node);

  /// Reads an internal node through the local cache.
  Status ReadInternal(dsm::GlobalAddress addr, BTreeNode* node);
  void CacheInsert(dsm::GlobalAddress addr, const BTreeNode& node);
  void CacheErase(dsm::GlobalAddress addr);

  /// Descends to the leaf that should hold `key`; records the internal
  /// path (for splits).
  Status DescendToLeaf(uint64_t key, std::vector<dsm::GlobalAddress>* path,
                       dsm::GlobalAddress* leaf);

  /// Locks `*addr` (chasing B-links so the locked node truly covers
  /// `key`), leaving the fresh image in `node`.
  Status LockCovering(uint64_t key, dsm::GlobalAddress* addr,
                      BTreeNode* node);

  /// Inserts (sep, child) into the parent level after a split.
  Status InsertIntoParent(std::vector<dsm::GlobalAddress> path,
                          uint64_t sep, dsm::GlobalAddress child,
                          uint8_t child_level);

  /// Releases the CAS spinlock at `node_addr`'s lock word.
  Status UnlockStatus(dsm::GlobalAddress node_addr, uint64_t lock_id);

  uint64_t NextLockId() {
    return (lock_seq_.fetch_add(1, std::memory_order_relaxed) << 10) |
           (dsm_->self() & 0x3FF);
  }

  dsm::DsmClient* dsm_;
  dsm::GlobalAddress meta_addr_;
  BTreeOptions options_;
  BTreeStats stats_;
  std::atomic<uint64_t> lock_seq_{1};

  mutable SpinLatch cache_latch_;
  std::unordered_map<uint64_t, BTreeNode> cache_;  // packed addr -> node
  /// Locally cached meta (root/height); refreshed on mismatch.
  mutable SpinLatch meta_latch_;
  bool meta_cached_ = false;
  Meta cached_meta_{0, 0};
};

}  // namespace dsmdb::index

#endif  // DSMDB_INDEX_SHERMAN_BTREE_H_
