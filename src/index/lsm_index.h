#ifndef DSMDB_INDEX_LSM_INDEX_H_
#define DSMDB_INDEX_LSM_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"

namespace dsmdb::index {

/// LSM index options.
struct LsmOptions {
  /// Memtable flush threshold (entries).
  size_t memtable_entries = 1'024;
  /// Entries per read block; a point read fetches one block (1 RTT).
  uint32_t block_entries = 256;
  /// Bloom filter bits per key.
  uint32_t bloom_bits_per_key = 10;
  /// Compact once this many runs accumulate.
  size_t max_runs = 4;
  /// Challenge #11: "offloading LSM compaction to memory nodes". When
  /// true, compaction merges runs *on the memory node* and ships back only
  /// the (small) fences + bloom filter; when false, the compute node pulls
  /// every run, merges locally, and writes the result back.
  bool offload_compaction = false;
};

struct LsmStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> memtable_hits{0};
  std::atomic<uint64_t> bloom_skips{0};   ///< run probes avoided by bloom
  std::atomic<uint64_t> block_reads{0};   ///< remote block fetches
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> compactions{0};
};

/// A log-structured merge index on disaggregated memory (Challenge #11:
/// "LSM-based indexing can be worth investigating because it naturally
/// fits the local memory and remote memory hierarchy. For example,
/// LSM-trees can hold filters and fence pointers in compute nodes as they
/// help protect from unnecessary round trips.")
///
/// Layout:
///  * memtable: compute-node local sorted map (the hot write buffer);
///  * runs: immutable sorted arrays of (key, value) 16-byte pairs in DSM
///    on the index's home memory node, newest first;
///  * per run, the compute node keeps ONLY fence pointers (first key of
///    each block) and a bloom filter — tiny local state that converts a
///    point lookup into at most one 1-RTT block read per probed run.
///
/// Values must be non-zero; deletes write a tombstone. Single-writer (one
/// compute node owns the index); concurrent readers on the same handle
/// are safe.
class LsmIndex {
 public:
  LsmIndex(dsm::DsmClient* dsm, dsm::MemNodeId home, LsmOptions options);
  ~LsmIndex();

  LsmIndex(const LsmIndex&) = delete;
  LsmIndex& operator=(const LsmIndex&) = delete;

  /// Inserts or overwrites. May trigger a flush and a compaction.
  Status Put(uint64_t key, uint64_t value);

  /// Point lookup: memtable, then runs newest-to-oldest (bloom-guarded).
  Result<uint64_t> Get(uint64_t key);

  /// Tombstone delete.
  Status Delete(uint64_t key);

  /// Forces the memtable into a new run.
  Status Flush();

  /// Merges all runs into one (locally or offloaded per options).
  Status Compact();

  LsmStats& stats() { return stats_; }
  size_t NumRuns() const;
  size_t MemtableSize() const;
  /// Compute-node-local metadata footprint in bytes (fences + blooms).
  size_t LocalMetadataBytes() const;

 private:
  static constexpr uint64_t kTombstone = UINT64_MAX;
  static constexpr uint32_t kCompactFnId = 0xC0;

  struct Run {
    dsm::GlobalAddress base;
    uint64_t entries = 0;
    uint64_t alloc_bytes = 0;          // DSM allocation size (for Free)
    std::vector<uint64_t> fences;      // first key of each block
    std::vector<uint64_t> bloom;       // bit words
  };

  bool BloomMayContain(const Run& run, uint64_t key) const;
  static void BloomAdd(std::vector<uint64_t>* bloom, uint64_t key);

  /// Builds fences+bloom from a sorted entry array.
  Run DescribeRun(dsm::GlobalAddress base,
                  const std::vector<std::pair<uint64_t, uint64_t>>& entries)
      const;

  /// Searches one run; fills `value` if present (tombstones included).
  Result<bool> SearchRun(const Run& run, uint64_t key, uint64_t* value);

  Status FlushLocked();
  Status CompactLocked();
  Status CompactLocal(const std::vector<Run>& runs);
  Status CompactOffloaded(const std::vector<Run>& runs);
  void InstallCompactionHandler();

  dsm::DsmClient* dsm_;
  dsm::MemNodeId home_;
  LsmOptions options_;
  LsmStats stats_;

  mutable std::mutex mu_;
  std::map<uint64_t, uint64_t> memtable_;
  std::vector<Run> runs_;  // newest first
};

}  // namespace dsmdb::index

#endif  // DSMDB_INDEX_LSM_INDEX_H_
