#include "index/lsm_index.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "common/random.h"

namespace dsmdb::index {

namespace {

constexpr uint64_t kEntryBytes = 16;
constexpr size_t kCopyChunk = 64 * 1024;

uint64_t BloomWordCount(uint64_t entries, uint32_t bits_per_key) {
  return std::max<uint64_t>(1, (entries * bits_per_key + 63) / 64);
}

void BloomSet(std::vector<uint64_t>* bloom, uint64_t h) {
  const uint64_t bits = bloom->size() * 64;
  (*bloom)[(h % bits) / 64] |= 1ULL << (h % 64);
}

bool BloomTest(const std::vector<uint64_t>& bloom, uint64_t h) {
  const uint64_t bits = bloom.size() * 64;
  return ((bloom[(h % bits) / 64] >> (h % 64)) & 1) != 0;
}

}  // namespace

LsmIndex::LsmIndex(dsm::DsmClient* dsm, dsm::MemNodeId home,
                   LsmOptions options)
    : dsm_(dsm), home_(home), options_(options) {
  if (options_.offload_compaction) InstallCompactionHandler();
}

LsmIndex::~LsmIndex() = default;

void LsmIndex::BloomAdd(std::vector<uint64_t>* bloom, uint64_t key) {
  BloomSet(bloom, Hash64(key));
  BloomSet(bloom, Hash64(key ^ 0x9E3779B97F4A7C15ULL));
}

bool LsmIndex::BloomMayContain(const Run& run, uint64_t key) const {
  return BloomTest(run.bloom, Hash64(key)) &&
         BloomTest(run.bloom, Hash64(key ^ 0x9E3779B97F4A7C15ULL));
}

LsmIndex::Run LsmIndex::DescribeRun(
    dsm::GlobalAddress base,
    const std::vector<std::pair<uint64_t, uint64_t>>& entries) const {
  Run run;
  run.base = base;
  run.entries = entries.size();
  run.bloom.assign(
      BloomWordCount(entries.size(), options_.bloom_bits_per_key), 0);
  for (size_t i = 0; i < entries.size(); i++) {
    if (i % options_.block_entries == 0) {
      run.fences.push_back(entries[i].first);
    }
    BloomAdd(&run.bloom, entries[i].first);
  }
  return run;
}

Status LsmIndex::Put(uint64_t key, uint64_t value) {
  if (value == 0 || value == kTombstone) {
    return Status::InvalidArgument("reserved value");
  }
  std::lock_guard<std::mutex> lk(mu_);
  memtable_[key] = value;
  if (memtable_.size() >= options_.memtable_entries) {
    DSMDB_RETURN_NOT_OK(FlushLocked());
    if (runs_.size() > options_.max_runs) {
      DSMDB_RETURN_NOT_OK(CompactLocked());
    }
  }
  return Status::OK();
}

Status LsmIndex::Delete(uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  memtable_[key] = kTombstone;
  return Status::OK();
}

Result<uint64_t> LsmIndex::Get(uint64_t key) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    stats_.memtable_hits.fetch_add(1, std::memory_order_relaxed);
    if (it->second == kTombstone) return Status::NotFound("deleted");
    return it->second;
  }
  for (const Run& run : runs_) {  // newest first
    if (!BloomMayContain(run, key)) {
      stats_.bloom_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    uint64_t value = 0;
    Result<bool> found = SearchRun(run, key, &value);
    if (!found.ok()) return found.status();
    if (*found) {
      if (value == kTombstone) return Status::NotFound("deleted");
      return value;
    }
  }
  return Status::NotFound("key not in lsm");
}

Result<bool> LsmIndex::SearchRun(const Run& run, uint64_t key,
                                 uint64_t* value) {
  if (run.fences.empty() || key < run.fences[0]) return false;
  // Fence pointers are local: pick the one block that can hold the key.
  auto fit = std::upper_bound(run.fences.begin(), run.fences.end(), key);
  const uint64_t block = static_cast<uint64_t>(fit - run.fences.begin()) - 1;
  const uint64_t first = block * options_.block_entries;
  const uint64_t count =
      std::min<uint64_t>(options_.block_entries, run.entries - first);

  std::vector<char> buf(count * kEntryBytes);
  DSMDB_RETURN_NOT_OK(dsm_->Read(run.base.Plus(first * kEntryBytes),
                                 buf.data(), buf.size()));
  stats_.block_reads.fetch_add(1, std::memory_order_relaxed);

  // Binary search inside the block.
  uint64_t lo = 0, hi = count;
  while (lo < hi) {
    const uint64_t mid = (lo + hi) / 2;
    const uint64_t k = DecodeFixed64(buf.data() + mid * kEntryBytes);
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < count && DecodeFixed64(buf.data() + lo * kEntryBytes) == key) {
    *value = DecodeFixed64(buf.data() + lo * kEntryBytes + 8);
    return true;
  }
  return false;
}

Status LsmIndex::Flush() {
  std::lock_guard<std::mutex> lk(mu_);
  return FlushLocked();
}

Status LsmIndex::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  std::vector<std::pair<uint64_t, uint64_t>> entries(memtable_.begin(),
                                                     memtable_.end());
  std::string image;
  image.reserve(entries.size() * kEntryBytes);
  for (const auto& [k, v] : entries) {
    PutFixed64(&image, k);
    PutFixed64(&image, v);
  }
  Result<dsm::GlobalAddress> base = dsm_->Alloc(image.size(), home_);
  if (!base.ok()) return base.status();
  for (size_t off = 0; off < image.size(); off += kCopyChunk) {
    const size_t n = std::min(kCopyChunk, image.size() - off);
    DSMDB_RETURN_NOT_OK(dsm_->Write(base->Plus(off), image.data() + off, n));
  }
  Run run = DescribeRun(*base, entries);
  run.alloc_bytes = image.size();
  runs_.insert(runs_.begin(), std::move(run));
  memtable_.clear();
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LsmIndex::Compact() {
  std::lock_guard<std::mutex> lk(mu_);
  return CompactLocked();
}

Status LsmIndex::CompactLocked() {
  if (runs_.size() < 2) return Status::OK();
  std::vector<Run> old = std::move(runs_);
  runs_.clear();
  Status s = options_.offload_compaction ? CompactOffloaded(old)
                                         : CompactLocal(old);
  if (!s.ok()) {
    runs_ = std::move(old);  // keep serving the old runs
    return s;
  }
  for (const Run& run : old) {
    (void)dsm_->Free(run.base, run.alloc_bytes);
  }
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LsmIndex::CompactLocal(const std::vector<Run>& old) {
  // Pull every run to the compute node, merge newest-wins, drop
  // tombstones (full compaction), push the merged run back.
  std::vector<std::vector<char>> images;
  for (const Run& run : old) {
    std::vector<char> img(run.entries * kEntryBytes);
    for (size_t off = 0; off < img.size(); off += kCopyChunk) {
      const size_t n = std::min(kCopyChunk, img.size() - off);
      DSMDB_RETURN_NOT_OK(dsm_->Read(run.base.Plus(off), img.data() + off,
                                     n));
    }
    images.push_back(std::move(img));
  }
  // Merge: iterate runs oldest -> newest into a map so newer wins.
  std::map<uint64_t, uint64_t> merged;
  for (size_t r = images.size(); r-- > 0;) {
    const std::vector<char>& img = images[r];
    for (size_t off = 0; off + kEntryBytes <= img.size();
         off += kEntryBytes) {
      merged[DecodeFixed64(img.data() + off)] =
          DecodeFixed64(img.data() + off + 8);
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(merged.size());
  for (const auto& [k, v] : merged) {
    if (v != kTombstone) entries.emplace_back(k, v);
  }
  if (entries.empty()) return Status::OK();

  std::string image;
  image.reserve(entries.size() * kEntryBytes);
  for (const auto& [k, v] : entries) {
    PutFixed64(&image, k);
    PutFixed64(&image, v);
  }
  Result<dsm::GlobalAddress> base = dsm_->Alloc(image.size(), home_);
  if (!base.ok()) return base.status();
  for (size_t off = 0; off < image.size(); off += kCopyChunk) {
    const size_t n = std::min(kCopyChunk, image.size() - off);
    DSMDB_RETURN_NOT_OK(dsm_->Write(base->Plus(off), image.data() + off, n));
  }
  Run run = DescribeRun(*base, entries);
  run.alloc_bytes = image.size();
  runs_ = {std::move(run)};
  return Status::OK();
}

void LsmIndex::InstallCompactionHandler() {
  // Near-data merge (Challenge #11): runs never leave the memory node;
  // the handler returns only the merged count + fences + bloom words.
  // Request: fixed32 n_runs | n x (fixed64 off, fixed64 entries, newest
  // first) | fixed64 out_off | fixed64 out_capacity_entries |
  // fixed32 block_entries | fixed32 bloom_bits_per_key.
  // Response: fixed64 merged_count | fixed32 n_fences | fences |
  // fixed32 n_bloom_words | words.
  dsm_->cluster()->memory_node(home_)->RegisterOffload(
      kCompactFnId,
      [](dsm::MemoryNode& node, std::string_view arg,
         std::string* out) -> uint64_t {
        size_t pos = 0;
        const uint32_t n_runs = DecodeFixed32(arg.data() + pos);
        pos += 4;
        std::vector<std::pair<uint64_t, uint64_t>> descs(n_runs);
        for (uint32_t i = 0; i < n_runs; i++) {
          descs[i].first = DecodeFixed64(arg.data() + pos);
          descs[i].second = DecodeFixed64(arg.data() + pos + 8);
          pos += 16;
        }
        const uint64_t out_off = DecodeFixed64(arg.data() + pos);
        const uint64_t out_cap = DecodeFixed64(arg.data() + pos + 8);
        const uint32_t block_entries = DecodeFixed32(arg.data() + pos + 16);
        const uint32_t bits_per_key = DecodeFixed32(arg.data() + pos + 20);

        // Merge on the memory node (oldest first so newest wins).
        std::map<uint64_t, uint64_t> merged;
        uint64_t scanned = 0;
        for (uint32_t r = n_runs; r-- > 0;) {
          const char* base = node.base() + descs[r].first;
          for (uint64_t i = 0; i < descs[r].second; i++) {
            merged[DecodeFixed64(base + i * kEntryBytes)] =
                DecodeFixed64(base + i * kEntryBytes + 8);
            scanned++;
          }
        }
        char* dst = node.base() + out_off;
        uint64_t count = 0;
        std::vector<uint64_t> fences;
        std::vector<uint64_t> bloom(
            BloomWordCount(std::max<size_t>(1, merged.size()),
                           bits_per_key),
            0);
        for (const auto& [k, v] : merged) {
          if (v == kTombstone) continue;
          if (count >= out_cap) break;
          EncodeFixed64(dst + count * kEntryBytes, k);
          EncodeFixed64(dst + count * kEntryBytes + 8, v);
          if (count % block_entries == 0) fences.push_back(k);
          BloomAdd(&bloom, k);
          count++;
        }
        PutFixed64(out, count);
        PutFixed32(out, static_cast<uint32_t>(fences.size()));
        for (uint64_t f : fences) PutFixed64(out, f);
        PutFixed32(out, static_cast<uint32_t>(bloom.size()));
        for (uint64_t w : bloom) PutFixed64(out, w);
        // ~25 ns per scanned entry of wimpy-core merge work.
        return 25 * scanned;
      });
}

Status LsmIndex::CompactOffloaded(const std::vector<Run>& old) {
  uint64_t total = 0;
  for (const Run& run : old) total += run.entries;
  Result<dsm::GlobalAddress> out_base =
      dsm_->Alloc(std::max<uint64_t>(1, total) * kEntryBytes, home_);
  if (!out_base.ok()) return out_base.status();

  std::string arg;
  PutFixed32(&arg, static_cast<uint32_t>(old.size()));
  for (const Run& run : old) {
    PutFixed64(&arg, run.base.offset);
    PutFixed64(&arg, run.entries);
  }
  PutFixed64(&arg, out_base->offset);
  PutFixed64(&arg, total);
  PutFixed32(&arg, options_.block_entries);
  PutFixed32(&arg, options_.bloom_bits_per_key);

  std::string resp;
  DSMDB_RETURN_NOT_OK(dsm_->Offload(home_, kCompactFnId, arg, &resp));
  if (resp.size() < 12) return Status::Internal("bad compaction response");
  size_t pos = 0;
  Run merged;
  merged.base = *out_base;
  merged.entries = DecodeFixed64(resp.data() + pos);
  pos += 8;
  const uint32_t n_fences = DecodeFixed32(resp.data() + pos);
  pos += 4;
  for (uint32_t i = 0; i < n_fences; i++) {
    merged.fences.push_back(DecodeFixed64(resp.data() + pos));
    pos += 8;
  }
  const uint32_t n_words = DecodeFixed32(resp.data() + pos);
  pos += 4;
  for (uint32_t i = 0; i < n_words; i++) {
    merged.bloom.push_back(DecodeFixed64(resp.data() + pos));
    pos += 8;
  }
  if (merged.entries == 0) {
    (void)dsm_->Free(*out_base, std::max<uint64_t>(1, total) * kEntryBytes);
    return Status::OK();
  }
  merged.alloc_bytes = std::max<uint64_t>(1, total) * kEntryBytes;
  runs_ = {std::move(merged)};
  return Status::OK();
}

size_t LsmIndex::NumRuns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return runs_.size();
}

size_t LsmIndex::MemtableSize() const {
  std::lock_guard<std::mutex> lk(mu_);
  return memtable_.size();
}

size_t LsmIndex::LocalMetadataBytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t bytes = 0;
  for (const Run& run : runs_) {
    bytes += run.fences.size() * 8 + run.bloom.size() * 8;
  }
  return bytes;
}

}  // namespace dsmdb::index
