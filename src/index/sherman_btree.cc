#include "index/sherman_btree.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "check/checker.h"
#include "common/sim_clock.h"
#include "rt/scheduler.h"

namespace dsmdb::index {

namespace {

constexpr uint64_t kMetaBytes = 24;  // lock | root | height
constexpr uint32_t kMaxDescend = 128;

void Backoff(uint32_t attempt) {
  // Parks the calling task (plain threads just advance their clock) so
  // sibling transactions can run during the backoff window.
  rt::SimWait(SimClock::Now() +
              std::min<uint64_t>(150ULL << std::min(attempt, 6u), 10'000));
  if (attempt > 2 && !rt::InTask()) std::this_thread::yield();
}

}  // namespace

Result<dsm::GlobalAddress> ShermanBTree::Create(dsm::DsmClient* dsm) {
  Result<dsm::GlobalAddress> meta = dsm->Alloc(kMetaBytes);
  if (!meta.ok()) return meta.status();
  Result<dsm::GlobalAddress> root = dsm->Alloc(kNodeBytes);
  if (!root.ok()) return root.status();

  BTreeNode leaf;
  leaf.is_leaf = true;
  leaf.level = 0;
  leaf.count = 0;
  leaf.sibling = 0;
  leaf.high_key = UINT64_MAX;
  char buf[kNodeBytes] = {};
  leaf.EncodeBody(buf);
  DSMDB_RETURN_NOT_OK(dsm->Write(*root, buf, kNodeBytes));

  char mbuf[kMetaBytes] = {};
  EncodeFixed64(mbuf + 8, root->Pack());
  EncodeFixed64(mbuf + 16, 1);
  DSMDB_RETURN_NOT_OK(dsm->Write(*meta, mbuf, kMetaBytes));
  return *meta;
}

ShermanBTree::ShermanBTree(dsm::DsmClient* dsm, dsm::GlobalAddress meta,
                           BTreeOptions options)
    : dsm_(dsm), meta_addr_(meta), options_(options) {}

Result<ShermanBTree::Meta> ShermanBTree::ReadMeta() {
  {
    SpinLatchGuard g(meta_latch_);
    if (meta_cached_) return cached_meta_;
  }
  char buf[kMetaBytes];
  {
    // Unlocked snapshot of root/height; stale routing is corrected by the
    // B-link chase, so this read may race a root grow under the meta lock.
    check::OptimisticScope opt("btree.meta_read");
    DSMDB_RETURN_NOT_OK(dsm_->Read(meta_addr_, buf, kMetaBytes));
  }
  Meta m{DecodeFixed64(buf + 8), DecodeFixed64(buf + 16)};
  SpinLatchGuard g(meta_latch_);
  cached_meta_ = m;
  meta_cached_ = true;
  return m;
}

Status ShermanBTree::WriteMeta(const Meta& meta) {
  char buf[16];
  EncodeFixed64(buf, meta.root_packed);
  EncodeFixed64(buf + 8, meta.height);
  DSMDB_RETURN_NOT_OK(dsm_->Write(meta_addr_.Plus(8), buf, 16));
  SpinLatchGuard g(meta_latch_);
  cached_meta_ = meta;
  meta_cached_ = true;
  return Status::OK();
}

Status ShermanBTree::ReadNodeValidated(dsm::GlobalAddress addr,
                                       BTreeNode* node) {
  char buf[kNodeBytes];
  // Seqlock read: the header/footer version check in Decode() rejects any
  // torn snapshot, so racing a locked writer is the protocol working as
  // designed. The node's lock word is a sync var, so reading it inside the
  // scope still joins the last holder's release (which covers split
  // publications of fresh siblings).
  check::OptimisticScope opt("btree.seqlock_read");
  for (uint32_t attempt = 0; attempt < options_.max_read_retries;
       attempt++) {
    DSMDB_RETURN_NOT_OK(dsm_->Read(addr, buf, kNodeBytes));
    if (node->Decode(buf)) return Status::OK();
    stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
    Backoff(attempt);
  }
  return Status::TimedOut("btree node read kept failing validation");
}

Status ShermanBTree::ReadNodeLocked(dsm::GlobalAddress addr,
                                    BTreeNode* node) {
  char buf[kNodeBytes];
  DSMDB_RETURN_NOT_OK(dsm_->Read(addr, buf, kNodeBytes));
  if (!node->Decode(buf, /*ignore_lock=*/true)) {
    return Status::Corruption("locked node failed header/footer check");
  }
  return Status::OK();
}

Status ShermanBTree::WriteNodeLocked(dsm::GlobalAddress addr,
                                     const BTreeNode& node,
                                     uint64_t new_version) {
  char body[kNodeBytes];
  node.EncodeBody(body);
  char ver[8];
  EncodeFixed64(ver, new_version);
  // Doorbell batch; in-order execution gives seqlock semantics in 1 RTT.
  std::vector<dsm::DsmBatchOp> batch;
  batch.push_back({addr.Plus(kOffHeaderVer), ver, 8});
  batch.push_back({addr.Plus(kOffMeta), body + kOffMeta,
                   kOffFooterVer - kOffMeta});
  batch.push_back({addr.Plus(kOffFooterVer), ver, 8});
  return dsm_->WriteBatch(batch);
}

Status ShermanBTree::WriteFreshNode(dsm::GlobalAddress addr,
                                    const BTreeNode& node) {
  char buf[kNodeBytes] = {};
  node.EncodeBody(buf);
  return dsm_->Write(addr, buf, kNodeBytes);
}

void ShermanBTree::CacheInsert(dsm::GlobalAddress addr,
                               const BTreeNode& node) {
  SpinLatchGuard g(cache_latch_);
  cache_[addr.Pack()] = node;
}

void ShermanBTree::CacheErase(dsm::GlobalAddress addr) {
  SpinLatchGuard g(cache_latch_);
  cache_.erase(addr.Pack());
}

void ShermanBTree::DropCache() {
  SpinLatchGuard g(cache_latch_);
  cache_.clear();
}

size_t ShermanBTree::CachedNodes() const {
  SpinLatchGuard g(cache_latch_);
  return cache_.size();
}

Status ShermanBTree::ReadInternal(dsm::GlobalAddress addr,
                                  BTreeNode* node) {
  if (options_.cache_internal_nodes) {
    {
      SpinLatchGuard g(cache_latch_);
      auto it = cache_.find(addr.Pack());
      if (it != cache_.end()) {
        *node = it->second;
        stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        SimClock::Advance(
            dsm_->cluster()->compute_cpu().dram_access_ns);
        return Status::OK();
      }
    }
    stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  DSMDB_RETURN_NOT_OK(ReadNodeValidated(addr, node));
  if (options_.cache_internal_nodes && !node->is_leaf) {
    CacheInsert(addr, *node);
  }
  return Status::OK();
}

Status ShermanBTree::DescendToLeaf(uint64_t key,
                                   std::vector<dsm::GlobalAddress>* path,
                                   dsm::GlobalAddress* leaf) {
  Result<Meta> meta = ReadMeta();
  if (!meta.ok()) return meta.status();
  dsm::GlobalAddress cur = dsm::GlobalAddress::Unpack(meta->root_packed);
  path->clear();
  for (uint32_t depth = 0; depth < kMaxDescend; depth++) {
    BTreeNode node;
    DSMDB_RETURN_NOT_OK(ReadInternal(cur, &node));
    // B-link chase: a stale cache or in-flight split routes us right.
    while (key >= node.high_key && node.sibling != 0) {
      stats_.link_chases.fetch_add(1, std::memory_order_relaxed);
      CacheErase(cur);
      cur = dsm::GlobalAddress::Unpack(node.sibling);
      DSMDB_RETURN_NOT_OK(ReadNodeValidated(cur, &node));
      if (options_.cache_internal_nodes && !node.is_leaf) {
        CacheInsert(cur, node);
      }
    }
    if (node.is_leaf) {
      *leaf = cur;
      return Status::OK();
    }
    if (node.count == 0) return Status::Corruption("empty internal node");
    path->push_back(cur);
    cur = dsm::GlobalAddress::Unpack(node.vals[node.ChildIndex(key)]);
  }
  return Status::Corruption("btree descend did not terminate");
}

Status ShermanBTree::LockCovering(uint64_t key, dsm::GlobalAddress* addr,
                                  BTreeNode* node) {
  const uint64_t lock_id = NextLockId();
  for (uint32_t attempt = 0;; attempt++) {
    if (attempt >= options_.lock_max_attempts) {
      return Status::TimedOut("btree node lock busy");
    }
    Result<uint64_t> prev =
        dsm_->CompareAndSwap(addr->Plus(kOffLock), 0, lock_id);
    if (!prev.ok()) return prev.status();
    if (*prev != 0) {
      Backoff(attempt);
      continue;
    }
    DSMDB_RETURN_NOT_OK(ReadNodeLocked(*addr, node));
    if (key >= node->high_key && node->sibling != 0) {
      // Wrong node (split raced us): unlock and move right.
      DSMDB_RETURN_NOT_OK(UnlockStatus(*addr, lock_id));
      stats_.link_chases.fetch_add(1, std::memory_order_relaxed);
      CacheErase(*addr);
      *addr = dsm::GlobalAddress::Unpack(node->sibling);
      continue;
    }
    node->lock = lock_id;
    return Status::OK();
  }
}

Result<uint64_t> ShermanBTree::Search(uint64_t key) {
  stats_.searches.fetch_add(1, std::memory_order_relaxed);
  std::vector<dsm::GlobalAddress> path;
  dsm::GlobalAddress leaf_addr;
  DSMDB_RETURN_NOT_OK(DescendToLeaf(key, &path, &leaf_addr));
  BTreeNode leaf;
  DSMDB_RETURN_NOT_OK(ReadNodeValidated(leaf_addr, &leaf));
  while (key >= leaf.high_key && leaf.sibling != 0) {
    stats_.link_chases.fetch_add(1, std::memory_order_relaxed);
    leaf_addr = dsm::GlobalAddress::Unpack(leaf.sibling);
    DSMDB_RETURN_NOT_OK(ReadNodeValidated(leaf_addr, &leaf));
  }
  const uint32_t pos = leaf.Find(key);
  if (pos == leaf.count) return Status::NotFound("key not in btree");
  return leaf.vals[pos];
}

Status ShermanBTree::Insert(uint64_t key, uint64_t value) {
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  std::vector<dsm::GlobalAddress> path;
  dsm::GlobalAddress leaf_addr;
  DSMDB_RETURN_NOT_OK(DescendToLeaf(key, &path, &leaf_addr));

  BTreeNode node;
  DSMDB_RETURN_NOT_OK(LockCovering(key, &leaf_addr, &node));
  const uint64_t lock_id = node.lock;

  const uint32_t pos = node.Find(key);
  if (pos < node.count) {  // update in place
    node.vals[pos] = value;
    DSMDB_RETURN_NOT_OK(WriteNodeLocked(leaf_addr, node, node.version + 1));
    return UnlockStatus(leaf_addr, lock_id);
  }

  if (node.count < kNodeCap) {
    uint32_t ins = 0;
    while (ins < node.count && node.keys[ins] < key) ins++;
    for (uint32_t i = node.count; i > ins; i--) {
      node.keys[i] = node.keys[i - 1];
      node.vals[i] = node.vals[i - 1];
    }
    node.keys[ins] = key;
    node.vals[ins] = value;
    node.count++;
    DSMDB_RETURN_NOT_OK(WriteNodeLocked(leaf_addr, node, node.version + 1));
    return UnlockStatus(leaf_addr, lock_id);
  }

  // Split.
  stats_.splits.fetch_add(1, std::memory_order_relaxed);
  Result<dsm::GlobalAddress> right_addr = dsm_->Alloc(kNodeBytes);
  if (!right_addr.ok()) {
    (void)UnlockStatus(leaf_addr, lock_id);
    return right_addr.status();
  }
  const uint32_t mid = node.count / 2;
  BTreeNode right;
  right.is_leaf = node.is_leaf;
  right.level = node.level;
  right.count = node.count - mid;
  right.sibling = node.sibling;
  right.high_key = node.high_key;
  for (uint32_t i = 0; i < right.count; i++) {
    right.keys[i] = node.keys[mid + i];
    right.vals[i] = node.vals[mid + i];
  }
  node.count = mid;
  node.sibling = right_addr->Pack();
  node.high_key = right.keys[0];
  const uint64_t sep = right.keys[0];

  // Insert the new key into the proper half (both have room now).
  BTreeNode* target = key < sep ? &node : &right;
  uint32_t ins = 0;
  while (ins < target->count && target->keys[ins] < key) ins++;
  for (uint32_t i = target->count; i > ins; i--) {
    target->keys[i] = target->keys[i - 1];
    target->vals[i] = target->vals[i - 1];
  }
  target->keys[ins] = key;
  target->vals[ins] = value;
  target->count++;

  // Publish: right first (unreachable until left links to it).
  DSMDB_RETURN_NOT_OK(WriteFreshNode(*right_addr, right));
  DSMDB_RETURN_NOT_OK(WriteNodeLocked(leaf_addr, node, node.version + 1));
  DSMDB_RETURN_NOT_OK(UnlockStatus(leaf_addr, lock_id));
  CacheErase(leaf_addr);

  return InsertIntoParent(std::move(path), sep, *right_addr, node.level);
}

Status ShermanBTree::InsertIntoParent(std::vector<dsm::GlobalAddress> path,
                                      uint64_t sep,
                                      dsm::GlobalAddress child,
                                      uint8_t child_level) {
  while (true) {
    if (path.empty()) {
      // We split a node with no known parent: either the root, or our
      // path is stale. Take the meta lock to decide.
      const uint64_t lock_id = NextLockId();
      for (uint32_t attempt = 0;; attempt++) {
        Result<uint64_t> prev =
            dsm_->CompareAndSwap(meta_addr_, 0, lock_id);
        if (!prev.ok()) return prev.status();
        if (*prev == 0) break;
        if (attempt >= options_.lock_max_attempts) {
          return Status::TimedOut("btree meta lock busy");
        }
        Backoff(attempt);
      }
      char mbuf[kMetaBytes];
      Status s = dsm_->Read(meta_addr_, mbuf, kMetaBytes);
      if (!s.ok()) {
        (void)UnlockStatus(meta_addr_, lock_id);
        return s;
      }
      Meta m{DecodeFixed64(mbuf + 8), DecodeFixed64(mbuf + 16)};
      if (m.height == static_cast<uint64_t>(child_level) + 1) {
        // The split node really was the root: grow the tree.
        Result<dsm::GlobalAddress> root_addr = dsm_->Alloc(kNodeBytes);
        if (!root_addr.ok()) {
          (void)UnlockStatus(meta_addr_, lock_id);
          return root_addr.status();
        }
        BTreeNode root;
        root.is_leaf = false;
        root.level = child_level + 1;
        root.count = 2;
        root.sibling = 0;
        root.high_key = UINT64_MAX;
        root.keys[0] = 0;
        root.vals[0] = m.root_packed;
        root.keys[1] = sep;
        root.vals[1] = child.Pack();
        s = WriteFreshNode(*root_addr, root);
        if (s.ok()) {
          s = WriteMeta(Meta{root_addr->Pack(), m.height + 1});
        }
        Status us = UnlockStatus(meta_addr_, lock_id);
        return s.ok() ? us : s;
      }
      // Tree already grew past us: find the parent level from the root.
      DSMDB_RETURN_NOT_OK(UnlockStatus(meta_addr_, lock_id));
      {
        SpinLatchGuard g(meta_latch_);
        meta_cached_ = false;  // force fresh root
      }
      Result<Meta> fresh = ReadMeta();
      if (!fresh.ok()) return fresh.status();
      dsm::GlobalAddress cur =
          dsm::GlobalAddress::Unpack(fresh->root_packed);
      // Collect the path down to level child_level + 1.
      std::vector<dsm::GlobalAddress> new_path;
      BTreeNode n;
      for (uint32_t depth = 0; depth < kMaxDescend; depth++) {
        DSMDB_RETURN_NOT_OK(ReadNodeValidated(cur, &n));
        while (sep >= n.high_key && n.sibling != 0) {
          cur = dsm::GlobalAddress::Unpack(n.sibling);
          DSMDB_RETURN_NOT_OK(ReadNodeValidated(cur, &n));
        }
        if (n.level == child_level + 1) break;
        if (n.is_leaf || n.count == 0) {
          return Status::Corruption("lost parent during split");
        }
        new_path.push_back(cur);
        cur = dsm::GlobalAddress::Unpack(n.vals[n.ChildIndex(sep)]);
      }
      new_path.push_back(cur);
      path = std::move(new_path);
    }

    dsm::GlobalAddress parent_addr = path.back();
    path.pop_back();
    BTreeNode parent;
    DSMDB_RETURN_NOT_OK(LockCovering(sep, &parent_addr, &parent));
    const uint64_t lock_id = parent.lock;

    if (parent.count < kNodeCap) {
      uint32_t ins = 0;
      while (ins < parent.count && parent.keys[ins] < sep) ins++;
      for (uint32_t i = parent.count; i > ins; i--) {
        parent.keys[i] = parent.keys[i - 1];
        parent.vals[i] = parent.vals[i - 1];
      }
      parent.keys[ins] = sep;
      parent.vals[ins] = child.Pack();
      parent.count++;
      DSMDB_RETURN_NOT_OK(
          WriteNodeLocked(parent_addr, parent, parent.version + 1));
      DSMDB_RETURN_NOT_OK(UnlockStatus(parent_addr, lock_id));
      CacheErase(parent_addr);
      return Status::OK();
    }

    // Parent is full: split it and continue one level up.
    stats_.splits.fetch_add(1, std::memory_order_relaxed);
    Result<dsm::GlobalAddress> right_addr = dsm_->Alloc(kNodeBytes);
    if (!right_addr.ok()) {
      (void)UnlockStatus(parent_addr, lock_id);
      return right_addr.status();
    }
    const uint32_t mid = parent.count / 2;
    BTreeNode right;
    right.is_leaf = false;
    right.level = parent.level;
    right.count = parent.count - mid;
    right.sibling = parent.sibling;
    right.high_key = parent.high_key;
    for (uint32_t i = 0; i < right.count; i++) {
      right.keys[i] = parent.keys[mid + i];
      right.vals[i] = parent.vals[mid + i];
    }
    parent.count = mid;
    parent.sibling = right_addr->Pack();
    parent.high_key = right.keys[0];
    const uint64_t parent_sep = right.keys[0];

    BTreeNode* target = sep < parent_sep ? &parent : &right;
    uint32_t ins = 0;
    while (ins < target->count && target->keys[ins] < sep) ins++;
    for (uint32_t i = target->count; i > ins; i--) {
      target->keys[i] = target->keys[i - 1];
      target->vals[i] = target->vals[i - 1];
    }
    target->keys[ins] = sep;
    target->vals[ins] = child.Pack();
    target->count++;

    DSMDB_RETURN_NOT_OK(WriteFreshNode(*right_addr, right));
    DSMDB_RETURN_NOT_OK(
        WriteNodeLocked(parent_addr, parent, parent.version + 1));
    DSMDB_RETURN_NOT_OK(UnlockStatus(parent_addr, lock_id));
    CacheErase(parent_addr);

    sep = parent_sep;
    child = *right_addr;
    child_level = parent.level;
  }
}

Status ShermanBTree::Delete(uint64_t key) {
  std::vector<dsm::GlobalAddress> path;
  dsm::GlobalAddress leaf_addr;
  DSMDB_RETURN_NOT_OK(DescendToLeaf(key, &path, &leaf_addr));
  BTreeNode node;
  DSMDB_RETURN_NOT_OK(LockCovering(key, &leaf_addr, &node));
  const uint64_t lock_id = node.lock;
  const uint32_t pos = node.Find(key);
  if (pos == node.count) {
    DSMDB_RETURN_NOT_OK(UnlockStatus(leaf_addr, lock_id));
    return Status::NotFound("key not in btree");
  }
  for (uint32_t i = pos; i + 1 < node.count; i++) {
    node.keys[i] = node.keys[i + 1];
    node.vals[i] = node.vals[i + 1];
  }
  node.count--;
  DSMDB_RETURN_NOT_OK(WriteNodeLocked(leaf_addr, node, node.version + 1));
  return UnlockStatus(leaf_addr, lock_id);
}

Result<std::vector<std::pair<uint64_t, uint64_t>>> ShermanBTree::Scan(
    uint64_t start, size_t limit) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  std::vector<dsm::GlobalAddress> path;
  dsm::GlobalAddress leaf_addr;
  DSMDB_RETURN_NOT_OK(DescendToLeaf(start, &path, &leaf_addr));
  BTreeNode node;
  DSMDB_RETURN_NOT_OK(ReadNodeValidated(leaf_addr, &node));
  while (out.size() < limit) {
    for (uint32_t i = 0; i < node.count && out.size() < limit; i++) {
      if (node.keys[i] >= start) {
        out.emplace_back(node.keys[i], node.vals[i]);
      }
    }
    if (node.sibling == 0) break;
    leaf_addr = dsm::GlobalAddress::Unpack(node.sibling);
    DSMDB_RETURN_NOT_OK(ReadNodeValidated(leaf_addr, &node));
  }
  return out;
}

Status ShermanBTree::UnlockStatus(dsm::GlobalAddress node_addr,
                                  uint64_t lock_id) {
  Result<uint64_t> prev =
      dsm_->CompareAndSwap(node_addr.Plus(kOffLock), lock_id, 0);
  if (!prev.ok()) return prev.status();
  if (*prev != lock_id) {
    return Status::Internal("btree unlock of a lock we do not hold");
  }
  return Status::OK();
}

}  // namespace dsmdb::index
