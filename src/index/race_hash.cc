#include "index/race_hash.h"

#include <bit>

#include "check/checker.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "rt/scheduler.h"

namespace dsmdb::index {

Result<dsm::GlobalAddress> RaceHash::Create(dsm::DsmClient* dsm,
                                            uint64_t num_buckets) {
  num_buckets = std::bit_ceil(num_buckets == 0 ? 1 : num_buckets);
  Result<dsm::GlobalAddress> base =
      dsm->Alloc(num_buckets * kBucketBytes);
  if (!base.ok()) return base.status();
  // Freshly allocated DSM regions are zero on first allocation, but the
  // slab may recycle memory: clear explicitly.
  std::string zeros(kBucketBytes, '\0');
  for (uint64_t b = 0; b < num_buckets; b++) {
    DSMDB_RETURN_NOT_OK(
        dsm->Write(base->Plus(b * kBucketBytes), zeros.data(),
                   zeros.size()));
  }
  return *base;
}

RaceHash::RaceHash(dsm::DsmClient* dsm, dsm::GlobalAddress base,
                   uint64_t num_buckets)
    : dsm_(dsm),
      base_(base),
      num_buckets_(std::bit_ceil(num_buckets == 0 ? 1 : num_buckets)) {}

uint64_t RaceHash::BucketIndex(uint64_t key, int choice) const {
  const uint64_t h =
      choice == 0 ? Hash64(key) : Hash64(key ^ 0xC3A5C85C97CB3127ULL);
  return h & (num_buckets_ - 1);
}

Status RaceHash::ReadBothBuckets(uint64_t key, char* scratch, uint64_t* b0,
                                 uint64_t* b1) {
  *b0 = BucketIndex(key, 0);
  *b1 = BucketIndex(key, 1);
  std::vector<dsm::DsmBatchOp> batch;
  batch.push_back({BucketAddr(*b0), scratch, kBucketBytes});
  if (*b1 != *b0) {
    batch.push_back({BucketAddr(*b1), scratch + kBucketBytes, kBucketBytes});
  }
  // Lock-free scan: every caller re-validates what it saw (Get retries
  // in-flight slots, Insert re-scans after a lost CAS), so bucket reads
  // racing a claimer's value fill are part of the protocol.
  check::OptimisticScope opt("racehash.scan");
  return dsm_->ReadBatch(batch);
}

Result<uint64_t> RaceHash::Get(uint64_t key) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  char scratch[2 * kBucketBytes];
  uint64_t b0, b1;
  for (uint32_t attempt = 0; attempt < 16; attempt++) {
    DSMDB_RETURN_NOT_OK(ReadBothBuckets(key, scratch, &b0, &b1));
    const int nbuckets = b0 == b1 ? 1 : 2;
    bool in_flight = false;
    for (int b = 0; b < nbuckets; b++) {
      for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
        const char* slot = scratch + b * kBucketBytes + s * kSlotBytes;
        if (DecodeFixed64(slot) == key) {
          const uint64_t value = DecodeFixed64(slot + 8);
          if (value == 0) {
            in_flight = true;  // claimed, value not yet written
            break;
          }
          return value;
        }
      }
    }
    if (!in_flight) return Status::NotFound("key not in hash table");
    // In-flight slot: wait out the claimer's write; parks when a task.
    rt::SimWait(SimClock::Now() + 200);
  }
  return Status::TimedOut("hash slot stayed in-flight");
}

Status RaceHash::Insert(uint64_t key, uint64_t value) {
  if (key == 0 || value == 0) {
    return Status::InvalidArgument("RaceHash keys/values must be non-zero");
  }
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  char scratch[2 * kBucketBytes];
  uint64_t bidx[2];
  for (uint32_t attempt = 0; attempt < 16; attempt++) {
    DSMDB_RETURN_NOT_OK(ReadBothBuckets(key, scratch, &bidx[0], &bidx[1]));
    const int nbuckets = bidx[0] == bidx[1] ? 1 : 2;

    // Duplicate check + free-slot census.
    int free_bucket = -1;
    uint32_t free_slot = 0;
    uint32_t best_load = kSlotsPerBucket + 1;
    for (int b = 0; b < nbuckets; b++) {
      uint32_t load = 0;
      int first_free = -1;
      for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
        const char* slot = scratch + b * kBucketBytes + s * kSlotBytes;
        const uint64_t k = DecodeFixed64(slot);
        if (k == key) return Status::AlreadyExists("key already inserted");
        if (k == 0 && first_free < 0) first_free = static_cast<int>(s);
        if (k != 0) load++;
      }
      // d-choice: prefer the less-loaded candidate bucket.
      if (first_free >= 0 && load < best_load) {
        best_load = load;
        free_bucket = b;
        free_slot = static_cast<uint32_t>(first_free);
      }
    }
    if (free_bucket < 0) {
      stats_.full_buckets.fetch_add(1, std::memory_order_relaxed);
      return Status::OutOfMemory("both candidate buckets full");
    }

    // Claim the slot's key word with one RDMA CAS, then fill the value.
    const dsm::GlobalAddress slot_addr =
        BucketAddr(bidx[free_bucket]).Plus(free_slot * kSlotBytes);
    Result<uint64_t> prev = dsm_->CompareAndSwap(slot_addr, 0, key);
    if (!prev.ok()) return prev.status();
    if (*prev != 0) {
      stats_.cas_retries.fetch_add(1, std::memory_order_relaxed);
      continue;  // lost the race for this slot; re-scan
    }
    DSMDB_RETURN_NOT_OK(dsm_->Write(slot_addr.Plus(8), &value, 8));
    return Status::OK();
  }
  return Status::Busy("insert kept losing CAS races");
}

Status RaceHash::Update(uint64_t key, uint64_t value) {
  if (value == 0) return Status::InvalidArgument("value must be non-zero");
  char scratch[2 * kBucketBytes];
  uint64_t b0, b1;
  DSMDB_RETURN_NOT_OK(ReadBothBuckets(key, scratch, &b0, &b1));
  const uint64_t buckets[2] = {b0, b1};
  const int nbuckets = b0 == b1 ? 1 : 2;
  for (int b = 0; b < nbuckets; b++) {
    for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
      const char* slot = scratch + b * kBucketBytes + s * kSlotBytes;
      if (DecodeFixed64(slot) == key) {
        const dsm::GlobalAddress slot_addr =
            BucketAddr(buckets[b]).Plus(s * kSlotBytes);
        return dsm_->Write(slot_addr.Plus(8), &value, 8);
      }
    }
  }
  return Status::NotFound("key not in hash table");
}

Status RaceHash::Delete(uint64_t key) {
  char scratch[2 * kBucketBytes];
  uint64_t b0, b1;
  DSMDB_RETURN_NOT_OK(ReadBothBuckets(key, scratch, &b0, &b1));
  const uint64_t buckets[2] = {b0, b1};
  const int nbuckets = b0 == b1 ? 1 : 2;
  for (int b = 0; b < nbuckets; b++) {
    for (uint32_t s = 0; s < kSlotsPerBucket; s++) {
      const char* slot = scratch + b * kBucketBytes + s * kSlotBytes;
      if (DecodeFixed64(slot) == key) {
        const dsm::GlobalAddress slot_addr =
            BucketAddr(buckets[b]).Plus(s * kSlotBytes);
        // Clear value first so readers treat the slot as in-flight, then
        // release the key word with CAS (tolerates concurrent deleters).
        const uint64_t zero = 0;
        DSMDB_RETURN_NOT_OK(dsm_->Write(slot_addr.Plus(8), &zero, 8));
        Result<uint64_t> prev = dsm_->CompareAndSwap(slot_addr, key, 0);
        if (!prev.ok()) return prev.status();
        return Status::OK();
      }
    }
  }
  return Status::NotFound("key not in hash table");
}

}  // namespace dsmdb::index
