#include "workload/driver.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "check/checker.h"
#include "common/sim_clock.h"
#include "obs/flight_recorder.h"
#include "obs/live_monitor.h"
#include "obs/skew_monitor.h"
#include "obs/trace.h"
#include "rt/scheduler.h"

namespace dsmdb::workload {

std::string DriverResult::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "committed=%llu attempts=%llu tput=%.0f txn/s abort=%.1f%% "
      "p50=%llu ns p95=%llu ns p99=%llu ns max=%llu ns",
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(attempts), throughput_tps,
      AbortRate() * 100.0,
      static_cast<unsigned long long>(latency_ns.Percentile(50)),
      static_cast<unsigned long long>(latency_ns.Percentile(95)),
      static_cast<unsigned long long>(latency_ns.Percentile(99)),
      static_cast<unsigned long long>(latency_ns.max()));
  return buf;
}

void DriverResult::ExportTo(obs::StatsExporter* exporter,
                            const std::string& name) const {
  const std::string prefix = "workload." + name;
  exporter->AddCounter(prefix + ".attempts", attempts);
  exporter->AddCounter(prefix + ".committed", committed);
  exporter->AddHistogram(prefix + ".txn_latency_ns", latency_ns);
  exporter->AddScalar(prefix + ".throughput_tps", throughput_tps);
  exporter->AddScalar(prefix + ".abort_rate", AbortRate());
  exporter->AddScalar(prefix + ".sim_seconds", sim_seconds);
}

DriverResult RunDriver(const std::vector<core::ComputeNode*>& nodes,
                       const DriverOptions& options, const TxnFn& fn) {
  struct WorkerOut {
    uint64_t attempts = 0;
    uint64_t committed = 0;
    uint64_t sim_ns = 0;
    Histogram latency;
  };
  const uint32_t total_threads =
      static_cast<uint32_t>(nodes.size()) * options.threads_per_node;
  std::vector<WorkerOut> outs(total_threads);
  std::vector<std::thread> threads;
  threads.reserve(total_threads);

  const uint32_t depth = std::max<uint32_t>(1, options.in_flight_depth);

  // One transaction attempt, bookkeeping included. `lane` is the globally
  // unique concurrent-context index (== worker index at depth 1); the
  // TraceTxnScope roots each attempt's causal span tree and assigns the
  // txn id every nested span (verbs, 2PC legs, log appends) inherits.
  auto run_one = [&fn](core::ComputeNode* node, uint32_t lane, Random64& rng,
                       WorkerOut* out) {
    obs::TraceTxnScope span("txn.attempt", "workload");
    const uint64_t t0 = SimClock::Now();
    const bool committed = fn(node, lane, rng);
    const uint64_t now = SimClock::Now();
    out->latency.Add(now - t0);
    out->attempts++;
    if (committed) out->committed++;
    obs::LiveMonitor::Instance().OnTxn(committed, now - t0);
    obs::FlightRecorder::Instance().MaybeSample(now);
    obs::SkewMonitor::Instance().MaybeSample(now);
  };

  // Checker fork/join edges: table/cluster setup happened-before every
  // worker (and every task lane), and all worker effects happened-before
  // the aggregation below.
  const uint64_t fork = check::ForkPoint();
  for (uint32_t t = 0; t < total_threads; t++) {
    core::ComputeNode* node = nodes[t / options.threads_per_node];
    threads.emplace_back([&, t, node] {
      check::OnThreadStart(fork);
      SimClock::Reset();
      WorkerOut& out = outs[t];
      if (depth == 1) {
        Random64 rng(options.seed * 1'000'003 + t);
        for (uint64_t i = 0; i < options.txns_per_thread; i++) {
          run_one(node, t, rng, &out);
        }
        out.sim_ns = SimClock::Now();
        check::OnThreadFinish(fork);
        return;
      }
      // Depth > 1: multiplex `depth` cooperative lanes over this worker's
      // simulated core. Lanes pull from a shared attempt budget; the pull
      // (and all writes to `out`) are safe unsynchronized because exactly
      // one lane of a scheduler runs between suspension points, and the
      // baton handoffs give happens-before.
      rt::Scheduler sched;
      uint64_t next_txn = 0;
      sched.Run([&] {
        for (uint32_t k = 0; k < depth; k++) {
          const uint32_t lane = t * depth + k;
          sched.Spawn([&, lane] {
            check::OnThreadStart(fork);
            Random64 rng(options.seed * 1'000'003 + lane);
            while (next_txn < options.txns_per_thread) {
              next_txn++;
              run_one(node, lane, rng, &out);
            }
            check::OnThreadFinish(fork);
          });
        }
      });
      // Account the multiplexed work on the worker's own clock: the
      // core's finish time is the max over every lane's completion.
      SimClock::AdvanceTo(sched.FinalSimNs());
      out.sim_ns = SimClock::Now();
      check::OnThreadFinish(fork);
    });
  }
  for (auto& th : threads) th.join();
  check::OnThreadsJoined(fork);

  DriverResult result;
  uint64_t max_ns = 0;
  for (const WorkerOut& out : outs) {
    result.attempts += out.attempts;
    result.committed += out.committed;
    result.latency_ns.Merge(out.latency);
    max_ns = std::max(max_ns, out.sim_ns);
  }
  result.sim_seconds = static_cast<double>(max_ns) / 1e9;
  result.throughput_tps =
      result.sim_seconds == 0
          ? 0
          : static_cast<double>(result.committed) / result.sim_seconds;
  return result;
}

}  // namespace dsmdb::workload
