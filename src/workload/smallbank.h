#ifndef DSMDB_WORKLOAD_SMALLBANK_H_
#define DSMDB_WORKLOAD_SMALLBANK_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/compute_node.h"

namespace dsmdb::workload {

/// SmallBank-style banking mix over one accounts table whose value's first
/// 8 bytes are the balance (TxnOp::Add-compatible). Exercises
/// read-modify-write contention and — with sharding — cross-shard
/// transfers (bench E11's knob: the fraction of SendPayment transactions
/// whose two accounts live in different shards).
struct SmallBankOptions {
  uint64_t num_accounts = 100'000;
  double zipf_theta = 0.9;
  uint32_t value_size = 64;
  /// Mix: fraction of Balance (read-only) transactions; the rest are
  /// split between Deposit (1 account) and SendPayment (2 accounts).
  double balance_fraction = 0.2;
  double payment_fraction = 0.4;
  /// For sharded runs: probability a SendPayment pairs accounts from two
  /// different owner ranges (cross-shard fraction sweep).
  double cross_shard_fraction = 0.0;
  uint32_t num_shards = 1;
};

class SmallBankWorkload {
 public:
  SmallBankWorkload(const SmallBankOptions& options, uint64_t seed);

  std::vector<core::TxnOp> NextTxn();

  const SmallBankOptions& options() const { return options_; }

 private:
  uint64_t SampleAccount();
  /// An account in a different (even-partition) shard than `other`.
  uint64_t SampleAccountInOtherShard(uint64_t other);

  SmallBankOptions options_;
  Random64 rng_;
  ZipfianGenerator zipf_;
};

}  // namespace dsmdb::workload

#endif  // DSMDB_WORKLOAD_SMALLBANK_H_
