#ifndef DSMDB_WORKLOAD_TPCC_LITE_H_
#define DSMDB_WORKLOAD_TPCC_LITE_H_

#include <cstdint>

#include "common/random.h"
#include "core/dsmdb.h"

namespace dsmdb::workload {

/// A compact TPC-C-style OLTP workload (NewOrder + Payment over
/// warehouse/district/customer/stock tables) for multi-table,
/// multi-record transactions through the interactive transaction API.
/// Record values carry one 64-bit numeric column (ytd / balance /
/// next_o_id / quantity) in their first 8 bytes.
struct TpccOptions {
  uint32_t warehouses = 4;
  uint32_t districts_per_wh = 10;
  uint32_t customers_per_district = 300;
  uint32_t stock_per_wh = 1'000;
  uint32_t value_size = 64;
  /// Max order lines per NewOrder (uniform in [1, max]).
  uint32_t max_order_lines = 10;
  /// Probability a Payment pays through a *remote* warehouse (TPC-C: 15%).
  double remote_payment_fraction = 0.15;
};

class TpccLite {
 public:
  /// Creates and loads the four tables through `db` (DDL + direct loads).
  static Result<TpccLite> Create(core::DsmDb* db, const TpccOptions& options);

  /// One NewOrder transaction on a warehouse chosen by `rng`.
  /// Returns OK (committed), kAborted, or a hard error.
  Status RunNewOrder(core::ComputeNode* node, Random64& rng);

  /// One Payment transaction.
  Status RunPayment(core::ComputeNode* node, Random64& rng);

  const TpccOptions& options() const { return options_; }
  const core::Table& warehouse() const { return *warehouse_; }
  const core::Table& district() const { return *district_; }
  const core::Table& customer() const { return *customer_; }
  const core::Table& stock() const { return *stock_; }

  // Key helpers.
  uint64_t DistrictKey(uint32_t w, uint32_t d) const {
    return static_cast<uint64_t>(w) * options_.districts_per_wh + d;
  }
  uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
    return DistrictKey(w, d) * options_.customers_per_district + c;
  }
  uint64_t StockKey(uint32_t w, uint32_t s) const {
    return static_cast<uint64_t>(w) * options_.stock_per_wh + s;
  }

 private:
  TpccLite() = default;

  TpccOptions options_;
  const core::Table* warehouse_ = nullptr;
  const core::Table* district_ = nullptr;
  const core::Table* customer_ = nullptr;
  const core::Table* stock_ = nullptr;
};

}  // namespace dsmdb::workload

#endif  // DSMDB_WORKLOAD_TPCC_LITE_H_
