#include "workload/smallbank.h"

#include <algorithm>

namespace dsmdb::workload {

SmallBankWorkload::SmallBankWorkload(const SmallBankOptions& options,
                                     uint64_t seed)
    : options_(options),
      rng_(seed),
      zipf_(options.num_accounts, options.zipf_theta,
            seed ^ 0xA24BAED4963EE407ULL) {}

uint64_t SmallBankWorkload::SampleAccount() { return zipf_.NextScrambled(); }

uint64_t SmallBankWorkload::SampleAccountInOtherShard(uint64_t other) {
  if (options_.num_shards <= 1) return other == 0 ? 1 : other - 1;
  const uint64_t per =
      (options_.num_accounts + options_.num_shards - 1) /
      options_.num_shards;
  const uint64_t other_shard = other / per;
  for (int tries = 0; tries < 64; tries++) {
    const uint64_t a = SampleAccount();
    if (a / per != other_shard) return a;
  }
  // Fallback: first account of the next shard.
  const uint64_t shard = (other_shard + 1) % options_.num_shards;
  return std::min(shard * per, options_.num_accounts - 1);
}

std::vector<core::TxnOp> SmallBankWorkload::NextTxn() {
  const double p = rng_.NextDouble();
  std::vector<core::TxnOp> ops;
  if (p < options_.balance_fraction) {
    // Balance: read one account.
    ops.push_back(core::TxnOp::Read(SampleAccount()));
    return ops;
  }
  if (p < options_.balance_fraction + options_.payment_fraction) {
    // SendPayment: move funds between two accounts.
    const uint64_t from = SampleAccount();
    uint64_t to;
    if (rng_.Bernoulli(options_.cross_shard_fraction)) {
      to = SampleAccountInOtherShard(from);
    } else {
      to = SampleAccount();
      if (to == from) to = from == 0 ? 1 : from - 1;
    }
    const int64_t amount = static_cast<int64_t>(rng_.Uniform(100)) + 1;
    // Key-ordered ops (lock-ordering discipline).
    const uint64_t lo = std::min(from, to);
    const uint64_t hi = std::max(from, to);
    ops.push_back(core::TxnOp::Add(lo, lo == from ? -amount : amount));
    ops.push_back(core::TxnOp::Add(hi, hi == from ? -amount : amount));
    return ops;
  }
  // Deposit: add to one account.
  ops.push_back(core::TxnOp::Add(
      SampleAccount(), static_cast<int64_t>(rng_.Uniform(100)) + 1));
  return ops;
}

}  // namespace dsmdb::workload
