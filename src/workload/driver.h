#ifndef DSMDB_WORKLOAD_DRIVER_H_
#define DSMDB_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "core/compute_node.h"
#include "obs/stats_exporter.h"

namespace dsmdb::workload {

struct DriverOptions {
  uint32_t threads_per_node = 4;
  uint64_t txns_per_thread = 1'000;
  uint64_t seed = 42;
  /// Concurrent transactions multiplexed per worker thread. At 1 (the
  /// default) the worker runs its attempts back to back, exactly the
  /// pre-scheduler behavior. At N > 1 each worker drives N cooperative
  /// task lanes over one simulated core (rt::Scheduler): lanes pull
  /// attempts from the worker's shared budget of `txns_per_thread`, and a
  /// lane parked on a verb completion hides its RTT behind sibling lanes'
  /// compute. `thread_idx` passed to the TxnFn is the globally unique
  /// lane index (== the worker index when depth is 1).
  uint32_t in_flight_depth = 1;
};

struct DriverResult {
  uint64_t attempts = 0;
  uint64_t committed = 0;
  /// Simulated wall-clock of the run = max over worker threads.
  double sim_seconds = 0;
  /// Committed transactions per simulated second.
  double throughput_tps = 0;
  Histogram latency_ns;  ///< per-attempt simulated latency

  double AbortRate() const {
    return attempts == 0
               ? 0.0
               : 1.0 - static_cast<double>(committed) /
                           static_cast<double>(attempts);
  }
  std::string ToString() const;

  /// Publishes this run under `workload.<name>.*`: attempts/committed as
  /// counters, per-attempt latency as a histogram (p50/p95/p99/max in the
  /// JSON report), throughput/abort-rate/sim-seconds as scalars.
  void ExportTo(obs::StatsExporter* exporter, const std::string& name) const;
};

/// Executes one transaction attempt on `node`; returns true if committed.
/// Runs on a worker thread with a private RNG; `thread_idx` is global
/// across nodes.
using TxnFn =
    std::function<bool(core::ComputeNode* node, uint32_t thread_idx,
                       Random64& rng)>;

/// Runs `threads_per_node` workers on every compute node, each performing
/// `txns_per_thread` attempts, and aggregates simulated-time metrics.
/// Every worker's SimClock starts at zero; throughput is measured in
/// simulated time (deterministic shape, host-independent).
DriverResult RunDriver(const std::vector<core::ComputeNode*>& nodes,
                       const DriverOptions& options, const TxnFn& fn);

}  // namespace dsmdb::workload

#endif  // DSMDB_WORKLOAD_DRIVER_H_
