#include "workload/ycsb.h"

#include <algorithm>

#include "common/coding.h"

namespace dsmdb::workload {

YcsbWorkload::YcsbWorkload(const YcsbOptions& options, uint64_t seed)
    : options_(options),
      rng_(seed),
      zipf_(options.range_end > options.range_begin
                ? options.range_end - options.range_begin
                : options.num_keys,
            options.zipf_theta, seed ^ 0xD6E8FEB86659FD93ULL) {}

uint64_t YcsbWorkload::NextKey() {
  const uint64_t base =
      options_.range_end > options_.range_begin ? options_.range_begin : 0;
  return base + zipf_.NextScrambled();
}

std::string YcsbWorkload::ValueFor(uint64_t key, uint64_t version) const {
  std::string v(options_.value_size, '\0');
  if (options_.value_size >= 16) {
    EncodeFixed64(v.data(), key);
    EncodeFixed64(v.data() + 8, version);
  }
  return v;
}

std::vector<core::TxnOp> YcsbWorkload::NextTxn() {
  std::vector<core::TxnOp> ops;
  ops.reserve(options_.ops_per_txn);
  std::vector<uint64_t> keys;
  keys.reserve(options_.ops_per_txn);
  while (keys.size() < options_.ops_per_txn) {
    const uint64_t key = NextKey();
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
    keys.push_back(key);
  }
  // Sort keys so lock-based protocols acquire in a global order (standard
  // deadlock-avoidance discipline for one-shot workloads).
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    if (rng_.Bernoulli(options_.write_fraction)) {
      ops.push_back(core::TxnOp::Write(key, ValueFor(key, rng_.Next())));
    } else {
      ops.push_back(core::TxnOp::Read(key));
    }
  }
  return ops;
}

}  // namespace dsmdb::workload
