#include "workload/tpcc_lite.h"

#include <algorithm>

#include "common/coding.h"

namespace dsmdb::workload {

namespace {

/// Writes the numeric column into a fresh value payload.
std::string NumericValue(uint32_t value_size, int64_t number) {
  std::string v(value_size, '\0');
  EncodeFixed64(v.data(), static_cast<uint64_t>(number));
  return v;
}

int64_t NumberOf(const std::string& value) {
  return static_cast<int64_t>(DecodeFixed64(value.data()));
}

/// Read-modify-write of the numeric column inside an open transaction.
Status AddToRecord(txn::Transaction* txn, const core::Table& table,
                   uint64_t key, int64_t delta, int64_t* result = nullptr) {
  const txn::RecordRef ref = table.RefFor(key);
  std::string value;
  DSMDB_RETURN_NOT_OK(txn->Read(ref, &value));
  const int64_t updated = NumberOf(value) + delta;
  EncodeFixed64(value.data(), static_cast<uint64_t>(updated));
  DSMDB_RETURN_NOT_OK(txn->Write(ref, value));
  if (result != nullptr) *result = updated;
  return Status::OK();
}

}  // namespace

Result<TpccLite> TpccLite::Create(core::DsmDb* db,
                                  const TpccOptions& options) {
  TpccLite t;
  t.options_ = options;

  const uint64_t n_wh = options.warehouses;
  const uint64_t n_di = n_wh * options.districts_per_wh;
  const uint64_t n_cu = n_di * options.customers_per_district;
  const uint64_t n_st = n_wh * options.stock_per_wh;

  DSMDB_ASSIGN_OR_RETURN(
      t.warehouse_,
      db->CreateTable("warehouse", {options.value_size, n_wh}));
  DSMDB_ASSIGN_OR_RETURN(
      t.district_, db->CreateTable("district", {options.value_size, n_di}));
  DSMDB_ASSIGN_OR_RETURN(
      t.customer_, db->CreateTable("customer", {options.value_size, n_cu}));
  DSMDB_ASSIGN_OR_RETURN(
      t.stock_, db->CreateTable("stock", {options.value_size, n_st}));

  // Initial load: direct DSM writes through the admin client (headers are
  // already zeroed by Table::Create).
  dsm::DsmClient& admin = db->admin();
  auto load = [&](const core::Table& table, uint64_t key,
                  int64_t number) -> Status {
    const std::string v = NumericValue(options.value_size, number);
    return admin.Write(table.RefFor(key).Value(), v.data(), v.size());
  };
  for (uint64_t w = 0; w < n_wh; w++) {
    DSMDB_RETURN_NOT_OK(load(*t.warehouse_, w, 0));  // ytd = 0
  }
  for (uint64_t d = 0; d < n_di; d++) {
    DSMDB_RETURN_NOT_OK(load(*t.district_, d, 1));  // next_o_id = 1
  }
  for (uint64_t c = 0; c < n_cu; c++) {
    DSMDB_RETURN_NOT_OK(load(*t.customer_, c, 10'000));  // balance
  }
  for (uint64_t s = 0; s < n_st; s++) {
    DSMDB_RETURN_NOT_OK(load(*t.stock_, s, 100));  // quantity
  }
  return t;
}

Status TpccLite::RunNewOrder(core::ComputeNode* node, Random64& rng) {
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(options_.warehouses));
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(options_.districts_per_wh));
  const uint32_t c = static_cast<uint32_t>(
      rng.Uniform(options_.customers_per_district));
  const uint32_t lines =
      1 + static_cast<uint32_t>(rng.Uniform(options_.max_order_lines));

  Result<std::unique_ptr<txn::Transaction>> txn = node->Begin();
  if (!txn.ok()) return txn.status();

  // Read the customer.
  std::string cust;
  DSMDB_RETURN_NOT_OK(
      (*txn)->Read(customer_->RefFor(CustomerKey(w, d, c)), &cust));

  // Take the next order id from the district.
  DSMDB_RETURN_NOT_OK(
      AddToRecord(txn->get(), *district_, DistrictKey(w, d), 1));

  // Decrement stock for each order line (distinct items, key-sorted).
  std::vector<uint64_t> item_keys;
  while (item_keys.size() < lines) {
    const uint64_t s = rng.Uniform(options_.stock_per_wh);
    const uint64_t key = StockKey(w, static_cast<uint32_t>(s));
    if (std::find(item_keys.begin(), item_keys.end(), key) !=
        item_keys.end()) {
      continue;
    }
    item_keys.push_back(key);
  }
  std::sort(item_keys.begin(), item_keys.end());
  for (uint64_t key : item_keys) {
    const int64_t qty = static_cast<int64_t>(rng.Uniform(10)) + 1;
    int64_t remaining = 0;
    DSMDB_RETURN_NOT_OK(
        AddToRecord(txn->get(), *stock_, key, -qty, &remaining));
    if (remaining < 0) {
      // Restock, as TPC-C does when quantity runs low.
      DSMDB_RETURN_NOT_OK(AddToRecord(txn->get(), *stock_, key, 1'000));
    }
  }
  return (*txn)->Commit();
}

Status TpccLite::RunPayment(core::ComputeNode* node, Random64& rng) {
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(options_.warehouses));
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(options_.districts_per_wh));
  const uint32_t c = static_cast<uint32_t>(
      rng.Uniform(options_.customers_per_district));
  uint32_t pay_w = w;
  if (options_.warehouses > 1 &&
      rng.Bernoulli(options_.remote_payment_fraction)) {
    pay_w = static_cast<uint32_t>(rng.Uniform(options_.warehouses));
  }
  const int64_t amount = static_cast<int64_t>(rng.Uniform(5'000)) + 1;

  Result<std::unique_ptr<txn::Transaction>> txn = node->Begin();
  if (!txn.ok()) return txn.status();
  DSMDB_RETURN_NOT_OK(AddToRecord(txn->get(), *warehouse_, pay_w, amount));
  DSMDB_RETURN_NOT_OK(
      AddToRecord(txn->get(), *district_, DistrictKey(pay_w, d), amount));
  DSMDB_RETURN_NOT_OK(AddToRecord(txn->get(), *customer_,
                                  CustomerKey(w, d, c), -amount));
  return (*txn)->Commit();
}

}  // namespace dsmdb::workload
