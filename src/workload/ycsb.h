#ifndef DSMDB_WORKLOAD_YCSB_H_
#define DSMDB_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/compute_node.h"

namespace dsmdb::workload {

/// YCSB-style key-value workload: multi-op transactions over a single
/// table with zipfian key popularity and a configurable write fraction —
/// the knobs the paper's CC/architecture discussions turn on (contention,
/// read/write mix, skew).
struct YcsbOptions {
  uint64_t num_keys = 100'000;
  /// Zipfian skew (0 = uniform; YCSB default 0.99 must be < 1).
  double zipf_theta = 0.99;
  /// Probability an op is a write.
  double write_fraction = 0.5;
  uint32_t ops_per_txn = 4;
  uint32_t value_size = 64;
  /// Restrict generated keys to [range_begin, range_end) — used to give
  /// each compute node an affinity region (sharded experiments).
  uint64_t range_begin = 0;
  uint64_t range_end = 0;  // 0 = num_keys
};

/// Per-thread generator (deterministic given the seed).
class YcsbWorkload {
 public:
  YcsbWorkload(const YcsbOptions& options, uint64_t seed);

  /// The next transaction's ops (distinct keys within the txn).
  std::vector<core::TxnOp> NextTxn();

  /// One key sample (for single-op microbenchmarks).
  uint64_t NextKey();

  const YcsbOptions& options() const { return options_; }

  /// The payload written for `key` (checkable pattern).
  std::string ValueFor(uint64_t key, uint64_t version) const;

 private:
  YcsbOptions options_;
  Random64 rng_;
  ZipfianGenerator zipf_;
};

}  // namespace dsmdb::workload

#endif  // DSMDB_WORKLOAD_YCSB_H_
