#include "check/checker.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sim_clock.h"
#include "obs/trace.h"

namespace dsmdb::check {

#if defined(DSMDB_CHECK_ENABLED)

namespace {

// ---------------------------------------------------------------------------
// Vector clocks. Thread ids are dense checker-local slots assigned at first
// instrumented access and never reused; a clock is a dense vector indexed by
// slot. Short-lived test threads cost one slot each — a few hundred per test
// binary, so dense vectors stay small.
// ---------------------------------------------------------------------------
using VectorClock = std::vector<uint64_t>;

uint64_t ClockAt(const VectorClock& vc, uint32_t tid) {
  return tid < vc.size() ? vc[tid] : 0;
}

void JoinInto(VectorClock* dst, const VectorClock& src) {
  if (src.size() > dst->size()) dst->resize(src.size(), 0);
  for (size_t i = 0; i < src.size(); i++) {
    if (src[i] > (*dst)[i]) (*dst)[i] = src[i];
  }
}

struct HeldLock {
  uintptr_t word = 0;
  uint32_t node = 0;
  uint64_t offset = 0;
  uint64_t span_id = 0;
  uint64_t sim_ns = 0;
  uint64_t region_epoch = 0;
};

struct ThreadState {
  uint32_t tid = 0;
  VectorClock vc;  ///< vc[tid] is this thread's own clock; only we write it.
  int optimistic_depth = 0;
  int nocall_depth = 0;
  const char* nocall_where[8] = {};
  int blocking_lock_depth = 0;
  int trylock_depth = 0;
  std::vector<HeldLock> held;
};

// One access recorded in a word's data shadow.
struct ShadowAccess {
  uint32_t tid = 0;
  uint64_t clk = 0;  ///< Accessor's own clock component at access time.
  AccessInfo info;
};

// Per-word shadow state. A word is either plain data (last write + reads)
// or a sync var (a published vector clock). The first CAS/FAA on a word
// classifies it as sync and discards its data history — lock and version
// words are synchronization, not data, and checking them as data would
// flag every legitimate lock handoff.
struct ShadowWord {
  bool is_sync = false;
  bool reported = false;  ///< One race report per word, then silence.
  VectorClock sync_vc;
  bool has_write = false;
  ShadowAccess last_write;
  std::vector<ShadowAccess> reads;
};

struct ShadowShard {
  std::mutex mu;
  std::unordered_map<uintptr_t, ShadowWord> words;
};

struct LockEdge {
  uint32_t tid = 0;
  uint64_t sim_ns = 0;
  uint64_t held_span = 0;
  uint64_t acq_span = 0;
  uint32_t from_node = 0, to_node = 0;
  uint64_t from_off = 0, to_off = 0;
};

struct CheckerState {
  std::atomic<bool> enabled{true};
  std::atomic<bool> abort_on_report{true};
  std::atomic<uint64_t> region_epoch{1};

  std::mutex threads_mu;
  std::vector<ThreadState*> threads;  // never freed; slots are stable

  static constexpr size_t kShards = 64;
  ShadowShard shards[kShards];

  std::mutex vars_mu;  // rpc vars, user vars, fork tokens
  std::unordered_map<uint64_t, VectorClock> rpc_vars;
  std::unordered_map<uint64_t, VectorClock> user_vars;
  // Fork tokens carry two separate clocks. `fork` flows parent -> children
  // only and `join` children -> parent only; one shared clock would let a
  // sibling that finished early happen-before a sibling that started late
  // (a host-scheduling accident, not a protocol edge) and mask races
  // between independent branches.
  struct ForkVar {
    VectorClock fork;
    VectorClock join;
  };
  std::unordered_map<uint64_t, ForkVar> fork_vars;
  uint64_t next_fork_token = 1;

  std::mutex lock_mu;
  std::unordered_map<uintptr_t, std::unordered_map<uintptr_t, LockEdge>>
      lock_edges;
  std::unordered_set<uint64_t> reported_cycles;  // hash of inserted edge

  std::mutex reports_mu;
  std::vector<Report> reports;
  size_t report_count = 0;  // total, including ones dropped past the cap
};

CheckerState& S() {
  static CheckerState* s = new CheckerState();  // leaked: outlives threads
  return *s;
}

ThreadState& Self() {
  thread_local ThreadState* ts = [] {
    auto* t = new ThreadState();  // leaked: clocks must outlive the thread
    CheckerState& s = S();
    std::lock_guard<std::mutex> g(s.threads_mu);
    t->tid = static_cast<uint32_t>(s.threads.size());
    t->vc.resize(t->tid + 1, 0);
    t->vc[t->tid] = 1;
    s.threads.push_back(t);
    return t;
  }();
  return *ts;
}

ShadowShard& ShardFor(uintptr_t word) {
  return S().shards[(word >> 3) * 0x9E3779B97F4A7C15ULL >> 58];
}

bool On() { return S().enabled.load(std::memory_order_relaxed); }

bool DebugOn() {
  static bool on = std::getenv("DSMDB_CHECK_DEBUG") != nullptr;
  return on;
}

AccessInfo MakeInfo(ThreadState& me, bool is_write, const char* verb,
                    uint32_t node, uint64_t offset) {
  AccessInfo a;
  a.tid = me.tid;
  a.is_write = is_write;
  a.verb = verb;
  a.node = node;
  a.offset = offset;
  a.sim_ns = SimClock::Now();
  a.span_id = obs::CurrentSpanId();
  a.txn_id = obs::CurrentTxnId();
  return a;
}

// (t, c) happened-before the current state of `me` iff me has joined t's
// clock up to at least c.
bool HappensBefore(const ShadowAccess& a, const ThreadState& me) {
  return a.clk <= ClockAt(me.vc, a.tid);
}

void Emit(Report&& r) {
  CheckerState& s = S();
  std::fprintf(stderr, "%s", r.message.c_str());
  std::fflush(stderr);
  bool die = s.abort_on_report.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(s.reports_mu);
    s.report_count++;
    if (s.reports.size() < 256) s.reports.push_back(std::move(r));
  }
  if (die) {
    std::fprintf(stderr,
                 "==DSMDB-CHECK== aborting (Checker::SetAbortOnReport(false) "
                 "to collect instead)\n");
    std::fflush(stderr);
    std::abort();
  }
}

std::string DescribeAccess(const char* label, const AccessInfo& a) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %s %-5s by checker-thread %u at sim %" PRIu64
                " ns, span %" PRIu64 ", txn %" PRIu64 "\n",
                label, a.verb, a.tid, a.sim_ns, a.span_id, a.txn_id);
  return buf;
}

void ReportRace(const ShadowAccess& prev, const AccessInfo& cur) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "==DSMDB-CHECK== protocol data race on node %u offset 0x%"
                PRIx64 " (8-byte word)\n",
                cur.node, cur.offset & ~7ULL);
  Report r;
  r.kind = ReportKind::kDataRace;
  r.first = prev.info;
  r.second = cur;
  r.message = std::string(head) + DescribeAccess("earlier:", prev.info) +
              DescribeAccess("racing: ", cur) +
              "  no happens-before edge in simulated time connects these "
              "accesses;\n  run with --trace and look up the span ids in the "
              "trace tree\n";
  Emit(std::move(r));
}

// --- sync-var primitives (word must be classified sync, shard locked) ------
void VarJoin(ThreadState& me, const VectorClock& var) { JoinInto(&me.vc, var); }

void VarPublish(ThreadState& me, VectorClock* var) {
  JoinInto(var, me.vc);
  me.vc[me.tid]++;  // what we do after the publish is not covered by it
}

// Walks the 8-byte-aligned words overlapping [host, host+len).
template <typename Fn>
void ForEachWord(const void* host, size_t len, Fn&& fn) {
  if (len == 0) return;
  uintptr_t p = reinterpret_cast<uintptr_t>(host) & ~7ULL;
  uintptr_t end = reinterpret_cast<uintptr_t>(host) + len;
  for (; p < end; p += 8) fn(p, (p - (reinterpret_cast<uintptr_t>(host) & ~7ULL)) >> 3);
}

// --- lockdep ---------------------------------------------------------------

uint64_t EdgeHash(uintptr_t a, uintptr_t b) {
  return (static_cast<uint64_t>(a) * 0x9E3779B97F4A7C15ULL) ^
         static_cast<uint64_t>(b);
}

// DFS over lock_edges from `from`, looking for `target`. lock_mu held.
bool PathExists(const CheckerState& s, uintptr_t from, uintptr_t target,
                std::unordered_set<uintptr_t>* seen,
                std::vector<uintptr_t>* path) {
  if (from == target) return true;
  if (!seen->insert(from).second) return false;
  auto it = s.lock_edges.find(from);
  if (it == s.lock_edges.end()) return false;
  for (const auto& [next, edge] : it->second) {
    path->push_back(next);
    if (PathExists(s, next, target, seen, path)) return true;
    path->pop_back();
  }
  return false;
}

std::string DescribeLockWord(uint32_t node, uint64_t off) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "lock(node %u, offset 0x%" PRIx64 ")", node,
                off);
  return buf;
}

void AddLockEdges(ThreadState& me, const HeldLock& acquiring) {
  CheckerState& s = S();
  const uint64_t epoch = s.region_epoch.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> g(s.lock_mu);
  for (const HeldLock& held : me.held) {
    if (held.word == acquiring.word) continue;
    if (held.region_epoch != epoch) continue;  // region purged since acquire
    auto& out = s.lock_edges[held.word];
    if (out.count(acquiring.word)) continue;  // edge already known
    LockEdge e;
    e.tid = me.tid;
    e.sim_ns = acquiring.sim_ns;
    e.held_span = held.span_id;
    e.acq_span = acquiring.span_id;
    e.from_node = held.node;
    e.from_off = held.offset;
    e.to_node = acquiring.node;
    e.to_off = acquiring.offset;
    // Cycle check BEFORE inserting: does acquiring already reach held?
    std::unordered_set<uintptr_t> seen;
    std::vector<uintptr_t> path;
    path.push_back(acquiring.word);
    const bool cycle =
        PathExists(s, acquiring.word, held.word, &seen, &path);
    out.emplace(acquiring.word, e);
    if (!cycle) continue;
    if (!s.reported_cycles.insert(EdgeHash(held.word, acquiring.word)).second)
      continue;
    // Describe the inversion: we take held -> acquiring, while some other
    // chain already orders acquiring -> ... -> held.
    std::string msg =
        "==DSMDB-CHECK== potential deadlock: lock-order inversion\n";
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  checker-thread %u takes %s while holding %s (held span %"
                  PRIu64 ", acquiring span %" PRIu64 ", sim %" PRIu64 " ns)\n",
                  me.tid, DescribeLockWord(e.to_node, e.to_off).c_str(),
                  DescribeLockWord(e.from_node, e.from_off).c_str(),
                  e.held_span, e.acq_span, e.sim_ns);
    msg += line;
    msg += "  but the existing lock-order graph already orders:\n";
    for (size_t i = 0; i + 1 < path.size(); i++) {
      const LockEdge& pe = s.lock_edges[path[i]].at(path[i + 1]);
      std::snprintf(line, sizeof(line),
                    "    %s -> %s (checker-thread %u, spans %" PRIu64 " -> %"
                    PRIu64 ")\n",
                    DescribeLockWord(pe.from_node, pe.from_off).c_str(),
                    DescribeLockWord(pe.to_node, pe.to_off).c_str(), pe.tid,
                    pe.held_span, pe.acq_span);
      msg += line;
    }
    msg +=
        "  a schedule interleaving these acquisition orders deadlocks; "
        "sort lock\n  addresses or use try-acquire with abort/retry\n";
    Report r;
    r.kind = ReportKind::kLockCycle;
    r.message = std::move(msg);
    Emit(std::move(r));
  }
}

// Exclusive-lock words set bit 63 (txn/rdma_lock.h MakeExclusiveLock). A
// successful CAS 0 -> bit63-value is an acquisition; bit63-value -> 0 is a
// release — this catches the raw pipelined release CAS batches OCC/MVCC/2PL
// post on commit without needing protocol-level release hooks.
constexpr uint64_t kLockBit = 1ULL << 63;

void EraseHeld(ThreadState& me, uintptr_t word) {
  for (size_t i = 0; i < me.held.size(); i++) {
    if (me.held[i].word == word) {
      me.held.erase(me.held.begin() + i);
      break;
    }
  }
}

void LockdepOnCas(ThreadState& me, uintptr_t word, uint32_t node,
                  uint64_t offset, uint64_t expected, uint64_t desired,
                  uint64_t prev) {
  const bool acquire = expected == 0 && (desired & kLockBit) != 0;
  const bool release = (expected & kLockBit) != 0 && desired == 0;
  if (prev != expected) {
    // Failed CAS: no transition happened. But a failed *release* means the
    // word no longer holds this thread's value — a lease reclaim freed it
    // out from under a doomed holder (dsm/lease.h: "its release fails
    // benignly on the reclaimed word"). The hold is over either way; keep
    // the stale entry and every later blocking acquisition would add edges
    // from a lock this thread no longer holds — false inversions.
    if (release) EraseHeld(me, word);
    return;
  }
  if (acquire) {
    HeldLock h;
    h.word = word;
    h.node = node;
    h.offset = offset;
    h.span_id = obs::CurrentSpanId();
    h.sim_ns = SimClock::Now();
    h.region_epoch = S().region_epoch.load(std::memory_order_relaxed);
    // Try-lock transitions (TryLockScope: lease reclaim of a stranger's
    // word) hold without ordering: no edges, no deadlock potential.
    if (me.trylock_depth == 0 && me.blocking_lock_depth > 0 &&
        !me.held.empty()) {
      AddLockEdges(me, h);
    }
    me.held.push_back(h);
  } else if (release) {
    EraseHeld(me, word);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Hooks
// ---------------------------------------------------------------------------

void OnRemoteRead(const void* host, size_t len, uint32_t node,
                  uint64_t offset) {
  if (!On()) return;
  ThreadState& me = Self();
  ForEachWord(host, len, [&](uintptr_t word, uint64_t word_idx) {
    ShadowShard& shard = ShardFor(word);
    std::lock_guard<std::mutex> g(shard.mu);
    auto it = shard.words.find(word);
    if (it == shard.words.end()) {
      if (me.optimistic_depth > 0) return;  // don't materialize shadow
      it = shard.words.emplace(word, ShadowWord()).first;
    }
    ShadowWord& w = it->second;
    if (DebugOn()) {
      std::fprintf(stderr,
                   "[check-dbg] READ tid=%u word=%p sync=%d opt=%d clk=%llu\n",
                   me.tid, reinterpret_cast<void*>(word), (int)w.is_sync,
                   me.optimistic_depth,
                   (unsigned long long)me.vc[me.tid]);
    }
    if (w.is_sync) {
      // Plain read of a sync word (version validation, Peek) acquires it.
      VarJoin(me, w.sync_vc);
      return;
    }
    if (me.optimistic_depth > 0) return;
    // Offsets are reported relative to the host-word-aligned base so two
    // accesses to the same host word print the same node/offset even when
    // the requests' region offsets are not 8-aligned.
    AccessInfo info =
        MakeInfo(me, false, "READ", node, (offset & ~7ULL) + word_idx * 8);
    if (!w.reported && w.has_write && w.last_write.tid != me.tid &&
        !HappensBefore(w.last_write, me)) {
      w.reported = true;
      ReportRace(w.last_write, info);
    }
    // Record/update our read; prune entries our clock already covers.
    for (size_t i = 0; i < w.reads.size();) {
      if (w.reads[i].tid == me.tid || HappensBefore(w.reads[i], me)) {
        w.reads[i] = w.reads.back();
        w.reads.pop_back();
      } else {
        i++;
      }
    }
    ShadowAccess a;
    a.tid = me.tid;
    a.clk = me.vc[me.tid];
    a.info = info;
    w.reads.push_back(a);
  });
}

void OnRemoteWrite(const void* host, size_t len, uint32_t node,
                   uint64_t offset) {
  if (!On()) return;
  ThreadState& me = Self();
  ForEachWord(host, len, [&](uintptr_t word, uint64_t word_idx) {
    ShadowShard& shard = ShardFor(word);
    std::lock_guard<std::mutex> g(shard.mu);
    auto it = shard.words.find(word);
    if (it == shard.words.end()) {
      if (me.optimistic_depth > 0) return;
      it = shard.words.emplace(word, ShadowWord()).first;
    }
    ShadowWord& w = it->second;
    if (DebugOn()) {
      std::fprintf(stderr,
                   "[check-dbg] WRITE tid=%u word=%p sync=%d opt=%d clk=%llu "
                   "has_write=%d lw.tid=%u lw.clk=%llu reads=%zu\n",
                   me.tid, reinterpret_cast<void*>(word), (int)w.is_sync,
                   me.optimistic_depth,
                   (unsigned long long)me.vc[me.tid], (int)w.has_write,
                   w.last_write.tid,
                   (unsigned long long)w.last_write.clk, w.reads.size());
    }
    if (w.is_sync) {
      // A plain store to a sync word releases it (e.g. TSO installs the
      // new packed version with a plain write; readers join via CAS/read).
      VarPublish(me, &w.sync_vc);
      return;
    }
    if (me.optimistic_depth > 0) return;
    AccessInfo info =
        MakeInfo(me, true, "WRITE", node, (offset & ~7ULL) + word_idx * 8);
    if (!w.reported) {
      if (w.has_write && w.last_write.tid != me.tid &&
          !HappensBefore(w.last_write, me)) {
        w.reported = true;
        ReportRace(w.last_write, info);
      }
      for (const ShadowAccess& rd : w.reads) {
        if (w.reported) break;
        if (rd.tid != me.tid && !HappensBefore(rd, me)) {
          w.reported = true;
          ReportRace(rd, info);
        }
      }
    }
    w.has_write = true;
    w.last_write.tid = me.tid;
    w.last_write.clk = me.vc[me.tid];
    w.last_write.info = info;
    w.reads.clear();
  });
}

void OnRemoteCas(const void* host, uint32_t node, uint64_t offset,
                 uint64_t expected, uint64_t desired, uint64_t prev) {
  if (!On()) return;
  ThreadState& me = Self();
  const uintptr_t word = reinterpret_cast<uintptr_t>(host) & ~7ULL;
  {
    ShadowShard& shard = ShardFor(word);
    std::lock_guard<std::mutex> g(shard.mu);
    ShadowWord& w = shard.words[word];
    if (!w.is_sync) {
      // First CAS classifies the word as a sync var; its life as data ends.
      w.is_sync = true;
      w.has_write = false;
      w.reads.clear();
      w.sync_vc.clear();
    }
    if (prev == expected) {
      VarJoin(me, w.sync_vc);      // we observed the previous owner
      VarPublish(me, &w.sync_vc);  // and extend the RMW chain
    } else {
      VarJoin(me, w.sync_vc);  // failed CAS still read the word
    }
  }
  LockdepOnCas(me, word, node, offset, expected, desired, prev);
}

void OnRemoteFaa(const void* host, uint32_t node, uint64_t offset) {
  if (!On()) return;
  (void)node;
  (void)offset;
  ThreadState& me = Self();
  const uintptr_t word = reinterpret_cast<uintptr_t>(host) & ~7ULL;
  ShadowShard& shard = ShardFor(word);
  std::lock_guard<std::mutex> g(shard.mu);
  ShadowWord& w = shard.words[word];
  if (!w.is_sync) {
    w.is_sync = true;
    w.has_write = false;
    w.reads.clear();
    w.sync_vc.clear();
  }
  VarJoin(me, w.sync_vc);
  VarPublish(me, &w.sync_vc);
}

void OnRpcCall(uint32_t target, uint32_t service) {
  if (!On()) return;
  ThreadState& me = Self();
  if (me.nocall_depth > 0) {
    // Labels are recorded only for the first 8 nesting levels; beyond that
    // the innermost zone's label was never stored, so report a sentinel
    // rather than the stale/outer label at slot 7.
    const char* where = me.nocall_depth <= 8
                            ? me.nocall_where[me.nocall_depth - 1]
                            : "<nocall zones nested deeper than 8>";
    char line[256];
    std::snprintf(line, sizeof(line),
                  "==DSMDB-CHECK== two-sided call posted inside no-call zone "
                  "\"%s\"\n  (target node %u, service %u, checker-thread %u, "
                  "span %" PRIu64 ")\n  a handler on the target can call back "
                  "into the latched structure and\n  self-deadlock; move the "
                  "call outside the critical section\n",
                  where ? where : "?", target, service, me.tid,
                  obs::CurrentSpanId());
    Report r;
    r.kind = ReportKind::kCallInNoCallZone;
    r.message = line;
    Emit(std::move(r));
  }
  CheckerState& s = S();
  const uint64_t key = (static_cast<uint64_t>(target) << 32) | service;
  std::lock_guard<std::mutex> g(s.vars_mu);
  auto it = s.rpc_vars.find(key);
  if (it != s.rpc_vars.end()) VarJoin(me, it->second);
}

void OnRpcReturn(uint32_t target, uint32_t service) {
  if (!On()) return;
  ThreadState& me = Self();
  CheckerState& s = S();
  const uint64_t key = (static_cast<uint64_t>(target) << 32) | service;
  std::lock_guard<std::mutex> g(s.vars_mu);
  VarPublish(me, &s.rpc_vars[key]);
}

void OnRegionRegistered(const void* base, size_t len) {
  OnRegionDropped(base, len);  // purge whatever the allocator reused
}

void OnRegionDropped(const void* base, size_t len) {
  if (!On()) return;
  CheckerState& s = S();
  const uintptr_t lo = reinterpret_cast<uintptr_t>(base) & ~7ULL;
  const uintptr_t hi = reinterpret_cast<uintptr_t>(base) + len;
  for (ShadowShard& shard : s.shards) {
    std::lock_guard<std::mutex> g(shard.mu);
    for (auto it = shard.words.begin(); it != shard.words.end();) {
      if (it->first >= lo && it->first < hi) {
        it = shard.words.erase(it);
      } else {
        ++it;
      }
    }
  }
  {
    std::lock_guard<std::mutex> g(s.lock_mu);
    for (auto it = s.lock_edges.begin(); it != s.lock_edges.end();) {
      if (it->first >= lo && it->first < hi) {
        it = s.lock_edges.erase(it);
        continue;
      }
      auto& out = it->second;
      for (auto e = out.begin(); e != out.end();) {
        if (e->first >= lo && e->first < hi) {
          e = out.erase(e);
        } else {
          ++e;
        }
      }
      ++it;
    }
  }
  s.region_epoch.fetch_add(1, std::memory_order_relaxed);
}

uint64_t ForkPoint() {
  if (!On()) return 0;
  ThreadState& me = Self();
  CheckerState& s = S();
  std::lock_guard<std::mutex> g(s.vars_mu);
  const uint64_t token = s.next_fork_token++;
  VarPublish(me, &s.fork_vars[token].fork);
  return token;
}

void OnThreadStart(uint64_t token) {
  if (!On() || token == 0) return;
  ThreadState& me = Self();
  CheckerState& s = S();
  std::lock_guard<std::mutex> g(s.vars_mu);
  auto it = s.fork_vars.find(token);
  if (it != s.fork_vars.end()) VarJoin(me, it->second.fork);
}

void OnThreadFinish(uint64_t token) {
  if (!On() || token == 0) return;
  ThreadState& me = Self();
  CheckerState& s = S();
  std::lock_guard<std::mutex> g(s.vars_mu);
  VarPublish(me, &s.fork_vars[token].join);
}

void OnThreadsJoined(uint64_t token) {
  if (!On() || token == 0) return;
  ThreadState& me = Self();
  CheckerState& s = S();
  std::lock_guard<std::mutex> g(s.vars_mu);
  auto it = s.fork_vars.find(token);
  if (it != s.fork_vars.end()) {
    VarJoin(me, it->second.join);
    s.fork_vars.erase(it);
  }
}

void SyncJoin(uint8_t ns, uint64_t key) {
  if (!On()) return;
  ThreadState& me = Self();
  CheckerState& s = S();
  std::lock_guard<std::mutex> g(s.vars_mu);
  auto it = s.user_vars.find((static_cast<uint64_t>(ns) << 60) ^ key);
  if (it != s.user_vars.end()) VarJoin(me, it->second);
}

void SyncPublish(uint8_t ns, uint64_t key) {
  if (!On()) return;
  ThreadState& me = Self();
  CheckerState& s = S();
  std::lock_guard<std::mutex> g(s.vars_mu);
  VarPublish(me, &s.user_vars[(static_cast<uint64_t>(ns) << 60) ^ key]);
}

OptimisticScope::OptimisticScope(const char* why) {
  (void)why;
  Self().optimistic_depth++;
}
OptimisticScope::~OptimisticScope() { Self().optimistic_depth--; }

NoCallZone::NoCallZone(const char* where) {
  ThreadState& me = Self();
  if (me.nocall_depth < 8) me.nocall_where[me.nocall_depth] = where;
  me.nocall_depth++;
}
NoCallZone::~NoCallZone() { Self().nocall_depth--; }

BlockingLockScope::BlockingLockScope() { Self().blocking_lock_depth++; }
BlockingLockScope::~BlockingLockScope() { Self().blocking_lock_depth--; }

TryLockScope::TryLockScope() { Self().trylock_depth++; }
TryLockScope::~TryLockScope() { Self().trylock_depth--; }

// ---------------------------------------------------------------------------
// Management surface
// ---------------------------------------------------------------------------

void Checker::SetEnabled(bool on) {
  S().enabled.store(on, std::memory_order_relaxed);
}
bool Checker::Enabled() { return On(); }

void Checker::SetAbortOnReport(bool on) {
  S().abort_on_report.store(on, std::memory_order_relaxed);
}

std::vector<Report> Checker::TakeReports() {
  CheckerState& s = S();
  std::lock_guard<std::mutex> g(s.reports_mu);
  std::vector<Report> out = std::move(s.reports);
  s.reports.clear();
  s.report_count = 0;
  return out;
}

size_t Checker::ReportCount() {
  CheckerState& s = S();
  std::lock_guard<std::mutex> g(s.reports_mu);
  return s.report_count;
}

void Checker::Reset() {
  CheckerState& s = S();
  for (ShadowShard& shard : s.shards) {
    std::lock_guard<std::mutex> g(shard.mu);
    shard.words.clear();
  }
  {
    std::lock_guard<std::mutex> g(s.vars_mu);
    s.rpc_vars.clear();
    s.user_vars.clear();
    s.fork_vars.clear();
  }
  {
    std::lock_guard<std::mutex> g(s.lock_mu);
    s.lock_edges.clear();
    s.reported_cycles.clear();
  }
  {
    std::lock_guard<std::mutex> g(s.reports_mu);
    s.reports.clear();
    s.report_count = 0;
  }
  s.region_epoch.fetch_add(1, std::memory_order_relaxed);
}

#else  // !DSMDB_CHECK_ENABLED

void Checker::SetEnabled(bool) {}
bool Checker::Enabled() { return false; }
void Checker::SetAbortOnReport(bool) {}
std::vector<Report> Checker::TakeReports() { return {}; }
size_t Checker::ReportCount() { return 0; }
void Checker::Reset() {}

#endif  // DSMDB_CHECK_ENABLED

}  // namespace dsmdb::check
