#ifndef DSMDB_CHECK_CHECKER_H_
#define DSMDB_CHECK_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// Protocol-level race & deadlock checker for the simulated DSM
/// ("sim-TSan" + lockdep). See DESIGN.md §7 for the happens-before model.
///
/// Why this exists: `rdma/sim_mem.h` makes simulated DMA word-atomic, so
/// every protocol-level race (a reader that skipped a lock, a writer that
/// installed before its invalidations were acked) is clean under real
/// ThreadSanitizer *by construction*. This checker re-detects those bugs
/// at the protocol level: it follows the host execution order of
/// simulated events (which is the order hooks fire in) and maintains
/// vector clocks whose edges are *protocol* synchronization — lock-word
/// CAS chains, FAA chains, two-sided calls, coherence acks, thread
/// fork/join — instead of hardware memory-order.
///
/// Everything here is compiled to nothing unless the build sets
/// -DDSMDB_CHECK=ON (which defines DSMDB_CHECK_ENABLED). The management
/// surface (`Checker`) always exists so tests can compile in both
/// configurations; in off builds it reports Compiled() == false.
namespace dsmdb::check {

enum class ReportKind {
  kDataRace,        ///< Conflicting accesses with no happens-before edge.
  kLockCycle,       ///< Lock-order inversion (potential deadlock).
  kCallInNoCallZone ///< Two-sided call posted while holding a no-call zone.
};

/// One side of a racing access pair.
struct AccessInfo {
  uint32_t tid = 0;       ///< Checker-dense thread id.
  bool is_write = false;
  const char* verb = "";  ///< "READ" / "WRITE" / "CAS" / "FAA".
  uint32_t node = 0;      ///< Fabric node owning the word.
  uint64_t offset = 0;    ///< Region offset of the 8-byte word.
  uint64_t sim_ns = 0;    ///< SimClock of the accessing thread.
  uint64_t span_id = 0;   ///< obs::CurrentSpanId() at access (0 = none).
  uint64_t txn_id = 0;    ///< obs::CurrentTxnId() at access (0 = none).
};

struct Report {
  ReportKind kind;
  std::string message;  ///< Fully formatted, multi-line, actionable.
  AccessInfo first;     ///< kDataRace: earlier access (host order).
  AccessInfo second;    ///< kDataRace: the access that raced.
};

/// Management surface. All methods are safe to call in off builds.
class Checker {
 public:
  /// True when the build compiled the instrumentation in.
  static constexpr bool Compiled() {
#if defined(DSMDB_CHECK_ENABLED)
    return true;
#else
    return false;
#endif
  }

  /// Runtime kill switch. Defaults to on when compiled in.
  static void SetEnabled(bool on);
  static bool Enabled();

  /// When true (the default), the first report is printed to stderr and
  /// the process aborts — so an instrumented ctest run fails loudly.
  /// Tests that *expect* reports turn this off and drain TakeReports().
  static void SetAbortOnReport(bool on);

  /// Drains and returns all reports collected so far.
  static std::vector<Report> TakeReports();
  static size_t ReportCount();

  /// Drops all checker state: shadow memory, sync vars, lock graph,
  /// fork/join tokens, reports. Thread clocks survive (they are
  /// monotonic, so stale state cannot resurrect). Call between test
  /// phases that reuse host memory outside Fabric::RegisterMemory.
  static void Reset();
};

/// Keys for user-level sync vars (SyncJoin/SyncPublish) live in disjoint
/// namespaces so page ids cannot collide with pool pointers.
inline constexpr uint8_t kNsPage = 0;  ///< key = page GlobalAddress Pack().
inline constexpr uint8_t kNsPool = 1;  ///< key = ThreadPool pointer.

#if defined(DSMDB_CHECK_ENABLED)

/// --- Instrumentation hooks (fabric / async engine) -----------------------
/// `host` is the resolved host address of the simulated access; shadow
/// state is keyed by host word address and purged when the owning region
/// is dropped or re-registered.
void OnRemoteRead(const void* host, size_t len, uint32_t node,
                  uint64_t offset);
void OnRemoteWrite(const void* host, size_t len, uint32_t node,
                   uint64_t offset);
/// CAS classifies the word as a sync var. A successful CAS joins and
/// publishes (an RMW chain); a failed CAS only joins. Lock-shaped
/// transitions (0 -> bit63-set, bit63-set -> 0) additionally drive
/// lockdep acquire/release bookkeeping.
void OnRemoteCas(const void* host, uint32_t node, uint64_t offset,
                 uint64_t expected, uint64_t desired, uint64_t prev);
void OnRemoteFaa(const void* host, uint32_t node, uint64_t offset);
/// Two-sided call: handler execution on the target serializes callers, so
/// a (target, service)-keyed sync var is joined before the handler runs
/// (OnRpcCall, which also trips the hold-while-posting-verb lint when
/// inside a NoCallZone) and published after it returns (OnRpcReturn —
/// the publish must cover the handler's own accesses).
void OnRpcCall(uint32_t target, uint32_t service);
void OnRpcReturn(uint32_t target, uint32_t service);

/// --- Region lifecycle ----------------------------------------------------
void OnRegionRegistered(const void* base, size_t len);
void OnRegionDropped(const void* base, size_t len);

/// --- Thread fork/join (common/thread_pool) -------------------------------
uint64_t ForkPoint();                 ///< Parent publishes; returns token.
void OnThreadStart(uint64_t token);   ///< Child joins the fork point.
void OnThreadFinish(uint64_t token);  ///< Child publishes into the token.
void OnThreadsJoined(uint64_t token); ///< Parent joins after thread join.

/// --- User-level sync vars (coherence acks, pool idle) --------------------
void SyncJoin(uint8_t ns, uint64_t key);
void SyncPublish(uint8_t ns, uint64_t key);

/// Suppresses data-shadow recording and race checks for remote accesses
/// in its scope; sync-var joins/publishes still happen. For validated
/// speculative reads (OCC/TSO/MVCC read paths re-check versions) and for
/// buffer-pool page IO (the pool tolerates transient staleness by
/// contract; coherence keeps it bounded).
class OptimisticScope {
 public:
  explicit OptimisticScope(const char* why);
  ~OptimisticScope();
  OptimisticScope(const OptimisticScope&) = delete;
  OptimisticScope& operator=(const OptimisticScope&) = delete;
};

/// Marks a critical section that must not post two-sided calls (e.g.
/// buffer-pool shard latches: a handler on the peer could call back into
/// this pool and self-deadlock in a real deployment). One-sided verbs are
/// allowed — eviction legally writes back pages under the latch.
class NoCallZone {
 public:
  explicit NoCallZone(const char* where);
  ~NoCallZone();
  NoCallZone(const NoCallZone&) = delete;
  NoCallZone& operator=(const NoCallZone&) = delete;
};

/// Wraps a *blocking* lock acquisition loop (RdmaSpinLock::Acquire).
/// Lock-shaped CAS successes inside the scope add lock-order edges from
/// every currently-held lock; try-acquires outside it hold locks without
/// creating edges (try-lock cannot deadlock).
class BlockingLockScope {
 public:
  BlockingLockScope();
  ~BlockingLockScope();
  BlockingLockScope(const BlockingLockScope&) = delete;
  BlockingLockScope& operator=(const BlockingLockScope&) = delete;
};

/// Classifies lock-shaped CASes in its scope as try-lock transitions even
/// when a BlockingLockScope is active further up the stack: acquisitions
/// are tracked as held but add no lock-order edges, and failed
/// release-shaped CASes are ignored. For lease-based orphan reclaim
/// (`MaybeReclaimOrphanLock`), which CASes a *stranger's* lock word to 0
/// from inside another acquisition's retry loop — without this scope that
/// reclaim CAS would be read as the blocking path's own lock traffic and
/// could report a false lock-order inversion.
class TryLockScope {
 public:
  TryLockScope();
  ~TryLockScope();
  TryLockScope(const TryLockScope&) = delete;
  TryLockScope& operator=(const TryLockScope&) = delete;
};

#else  // !DSMDB_CHECK_ENABLED — every hook compiles to nothing.

inline void OnRemoteRead(const void*, size_t, uint32_t, uint64_t) {}
inline void OnRemoteWrite(const void*, size_t, uint32_t, uint64_t) {}
inline void OnRemoteCas(const void*, uint32_t, uint64_t, uint64_t, uint64_t,
                        uint64_t) {}
inline void OnRemoteFaa(const void*, uint32_t, uint64_t) {}
inline void OnRpcCall(uint32_t, uint32_t) {}
inline void OnRpcReturn(uint32_t, uint32_t) {}
inline void OnRegionRegistered(const void*, size_t) {}
inline void OnRegionDropped(const void*, size_t) {}
inline uint64_t ForkPoint() { return 0; }
inline void OnThreadStart(uint64_t) {}
inline void OnThreadFinish(uint64_t) {}
inline void OnThreadsJoined(uint64_t) {}
inline void SyncJoin(uint8_t, uint64_t) {}
inline void SyncPublish(uint8_t, uint64_t) {}

class OptimisticScope {
 public:
  explicit OptimisticScope(const char*) {}
};
class NoCallZone {
 public:
  explicit NoCallZone(const char*) {}
};
class BlockingLockScope {
 public:
  BlockingLockScope() {}
};
class TryLockScope {
 public:
  TryLockScope() {}
};

#endif  // DSMDB_CHECK_ENABLED

}  // namespace dsmdb::check

#endif  // DSMDB_CHECK_CHECKER_H_
