#ifndef DSMDB_CHECK_HISTORY_H_
#define DSMDB_CHECK_HISTORY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// Isolation oracle (DESIGN.md §12). The sim-TSan layer in checker.h proves
/// the protocols race-free; this layer proves their *committed histories*
/// serializable. The six CC protocols call the Hist* hooks from their
/// read/install/commit paths; `History::Analyze` then builds the direct
/// serialization graph (wr/ww/rw edges, plus materialized real-time edges
/// for strict serializability) and reports cycles, lost updates, and
/// fractured reads as anomalies with span/txn attribution for every
/// participant.
///
/// Same build discipline as the checker: everything compiles to nothing
/// unless -DDSMDB_CHECK=ON defines DSMDB_CHECK_ENABLED. The management
/// surface (`History`) always exists; recording additionally requires a
/// runtime opt-in (`History::SetEnabled(true)`) so ordinary check-build
/// tests do not pay for history capture they never analyze.
namespace dsmdb::check {

enum class AnomalyKind {
  kCycle,          ///< Committed txns form a serialization-graph cycle.
  kLostUpdate,     ///< A committed RMW skipped versions on a record.
  kFracturedRead,  ///< A committed read observed a version no install produced.
};

/// One txn's identity inside an anomaly message, for trace lookup.
struct TxnRef {
  std::string protocol;
  uint64_t ts = 0;        ///< Protocol timestamp (0 for 2PL no-wait variants).
  uint64_t txn_id = 0;    ///< obs::CurrentTxnId() at Begin (0 = no tracing).
  uint64_t span_id = 0;   ///< obs::CurrentSpanId() at Begin.
  uint64_t begin_seq = 0; ///< Global host-order sequence at Begin.
  uint64_t commit_seq = 0;
};

struct Anomaly {
  AnomalyKind kind;
  std::string message;     ///< Fully formatted, multi-line, actionable.
  std::vector<TxnRef> txns;///< Every participant (cycle members / both sides).
};

/// Management surface. All methods are safe to call in off builds.
class History {
 public:
  static constexpr bool Compiled() {
#if defined(DSMDB_CHECK_ENABLED)
    return true;
#else
    return false;
#endif
  }

  /// Runtime opt-in. Defaults to OFF even in check builds; check_explore
  /// and the oracle tests turn it on per run.
  static void SetEnabled(bool on);
  static bool Enabled();

  /// Drops all recorded history. Call between explored schedules. Must not
  /// race with in-flight transactions (schedules are analyzed after their
  /// scheduler run returns).
  static void Reset();

  enum class IsolationLevel {
    kStrictSerializable,  ///< 2PL (both lock modes), WAIT_DIE, OCC, TSO.
    kSnapshotIsolation,   ///< MVCC: write-skew cycles are expected-by-design.
  };

  struct Analysis {
    uint64_t txns_committed = 0;
    uint64_t txns_aborted = 0;
    /// Commit path failed *after* installs were recorded (e.g. a lost verb
    /// timed out mid-pipeline): the txn's writes may be visible. In-doubt
    /// txns participate in the version order but cycles through them and
    /// version skips across them are counted separately, not as anomalies —
    /// precise blame needs a commit/abort verdict the history lacks.
    uint64_t txns_indoubt = 0;
    uint64_t records = 0;
    uint64_t versions_installed = 0;
    uint64_t reads_resolved = 0;
    /// kSnapshotIsolation only: cycles whose committed edges include >= 2
    /// read-write antidependencies. Allowed under SI (write skew); reported
    /// here so sweeps can show the protocol exercising its full envelope.
    uint64_t write_skew_cycles = 0;
    /// Cycles / version skips that involve an in-doubt txn (fault runs).
    uint64_t masked_by_indoubt = 0;
    std::vector<Anomaly> anomalies;

    bool Clean() const { return anomalies.empty(); }
  };

  /// Builds the DSG over everything recorded since Reset() and checks it.
  /// Read-only: may be called repeatedly; does not clear the history.
  static Analysis Analyze(IsolationLevel level);
};

#if defined(DSMDB_CHECK_ENABLED)

/// Version tag for HistRead/HistInstall meaning "the protocol has no
/// version word; attribute by install order". Sound only when the caller
/// holds an exclusive (or shared, for reads) lock on the record, so no
/// install can be concurrent with the hook — which is exactly the 2PL
/// contract. Version-carrying protocols (OCC/TSO/MVCC) pass the observed
/// version word instead.
inline constexpr uint64_t kVersionTagAuto = ~0ULL;

/// --- Recording hooks (called from src/txn protocol paths) ----------------
/// One transaction per thread at a time (the txn layer's contract). A
/// Begin while a previous txn on this thread never resolved finalizes the
/// older txn as aborted (in-doubt if it had installs).
void HistTxnBegin(std::string_view protocol, uint64_t ts);
/// A committed-visible read of `record` (key = GlobalAddress::Pack() of the
/// record base). `version_tag` is the version identity the protocol
/// observed: OCC's version-word count, TSO's wts, MVCC's node wts (0 for
/// the inline initial version), or kVersionTagAuto under a 2PL lock.
void HistRead(uint64_t record, uint64_t version_tag);
/// Called immediately *before* the install is posted, under whatever
/// exclusion the protocol's commit path holds, so the record's install
/// order recorded here equals the real version order (sim_mem executes
/// stores at post time). `version_tag` is the tag readers of this version
/// will observe (kVersionTagAuto for 2PL).
void HistInstall(uint64_t record, uint64_t version_tag);
void HistTxnCommit();
void HistTxnAbort();

#else  // !DSMDB_CHECK_ENABLED — every hook compiles to nothing.

inline constexpr uint64_t kVersionTagAuto = ~0ULL;
inline void HistTxnBegin(std::string_view, uint64_t) {}
inline void HistRead(uint64_t, uint64_t) {}
inline void HistInstall(uint64_t, uint64_t) {}
inline void HistTxnCommit() {}
inline void HistTxnAbort() {}

#endif  // DSMDB_CHECK_ENABLED

}  // namespace dsmdb::check

#endif  // DSMDB_CHECK_HISTORY_H_
