#include "check/history.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"

namespace dsmdb::check {

#if defined(DSMDB_CHECK_ENABLED)

namespace {

// ---------------------------------------------------------------------------
// Recording. One global, mutex-protected log: history capture runs under the
// cooperative scheduler's single-runner baton (or short test loops), so the
// lock is uncontended in practice and keeps install order == host hook order,
// which is the property the whole analysis rests on (sim_mem executes stores
// at post time, and every install hook fires under the protocol's exclusion
// for the record, so the per-record hook order IS the version order).
// ---------------------------------------------------------------------------

struct TxnRec {
  TxnRef ref;
  enum class Outcome { kActive, kCommitted, kAborted, kInDoubt } outcome =
      Outcome::kActive;
  struct ReadObs {
    uint64_t record = 0;
    uint64_t index = 0;  ///< Version index: 0 = initial, k = k-th install.
    uint64_t tag = 0;    ///< Observed tag, kept for unresolved diagnostics.
    bool resolved = false;
  };
  std::vector<ReadObs> reads;
  struct InstallObs {
    uint64_t record = 0;
    uint64_t index = 0;  ///< 1-based position in the record's version order.
  };
  std::vector<InstallObs> installs;
};

struct RecordHist {
  struct Version {
    uint64_t tag = 0;
    TxnRec* installer = nullptr;
  };
  std::vector<Version> versions;  ///< versions[k] is version index k+1.
};

struct HistoryState {
  std::atomic<bool> enabled{false};
  /// Bumped by Reset() so thread-local current-txn pointers from a previous
  /// schedule cannot dangle into the cleared log.
  std::atomic<uint64_t> epoch{1};
  /// One global sequence stamps Begin/Commit in host order; real-time edges
  /// (A committed before B began) come from comparing these.
  std::atomic<uint64_t> seq{1};

  std::mutex mu;
  std::vector<std::unique_ptr<TxnRec>> txns;
  std::unordered_map<uint64_t, RecordHist> records;
};

HistoryState& H() {
  static HistoryState* h = new HistoryState();  // leaked: outlives threads
  return *h;
}

struct TlCurrent {
  TxnRec* txn = nullptr;
  uint64_t epoch = 0;
};

TlCurrent& Cur() {
  thread_local TlCurrent tl;
  // A Reset() between schedules invalidates whatever this thread had open.
  if (tl.txn != nullptr &&
      tl.epoch != H().epoch.load(std::memory_order_relaxed)) {
    tl.txn = nullptr;
  }
  return tl;
}

bool RecordingOn() { return H().enabled.load(std::memory_order_relaxed); }

// H().mu held. An abort that already installed versions is in-doubt: its
// writes may be visible to other txns, so it must stay in the version order
// but cannot be blamed precisely.
void FinalizeLocked(TxnRec* t, bool committed, uint64_t seq) {
  if (t->outcome != TxnRec::Outcome::kActive) return;
  if (committed) {
    t->outcome = TxnRec::Outcome::kCommitted;
    t->ref.commit_seq = seq;
  } else {
    t->outcome = t->installs.empty() ? TxnRec::Outcome::kAborted
                                     : TxnRec::Outcome::kInDoubt;
  }
}

// ---------------------------------------------------------------------------
// Analysis: direct serialization graph + Tarjan SCC.
// ---------------------------------------------------------------------------

constexpr uint8_t kEdgeWw = 1;
constexpr uint8_t kEdgeWr = 2;
constexpr uint8_t kEdgeRw = 4;
constexpr uint8_t kEdgeRt = 8;

const char* EdgeName(uint8_t kind) {
  if (kind & kEdgeWw) return "ww";
  if (kind & kEdgeWr) return "wr";
  if (kind & kEdgeRw) return "rw";
  return "rt";
}

struct Graph {
  std::vector<TxnRec*> nodes;
  std::unordered_map<TxnRec*, int> id;
  /// adj[u][v] = edge-kind bitmask.
  std::vector<std::unordered_map<int, uint8_t>> adj;

  int Id(TxnRec* t) const { return id.at(t); }
  void AddEdge(TxnRec* a, TxnRec* b, uint8_t kind) {
    if (a == b) return;
    adj[Id(a)][Id(b)] |= kind;
  }
};

// Iterative Tarjan; recursion depth would track SCC chains through
// thousand-txn histories.
std::vector<std::vector<int>> StronglyConnected(const Graph& g) {
  const int n = static_cast<int>(g.nodes.size());
  std::vector<int> index(n, -1), low(n, 0), on_stack(n, 0);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;

  struct Frame {
    int v;
    std::unordered_map<int, uint8_t>::const_iterator it;
  };
  for (int root = 0; root < n; root++) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames;
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    frames.push_back({root, g.adj[root].begin()});
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.it != g.adj[f.v].end()) {
        const int w = f.it->first;
        ++f.it;
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, g.adj[w].begin()});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
        continue;
      }
      if (low[f.v] == index[f.v]) {
        std::vector<int> scc;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc.push_back(w);
        } while (w != f.v);
        if (scc.size() > 1) sccs.push_back(std::move(scc));
      }
      const int child = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[child]);
      }
    }
  }
  return sccs;
}

// A concrete witness cycle inside one SCC, as "(edge-kind) node" hops.
std::vector<std::pair<int, uint8_t>> WitnessCycle(const Graph& g,
                                                  const std::vector<int>& scc) {
  std::vector<int> in_scc(g.nodes.size(), 0);
  for (int v : scc) in_scc[v] = 1;
  const int start = scc.front();
  std::vector<std::pair<int, uint8_t>> path;  // (node, kind of edge INTO it)
  std::vector<int> visited(g.nodes.size(), 0);
  // DFS constrained to the SCC; a path back to `start` is a cycle.
  struct Frame {
    int v;
    std::unordered_map<int, uint8_t>::const_iterator it;
  };
  std::vector<Frame> frames{{start, g.adj[start].begin()}};
  visited[start] = 1;
  while (!frames.empty()) {
    Frame& f = frames.back();
    bool advanced = false;
    while (f.it != g.adj[f.v].end()) {
      const int w = f.it->first;
      const uint8_t kind = f.it->second;
      ++f.it;
      if (!in_scc[w]) continue;
      if (w == start && !path.empty()) {
        path.push_back({w, kind});
        return path;
      }
      if (visited[w]) continue;
      visited[w] = 1;
      path.push_back({w, kind});
      frames.push_back({w, g.adj[w].begin()});
      advanced = true;
      break;
    }
    if (!advanced) {
      frames.pop_back();
      if (!path.empty()) path.pop_back();
    }
  }
  return {};
}

std::string DescribeTxn(const TxnRef& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s txn (ts %" PRIu64 ", txn_id %" PRIu64 ", span %" PRIu64
                ", begin#%" PRIu64 ", commit#%" PRIu64 ")",
                r.protocol.c_str(), r.ts, r.txn_id, r.span_id, r.begin_seq,
                r.commit_seq);
  return buf;
}

bool IsGraphNode(const TxnRec* t) {
  return t->outcome == TxnRec::Outcome::kCommitted ||
         t->outcome == TxnRec::Outcome::kInDoubt;
}

}  // namespace

// ---------------------------------------------------------------------------
// Hooks
// ---------------------------------------------------------------------------

void HistTxnBegin(std::string_view protocol, uint64_t ts) {
  if (!RecordingOn()) return;
  HistoryState& h = H();
  TlCurrent& tl = Cur();
  std::lock_guard<std::mutex> g(h.mu);
  if (tl.txn != nullptr) {
    // Previous txn on this thread never resolved (caller dropped it).
    FinalizeLocked(tl.txn, /*committed=*/false, 0);
  }
  auto rec = std::make_unique<TxnRec>();
  rec->ref.protocol.assign(protocol.data(), protocol.size());
  rec->ref.ts = ts;
  rec->ref.txn_id = obs::CurrentTxnId();
  rec->ref.span_id = obs::CurrentSpanId();
  rec->ref.begin_seq = h.seq.fetch_add(1, std::memory_order_relaxed);
  tl.txn = rec.get();
  tl.epoch = h.epoch.load(std::memory_order_relaxed);
  h.txns.push_back(std::move(rec));
}

void HistRead(uint64_t record, uint64_t version_tag) {
  if (!RecordingOn()) return;
  TlCurrent& tl = Cur();
  if (tl.txn == nullptr) return;  // read outside a recorded txn: ignore
  HistoryState& h = H();
  std::lock_guard<std::mutex> g(h.mu);
  RecordHist& rh = h.records[record];
  TxnRec::ReadObs obs;
  obs.record = record;
  obs.tag = version_tag;
  if (version_tag == kVersionTagAuto) {
    // Under the caller's lock no install is concurrent, so the current
    // install count IS the version this read observed.
    obs.index = rh.versions.size();
    obs.resolved = true;
  } else if (version_tag == 0) {
    obs.index = 0;  // the pre-history initial version
    obs.resolved = true;
  } else {
    // Installs hook before the store that publishes their tag, so a tag a
    // reader could observe is always already recorded; search newest-first.
    for (size_t k = rh.versions.size(); k > 0; k--) {
      if (rh.versions[k - 1].tag == version_tag) {
        obs.index = k;
        obs.resolved = true;
        break;
      }
    }
  }
  tl.txn->reads.push_back(obs);
}

void HistInstall(uint64_t record, uint64_t version_tag) {
  if (!RecordingOn()) return;
  TlCurrent& tl = Cur();
  if (tl.txn == nullptr) return;
  HistoryState& h = H();
  std::lock_guard<std::mutex> g(h.mu);
  RecordHist& rh = h.records[record];
  RecordHist::Version v;
  v.tag = version_tag == kVersionTagAuto
              ? static_cast<uint64_t>(rh.versions.size() + 1)
              : version_tag;
  v.installer = tl.txn;
  rh.versions.push_back(v);
  tl.txn->installs.push_back({record, rh.versions.size()});
}

void HistTxnCommit() {
  if (!RecordingOn()) return;
  TlCurrent& tl = Cur();
  if (tl.txn == nullptr) return;
  HistoryState& h = H();
  const uint64_t seq = h.seq.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> g(h.mu);
  FinalizeLocked(tl.txn, /*committed=*/true, seq);
  tl.txn = nullptr;
}

void HistTxnAbort() {
  if (!RecordingOn()) return;
  TlCurrent& tl = Cur();
  if (tl.txn == nullptr) return;
  HistoryState& h = H();
  std::lock_guard<std::mutex> g(h.mu);
  FinalizeLocked(tl.txn, /*committed=*/false, 0);
  tl.txn = nullptr;
}

// ---------------------------------------------------------------------------
// Management surface + oracle
// ---------------------------------------------------------------------------

void History::SetEnabled(bool on) {
  H().enabled.store(on, std::memory_order_relaxed);
}
bool History::Enabled() { return RecordingOn(); }

void History::Reset() {
  HistoryState& h = H();
  std::lock_guard<std::mutex> g(h.mu);
  h.records.clear();
  h.txns.clear();
  h.seq.store(1, std::memory_order_relaxed);
  h.epoch.fetch_add(1, std::memory_order_relaxed);
}

History::Analysis History::Analyze(IsolationLevel level) {
  Analysis out;
  HistoryState& h = H();
  std::lock_guard<std::mutex> g(h.mu);

  out.records = h.records.size();
  for (const auto& [key, rh] : h.records) out.versions_installed += rh.versions.size();

  Graph graph;
  for (const auto& t : h.txns) {
    switch (t->outcome) {
      case TxnRec::Outcome::kCommitted:
        out.txns_committed++;
        break;
      case TxnRec::Outcome::kAborted:
        out.txns_aborted++;
        break;
      case TxnRec::Outcome::kInDoubt:
      case TxnRec::Outcome::kActive:  // never resolved: treat as in-doubt
        out.txns_indoubt++;
        break;
    }
    if (t->outcome == TxnRec::Outcome::kActive && !t->installs.empty()) {
      // Promote so the graph logic below sees one consistent state.
      t->outcome = TxnRec::Outcome::kInDoubt;
    } else if (t->outcome == TxnRec::Outcome::kActive) {
      t->outcome = TxnRec::Outcome::kAborted;
    }
    if (IsGraphNode(t.get())) {
      graph.id[t.get()] = static_cast<int>(graph.nodes.size());
      graph.nodes.push_back(t.get());
    }
  }
  graph.adj.resize(graph.nodes.size());

  auto push_anomaly = [&out](Anomaly&& a) {
    if (out.anomalies.size() < 64) out.anomalies.push_back(std::move(a));
  };

  // --- per-record edges, lost updates, fractured reads ---------------------
  for (const auto& [key, rh] : h.records) {
    // ww: consecutive installers.
    for (size_t k = 1; k < rh.versions.size(); k++) {
      graph.AddEdge(rh.versions[k - 1].installer, rh.versions[k].installer,
                    kEdgeWw);
    }
  }
  for (const auto& tptr : h.txns) {
    TxnRec* t = tptr.get();
    if (!IsGraphNode(t)) continue;
    const bool committed = t->outcome == TxnRec::Outcome::kCommitted;
    // First resolved read per record: the version the txn's logic was
    // based on (later re-reads of the same record resolve identically
    // under every protocol here).
    std::unordered_map<uint64_t, uint64_t> first_read;
    for (const TxnRec::ReadObs& r : t->reads) {
      out.reads_resolved += r.resolved ? 1 : 0;
      if (!r.resolved) {
        if (!committed) continue;  // aborted/in-doubt reads carry no claim
        const RecordHist& rh = h.records[r.record];
        char head[192];
        std::snprintf(head, sizeof(head),
                      "==DSMDB-HIST== fractured read on record 0x%" PRIx64
                      ": observed version tag %" PRIu64
                      " matches none of the %zu installed versions\n",
                      r.record, r.tag, rh.versions.size());
        Anomaly a;
        a.kind = AnomalyKind::kFracturedRead;
        a.txns.push_back(t->ref);
        a.message = std::string(head) + "  reader: " + DescribeTxn(t->ref) +
                    "\n  the value was observed mid-install or assembled "
                    "from two versions;\n  the protocol's validation failed "
                    "to catch it\n";
        push_anomaly(std::move(a));
        continue;
      }
      first_read.emplace(r.record, r.index);
      const RecordHist& rh = h.records[r.record];
      if (r.index >= 1) {
        graph.AddEdge(rh.versions[r.index - 1].installer, t, kEdgeWr);
      }
      if (r.index < rh.versions.size()) {
        graph.AddEdge(t, rh.versions[r.index].installer, kEdgeRw);
      }
    }
    // Lost update: a committed RMW must install the successor of what it
    // read. (Every protocol here guarantees that: 2PL holds the lock, OCC
    // re-validates, TSO aborts on wts > read, MVCC is first-updater-wins.)
    if (!committed) continue;
    for (const TxnRec::InstallObs& w : t->installs) {
      auto it = first_read.find(w.record);
      if (it == first_read.end()) continue;  // blind write: no claim
      const uint64_t i = it->second;
      const uint64_t j = w.index;
      if (j == i + 1) continue;
      const RecordHist& rh = h.records[w.record];
      bool masked = false;
      for (uint64_t k = i; k + 1 < j && k < rh.versions.size(); k++) {
        if (rh.versions[k].installer->outcome == TxnRec::Outcome::kInDoubt) {
          masked = true;
          break;
        }
      }
      if (masked) {
        out.masked_by_indoubt++;
        continue;
      }
      char head[192];
      std::snprintf(head, sizeof(head),
                    "==DSMDB-HIST== lost update on record 0x%" PRIx64
                    ": read version %" PRIu64 " but installed version %" PRIu64
                    " (skipped %" PRIu64 ")\n",
                    w.record, i, j, j - i - 1);
      Anomaly a;
      a.kind = AnomalyKind::kLostUpdate;
      a.txns.push_back(t->ref);
      std::string msg = std::string(head) + "  updater: " +
                        DescribeTxn(t->ref) + "\n";
      for (uint64_t k = i; k + 1 < j && k < rh.versions.size(); k++) {
        a.txns.push_back(rh.versions[k].installer->ref);
        msg += "  overwritten: " + DescribeTxn(rh.versions[k].installer->ref) +
               "\n";
      }
      msg +=
          "  the intermediate installs were overwritten without being "
          "observed\n";
      a.message = std::move(msg);
      push_anomaly(std::move(a));
    }
  }

  // --- real-time edges (strict serializability only) -----------------------
  if (level == IsolationLevel::kStrictSerializable) {
    for (size_t a = 0; a < graph.nodes.size(); a++) {
      TxnRec* ta = graph.nodes[a];
      if (ta->outcome != TxnRec::Outcome::kCommitted) continue;
      for (size_t b = 0; b < graph.nodes.size(); b++) {
        if (a == b) continue;
        TxnRec* tb = graph.nodes[b];
        if (tb->outcome != TxnRec::Outcome::kCommitted) continue;
        if (ta->ref.commit_seq != 0 &&
            ta->ref.commit_seq < tb->ref.begin_seq) {
          graph.AddEdge(ta, tb, kEdgeRt);
        }
      }
    }
  }

  // --- cycles --------------------------------------------------------------
  for (const std::vector<int>& scc : StronglyConnected(graph)) {
    bool indoubt = false;
    for (int v : scc) {
      if (graph.nodes[v]->outcome == TxnRec::Outcome::kInDoubt) indoubt = true;
    }
    if (indoubt) {
      out.masked_by_indoubt++;
      continue;
    }
    const auto witness = WitnessCycle(graph, scc);
    if (level == IsolationLevel::kSnapshotIsolation) {
      // SI permits cycles carrying >= 2 read-write antidependencies (write
      // skew). Count rw edges along the witness cycle.
      int rw = 0;
      for (const auto& [node, kind] : witness) {
        if (kind & kEdgeRw) rw++;
      }
      if (rw >= 2) {
        out.write_skew_cycles++;
        continue;
      }
    }
    Anomaly a;
    a.kind = AnomalyKind::kCycle;
    std::string msg =
        "==DSMDB-HIST== serialization cycle among committed txns\n";
    int prev = scc.front();
    msg += "  " + DescribeTxn(graph.nodes[prev]->ref) + "\n";
    a.txns.push_back(graph.nodes[prev]->ref);
    for (const auto& [node, kind] : witness) {
      msg += std::string("    --") + EdgeName(kind) + "--> " +
             DescribeTxn(graph.nodes[node]->ref) + "\n";
      if (node != scc.front()) a.txns.push_back(graph.nodes[node]->ref);
    }
    msg +=
        "  no serial order satisfies these dependencies; look up the span "
        "ids\n  in the trace tree for both commit paths\n";
    a.message = std::move(msg);
    push_anomaly(std::move(a));
  }
  return out;
}

#else  // !DSMDB_CHECK_ENABLED

void History::SetEnabled(bool) {}
bool History::Enabled() { return false; }
void History::Reset() {}
History::Analysis History::Analyze(IsolationLevel) { return {}; }

#endif  // DSMDB_CHECK_ENABLED

}  // namespace dsmdb::check
