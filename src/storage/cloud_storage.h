#ifndef DSMDB_STORAGE_CLOUD_STORAGE_H_
#define DSMDB_STORAGE_CLOUD_STORAGE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdma/virtual_cpu.h"

namespace dsmdb::storage {

/// Latency/bandwidth profile for one storage class.
struct StorageClassModel {
  uint64_t write_latency_ns;
  uint64_t read_latency_ns;
  double bandwidth_bytes_per_ns;
};

/// Defaults modeled on the services the paper names (Challenge #2):
/// AWS EBS (block/append, ~0.5 ms) and S3 (object, ~15 ms first byte).
struct CloudStorageOptions {
  StorageClassModel block{/*write*/ 500'000, /*read*/ 400'000, /*bw*/ 1.0};
  StorageClassModel object{/*write*/ 15'000'000, /*read*/ 10'000'000,
                           /*bw*/ 0.5};
  /// Test-only: real wall-clock sleep per Append, so that concurrency
  /// effects that depend on overlapping flushes (e.g. group commit
  /// batching) are observable even on single-core hosts. 0 in production.
  uint32_t real_append_delay_us = 0;
};

/// Simulated cloud storage: "distributed shared storage that is accessible
/// by all compute and memory nodes" (paper, Sec. 3). Contents survive any
/// memory/compute node crash (the cloud service itself never fails in our
/// model — it is 99.999..% durable by assumption).
///
/// Two APIs, matching the paper's usage:
///  * Append streams (EBS-like): WAL persistence on the commit path.
///  * Objects (S3-like): checkpoints.
///
/// Every call advances the caller's SimClock by the class's latency plus
/// wire time, and serializes on the stream/object's virtual device queue,
/// so saturating a log device produces queueing delay.
class CloudStorage {
 public:
  explicit CloudStorage(CloudStorageOptions options = {});
  ~CloudStorage();

  CloudStorage(const CloudStorage&) = delete;
  CloudStorage& operator=(const CloudStorage&) = delete;

  // --- Append streams (block class) ----------------------------------------

  /// Durably appends to `stream`; returns the stream length after append.
  Result<uint64_t> Append(const std::string& stream, std::string_view data);

  /// Reads the whole stream (recovery).
  Result<std::string> ReadStream(const std::string& stream);

  /// Truncates a stream (after checkpoint).
  Status TruncateStream(const std::string& stream);

  uint64_t StreamBytes(const std::string& stream) const;

  // --- Objects (object class) ----------------------------------------------

  Status PutObject(const std::string& key, std::string value);
  Result<std::string> GetObject(const std::string& key) const;
  Status DeleteObject(const std::string& key);
  std::vector<std::string> ListObjects(const std::string& prefix) const;

  // --- Introspection --------------------------------------------------------

  uint64_t TotalBytes() const;
  const CloudStorageOptions& options() const { return options_; }

 private:
  /// Charges a device access of `bytes` on the (single-queue) device for
  /// `name`, advancing the caller's SimClock past queueing + latency.
  void ChargeAccess(const std::string& name, const StorageClassModel& cls,
                    uint64_t latency_ns, size_t bytes) const;

  CloudStorageOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> streams_;
  std::map<std::string, std::string> objects_;
  /// Per-stream/object-device virtual queues (1 "channel" each).
  mutable std::map<std::string, rdma::VirtualCpu*> devices_;
};

}  // namespace dsmdb::storage

#endif  // DSMDB_STORAGE_CLOUD_STORAGE_H_
