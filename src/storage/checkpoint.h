#ifndef DSMDB_STORAGE_CHECKPOINT_H_
#define DSMDB_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/cloud_storage.h"

namespace dsmdb::storage {

/// Checkpointing of memory-node contents to cloud storage (Challenge #3,
/// the RAMCloud-style approach: data lives in DRAM once; availability comes
/// from periodic checkpoints plus log replay on recovery).
///
/// Checkpoints are epoch-versioned objects: `<prefix>/epoch/<n>`. Readers
/// fetch the latest epoch.
class Checkpointer {
 public:
  Checkpointer(CloudStorage* cloud, std::string prefix)
      : cloud_(cloud), prefix_(std::move(prefix)) {}

  /// Persists `bytes` as the next checkpoint epoch; returns the epoch id.
  /// Charges the caller's SimClock with the object write (checkpointing is
  /// normally done by a background thread, so run it on one).
  Result<uint64_t> Write(std::string_view bytes);

  /// Reads the newest checkpoint. Returns (epoch, bytes).
  struct Snapshot {
    uint64_t epoch;
    std::string bytes;
  };
  Result<Snapshot> ReadLatest() const;

  /// Deletes checkpoints older than `keep_epochs` behind the newest.
  Status GarbageCollect(uint64_t keep_epochs = 1);

  uint64_t LatestEpoch() const { return latest_epoch_; }

 private:
  std::string KeyFor(uint64_t epoch) const;

  CloudStorage* cloud_;
  std::string prefix_;
  uint64_t latest_epoch_ = 0;
};

}  // namespace dsmdb::storage

#endif  // DSMDB_STORAGE_CHECKPOINT_H_
