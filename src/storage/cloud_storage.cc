#include "storage/cloud_storage.h"

#include <chrono>
#include <thread>

#include "common/sim_clock.h"

namespace dsmdb::storage {

CloudStorage::CloudStorage(CloudStorageOptions options)
    : options_(options) {}

CloudStorage::~CloudStorage() {
  for (auto& [name, dev] : devices_) delete dev;
}

void CloudStorage::ChargeAccess(const std::string& name,
                                const StorageClassModel& cls,
                                uint64_t latency_ns, size_t bytes) const {
  rdma::VirtualCpu* dev;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rdma::VirtualCpu*& slot = devices_[name];
    if (slot == nullptr) slot = new rdma::VirtualCpu(1, 1.0);
    dev = slot;
  }
  const uint64_t service =
      latency_ns + static_cast<uint64_t>(static_cast<double>(bytes) /
                                         cls.bandwidth_bytes_per_ns);
  const uint64_t done = dev->Execute(SimClock::Now(), service);
  SimClock::AdvanceTo(done);
}

Result<uint64_t> CloudStorage::Append(const std::string& stream,
                                      std::string_view data) {
  if (options_.real_append_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.real_append_delay_us));
  }
  uint64_t new_len;
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::string& s = streams_[stream];
    s.append(data.data(), data.size());
    new_len = s.size();
  }
  ChargeAccess(stream, options_.block, options_.block.write_latency_ns,
               data.size());
  return new_len;
}

Result<std::string> CloudStorage::ReadStream(const std::string& stream) {
  std::string copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = streams_.find(stream);
    if (it == streams_.end()) return Status::NotFound("no stream " + stream);
    copy = it->second;
  }
  ChargeAccess(stream, options_.block, options_.block.read_latency_ns,
               copy.size());
  return copy;
}

Status CloudStorage::TruncateStream(const std::string& stream) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) return Status::NotFound("no stream " + stream);
  it->second.clear();
  return Status::OK();
}

uint64_t CloudStorage::StreamBytes(const std::string& stream) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.size();
}

Status CloudStorage::PutObject(const std::string& key, std::string value) {
  const size_t bytes = value.size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    objects_[key] = std::move(value);
  }
  ChargeAccess(key, options_.object, options_.object.write_latency_ns,
               bytes);
  return Status::OK();
}

Result<std::string> CloudStorage::GetObject(const std::string& key) const {
  std::string copy;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) return Status::NotFound("no object " + key);
    copy = it->second;
  }
  ChargeAccess(key, options_.object, options_.object.read_latency_ns,
               copy.size());
  return copy;
}

Status CloudStorage::DeleteObject(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  objects_.erase(key);
  return Status::OK();
}

std::vector<std::string> CloudStorage::ListObjects(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

uint64_t CloudStorage::TotalBytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const auto& [k, v] : streams_) total += v.size();
  for (const auto& [k, v] : objects_) total += v.size();
  return total;
}

}  // namespace dsmdb::storage
