#include "storage/erasure.h"

namespace dsmdb::storage {

Result<std::string> XorErasure::EncodeParity(
    const std::vector<std::string>& data_shards) {
  if (data_shards.empty()) {
    return Status::InvalidArgument("no data shards");
  }
  const size_t len = data_shards[0].size();
  for (const std::string& s : data_shards) {
    if (s.size() != len) {
      return Status::InvalidArgument("shard lengths differ");
    }
  }
  std::string parity(len, '\0');
  for (const std::string& s : data_shards) {
    for (size_t i = 0; i < len; i++) {
      parity[i] = static_cast<char>(parity[i] ^ s[i]);
    }
  }
  return parity;
}

Result<std::string> XorErasure::Reconstruct(
    const std::vector<std::string>& surviving_data,
    const std::string& parity) {
  std::string out = parity;
  for (const std::string& s : surviving_data) {
    if (s.size() != out.size()) {
      return Status::InvalidArgument("shard lengths differ");
    }
    for (size_t i = 0; i < out.size(); i++) {
      out[i] = static_cast<char>(out[i] ^ s[i]);
    }
  }
  return out;
}

std::vector<std::string> XorErasure::Split(const std::string& data,
                                           uint32_t k) {
  const size_t shard_len = (data.size() + k - 1) / k;
  std::vector<std::string> shards;
  shards.reserve(k);
  for (uint32_t i = 0; i < k; i++) {
    const size_t begin = static_cast<size_t>(i) * shard_len;
    std::string shard =
        begin < data.size() ? data.substr(begin, shard_len) : std::string();
    shard.resize(shard_len, '\0');
    shards.push_back(std::move(shard));
  }
  return shards;
}

std::string XorErasure::Join(const std::vector<std::string>& shards,
                             size_t original_size) {
  std::string out;
  for (const std::string& s : shards) out += s;
  out.resize(original_size);
  return out;
}

}  // namespace dsmdb::storage
