#include "storage/checkpoint.h"

#include <cinttypes>
#include <cstdio>

namespace dsmdb::storage {

std::string Checkpointer::KeyFor(uint64_t epoch) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/epoch/%020" PRIu64, epoch);
  return prefix_ + buf;
}

Result<uint64_t> Checkpointer::Write(std::string_view bytes) {
  const uint64_t epoch = latest_epoch_ + 1;
  DSMDB_RETURN_NOT_OK(
      cloud_->PutObject(KeyFor(epoch), std::string(bytes)));
  latest_epoch_ = epoch;
  return epoch;
}

Result<Checkpointer::Snapshot> Checkpointer::ReadLatest() const {
  const auto keys = cloud_->ListObjects(prefix_ + "/epoch/");
  if (keys.empty()) return Status::NotFound("no checkpoint under " + prefix_);
  const std::string& newest = keys.back();  // keys sort lexicographically
  Result<std::string> data = cloud_->GetObject(newest);
  if (!data.ok()) return data.status();
  const uint64_t epoch =
      std::strtoull(newest.substr(prefix_.size() + 7).c_str(), nullptr, 10);
  return Snapshot{epoch, std::move(*data)};
}

Status Checkpointer::GarbageCollect(uint64_t keep_epochs) {
  const auto keys = cloud_->ListObjects(prefix_ + "/epoch/");
  if (keys.size() <= keep_epochs) return Status::OK();
  for (size_t i = 0; i + keep_epochs < keys.size(); i++) {
    DSMDB_RETURN_NOT_OK(cloud_->DeleteObject(keys[i]));
  }
  return Status::OK();
}

}  // namespace dsmdb::storage
