#ifndef DSMDB_STORAGE_ERASURE_H_
#define DSMDB_STORAGE_ERASURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dsmdb::storage {

/// XOR (RAID-5 style) erasure coding over k data shards + 1 parity shard
/// (Challenge #3's middle option [34, 52]): memory overhead 1/k instead of
/// the (r-1)x of full replication, at the price of a longer recovery path
/// (read all surviving shards and decode).
///
/// All shards must have equal length; callers pad the final shard.
class XorErasure {
 public:
  /// Computes the parity shard of `data_shards` (all same length).
  static Result<std::string> EncodeParity(
      const std::vector<std::string>& data_shards);

  /// Reconstructs the missing data shard `missing_index` from the surviving
  /// data shards plus parity.
  static Result<std::string> Reconstruct(
      const std::vector<std::string>& surviving_data,
      const std::string& parity);

  /// Splits `data` into k equal shards (last one zero-padded).
  static std::vector<std::string> Split(const std::string& data, uint32_t k);

  /// Inverse of Split: joins shards and trims to `original_size`.
  static std::string Join(const std::vector<std::string>& shards,
                          size_t original_size);
};

}  // namespace dsmdb::storage

#endif  // DSMDB_STORAGE_ERASURE_H_
