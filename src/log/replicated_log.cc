#include "log/replicated_log.h"

#include <algorithm>

#include "common/random.h"
#include "common/sim_clock.h"

namespace dsmdb::log {

ReplicatedLog::ReplicatedLog(dsm::DsmClient* client,
                             ReplicatedLogOptions options)
    : client_(client), options_(std::move(options)) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : options_.name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  name_hash_ = h;
}

dsm::MemNodeId ReplicatedLog::ReplicaNode(uint64_t seg,
                                          uint32_t replica) const {
  const uint32_t m = client_->cluster()->num_memory_nodes();
  return static_cast<dsm::MemNodeId>((Hash64(name_hash_ ^ seg) + replica) %
                                     m);
}

uint64_t ReplicatedLog::SegmentKey(uint64_t seg) const {
  return name_hash_ ^ (seg * 0x9E3779B97F4A7C15ULL);
}

Result<uint64_t> ReplicatedLog::AppendSync(LogRecord rec) {
  rec.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t my_lsn = rec.lsn;
  std::string encoded;
  EncodeLogRecord(rec, &encoded);

  uint64_t seg;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cur_segment_bytes_ + encoded.size() > options_.segment_bytes &&
        cur_segment_bytes_ > 0) {
      cur_segment_++;
      cur_segment_bytes_ = 0;
    }
    seg = cur_segment_;
    cur_segment_bytes_ += encoded.size();
  }

  // Parallel fan-out to the k replicas: all appends are posted at t0; the
  // caller becomes durable at the slowest replica's completion.
  const uint64_t t0 = SimClock::Now();
  uint64_t max_end = t0;
  const uint32_t k = options_.replication_factor;
  for (uint32_t i = 0; i < k; i++) {
    SimClock::Set(t0);
    const Status s =
        client_->LogAppend(ReplicaNode(seg, i), SegmentKey(seg), encoded);
    if (!s.ok()) {
      SimClock::AdvanceTo(max_end);
      return s;  // a down replica fails the commit (no re-replication here)
    }
    max_end = std::max(max_end, SimClock::Now());
  }
  SimClock::AdvanceTo(max_end);

  uint64_t prev = durable_lsn_.load(std::memory_order_relaxed);
  while (prev < my_lsn && !durable_lsn_.compare_exchange_weak(
                              prev, my_lsn, std::memory_order_release)) {
  }
  return my_lsn;
}

uint64_t ReplicatedLog::NumSegments() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cur_segment_bytes_ > 0 || cur_segment_ > 0 ? cur_segment_ + 1 : 0;
}

Result<std::vector<LogRecord>> ReplicatedLog::GatherLog() {
  const uint64_t nsegs = NumSegments();
  std::string image;
  for (uint64_t seg = 0; seg < nsegs; seg++) {
    bool found = false;
    for (uint32_t i = 0; i < options_.replication_factor && !found; i++) {
      Result<std::string> data =
          client_->LogRead(ReplicaNode(seg, i), SegmentKey(seg));
      if (data.ok()) {
        image += *data;
        found = true;
      }
    }
    if (!found) {
      return Status::Unavailable("all replicas of segment " +
                                 std::to_string(seg) + " are lost");
    }
  }
  std::vector<LogRecord> records;
  DSMDB_RETURN_NOT_OK(ParseLog(image, &records));
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.lsn < b.lsn;
            });
  return records;
}

}  // namespace dsmdb::log
