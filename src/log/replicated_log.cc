#include "log/replicated_log.h"

#include <algorithm>

#include "common/random.h"
#include "common/sim_clock.h"

namespace dsmdb::log {

ReplicatedLog::ReplicatedLog(dsm::DsmClient* client,
                             ReplicatedLogOptions options)
    : client_(client), options_(std::move(options)) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : options_.name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  name_hash_ = h;
}

dsm::MemNodeId ReplicatedLog::ReplicaNode(uint64_t seg,
                                          uint32_t replica) const {
  const uint32_t m = client_->cluster()->num_memory_nodes();
  return static_cast<dsm::MemNodeId>((Hash64(name_hash_ ^ seg) + replica) %
                                     m);
}

uint64_t ReplicatedLog::SegmentKey(uint64_t seg) const {
  return name_hash_ ^ (seg * 0x9E3779B97F4A7C15ULL);
}

Status ReplicatedLog::OpenSegmentLocked(uint64_t seg) {
  Segment& s = segments_[seg];
  rdma::Fabric& fabric = client_->cluster()->fabric();
  s.replicas.reserve(options_.replication_factor);
  for (uint32_t i = 0; i < options_.replication_factor; i++) {
    const dsm::MemNodeId node = ReplicaNode(seg, i);
    Result<dsm::GlobalAddress> buf =
        client_->Alloc(options_.segment_bytes, node);
    if (!buf.ok()) {
      s.replicas.clear();  // retried whole on the next append
      return buf.status();
    }
    s.replicas.push_back(Replica{
        node, *buf, fabric.Incarnation(client_->cluster()->MemFabricId(node))});
  }
  return Status::OK();
}

Result<uint64_t> ReplicatedLog::AppendSync(LogRecord rec) {
  rec.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t my_lsn = rec.lsn;
  std::string encoded;
  EncodeLogRecord(rec, &encoded);
  if (encoded.size() > options_.segment_bytes) {
    return Status::InvalidArgument("log record larger than a segment");
  }

  uint64_t seg;
  uint64_t off;
  std::vector<Replica> replicas;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rdma::Fabric& fabric = client_->cluster()->fabric();
    if (segments_.empty()) segments_.emplace_back();
    for (;;) {
      if (segments_[cur_segment_].used + encoded.size() >
              options_.segment_bytes &&
          segments_[cur_segment_].used > 0) {
        cur_segment_++;
        segments_.emplace_back();
        continue;
      }
      if (options_.one_sided) {
        if (segments_[cur_segment_].replicas.empty()) {
          // First append into this segment: allocate the k replica buffers
          // (amortized over the whole segment).
          DSMDB_RETURN_NOT_OK(OpenSegmentLocked(cur_segment_));
        }
        // Health check before reserving the offset, so a sealed segment's
        // `used` never covers bytes that were not actually written (which
        // would poison GatherLog's image).
        bool stale = false;
        for (const Replica& r : segments_[cur_segment_].replicas) {
          const rdma::NodeId fab = client_->cluster()->MemFabricId(r.node);
          if (!fabric.IsAlive(fab)) {
            // A dead replica means the append cannot reach k copies —
            // fail the commit until the node is recovered.
            return Status::Unavailable("log replica on memory node " +
                                       std::to_string(r.node) + " is lost");
          }
          if (fabric.Incarnation(fab) != r.incarnation) {
            stale = true;
            break;
          }
        }
        if (stale) {
          // The node crashed and came back with fresh memory: the stale
          // buffer address would resolve into unrelated storage. Seal this
          // segment (its surviving replicas still serve GatherLog) and
          // roll to a new one with freshly allocated buffers.
          cur_segment_++;
          segments_.emplace_back();
          continue;
        }
      }
      seg = cur_segment_;
      off = segments_[seg].used;
      segments_[seg].used += encoded.size();
      replicas = segments_[seg].replicas;
      break;
    }
  }

  if (options_.one_sided) {
    rdma::Fabric& fabric = client_->cluster()->fabric();
    // Pipelined k-way replication: ~1 RTT + k postings, not k RTTs.
    rdma::CompletionQueue cq(&fabric, client_->self());
    for (const Replica& r : replicas) {
      cq.PostWrite(client_->ToRemote(r.buf.Plus(off)), encoded.data(),
                   encoded.size());
    }
    DSMDB_RETURN_NOT_OK(cq.WaitAll());
  } else {
    // Pre-engine fallback: two-sided append RPC per replica, fanned out in
    // parallel simulated time.
    Status err;
    SimFanOut fan;
    for (uint32_t i = 0; i < options_.replication_factor; i++) {
      fan.BeginBranch();
      const Status s =
          client_->LogAppend(ReplicaNode(seg, i), SegmentKey(seg), encoded);
      if (!s.ok() && err.ok()) err = s;
    }
    fan.Join();
    if (!err.ok()) return err;
  }

  uint64_t prev = durable_lsn_.load(std::memory_order_relaxed);
  while (prev < my_lsn && !durable_lsn_.compare_exchange_weak(
                              prev, my_lsn, std::memory_order_release)) {
  }
  return my_lsn;
}

uint64_t ReplicatedLog::NumSegments() const {
  std::lock_guard<std::mutex> lk(mu_);
  return segments_.size();
}

Result<std::vector<LogRecord>> ReplicatedLog::GatherLog() {
  std::vector<Segment> snapshot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snapshot = segments_;
  }
  rdma::Fabric& fabric = client_->cluster()->fabric();
  std::string image;
  for (uint64_t seg = 0; seg < snapshot.size(); seg++) {
    const Segment& s = snapshot[seg];
    bool found = false;
    if (options_.one_sided) {
      std::string buf;
      for (const Replica& r : s.replicas) {
        if (s.used == 0) {
          found = true;  // open but empty segment: nothing to read
          break;
        }
        const rdma::NodeId fab = client_->cluster()->MemFabricId(r.node);
        if (!fabric.IsAlive(fab) ||
            fabric.Incarnation(fab) != r.incarnation) {
          continue;  // crashed or re-incarnated: replica bytes are gone
        }
        buf.resize(s.used);
        if (client_->Read(r.buf, buf.data(), buf.size()).ok()) {
          image += buf;
          found = true;
          break;
        }
      }
    } else {
      for (uint32_t i = 0;
           i < options_.replication_factor && !found; i++) {
        Result<std::string> data =
            client_->LogRead(ReplicaNode(seg, i), SegmentKey(seg));
        if (data.ok()) {
          image += *data;
          found = true;
        }
      }
    }
    if (!found) {
      return Status::Unavailable("all replicas of segment " +
                                 std::to_string(seg) + " are lost");
    }
  }
  std::vector<LogRecord> records;
  DSMDB_RETURN_NOT_OK(ParseLog(image, &records));
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.lsn < b.lsn;
            });
  return records;
}

}  // namespace dsmdb::log
