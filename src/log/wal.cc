#include "log/wal.h"

#include <algorithm>

#include "common/sim_clock.h"

namespace dsmdb::log {

Wal::Wal(storage::CloudStorage* cloud, WalOptions options)
    : cloud_(cloud), options_(std::move(options)) {}

uint64_t Wal::AppendAsync(LogRecord rec) {
  rec.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  EncodeLogRecord(rec, &buffer_);
  buffer_last_lsn_ = std::max(buffer_last_lsn_, rec.lsn);
  buffer_max_arrival_ = std::max(buffer_max_arrival_, SimClock::Now());
  return rec.lsn;
}

Result<uint64_t> Wal::AppendSync(LogRecord rec) {
  rec.lsn = next_lsn_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t my_lsn = rec.lsn;

  if (!options_.group_commit) {
    // Per-commit flush: every committer pays its own storage round trip,
    // serialized on the log device. Buffered async records ride along so
    // WAL ordering is preserved.
    std::string batch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      batch.swap(buffer_);
      buffer_last_lsn_ = 0;
      buffer_max_arrival_ = 0;
      EncodeLogRecord(rec, &batch);
    }
    Result<uint64_t> r = cloud_->Append(options_.stream_name, batch);
    if (!r.ok()) return r.status();
    flush_count_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = durable_lsn_.load(std::memory_order_relaxed);
    while (prev < my_lsn && !durable_lsn_.compare_exchange_weak(
                                prev, my_lsn, std::memory_order_release)) {
    }
    return my_lsn;
  }

  std::unique_lock<std::mutex> lk(mu_);
  EncodeLogRecord(rec, &buffer_);
  buffer_last_lsn_ = std::max(buffer_last_lsn_, my_lsn);
  buffer_max_arrival_ = std::max(buffer_max_arrival_, SimClock::Now());
  const uint64_t my_epoch = epoch_;

  while (durable_lsn_.load(std::memory_order_acquire) < my_lsn) {
    if (!flusher_active_) {
      flusher_active_ = true;
      LeaderFlush(lk);
      flusher_active_ = false;
      cv_.notify_all();
    } else {
      cv_.wait(lk);
    }
  }
  // Advance to this batch's durability point.
  if (done_epoch_[my_epoch % kDoneRing] == my_epoch) {
    SimClock::AdvanceTo(done_time_[my_epoch % kDoneRing]);
  }
  return my_lsn;
}

void Wal::LeaderFlush(std::unique_lock<std::mutex>& lk) {
  std::string batch;
  batch.swap(buffer_);
  const uint64_t last_lsn = buffer_last_lsn_;
  const uint64_t start =
      std::max(SimClock::Now(), buffer_max_arrival_ + options_.group_window_ns);
  const uint64_t flush_epoch = epoch_++;
  buffer_last_lsn_ = 0;
  buffer_max_arrival_ = 0;

  lk.unlock();
  SimClock::AdvanceTo(start);  // leader waits out the group window
  (void)cloud_->Append(options_.stream_name, batch);
  const uint64_t done = SimClock::Now();
  lk.lock();

  done_epoch_[flush_epoch % kDoneRing] = flush_epoch;
  done_time_[flush_epoch % kDoneRing] = done;
  flush_count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = durable_lsn_.load(std::memory_order_relaxed);
  while (prev < last_lsn && !durable_lsn_.compare_exchange_weak(
                                prev, last_lsn, std::memory_order_release)) {
  }
}

Status Wal::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!buffer_.empty()) {
    if (!flusher_active_) {
      flusher_active_ = true;
      LeaderFlush(lk);
      flusher_active_ = false;
      cv_.notify_all();
    } else {
      cv_.wait(lk);
    }
  }
  return Status::OK();
}

}  // namespace dsmdb::log
