#ifndef DSMDB_LOG_RECOVERY_H_
#define DSMDB_LOG_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "log/log_record.h"

namespace dsmdb::log {

/// Redo recovery for main-memory databases [27]: pass 1 collects committed
/// transaction ids, pass 2 re-applies the kUpdate records of committed
/// transactions in LSN order, starting after the last kCheckpoint record.
/// Updates of uncommitted/aborted transactions are skipped (no undo is
/// needed because DSM-DB publishes writes only at commit).
class RedoRecovery {
 public:
  /// Applies one redo record to the rebuilt state.
  using ApplyFn = std::function<void(const LogRecord&)>;

  /// Replays `records` (must be LSN-sorted); returns #records applied.
  static Result<uint64_t> Replay(const std::vector<LogRecord>& records,
                                 const ApplyFn& apply);

  /// Parses a raw log image (torn tail tolerated), sorts by LSN, replays.
  static Result<uint64_t> ReplayFromImage(std::string_view image,
                                          const ApplyFn& apply);

  /// Command-logging replay [41]. Re-executes kCommand records of committed
  /// transactions through `execute`. Only valid when the log has a single
  /// writer: with multi-master DSM-DB the global transaction order is not
  /// recorded, which is exactly the paper's caveat — pass
  /// `sources_observed` > 1 and this returns NotSupported.
  static Result<uint64_t> ReplayCommands(
      const std::vector<LogRecord>& records, uint32_t sources_observed,
      const ApplyFn& execute);
};

}  // namespace dsmdb::log

#endif  // DSMDB_LOG_RECOVERY_H_
