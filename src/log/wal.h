#ifndef DSMDB_LOG_WAL_H_
#define DSMDB_LOG_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "log/log_record.h"
#include "storage/cloud_storage.h"

namespace dsmdb::log {

/// Write-ahead log persisted to cloud storage (Challenge #2, Approach #1).
struct WalOptions {
  std::string stream_name = "wal";
  /// Group commit [24, 28]: batch concurrent committers into one storage
  /// append. With it off, every commit pays a full storage round trip and
  /// serializes on the log device.
  bool group_commit = true;
  /// Extra wait the leader adds to gather a batch, in simulated ns.
  uint64_t group_window_ns = 5'000;
};

/// Thread-safe WAL with leader-based group commit.
///
/// Real threads synchronize via mutex/condvar; *durability timing* is in
/// simulated time: the flush leader charges the storage append on its
/// SimClock, and every committer in the batch advances its own SimClock to
/// the flush completion time — so simulated commit latency reflects group
/// commit exactly as in a real main-memory DBMS.
class Wal {
 public:
  Wal(storage::CloudStorage* cloud, WalOptions options);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Assigns an LSN, appends, and returns once the record is durable
  /// (the calling thread's SimClock is past the flush completion).
  Result<uint64_t> AppendSync(LogRecord rec);

  /// Assigns an LSN and buffers the record; it becomes durable with the
  /// next AppendSync/Flush. Used for non-commit records.
  uint64_t AppendAsync(LogRecord rec);

  /// Forces all buffered records to storage.
  Status Flush();

  uint64_t DurableLsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  uint64_t NextLsn() const {
    return next_lsn_.load(std::memory_order_relaxed);
  }
  const WalOptions& options() const { return options_; }

  /// Total storage flush operations performed (for benches: commits per
  /// storage write measures group-commit effectiveness).
  uint64_t FlushCount() const {
    return flush_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Flushes the current buffer as leader. Caller holds `mu_`; the lock is
  /// released during the storage append and re-acquired after.
  void LeaderFlush(std::unique_lock<std::mutex>& lk);

  storage::CloudStorage* cloud_;
  WalOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::string buffer_;            // encoded records awaiting flush
  uint64_t buffer_last_lsn_ = 0;  // highest lsn in buffer_
  uint64_t buffer_max_arrival_ = 0;
  bool flusher_active_ = false;

  static constexpr size_t kDoneRing = 1024;
  uint64_t done_epoch_[kDoneRing] = {};
  uint64_t done_time_[kDoneRing] = {};
  uint64_t epoch_ = 1;  // current (unflushed) buffer generation

  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> durable_lsn_{0};
  std::atomic<uint64_t> flush_count_{0};
};

}  // namespace dsmdb::log

#endif  // DSMDB_LOG_WAL_H_
