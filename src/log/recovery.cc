#include "log/recovery.h"

#include <algorithm>
#include <unordered_set>

namespace dsmdb::log {

Result<uint64_t> RedoRecovery::Replay(const std::vector<LogRecord>& records,
                                      const ApplyFn& apply) {
  // Pass 0: find the last checkpoint (replay starts after it).
  uint64_t start_lsn = 0;
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kCheckpoint) {
      start_lsn = std::max(start_lsn, rec.lsn);
    }
  }
  // Pass 1: committed transactions.
  std::unordered_set<uint64_t> committed;
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn_id);
  }
  // Pass 2: apply redo records of committed transactions, in LSN order.
  uint64_t applied = 0;
  for (const LogRecord& rec : records) {
    if (rec.lsn <= start_lsn) continue;
    if (rec.type != LogRecordType::kUpdate) continue;
    if (!committed.contains(rec.txn_id)) continue;
    apply(rec);
    applied++;
  }
  return applied;
}

Result<uint64_t> RedoRecovery::ReplayFromImage(std::string_view image,
                                               const ApplyFn& apply) {
  std::vector<LogRecord> records;
  DSMDB_RETURN_NOT_OK(ParseLog(image, &records));
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.lsn < b.lsn;
            });
  return Replay(records, apply);
}

Result<uint64_t> RedoRecovery::ReplayCommands(
    const std::vector<LogRecord>& records, uint32_t sources_observed,
    const ApplyFn& execute) {
  if (sources_observed > 1) {
    return Status::NotSupported(
        "command logging cannot rebuild state under multi-master: the "
        "global transaction order is not known (paper, Challenge #2)");
  }
  std::unordered_set<uint64_t> committed;
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kCommit) committed.insert(rec.txn_id);
  }
  uint64_t executed = 0;
  for (const LogRecord& rec : records) {
    if (rec.type != LogRecordType::kCommand) continue;
    if (!committed.contains(rec.txn_id)) continue;
    execute(rec);
    executed++;
  }
  return executed;
}

}  // namespace dsmdb::log
