#ifndef DSMDB_LOG_LOG_RECORD_H_
#define DSMDB_LOG_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dsmdb::log {

/// Log record kinds. `kCommand` implements command logging [41]: the
/// record carries the transaction invocation, not its effects. The paper
/// notes command logging cannot be used with multi-master DSM-DB because
/// the global transaction order is not known in advance — our recovery
/// path enforces exactly that restriction (see RedoRecovery).
enum class LogRecordType : uint8_t {
  kUpdate = 1,      ///< Redo: physical after-image of a record write.
  kCommit = 2,
  kAbort = 3,
  kCommand = 4,     ///< Logical: transaction type + arguments.
  kCheckpoint = 5,  ///< Marks a completed checkpoint (recovery start point).
};

/// One write-ahead log record. Payload semantics depend on `type`:
/// for kUpdate it is (table, key, value) encoded by the transaction layer;
/// for kCommand the workload's logical operation encoding.
struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kUpdate;
  std::string payload;

  /// Serialized size once encoded.
  size_t EncodedSize() const { return 4 + 8 + 8 + 1 + payload.size() + 8; }
};

/// Appends the wire encoding of `rec` to `out`:
///   fixed32 len | fixed64 lsn | fixed64 txn | byte type | payload | fixed64 csum
void EncodeLogRecord(const LogRecord& rec, std::string* out);

/// Decodes one record starting at `*pos`; advances `*pos` past it.
/// Returns Corruption on checksum/length mismatch, NotFound at end.
Status DecodeLogRecord(std::string_view buf, size_t* pos, LogRecord* rec);

/// Parses a whole log image; stops cleanly at a torn tail (a partially
/// persisted final record is discarded, as in ARIES).
Status ParseLog(std::string_view buf, std::vector<LogRecord>* records);

}  // namespace dsmdb::log

#endif  // DSMDB_LOG_LOG_RECORD_H_
