#include "log/log_record.h"

#include "common/coding.h"

namespace dsmdb::log {

void EncodeLogRecord(const LogRecord& rec, std::string* out) {
  const size_t body_len = 8 + 8 + 1 + rec.payload.size();
  PutFixed32(out, static_cast<uint32_t>(body_len));
  const size_t body_start = out->size();
  PutFixed64(out, rec.lsn);
  PutFixed64(out, rec.txn_id);
  out->push_back(static_cast<char>(rec.type));
  out->append(rec.payload);
  const uint64_t csum = Checksum64(out->data() + body_start, body_len);
  PutFixed64(out, csum);
}

Status DecodeLogRecord(std::string_view buf, size_t* pos, LogRecord* rec) {
  if (*pos >= buf.size()) return Status::NotFound("end of log");
  if (*pos + 4 > buf.size()) return Status::Corruption("torn length");
  const uint32_t body_len = DecodeFixed32(buf.data() + *pos);
  const size_t body_start = *pos + 4;
  if (body_len < 17) return Status::Corruption("record too short");
  if (body_start + body_len + 8 > buf.size()) {
    return Status::Corruption("torn record");
  }
  const uint64_t stored_csum =
      DecodeFixed64(buf.data() + body_start + body_len);
  const uint64_t csum = Checksum64(buf.data() + body_start, body_len);
  if (stored_csum != csum) return Status::Corruption("checksum mismatch");

  rec->lsn = DecodeFixed64(buf.data() + body_start);
  rec->txn_id = DecodeFixed64(buf.data() + body_start + 8);
  rec->type = static_cast<LogRecordType>(buf[body_start + 16]);
  rec->payload.assign(buf.data() + body_start + 17, body_len - 17);
  *pos = body_start + body_len + 8;
  return Status::OK();
}

Status ParseLog(std::string_view buf, std::vector<LogRecord>* records) {
  size_t pos = 0;
  while (pos < buf.size()) {
    LogRecord rec;
    Status s = DecodeLogRecord(buf, &pos, &rec);
    if (s.IsNotFound()) break;
    if (s.IsCorruption()) break;  // torn tail: stop replay here
    if (!s.ok()) return s;
    records->push_back(std::move(rec));
  }
  return Status::OK();
}

}  // namespace dsmdb::log
