#ifndef DSMDB_LOG_REPLICATED_LOG_H_
#define DSMDB_LOG_REPLICATED_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "log/log_record.h"

namespace dsmdb::log {

/// RAMCloud-style durability (Challenge #2, Approach #2): a log write is
/// "persistent" once k memory nodes hold it in DRAM. No disk on the commit
/// path, so commit latency is a few RDMA round trips — but durability is
/// probabilistic (all k nodes crashing together loses data), which the
/// paper notes and we expose in bench E2/E3.
struct ReplicatedLogOptions {
  uint32_t replication_factor = 3;
  uint64_t segment_bytes = 1ULL << 20;
  /// Distinguishes co-existing logs (e.g. one per compute node).
  std::string name = "rlog";
};

/// Thread-safe replicated log over the DSM layer's memory nodes.
class ReplicatedLog {
 public:
  ReplicatedLog(dsm::DsmClient* client, ReplicatedLogOptions options);

  ReplicatedLog(const ReplicatedLog&) = delete;
  ReplicatedLog& operator=(const ReplicatedLog&) = delete;

  /// Appends and replicates `rec`; returns its LSN once all k replicas have
  /// acknowledged. Replica appends are issued in parallel (simulated time
  /// advances to the slowest replica, not the sum).
  Result<uint64_t> AppendSync(LogRecord rec);

  /// Reconstructs the full log from replicas, tolerating up to k-1 crashed
  /// nodes per segment. Records are returned sorted by LSN.
  Result<std::vector<LogRecord>> GatherLog();

  uint64_t DurableLsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  uint32_t replication_factor() const { return options_.replication_factor; }
  uint64_t NumSegments() const;

  /// The logical memory nodes storing replica `replica` of segment `seg`.
  dsm::MemNodeId ReplicaNode(uint64_t seg, uint32_t replica) const;

 private:
  uint64_t SegmentKey(uint64_t seg) const;

  dsm::DsmClient* client_;
  ReplicatedLogOptions options_;
  uint64_t name_hash_;

  mutable std::mutex mu_;
  uint64_t cur_segment_ = 0;
  uint64_t cur_segment_bytes_ = 0;
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> durable_lsn_{0};
};

}  // namespace dsmdb::log

#endif  // DSMDB_LOG_REPLICATED_LOG_H_
