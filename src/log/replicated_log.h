#ifndef DSMDB_LOG_REPLICATED_LOG_H_
#define DSMDB_LOG_REPLICATED_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "log/log_record.h"

namespace dsmdb::log {

/// RAMCloud-style durability (Challenge #2, Approach #2): a log write is
/// "persistent" once k memory nodes hold it in DRAM. No disk on the commit
/// path, so commit latency is a few RDMA round trips — but durability is
/// probabilistic (all k nodes crashing together loses data), which the
/// paper notes and we expose in bench E2/E3.
struct ReplicatedLogOptions {
  uint32_t replication_factor = 3;
  uint64_t segment_bytes = 1ULL << 20;
  /// Distinguishes co-existing logs (e.g. one per compute node).
  std::string name = "rlog";
  /// Replicate with pipelined one-sided writes into pre-allocated segment
  /// buffers (~1 RTT for all k replicas). When false, falls back to the
  /// pre-engine two-sided kSvcLogAppend RPC per replica (kept for A/B
  /// comparison in bench E2).
  bool one_sided = true;
};

/// Thread-safe replicated log over the DSM layer's memory nodes.
///
/// Each segment owns `replication_factor` buffers of `segment_bytes`,
/// allocated on the replica nodes when the segment opens; appends reserve
/// a slot under the log mutex and then replicate with one pipelined
/// k-way WriteAll (async verb engine), so durability costs
/// ~1 RTT + k postings instead of k round trips.
///
/// Each replica buffer is stamped with its node's fabric incarnation at
/// allocation. A crash wipes the node's DRAM; after recovery the node
/// re-registers fresh memory at the same rkey, so a stale address would
/// silently resolve into unrelated bytes. Appends and GatherLog treat an
/// incarnation mismatch as a lost replica.
class ReplicatedLog {
 public:
  ReplicatedLog(dsm::DsmClient* client, ReplicatedLogOptions options);

  ReplicatedLog(const ReplicatedLog&) = delete;
  ReplicatedLog& operator=(const ReplicatedLog&) = delete;

  /// Appends and replicates `rec`; returns its LSN once all k replicas
  /// hold it. The k replica writes are issued as one pipeline (simulated
  /// time advances to the slowest replica, not the sum). A down replica
  /// fails the commit (no re-replication here).
  Result<uint64_t> AppendSync(LogRecord rec);

  /// Reconstructs the full log from replicas, tolerating up to k-1 crashed
  /// (or re-incarnated) nodes per segment. Records are sorted by LSN.
  Result<std::vector<LogRecord>> GatherLog();

  uint64_t DurableLsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  uint32_t replication_factor() const { return options_.replication_factor; }
  uint64_t NumSegments() const;

  /// The logical memory nodes storing replica `replica` of segment `seg`.
  dsm::MemNodeId ReplicaNode(uint64_t seg, uint32_t replica) const;

 private:
  struct Replica {
    dsm::MemNodeId node = 0;
    dsm::GlobalAddress buf;    ///< segment_bytes buffer on `node`
    uint64_t incarnation = 0;  ///< fabric incarnation when allocated
  };
  struct Segment {
    std::vector<Replica> replicas;  ///< empty until first append
    uint64_t used = 0;              ///< bytes reserved so far
  };

  /// Opens segment `seg` (allocates its k replica buffers). mu_ held.
  Status OpenSegmentLocked(uint64_t seg);
  /// Segment id on the wire for the RPC fallback.
  uint64_t SegmentKey(uint64_t seg) const;

  dsm::DsmClient* client_;
  ReplicatedLogOptions options_;
  uint64_t name_hash_;

  mutable std::mutex mu_;
  uint64_t cur_segment_ = 0;
  std::vector<Segment> segments_;
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> durable_lsn_{0};
};

}  // namespace dsmdb::log

#endif  // DSMDB_LOG_REPLICATED_LOG_H_
