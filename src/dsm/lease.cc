#include "dsm/lease.h"

#include <cstring>

#include "common/sim_clock.h"
#include "dsm/dsm_client.h"

namespace dsmdb::dsm {

Result<GlobalAddress> LeaseManager::CreateTable(DsmClient* admin,
                                                MemNodeId node) {
  Result<GlobalAddress> table = admin->Alloc(8ULL * kMaxOwners, node);
  if (!table.ok()) return table;
  char zeros[8ULL * kMaxOwners];
  std::memset(zeros, 0, sizeof(zeros));
  DSMDB_RETURN_NOT_OK(admin->Write(*table, zeros, sizeof(zeros)));
  return table;
}

LeaseManager::LeaseManager(DsmClient* dsm, Options options)
    : dsm_(dsm), options_(options) {
  lease_expiries_ = GlobalMetrics().GetCounter("fault.lease_expiries");
}

uint32_t LeaseManager::self_owner() const { return dsm_->self() + 1; }

Status LeaseManager::Heartbeat() {
  const uint32_t slot = dsm_->self();
  if (slot >= kMaxOwners) return Status::OK();
  const uint64_t expiry = SimClock::Now() + options_.lease_ns;
  return dsm_->Write(SlotAddr(slot), &expiry, 8);
}

Status LeaseManager::MaybeHeartbeat() {
  const uint64_t now = SimClock::Now();
  uint64_t last = last_heartbeat_ns_.load(std::memory_order_relaxed);
  if (last != 0 && now - last < options_.heartbeat_interval_ns) {
    return Status::OK();
  }
  // One worker wins the slot per interval; losers skip (their sibling's
  // heartbeat covers the whole node).
  if (!last_heartbeat_ns_.compare_exchange_strong(
          last, now, std::memory_order_relaxed)) {
    return Status::OK();
  }
  return Heartbeat();
}

bool LeaseManager::IsExpired(uint32_t owner) {
  if (owner == 0 || owner > kMaxOwners) return false;
  const uint32_t slot = owner - 1;
  const uint64_t now = SimClock::Now();
  CacheEntry cached;
  {
    SpinLatchGuard g(cache_latch_);
    cached = cache_[slot];
  }
  if (cached.read_at != 0) {
    if (cached.expiry > now) return false;  // known-fresh lease
    if (now - cached.read_at < options_.recheck_ns) {
      return cached.expiry != 0;  // recent verdict still holds
    }
  }
  uint64_t word = 0;
  if (!dsm_->Read(SlotAddr(slot), &word, 8).ok()) {
    // Lease table unreachable: fail safe, reclaim nothing.
    return false;
  }
  {
    SpinLatchGuard g(cache_latch_);
    cache_[slot] = CacheEntry{word, now};
  }
  const bool expired = word != 0 && word <= now;
  if (expired) lease_expiries_->Add(1);
  return expired;
}

}  // namespace dsmdb::dsm
