#ifndef DSMDB_DSM_DSM_CLIENT_H_
#define DSMDB_DSM_DSM_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "dsm/cluster.h"
#include "dsm/gaddr.h"
#include "obs/heat_map.h"
#include "rdma/async_engine.h"
#include "rdma/nic.h"

namespace dsmdb::dsm {

class LeaseManager;

/// One op of a doorbell-batched DSM read/write.
struct DsmBatchOp {
  GlobalAddress addr;
  void* local = nullptr;
  size_t length = 0;
};

/// Deadline/backoff policy for transient verb failures (DESIGN.md §11).
/// Only Status::TimedOut is retried — it marks a lost verb whose retry is
/// safe by the fault model's loss semantics (reads/atomics: request loss,
/// writes: idempotent re-send). Unavailable and StaleIncarnation surface
/// immediately so the transaction layer aborts instead of spinning on a
/// dead node. Backoff parks the cooperative lane via rt::SimWait — a
/// retrying transaction never blocks its siblings.
struct RetryPolicy {
  uint32_t max_attempts = 16;
  /// Total simulated budget per op, from first issue to last retry.
  uint64_t deadline_ns = 2'000'000;
  uint64_t backoff_base_ns = 2'000;
  uint64_t backoff_cap_ns = 64'000;
};

/// A compute node's handle onto the DSM layer (Challenge #1's "Abstract
/// APIs"): memory allocation, one-sided data access, RDMA atomics, function
/// offloading, and coherence-directory calls — all by logical
/// GlobalAddress, with the cluster map resolving the current physical
/// binding.
///
/// Thread-safe; typically one per compute node, shared by its worker
/// threads.
class DsmClient {
 public:
  DsmClient(Cluster* cluster, rdma::NodeId self);

  rdma::Nic& nic() { return nic_; }
  Cluster* cluster() { return cluster_; }
  rdma::NodeId self() const { return nic_.self(); }

  // --- Memory allocation APIs ---------------------------------------------

  /// Allocates `size` bytes on `node` (or round-robin if kAnyNode).
  static constexpr MemNodeId kAnyNode = UINT16_MAX;
  Result<GlobalAddress> Alloc(uint64_t size, MemNodeId node = kAnyNode);
  Status Free(GlobalAddress addr, uint64_t size);

  // --- Data transmission APIs (one-sided) ----------------------------------

  Status Read(GlobalAddress src, void* dst, size_t length);
  Status Write(GlobalAddress dst, const void* src, size_t length);
  Status ReadBatch(const std::vector<DsmBatchOp>& ops);
  Status WriteBatch(const std::vector<DsmBatchOp>& ops);

  /// 8-byte atomics (offset must be 8-byte aligned). Return previous value.
  Result<uint64_t> CompareAndSwap(GlobalAddress addr, uint64_t expected,
                                  uint64_t desired);
  Result<uint64_t> FetchAndAdd(GlobalAddress addr, uint64_t delta);

  /// Replicated write: writes the same buffer to each address (used by
  /// memory-replication durability). All writes must succeed. The k writes
  /// are pipelined through the async verb engine, so k-way replication
  /// costs ~1 RTT + k postings instead of k RTTs.
  Status WriteAll(const std::vector<GlobalAddress>& dsts, const void* src,
                  size_t length);

  /// Replica read-failover: reads from the first replica that answers,
  /// trying the next on Unavailable / TimedOut / StaleIncarnation (other
  /// errors surface immediately). Counts `fault.failovers` when a
  /// non-primary replica serves the read.
  Status ReadAny(const std::vector<GlobalAddress>& replicas, void* dst,
                 size_t length);

  // --- Fault handling -------------------------------------------------------

  /// Replaces the transient-failure retry policy (defaults are on).
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Incarnation fencing: every op carries the incarnation this client
  /// last observed for its target memory node; once the node crashes and
  /// recovers (empty, re-incarnated), ops fail with StaleIncarnation
  /// instead of silently touching zeroed memory. Recovery flows call
  /// RefreshIncarnation after re-seeding the node to accept the new world.
  Status CheckIncarnation(MemNodeId node) const;
  void RefreshIncarnation(MemNodeId node);
  void RefreshIncarnations();

  /// Liveness leases for orphan-lock recovery (null = feature off).
  /// Not owned; must outlive use.
  void SetLeaseManager(LeaseManager* leases) {
    leases_.store(leases, std::memory_order_release);
  }
  LeaseManager* lease_manager() const {
    return leases_.load(std::memory_order_acquire);
  }
  /// Owner id stamped into RDMA lock words (fabric id + 1), or 0 when no
  /// lease manager is installed — keeping lock words bit-identical to the
  /// pre-lease encoding unless the feature is on.
  uint32_t lock_owner_id() const {
    return lease_manager() != nullptr ? self() + 1 : 0;
  }

  // --- Function offloading APIs --------------------------------------------

  Status Offload(MemNodeId node, uint32_t fn_id, std::string_view arg,
                 std::string* out);

  // --- Coherence directory (Challenge #4, Approach #2) ----------------------

  Status DirRegisterSharer(GlobalAddress page, uint32_t cache_id);
  Status DirUnregisterSharer(GlobalAddress page, uint32_t cache_id);
  /// Returns the other sharers to invalidate (resets the set to
  /// {cache_id}; invalidation-based coherence).
  Result<std::vector<uint32_t>> DirAcquireExclusive(GlobalAddress page,
                                                    uint32_t cache_id);

  /// Returns the other sharers to refresh, keeping them registered
  /// (update-based coherence).
  Result<std::vector<uint32_t>> DirPeersForUpdate(GlobalAddress page,
                                                  uint32_t cache_id);

  // --- Replica log (RAMCloud-style durability) -------------------------------

  Status LogAppend(MemNodeId node, uint64_t segment, std::string_view data);
  Result<std::string> LogRead(MemNodeId node, uint64_t segment);

  /// Translates a logical address to the fabric-level pointer.
  rdma::RemotePtr ToRemote(GlobalAddress addr) const;

 private:
  /// Per-op latency histograms (obs::Telemetry, `dsm.client.*`); recording
  /// gated on obs::ObsConfig::Enabled().
  struct ObsHooks {
    ConcurrentHistogram* alloc_ns = nullptr;
    ConcurrentHistogram* read_ns = nullptr;
    ConcurrentHistogram* write_ns = nullptr;
    ConcurrentHistogram* batch_ns = nullptr;
    ConcurrentHistogram* atomic_ns = nullptr;
    ConcurrentHistogram* offload_ns = nullptr;
    ConcurrentHistogram* directory_ns = nullptr;
    ConcurrentHistogram* log_ns = nullptr;
  };

  Status DirectoryCall(uint8_t op, GlobalAddress page, uint32_t cache_id,
                       std::string* resp);
  static Result<std::vector<uint32_t>> ParseSharerList(
      const std::string& resp);

  /// Runs the backoff/deadline retry loop after `fn` first failed with
  /// `first` (a TimedOut). Re-checks the incarnation fence after every
  /// park, so a node that flapped during the backoff fails fast.
  template <typename Fn>
  Status RetryVerb(Fn&& fn, MemNodeId node, Status first);
  uint64_t NextJitter();

  Cluster* cluster_;
  rdma::Nic nic_;
  std::atomic<uint32_t> alloc_rr_{0};
  RetryPolicy retry_;
  /// Last-observed fabric incarnation per memory node (the fence).
  std::vector<std::atomic<uint64_t>> expected_inc_;
  std::atomic<LeaseManager*> leases_{nullptr};
  std::atomic<uint64_t> jitter_seq_{0};
  Counter* retries_ = nullptr;
  Counter* failovers_ = nullptr;
  ObsHooks obs_;
};

/// GlobalAddress-level view of the async verb engine: posts translate
/// through the cluster map, completion semantics are rdma::CompletionQueue's
/// (per-target in-order, cross-target parallel, WaitAll advances the clock
/// to the slowest op). Not thread-safe; reuse via Reset().
class DsmPipeline {
 public:
  explicit DsmPipeline(DsmClient* client,
                       uint32_t max_outstanding = rdma::kDefaultQpDepth)
      : client_(client),
        cq_(&client->cluster()->fabric(), client->self(), max_outstanding) {}

  rdma::WrId Read(GlobalAddress src, void* dst, size_t length) {
    if (Status fence = client_->CheckIncarnation(src.node); !fence.ok()) {
      return PostFenced(src.node, std::move(fence));
    }
    if (obs::HeatMap::Enabled()) {
      obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kRead,
                                                src.Pack());
    }
    return cq_.PostRead(client_->ToRemote(src), dst, length);
  }
  rdma::WrId Write(GlobalAddress dst, const void* src, size_t length) {
    if (Status fence = client_->CheckIncarnation(dst.node); !fence.ok()) {
      return PostFenced(dst.node, std::move(fence));
    }
    if (obs::HeatMap::Enabled()) {
      obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kWrite,
                                                dst.Pack());
    }
    return cq_.PostWrite(client_->ToRemote(dst), src, length);
  }
  rdma::WrId Cas(GlobalAddress addr, uint64_t expected, uint64_t desired) {
    if (Status fence = client_->CheckIncarnation(addr.node); !fence.ok()) {
      return PostFenced(addr.node, std::move(fence));
    }
    if (obs::HeatMap::Enabled()) {
      obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kAtomic,
                                                addr.Pack());
    }
    return cq_.PostCas(client_->ToRemote(addr), expected, desired);
  }
  rdma::WrId Faa(GlobalAddress addr, uint64_t delta) {
    if (Status fence = client_->CheckIncarnation(addr.node); !fence.ok()) {
      return PostFenced(addr.node, std::move(fence));
    }
    if (obs::HeatMap::Enabled()) {
      obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kAtomic,
                                                addr.Pack());
    }
    return cq_.PostFaa(client_->ToRemote(addr), delta);
  }
  /// Two-sided call to a memory node by logical id.
  rdma::WrId CallMem(MemNodeId node, uint32_t service, std::string_view req,
                     std::string* resp) {
    if (Status fence = client_->CheckIncarnation(node); !fence.ok()) {
      return PostFenced(node, std::move(fence));
    }
    return cq_.PostCall(client_->cluster()->MemFabricId(node), service, req,
                        resp);
  }
  /// Two-sided call to an arbitrary fabric node (e.g. a peer compute node).
  rdma::WrId Call(rdma::NodeId target, uint32_t service, std::string_view req,
                  std::string* resp) {
    return cq_.PostCall(target, service, req, resp);
  }

  Status WaitAll() { return cq_.WaitAll(); }
  const Status& status(rdma::WrId id) const { return cq_.status(id); }
  uint64_t value(rdma::WrId id) const { return cq_.value(id); }
  uint64_t completion_ns(rdma::WrId id) const { return cq_.completion_ns(id); }
  size_t size() const { return cq_.size(); }
  void Reset() { cq_.Reset(); }

 private:
  /// Records an incarnation-fence rejection as a completed-with-error post
  /// so it surfaces through the queue's normal status()/WaitAll plumbing.
  rdma::WrId PostFenced(MemNodeId node, Status fence) {
    return cq_.PostError(client_->cluster()->MemFabricId(node),
                         std::move(fence));
  }

  DsmClient* client_;
  rdma::CompletionQueue cq_;
};

namespace internal {

/// Identity of the calling context's DsmClient scratch buffers — per task
/// under an rt::Scheduler, per thread otherwise. Test-only: asserts that
/// interleaved tasks on one worker thread never alias scratch.
const void* ScratchIdForTest();

/// Current size of the scratch freelist (test-only: asserts that finished
/// tasks recycle their scratch).
size_t ScratchFreelistSizeForTest();

}  // namespace internal

}  // namespace dsmdb::dsm

#endif  // DSMDB_DSM_DSM_CLIENT_H_
