#ifndef DSMDB_DSM_LEASE_H_
#define DSMDB_DSM_LEASE_H_

#include <atomic>
#include <cstdint>

#include "common/metrics.h"
#include "common/result.h"
#include "common/spin_latch.h"
#include "common/status.h"
#include "dsm/gaddr.h"

namespace dsmdb::dsm {

class DsmClient;

/// Lotus-style compute-node liveness leases (DESIGN.md §11): each compute
/// node periodically writes `now + lease_ns` into its slot of a shared
/// lease table in DSM. A peer that finds an RDMA lock word stamped with an
/// owner whose lease has expired may CAS-reclaim the word — so a crashed
/// compute node cannot wedge 2PL/MVCC forever.
///
/// Owner ids are fabric node id + 1 (0 marks a lock taken without owner
/// identity — never reclaimable). The table is one 8-byte expiry word per
/// fabric node, allocated once per cluster via CreateTable and shared by
/// every node's LeaseManager.
///
/// Expiry comparisons use the *caller's* per-thread simulated clock, so an
/// "expired" verdict means "expired in my timeline" — a live holder whose
/// worker thread lags can in principle be reclaimed early, exactly the
/// false-positive a real asynchronous system risks with leases. Lock
/// release CAS-es guard against the holder resurfacing (its release fails
/// benignly on the reclaimed word).
///
/// Thread-safe; one instance per compute node, shared by its workers.
class LeaseManager {
 public:
  /// Fabric ids >= kMaxOwners get no lease slot (their Heartbeat is a
  /// no-op and their locks are never reclaimed).
  static constexpr uint32_t kMaxOwners = 64;

  struct Options {
    GlobalAddress table;  ///< From CreateTable, same for every node.
    uint64_t lease_ns = 200'000;
    uint64_t heartbeat_interval_ns = 50'000;
    /// Floor between remote re-reads of one owner's (possibly expired)
    /// lease word, so contended locks between live nodes do not turn every
    /// failed CAS into an extra round trip.
    uint64_t recheck_ns = 10'000;
  };

  /// Allocates and zeroes the shared lease table on `node`.
  static Result<GlobalAddress> CreateTable(DsmClient* admin,
                                           MemNodeId node = 0);

  LeaseManager(DsmClient* dsm, Options options);

  /// Extends this node's lease to now + lease_ns (one remote write).
  Status Heartbeat();

  /// Heartbeats if more than heartbeat_interval_ns passed since the last
  /// one; cheap no-op otherwise. Call from worker loops.
  Status MaybeHeartbeat();

  /// True when `owner` held a lease that has expired at the caller's
  /// current simulated time. Owners that never heartbeated are *not*
  /// expired (no lease, no reclaim). Caches lease words locally; a fresh
  /// lease costs no traffic, a doubtful one costs at most one 8-byte read
  /// per recheck_ns.
  bool IsExpired(uint32_t owner);

  /// This node's lock-word owner id (fabric id + 1).
  uint32_t self_owner() const;

  const Options& options() const { return options_; }

 private:
  struct CacheEntry {
    uint64_t expiry = 0;   ///< Last lease word read (0 = never leased).
    uint64_t read_at = 0;  ///< Local sim time of that read (0 = never).
  };

  GlobalAddress SlotAddr(uint32_t slot) const {
    return options_.table.Plus(8ULL * slot);
  }

  DsmClient* dsm_;
  Options options_;
  std::atomic<uint64_t> last_heartbeat_ns_{0};
  SpinLatch cache_latch_;
  CacheEntry cache_[kMaxOwners];
  Counter* lease_expiries_;
};

}  // namespace dsmdb::dsm

#endif  // DSMDB_DSM_LEASE_H_
