#include "dsm/allocator.h"

#include <algorithm>

namespace dsmdb::dsm {

ExtentAllocator::ExtentAllocator(uint64_t capacity, uint64_t reserve_prefix)
    : capacity_(capacity) {
  if (reserve_prefix < 8) reserve_prefix = 8;
  reserve_prefix = AlignUp(reserve_prefix);
  if (reserve_prefix < capacity) {
    free_by_offset_[reserve_prefix] = capacity - reserve_prefix;
  }
  stats_.capacity_bytes = capacity;
  stats_.reserved_bytes = reserve_prefix;
}

Result<uint64_t> ExtentAllocator::Alloc(uint64_t size) {
  if (size == 0) return Status::InvalidArgument("zero-size alloc");
  size = AlignUp(size);
  std::lock_guard<std::mutex> lk(mu_);
  // First fit in offset order keeps low addresses dense.
  for (auto it = free_by_offset_.begin(); it != free_by_offset_.end(); ++it) {
    if (it->second >= size) {
      const uint64_t offset = it->first;
      const uint64_t remaining = it->second - size;
      free_by_offset_.erase(it);
      if (remaining > 0) free_by_offset_[offset + size] = remaining;
      live_[offset] = size;
      stats_.allocated_bytes += size;
      stats_.alloc_calls++;
      return offset;
    }
  }
  stats_.failed_allocs++;
  return Status::OutOfMemory("extent allocator exhausted");
}

Status ExtentAllocator::Free(uint64_t offset) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(offset);
  if (it == live_.end()) {
    return Status::InvalidArgument("free of unallocated offset");
  }
  uint64_t size = it->second;
  live_.erase(it);
  stats_.allocated_bytes -= size;
  stats_.free_calls++;

  // Insert and coalesce with neighbors.
  auto next = free_by_offset_.lower_bound(offset);
  if (next != free_by_offset_.end() && offset + size == next->first) {
    size += next->second;
    next = free_by_offset_.erase(next);
  }
  if (next != free_by_offset_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      prev->second += size;
      return Status::OK();
    }
  }
  free_by_offset_[offset] = size;
  return Status::OK();
}

AllocatorStats ExtentAllocator::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  AllocatorStats s = stats_;
  uint64_t total_free = 0;
  uint64_t largest = 0;
  for (const auto& [off, sz] : free_by_offset_) {
    total_free += sz;
    largest = std::max(largest, sz);
  }
  s.external_fragmentation =
      total_free == 0 ? 0.0
                      : 1.0 - static_cast<double>(largest) /
                                  static_cast<double>(total_free);
  return s;
}

SlabAllocator::SlabAllocator(ExtentAllocator* extents) : extents_(extents) {}

int SlabAllocator::ClassIndex(uint64_t size) {
  if (size > kMaxClass) return -1;
  uint64_t cls = kMinClass;
  int idx = 0;
  while (cls < size) {
    cls <<= 1;
    idx++;
  }
  return idx;
}

Result<uint64_t> SlabAllocator::Alloc(uint64_t size) {
  if (size == 0) return Status::InvalidArgument("zero-size alloc");
  const int idx = ClassIndex(size);
  if (idx < 0) return extents_->Alloc(size);

  std::lock_guard<std::mutex> lk(mu_);
  SizeClass& sc = classes_[idx];
  if (sc.free_slots.empty()) {
    // Carve a new chunk into slots of this class.
    Result<uint64_t> chunk = extents_->Alloc(kChunkBytes);
    if (!chunk.ok()) return chunk.status();
    const uint64_t slot_size = ClassSize(idx);
    for (uint64_t off = 0; off + slot_size <= kChunkBytes; off += slot_size) {
      sc.free_slots.push_back(*chunk + off);
    }
  }
  const uint64_t slot = sc.free_slots.back();
  sc.free_slots.pop_back();
  slab_allocated_ += ClassSize(idx);
  slab_alloc_calls_++;
  return slot;
}

Status SlabAllocator::Free(uint64_t offset, uint64_t size) {
  const int idx = ClassIndex(size);
  if (idx < 0) return extents_->Free(offset);
  std::lock_guard<std::mutex> lk(mu_);
  classes_[idx].free_slots.push_back(offset);
  slab_allocated_ -= ClassSize(idx);
  slab_free_calls_++;
  return Status::OK();
}

AllocatorStats SlabAllocator::GetStats() const {
  AllocatorStats s = extents_->GetStats();
  std::lock_guard<std::mutex> lk(mu_);
  s.alloc_calls += slab_alloc_calls_;
  s.free_calls += slab_free_calls_;
  return s;
}

}  // namespace dsmdb::dsm
