#ifndef DSMDB_DSM_CLUSTER_H_
#define DSMDB_DSM_CLUSTER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dsm/gaddr.h"
#include "dsm/memory_node.h"
#include "rdma/fabric.h"
#include "rdma/network_model.h"

namespace dsmdb::dsm {

/// Cluster construction parameters (Figure 2's deployment knobs).
struct ClusterOptions {
  uint32_t num_memory_nodes = 2;
  MemoryNode::Options memory_node;
  rdma::NetworkModel network;
  /// Cost model for compute-node-local work (buffer copies, tuple
  /// processing); memory-node CPU speed lives in memory_node.
  rdma::CpuModel compute_cpu;
};

/// Owns the simulated fabric and the DSM layer's memory nodes, and binds
/// logical memory-node ids to fabric nodes. Compute nodes attach via
/// `AddComputeNode` and talk to the DSM through `DsmClient`.
///
/// Failure injection: `CrashMemoryNode` drops a node (its DRAM contents and
/// registered regions are lost); `RecoverMemoryNode` brings up a fresh,
/// empty replacement bound to the same logical id — the paper's motivation
/// for logical addressing (Challenge #1).
class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  rdma::Fabric& fabric() { return fabric_; }
  const ClusterOptions& options() const { return options_; }
  const rdma::CpuModel& compute_cpu() const { return options_.compute_cpu; }

  uint32_t num_memory_nodes() const { return options_.num_memory_nodes; }

  /// The memory node currently serving logical id `id`; nullptr while
  /// crashed.
  MemoryNode* memory_node(MemNodeId id);

  /// Fabric id bound to logical memory node `id` (stable across recovery).
  rdma::NodeId MemFabricId(MemNodeId id) const;

  /// rkey of the node's giant region (0 by construction, but exposed so
  /// callers never hard-code it).
  uint32_t MemRkey(MemNodeId id) const;

  /// Registers a compute node on the fabric; returns its fabric id.
  rdma::NodeId AddComputeNode(const std::string& name, uint32_t cores = 32);

  void CrashMemoryNode(MemNodeId id);
  void RecoverMemoryNode(MemNodeId id);
  bool IsMemoryNodeAlive(MemNodeId id) const;

 private:
  ClusterOptions options_;
  rdma::Fabric fabric_;
  mutable std::mutex mu_;
  std::vector<rdma::NodeId> mem_fabric_ids_;
  std::vector<std::unique_ptr<MemoryNode>> memory_nodes_;
  /// Crashed nodes are parked here instead of freed: an RPC handler that
  /// raced the crash may still be executing on another thread (it
  /// linearizes before the crash). Emptied on cluster teardown.
  std::vector<std::unique_ptr<MemoryNode>> graveyard_;
};

}  // namespace dsmdb::dsm

#endif  // DSMDB_DSM_CLUSTER_H_
