#include "dsm/dsm_client.h"

#include <algorithm>

#include "common/coding.h"
#include "common/sim_clock.h"
#include "common/spin_latch.h"
#include "dsm/rpc_ids.h"
#include "obs/heat_map.h"
#include "obs/op_scope.h"
#include "obs/telemetry.h"
#include "rt/scheduler.h"
#include "rt/task.h"

namespace dsmdb::dsm {

namespace {

/// Hot-path scratch, owned per *execution context*: per cooperative task
/// when an rt::Scheduler drives the thread, per thread otherwise. The
/// batch vector may be live across a park (the NIC verb suspends the task
/// mid-ReadBatch), so a plain thread_local would alias between two
/// interleaved tasks on one worker — each task gets its own Scratch from
/// a freelist and returns it when the task finishes.
struct Scratch {
  /// ReadBatch/WriteBatch DsmBatchOp -> rdma::BatchOp translation buffer.
  std::vector<rdma::BatchOp> batch;
  /// Request-string slots for DirectoryCall/Offload. RPC handlers run
  /// inline on the calling context and may re-enter the client (e.g. a
  /// peer's eviction during invalidation unregisters a sharer), so the
  /// slots rotate by nesting depth instead of sharing one buffer.
  std::string req[4];
  uint32_t req_depth = 0;
};

SpinLatch g_scratch_latch;

std::vector<Scratch*>& ScratchFreelist() {
  static std::vector<Scratch*> list;
  return list;
}

/// Task-finish deleter: recycle the task's scratch for future tasks.
void ReturnScratch(void* p) {
  auto* s = static_cast<Scratch*>(p);
  s->batch.clear();
  s->req_depth = 0;
  SpinLatchGuard g(g_scratch_latch);
  ScratchFreelist().push_back(s);
}

Scratch* CurrentScratch() {
  static const size_t kSlot = rt::AllocTaskSlot(&ReturnScratch);
  void** cell = rt::TaskSlot(kSlot);
  if (cell == nullptr) {
    // Plain thread: one scratch per thread (the pre-scheduler behavior).
    thread_local Scratch fallback;
    return &fallback;
  }
  if (*cell == nullptr) {
    Scratch* s = nullptr;
    {
      SpinLatchGuard g(g_scratch_latch);
      auto& list = ScratchFreelist();
      if (!list.empty()) {
        s = list.back();
        list.pop_back();
      }
    }
    if (s == nullptr) s = new Scratch();
    *cell = s;
  }
  return static_cast<Scratch*>(*cell);
}

/// RAII handle on one rotating request-string slot of the context's
/// scratch (rotation handles inline-handler re-entry on one context).
class ReqScratch {
 public:
  ReqScratch() : s_(CurrentScratch()), buf_(&s_->req[s_->req_depth++ % 4]) {
    buf_->clear();
  }
  ~ReqScratch() { s_->req_depth--; }
  std::string* get() { return buf_; }

 private:
  Scratch* s_;
  std::string* buf_;
};

/// splitmix64 finalizer, used for backoff jitter (decorrelates retry storms
/// across clients without a stateful RNG).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

namespace internal {

const void* ScratchIdForTest() { return CurrentScratch(); }

size_t ScratchFreelistSizeForTest() {
  SpinLatchGuard g(g_scratch_latch);
  return ScratchFreelist().size();
}

}  // namespace internal

DsmClient::DsmClient(Cluster* cluster, rdma::NodeId self)
    : cluster_(cluster),
      nic_(&cluster->fabric(), self),
      expected_inc_(cluster->num_memory_nodes()) {
  RefreshIncarnations();
  retries_ = GlobalMetrics().GetCounter("fault.retries");
  failovers_ = GlobalMetrics().GetCounter("fault.failovers");
  obs::Telemetry& telemetry = obs::Telemetry::Instance();
  obs_.alloc_ns = telemetry.GetHistogram("dsm.client.alloc_ns");
  obs_.read_ns = telemetry.GetHistogram("dsm.client.read_ns");
  obs_.write_ns = telemetry.GetHistogram("dsm.client.write_ns");
  obs_.batch_ns = telemetry.GetHistogram("dsm.client.batch_ns");
  obs_.atomic_ns = telemetry.GetHistogram("dsm.client.atomic_ns");
  obs_.offload_ns = telemetry.GetHistogram("dsm.client.offload_ns");
  obs_.directory_ns = telemetry.GetHistogram("dsm.client.directory_ns");
  obs_.log_ns = telemetry.GetHistogram("dsm.client.log_ns");
}

rdma::RemotePtr DsmClient::ToRemote(GlobalAddress addr) const {
  return rdma::RemotePtr{cluster_->MemFabricId(addr.node),
                         cluster_->MemRkey(addr.node), addr.offset};
}

Status DsmClient::CheckIncarnation(MemNodeId node) const {
  if (node >= expected_inc_.size()) return Status::OK();
  const uint64_t current =
      cluster_->fabric().Incarnation(cluster_->MemFabricId(node));
  if (current == expected_inc_[node].load(std::memory_order_acquire)) {
    return Status::OK();
  }
  return Status::StaleIncarnation("memory node " + std::to_string(node) +
                                  " re-incarnated since bind");
}

void DsmClient::RefreshIncarnation(MemNodeId node) {
  if (node >= expected_inc_.size()) return;
  expected_inc_[node].store(
      cluster_->fabric().Incarnation(cluster_->MemFabricId(node)),
      std::memory_order_release);
}

void DsmClient::RefreshIncarnations() {
  for (MemNodeId i = 0; i < expected_inc_.size(); i++) RefreshIncarnation(i);
}

uint64_t DsmClient::NextJitter() {
  const uint64_t seq = jitter_seq_.fetch_add(1, std::memory_order_relaxed);
  return Mix64((static_cast<uint64_t>(self()) << 32) ^ seq);
}

template <typename Fn>
Status DsmClient::RetryVerb(Fn&& fn, MemNodeId node, Status first) {
  const uint64_t start = SimClock::Now();
  Status s = std::move(first);
  for (uint32_t attempt = 1; attempt < retry_.max_attempts; attempt++) {
    uint64_t backoff = std::min<uint64_t>(
        retry_.backoff_base_ns << std::min<uint32_t>(attempt - 1, 5),
        retry_.backoff_cap_ns);
    backoff += NextJitter() % (backoff / 2 + 1);
    const uint64_t now = SimClock::Now();
    if (now + backoff - start >= retry_.deadline_ns) break;  // budget spent
    rt::SimWait(now + backoff);
    retries_->Add(1);
    // The target may have flapped while we were parked: fail fast with the
    // fence instead of issuing into a re-incarnated (empty) node.
    DSMDB_RETURN_NOT_OK(CheckIncarnation(node));
    s = fn();
    if (!s.IsTimedOut()) return s;
  }
  return s;
}

Result<GlobalAddress> DsmClient::Alloc(uint64_t size, MemNodeId node) {
  obs::OpScope scope("dsm.alloc", "dsm", obs_.alloc_ns);
  if (node == kAnyNode) {
    node = static_cast<MemNodeId>(
        alloc_rr_.fetch_add(1, std::memory_order_relaxed) %
        cluster_->num_memory_nodes());
  }
  if (node >= cluster_->num_memory_nodes()) {
    return Status::InvalidArgument("bad memory node id");
  }
  // RPC-based ops are fenced but never retried (the handler may have run
  // before the ack was lost — re-sending an alloc would leak memory).
  DSMDB_RETURN_NOT_OK(CheckIncarnation(node));
  std::string req;
  PutFixed64(&req, size);
  std::string resp;
  DSMDB_RETURN_NOT_OK(
      nic_.Call(cluster_->MemFabricId(node), kSvcAlloc, req, &resp));
  if (resp.size() != 9 || resp[0] != 1) {
    return Status::OutOfMemory("DSM alloc failed on node " +
                               std::to_string(node));
  }
  return GlobalAddress{node, DecodeFixed64(resp.data() + 1)};
}

Status DsmClient::Free(GlobalAddress addr, uint64_t size) {
  obs::OpScope scope("dsm.free", "dsm", obs_.alloc_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(addr.node));
  std::string req;
  PutFixed64(&req, addr.offset);
  PutFixed64(&req, size);
  std::string resp;
  DSMDB_RETURN_NOT_OK(
      nic_.Call(cluster_->MemFabricId(addr.node), kSvcFree, req, &resp));
  if (resp.size() != 1 || resp[0] != 1) {
    return Status::InvalidArgument("DSM free rejected");
  }
  return Status::OK();
}

Status DsmClient::Read(GlobalAddress src, void* dst, size_t length) {
  obs::OpScope scope("dsm.read", "dsm", obs_.read_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(src.node));
  if (obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kRead,
                                              src.Pack());
  }
  Status s = nic_.Read(ToRemote(src), dst, length);
  if (s.IsTimedOut()) {
    s = RetryVerb([&] { return nic_.Read(ToRemote(src), dst, length); },
                  src.node, std::move(s));
  }
  return s;
}

Status DsmClient::Write(GlobalAddress dst, const void* src, size_t length) {
  obs::OpScope scope("dsm.write", "dsm", obs_.write_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(dst.node));
  if (obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kWrite,
                                              dst.Pack());
  }
  Status s = nic_.Write(ToRemote(dst), src, length);
  if (s.IsTimedOut()) {
    // Lost-ack semantics: the write landed, re-sending it is idempotent.
    s = RetryVerb([&] { return nic_.Write(ToRemote(dst), src, length); },
                  dst.node, std::move(s));
  }
  return s;
}

Status DsmClient::ReadBatch(const std::vector<DsmBatchOp>& ops) {
  obs::OpScope scope("dsm.read_batch", "dsm", obs_.batch_ns);
  std::vector<rdma::BatchOp>& raw = CurrentScratch()->batch;
  raw.clear();
  raw.reserve(ops.size());
  const bool heat = obs::HeatMap::Enabled();
  MemNodeId fenced = kAnyNode;
  for (const DsmBatchOp& op : ops) {
    if (op.addr.node != fenced) {
      DSMDB_RETURN_NOT_OK(CheckIncarnation(op.addr.node));
      fenced = op.addr.node;
    }
    if (heat) {
      obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kRead,
                                                op.addr.Pack());
    }
    raw.push_back(rdma::BatchOp{ToRemote(op.addr), op.local, op.length});
  }
  Status s = nic_.ReadBatch(raw);
  if (s.IsTimedOut()) {
    s = RetryVerb([&] { return nic_.ReadBatch(raw); },
                  ops.empty() ? MemNodeId{0} : ops[0].addr.node,
                  std::move(s));
  }
  return s;
}

Status DsmClient::WriteBatch(const std::vector<DsmBatchOp>& ops) {
  obs::OpScope scope("dsm.write_batch", "dsm", obs_.batch_ns);
  std::vector<rdma::BatchOp>& raw = CurrentScratch()->batch;
  raw.clear();
  raw.reserve(ops.size());
  const bool heat = obs::HeatMap::Enabled();
  MemNodeId fenced = kAnyNode;
  for (const DsmBatchOp& op : ops) {
    if (op.addr.node != fenced) {
      DSMDB_RETURN_NOT_OK(CheckIncarnation(op.addr.node));
      fenced = op.addr.node;
    }
    if (heat) {
      obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kWrite,
                                                op.addr.Pack());
    }
    raw.push_back(rdma::BatchOp{ToRemote(op.addr), op.local, op.length});
  }
  Status s = nic_.WriteBatch(raw);
  if (s.IsTimedOut()) {
    s = RetryVerb([&] { return nic_.WriteBatch(raw); },
                  ops.empty() ? MemNodeId{0} : ops[0].addr.node,
                  std::move(s));
  }
  return s;
}

Result<uint64_t> DsmClient::CompareAndSwap(GlobalAddress addr,
                                           uint64_t expected,
                                           uint64_t desired) {
  obs::OpScope scope("dsm.cas", "dsm", obs_.atomic_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(addr.node));
  if (obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kAtomic,
                                              addr.Pack());
  }
  Result<uint64_t> r = nic_.CompareAndSwap(ToRemote(addr), expected, desired);
  if (r.status().IsTimedOut()) {
    // Request-loss semantics: a lost CAS never executed, retry is safe.
    Status s = RetryVerb(
        [&] {
          r = nic_.CompareAndSwap(ToRemote(addr), expected, desired);
          return r.status();
        },
        addr.node, r.status());
    if (!s.ok()) return s;
  }
  return r;
}

Result<uint64_t> DsmClient::FetchAndAdd(GlobalAddress addr, uint64_t delta) {
  obs::OpScope scope("dsm.faa", "dsm", obs_.atomic_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(addr.node));
  if (obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kAtomic,
                                              addr.Pack());
  }
  Result<uint64_t> r = nic_.FetchAndAdd(ToRemote(addr), delta);
  if (r.status().IsTimedOut()) {
    // Request-loss semantics: a lost FAA never executed, retry is safe.
    Status s = RetryVerb(
        [&] {
          r = nic_.FetchAndAdd(ToRemote(addr), delta);
          return r.status();
        },
        addr.node, r.status());
    if (!s.ok()) return s;
  }
  return r;
}

Status DsmClient::WriteAll(const std::vector<GlobalAddress>& dsts,
                           const void* src, size_t length) {
  obs::OpScope scope("dsm.write_all", "dsm", obs_.write_ns);
  auto once = [&]() -> Status {
    for (const GlobalAddress& dst : dsts) {
      DSMDB_RETURN_NOT_OK(CheckIncarnation(dst.node));
    }
    rdma::CompletionQueue cq(&cluster_->fabric(), self());
    for (const GlobalAddress& dst : dsts) {
      cq.PostWrite(ToRemote(dst), src, length);
    }
    return cq.WaitAll();
  };
  Status s = once();
  if (s.IsTimedOut() && !dsts.empty()) {
    // Lost-ack semantics: re-sending every replica write is idempotent
    // (`once` re-fences, so a flap during backoff still fails fast).
    s = RetryVerb(once, dsts[0].node, std::move(s));
  }
  return s;
}

Status DsmClient::ReadAny(const std::vector<GlobalAddress>& replicas,
                          void* dst, size_t length) {
  if (replicas.empty()) return Status::InvalidArgument("no replicas");
  Status last;
  for (size_t i = 0; i < replicas.size(); i++) {
    Status s = Read(replicas[i], dst, length);
    if (s.ok()) {
      if (i > 0) failovers_->Add(1);
      return s;
    }
    if (!s.IsUnavailable() && !s.IsTimedOut() && !s.IsStaleIncarnation()) {
      return s;  // non-transient (bad address etc.): surface immediately
    }
    last = std::move(s);
  }
  return last;
}

Status DsmClient::Offload(MemNodeId node, uint32_t fn_id,
                          std::string_view arg, std::string* out) {
  obs::OpScope scope("dsm.offload", "dsm", obs_.offload_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(node));
  ReqScratch scratch;
  std::string& req = *scratch.get();
  req.reserve(4 + arg.size());
  PutFixed32(&req, fn_id);
  req.append(arg.data(), arg.size());
  std::string resp;
  DSMDB_RETURN_NOT_OK(
      nic_.Call(cluster_->MemFabricId(node), kSvcOffload, req, &resp));
  if (resp.empty() || resp[0] != 1) {
    return Status::NotFound("offload function not registered");
  }
  out->assign(resp, 1, resp.size() - 1);
  return Status::OK();
}

Status DsmClient::DirectoryCall(uint8_t op, GlobalAddress page,
                                uint32_t cache_id, std::string* resp) {
  obs::OpScope scope("dsm.directory", "dsm", obs_.directory_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(page.node));
  ReqScratch scratch;
  std::string& req = *scratch.get();
  req.push_back(static_cast<char>(op));
  PutFixed64(&req, page.Pack());
  PutFixed32(&req, cache_id);
  return nic_.Call(cluster_->MemFabricId(page.node), kSvcDirectory, req,
                   resp);
}

Status DsmClient::DirRegisterSharer(GlobalAddress page, uint32_t cache_id) {
  std::string resp;
  return DirectoryCall(1, page, cache_id, &resp);
}

Status DsmClient::DirUnregisterSharer(GlobalAddress page,
                                      uint32_t cache_id) {
  std::string resp;
  return DirectoryCall(2, page, cache_id, &resp);
}

Result<std::vector<uint32_t>> DsmClient::ParseSharerList(
    const std::string& resp) {
  if (resp.size() < 4) return Status::Internal("bad directory response");
  const uint32_t count = DecodeFixed32(resp.data());
  if (resp.size() != 4 + 4ULL * count) {
    return Status::Internal("bad directory response length");
  }
  std::vector<uint32_t> others;
  others.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    others.push_back(DecodeFixed32(resp.data() + 4 + 4ULL * i));
  }
  return others;
}

Result<std::vector<uint32_t>> DsmClient::DirAcquireExclusive(
    GlobalAddress page, uint32_t cache_id) {
  std::string resp;
  DSMDB_RETURN_NOT_OK(DirectoryCall(3, page, cache_id, &resp));
  return ParseSharerList(resp);
}

Result<std::vector<uint32_t>> DsmClient::DirPeersForUpdate(
    GlobalAddress page, uint32_t cache_id) {
  std::string resp;
  DSMDB_RETURN_NOT_OK(DirectoryCall(4, page, cache_id, &resp));
  return ParseSharerList(resp);
}

Status DsmClient::LogAppend(MemNodeId node, uint64_t segment,
                            std::string_view data) {
  obs::OpScope scope("dsm.log_append", "dsm", obs_.log_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(node));
  std::string req;
  PutFixed64(&req, segment);
  req.append(data.data(), data.size());
  std::string resp;
  DSMDB_RETURN_NOT_OK(
      nic_.Call(cluster_->MemFabricId(node), kSvcLogAppend, req, &resp));
  if (resp.size() != 1 || resp[0] != 1) {
    return Status::IOError("replica log append failed");
  }
  return Status::OK();
}

Result<std::string> DsmClient::LogRead(MemNodeId node, uint64_t segment) {
  obs::OpScope scope("dsm.log_read", "dsm", obs_.log_ns);
  DSMDB_RETURN_NOT_OK(CheckIncarnation(node));
  std::string req;
  PutFixed64(&req, segment);
  std::string resp;
  DSMDB_RETURN_NOT_OK(
      nic_.Call(cluster_->MemFabricId(node), kSvcLogRead, req, &resp));
  if (resp.empty() || resp[0] != 1) {
    return Status::NotFound("replica log segment missing");
  }
  return resp.substr(1);
}

}  // namespace dsmdb::dsm
