#include "dsm/directory.h"

#include <cassert>

namespace dsmdb::dsm {

namespace {
std::vector<uint32_t> BitmapToIds(uint64_t bitmap) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < 64; i++) {
    if ((bitmap >> i) & 1) out.push_back(i);
  }
  return out;
}
}  // namespace

void Directory::RegisterSharer(uint64_t page_id, uint32_t sharer) {
  assert(sharer < 64);
  std::lock_guard<std::mutex> lk(mu_);
  sharers_[page_id] |= (1ULL << sharer);
}

void Directory::UnregisterSharer(uint64_t page_id, uint32_t sharer) {
  assert(sharer < 64);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sharers_.find(page_id);
  if (it == sharers_.end()) return;
  it->second &= ~(1ULL << sharer);
  if (it->second == 0) sharers_.erase(it);
}

std::vector<uint32_t> Directory::AcquireExclusive(uint64_t page_id,
                                                  uint32_t writer) {
  assert(writer < 64);
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t& bitmap = sharers_[page_id];
  const uint64_t others = bitmap & ~(1ULL << writer);
  bitmap = 1ULL << writer;
  return BitmapToIds(others);
}

std::vector<uint32_t> Directory::PeersForUpdate(uint64_t page_id,
                                                uint32_t requester) {
  assert(requester < 64);
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t& bitmap = sharers_[page_id];
  const uint64_t others = bitmap & ~(1ULL << requester);
  bitmap |= 1ULL << requester;
  return BitmapToIds(others);
}

std::vector<uint32_t> Directory::Sharers(uint64_t page_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sharers_.find(page_id);
  return it == sharers_.end() ? std::vector<uint32_t>{}
                              : BitmapToIds(it->second);
}

size_t Directory::NumTrackedPages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sharers_.size();
}

}  // namespace dsmdb::dsm
