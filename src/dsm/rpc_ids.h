#ifndef DSMDB_DSM_RPC_IDS_H_
#define DSMDB_DSM_RPC_IDS_H_

#include <cstdint>

namespace dsmdb::dsm {

/// Well-known two-sided RPC service ids on the simulated fabric.
enum RpcService : uint32_t {
  /// Memory-node services.
  kSvcAlloc = 0,        ///< DSM memory allocation.
  kSvcFree = 1,         ///< DSM memory deallocation.
  kSvcOffload = 2,      ///< Near-data function invocation.
  kSvcDirectory = 3,    ///< Cache-coherence directory ops.
  kSvcLogAppend = 4,    ///< RAMCloud-style replicated log append.
  kSvcLogRead = 5,      ///< Read back a replica log (recovery).

  /// Compute-node services.
  kSvcInvalidate = 16,  ///< Coherence: drop/refresh a cached page.
  kSvcShardMap = 17,    ///< Sharding: ownership handoff notifications.
};

/// Simulated CPU costs (ns) of control-plane handlers on memory nodes.
/// These model the "simple control software" the paper places there.
inline constexpr uint64_t kAllocHandlerCostNs = 350;
inline constexpr uint64_t kFreeHandlerCostNs = 250;
inline constexpr uint64_t kDirectoryHandlerCostNs = 200;
inline constexpr uint64_t kLogAppendBaseCostNs = 300;

}  // namespace dsmdb::dsm

#endif  // DSMDB_DSM_RPC_IDS_H_
