#include "dsm/cluster.h"

#include <cassert>

namespace dsmdb::dsm {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options), fabric_(options.network) {
  memory_nodes_.resize(options_.num_memory_nodes);
  mem_fabric_ids_.resize(options_.num_memory_nodes);
  for (uint32_t i = 0; i < options_.num_memory_nodes; i++) {
    const rdma::NodeId fid =
        fabric_.AddNode("mem" + std::to_string(i),
                        options_.memory_node.cpu_cores,
                        options_.memory_node.cpu_speed_factor);
    mem_fabric_ids_[i] = fid;
    memory_nodes_[i] = std::make_unique<MemoryNode>(
        &fabric_, fid, static_cast<MemNodeId>(i), options_.memory_node);
  }
}

Cluster::~Cluster() = default;

MemoryNode* Cluster::memory_node(MemNodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(id < memory_nodes_.size());
  return memory_nodes_[id].get();
}

rdma::NodeId Cluster::MemFabricId(MemNodeId id) const {
  assert(id < mem_fabric_ids_.size());
  return mem_fabric_ids_[id];
}

uint32_t Cluster::MemRkey(MemNodeId id) const {
  (void)id;
  return 0;  // The giant region is always the node's first registration.
}

rdma::NodeId Cluster::AddComputeNode(const std::string& name,
                                     uint32_t cores) {
  return fabric_.AddNode(name, cores, /*cpu_speed_factor=*/1.0);
}

void Cluster::CrashMemoryNode(MemNodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(id < memory_nodes_.size());
  fabric_.CrashNode(mem_fabric_ids_[id]);
  // Park the dead node instead of freeing it: under live traffic an RPC
  // handler that passed the aliveness check may still be running against
  // this object on another thread (that op linearizes before the crash).
  // The fabric has dropped its regions, so no *new* op can reach it; its
  // DRAM contents are semantically gone.
  if (memory_nodes_[id] != nullptr) {
    graveyard_.push_back(std::move(memory_nodes_[id]));
  }
}

void Cluster::RecoverMemoryNode(MemNodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  assert(id < memory_nodes_.size());
  assert(memory_nodes_[id] == nullptr && "recovering a live node");
  fabric_.RecoverNode(mem_fabric_ids_[id]);
  memory_nodes_[id] = std::make_unique<MemoryNode>(
      &fabric_, mem_fabric_ids_[id], id, options_.memory_node);
}

bool Cluster::IsMemoryNodeAlive(MemNodeId id) const {
  return fabric_.IsAlive(mem_fabric_ids_[id]);
}

}  // namespace dsmdb::dsm
