#ifndef DSMDB_DSM_ALLOCATOR_H_
#define DSMDB_DSM_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dsmdb::dsm {

/// Statistics shared by the DSM allocators (Challenge #1 / bench E12).
struct AllocatorStats {
  uint64_t allocated_bytes = 0;   ///< Bytes handed out and not yet freed.
  uint64_t reserved_bytes = 0;    ///< Bytes carved out of the region.
  uint64_t capacity_bytes = 0;
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
  uint64_t failed_allocs = 0;
  /// External fragmentation: 1 - largest_free_extent / total_free.
  double external_fragmentation = 0.0;
};

/// First-fit extent allocator over one giant contiguous region, managed
/// entirely in user space as the paper suggests (citing CoRM [57]):
/// "DSM-DB can allocate a giant continuous memory space and keep track of
/// memory usage in user space."
///
/// Free extents are kept in an offset-ordered map and coalesced on free.
/// Thread-safe. Offset 0 is reserved (never handed out) so that a zero
/// offset can serve as a null address.
class ExtentAllocator {
 public:
  /// Manages offsets [reserve_prefix, capacity). `reserve_prefix` must be
  /// at least 8 so offset 0 stays invalid.
  explicit ExtentAllocator(uint64_t capacity, uint64_t reserve_prefix = 64);

  ExtentAllocator(const ExtentAllocator&) = delete;
  ExtentAllocator& operator=(const ExtentAllocator&) = delete;

  /// Allocates `size` bytes, 8-byte aligned. Returns the offset.
  Result<uint64_t> Alloc(uint64_t size);

  /// Frees a previously allocated extent. The size must match the
  /// allocation (sizes are also tracked internally and validated).
  Status Free(uint64_t offset);

  AllocatorStats GetStats() const;
  uint64_t capacity() const { return capacity_; }

 private:
  static uint64_t AlignUp(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

  mutable std::mutex mu_;
  uint64_t capacity_;
  std::map<uint64_t, uint64_t> free_by_offset_;  // offset -> size
  std::map<uint64_t, uint64_t> live_;            // offset -> size
  AllocatorStats stats_;
};

/// Slab allocator layered on ExtentAllocator for small objects: size
/// classes carve 64 KiB chunks into fixed slots, eliminating external
/// fragmentation for the record-sized allocations an OLTP database makes.
/// Falls through to the extent allocator for large sizes. Thread-safe.
class SlabAllocator {
 public:
  explicit SlabAllocator(ExtentAllocator* extents);

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  Result<uint64_t> Alloc(uint64_t size);
  Status Free(uint64_t offset, uint64_t size);

  AllocatorStats GetStats() const;

  /// Size classes: 64, 128, 256, ..., 4096 bytes.
  static constexpr uint64_t kMinClass = 64;
  static constexpr uint64_t kMaxClass = 4096;
  static constexpr uint64_t kChunkBytes = 64 * 1024;

 private:
  static int ClassIndex(uint64_t size);
  static uint64_t ClassSize(int idx) { return kMinClass << idx; }
  static constexpr int kNumClasses = 7;  // 64 << 6 == 4096

  struct SizeClass {
    std::vector<uint64_t> free_slots;
  };

  ExtentAllocator* extents_;
  mutable std::mutex mu_;
  SizeClass classes_[kNumClasses];
  uint64_t slab_allocated_ = 0;
  uint64_t slab_alloc_calls_ = 0;
  uint64_t slab_free_calls_ = 0;
};

}  // namespace dsmdb::dsm

#endif  // DSMDB_DSM_ALLOCATOR_H_
