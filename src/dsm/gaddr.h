#ifndef DSMDB_DSM_GADDR_H_
#define DSMDB_DSM_GADDR_H_

#include <cstdint>
#include <functional>
#include <string>

namespace dsmdb::dsm {

/// Logical memory-node id within the DSM layer. Distinct from the fabric's
/// NodeId: the cluster map binds a logical id to whatever fabric node (and
/// incarnation) currently serves it, so addresses survive node replacement
/// (Challenge #1: "the memory address must be a logical address, e.g.,
/// virtual node ID and offset").
using MemNodeId = uint16_t;

/// A logical DSM address: (virtual memory-node id, offset within that
/// node's giant registered region). 8-byte POD so it can itself be stored
/// in DSM and CAS'd.
struct GlobalAddress {
  MemNodeId node = 0;
  uint64_t offset = 0;

  constexpr bool IsNull() const { return node == 0 && offset == 0; }

  GlobalAddress Plus(uint64_t delta) const {
    return GlobalAddress{node, offset + delta};
  }

  bool operator==(const GlobalAddress&) const = default;

  std::string ToString() const {
    return "g[" + std::to_string(node) + ":" + std::to_string(offset) + "]";
  }

  /// Packs into one uint64 (node in top 16 bits). Offsets are < 2^48.
  uint64_t Pack() const { return (static_cast<uint64_t>(node) << 48) | offset; }
  static GlobalAddress Unpack(uint64_t v) {
    return GlobalAddress{static_cast<MemNodeId>(v >> 48),
                         v & ((1ULL << 48) - 1)};
  }
};

/// Null address. Offset 0 of node 0 is reserved by every allocator so that
/// kNullGlobalAddress is never a valid allocation.
inline constexpr GlobalAddress kNullGlobalAddress{};

struct GlobalAddressHash {
  size_t operator()(const GlobalAddress& a) const {
    return std::hash<uint64_t>()(a.Pack());
  }
};

}  // namespace dsmdb::dsm

#endif  // DSMDB_DSM_GADDR_H_
