#ifndef DSMDB_DSM_DIRECTORY_H_
#define DSMDB_DSM_DIRECTORY_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dsmdb::dsm {

/// Cache-coherence directory hosted on each memory node (Challenge #4,
/// Approach #2: "a software-level cache coherence protocol is needed").
///
/// Tracks, per page, the set of compute nodes caching it (bitmap, up to 64
/// compute nodes). A writer acquires exclusive ownership and learns which
/// sharers must be invalidated/updated; the writer performs those
/// notifications itself over the fabric.
class Directory {
 public:
  /// Adds `sharer` to the page's sharer set.
  void RegisterSharer(uint64_t page_id, uint32_t sharer);

  /// Removes `sharer` (e.g. on cache eviction).
  void UnregisterSharer(uint64_t page_id, uint32_t sharer);

  /// Transfers the page to exclusive ownership of `writer`: returns the ids
  /// of all *other* current sharers (to be invalidated or updated by the
  /// caller) and resets the sharer set to {writer}.
  std::vector<uint32_t> AcquireExclusive(uint64_t page_id, uint32_t writer);

  /// Sharers of the page other than `requester`, leaving the sharer set
  /// untouched (update-based coherence: peers keep their copies, so they
  /// stay registered). Also registers `requester`.
  std::vector<uint32_t> PeersForUpdate(uint64_t page_id,
                                       uint32_t requester);

  /// Current sharers of a page (diagnostics / tests).
  std::vector<uint32_t> Sharers(uint64_t page_id) const;

  size_t NumTrackedPages() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> sharers_;  // page -> bitmap
};

}  // namespace dsmdb::dsm

#endif  // DSMDB_DSM_DIRECTORY_H_
