#ifndef DSMDB_DSM_MEMORY_NODE_H_
#define DSMDB_DSM_MEMORY_NODE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/spin_latch.h"
#include "common/status.h"
#include "dsm/allocator.h"
#include "dsm/directory.h"
#include "dsm/gaddr.h"
#include "rdma/fabric.h"

namespace dsmdb::dsm {

class MemoryNode;

/// A near-data function executed on a memory node (Function Offloading
/// APIs, Challenge #1). Performs its real work against the node's memory
/// and returns the simulated CPU cost (ns, unscaled; the node's wimpy-core
/// speed factor is applied by the VirtualCpu).
using OffloadFn = std::function<uint64_t(MemoryNode& node,
                                         std::string_view arg,
                                         std::string* out)>;

/// One memory node of the DSM layer: a giant registered memory region, a
/// user-space allocator, a coherence directory, an offload function table,
/// and a replica-log store (for RAMCloud-style durability).
///
/// Control-plane operations (alloc/free/offload/directory/log-append) are
/// served over two-sided RPC; the data plane is one-sided RDMA directly
/// against the registered region.
class MemoryNode {
 public:
  struct Options {
    uint64_t capacity_bytes = 64ULL << 20;
    /// Abundant memory, weak compute (paper Sec. 1): few wimpy cores.
    uint32_t cpu_cores = 2;
    double cpu_speed_factor = 4.0;
  };

  /// Creates the node's state and installs its RPC handlers on an existing
  /// fabric node (`fabric_id`). Called at cluster start and again after
  /// recovery (fresh, empty state — DRAM contents do not survive a crash).
  MemoryNode(rdma::Fabric* fabric, rdma::NodeId fabric_id,
             MemNodeId logical_id, const Options& options);
  ~MemoryNode();

  MemoryNode(const MemoryNode&) = delete;
  MemoryNode& operator=(const MemoryNode&) = delete;

  rdma::NodeId fabric_id() const { return fabric_id_; }
  MemNodeId logical_id() const { return logical_id_; }
  uint32_t rkey() const { return rkey_; }
  uint64_t capacity() const { return options_.capacity_bytes; }
  const Options& options() const { return options_; }

  /// Host pointer to the region base. Memory-node-local code (offload
  /// functions, checkpointer) uses this; compute nodes must go through the
  /// fabric.
  char* base() { return region_.data(); }
  const char* base() const { return region_.data(); }

  SlabAllocator& allocator() { return *slab_; }
  ExtentAllocator& extents() { return *extents_; }
  Directory& directory() { return directory_; }

  /// Registers `fn` under `fn_id` for kSvcOffload dispatch.
  void RegisterOffload(uint32_t fn_id, OffloadFn fn);

  /// Replica-log segments stored on this node (RAMCloud-style durability).
  /// Exposed for recovery managers.
  std::map<uint64_t, std::string> CopyLogSegments() const;
  size_t LogBytes() const;

 private:
  void InstallHandlers();

  uint64_t HandleAlloc(std::string_view req, std::string* resp);
  uint64_t HandleFree(std::string_view req, std::string* resp);
  uint64_t HandleOffload(std::string_view req, std::string* resp);
  uint64_t HandleDirectory(std::string_view req, std::string* resp);
  uint64_t HandleLogAppend(std::string_view req, std::string* resp);
  uint64_t HandleLogRead(std::string_view req, std::string* resp);

  rdma::Fabric* fabric_;
  rdma::NodeId fabric_id_;
  MemNodeId logical_id_;
  Options options_;

  std::vector<char> region_;
  uint32_t rkey_ = 0;
  std::unique_ptr<ExtentAllocator> extents_;
  std::unique_ptr<SlabAllocator> slab_;
  Directory directory_;

  SpinLatch offload_latch_;
  std::vector<OffloadFn> offload_fns_;

  mutable std::mutex log_mu_;
  std::map<uint64_t, std::string> log_segments_;
  size_t log_bytes_ = 0;
};

}  // namespace dsmdb::dsm

#endif  // DSMDB_DSM_MEMORY_NODE_H_
