#include "dsm/memory_node.h"

#include <cassert>

#include "common/coding.h"
#include "dsm/rpc_ids.h"

namespace dsmdb::dsm {

MemoryNode::MemoryNode(rdma::Fabric* fabric, rdma::NodeId fabric_id,
                       MemNodeId logical_id, const Options& options)
    : fabric_(fabric),
      fabric_id_(fabric_id),
      logical_id_(logical_id),
      options_(options),
      region_(options.capacity_bytes, 0) {
  extents_ = std::make_unique<ExtentAllocator>(options.capacity_bytes);
  slab_ = std::make_unique<SlabAllocator>(extents_.get());
  Result<uint32_t> rkey =
      fabric_->RegisterMemory(fabric_id_, region_.data(), region_.size());
  assert(rkey.ok());
  rkey_ = *rkey;
  InstallHandlers();
}

MemoryNode::~MemoryNode() = default;

void MemoryNode::InstallHandlers() {
  fabric_->RegisterRpcHandler(
      fabric_id_, kSvcAlloc,
      [this](std::string_view req, std::string* resp) {
        return HandleAlloc(req, resp);
      });
  fabric_->RegisterRpcHandler(
      fabric_id_, kSvcFree,
      [this](std::string_view req, std::string* resp) {
        return HandleFree(req, resp);
      });
  fabric_->RegisterRpcHandler(
      fabric_id_, kSvcOffload,
      [this](std::string_view req, std::string* resp) {
        return HandleOffload(req, resp);
      });
  fabric_->RegisterRpcHandler(
      fabric_id_, kSvcDirectory,
      [this](std::string_view req, std::string* resp) {
        return HandleDirectory(req, resp);
      });
  fabric_->RegisterRpcHandler(
      fabric_id_, kSvcLogAppend,
      [this](std::string_view req, std::string* resp) {
        return HandleLogAppend(req, resp);
      });
  fabric_->RegisterRpcHandler(
      fabric_id_, kSvcLogRead,
      [this](std::string_view req, std::string* resp) {
        return HandleLogRead(req, resp);
      });
}

void MemoryNode::RegisterOffload(uint32_t fn_id, OffloadFn fn) {
  SpinLatchGuard g(offload_latch_);
  if (offload_fns_.size() <= fn_id) offload_fns_.resize(fn_id + 1);
  offload_fns_[fn_id] = std::move(fn);
}

// Wire format: req = fixed64 size; resp = byte ok + fixed64 offset.
uint64_t MemoryNode::HandleAlloc(std::string_view req, std::string* resp) {
  if (req.size() != 8) {
    resp->push_back(0);
    return kAllocHandlerCostNs;
  }
  const uint64_t size = DecodeFixed64(req.data());
  Result<uint64_t> offset = slab_->Alloc(size);
  if (!offset.ok()) {
    resp->push_back(0);
  } else {
    resp->push_back(1);
    PutFixed64(resp, *offset);
  }
  return kAllocHandlerCostNs;
}

// Wire format: req = fixed64 offset + fixed64 size; resp = byte ok.
uint64_t MemoryNode::HandleFree(std::string_view req, std::string* resp) {
  if (req.size() != 16) {
    resp->push_back(0);
    return kFreeHandlerCostNs;
  }
  const uint64_t offset = DecodeFixed64(req.data());
  const uint64_t size = DecodeFixed64(req.data() + 8);
  const Status s = slab_->Free(offset, size);
  resp->push_back(s.ok() ? 1 : 0);
  return kFreeHandlerCostNs;
}

// Wire format: req = fixed32 fn_id + arg; resp = byte ok + fn output.
uint64_t MemoryNode::HandleOffload(std::string_view req, std::string* resp) {
  if (req.size() < 4) {
    resp->push_back(0);
    return kDirectoryHandlerCostNs;
  }
  const uint32_t fn_id = DecodeFixed32(req.data());
  OffloadFn fn;
  {
    SpinLatchGuard g(offload_latch_);
    if (fn_id < offload_fns_.size()) fn = offload_fns_[fn_id];
  }
  if (!fn) {
    resp->push_back(0);
    return kDirectoryHandlerCostNs;
  }
  resp->push_back(1);
  std::string out;
  const uint64_t cost = fn(*this, req.substr(4), &out);
  resp->append(out);
  return cost;
}

// Wire format: req = byte op + fixed64 page + fixed32 node.
// Ops: 1 RegisterSharer, 2 UnregisterSharer, 3 AcquireExclusive,
// 4 PeersForUpdate. resp for ops 3/4: fixed32 count + count * fixed32
// sharer ids; else empty.
uint64_t MemoryNode::HandleDirectory(std::string_view req,
                                     std::string* resp) {
  if (req.size() != 13) return kDirectoryHandlerCostNs;
  const uint8_t op = static_cast<uint8_t>(req[0]);
  const uint64_t page = DecodeFixed64(req.data() + 1);
  const uint32_t node = DecodeFixed32(req.data() + 9);
  switch (op) {
    case 1:
      directory_.RegisterSharer(page, node);
      break;
    case 2:
      directory_.UnregisterSharer(page, node);
      break;
    case 3: {
      const std::vector<uint32_t> others =
          directory_.AcquireExclusive(page, node);
      PutFixed32(resp, static_cast<uint32_t>(others.size()));
      for (uint32_t id : others) PutFixed32(resp, id);
      break;
    }
    case 4: {
      const std::vector<uint32_t> others =
          directory_.PeersForUpdate(page, node);
      PutFixed32(resp, static_cast<uint32_t>(others.size()));
      for (uint32_t id : others) PutFixed32(resp, id);
      break;
    }
    default:
      break;
  }
  return kDirectoryHandlerCostNs;
}

// Wire format: req = fixed64 segment_id + payload (appended); resp = byte ok.
uint64_t MemoryNode::HandleLogAppend(std::string_view req,
                                     std::string* resp) {
  if (req.size() < 8) {
    resp->push_back(0);
    return kLogAppendBaseCostNs;
  }
  const uint64_t segment = DecodeFixed64(req.data());
  const std::string_view payload = req.substr(8);
  {
    std::lock_guard<std::mutex> lk(log_mu_);
    log_segments_[segment].append(payload.data(), payload.size());
    log_bytes_ += payload.size();
  }
  resp->push_back(1);
  // Cost: base dispatch + a memcpy-rate copy of the payload.
  return kLogAppendBaseCostNs + payload.size() / 32;
}

// Wire format: req = fixed64 segment_id; resp = byte ok + segment bytes.
uint64_t MemoryNode::HandleLogRead(std::string_view req, std::string* resp) {
  if (req.size() != 8) {
    resp->push_back(0);
    return kLogAppendBaseCostNs;
  }
  const uint64_t segment = DecodeFixed64(req.data());
  std::lock_guard<std::mutex> lk(log_mu_);
  auto it = log_segments_.find(segment);
  if (it == log_segments_.end()) {
    resp->push_back(0);
    return kLogAppendBaseCostNs;
  }
  resp->push_back(1);
  resp->append(it->second);
  return kLogAppendBaseCostNs + it->second.size() / 32;
}

std::map<uint64_t, std::string> MemoryNode::CopyLogSegments() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return log_segments_;
}

size_t MemoryNode::LogBytes() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return log_bytes_;
}

}  // namespace dsmdb::dsm
