#ifndef DSMDB_RT_PCT_POLICY_H_
#define DSMDB_RT_PCT_POLICY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rt/scheduler.h"

namespace dsmdb::rt {

/// Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS'10) over
/// the cooperative scheduler's park/resume boundaries. Each task gets a
/// random priority at spawn; every handoff runs the highest-priority
/// runnable task; at `d` change points (steps drawn uniformly from
/// [1, steps_estimate]) the last-run task is demoted below every priority
/// assigned so far. With d-1 change points PCT finds any bug of preemption
/// depth d with probability >= 1/(n * k^(d-1)) per schedule — so a few
/// hundred seeded schedules cover the shallow-interleaving space the
/// protocols' races live in far better than timing-driven fuzz.
///
/// Fully deterministic for a given (seed, spawn order, candidate
/// sequence): the same seed replays the same schedule, which is what lets
/// check_explore report "anomaly at schedule #137, seed 2" reproducibly.
class PctPolicy final : public SchedulePolicy {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Number of priority-change points (the PCT "depth" d). 0 disables
    /// demotion: pure random static priorities.
    uint32_t change_points = 3;
    /// Estimated scheduling steps per run (the PCT "k"); change points are
    /// drawn uniformly from [1, steps_estimate].
    uint64_t steps_estimate = 2000;
  };

  explicit PctPolicy(Options opts);

  size_t Pick(const Candidate* candidates, size_t n) override;
  void OnTaskSpawned(uint64_t task_id) override;

  /// Scheduling steps taken so far (one per Pick with >= 2 candidates);
  /// feed back into steps_estimate for the next sweep.
  uint64_t steps() const { return step_; }

 private:
  uint64_t NextRand();
  uint64_t PriorityOf(uint64_t task_id);

  const Options opts_;
  uint64_t rng_;
  std::unordered_map<uint64_t, uint64_t> prio_;
  std::vector<uint64_t> change_steps_;  ///< Sorted ascending.
  size_t next_change_ = 0;
  uint64_t step_ = 0;
  /// Demotion watermark: strictly below every random priority and itself
  /// strictly decreasing, so later demotions rank below earlier ones.
  uint64_t demote_water_;
  uint64_t last_task_ = UINT64_MAX;
};

}  // namespace dsmdb::rt

#endif  // DSMDB_RT_PCT_POLICY_H_
