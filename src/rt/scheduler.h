#ifndef DSMDB_RT_SCHEDULER_H_
#define DSMDB_RT_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <semaphore>
#include <vector>

#include "common/metrics.h"
#include "obs/flight_recorder.h"
#include "rt/task.h"

namespace dsmdb {
class ConcurrentHistogram;
}

namespace dsmdb::rt {

/// Schedule-exploration seam (DESIGN.md §12). The scheduler's runnable set
/// — the (wake_ns, seq) min-heap — defines the interleaving; a policy may
/// override which runnable task gets the core at each handoff. Every
/// choice still yields a *legal* schedule: the core clock stays monotone
/// (picking a later-wake task fast-forwards it; earlier tasks resume with
/// the excess booked as cpu.queue lag), and the spin-yield carousel rule
/// is unaffected because yielded tasks are not in the heap.
///
/// With no policy installed (the default) the scheduler behaves exactly as
/// before: earliest wake first, FIFO among equals.
class SchedulePolicy {
 public:
  struct Candidate {
    uint64_t task_id = 0;
    uint64_t wake_ns = 0;
    uint64_t seq = 0;
    bool from_yield = false;
  };
  virtual ~SchedulePolicy() = default;
  /// Returns the index (< n) of the candidate to run next. n >= 1.
  virtual size_t Pick(const Candidate* candidates, size_t n) = 0;
  /// Called once per task, before its first Pick appearance.
  virtual void OnTaskSpawned(uint64_t task_id) { (void)task_id; }
};

/// Cooperative multiplexer: one worker (OS) thread drives N transaction
/// tasks over one simulated core. Exactly one task runs at a time (strict
/// baton, handed off via each task's semaphore); tasks suspend at
/// simulated-wait boundaries (rt::SimWait — verb completions, lock
/// backoff) and at latch spins (CoopYield → YieldSpin), and the scheduler
/// resumes the task with the earliest simulated wake time.
///
/// Time model. The scheduler keeps a monotone per-core clock `core_now_`:
/// CPU work serializes on it (a resumed task first advances to
/// `core_now_`, so two tasks' compute never overlaps on the simulated
/// core), while wire waits overlap (a parked task's RTT elapses while
/// siblings compute) — which is precisely the latency hiding the paper
/// asks of a compute node. With a single task the model degenerates to
/// the plain blocking timeline: park → immediate self-resume at the same
/// clock values, so depth=1 results are bit-identical to pre-scheduler
/// runs.
///
/// Observability: a resumed task that waited on the core beyond its wake
/// time books the excess into the `sched.resume_lag_ns` histogram and —
/// when tracing — a `cpu.queue` span, so PR-4 critical paths attribute it
/// as queue_wait rather than wire time. `sched.*` gauges (live / parked /
/// runnable per worker, depth high-water) are sampled by the
/// FlightRecorder on the usual simulated-time intervals.
class Scheduler {
 public:
  struct Options {
    /// Cap on concurrently live tasks (including the spawner); Spawn
    /// blocks (cooperatively) while at the cap. 0 = unbounded.
    uint32_t max_tasks = 0;
  };

  Scheduler();  ///< Default options (unbounded depth).
  explicit Scheduler(Options opts);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs `root` as the first task and blocks until every task (root plus
  /// everything Spawned transitively) has finished, then rethrows the
  /// first task failure, if any. Single-use. The caller's simulated clock
  /// seeds the core clock; call SimClock::AdvanceTo(FinalSimNs()) after
  /// Run to account the multiplexed work on the calling thread.
  void Run(std::function<void()> root);

  /// Starts a new task, cooperatively blocking first if `max_tasks` live
  /// tasks already exist. Must be called from inside a task.
  void Spawn(std::function<void()> fn);

  /// Scheduler driving the calling thread's task, or nullptr on a plain
  /// thread (including the thread that called Run()).
  static Scheduler* Current();

  /// The calling thread's task, or nullptr on a plain thread.
  static Task* CurrentTask();

  /// Final simulated time of the multiplexed core — max over every
  /// task's completion. Valid after Run() returns.
  uint64_t FinalSimNs() const { return final_sim_ns_; }

  /// Installs a schedule-exploration policy (nullptr restores default
  /// order). Must be set before Run(); the policy must outlive the
  /// scheduler and is not owned.
  void SetPolicy(SchedulePolicy* policy) { policy_ = policy; }

  /// Counters for tests and benches (valid while running and after Run).
  struct Stats {
    uint64_t tasks_spawned = 0;
    uint64_t parks = 0;        ///< SimWait suspensions.
    uint64_t spin_yields = 0;  ///< Latch-spin yields.
    uint64_t depth_hwm = 0;    ///< Max concurrently live tasks.
  };
  Stats GetStats() const;

 private:
  friend void SimWait(uint64_t wake_ns);
  friend void CoopYieldTrampoline();

  /// Suspends the calling task until the core clock reaches `wake_ns`;
  /// other runnable tasks execute in between. On resume the task's clock
  /// is `max(wake_ns, core progress made meanwhile)`.
  void ParkUntil(uint64_t wake_ns);

  /// Clock-neutral suspension for latch spin loops: lets every other
  /// runnable task (in particular a latch holder parked mid-IO on this
  /// same worker) run before the spinner retries. Safe inside SimNoPark
  /// regions because it never moves the simulated clock.
  void YieldSpin();

  /// Hands the baton to the next runnable task (or signals completion).
  /// Caller must hold the baton and must not touch scheduler state after
  /// this returns.
  void ScheduleNext();

  void TaskMain(Task* t);
  Task* NewTask(std::function<void()> fn, uint64_t wake_ns);
  static bool HeapAfter(const Task* a, const Task* b);
  void HeapPush(Task* t);
  Task* HeapPop();
  Task* PolicyPop();
  void RequeueYielded();
  void RegisterGauges();

  const Options opts_;
  const uint64_t id_;  ///< Process-unique worker id (gauge label).

  // --- Baton-protected state: touched only by the current baton holder
  // (the owner thread before the first handoff, exactly one task thread
  // after). Handoffs are semaphore release/acquire pairs, which give the
  // happens-before edges host TSan needs.
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> heap_;     ///< Min-heap by (wake_ns_, seq_).
  std::vector<Task*> yielded_;  ///< Spin-yielded; eligible after next pop.
  std::vector<Task*> bp_waiters_;  ///< Blocked in Spawn backpressure.
  uint64_t core_now_ = 0;          ///< Monotone simulated core clock.
  uint64_t seq_gen_ = 0;
  SchedulePolicy* policy_ = nullptr;  ///< Not owned; null = default order.
  std::vector<SchedulePolicy::Candidate> cand_buf_;
  uint64_t final_sim_ns_ = 0;
  bool started_ = false;

  /// Released by the task that observes the last task finish.
  std::binary_semaphore done_{0};

  // --- Sampled concurrently by FlightRecorder/metrics gauges.
  std::atomic<uint64_t> live_{0};
  std::atomic<uint64_t> parked_{0};
  std::atomic<uint64_t> yielded_count_{0};
  std::atomic<uint64_t> bp_count_{0};
  std::atomic<uint64_t> depth_hwm_{0};
  std::atomic<uint64_t> spawned_{0};
  std::atomic<uint64_t> parks_{0};
  std::atomic<uint64_t> spin_yields_{0};

  ConcurrentHistogram* resume_lag_hist_ = nullptr;
  std::vector<obs::FlightRecorder::Token> fr_tokens_;
  std::vector<GaugeToken> metric_tokens_;
};

/// Parks the calling task until simulated time `wake_ns` when a scheduler
/// drives this thread (letting sibling tasks overlap the wait); otherwise
/// — plain thread, or inside a SimNoPark region — degrades to
/// SimClock::AdvanceTo(wake_ns), the exact pre-scheduler behavior.
void SimWait(uint64_t wake_ns);

/// Charges a simulated device cost split into a CPU part (always serial:
/// SimClock::Advance) and a wire part (overlappable: SimWait). On a plain
/// thread this is bit-identical to SimClock::Advance(cpu_ns + wire_ns).
void SimCharge(uint64_t cpu_ns, uint64_t wire_ns);

/// True when the calling thread is a scheduler task (suspension points
/// are live).
inline bool InTask() { return Scheduler::CurrentTask() != nullptr; }

}  // namespace dsmdb::rt

#endif  // DSMDB_RT_SCHEDULER_H_
