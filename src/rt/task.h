#ifndef DSMDB_RT_TASK_H_
#define DSMDB_RT_TASK_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <semaphore>
#include <thread>

namespace dsmdb::rt {

class Scheduler;

/// Number of task-local storage slots (see AllocTaskSlot below). A small
/// fixed table keeps the per-task footprint and the lookup cost trivial;
/// bump if a new subsystem needs a slot.
inline constexpr size_t kMaxTaskSlots = 8;

/// One resumable unit of work — typically one transaction stream — driven
/// by a Scheduler. A task is backed by a dedicated host thread under a
/// strict single-runner discipline: at most one task of a scheduler
/// executes at any instant, and control moves between tasks only at
/// explicit suspension points (rt::SimWait on a verb completion,
/// CoopYield in a latch spin, Spawn backpressure). That realization was
/// chosen over stack-switching fibers deliberately:
///
///  - every existing thread_local (the SimClock, obs::TraceCtx, the
///    checker's per-thread state, scratch buffers) is per-task *by
///    construction* — there is no save/restore list to keep in sync, and
///    a future thread_local cannot silently alias across tasks;
///  - TSan/ASan see ordinary threads with real happens-before edges (the
///    baton handoff is a semaphore release/acquire), so the sanitizer
///    suite needs no fiber annotations (GCC's sanitizers mis-handle
///    swapcontext-style stack switching);
///  - simulated-time metrics are unaffected: the handoff costs host time
///    only, and benchmarks report simulated time.
///
/// The scheduler interface (park / resume / yield) is backing-agnostic;
/// checker and trace identity key on the logical task, which here
/// coincides with its host thread.
class Task {
 public:
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// Scheduler-unique id, dense from 0 in spawn order.
  uint64_t id() const { return id_; }

 private:
  friend class Scheduler;
  friend void** TaskSlot(size_t key);

  Task(uint64_t id, std::function<void()> fn)
      : id_(id), fn_(std::move(fn)) {}

  enum class State : uint8_t {
    kReady,     ///< In the scheduler heap, waiting to be picked.
    kRunning,   ///< Holds the baton.
    kParked,    ///< In the heap with a future simulated wake time.
    kYielded,   ///< Spin-yielded (latch wait); runnable after others run.
    kFinished,
  };

  uint64_t id_;
  std::function<void()> fn_;
  std::thread thread_;
  /// Baton: released exactly when the scheduler hands this task the run
  /// right; the task blocks on it at every suspension point.
  std::binary_semaphore sem_{0};
  State state_ = State::kReady;
  uint64_t wake_ns_ = 0;  ///< Earliest simulated resume time.
  uint64_t seq_ = 0;      ///< FIFO tiebreak among equal wake times.
  /// True while this heap entry came from RequeueYielded. A spin-yielded
  /// task is requeued at core_now_, which can sit below every parked
  /// task's wake; if its own pop re-requeued its fellow spinners, two
  /// clock-neutral spinners would hand the core back and forth at a
  /// frozen core_now_ forever and starve the parked latch holder they
  /// spin on. Popping a requeued spinner therefore must NOT make the
  /// other yielded tasks eligible again — only a real (parked/ready)
  /// pop or an empty heap does.
  bool from_yield_ = false;
  std::exception_ptr error_;
  /// Task-local storage (see AllocTaskSlot). Slot deleters run on the
  /// task's own thread when it finishes, even after an exception.
  std::array<void*, kMaxTaskSlots> slots_{};
};

/// Allocates a process-wide task-local storage slot. `deleter` is invoked
/// with the slot's value when a task that populated it finishes (so a
/// subsystem can return pooled objects to a freelist). Slots are scarce —
/// one per subsystem, allocated once into a static.
size_t AllocTaskSlot(void (*deleter)(void*));

/// The calling task's storage cell for `key`, or nullptr when the caller
/// is not running inside a task (plain threads fall back to their own
/// thread_local state).
void** TaskSlot(size_t key);

}  // namespace dsmdb::rt

#endif  // DSMDB_RT_TASK_H_
