#include "rt/pct_policy.h"

#include <algorithm>

namespace dsmdb::rt {

namespace {

// splitmix64: the same cheap seeded stream the fault injector uses.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Random priorities live in [2^32, 2^63); the demotion watermark counts
// down from 2^32 - 1, so every demoted task ranks below every undemoted
// one and demotions rank in reverse order of occurrence.
constexpr uint64_t kPrioBase = 1ULL << 32;
constexpr uint64_t kPrioSpan = (1ULL << 62) - (1ULL << 32);

}  // namespace

PctPolicy::PctPolicy(Options opts)
    : opts_(opts), rng_(opts.seed ^ 0xD1B54A32D192ED03ULL),
      demote_water_(kPrioBase - 1) {
  change_steps_.reserve(opts_.change_points);
  const uint64_t k = std::max<uint64_t>(opts_.steps_estimate, 1);
  for (uint32_t i = 0; i < opts_.change_points; i++) {
    change_steps_.push_back(1 + NextRand() % k);
  }
  std::sort(change_steps_.begin(), change_steps_.end());
}

uint64_t PctPolicy::NextRand() { return SplitMix64(&rng_); }

uint64_t PctPolicy::PriorityOf(uint64_t task_id) {
  auto it = prio_.find(task_id);
  if (it != prio_.end()) return it->second;
  const uint64_t p = kPrioBase + NextRand() % kPrioSpan;
  prio_.emplace(task_id, p);
  return p;
}

void PctPolicy::OnTaskSpawned(uint64_t task_id) { (void)PriorityOf(task_id); }

size_t PctPolicy::Pick(const Candidate* candidates, size_t n) {
  step_++;
  while (next_change_ < change_steps_.size() &&
         change_steps_[next_change_] <= step_) {
    next_change_++;
    if (last_task_ != UINT64_MAX) prio_[last_task_] = demote_water_--;
  }
  size_t best = 0;
  uint64_t best_prio = 0;
  for (size_t i = 0; i < n; i++) {
    const uint64_t p = PriorityOf(candidates[i].task_id);
    // Tie-break on (wake, seq) for determinism; priorities are 64-bit
    // random so ties only happen for a task appearing once.
    const bool better =
        p > best_prio ||
        (i > 0 && p == best_prio &&
         (candidates[i].wake_ns < candidates[best].wake_ns ||
          (candidates[i].wake_ns == candidates[best].wake_ns &&
           candidates[i].seq < candidates[best].seq)));
    if (i == 0 || better) {
      best = i;
      best_prio = p;
    }
  }
  last_task_ = candidates[best].task_id;
  return best;
}

}  // namespace dsmdb::rt
