#include "rt/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/sim_clock.h"
#include "common/spin_latch.h"
#include "obs/obs_config.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace dsmdb::rt {

namespace {

thread_local Scheduler* tls_sched = nullptr;
thread_local Task* tls_task = nullptr;

std::atomic<uint64_t> g_sched_id{0};

/// Process-wide task-local-slot registry (see AllocTaskSlot).
struct SlotRegistry {
  std::atomic<size_t> count{0};
  std::array<std::atomic<void (*)(void*)>, kMaxTaskSlots> deleters{};
};

SlotRegistry& Slots() {
  static SlotRegistry reg;
  return reg;
}

}  // namespace

void CoopYieldTrampoline() {
  if (tls_sched != nullptr && tls_task != nullptr) {
    tls_sched->YieldSpin();
  } else {
    std::this_thread::yield();
  }
}

size_t AllocTaskSlot(void (*deleter)(void*)) {
  const size_t key = Slots().count.fetch_add(1, std::memory_order_relaxed);
  if (key >= kMaxTaskSlots) {
    std::fprintf(stderr, "rt: task-local slots exhausted (max %zu)\n",
                 kMaxTaskSlots);
    std::abort();
  }
  Slots().deleters[key].store(deleter, std::memory_order_release);
  return key;
}

void** TaskSlot(size_t key) {
  Task* t = tls_task;
  if (t == nullptr) return nullptr;
  assert(key < kMaxTaskSlots);
  return &t->slots_[key];
}

Scheduler* Scheduler::Current() { return tls_sched; }
Task* Scheduler::CurrentTask() { return tls_task; }

Scheduler::Scheduler() : Scheduler(Options()) {}

Scheduler::Scheduler(Options opts)
    : opts_(opts), id_(g_sched_id.fetch_add(1, std::memory_order_relaxed)) {
  resume_lag_hist_ = obs::Telemetry::Instance().GetHistogram(
      "sched.resume_lag_ns");
  RegisterGauges();
}

Scheduler::~Scheduler() = default;

void Scheduler::RegisterGauges() {
  const std::string label = std::to_string(id_);
  auto& fr = obs::FlightRecorder::Instance();
  auto one = [label](std::atomic<uint64_t>* v) {
    return [label, v](uint64_t,
                      std::vector<std::pair<std::string, double>>* out) {
      out->emplace_back(label,
                        static_cast<double>(v->load(std::memory_order_relaxed)));
    };
  };
  fr_tokens_.push_back(fr.RegisterGaugeFamily("sched.live", one(&live_)));
  fr_tokens_.push_back(fr.RegisterGaugeFamily("sched.parked", one(&parked_)));
  fr_tokens_.push_back(
      fr.RegisterGaugeFamily("sched.depth_hwm", one(&depth_hwm_)));
  // Runnable = live tasks that could use the core right now (running,
  // ready in the heap past their wake, or spin-yielded). We approximate
  // as live − parked − backpressure-blocked, which is exact between
  // suspension points.
  fr_tokens_.push_back(fr.RegisterGaugeFamily(
      "sched.runnable",
      [this, label](uint64_t,
                    std::vector<std::pair<std::string, double>>* out) {
        const uint64_t live = live_.load(std::memory_order_relaxed);
        const uint64_t off = parked_.load(std::memory_order_relaxed) +
                             bp_count_.load(std::memory_order_relaxed);
        out->emplace_back(label,
                          static_cast<double>(live > off ? live - off : 0));
      }));

  // STATS_JSON totals: same-named gauges sum across workers and fold into
  // counters when the scheduler dies, so per-run totals survive teardown.
  auto& metrics = GlobalMetrics();
  auto counter = [](std::atomic<uint64_t>* v) {
    return [v]() { return v->load(std::memory_order_relaxed); };
  };
  metric_tokens_.push_back(
      metrics.RegisterGauge("sched.tasks_spawned", counter(&spawned_)));
  metric_tokens_.push_back(
      metrics.RegisterGauge("sched.parks", counter(&parks_)));
  metric_tokens_.push_back(
      metrics.RegisterGauge("sched.spin_yields", counter(&spin_yields_)));
  metric_tokens_.push_back(
      metrics.RegisterGauge("sched.depth_hwm", counter(&depth_hwm_)));
}

Scheduler::Stats Scheduler::GetStats() const {
  Stats s;
  s.tasks_spawned = spawned_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.spin_yields = spin_yields_.load(std::memory_order_relaxed);
  s.depth_hwm = depth_hwm_.load(std::memory_order_relaxed);
  return s;
}

/// Min-heap order: earliest simulated wake first, FIFO among equals.
bool Scheduler::HeapAfter(const Task* a, const Task* b) {
  if (a->wake_ns_ != b->wake_ns_) return a->wake_ns_ > b->wake_ns_;
  return a->seq_ > b->seq_;
}

void Scheduler::HeapPush(Task* t) {
  heap_.push_back(t);
  std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
}

Task* Scheduler::HeapPop() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
  Task* t = heap_.back();
  heap_.pop_back();
  return t;
}

Task* Scheduler::PolicyPop() {
  if (heap_.size() == 1) return HeapPop();
  cand_buf_.clear();
  for (const Task* t : heap_) {
    cand_buf_.push_back({t->id(), t->wake_ns_, t->seq_, t->from_yield_});
  }
  size_t idx = policy_->Pick(cand_buf_.data(), cand_buf_.size());
  if (idx >= heap_.size()) idx = 0;  // defensive: a bad pick is a default pick
  Task* t = heap_[idx];
  heap_[idx] = heap_.back();
  heap_.pop_back();
  std::make_heap(heap_.begin(), heap_.end(), HeapAfter);
  return t;
}

void Scheduler::RequeueYielded() {
  for (Task* y : yielded_) {
    y->state_ = Task::State::kReady;
    y->wake_ns_ = core_now_;
    y->seq_ = ++seq_gen_;
    y->from_yield_ = true;
    HeapPush(y);
  }
  yielded_count_.fetch_sub(yielded_.size(), std::memory_order_relaxed);
  yielded_.clear();
}

Task* Scheduler::NewTask(std::function<void()> fn, uint64_t wake_ns) {
  auto owned = std::unique_ptr<Task>(new Task(
      spawned_.fetch_add(1, std::memory_order_relaxed), std::move(fn)));
  Task* t = owned.get();
  tasks_.push_back(std::move(owned));
  t->wake_ns_ = wake_ns;
  t->seq_ = ++seq_gen_;
  const uint64_t live = live_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t hwm = depth_hwm_.load(std::memory_order_relaxed);
  while (live > hwm &&
         !depth_hwm_.compare_exchange_weak(hwm, live,
                                           std::memory_order_relaxed)) {
  }
  if (policy_ != nullptr) policy_->OnTaskSpawned(t->id());
  HeapPush(t);
  // The thread starts immediately but blocks on its baton semaphore until
  // the scheduler pops the task.
  t->thread_ = std::thread([this, t] { TaskMain(t); });
  return t;
}

void Scheduler::ScheduleNext() {
  while (true) {
    if (!heap_.empty()) {
      Task* next = policy_ == nullptr ? HeapPop() : PolicyPop();
      if (core_now_ < next->wake_ns_) core_now_ = next->wake_ns_;
      // Spin-yielded tasks get one re-check per pop of a *real* task (a
      // sibling latch holder is by construction in the heap). Popping a
      // requeued spinner must not recycle the others: spinners requeue at
      // a frozen core_now_, so two of them would otherwise trade the core
      // below every parked wake time forever and starve the very holder
      // they spin on (see Task::from_yield_).
      const bool was_spinner = next->from_yield_;
      next->from_yield_ = false;
      if (!was_spinner) RequeueYielded();
      next->state_ = Task::State::kRunning;
      next->sem_.release();
      return;
    }
    if (!yielded_.empty()) {
      // Every runnable sibling is spin-yielded: the latch holder must be
      // on another OS thread. Yield the host CPU to it, then retry.
      std::this_thread::yield();
      RequeueYielded();
      continue;
    }
    if (live_.load(std::memory_order_relaxed) == 0) {
      done_.release();
      return;
    }
    // Live tasks exist but none is runnable or parked — they are all
    // blocked in Spawn backpressure waiting for live_ to drop, which
    // nothing can cause. This is a usage bug (e.g. every task spawning
    // past max_tasks), not a transient state.
    std::fprintf(stderr,
                 "rt: scheduler %llu deadlocked: %llu live tasks, none "
                 "runnable (all in Spawn backpressure)\n",
                 static_cast<unsigned long long>(id_),
                 static_cast<unsigned long long>(
                     live_.load(std::memory_order_relaxed)));
    std::abort();
  }
}

void Scheduler::ParkUntil(uint64_t wake_ns) {
  Task* t = tls_task;
  assert(t != nullptr);
  const uint64_t now = SimClock::Now();
  if (wake_ns < now) wake_ns = now;
  if (core_now_ < now) core_now_ = now;
  t->state_ = Task::State::kParked;
  t->wake_ns_ = wake_ns;
  t->seq_ = ++seq_gen_;
  HeapPush(t);
  parked_.fetch_add(1, std::memory_order_relaxed);
  parks_.fetch_add(1, std::memory_order_relaxed);
  ScheduleNext();
  t->sem_.acquire();
  parked_.fetch_sub(1, std::memory_order_relaxed);
  // Core progress made by siblings while we waited. core_now_ >= wake_ns
  // is guaranteed (the pop that resumed us raised it to our wake time).
  SimClock::AdvanceTo(core_now_);
  const uint64_t lag = SimClock::Now() - wake_ns;
  if (lag > 0) {
    // Time spent waiting for the core after our wire wait ended — this is
    // queue wait, not wire time; give the critical-path sweep a span so
    // it lands in the cpu.queue bucket.
    if (obs::ObsConfig::Enabled()) resume_lag_hist_->Add(lag);
    if (obs::ObsConfig::TracingEnabled()) {
      obs::EmitSpan("sched.resume", "cpu.queue", wake_ns, lag);
    }
  }
}

void Scheduler::YieldSpin() {
  Task* t = tls_task;
  assert(t != nullptr);
  const uint64_t now = SimClock::Now();
  if (core_now_ < now) core_now_ = now;
  t->state_ = Task::State::kYielded;
  yielded_.push_back(t);
  yielded_count_.fetch_add(1, std::memory_order_relaxed);
  spin_yields_.fetch_add(1, std::memory_order_relaxed);
  ScheduleNext();
  t->sem_.acquire();
  // Deliberately no clock adjustment: a latch spin is a host-level wait
  // (exactly like the std::this_thread::yield() it replaces), and staying
  // clock-neutral keeps YieldSpin legal inside SimNoPark regions — which
  // is what breaks the handler-spins-on-latch-held-by-parked-task
  // deadlock.
}

void Scheduler::Spawn(std::function<void()> fn) {
  assert(tls_sched == this && tls_task != nullptr &&
         "Spawn must be called from inside a task");
  Task* self = tls_task;
  while (opts_.max_tasks != 0 &&
         live_.load(std::memory_order_relaxed) >= opts_.max_tasks) {
    // At the depth cap: cooperatively block until a task finishes
    // (TaskMain requeues backpressure waiters on every finish).
    self->state_ = Task::State::kParked;
    bp_waiters_.push_back(self);
    bp_count_.fetch_add(1, std::memory_order_relaxed);
    ScheduleNext();
    self->sem_.acquire();
    bp_count_.fetch_sub(1, std::memory_order_relaxed);
    SimClock::AdvanceTo(core_now_);
  }
  self->state_ = Task::State::kRunning;
  NewTask(std::move(fn), SimClock::Now());
}

void Scheduler::TaskMain(Task* t) {
  t->sem_.acquire();
  tls_sched = this;
  tls_task = t;
  SetCoopYieldHook(&CoopYieldTrampoline);
  // A fresh thread's clock is 0; start on the core's current time (the
  // pop that scheduled us already raised core_now_ to our spawn time).
  SimClock::AdvanceTo(core_now_);
  try {
    t->fn_();
  } catch (...) {
    t->error_ = std::current_exception();
  }
  // Task-local slot cleanup runs on the task's own thread, exception or
  // not, so pooled objects (DsmClient scratch) return to their freelists.
  const size_t nslots = Slots().count.load(std::memory_order_acquire);
  for (size_t k = 0; k < nslots && k < kMaxTaskSlots; ++k) {
    if (t->slots_[k] != nullptr) {
      if (auto* del = Slots().deleters[k].load(std::memory_order_acquire)) {
        del(t->slots_[k]);
      }
      t->slots_[k] = nullptr;
    }
  }
  t->state_ = Task::State::kFinished;
  if (core_now_ < SimClock::Now()) core_now_ = SimClock::Now();
  live_.fetch_sub(1, std::memory_order_relaxed);
  // A finish is the only event that can unblock Spawn backpressure.
  for (Task* w : bp_waiters_) {
    w->state_ = Task::State::kReady;
    w->wake_ns_ = core_now_;
    w->seq_ = ++seq_gen_;
    HeapPush(w);
  }
  bp_waiters_.clear();
  SetCoopYieldHook(nullptr);
  tls_task = nullptr;
  tls_sched = nullptr;
  ScheduleNext();
}

void Scheduler::Run(std::function<void()> root) {
  assert(!started_ && "Scheduler::Run is single-use");
  assert(tls_task == nullptr && "Run must not be called from inside a task");
  started_ = true;
  NewTask(std::move(root), SimClock::Now());
  ScheduleNext();
  done_.acquire();
  for (auto& t : tasks_) {
    if (t->thread_.joinable()) t->thread_.join();
  }
  final_sim_ns_ = core_now_;
  for (auto& t : tasks_) {
    if (t->error_) std::rethrow_exception(t->error_);
  }
}

void SimWait(uint64_t wake_ns) {
  Scheduler* s = tls_sched;
  if (s == nullptr || tls_task == nullptr || SimNoPark::Active()) {
    // Plain thread, or a provisional (rewound) timeline: the
    // pre-scheduler blocking behavior.
    SimClock::AdvanceTo(wake_ns);
    return;
  }
  if (wake_ns <= SimClock::Now()) return;
  s->ParkUntil(wake_ns);
}

void SimCharge(uint64_t cpu_ns, uint64_t wire_ns) {
  SimClock::Advance(cpu_ns);
  if (wire_ns != 0) SimWait(SimClock::Now() + wire_ns);
}

}  // namespace dsmdb::rt
