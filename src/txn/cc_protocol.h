#ifndef DSMDB_TXN_CC_PROTOCOL_H_
#define DSMDB_TXN_CC_PROTOCOL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/result.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "obs/flight_recorder.h"
#include "txn/data_accessor.h"
#include "txn/log_sink.h"
#include "txn/record_format.h"
#include "txn/timestamp_oracle.h"

namespace dsmdb::txn {

/// The CC protocols under evaluation (Challenge #6's list: lock-based 2PL
/// with simple vs. advanced RDMA locks, and the non-lock-based family —
/// OCC, timestamp ordering, MVCC).
enum class CcProtocolKind {
  kTwoPlNoWait,
  kTwoPlWaitDie,
  kOcc,
  kTso,
  kMvcc,
};

std::string_view CcProtocolKindName(CcProtocolKind kind);

/// Lock flavor for 2PL (Challenge #6: "RDMA can only implement a simple
/// exclusive spinlock within a single round trip ... an RDMA
/// shared-exclusive lock needs at least 2 round trips").
enum class TwoPlLockMode {
  kExclusiveOnly,     ///< 1-RTT CAS spinlock for reads and writes.
  kSharedExclusive,   ///< 2-RTT SE lock: readers share, writers exclusive.
};

struct CcOptions {
  CcProtocolKind protocol = CcProtocolKind::kTwoPlNoWait;
  TwoPlLockMode lock_mode = TwoPlLockMode::kExclusiveOnly;
  /// Lock retry budget before giving up (WAIT_DIE waiting, OCC lock phase).
  uint32_t lock_max_attempts = 64;
  /// 2PL with exclusive locks only: buffer blind writes and acquire their
  /// locks as one pipelined CAS batch at commit (async verb engine), so n
  /// write locks cost ~1 RTT instead of n. Conflicts on deferred locks are
  /// detected at Commit() rather than Write() (reads, and writes to
  /// records the transaction already read, still lock eagerly). Ignored in
  /// shared-exclusive mode.
  bool defer_write_locks = true;
#if defined(DSMDB_CHECK_ENABLED)
  /// Deliberately-broken protocol variants for isolation-oracle self-tests
  /// (tests/oracle_test.cc): each plants a classic bug the oracle must
  /// flag within a bounded number of explored schedules. Check builds
  /// only, so the plain build's options layout and hot paths are
  /// byte-identical to a tree without this field.
  struct DebugBreak {
    /// 2PL: release read-only locks right after the read instead of at
    /// commit — the textbook non-two-phase bug (lost updates).
    bool release_read_locks_early = false;
    /// OCC: skip the version re-check in the validation phase (keep the
    /// lock check) — commits on stale reads.
    bool skip_version_recheck = false;
  };
  DebugBreak debug_break;
#endif
};

/// Aggregate protocol counters (relaxed atomics, per manager).
struct CcStats {
  std::atomic<uint64_t> begun{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> lock_aborts{0};
  std::atomic<uint64_t> validation_aborts{0};

  double AbortRate() const {
    const uint64_t c = committed.load(std::memory_order_relaxed);
    const uint64_t a = aborted.load(std::memory_order_relaxed);
    return c + a == 0 ? 0.0
                      : static_cast<double>(a) / static_cast<double>(c + a);
  }
  void Reset() {
    begun.store(0);
    committed.store(0);
    aborted.store(0);
    lock_aborts.store(0);
    validation_aborts.store(0);
  }
};

/// One transaction. Not thread-safe (one owner thread). After Commit() or
/// any call returning kAborted, the transaction is finished: all its locks
/// are released and only destruction is legal.
class Transaction {
 public:
  virtual ~Transaction() = default;

  /// Reads the record's value into `out` under this protocol's rules.
  /// Returns kAborted if the transaction had to abort (already cleaned up).
  virtual Status Read(const RecordRef& ref, std::string* out) = 0;

  /// Stages a full-value write. `value.size()` must equal ref.value_size.
  virtual Status Write(const RecordRef& ref, std::string_view value) = 0;

  /// 2PC hook: acquire commit-time resources early (e.g. deferred write
  /// locks), so the cost lands in the coordinator's overlapped PREPARE
  /// phase instead of the serial decide path. Optional — Commit() must
  /// work without it. Returns kAborted (after self-cleanup) if the
  /// transaction had to die; a no-op for protocols with nothing to
  /// prefetch.
  virtual Status Prepare() { return Status::OK(); }

  /// Serialization point: logs durably, installs writes, releases locks.
  virtual Status Commit() = 0;

  /// Voluntary abort; releases every lock. Idempotent.
  virtual Status Abort() = 0;

  uint64_t ts() const { return ts_; }

 protected:
  /// Stamps the simulated begin time so commit/abort latency covers the
  /// whole transaction, not just the final phase.
  Transaction();

  /// Records full-txn latency (simulated begin -> now) into `mgr`'s
  /// commit/abort histogram. No-op unless obs::ObsConfig::Enabled().
  void RecordOutcome(class CcManager* mgr, bool committed) const;
  /// Records simulated time spent acquiring a record lock (including
  /// retries/backoff) into `mgr`'s lock-wait histogram.
  static void RecordLockWait(class CcManager* mgr, uint64_t wait_ns);

  uint64_t ts_ = 0;
  uint64_t begin_ns_ = 0;
};

/// Per-compute-node protocol instance; thread-safe Begin().
class CcManager {
 public:
  virtual ~CcManager() = default;
  virtual std::string_view name() const = 0;
  virtual Result<std::unique_ptr<Transaction>> Begin() = 0;

  CcStats& stats() { return stats_; }

  /// Per-protocol latency histograms, registered in obs::Telemetry as
  /// `txn.<name()>.{commit,abort,lock_wait}_ns`. Bound lazily on first use
  /// (name() is virtual, so not callable from the base constructor).
  struct TxnObs {
    ConcurrentHistogram* commit_ns = nullptr;
    ConcurrentHistogram* abort_ns = nullptr;
    ConcurrentHistogram* lock_wait_ns = nullptr;
  };
  const TxnObs& obs();

 protected:
  CcStats stats_;

 private:
  std::once_flag obs_once_;
  TxnObs obs_;
  /// Keeps the `txn.abort_rate` congestion gauge registered in the flight
  /// recorder for this manager's lifetime.
  obs::FlightRecorder::Token abort_gauge_;
};

/// Builds the protocol named by `options.protocol`. All pointers must
/// outlive the manager. `oracle` may be null only for kTwoPlNoWait with
/// exclusive locks (the one protocol that never needs timestamps; a
/// node-local id generator is used for lock ownership).
std::unique_ptr<CcManager> MakeCcManager(const CcOptions& options,
                                         dsm::DsmClient* dsm,
                                         DataAccessor* accessor,
                                         TimestampOracle* oracle,
                                         LogSink* sink);

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_CC_PROTOCOL_H_
