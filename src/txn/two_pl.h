#ifndef DSMDB_TXN_TWO_PL_H_
#define DSMDB_TXN_TWO_PL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "txn/cc_protocol.h"
#include "txn/rdma_lock.h"

namespace dsmdb::txn {

/// Strict two-phase locking over RDMA locks (Challenge #6, lock-based CC).
///
/// Two deadlock strategies:
///  * NO_WAIT — any lock conflict aborts immediately (no deadlocks by
///    construction; high abort rate under contention).
///  * WAIT_DIE — older transactions (smaller ts) wait, younger die.
///
/// Two lock flavors (TwoPlLockMode): the 1-RTT exclusive CAS spinlock
/// (readers serialize) or the 2-RTT shared-exclusive lock (readers share;
/// whether the concurrency pays for the extra round trips is bench E4's
/// question).
class TwoPlManager final : public CcManager {
 public:
  TwoPlManager(const CcOptions& options, dsm::DsmClient* dsm,
               DataAccessor* accessor, TimestampOracle* oracle,
               LogSink* sink);

  std::string_view name() const override;
  Result<std::unique_ptr<Transaction>> Begin() override;

 private:
  friend class TwoPlTransaction;

  CcOptions options_;
  dsm::DsmClient* dsm_;
  DataAccessor* accessor_;
  TimestampOracle* oracle_;
  LogSink* sink_;
  std::atomic<uint64_t> local_seq_{1};
};

class TwoPlTransaction final : public Transaction {
 public:
  TwoPlTransaction(TwoPlManager* mgr, uint64_t ts);
  ~TwoPlTransaction() override;

  Status Read(const RecordRef& ref, std::string* out) override;
  Status Write(const RecordRef& ref, std::string_view value) override;
  Status Commit() override;
  Status Abort() override;

 private:
  enum class Held { kShared, kExclusive };

  struct LockEntry {
    RecordRef ref;
    Held held;
  };

  /// Acquires (or upgrades to) the needed lock on `ref`. On conflict,
  /// applies the NO_WAIT / WAIT_DIE policy; returns kAborted after
  /// self-cleanup when the transaction dies.
  Status EnsureLock(const RecordRef& ref, bool exclusive);
  Status AbortInternal(bool validation);
  void ReleaseAll();

  TwoPlManager* mgr_;
  RdmaSpinLock spin_;
  RdmaSharedExclusiveLock se_;
  std::vector<LockEntry> locks_;
  std::unordered_map<uint64_t, size_t> lock_index_;  // addr.Pack() -> idx
  std::vector<CommitWrite> writes_;
  std::unordered_map<uint64_t, size_t> write_index_;
  bool finished_ = false;
};

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_TWO_PL_H_
