#ifndef DSMDB_TXN_TWO_PL_H_
#define DSMDB_TXN_TWO_PL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "txn/cc_protocol.h"
#include "txn/rdma_lock.h"

namespace dsmdb::txn {

/// Strict two-phase locking over RDMA locks (Challenge #6, lock-based CC).
///
/// Two deadlock strategies:
///  * NO_WAIT — any lock conflict aborts immediately (no deadlocks by
///    construction; high abort rate under contention).
///  * WAIT_DIE — older transactions (smaller ts) wait, younger die.
///
/// Two lock flavors (TwoPlLockMode): the 1-RTT exclusive CAS spinlock
/// (readers serialize) or the 2-RTT shared-exclusive lock (readers share;
/// whether the concurrency pays for the extra round trips is bench E4's
/// question).
///
/// With exclusive locks the hot path is pipelined through the async verb
/// engine: a read fuses its lock CAS with a speculative value fetch (one
/// overlapped round trip), blind-write locks are deferred to commit and
/// acquired as one CAS pipeline (CcOptions::defer_write_locks), and the
/// commit's install writes + release CASes go out as a single pipeline —
/// so commit pays ~3 overlapped RTTs (locks, log, install+release) instead
/// of one RTT per record op.
class TwoPlManager final : public CcManager {
 public:
  TwoPlManager(const CcOptions& options, dsm::DsmClient* dsm,
               DataAccessor* accessor, TimestampOracle* oracle,
               LogSink* sink);

  std::string_view name() const override;
  Result<std::unique_ptr<Transaction>> Begin() override;

 private:
  friend class TwoPlTransaction;

  CcOptions options_;
  dsm::DsmClient* dsm_;
  DataAccessor* accessor_;
  TimestampOracle* oracle_;
  LogSink* sink_;
  std::atomic<uint64_t> local_seq_{1};
};

class TwoPlTransaction final : public Transaction {
 public:
  TwoPlTransaction(TwoPlManager* mgr, uint64_t ts);
  ~TwoPlTransaction() override;

  Status Read(const RecordRef& ref, std::string* out) override;
  Status Write(const RecordRef& ref, std::string_view value) override;
  /// Acquires deferred write locks now (one CAS pipeline), so a 2PC
  /// coordinator pays for them during the overlapped PREPARE fan-out.
  Status Prepare() override;
  Status Commit() override;
  Status Abort() override;

 private:
  enum class Held { kShared, kExclusive };

  struct LockEntry {
    RecordRef ref;
    Held held;
  };

  /// Acquires (or upgrades to) the needed lock on `ref`. On conflict,
  /// applies the NO_WAIT / WAIT_DIE policy; returns kAborted after
  /// self-cleanup when the transaction dies.
  Status EnsureLock(const RecordRef& ref, bool exclusive);
  /// True when lock words may be batched into async pipelines (exclusive
  /// spinlock mode; SE locks need read-then-CAS sequences).
  bool PipelinedLocks() const;
  /// Commit phase 1 under defer_write_locks: one pipelined CAS per write
  /// lock not yet held; WAIT_DIE falls back to waiting per busy lock.
  Status AcquireDeferredLocks();
  /// WAIT_DIE retry loop for one busy exclusive lock (shared with the
  /// eager path).
  Status WaitDieRetry(const RecordRef& ref, Status busy);
  void RegisterLock(const RecordRef& ref, Held held);
  /// `conflict_addr` (packed record addr, 0 = unknown) feeds abort heat.
  Status AbortInternal(bool validation, uint64_t conflict_addr = 0);
  void ReleaseAll();
#if defined(DSMDB_CHECK_ENABLED)
  /// Oracle self-test bug (CcOptions::DebugBreak::release_read_locks_early):
  /// drops the lock on a record right after reading it.
  void DebugMaybeReleaseReadLockEarly(const RecordRef& ref);
#endif

  TwoPlManager* mgr_;
  RdmaSpinLock spin_;
  RdmaSharedExclusiveLock se_;
  std::vector<LockEntry> locks_;
  std::unordered_map<uint64_t, size_t> lock_index_;  // addr.Pack() -> idx
  std::vector<CommitWrite> writes_;
  std::unordered_map<uint64_t, size_t> write_index_;
  bool finished_ = false;
};

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_TWO_PL_H_
