#ifndef DSMDB_TXN_TSO_H_
#define DSMDB_TXN_TSO_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "txn/cc_protocol.h"
#include "txn/rdma_lock.h"

namespace dsmdb::txn {

/// Basic timestamp ordering (Challenge #6, non-lock-based). Each record's
/// version word holds (rts | wts); operations out of timestamp order
/// abort. Readers bump rts with a CAS; writers install under a short
/// record latch. Timestamps come from the shared oracle — with kRdmaFaa
/// that is one extra RTT per transaction begin, the centralized-generator
/// cost the paper calls out.
class TsoManager final : public CcManager {
 public:
  TsoManager(const CcOptions& options, dsm::DsmClient* dsm,
             DataAccessor* accessor, TimestampOracle* oracle, LogSink* sink);

  std::string_view name() const override { return "tso"; }
  Result<std::unique_ptr<Transaction>> Begin() override;

 private:
  friend class TsoTransaction;

  CcOptions options_;
  dsm::DsmClient* dsm_;
  DataAccessor* accessor_;
  TimestampOracle* oracle_;
  LogSink* sink_;
};

class TsoTransaction final : public Transaction {
 public:
  TsoTransaction(TsoManager* mgr, uint64_t ts);
  ~TsoTransaction() override;

  Status Read(const RecordRef& ref, std::string* out) override;
  Status Write(const RecordRef& ref, std::string_view value) override;
  Status Commit() override;
  Status Abort() override;

 private:
  /// `conflict_addr` (packed record addr, 0 = unknown) feeds abort heat.
  Status AbortInternal(bool validation, uint64_t conflict_addr = 0);

  TsoManager* mgr_;
  RdmaSpinLock spin_;
  std::vector<CommitWrite> writes_;
  std::vector<uint32_t> write_sizes_;
  std::unordered_map<uint64_t, size_t> write_index_;
  bool finished_ = false;
};

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_TSO_H_
