#ifndef DSMDB_TXN_MVCC_H_
#define DSMDB_TXN_MVCC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/spin_latch.h"
#include "txn/cc_protocol.h"
#include "txn/rdma_lock.h"

namespace dsmdb::txn {

/// Bump allocator for MVCC version nodes: grabs large DSM chunks with one
/// allocation RPC and carves them locally, so a version install does not
/// pay an allocation round trip. Thread-safe. No GC (old versions are
/// leaked for the lifetime of the arena — acceptable for the bounded runs
/// of this reproduction and called out in DESIGN.md).
class VersionArena {
 public:
  VersionArena(dsm::DsmClient* dsm, uint64_t chunk_bytes = 256 * 1024)
      : dsm_(dsm), chunk_bytes_(chunk_bytes) {}

  Result<dsm::GlobalAddress> Alloc(uint64_t size);

 private:
  dsm::DsmClient* dsm_;
  uint64_t chunk_bytes_;
  SpinLatch latch_;
  dsm::GlobalAddress chunk_ = dsm::kNullGlobalAddress;
  uint64_t used_ = 0;
};

/// Multi-version CC with snapshot isolation (Challenge #6).
///
/// Version chains live in DSM: each record's version word packs the
/// GlobalAddress of the newest version node {wts, prev, value}; the
/// record's inline value is the oldest version (wts = 0). Readers traverse
/// the chain with one-sided reads until wts <= snapshot — never blocking
/// and never aborting. Writers use first-committer-wins on the record
/// latch. The commit point is the log append, and a version node is linked
/// only after it is durable, so readers can never observe uncommitted
/// state.
///
/// Hot paths ride the async verb engine: a direct-accessor read fuses the
/// head-word fetch with a speculative inline-value fetch (~1 RTT when
/// nothing newer than the snapshot exists); commit fuses lock CAS + head
/// read per record into one pipeline, checks all newest-version
/// timestamps in a second, and installs node writes + head publishes +
/// lock releases as a third.
class MvccManager final : public CcManager {
 public:
  MvccManager(const CcOptions& options, dsm::DsmClient* dsm,
              DataAccessor* accessor, TimestampOracle* oracle,
              LogSink* sink);

  std::string_view name() const override { return "mvcc-si"; }
  Result<std::unique_ptr<Transaction>> Begin() override;

  VersionArena& arena() { return arena_; }

 private:
  friend class MvccTransaction;

  CcOptions options_;
  dsm::DsmClient* dsm_;
  DataAccessor* accessor_;
  TimestampOracle* oracle_;
  LogSink* sink_;
  VersionArena arena_;
};

class MvccTransaction final : public Transaction {
 public:
  MvccTransaction(MvccManager* mgr, uint64_t start_ts);
  ~MvccTransaction() override;

  Status Read(const RecordRef& ref, std::string* out) override;
  Status Write(const RecordRef& ref, std::string_view value) override;
  Status Commit() override;
  Status Abort() override;

 private:
  /// `conflict_addr` (packed record addr, 0 = unknown) feeds abort heat.
  Status AbortInternal(bool validation, uint64_t conflict_addr = 0);

  MvccManager* mgr_;
  RdmaSpinLock spin_;
  std::vector<CommitWrite> writes_;
  std::vector<uint32_t> write_sizes_;
  std::unordered_map<uint64_t, size_t> write_index_;
  /// wts of the version each network read actually returned
  /// (addr.Pack() -> wts; 0 = the inline oldest version). Commit uses it
  /// for first-updater-wins: a read-modify-write must abort if the record
  /// gained ANY version since the read — even one visible to our snapshot,
  /// which happens when the read raced a committer between its log append
  /// and its head publish. Readers stay non-blocking; the staleness is
  /// caught here instead.
  std::unordered_map<uint64_t, uint64_t> read_versions_;
  bool finished_ = false;
};

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_MVCC_H_
