#ifndef DSMDB_TXN_LOG_SINK_H_
#define DSMDB_TXN_LOG_SINK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dsm/gaddr.h"
#include "log/replicated_log.h"
#include "log/wal.h"

namespace dsmdb::txn {

/// One committed write, for durability and recovery: the new value of the
/// record at `addr`.
struct CommitWrite {
  dsm::GlobalAddress addr;
  std::string value;
};

/// Encodes a CommitWrite payload (fixed64 addr.Pack() + value bytes).
std::string EncodeCommitWrite(const CommitWrite& w);
/// Decodes a kUpdate payload back into (addr, value).
bool DecodeCommitWrite(std::string_view payload, CommitWrite* out);

/// Where commit records go (Challenge #2). Called by every CC protocol
/// after its serialization point and before making writes visible
/// (write-ahead rule). Implementations must be thread-safe.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual std::string_view name() const = 0;

  /// Durably logs the transaction's writes followed by its commit record;
  /// returns once durable (simulated time advanced accordingly).
  virtual Status LogCommit(uint64_t txn_id,
                           const std::vector<CommitWrite>& writes) = 0;
};

/// No durability (CC protocol microbenchmarks isolate CC cost).
class NoopLogSink final : public LogSink {
 public:
  std::string_view name() const override { return "none"; }
  Status LogCommit(uint64_t, const std::vector<CommitWrite>&) override {
    return Status::OK();
  }
};

/// Approach #1: WAL on cloud storage (group commit inside Wal).
class WalLogSink final : public LogSink {
 public:
  explicit WalLogSink(log::Wal* wal) : wal_(wal) {}
  std::string_view name() const override { return "cloud-wal"; }
  Status LogCommit(uint64_t txn_id,
                   const std::vector<CommitWrite>& writes) override;

 private:
  log::Wal* wal_;
};

/// Approach #2: RAMCloud-style k-way memory-replicated log.
class ReplicatedLogSink final : public LogSink {
 public:
  explicit ReplicatedLogSink(log::ReplicatedLog* rlog) : rlog_(rlog) {}
  std::string_view name() const override { return "mem-replicated"; }
  Status LogCommit(uint64_t txn_id,
                   const std::vector<CommitWrite>& writes) override;

 private:
  log::ReplicatedLog* rlog_;
};

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_LOG_SINK_H_
