#include "txn/cc_protocol.h"

#include "txn/mvcc.h"
#include "txn/occ.h"
#include "txn/tso.h"
#include "txn/two_pl.h"

namespace dsmdb::txn {

std::string_view CcProtocolKindName(CcProtocolKind kind) {
  switch (kind) {
    case CcProtocolKind::kTwoPlNoWait:
      return "2pl-nowait";
    case CcProtocolKind::kTwoPlWaitDie:
      return "2pl-waitdie";
    case CcProtocolKind::kOcc:
      return "occ";
    case CcProtocolKind::kTso:
      return "tso";
    case CcProtocolKind::kMvcc:
      return "mvcc-si";
  }
  return "?";
}

std::unique_ptr<CcManager> MakeCcManager(const CcOptions& options,
                                         dsm::DsmClient* dsm,
                                         DataAccessor* accessor,
                                         TimestampOracle* oracle,
                                         LogSink* sink) {
  switch (options.protocol) {
    case CcProtocolKind::kTwoPlNoWait:
    case CcProtocolKind::kTwoPlWaitDie:
      return std::make_unique<TwoPlManager>(options, dsm, accessor, oracle,
                                            sink);
    case CcProtocolKind::kOcc:
      return std::make_unique<OccManager>(options, dsm, accessor, oracle,
                                          sink);
    case CcProtocolKind::kTso:
      return std::make_unique<TsoManager>(options, dsm, accessor, oracle,
                                          sink);
    case CcProtocolKind::kMvcc:
      return std::make_unique<MvccManager>(options, dsm, accessor, oracle,
                                           sink);
  }
  return nullptr;
}

}  // namespace dsmdb::txn
