#include "txn/cc_protocol.h"

#include "common/sim_clock.h"
#include "obs/obs_config.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "txn/mvcc.h"
#include "txn/occ.h"
#include "txn/tso.h"
#include "txn/two_pl.h"

namespace dsmdb::txn {

Transaction::Transaction() : begin_ns_(SimClock::Now()) {}

void Transaction::RecordOutcome(CcManager* mgr, bool committed) const {
  if (!obs::ObsConfig::Enabled()) return;
  const CcManager::TxnObs& obs = mgr->obs();
  (committed ? obs.commit_ns : obs.abort_ns)
      ->Add(SimClock::Now() - begin_ns_);
}

void Transaction::RecordLockWait(CcManager* mgr, uint64_t wait_ns) {
  if (!obs::ObsConfig::Enabled()) return;
  mgr->obs().lock_wait_ns->Add(wait_ns);
  // Lock-wait span for the causal trace: covers the whole acquisition
  // region (CAS pipelines, spin retries, backoff). Verb spans inside it are
  // deeper and win the attribution sweep, so only waiting time not already
  // explained by wire/post/handler books as lock_wait.
  if (wait_ns > 0 && obs::ObsConfig::TracingEnabled()) {
    obs::EmitSpan("lock.acquire", "lock.wait", SimClock::Now() - wait_ns,
                  wait_ns);
  }
}

const CcManager::TxnObs& CcManager::obs() {
  std::call_once(obs_once_, [this] {
    const std::string prefix = "txn." + std::string(name());
    obs::Telemetry& telemetry = obs::Telemetry::Instance();
    obs_.commit_ns = telemetry.GetHistogram(prefix + ".commit_ns");
    obs_.abort_ns = telemetry.GetHistogram(prefix + ".abort_ns");
    obs_.lock_wait_ns = telemetry.GetHistogram(prefix + ".lock_wait_ns");
    abort_gauge_ = obs::FlightRecorder::Instance().RegisterGauge(
        "txn.abort_rate", [this](uint64_t) { return stats_.AbortRate(); });
  });
  return obs_;
}

std::string_view CcProtocolKindName(CcProtocolKind kind) {
  switch (kind) {
    case CcProtocolKind::kTwoPlNoWait:
      return "2pl-nowait";
    case CcProtocolKind::kTwoPlWaitDie:
      return "2pl-waitdie";
    case CcProtocolKind::kOcc:
      return "occ";
    case CcProtocolKind::kTso:
      return "tso";
    case CcProtocolKind::kMvcc:
      return "mvcc-si";
  }
  return "?";
}

std::unique_ptr<CcManager> MakeCcManager(const CcOptions& options,
                                         dsm::DsmClient* dsm,
                                         DataAccessor* accessor,
                                         TimestampOracle* oracle,
                                         LogSink* sink) {
  switch (options.protocol) {
    case CcProtocolKind::kTwoPlNoWait:
    case CcProtocolKind::kTwoPlWaitDie:
      return std::make_unique<TwoPlManager>(options, dsm, accessor, oracle,
                                            sink);
    case CcProtocolKind::kOcc:
      return std::make_unique<OccManager>(options, dsm, accessor, oracle,
                                          sink);
    case CcProtocolKind::kTso:
      return std::make_unique<TsoManager>(options, dsm, accessor, oracle,
                                          sink);
    case CcProtocolKind::kMvcc:
      return std::make_unique<MvccManager>(options, dsm, accessor, oracle,
                                           sink);
  }
  return nullptr;
}

}  // namespace dsmdb::txn
