#include "txn/mvcc.h"

#include <algorithm>
#include <cassert>

#include "check/checker.h"
#include "check/history.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "obs/heat_map.h"
#include "obs/trace.h"
#include "txn/rdma_lock.h"

namespace dsmdb::txn {

Result<dsm::GlobalAddress> VersionArena::Alloc(uint64_t size) {
  size = (size + 7) & ~uint64_t{7};
  SpinLatchGuard g(latch_);
  if (chunk_.IsNull() || used_ + size > chunk_bytes_) {
    Result<dsm::GlobalAddress> chunk = dsm_->Alloc(chunk_bytes_);
    if (!chunk.ok()) return chunk.status();
    chunk_ = *chunk;
    used_ = 0;
  }
  const dsm::GlobalAddress out = chunk_.Plus(used_);
  used_ += size;
  return out;
}

MvccManager::MvccManager(const CcOptions& options, dsm::DsmClient* dsm,
                         DataAccessor* accessor, TimestampOracle* oracle,
                         LogSink* sink)
    : options_(options),
      dsm_(dsm),
      accessor_(accessor),
      oracle_(oracle),
      sink_(sink),
      arena_(dsm) {
  assert(oracle_ != nullptr);
}

Result<std::unique_ptr<Transaction>> MvccManager::Begin() {
  Result<uint64_t> ts = oracle_->Next();
  if (!ts.ok()) return ts.status();
  stats_.begun.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new MvccTransaction(this, *ts));
}

MvccTransaction::MvccTransaction(MvccManager* mgr, uint64_t start_ts)
    : mgr_(mgr), spin_(mgr->dsm_) {
  ts_ = start_ts;
  check::HistTxnBegin(mgr_->name(), ts_);
}

MvccTransaction::~MvccTransaction() {
  if (!finished_) (void)Abort();
}

Status MvccTransaction::Read(const RecordRef& ref, std::string* out) {
  assert(!finished_);
  auto wit = write_index_.find(ref.addr.Pack());
  if (wit != write_index_.end()) {
    *out = writes_[wit->second].value;
    return Status::OK();
  }
  // Version word -> newest node; chase until wts <= snapshot. Snapshot
  // reads race concurrent installs by design: a committer writes the full
  // version node before publishing its head pointer (same pipeline, posted
  // in order), so any node reachable from a head we observe is complete.
  // The checker cannot see that publication ordering, so the whole remote
  // read path is an optimistic scope.
  check::OptimisticScope opt("mvcc.read");
  uint64_t head = 0;
  bool have_inline = false;
  if (mgr_->accessor_->direct() == mgr_->dsm_) {
    // Fused: head word plus a speculative fetch of the inline value (the
    // immutable oldest version) in one overlapped round trip. When the
    // chain holds nothing visible to this snapshot — including the common
    // head == 0 case — the speculative bytes are the answer and the read
    // cost ~1 RTT.
    out->resize(ref.value_size);
    dsm::DsmPipeline pipe(mgr_->dsm_);
    pipe.Read(ref.VersionWord(), &head, 8);
    pipe.Read(ref.Value(), out->data(), ref.value_size);
    DSMDB_RETURN_NOT_OK(pipe.WaitAll());
    have_inline = true;
  } else {
    DSMDB_RETURN_NOT_OK(mgr_->dsm_->Read(ref.VersionWord(), &head, 8));
  }
  const size_t node_bytes = 16 + ref.value_size;
  std::vector<char> node(node_bytes);
  while (head != 0) {
    const dsm::GlobalAddress node_addr = dsm::GlobalAddress::Unpack(head);
    DSMDB_RETURN_NOT_OK(
        mgr_->dsm_->Read(node_addr, node.data(), node_bytes));
    const uint64_t wts = DecodeFixed64(node.data());
    if (wts <= ts_) {
      out->assign(node.data() + 16, ref.value_size);
      read_versions_[ref.addr.Pack()] = wts;
      // Version nodes are written before their head publish, so a
      // reachable wts is always already in the history.
      check::HistRead(ref.addr.Pack(), wts);
      return Status::OK();
    }
    head = DecodeFixed64(node.data() + 8);
  }
  // Oldest version: the record's inline value (wts = 0).
  read_versions_[ref.addr.Pack()] = 0;
  check::HistRead(ref.addr.Pack(), 0);
  if (have_inline) return Status::OK();
  out->resize(ref.value_size);
  return mgr_->accessor_->ReadValue(ref.Value(), out->data(),
                                    ref.value_size);
}

Status MvccTransaction::Write(const RecordRef& ref, std::string_view value) {
  assert(!finished_);
  if (value.size() != ref.value_size) {
    return Status::InvalidArgument("value size mismatch");
  }
  const uint64_t key = ref.addr.Pack();
  auto it = write_index_.find(key);
  if (it != write_index_.end()) {
    writes_[it->second].value.assign(value);
  } else {
    writes_.push_back(CommitWrite{ref.addr, std::string(value)});
    write_sizes_.push_back(ref.value_size);
    write_index_[key] = writes_.size() - 1;
  }
  return Status::OK();
}

Status MvccTransaction::Commit() {
  assert(!finished_);
  obs::TraceScope span("txn.commit", "txn");
  if (writes_.empty()) {
    // Read-only: snapshot reads never validate, never abort.
    finished_ = true;
    mgr_->stats_.committed.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(mgr_, true);
    check::HistTxnCommit();
    return Status::OK();
  }
  std::vector<size_t> order(writes_.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return writes_[a].addr.Pack() < writes_[b].addr.Pack();
  });

  // Lock write targets; first-committer-wins: abort if any record gained a
  // version newer than our snapshot. The uncontended path is one pipelined
  // batch fusing each record's lock CAS with its head-word read (2 posts
  // per record, ~1 overlapped RTT); a busy lock falls back to the bounded
  // spin Acquire and re-reads the head under the lock. Locks are stamped
  // with the BEGIN timestamp; commit_ts is taken only once every lock is
  // held, so any snapshot newer than our commit_ts must have begun after
  // our locks went up and (with readers waiting out held locks) cannot
  // miss the versions we are about to publish.
  std::vector<uint64_t> heads(writes_.size(), 0);
  std::vector<dsm::GlobalAddress> locked;
  locked.reserve(order.size());
  // Releases the acquired lock words as one pipelined CAS batch.
  auto release_locked = [&]() {
    if (locked.empty()) return;
    dsm::DsmPipeline pipe(mgr_->dsm_);
    for (dsm::GlobalAddress a : locked) {
      pipe.Cas(a, MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()), 0);
    }
    (void)pipe.WaitAll();
  };
  Status s;
  bool busy = false;
  const uint64_t lock_start = SimClock::Now();
  {
    // The fused head reads execute whether or not their paired CAS won; a
    // lost CAS means the read raced the lock holder's install and the
    // result is discarded (the busy path re-reads under the lock), so
    // these reads are optimistic to the checker. The CASes themselves are
    // sync ops and stay fully tracked.
    check::OptimisticScope opt("mvcc.lock_fused");
    dsm::DsmPipeline pipe(mgr_->dsm_);
    std::vector<rdma::WrId> cas_wr(order.size());
    for (size_t i = 0; i < order.size(); i++) {
      const CommitWrite& w = writes_[order[i]];
      cas_wr[i] = pipe.Cas(
          w.addr, 0, MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()));
      pipe.Read(dsm::GlobalAddress{w.addr.node, w.addr.offset + 8},
                &heads[order[i]], 8);
    }
    (void)pipe.WaitAll();
    // Every CAS in the pipeline already executed, so collect ALL the wins
    // into `locked` — bailing out mid-scan would leak locks acquired
    // further down the batch.
    for (size_t i = 0; i < order.size(); i++) {
      const Status& cs = pipe.status(cas_wr[i]);
      if (!cs.ok()) {
        if (s.ok()) s = cs;
      } else if (pipe.value(cas_wr[i]) == 0) {
        locked.push_back(writes_[order[i]].addr);
      } else {
        busy = true;
        // Free an orphaned holder before the spin-lock fallback re-tries.
        (void)MaybeReclaimOrphanLock(mgr_->dsm_, writes_[order[i]].addr,
                                     pipe.value(cas_wr[i]));
      }
    }
  }
  if (s.ok() && busy) {
    // Contended: pipelined try-locks give up the ordered-acquisition
    // guarantee, so spinning on the losses while holding the wins can
    // deadlock against a committer doing the same in reverse (both time
    // out, retry, and livelock in lockstep). Back off instead: release
    // every win and re-acquire ALL locks with the blocking spin lock in
    // address order, which cannot deadlock; heads are re-read under the
    // locks (the fused reads raced with the conflicting committer's
    // install).
    release_locked();
    locked.clear();
    for (size_t i = 0; i < order.size(); i++) {
      const size_t idx = order[i];
      const CommitWrite& w = writes_[idx];
      s = spin_.Acquire(w.addr, ts_, mgr_->options_.lock_max_attempts);
      if (!s.ok()) break;
      locked.push_back(w.addr);
      s = mgr_->dsm_->Read(
          dsm::GlobalAddress{w.addr.node, w.addr.offset + 8}, &heads[idx],
          8);
      if (!s.ok()) break;
    }
  }
  // Serialization timestamp, taken under the full write-set lock.
  Result<uint64_t> commit_ts = mgr_->oracle_->Next();
  if (!commit_ts.ok()) {
    release_locked();
    RecordLockWait(mgr_, SimClock::Now() - lock_start);
    return commit_ts.status();
  }
  if (s.ok()) {
    // Second overlapped round: newest-version timestamps of all chained
    // heads at once.
    dsm::DsmPipeline pipe(mgr_->dsm_);
    std::vector<uint64_t> newest(writes_.size(), 0);
    bool any = false;
    for (size_t i = 0; i < writes_.size(); i++) {
      if (heads[i] == 0) continue;
      any = true;
      pipe.Read(dsm::GlobalAddress::Unpack(heads[i]), &newest[i], 8);
    }
    if (any) s = pipe.WaitAll();
    if (s.ok()) {
      for (size_t i = 0; i < writes_.size(); i++) {
        const uint64_t newest_wts = heads[i] == 0 ? 0 : newest[i];
        // First-committer-wins: a version newer than our snapshot means a
        // write-write conflict.
        bool conflict = newest_wts > ts_;
        // First-updater-wins for read-modify-writes: the newest version
        // must still be the one we read. A version ≤ our snapshot that we
        // did NOT read means the read raced the committer between its log
        // append and head publish — committing on that stale value would
        // lose its update.
        auto rit = read_versions_.find(writes_[i].addr.Pack());
        if (rit != read_versions_.end() && newest_wts != rit->second) {
          conflict = true;
        }
        if (conflict) {
          release_locked();
          RecordLockWait(mgr_, SimClock::Now() - lock_start);
          return AbortInternal(true, writes_[i].addr.Pack());
        }
      }
    }
  }
  RecordLockWait(mgr_, SimClock::Now() - lock_start);
  if (!s.ok()) {
    release_locked();
    if (s.IsTimedOut() || s.IsBusy()) {
      // The first un-acquired write target is the contended record.
      const uint64_t blocked = locked.size() < order.size()
                                   ? writes_[order[locked.size()]].addr.Pack()
                                   : 0;
      return AbortInternal(false, blocked);
    }
    return s;
  }

  // Commit point: durable log BEFORE any version becomes visible.
  s = mgr_->sink_->LogCommit(*commit_ts, writes_);
  if (s.ok()) {
    // Install pipeline: version-node write + head publish per record, then
    // all lock releases, as one batch (~1 overlapped RTT + 3n postings).
    // Posted writes copy their source at post time, so the node buffer and
    // packed pointer may live on the stack of each iteration.
    dsm::DsmPipeline pipe(mgr_->dsm_);
    bool posted_all = true;
    for (size_t i = 0; i < writes_.size(); i++) {
      const CommitWrite& w = writes_[i];
      const size_t node_bytes = 16 + write_sizes_[i];
      Result<dsm::GlobalAddress> node_addr =
          mgr_->arena().Alloc(node_bytes);
      if (!node_addr.ok()) {
        s = node_addr.status();
        posted_all = false;
        break;
      }
      std::string node;
      PutFixed64(&node, *commit_ts);
      PutFixed64(&node, heads[i]);
      node.append(w.value);
      // Readers observe this version as wts == commit_ts; recorded before
      // posting, under the write-set locks held since phase 1.
      check::HistInstall(w.addr.Pack(), *commit_ts);
      pipe.Write(*node_addr, node.data(), node.size());
      const uint64_t packed = node_addr->Pack();
      pipe.Write(dsm::GlobalAddress{w.addr.node, w.addr.offset + 8},
                 &packed, 8);
    }
    if (posted_all) {
      for (dsm::GlobalAddress a : locked) {
        pipe.Cas(a, MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()), 0);
      }
      const Status ws = pipe.WaitAll();
      if (s.ok()) s = ws;
    } else {
      (void)pipe.WaitAll();
      release_locked();
    }
  } else {
    release_locked();
  }
  finished_ = true;
  if (!s.ok()) {
    mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(mgr_, false);
    check::HistTxnAbort();  // installs may be recorded -> in-doubt
    return s;
  }
  mgr_->stats_.committed.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, true);
  check::HistTxnCommit();
  return Status::OK();
}

Status MvccTransaction::Abort() {
  if (finished_) return Status::OK();
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  check::HistTxnAbort();
  return Status::OK();
}

Status MvccTransaction::AbortInternal(bool validation,
                                      uint64_t conflict_addr) {
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  if (validation) {
    mgr_->stats_.validation_aborts.fetch_add(1, std::memory_order_relaxed);
  } else {
    mgr_->stats_.lock_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  if (conflict_addr != 0 && obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kAbort,
                                              conflict_addr);
  }
  check::HistTxnAbort();
  return Status::Aborted("mvcc write-write conflict");
}

}  // namespace dsmdb::txn
