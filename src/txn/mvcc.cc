#include "txn/mvcc.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "common/sim_clock.h"
#include "obs/trace.h"

namespace dsmdb::txn {

Result<dsm::GlobalAddress> VersionArena::Alloc(uint64_t size) {
  size = (size + 7) & ~uint64_t{7};
  SpinLatchGuard g(latch_);
  if (chunk_.IsNull() || used_ + size > chunk_bytes_) {
    Result<dsm::GlobalAddress> chunk = dsm_->Alloc(chunk_bytes_);
    if (!chunk.ok()) return chunk.status();
    chunk_ = *chunk;
    used_ = 0;
  }
  const dsm::GlobalAddress out = chunk_.Plus(used_);
  used_ += size;
  return out;
}

MvccManager::MvccManager(const CcOptions& options, dsm::DsmClient* dsm,
                         DataAccessor* accessor, TimestampOracle* oracle,
                         LogSink* sink)
    : options_(options),
      dsm_(dsm),
      accessor_(accessor),
      oracle_(oracle),
      sink_(sink),
      arena_(dsm) {
  assert(oracle_ != nullptr);
}

Result<std::unique_ptr<Transaction>> MvccManager::Begin() {
  Result<uint64_t> ts = oracle_->Next();
  if (!ts.ok()) return ts.status();
  stats_.begun.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new MvccTransaction(this, *ts));
}

MvccTransaction::MvccTransaction(MvccManager* mgr, uint64_t start_ts)
    : mgr_(mgr), spin_(mgr->dsm_) {
  ts_ = start_ts;
}

MvccTransaction::~MvccTransaction() {
  if (!finished_) (void)Abort();
}

Status MvccTransaction::Read(const RecordRef& ref, std::string* out) {
  assert(!finished_);
  auto wit = write_index_.find(ref.addr.Pack());
  if (wit != write_index_.end()) {
    *out = writes_[wit->second].value;
    return Status::OK();
  }
  // Version word -> newest node; chase until wts <= snapshot.
  uint64_t head = 0;
  DSMDB_RETURN_NOT_OK(mgr_->dsm_->Read(ref.VersionWord(), &head, 8));
  const size_t node_bytes = 16 + ref.value_size;
  std::vector<char> node(node_bytes);
  while (head != 0) {
    const dsm::GlobalAddress node_addr = dsm::GlobalAddress::Unpack(head);
    DSMDB_RETURN_NOT_OK(
        mgr_->dsm_->Read(node_addr, node.data(), node_bytes));
    const uint64_t wts = DecodeFixed64(node.data());
    if (wts <= ts_) {
      out->assign(node.data() + 16, ref.value_size);
      return Status::OK();
    }
    head = DecodeFixed64(node.data() + 8);
  }
  // Oldest version: the record's inline value (wts = 0).
  out->resize(ref.value_size);
  return mgr_->accessor_->ReadValue(ref.Value(), out->data(),
                                    ref.value_size);
}

Status MvccTransaction::Write(const RecordRef& ref, std::string_view value) {
  assert(!finished_);
  if (value.size() != ref.value_size) {
    return Status::InvalidArgument("value size mismatch");
  }
  const uint64_t key = ref.addr.Pack();
  auto it = write_index_.find(key);
  if (it != write_index_.end()) {
    writes_[it->second].value.assign(value);
  } else {
    writes_.push_back(CommitWrite{ref.addr, std::string(value)});
    write_sizes_.push_back(ref.value_size);
    write_index_[key] = writes_.size() - 1;
  }
  return Status::OK();
}

Status MvccTransaction::Commit() {
  assert(!finished_);
  obs::TraceScope span("txn.commit", "txn");
  if (writes_.empty()) {
    // Read-only: snapshot reads never validate, never abort.
    finished_ = true;
    mgr_->stats_.committed.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(mgr_, true);
    return Status::OK();
  }
  Result<uint64_t> commit_ts = mgr_->oracle_->Next();
  if (!commit_ts.ok()) return commit_ts.status();

  std::vector<size_t> order(writes_.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return writes_[a].addr.Pack() < writes_[b].addr.Pack();
  });

  // Lock write targets; first-committer-wins: abort if any record gained a
  // version newer than our snapshot.
  std::vector<uint64_t> heads(writes_.size());
  size_t locked = 0;
  Status s;
  const uint64_t lock_start = SimClock::Now();
  for (; locked < order.size(); locked++) {
    const size_t idx = order[locked];
    const CommitWrite& w = writes_[idx];
    s = spin_.Acquire(w.addr, *commit_ts, mgr_->options_.lock_max_attempts);
    if (!s.ok()) break;
    uint64_t head = 0;
    s = mgr_->dsm_->Read(dsm::GlobalAddress{w.addr.node, w.addr.offset + 8},
                         &head, 8);
    if (!s.ok()) {
      locked++;
      break;
    }
    if (head != 0) {
      uint64_t newest_wts = 0;
      s = mgr_->dsm_->Read(dsm::GlobalAddress::Unpack(head), &newest_wts, 8);
      if (!s.ok()) {
        locked++;
        break;
      }
      if (newest_wts > ts_) {
        locked++;
        for (size_t i = 0; i < locked; i++) {
          (void)spin_.Release(writes_[order[i]].addr, *commit_ts);
        }
        RecordLockWait(mgr_, SimClock::Now() - lock_start);
        return AbortInternal(true);  // write-write conflict
      }
    }
    heads[idx] = head;
  }
  RecordLockWait(mgr_, SimClock::Now() - lock_start);
  if (!s.ok()) {
    for (size_t i = 0; i < locked; i++) {
      (void)spin_.Release(writes_[order[i]].addr, *commit_ts);
    }
    if (s.IsTimedOut() || s.IsBusy()) return AbortInternal(false);
    return s;
  }

  // Commit point: durable log BEFORE any version becomes visible.
  s = mgr_->sink_->LogCommit(*commit_ts, writes_);
  if (s.ok()) {
    for (size_t i = 0; i < writes_.size() && s.ok(); i++) {
      const CommitWrite& w = writes_[i];
      const size_t node_bytes = 16 + write_sizes_[i];
      Result<dsm::GlobalAddress> node_addr =
          mgr_->arena().Alloc(node_bytes);
      if (!node_addr.ok()) {
        s = node_addr.status();
        break;
      }
      std::string node;
      PutFixed64(&node, *commit_ts);
      PutFixed64(&node, heads[i]);
      node.append(w.value);
      s = mgr_->dsm_->Write(*node_addr, node.data(), node.size());
      if (!s.ok()) break;
      const uint64_t packed = node_addr->Pack();
      s = mgr_->dsm_->Write(
          dsm::GlobalAddress{w.addr.node, w.addr.offset + 8}, &packed, 8);
    }
  }
  for (size_t i = 0; i < order.size(); i++) {
    (void)spin_.Release(writes_[order[i]].addr, *commit_ts);
  }
  finished_ = true;
  if (!s.ok()) {
    mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(mgr_, false);
    return s;
  }
  mgr_->stats_.committed.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, true);
  return Status::OK();
}

Status MvccTransaction::Abort() {
  if (finished_) return Status::OK();
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  return Status::OK();
}

Status MvccTransaction::AbortInternal(bool validation) {
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  if (validation) {
    mgr_->stats_.validation_aborts.fetch_add(1, std::memory_order_relaxed);
  } else {
    mgr_->stats_.lock_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Aborted("mvcc write-write conflict");
}

}  // namespace dsmdb::txn
