#ifndef DSMDB_TXN_RDMA_LOCK_H_
#define DSMDB_TXN_RDMA_LOCK_H_

#include <cstdint>

#include "common/status.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"

namespace dsmdb::txn {

/// RDMA lock primitives (Challenge #6).
///
/// * `RdmaSpinLock` — the paper's "simple exclusive spinlock within a
///   single round trip through the CAS atomic primitive".
/// * `RdmaSharedExclusiveLock` — the advanced variant the paper costs at
///   "at least 2 round trips": the first RTT reads the lock metadata, the
///   second installs the updated state with CAS (retried on interleaving).
///
/// Both operate on the 8-byte lock word embedded in every record header,
/// so no lock table or lock manager round trip is needed.
class RdmaSpinLock {
 public:
  explicit RdmaSpinLock(dsm::DsmClient* dsm) : dsm_(dsm) {}

  /// Single-CAS try-lock: 0 -> exclusive(ts). kBusy if held.
  Status TryAcquire(dsm::GlobalAddress word, uint64_t ts);

  /// Spins until acquired or `max_attempts` CAS rounds elapse (each failed
  /// round costs a real RTT and a backoff in simulated time).
  Status Acquire(dsm::GlobalAddress word, uint64_t ts,
                 uint32_t max_attempts = 64);

  /// Reads the current holder's ts (one RTT) — used by WAIT_DIE.
  /// Returns 0 if free.
  Result<uint64_t> Peek(dsm::GlobalAddress word);

  Status Release(dsm::GlobalAddress word, uint64_t ts);

 private:
  dsm::DsmClient* dsm_;
};

class RdmaSharedExclusiveLock {
 public:
  explicit RdmaSharedExclusiveLock(dsm::DsmClient* dsm) : dsm_(dsm) {}

  /// >= 2 RTTs: READ the word, then CAS count -> count+1 (fails and
  /// retries if a writer holds it or the count moved).
  Status TryAcquireShared(dsm::GlobalAddress word,
                          uint32_t max_attempts = 8);

  /// 1 RTT: FAA(-1).
  Status ReleaseShared(dsm::GlobalAddress word);

  /// >= 2 RTTs: READ, then CAS 0 -> exclusive(ts); fails while readers or
  /// a writer are present.
  Status TryAcquireExclusive(dsm::GlobalAddress word, uint64_t ts,
                             uint32_t max_attempts = 8);

  Status ReleaseExclusive(dsm::GlobalAddress word, uint64_t ts);

 private:
  dsm::DsmClient* dsm_;
};

/// Simulated-time backoff for lock retries: advances the caller's clock
/// without burning host CPU.
void LockBackoff(uint32_t attempt);

/// Orphan-lock recovery (DESIGN.md §11): if `observed` is an exclusive
/// lock word stamped with another node's owner id whose liveness lease has
/// expired, CAS it back to 0 and count `fault.orphan_locks_reclaimed`.
/// Returns true when this call freed the word (the caller may immediately
/// retry its acquisition). No-op without a LeaseManager installed, for
/// owner-less (legacy) words, and for shared reader counts — those carry
/// no owner identity and are never reclaimed.
bool MaybeReclaimOrphanLock(dsm::DsmClient* dsm, dsm::GlobalAddress word,
                            uint64_t observed);

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_RDMA_LOCK_H_
