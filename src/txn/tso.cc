#include "txn/tso.h"

#include <algorithm>
#include <cassert>

#include "check/checker.h"
#include "check/history.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "obs/heat_map.h"
#include "obs/trace.h"

namespace dsmdb::txn {

TsoManager::TsoManager(const CcOptions& options, dsm::DsmClient* dsm,
                       DataAccessor* accessor, TimestampOracle* oracle,
                       LogSink* sink)
    : options_(options),
      dsm_(dsm),
      accessor_(accessor),
      oracle_(oracle),
      sink_(sink) {
  assert(oracle_ != nullptr);
}

Result<std::unique_ptr<Transaction>> TsoManager::Begin() {
  Result<uint64_t> ts = oracle_->Next();
  if (!ts.ok()) return ts.status();
  stats_.begun.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new TsoTransaction(this, *ts));
}

TsoTransaction::TsoTransaction(TsoManager* mgr, uint64_t ts)
    : mgr_(mgr), spin_(mgr->dsm_) {
  ts_ = ts;
  check::HistTxnBegin(mgr_->name(), ts_);
}

TsoTransaction::~TsoTransaction() {
  if (!finished_) (void)Abort();
}

Status TsoTransaction::Read(const RecordRef& ref, std::string* out) {
  assert(!finished_);
  auto wit = write_index_.find(ref.addr.Pack());
  if (wit != write_index_.end()) {
    *out = writes_[wit->second].value;
    return Status::OK();
  }
  const uint32_t my_ts = static_cast<uint32_t>(ts_);
  // The value read can race a lock holder's install; the stability
  // re-check of the header discards any torn result, which the checker
  // cannot see — so the retry loop's remote reads are an optimistic
  // scope. Header words are sync vars (lock CAS / rts-bump CAS), so their
  // reads still contribute happens-before joins inside the scope.
  check::OptimisticScope opt("tso.read");
  for (uint32_t attempt = 0; attempt < mgr_->options_.lock_max_attempts;
       attempt++) {
    char header[16];
    DSMDB_RETURN_NOT_OK(mgr_->dsm_->Read(ref.addr, header, sizeof(header)));
    const uint64_t lock_word = DecodeFixed64(header);
    const uint64_t vword = DecodeFixed64(header + 8);
    if (lock_word != 0) {  // writer installing: wait briefly
      LockBackoff(attempt);
      continue;
    }
    if (TsoWts(vword) > my_ts) {
      // a younger writer already wrote
      return AbortInternal(true, ref.addr.Pack());
    }
    out->resize(ref.value_size);
    DSMDB_RETURN_NOT_OK(mgr_->accessor_->ReadValue(ref.Value(), out->data(),
                                                   ref.value_size));
    // Stability check: the header must not have moved under the value read.
    char header2[16];
    DSMDB_RETURN_NOT_OK(
        mgr_->dsm_->Read(ref.addr, header2, sizeof(header2)));
    if (DecodeFixed64(header2) != 0 ||
        DecodeFixed64(header2 + 8) != vword) {
      LockBackoff(attempt);
      continue;
    }
    // Advance rts to my_ts (CAS; racing readers may beat us, that is fine
    // as long as rts only grows).
    if (TsoRts(vword) < my_ts) {
      const uint64_t desired = PackTso(my_ts, TsoWts(vword));
      Result<uint64_t> prev =
          mgr_->dsm_->CompareAndSwap(ref.VersionWord(), vword, desired);
      if (!prev.ok()) return prev.status();
      if (*prev != vword) {
        // A lost CAS is acceptable only when the version we read is still
        // current (wts unchanged) and some reader >= us already raised rts
        // — then our read is protected exactly as if our bump had landed.
        // If the wts moved, a writer installed between our stability check
        // and the CAS: the value in hand is stale and was never protected
        // by an rts bump (the isolation oracle flags the committed-stale
        // read as a cycle), so re-read. Checking only rts here — the
        // original condition — accepted stale values whenever an unrelated
        // younger reader had bumped rts past us.
        if (TsoWts(*prev) != TsoWts(vword) || TsoRts(*prev) < my_ts) {
          LockBackoff(attempt);
          continue;  // lost the race to a state that invalidates our read
        }
      }
    }
    check::HistRead(ref.addr.Pack(), TsoWts(vword));
    return Status::OK();
  }
  return AbortInternal(false, ref.addr.Pack());
}

Status TsoTransaction::Write(const RecordRef& ref, std::string_view value) {
  assert(!finished_);
  if (value.size() != ref.value_size) {
    return Status::InvalidArgument("value size mismatch");
  }
  const uint64_t key = ref.addr.Pack();
  auto it = write_index_.find(key);
  if (it != write_index_.end()) {
    writes_[it->second].value.assign(value);
  } else {
    writes_.push_back(CommitWrite{ref.addr, std::string(value)});
    write_sizes_.push_back(ref.value_size);
    write_index_[key] = writes_.size() - 1;
  }
  return Status::OK();
}

Status TsoTransaction::Commit() {
  assert(!finished_);
  obs::TraceScope span("txn.commit", "txn");
  const uint32_t my_ts = static_cast<uint32_t>(ts_);

  std::vector<size_t> order(writes_.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return writes_[a].addr.Pack() < writes_[b].addr.Pack();
  });

  // Lock and timestamp-check every write target.
  std::vector<uint64_t> vwords(writes_.size());
  size_t locked = 0;
  Status s;
  const uint64_t lock_start = SimClock::Now();
  for (; locked < order.size(); locked++) {
    const CommitWrite& w = writes_[order[locked]];
    s = spin_.Acquire(w.addr, ts_, mgr_->options_.lock_max_attempts);
    if (!s.ok()) break;
    uint64_t vword = 0;
    s = mgr_->dsm_->Read(
        dsm::GlobalAddress{w.addr.node, w.addr.offset + 8}, &vword, 8);
    if (!s.ok()) {
      locked++;
      break;
    }
    if (TsoRts(vword) > my_ts || TsoWts(vword) > my_ts) {
      locked++;
      for (size_t i = 0; i < locked; i++) {
        (void)spin_.Release(writes_[order[i]].addr, ts_);
      }
      RecordLockWait(mgr_, SimClock::Now() - lock_start);
      // out of timestamp order
      return AbortInternal(true, w.addr.Pack());
    }
    vwords[order[locked]] = vword;
  }
  RecordLockWait(mgr_, SimClock::Now() - lock_start);
  if (!s.ok()) {
    for (size_t i = 0; i < locked; i++) {
      (void)spin_.Release(writes_[order[i]].addr, ts_);
    }
    if (s.IsTimedOut() || s.IsBusy()) {
      const uint64_t blocked =
          locked < order.size() ? writes_[order[locked]].addr.Pack() : 0;
      return AbortInternal(false, blocked);
    }
    return s;
  }

  // Write-ahead log, then install (value + wts), then unlock.
  s = mgr_->sink_->LogCommit(ts_, writes_);
  if (s.ok()) {
    for (size_t i = 0; i < writes_.size() && s.ok(); i++) {
      const CommitWrite& w = writes_[i];
      RecordRef ref{w.addr, write_sizes_[i]};
      // Readers observe this version as wts == my_ts; recorded before the
      // install, under the record's exclusive lock.
      check::HistInstall(w.addr.Pack(), static_cast<uint64_t>(my_ts));
      s = mgr_->accessor_->WriteValue(ref.Value(), w.value.data(),
                                      w.value.size());
      if (!s.ok()) break;
      const uint64_t desired = PackTso(TsoRts(vwords[i]), my_ts);
      s = mgr_->dsm_->Write(ref.VersionWord(), &desired, 8);
    }
  }
  for (size_t i = 0; i < order.size(); i++) {
    (void)spin_.Release(writes_[order[i]].addr, ts_);
  }
  finished_ = true;
  if (!s.ok()) {
    mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(mgr_, false);
    check::HistTxnAbort();  // installs may be recorded -> in-doubt
    return s;
  }
  mgr_->stats_.committed.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, true);
  check::HistTxnCommit();
  return Status::OK();
}

Status TsoTransaction::Abort() {
  if (finished_) return Status::OK();
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  check::HistTxnAbort();
  return Status::OK();
}

Status TsoTransaction::AbortInternal(bool validation,
                                     uint64_t conflict_addr) {
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  if (validation) {
    mgr_->stats_.validation_aborts.fetch_add(1, std::memory_order_relaxed);
  } else {
    mgr_->stats_.lock_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  if (conflict_addr != 0 && obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kAbort,
                                              conflict_addr);
  }
  check::HistTxnAbort();
  return Status::Aborted("tso conflict");
}

}  // namespace dsmdb::txn
