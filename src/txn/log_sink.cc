#include "txn/log_sink.h"

#include "common/coding.h"
#include "obs/trace.h"

namespace dsmdb::txn {

std::string EncodeCommitWrite(const CommitWrite& w) {
  std::string out;
  PutFixed64(&out, w.addr.Pack());
  out.append(w.value);
  return out;
}

bool DecodeCommitWrite(std::string_view payload, CommitWrite* out) {
  if (payload.size() < 8) return false;
  out->addr = dsm::GlobalAddress::Unpack(DecodeFixed64(payload.data()));
  out->value.assign(payload.data() + 8, payload.size() - 8);
  return true;
}

Status WalLogSink::LogCommit(uint64_t txn_id,
                             const std::vector<CommitWrite>& writes) {
  obs::TraceScope span("log.commit", "log.device");
  for (const CommitWrite& w : writes) {
    log::LogRecord rec;
    rec.txn_id = txn_id;
    rec.type = log::LogRecordType::kUpdate;
    rec.payload = EncodeCommitWrite(w);
    wal_->AppendAsync(std::move(rec));
  }
  log::LogRecord commit;
  commit.txn_id = txn_id;
  commit.type = log::LogRecordType::kCommit;
  Result<uint64_t> lsn = wal_->AppendSync(std::move(commit));
  return lsn.ok() ? Status::OK() : lsn.status();
}

Status ReplicatedLogSink::LogCommit(uint64_t txn_id,
                                    const std::vector<CommitWrite>& writes) {
  obs::TraceScope span("log.replicate", "log.device");
  // Batch the txn's updates + commit into one replicated append: one
  // parallel k-way fan-out per commit.
  std::string batch_payload;
  for (const CommitWrite& w : writes) {
    PutLengthPrefixed(&batch_payload, EncodeCommitWrite(w));
  }
  log::LogRecord rec;
  rec.txn_id = txn_id;
  rec.type = log::LogRecordType::kCommit;
  rec.payload = std::move(batch_payload);
  Result<uint64_t> lsn = rlog_->AppendSync(std::move(rec));
  return lsn.ok() ? Status::OK() : lsn.status();
}

}  // namespace dsmdb::txn
