#ifndef DSMDB_TXN_OCC_H_
#define DSMDB_TXN_OCC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "txn/cc_protocol.h"
#include "txn/rdma_lock.h"

namespace dsmdb::txn {

/// Optimistic concurrency control over RDMA (Challenge #6, non-lock-based).
///
/// Read phase records (addr, version); writes are buffered. Commit:
///   1. lock the write set with ONE pipelined CAS batch (async verb
///      engine: ~1 overlapped RTT, NO_WAIT — try-locks cannot deadlock),
///   2. validate the read set by re-reading version words with ONE
///      doorbell-batched read (a core RDMA optimization: validation costs
///      one round trip regardless of read-set size),
///   3. log, then install values + bump versions + unlock as one more
///      pipeline (per-target QP ordering keeps each record's
///      install -> bump -> release sequence intact).
///
/// A read against a direct accessor fuses its header fetch and value fetch
/// into one overlapped round trip.
class OccManager final : public CcManager {
 public:
  OccManager(const CcOptions& options, dsm::DsmClient* dsm,
             DataAccessor* accessor, TimestampOracle* oracle, LogSink* sink);

  std::string_view name() const override { return "occ"; }
  Result<std::unique_ptr<Transaction>> Begin() override;

 private:
  friend class OccTransaction;

  CcOptions options_;
  dsm::DsmClient* dsm_;
  DataAccessor* accessor_;
  TimestampOracle* oracle_;  // unused (kept for interface symmetry)
  LogSink* sink_;
  std::atomic<uint64_t> local_seq_{1};
};

class OccTransaction final : public Transaction {
 public:
  OccTransaction(OccManager* mgr, uint64_t id);
  ~OccTransaction() override;

  Status Read(const RecordRef& ref, std::string* out) override;
  Status Write(const RecordRef& ref, std::string_view value) override;
  Status Commit() override;
  Status Abort() override;

 private:
  struct ReadEntry {
    RecordRef ref;
    uint64_t version;
  };

  /// `conflict_addr` (packed record addr, 0 = unknown) feeds abort heat.
  Status AbortInternal(bool validation, uint64_t conflict_addr = 0);
  /// Releases the given lock words as one pipelined CAS batch.
  void UnlockAddrs(const std::vector<dsm::GlobalAddress>& addrs);
  void UnlockAllWrites();

  OccManager* mgr_;
  RdmaSpinLock spin_;
  std::vector<ReadEntry> reads_;
  std::unordered_map<uint64_t, size_t> read_index_;
  std::vector<CommitWrite> writes_;
  std::vector<uint32_t> write_sizes_;
  std::unordered_map<uint64_t, size_t> write_index_;
  bool finished_ = false;
};

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_OCC_H_
