#include "txn/rdma_lock.h"

#include <algorithm>
#include <thread>

#include "check/checker.h"
#include "common/sim_clock.h"
#include "rt/scheduler.h"
#include "txn/record_format.h"

namespace dsmdb::txn {

void LockBackoff(uint32_t attempt) {
  const uint64_t ns = std::min<uint64_t>(200ULL << std::min(attempt, 6u),
                                         20'000);
  // Backoff is pure waiting: a cooperative task parks and lets sibling
  // transactions (possibly the lock holder) use the core meanwhile.
  rt::SimWait(SimClock::Now() + ns);
  // Give the lock holder a chance to run on few-core hosts.
  if (attempt > 2 && !rt::InTask()) std::this_thread::yield();
}

Status RdmaSpinLock::TryAcquire(dsm::GlobalAddress word, uint64_t ts) {
  Result<uint64_t> prev =
      dsm_->CompareAndSwap(word, 0, MakeExclusiveLock(ts));
  if (!prev.ok()) return prev.status();
  if (*prev != 0) return Status::Busy("lock held");
  return Status::OK();
}

Status RdmaSpinLock::Acquire(dsm::GlobalAddress word, uint64_t ts,
                             uint32_t max_attempts) {
  // A spinning acquisition can deadlock (unlike TryAcquire, whose caller
  // must handle kBusy); lockdep records lock-order edges only for CAS
  // successes inside this scope.
  check::BlockingLockScope blocking;
  for (uint32_t attempt = 0; attempt < max_attempts; attempt++) {
    Status s = TryAcquire(word, ts);
    if (!s.IsBusy()) return s;
    LockBackoff(attempt);
  }
  return Status::TimedOut("lock acquisition exceeded max attempts");
}

Result<uint64_t> RdmaSpinLock::Peek(dsm::GlobalAddress word) {
  uint64_t value = 0;
  DSMDB_RETURN_NOT_OK(dsm_->Read(word, &value, 8));
  return IsExclusive(value) ? LockHolderTs(value) : 0;
}

Status RdmaSpinLock::Release(dsm::GlobalAddress word, uint64_t ts) {
  Result<uint64_t> prev =
      dsm_->CompareAndSwap(word, MakeExclusiveLock(ts), 0);
  if (!prev.ok()) return prev.status();
  if (*prev != MakeExclusiveLock(ts)) {
    return Status::Internal("released a lock not held by this txn");
  }
  return Status::OK();
}

Status RdmaSharedExclusiveLock::TryAcquireShared(dsm::GlobalAddress word,
                                                 uint32_t max_attempts) {
  for (uint32_t attempt = 0; attempt < max_attempts; attempt++) {
    uint64_t cur = 0;
    DSMDB_RETURN_NOT_OK(dsm_->Read(word, &cur, 8));  // RTT #1
    if (IsExclusive(cur)) {
      LockBackoff(attempt);
      continue;
    }
    Result<uint64_t> prev = dsm_->CompareAndSwap(word, cur, cur + 1);
    if (!prev.ok()) return prev.status();            // RTT #2
    if (*prev == cur) return Status::OK();
    LockBackoff(attempt);
  }
  return Status::Busy("shared lock busy");
}

Status RdmaSharedExclusiveLock::ReleaseShared(dsm::GlobalAddress word) {
  Result<uint64_t> prev = dsm_->FetchAndAdd(word, static_cast<uint64_t>(-1));
  if (!prev.ok()) return prev.status();
  if (ReaderCount(*prev) == 0) {
    return Status::Internal("shared release without holders");
  }
  return Status::OK();
}

Status RdmaSharedExclusiveLock::TryAcquireExclusive(dsm::GlobalAddress word,
                                                    uint64_t ts,
                                                    uint32_t max_attempts) {
  for (uint32_t attempt = 0; attempt < max_attempts; attempt++) {
    uint64_t cur = 0;
    DSMDB_RETURN_NOT_OK(dsm_->Read(word, &cur, 8));  // RTT #1
    if (cur != 0) {
      LockBackoff(attempt);
      continue;
    }
    Result<uint64_t> prev =
        dsm_->CompareAndSwap(word, 0, MakeExclusiveLock(ts));  // RTT #2
    if (!prev.ok()) return prev.status();
    if (*prev == 0) return Status::OK();
    LockBackoff(attempt);
  }
  return Status::Busy("exclusive lock busy");
}

Status RdmaSharedExclusiveLock::ReleaseExclusive(dsm::GlobalAddress word,
                                                 uint64_t ts) {
  Result<uint64_t> prev =
      dsm_->CompareAndSwap(word, MakeExclusiveLock(ts), 0);
  if (!prev.ok()) return prev.status();
  if (*prev != MakeExclusiveLock(ts)) {
    return Status::Internal("released an exclusive lock not held");
  }
  return Status::OK();
}

}  // namespace dsmdb::txn
