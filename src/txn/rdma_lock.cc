#include "txn/rdma_lock.h"

#include <algorithm>
#include <thread>

#include "check/checker.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "dsm/lease.h"
#include "rt/scheduler.h"
#include "txn/record_format.h"

namespace dsmdb::txn {

void LockBackoff(uint32_t attempt) {
  const uint64_t ns = std::min<uint64_t>(200ULL << std::min(attempt, 6u),
                                         20'000);
  // Backoff is pure waiting: a cooperative task parks and lets sibling
  // transactions (possibly the lock holder) use the core meanwhile.
  rt::SimWait(SimClock::Now() + ns);
  // Give the lock holder a chance to run on few-core hosts.
  if (attempt > 2 && !rt::InTask()) std::this_thread::yield();
}

bool MaybeReclaimOrphanLock(dsm::DsmClient* dsm, dsm::GlobalAddress word,
                            uint64_t observed) {
  if (!IsExclusive(observed)) return false;
  const uint32_t owner = LockOwnerId(observed);
  if (owner == 0 || owner == dsm->lock_owner_id()) return false;
  dsm::LeaseManager* leases = dsm->lease_manager();
  if (leases == nullptr || !leases->IsExpired(owner)) return false;
  // The reclaim CAS frees a *stranger's* lock word from inside the caller's
  // own (possibly blocking) acquisition loop; classify it as try-lock
  // traffic so lockdep does not read it as this thread's lock ordering.
  check::TryLockScope reclaim_is_trylock;
  Result<uint64_t> prev = dsm->CompareAndSwap(word, observed, 0);
  if (!prev.ok() || *prev != observed) return false;
  static Counter* reclaimed =
      GlobalMetrics().GetCounter("fault.orphan_locks_reclaimed");
  reclaimed->Add(1);
  return true;
}

Status RdmaSpinLock::TryAcquire(dsm::GlobalAddress word, uint64_t ts) {
  const uint64_t locked = MakeExclusiveLock(ts, dsm_->lock_owner_id());
  Result<uint64_t> prev = dsm_->CompareAndSwap(word, 0, locked);
  if (!prev.ok()) return prev.status();
  if (*prev != 0) {
    // Busy — but if the holder's lease expired (crashed compute node), free
    // the orphaned word and take it over in one more CAS.
    if (MaybeReclaimOrphanLock(dsm_, word, *prev)) {
      prev = dsm_->CompareAndSwap(word, 0, locked);
      if (!prev.ok()) return prev.status();
      if (*prev == 0) return Status::OK();
    }
    return Status::Busy("lock held");
  }
  return Status::OK();
}

Status RdmaSpinLock::Acquire(dsm::GlobalAddress word, uint64_t ts,
                             uint32_t max_attempts) {
  // A spinning acquisition can deadlock (unlike TryAcquire, whose caller
  // must handle kBusy); lockdep records lock-order edges only for CAS
  // successes inside this scope.
  check::BlockingLockScope blocking;
  for (uint32_t attempt = 0; attempt < max_attempts; attempt++) {
    Status s = TryAcquire(word, ts);
    if (!s.IsBusy()) return s;
    LockBackoff(attempt);
  }
  return Status::TimedOut("lock acquisition exceeded max attempts");
}

Result<uint64_t> RdmaSpinLock::Peek(dsm::GlobalAddress word) {
  uint64_t value = 0;
  DSMDB_RETURN_NOT_OK(dsm_->Read(word, &value, 8));
  return IsExclusive(value) ? LockHolderTs(value) : 0;
}

Status RdmaSpinLock::Release(dsm::GlobalAddress word, uint64_t ts) {
  const uint64_t locked = MakeExclusiveLock(ts, dsm_->lock_owner_id());
  Result<uint64_t> prev = dsm_->CompareAndSwap(word, locked, 0);
  if (!prev.ok()) return prev.status();
  if (*prev != locked) {
    return Status::Internal("released a lock not held by this txn");
  }
  return Status::OK();
}

Status RdmaSharedExclusiveLock::TryAcquireShared(dsm::GlobalAddress word,
                                                 uint32_t max_attempts) {
  for (uint32_t attempt = 0; attempt < max_attempts; attempt++) {
    uint64_t cur = 0;
    DSMDB_RETURN_NOT_OK(dsm_->Read(word, &cur, 8));  // RTT #1
    if (IsExclusive(cur)) {
      if (!MaybeReclaimOrphanLock(dsm_, word, cur)) LockBackoff(attempt);
      continue;
    }
    Result<uint64_t> prev = dsm_->CompareAndSwap(word, cur, cur + 1);
    if (!prev.ok()) return prev.status();            // RTT #2
    if (*prev == cur) return Status::OK();
    LockBackoff(attempt);
  }
  return Status::Busy("shared lock busy");
}

Status RdmaSharedExclusiveLock::ReleaseShared(dsm::GlobalAddress word) {
  Result<uint64_t> prev = dsm_->FetchAndAdd(word, static_cast<uint64_t>(-1));
  if (!prev.ok()) return prev.status();
  if (ReaderCount(*prev) == 0) {
    return Status::Internal("shared release without holders");
  }
  return Status::OK();
}

Status RdmaSharedExclusiveLock::TryAcquireExclusive(dsm::GlobalAddress word,
                                                    uint64_t ts,
                                                    uint32_t max_attempts) {
  for (uint32_t attempt = 0; attempt < max_attempts; attempt++) {
    uint64_t cur = 0;
    DSMDB_RETURN_NOT_OK(dsm_->Read(word, &cur, 8));  // RTT #1
    if (cur != 0) {
      if (!MaybeReclaimOrphanLock(dsm_, word, cur)) LockBackoff(attempt);
      continue;
    }
    Result<uint64_t> prev = dsm_->CompareAndSwap(
        word, 0, MakeExclusiveLock(ts, dsm_->lock_owner_id()));  // RTT #2
    if (!prev.ok()) return prev.status();
    if (*prev == 0) return Status::OK();
    LockBackoff(attempt);
  }
  return Status::Busy("exclusive lock busy");
}

Status RdmaSharedExclusiveLock::ReleaseExclusive(dsm::GlobalAddress word,
                                                 uint64_t ts) {
  const uint64_t locked = MakeExclusiveLock(ts, dsm_->lock_owner_id());
  Result<uint64_t> prev = dsm_->CompareAndSwap(word, locked, 0);
  if (!prev.ok()) return prev.status();
  if (*prev != locked) {
    return Status::Internal("released an exclusive lock not held");
  }
  return Status::OK();
}

}  // namespace dsmdb::txn
