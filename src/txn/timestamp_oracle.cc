#include "txn/timestamp_oracle.h"

namespace dsmdb::txn {

TimestampOracle::TimestampOracle(dsm::DsmClient* dsm, OracleMode mode,
                                 dsm::GlobalAddress counter)
    : dsm_(dsm), mode_(mode), counter_(counter) {}

Result<uint64_t> TimestampOracle::Next() {
  if (mode_ == OracleMode::kRdmaFaa) {
    Result<uint64_t> prev = dsm_->FetchAndAdd(counter_, 1);
    if (!prev.ok()) return prev.status();
    return *prev + 1;
  }
  // Loosely-synchronized local clock: unique via the node id suffix.
  const uint64_t tick = local_.fetch_add(1, std::memory_order_relaxed);
  return (tick << 10) | (dsm_->self() & 0x3FF);
}

Result<uint64_t> TimestampOracle::Current() {
  if (mode_ == OracleMode::kRdmaFaa) {
    uint64_t value = 0;
    DSMDB_RETURN_NOT_OK(dsm_->Read(counter_, &value, 8));
    return value;
  }
  return (local_.load(std::memory_order_relaxed) << 10) |
         (dsm_->self() & 0x3FF);
}

}  // namespace dsmdb::txn
