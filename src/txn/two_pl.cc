#include "txn/two_pl.h"

#include <cassert>

#include "check/checker.h"
#include "check/history.h"
#include "common/sim_clock.h"
#include "obs/heat_map.h"
#include "obs/trace.h"

namespace dsmdb::txn {

TwoPlManager::TwoPlManager(const CcOptions& options, dsm::DsmClient* dsm,
                           DataAccessor* accessor, TimestampOracle* oracle,
                           LogSink* sink)
    : options_(options),
      dsm_(dsm),
      accessor_(accessor),
      oracle_(oracle),
      sink_(sink) {}

std::string_view TwoPlManager::name() const {
  if (options_.protocol == CcProtocolKind::kTwoPlWaitDie) {
    return options_.lock_mode == TwoPlLockMode::kSharedExclusive
               ? "2pl-waitdie-se"
               : "2pl-waitdie";
  }
  return options_.lock_mode == TwoPlLockMode::kSharedExclusive
             ? "2pl-nowait-se"
             : "2pl-nowait";
}

Result<std::unique_ptr<Transaction>> TwoPlManager::Begin() {
  uint64_t ts;
  if (options_.protocol == CcProtocolKind::kTwoPlWaitDie) {
    // WAIT_DIE needs globally-ordered timestamps.
    assert(oracle_ != nullptr);
    Result<uint64_t> t = oracle_->Next();
    if (!t.ok()) return t.status();
    ts = *t;
  } else {
    // NO_WAIT only needs a unique lock-owner id: node-local, zero RTTs.
    ts = (local_seq_.fetch_add(1, std::memory_order_relaxed) << 10) |
         (dsm_->self() & 0x3FF);
  }
  stats_.begun.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new TwoPlTransaction(this, ts));
}

TwoPlTransaction::TwoPlTransaction(TwoPlManager* mgr, uint64_t ts)
    : mgr_(mgr), spin_(mgr->dsm_), se_(mgr->dsm_) {
  ts_ = ts;
  check::HistTxnBegin(mgr_->name(), ts_);
}

TwoPlTransaction::~TwoPlTransaction() {
  if (!finished_) (void)Abort();
}

bool TwoPlTransaction::PipelinedLocks() const {
  return mgr_->options_.lock_mode == TwoPlLockMode::kExclusiveOnly;
}

void TwoPlTransaction::RegisterLock(const RecordRef& ref, Held held) {
  locks_.push_back(LockEntry{ref, held});
  lock_index_[ref.addr.Pack()] = locks_.size() - 1;
}

Status TwoPlTransaction::WaitDieRetry(const RecordRef& ref, Status busy) {
  Status s = std::move(busy);
  // WAIT_DIE: older (smaller ts) transactions wait; younger die.
  for (uint32_t attempt = 0;
       attempt < mgr_->options_.lock_max_attempts && s.IsBusy();
       attempt++) {
    Result<uint64_t> holder = spin_.Peek(ref.LockWord());
    if (!holder.ok()) return holder.status();
    if (*holder != 0 && ts_ > *holder) break;  // younger: die
    LockBackoff(attempt);
    s = spin_.TryAcquire(ref.LockWord(), ts_);
  }
  return s;
}

Status TwoPlTransaction::EnsureLock(const RecordRef& ref, bool exclusive) {
  const uint64_t key = ref.addr.Pack();
  auto it = lock_index_.find(key);
  const bool se_mode =
      mgr_->options_.lock_mode == TwoPlLockMode::kSharedExclusive;

  if (it != lock_index_.end()) {
    LockEntry& entry = locks_[it->second];
    if (!exclusive || entry.held == Held::kExclusive) return Status::OK();
    // Shared -> exclusive upgrade (SE mode only): succeeds only if we are
    // the sole reader; otherwise abort (waiting risks upgrade deadlock).
    Result<uint64_t> prev = mgr_->dsm_->CompareAndSwap(
        ref.LockWord(), 1,
        MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()));
    if (!prev.ok()) return prev.status();
    if (*prev != 1) return AbortInternal(false, ref.addr.Pack());
    entry.held = Held::kExclusive;
    return Status::OK();
  }

  Status s;
  const uint64_t lock_start = SimClock::Now();
  if (se_mode) {
    s = exclusive ? se_.TryAcquireExclusive(ref.LockWord(), ts_,
                                            mgr_->options_.lock_max_attempts)
                  : se_.TryAcquireShared(ref.LockWord(),
                                         mgr_->options_.lock_max_attempts);
  } else {
    s = spin_.TryAcquire(ref.LockWord(), ts_);
  }

  if (s.IsBusy() &&
      mgr_->options_.protocol == CcProtocolKind::kTwoPlWaitDie &&
      !se_mode) {
    s = WaitDieRetry(ref, std::move(s));
  }

  RecordLockWait(mgr_, SimClock::Now() - lock_start);
  if (s.IsBusy() || s.IsTimedOut()) {
    return AbortInternal(false, ref.addr.Pack());
  }
  if (!s.ok()) return s;

  RegisterLock(ref, exclusive ? Held::kExclusive : Held::kShared);
  return Status::OK();
}

Status TwoPlTransaction::Read(const RecordRef& ref, std::string* out) {
  assert(!finished_);
  auto wit = write_index_.find(ref.addr.Pack());
  if (wit != write_index_.end()) {
    *out = writes_[wit->second].value;  // read-your-writes
    return Status::OK();
  }
  const bool se_mode =
      mgr_->options_.lock_mode == TwoPlLockMode::kSharedExclusive;

  // Fast path: fuse the lock CAS with a speculative value fetch in one
  // pipeline (the value is valid iff the CAS acquired the lock, since the
  // real read executes after the real CAS). Saves a full RTT per read.
  if (!se_mode && lock_index_.find(ref.addr.Pack()) == lock_index_.end() &&
      mgr_->accessor_->direct() == mgr_->dsm_) {
    const uint64_t lock_start = SimClock::Now();
    out->resize(ref.value_size);
    dsm::DsmPipeline pipe(mgr_->dsm_);
    const rdma::WrId cas = pipe.Cas(
        ref.LockWord(), 0,
        MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()));
    {
      // Speculative fetch: the bytes are used only if the CAS won (QP
      // order runs the read after the CAS) and re-read otherwise, so the
      // checker must not book it as a data access.
      check::OptimisticScope opt("2pl.fused_read");
      pipe.Read(ref.Value(), out->data(), ref.value_size);
    }
    DSMDB_RETURN_NOT_OK(pipe.WaitAll());
    Status s = pipe.value(cas) == 0 ? Status::OK() : Status::Busy("locked");
    if (s.IsBusy()) {
      // A crashed peer's orphaned lock: free it now so the workload-level
      // retry of this transaction goes through.
      (void)MaybeReclaimOrphanLock(mgr_->dsm_, ref.LockWord(),
                                   pipe.value(cas));
    }
    if (s.IsBusy() &&
        mgr_->options_.protocol == CcProtocolKind::kTwoPlWaitDie) {
      s = WaitDieRetry(ref, std::move(s));
    }
    RecordLockWait(mgr_, SimClock::Now() - lock_start);
    if (s.IsBusy() || s.IsTimedOut()) {
      return AbortInternal(false, ref.addr.Pack());
    }
    if (!s.ok()) return s;
    RegisterLock(ref, Held::kExclusive);
    if (pipe.value(cas) != 0) {
      // Lock won only after waiting: the speculative bytes are stale.
      DSMDB_RETURN_NOT_OK(mgr_->accessor_->ReadValue(ref.Value(), out->data(),
                                                     ref.value_size));
    }
    // The read is attributed under the lock: no install can be concurrent,
    // so the record's current install count is the version observed.
    check::HistRead(ref.addr.Pack(), check::kVersionTagAuto);
#if defined(DSMDB_CHECK_ENABLED)
    DebugMaybeReleaseReadLockEarly(ref);
#endif
    return Status::OK();
  }

  DSMDB_RETURN_NOT_OK(EnsureLock(ref, /*exclusive=*/!se_mode));
  out->resize(ref.value_size);
  DSMDB_RETURN_NOT_OK(mgr_->accessor_->ReadValue(ref.Value(), out->data(),
                                                 ref.value_size));
  check::HistRead(ref.addr.Pack(), check::kVersionTagAuto);
#if defined(DSMDB_CHECK_ENABLED)
  DebugMaybeReleaseReadLockEarly(ref);
#endif
  return Status::OK();
}

Status TwoPlTransaction::Write(const RecordRef& ref,
                               std::string_view value) {
  assert(!finished_);
  if (value.size() != ref.value_size) {
    return Status::InvalidArgument("value size mismatch");
  }
  const uint64_t key = ref.addr.Pack();
  // Blind writes defer their lock CAS to the commit pipeline; a record we
  // already locked (e.g. read first) needs nothing more.
  const bool defer = mgr_->options_.defer_write_locks && PipelinedLocks() &&
                     lock_index_.find(key) == lock_index_.end();
  if (!defer) {
    DSMDB_RETURN_NOT_OK(EnsureLock(ref, /*exclusive=*/true));
  }
  auto it = write_index_.find(key);
  if (it != write_index_.end()) {
    writes_[it->second].value.assign(value);
  } else {
    writes_.push_back(CommitWrite{ref.addr, std::string(value)});
    write_index_[key] = writes_.size() - 1;
  }
  return Status::OK();
}

Status TwoPlTransaction::Prepare() {
  assert(!finished_);
  return AcquireDeferredLocks();
}

Status TwoPlTransaction::AcquireDeferredLocks() {
  if (!(mgr_->options_.defer_write_locks && PipelinedLocks())) {
    return Status::OK();
  }
  std::vector<RecordRef> need;
  for (const CommitWrite& w : writes_) {
    if (lock_index_.find(w.addr.Pack()) == lock_index_.end()) {
      need.push_back(
          RecordRef{w.addr, static_cast<uint32_t>(w.value.size())});
    }
  }
  if (need.empty()) return Status::OK();

  // One CAS pipeline for every missing write lock: ~1 RTT, not n.
  const uint64_t lock_start = SimClock::Now();
  dsm::DsmPipeline pipe(mgr_->dsm_);
  std::vector<rdma::WrId> ids;
  ids.reserve(need.size());
  for (const RecordRef& ref : need) {
    ids.push_back(pipe.Cas(ref.LockWord(), 0,
                           MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id())));
  }
  (void)pipe.WaitAll();
  Status err;
  std::vector<RecordRef> busy;
  for (size_t i = 0; i < need.size(); i++) {
    const Status& s = pipe.status(ids[i]);
    if (!s.ok()) {
      if (err.ok()) err = s;  // e.g. memory node down
    } else if (pipe.value(ids[i]) == 0) {
      RegisterLock(need[i], Held::kExclusive);
    } else {
      // Free an orphaned holder so the retried transaction can win.
      (void)MaybeReclaimOrphanLock(mgr_->dsm_, need[i].LockWord(),
                                   pipe.value(ids[i]));
      busy.push_back(need[i]);
    }
  }
  if (!err.ok()) {
    RecordLockWait(mgr_, SimClock::Now() - lock_start);
    return err;
  }
  if (!busy.empty() &&
      mgr_->options_.protocol == CcProtocolKind::kTwoPlWaitDie) {
    for (const RecordRef& ref : busy) {
      Status s = WaitDieRetry(ref, Status::Busy("locked"));
      if (s.IsBusy() || s.IsTimedOut()) {
        RecordLockWait(mgr_, SimClock::Now() - lock_start);
        return AbortInternal(false, ref.addr.Pack());
      }
      if (!s.ok()) return s;
      RegisterLock(ref, Held::kExclusive);
    }
    busy.clear();
  }
  RecordLockWait(mgr_, SimClock::Now() - lock_start);
  if (!busy.empty()) {  // NO_WAIT: conflict
    return AbortInternal(false, busy.front().addr.Pack());
  }
  return Status::OK();
}

Status TwoPlTransaction::Commit() {
  assert(!finished_);
  obs::TraceScope span("txn.commit", "txn");
  // Deferred write locks first: the serialization point needs all locks.
  Status s = AcquireDeferredLocks();
  if (!s.ok()) return s;
  // Write-ahead: durable log, then install, then release (strict 2PL).
  s = mgr_->sink_->LogCommit(ts_, writes_);
  if (!s.ok()) {
    (void)AbortInternal(false);
    return s;
  }
  if (PipelinedLocks() && mgr_->accessor_->direct() == mgr_->dsm_) {
    // Install writes and release locks as one pipeline. Per-record
    // install-before-release order is preserved: ops to one target
    // complete in posting order, and the real stores execute at post time.
    dsm::DsmPipeline pipe(mgr_->dsm_);
    for (const CommitWrite& w : writes_) {
      RecordRef ref{w.addr, static_cast<uint32_t>(w.value.size())};
      // Recorded before posting, under the exclusive lock: the history's
      // per-record install order is the real version order.
      check::HistInstall(w.addr.Pack(), check::kVersionTagAuto);
      pipe.Write(ref.Value(), w.value.data(), w.value.size());
    }
    for (const LockEntry& entry : locks_) {
      pipe.Cas(entry.ref.LockWord(),
               MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()), 0);
    }
    s = pipe.WaitAll();  // e.g. memory node crashed mid-install
    locks_.clear();
    lock_index_.clear();
  } else {
    for (const CommitWrite& w : writes_) {
      RecordRef ref{w.addr, static_cast<uint32_t>(w.value.size())};
      check::HistInstall(w.addr.Pack(), check::kVersionTagAuto);
      s = mgr_->accessor_->WriteValue(ref.Value(), w.value.data(),
                                      w.value.size());
      if (!s.ok()) break;  // e.g. memory node crashed mid-install
    }
    ReleaseAll();
  }
  if (!s.ok()) {
    finished_ = true;
    mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(mgr_, false);
    check::HistTxnAbort();  // installs already recorded -> in-doubt
    return s;
  }
  finished_ = true;
  mgr_->stats_.committed.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, true);
  check::HistTxnCommit();
  return Status::OK();
}

Status TwoPlTransaction::Abort() {
  if (finished_) return Status::OK();
  ReleaseAll();
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  check::HistTxnAbort();
  return Status::OK();
}

Status TwoPlTransaction::AbortInternal(bool validation,
                                       uint64_t conflict_addr) {
  ReleaseAll();
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  if (validation) {
    mgr_->stats_.validation_aborts.fetch_add(1, std::memory_order_relaxed);
  } else {
    mgr_->stats_.lock_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  if (conflict_addr != 0 && obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kAbort,
                                              conflict_addr);
  }
  check::HistTxnAbort();
  return Status::Aborted("2pl conflict");
}

#if defined(DSMDB_CHECK_ENABLED)
void TwoPlTransaction::DebugMaybeReleaseReadLockEarly(const RecordRef& ref) {
  if (!mgr_->options_.debug_break.release_read_locks_early) return;
  const uint64_t key = ref.addr.Pack();
  if (write_index_.count(key) != 0) return;  // keep locks covering writes
  auto it = lock_index_.find(key);
  if (it == lock_index_.end()) return;
  const size_t idx = it->second;
  const LockEntry entry = locks_[idx];
  if (mgr_->options_.lock_mode == TwoPlLockMode::kSharedExclusive) {
    if (entry.held == Held::kExclusive) {
      (void)se_.ReleaseExclusive(entry.ref.LockWord(), ts_);
    } else {
      (void)se_.ReleaseShared(entry.ref.LockWord());
    }
  } else {
    (void)spin_.Release(entry.ref.LockWord(), ts_);
  }
  locks_.erase(locks_.begin() + idx);
  lock_index_.clear();
  for (size_t i = 0; i < locks_.size(); i++) {
    lock_index_[locks_[i].ref.addr.Pack()] = i;
  }
}
#endif

void TwoPlTransaction::ReleaseAll() {
  const bool se_mode =
      mgr_->options_.lock_mode == TwoPlLockMode::kSharedExclusive;
  for (const LockEntry& entry : locks_) {
    if (se_mode) {
      if (entry.held == Held::kExclusive) {
        (void)se_.ReleaseExclusive(entry.ref.LockWord(), ts_);
      } else {
        (void)se_.ReleaseShared(entry.ref.LockWord());
      }
    } else {
      (void)spin_.Release(entry.ref.LockWord(), ts_);
    }
  }
  locks_.clear();
  lock_index_.clear();
}

}  // namespace dsmdb::txn
