#include "txn/two_pl.h"

#include <cassert>

#include "common/sim_clock.h"
#include "obs/trace.h"

namespace dsmdb::txn {

TwoPlManager::TwoPlManager(const CcOptions& options, dsm::DsmClient* dsm,
                           DataAccessor* accessor, TimestampOracle* oracle,
                           LogSink* sink)
    : options_(options),
      dsm_(dsm),
      accessor_(accessor),
      oracle_(oracle),
      sink_(sink) {}

std::string_view TwoPlManager::name() const {
  if (options_.protocol == CcProtocolKind::kTwoPlWaitDie) {
    return options_.lock_mode == TwoPlLockMode::kSharedExclusive
               ? "2pl-waitdie-se"
               : "2pl-waitdie";
  }
  return options_.lock_mode == TwoPlLockMode::kSharedExclusive
             ? "2pl-nowait-se"
             : "2pl-nowait";
}

Result<std::unique_ptr<Transaction>> TwoPlManager::Begin() {
  uint64_t ts;
  if (options_.protocol == CcProtocolKind::kTwoPlWaitDie) {
    // WAIT_DIE needs globally-ordered timestamps.
    assert(oracle_ != nullptr);
    Result<uint64_t> t = oracle_->Next();
    if (!t.ok()) return t.status();
    ts = *t;
  } else {
    // NO_WAIT only needs a unique lock-owner id: node-local, zero RTTs.
    ts = (local_seq_.fetch_add(1, std::memory_order_relaxed) << 10) |
         (dsm_->self() & 0x3FF);
  }
  stats_.begun.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new TwoPlTransaction(this, ts));
}

TwoPlTransaction::TwoPlTransaction(TwoPlManager* mgr, uint64_t ts)
    : mgr_(mgr), spin_(mgr->dsm_), se_(mgr->dsm_) {
  ts_ = ts;
}

TwoPlTransaction::~TwoPlTransaction() {
  if (!finished_) (void)Abort();
}

Status TwoPlTransaction::EnsureLock(const RecordRef& ref, bool exclusive) {
  const uint64_t key = ref.addr.Pack();
  auto it = lock_index_.find(key);
  const bool se_mode =
      mgr_->options_.lock_mode == TwoPlLockMode::kSharedExclusive;

  if (it != lock_index_.end()) {
    LockEntry& entry = locks_[it->second];
    if (!exclusive || entry.held == Held::kExclusive) return Status::OK();
    // Shared -> exclusive upgrade (SE mode only): succeeds only if we are
    // the sole reader; otherwise abort (waiting risks upgrade deadlock).
    Result<uint64_t> prev = mgr_->dsm_->CompareAndSwap(
        ref.LockWord(), 1, MakeExclusiveLock(ts_));
    if (!prev.ok()) return prev.status();
    if (*prev != 1) return AbortInternal(false);
    entry.held = Held::kExclusive;
    return Status::OK();
  }

  Status s;
  const uint64_t lock_start = SimClock::Now();
  if (se_mode) {
    s = exclusive ? se_.TryAcquireExclusive(ref.LockWord(), ts_,
                                            mgr_->options_.lock_max_attempts)
                  : se_.TryAcquireShared(ref.LockWord(),
                                         mgr_->options_.lock_max_attempts);
  } else {
    s = spin_.TryAcquire(ref.LockWord(), ts_);
  }

  if (s.IsBusy() &&
      mgr_->options_.protocol == CcProtocolKind::kTwoPlWaitDie &&
      !se_mode) {
    // WAIT_DIE: older (smaller ts) transactions wait; younger die.
    for (uint32_t attempt = 0;
         attempt < mgr_->options_.lock_max_attempts && s.IsBusy();
         attempt++) {
      Result<uint64_t> holder = spin_.Peek(ref.LockWord());
      if (!holder.ok()) return holder.status();
      if (*holder != 0 && ts_ > *holder) break;  // younger: die
      LockBackoff(attempt);
      s = spin_.TryAcquire(ref.LockWord(), ts_);
    }
  }

  RecordLockWait(mgr_, SimClock::Now() - lock_start);
  if (s.IsBusy() || s.IsTimedOut()) return AbortInternal(false);
  if (!s.ok()) return s;

  locks_.push_back(
      LockEntry{ref, exclusive ? Held::kExclusive : Held::kShared});
  lock_index_[key] = locks_.size() - 1;
  return Status::OK();
}

Status TwoPlTransaction::Read(const RecordRef& ref, std::string* out) {
  assert(!finished_);
  auto wit = write_index_.find(ref.addr.Pack());
  if (wit != write_index_.end()) {
    *out = writes_[wit->second].value;  // read-your-writes
    return Status::OK();
  }
  const bool se_mode =
      mgr_->options_.lock_mode == TwoPlLockMode::kSharedExclusive;
  DSMDB_RETURN_NOT_OK(EnsureLock(ref, /*exclusive=*/!se_mode));
  out->resize(ref.value_size);
  return mgr_->accessor_->ReadValue(ref.Value(), out->data(),
                                    ref.value_size);
}

Status TwoPlTransaction::Write(const RecordRef& ref,
                               std::string_view value) {
  assert(!finished_);
  if (value.size() != ref.value_size) {
    return Status::InvalidArgument("value size mismatch");
  }
  DSMDB_RETURN_NOT_OK(EnsureLock(ref, /*exclusive=*/true));
  const uint64_t key = ref.addr.Pack();
  auto it = write_index_.find(key);
  if (it != write_index_.end()) {
    writes_[it->second].value.assign(value);
  } else {
    writes_.push_back(CommitWrite{ref.addr, std::string(value)});
    write_index_[key] = writes_.size() - 1;
  }
  return Status::OK();
}

Status TwoPlTransaction::Commit() {
  assert(!finished_);
  obs::TraceScope span("txn.commit", "txn");
  // Write-ahead: durable log, then install, then release (strict 2PL).
  Status s = mgr_->sink_->LogCommit(ts_, writes_);
  if (!s.ok()) {
    (void)AbortInternal(false);
    return s;
  }
  for (const CommitWrite& w : writes_) {
    RecordRef ref{w.addr, static_cast<uint32_t>(w.value.size())};
    s = mgr_->accessor_->WriteValue(ref.Value(), w.value.data(),
                                    w.value.size());
    if (!s.ok()) break;  // e.g. memory node crashed mid-install
  }
  ReleaseAll();
  if (!s.ok()) {
    finished_ = true;
    mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(mgr_, false);
    return s;
  }
  finished_ = true;
  mgr_->stats_.committed.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, true);
  return Status::OK();
}

Status TwoPlTransaction::Abort() {
  if (finished_) return Status::OK();
  ReleaseAll();
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  return Status::OK();
}

Status TwoPlTransaction::AbortInternal(bool validation) {
  ReleaseAll();
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  if (validation) {
    mgr_->stats_.validation_aborts.fetch_add(1, std::memory_order_relaxed);
  } else {
    mgr_->stats_.lock_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Aborted("2pl conflict");
}

void TwoPlTransaction::ReleaseAll() {
  const bool se_mode =
      mgr_->options_.lock_mode == TwoPlLockMode::kSharedExclusive;
  for (const LockEntry& entry : locks_) {
    if (se_mode) {
      if (entry.held == Held::kExclusive) {
        (void)se_.ReleaseExclusive(entry.ref.LockWord(), ts_);
      } else {
        (void)se_.ReleaseShared(entry.ref.LockWord());
      }
    } else {
      (void)spin_.Release(entry.ref.LockWord(), ts_);
    }
  }
  locks_.clear();
  lock_index_.clear();
}

}  // namespace dsmdb::txn
