#include "txn/occ.h"

#include <algorithm>
#include <cassert>

#include "check/checker.h"
#include "check/history.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "obs/heat_map.h"
#include "obs/trace.h"
#include "txn/rdma_lock.h"

namespace dsmdb::txn {

OccManager::OccManager(const CcOptions& options, dsm::DsmClient* dsm,
                       DataAccessor* accessor, TimestampOracle* oracle,
                       LogSink* sink)
    : options_(options),
      dsm_(dsm),
      accessor_(accessor),
      oracle_(oracle),
      sink_(sink) {}

Result<std::unique_ptr<Transaction>> OccManager::Begin() {
  const uint64_t id =
      (local_seq_.fetch_add(1, std::memory_order_relaxed) << 10) |
      (dsm_->self() & 0x3FF);
  stats_.begun.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new OccTransaction(this, id));
}

OccTransaction::OccTransaction(OccManager* mgr, uint64_t id)
    : mgr_(mgr), spin_(mgr->dsm_) {
  ts_ = id;
  check::HistTxnBegin(mgr_->name(), ts_);
}

OccTransaction::~OccTransaction() {
  if (!finished_) (void)Abort();
}

Status OccTransaction::Read(const RecordRef& ref, std::string* out) {
  assert(!finished_);
  auto wit = write_index_.find(ref.addr.Pack());
  if (wit != write_index_.end()) {
    *out = writes_[wit->second].value;
    return Status::OK();
  }
  // Record the version, then read the value; any interleaving writer is
  // caught by commit-time validation (version or lock word changed).
  char header[16];
  out->resize(ref.value_size);
  {
    // Optimistic by design: commit-time validation re-checks the header,
    // so these reads are not data accesses to the checker (the header
    // words are sync vars and still contribute happens-before joins).
    check::OptimisticScope opt("occ.read");
    if (mgr_->accessor_->direct() == mgr_->dsm_) {
      // Fused: header and value fetched in one overlapped round trip.
      dsm::DsmPipeline pipe(mgr_->dsm_);
      pipe.Read(ref.addr, header, sizeof(header));
      pipe.Read(ref.Value(), out->data(), ref.value_size);
      DSMDB_RETURN_NOT_OK(pipe.WaitAll());
    } else {
      DSMDB_RETURN_NOT_OK(
          mgr_->dsm_->Read(ref.addr, header, sizeof(header)));
      DSMDB_RETURN_NOT_OK(mgr_->accessor_->ReadValue(
          ref.Value(), out->data(), ref.value_size));
    }
  }
  const uint64_t version = DecodeFixed64(header + 8);

  const uint64_t key = ref.addr.Pack();
  auto it = read_index_.find(key);
  if (it == read_index_.end()) {
    reads_.push_back(ReadEntry{ref, version});
    read_index_[key] = reads_.size() - 1;
    // OCC's version word counts installs from 0, so the observed count is
    // directly the history's version index for this record.
    check::HistRead(key, version);
  }
  return Status::OK();
}

Status OccTransaction::Write(const RecordRef& ref, std::string_view value) {
  assert(!finished_);
  if (value.size() != ref.value_size) {
    return Status::InvalidArgument("value size mismatch");
  }
  const uint64_t key = ref.addr.Pack();
  auto it = write_index_.find(key);
  if (it != write_index_.end()) {
    writes_[it->second].value.assign(value);
  } else {
    writes_.push_back(CommitWrite{ref.addr, std::string(value)});
    write_sizes_.push_back(ref.value_size);
    write_index_[key] = writes_.size() - 1;
  }
  return Status::OK();
}

void OccTransaction::UnlockAddrs(
    const std::vector<dsm::GlobalAddress>& addrs) {
  if (addrs.empty()) return;
  dsm::DsmPipeline pipe(mgr_->dsm_);
  for (dsm::GlobalAddress a : addrs) {
    pipe.Cas(a, MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()), 0);
  }
  (void)pipe.WaitAll();
}

void OccTransaction::UnlockAllWrites() {
  std::vector<dsm::GlobalAddress> addrs;
  addrs.reserve(writes_.size());
  for (const CommitWrite& w : writes_) addrs.push_back(w.addr);
  UnlockAddrs(addrs);
}

Status OccTransaction::Commit() {
  assert(!finished_);
  obs::TraceScope span("txn.commit", "txn");

  // Phase 1: lock the write set as one pipelined CAS batch (~1 overlapped
  // RTT + n postings). Try-locks cannot deadlock, so no acquisition order
  // is needed; addresses are still sorted for deterministic traffic.
  std::vector<size_t> order(writes_.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return writes_[a].addr.Pack() < writes_[b].addr.Pack();
  });
  const uint64_t lock_start = SimClock::Now();
  if (!writes_.empty()) {
    dsm::DsmPipeline pipe(mgr_->dsm_);
    std::vector<rdma::WrId> wr(order.size());
    for (size_t i = 0; i < order.size(); i++) {
      wr[i] = pipe.Cas(writes_[order[i]].addr, 0,
                       MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()));
    }
    (void)pipe.WaitAll();
    std::vector<dsm::GlobalAddress> acquired;
    acquired.reserve(order.size());
    Status err;
    bool busy = false;
    uint64_t busy_addr = 0;
    for (size_t i = 0; i < order.size(); i++) {
      const Status& s = pipe.status(wr[i]);
      if (s.ok() && pipe.value(wr[i]) == 0) {
        acquired.push_back(writes_[order[i]].addr);
      } else if (s.ok()) {
        busy = true;  // lock word was held by another committer
        if (busy_addr == 0) busy_addr = writes_[order[i]].addr.Pack();
        // Free an orphaned holder so the retried transaction can win.
        (void)MaybeReclaimOrphanLock(mgr_->dsm_, writes_[order[i]].addr,
                                     pipe.value(wr[i]));
      } else if (err.ok()) {
        err = s;
      }
    }
    if (!err.ok() || busy) {
      UnlockAddrs(acquired);
      if (!err.ok()) return err;
      RecordLockWait(mgr_, SimClock::Now() - lock_start);
      return AbortInternal(false, busy_addr);
    }
  }
  RecordLockWait(mgr_, SimClock::Now() - lock_start);

  // Phase 2: validate the read set with ONE doorbell-batched header read.
  if (!reads_.empty()) {
    std::vector<char> scratch(reads_.size() * 16);
    std::vector<dsm::DsmBatchOp> batch;
    batch.reserve(reads_.size());
    for (size_t i = 0; i < reads_.size(); i++) {
      batch.push_back(
          dsm::DsmBatchOp{reads_[i].ref.addr, scratch.data() + 16 * i, 16});
    }
    Status s = mgr_->dsm_->ReadBatch(batch);
    if (!s.ok()) {
      UnlockAllWrites();
      return s;
    }
    for (size_t i = 0; i < reads_.size(); i++) {
      const uint64_t lock_word = DecodeFixed64(scratch.data() + 16 * i);
      const uint64_t version = DecodeFixed64(scratch.data() + 16 * i + 8);
      const bool mine =
          write_index_.contains(reads_[i].ref.addr.Pack());
      const bool lock_ok =
          lock_word == 0 ||
          (mine && lock_word ==
                       MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()));
      bool version_ok = version == reads_[i].version;
#if defined(DSMDB_CHECK_ENABLED)
      // Oracle self-test bug: validate locks but trust stale versions.
      if (mgr_->options_.debug_break.skip_version_recheck) version_ok = true;
#endif
      if (!lock_ok || !version_ok) {
        UnlockAllWrites();
        return AbortInternal(true, reads_[i].ref.addr.Pack());
      }
    }
  }

  // Phase 3: write-ahead log.
  Status s = mgr_->sink_->LogCommit(ts_, writes_);
  if (!s.ok()) {
    UnlockAllWrites();
    (void)AbortInternal(false);
    return s;
  }

  // Phase 4: install values, bump versions, unlock. With a direct
  // accessor all 3n verbs go out as one pipeline; per-target QP ordering
  // keeps each record's install -> bump -> release sequence intact.
  if (mgr_->accessor_->direct() == mgr_->dsm_) {
    dsm::DsmPipeline pipe(mgr_->dsm_);
    for (size_t i = 0; i < writes_.size(); i++) {
      const CommitWrite& w = writes_[i];
      RecordRef ref{w.addr, write_sizes_[i]};
      // Recorded before posting, under the write lock won in phase 1.
      check::HistInstall(w.addr.Pack(), check::kVersionTagAuto);
      pipe.Write(ref.Value(), w.value.data(), w.value.size());
      pipe.Faa(ref.VersionWord(), 1);
      pipe.Cas(ref.LockWord(),
               MakeExclusiveLock(ts_, mgr_->dsm_->lock_owner_id()), 0);
    }
    s = pipe.WaitAll();
  } else {
    for (size_t i = 0; i < writes_.size(); i++) {
      const CommitWrite& w = writes_[i];
      RecordRef ref{w.addr, write_sizes_[i]};
      check::HistInstall(w.addr.Pack(), check::kVersionTagAuto);
      s = mgr_->accessor_->WriteValue(ref.Value(), w.value.data(),
                                      w.value.size());
      if (!s.ok()) break;
      Result<uint64_t> bumped =
          mgr_->dsm_->FetchAndAdd(ref.VersionWord(), 1);
      if (!bumped.ok()) {
        s = bumped.status();
        break;
      }
    }
    UnlockAllWrites();
  }
  finished_ = true;
  if (!s.ok()) {
    mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
    RecordOutcome(mgr_, false);
    check::HistTxnAbort();  // installs already recorded -> in-doubt
    return s;
  }
  mgr_->stats_.committed.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, true);
  check::HistTxnCommit();
  return Status::OK();
}

Status OccTransaction::Abort() {
  if (finished_) return Status::OK();
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  check::HistTxnAbort();
  return Status::OK();
}

Status OccTransaction::AbortInternal(bool validation,
                                     uint64_t conflict_addr) {
  finished_ = true;
  mgr_->stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(mgr_, false);
  if (validation) {
    mgr_->stats_.validation_aborts.fetch_add(1, std::memory_order_relaxed);
  } else {
    mgr_->stats_.lock_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  if (conflict_addr != 0 && obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kAbort,
                                              conflict_addr);
  }
  check::HistTxnAbort();
  return Status::Aborted("occ conflict");
}

}  // namespace dsmdb::txn
