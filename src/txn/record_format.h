#ifndef DSMDB_TXN_RECORD_FORMAT_H_
#define DSMDB_TXN_RECORD_FORMAT_H_

#include <cstdint>

#include "dsm/gaddr.h"

namespace dsmdb::txn {

/// On-DSM record layout, shared by every CC protocol (as in Sherman/RACE,
/// locks live *in the data* so they are reachable with one-sided verbs):
///
///   offset 0   : 8-byte lock word    (RDMA CAS target)
///   offset 8   : 8-byte version word (protocol-specific: OCC version,
///                TSO rts|wts, MVCC packed head pointer)
///   offset 16  : value bytes
///
/// Lock word encoding: 0 = free; otherwise bit 63 set (exclusive) with the
/// holder's timestamp/id in bits 0..47, or a positive reader count for the
/// shared-exclusive lock.
struct RecordRef {
  dsm::GlobalAddress addr;  ///< Base of the record (lock word).
  uint32_t value_size = 0;

  dsm::GlobalAddress LockWord() const { return addr; }
  dsm::GlobalAddress VersionWord() const { return addr.Plus(8); }
  dsm::GlobalAddress Value() const { return addr.Plus(16); }
};

inline constexpr uint64_t kRecordHeaderBytes = 16;

/// Total bytes a record of `value_size` occupies (8-byte aligned).
inline constexpr uint64_t RecordStride(uint32_t value_size) {
  return kRecordHeaderBytes + ((value_size + 7ULL) & ~7ULL);
}

// Lock word encoding helpers.
//
// Exclusive words carry the holder's *owner id* (compute-node fabric id + 1,
// 0 = unknown/legacy) in bits 48..58 so a peer that finds a stuck lock can
// look up the holder's lease and CAS-reclaim the word if the lease expired
// (orphan-lock recovery, DESIGN.md §11). Bit 63 stays the exclusive marker
// so the DSMDB_CHECK lockdep heuristics keep working unchanged.
inline constexpr uint64_t kLockExclusiveBit = 1ULL << 63;
inline constexpr uint64_t kLockTsMask = (1ULL << 48) - 1;
inline constexpr uint64_t kLockOwnerShift = 48;
inline constexpr uint64_t kLockOwnerMask = (1ULL << 11) - 1;

inline constexpr uint64_t MakeExclusiveLock(uint64_t ts, uint32_t owner = 0) {
  return kLockExclusiveBit |
         ((static_cast<uint64_t>(owner) & kLockOwnerMask) << kLockOwnerShift) |
         (ts & kLockTsMask);
}
inline constexpr bool IsExclusive(uint64_t word) {
  return (word & kLockExclusiveBit) != 0;
}
inline constexpr uint64_t LockHolderTs(uint64_t word) {
  return word & kLockTsMask;
}
/// Owner id packed into an exclusive lock word: compute-node fabric id + 1,
/// or 0 when the lock was taken without owner identity (no lease reclaim).
inline constexpr uint32_t LockOwnerId(uint64_t word) {
  return static_cast<uint32_t>((word >> kLockOwnerShift) & kLockOwnerMask);
}
/// Shared-exclusive lock: non-exclusive words are reader counts.
inline constexpr uint64_t ReaderCount(uint64_t word) {
  return IsExclusive(word) ? 0 : word;
}

// TSO version word: rts (high 32) | wts (low 32).
inline constexpr uint64_t PackTso(uint32_t rts, uint32_t wts) {
  return (static_cast<uint64_t>(rts) << 32) | wts;
}
inline constexpr uint32_t TsoRts(uint64_t word) {
  return static_cast<uint32_t>(word >> 32);
}
inline constexpr uint32_t TsoWts(uint64_t word) {
  return static_cast<uint32_t>(word);
}

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_RECORD_FORMAT_H_
