#ifndef DSMDB_TXN_TIMESTAMP_ORACLE_H_
#define DSMDB_TXN_TIMESTAMP_ORACLE_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"

namespace dsmdb::txn {

/// How transaction timestamps are generated (Challenge #6: "how to
/// generate timestamps ... One-sided RDMA (RDMA Fetch & Add) is more
/// preferable than two-sided RDMA in case the centralized timestamp
/// generator becomes a bottleneck").
enum class OracleMode {
  /// Centralized counter in DSM bumped with one-sided FAA (1 RTT/ts).
  kRdmaFaa,
  /// Loosely-synchronized per-node clocks [61]: ts = local counter with
  /// the node id in the low bits — zero RTTs, but only *approximately*
  /// ordered across nodes.
  kLocalClock,
};

/// Global timestamp oracle. One instance per compute node; all instances
/// in kRdmaFaa mode share the counter word at a well-known DSM address.
class TimestampOracle {
 public:
  /// `counter` must be an 8-byte-aligned word in DSM (all nodes pass the
  /// same address); ignored in kLocalClock mode.
  TimestampOracle(dsm::DsmClient* dsm, OracleMode mode,
                  dsm::GlobalAddress counter);

  /// Next globally-unique timestamp (> all previously returned here).
  Result<uint64_t> Next();

  /// A recent upper bound on issued timestamps (for MVCC read snapshots).
  Result<uint64_t> Current();

  OracleMode mode() const { return mode_; }

  /// The canonical counter location: the first reserved word of memory
  /// node 0's region (never handed out by the allocator).
  static dsm::GlobalAddress DefaultCounter() {
    return dsm::GlobalAddress{0, 8};
  }

 private:
  dsm::DsmClient* dsm_;
  OracleMode mode_;
  dsm::GlobalAddress counter_;
  std::atomic<uint64_t> local_{1};
};

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_TIMESTAMP_ORACLE_H_
