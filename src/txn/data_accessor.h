#ifndef DSMDB_TXN_DATA_ACCESSOR_H_
#define DSMDB_TXN_DATA_ACCESSOR_H_

#include "buffer/buffer_pool.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"

namespace dsmdb::txn {

/// How a CC protocol touches record *values*. Lock and version words are
/// always accessed with direct one-sided verbs (they must be CAS-able and
/// never stale); values can either go straight to remote memory
/// (Figure 3a) or through the compute node's buffer pool (Figures 3b/3c).
class DataAccessor {
 public:
  virtual ~DataAccessor() = default;
  virtual Status ReadValue(dsm::GlobalAddress addr, void* out,
                           size_t len) = 0;
  virtual Status WriteValue(dsm::GlobalAddress addr, const void* src,
                            size_t len) = 0;

  /// Non-null iff values are plain one-sided verbs on this client — i.e.
  /// value ops may be posted into an async pipeline alongside lock/version
  /// ops. Cached access (buffer pool, coherence hooks) must stay on the
  /// synchronous path.
  virtual dsm::DsmClient* direct() { return nullptr; }
};

/// Figure 3a: every value access is a remote one-sided verb.
class DirectAccessor final : public DataAccessor {
 public:
  explicit DirectAccessor(dsm::DsmClient* dsm) : dsm_(dsm) {}
  Status ReadValue(dsm::GlobalAddress addr, void* out, size_t len) override {
    return dsm_->Read(addr, out, len);
  }
  Status WriteValue(dsm::GlobalAddress addr, const void* src,
                    size_t len) override {
    return dsm_->Write(addr, src, len);
  }
  dsm::DsmClient* direct() override { return dsm_; }

 private:
  dsm::DsmClient* dsm_;
};

/// Robustness variant of Figure 3a: every value write is replicated to a
/// mirror region on a second memory node (one pipelined WriteAll), and
/// reads fail over to the mirror when the primary is unreachable
/// (DsmClient::ReadAny). Lock and version words stay primary-only — CC
/// correctness never depends on the mirror, which only has to be as fresh
/// as the last committed write (guaranteed because WriteAll completes both
/// copies before locks release).
///
/// `direct()` stays null on purpose: a pipelined install would write the
/// primary copy only, so protocols must keep value ops on the synchronous
/// (replicating) path.
class ReplicatedDirectAccessor final : public DataAccessor {
 public:
  /// Mirror placement for one primary memory node: a value at
  /// {node, offset} is mirrored at {mirror.node, offset + offset_delta}.
  /// Nodes without a valid mirror fall back to unreplicated access.
  struct Mirror {
    dsm::MemNodeId node = 0;
    int64_t offset_delta = 0;
    bool valid = false;
  };

  ReplicatedDirectAccessor(dsm::DsmClient* dsm, std::vector<Mirror> mirrors)
      : dsm_(dsm), mirrors_(std::move(mirrors)) {}

  dsm::GlobalAddress MirrorAddr(dsm::GlobalAddress addr) const {
    const Mirror& m = mirrors_[addr.node];
    return dsm::GlobalAddress{
        m.node, addr.offset + static_cast<uint64_t>(m.offset_delta)};
  }

  Status ReadValue(dsm::GlobalAddress addr, void* out, size_t len) override {
    if (addr.node >= mirrors_.size() || !mirrors_[addr.node].valid) {
      return dsm_->Read(addr, out, len);
    }
    return dsm_->ReadAny({addr, MirrorAddr(addr)}, out, len);
  }
  Status WriteValue(dsm::GlobalAddress addr, const void* src,
                    size_t len) override {
    if (addr.node >= mirrors_.size() || !mirrors_[addr.node].valid) {
      return dsm_->Write(addr, src, len);
    }
    return dsm_->WriteAll({addr, MirrorAddr(addr)}, src, len);
  }

 private:
  dsm::DsmClient* dsm_;
  std::vector<Mirror> mirrors_;
};

/// Figures 3b/3c: values go through the local page cache (whose coherence
/// controller handles Figure 3b's invalidations).
class CachedAccessor final : public DataAccessor {
 public:
  explicit CachedAccessor(buffer::BufferPool* pool) : pool_(pool) {}
  Status ReadValue(dsm::GlobalAddress addr, void* out, size_t len) override {
    return pool_->Read(addr, out, len);
  }
  Status WriteValue(dsm::GlobalAddress addr, const void* src,
                    size_t len) override {
    return pool_->Write(addr, src, len);
  }

 private:
  buffer::BufferPool* pool_;
};

}  // namespace dsmdb::txn

#endif  // DSMDB_TXN_DATA_ACCESSOR_H_
