#ifndef DSMDB_CORE_TABLE_H_
#define DSMDB_CORE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"
#include "txn/record_format.h"

namespace dsmdb::core {

/// A fixed-schema OLTP table stored in the DSM layer.
///
/// Records are fixed-size (lock + version header, then `value_size` bytes
/// of payload — see txn/record_format.h) with a dense uint64 primary key
/// in [0, num_keys). Storage is striped round-robin across all memory
/// nodes at record granularity, so load spreads evenly and no single
/// memory node is the table's hot spot.
///
/// Non-dense keys are served by the index module (ShermanBTree / RaceHash)
/// mapping arbitrary keys to record slots.
///
/// Table is a value type: create once, then hand copies to every compute
/// node (the metadata is immutable after creation).
class Table {
 public:
  struct Options {
    uint32_t value_size = 64;
    uint64_t num_keys = 0;
  };

  /// Allocates the table's stripes on every memory node and zeroes the
  /// record headers.
  static Result<Table> Create(dsm::DsmClient* dsm, uint32_t table_id,
                              const Options& options);

  Table() = default;

  uint32_t id() const { return id_; }
  uint32_t value_size() const { return value_size_; }
  uint64_t num_keys() const { return num_keys_; }
  uint64_t record_stride() const { return stride_; }

  /// The record slot for `key`. Precondition: key < num_keys().
  txn::RecordRef RefFor(uint64_t key) const {
    const uint32_t node = static_cast<uint32_t>(key % stripes_.size());
    const uint64_t slot = key / stripes_.size();
    return txn::RecordRef{stripes_[node].Plus(slot * stride_), value_size_};
  }

  /// The memory node storing `key` (for offload targeting).
  dsm::MemNodeId HomeNode(uint64_t key) const {
    return static_cast<dsm::MemNodeId>(key % stripes_.size());
  }

  /// Per-memory-node stripe base addresses (index = memory node id).
  const std::vector<dsm::GlobalAddress>& stripes() const { return stripes_; }
  /// Records stored on one memory node's stripe.
  uint64_t KeysPerStripe(uint32_t node) const {
    return (num_keys_ + stripes_.size() - 1 - node) / stripes_.size();
  }

 private:
  uint32_t id_ = 0;
  uint32_t value_size_ = 0;
  uint64_t num_keys_ = 0;
  uint64_t stride_ = 0;
  std::vector<dsm::GlobalAddress> stripes_;
};

}  // namespace dsmdb::core

#endif  // DSMDB_CORE_TABLE_H_
