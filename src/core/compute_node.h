#ifndef DSMDB_CORE_COMPUTE_NODE_H_
#define DSMDB_CORE_COMPUTE_NODE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/coherence.h"
#include "core/options.h"
#include "core/sharding.h"
#include "core/table.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "txn/cc_protocol.h"
#include "txn/data_accessor.h"
#include "txn/log_sink.h"
#include "txn/timestamp_oracle.h"

namespace dsmdb::core {

/// Compute-node-side RPC services (2PC participant + delegation).
inline constexpr uint32_t kSvcTxnExec = 18;
inline constexpr uint32_t kSvcTxnPrepare = 19;
inline constexpr uint32_t kSvcTxnDecide = 20;

/// One operation of a one-shot transaction.
enum class TxnOpType : uint8_t {
  kRead = 0,
  kWrite = 1,  ///< Blind full-value write.
  kAdd = 2,    ///< Read-modify-write: adds a signed 64-bit delta to the
               ///< first 8 bytes of the value (e.g. a balance transfer leg).
};

struct TxnOp {
  TxnOpType type = TxnOpType::kRead;
  uint64_t key = 0;
  std::string value;  ///< kWrite: full payload (= table value_size).
  int64_t delta = 0;  ///< kAdd: the increment.

  static TxnOp Read(uint64_t key) { return TxnOp{TxnOpType::kRead, key, {}, 0}; }
  static TxnOp Write(uint64_t key, std::string value) {
    return TxnOp{TxnOpType::kWrite, key, std::move(value), 0};
  }
  static TxnOp Add(uint64_t key, int64_t delta) {
    return TxnOp{TxnOpType::kAdd, key, {}, delta};
  }
};

struct TxnResult {
  bool committed = false;
  /// Values of the read ops, in op order.
  std::vector<std::string> reads;
};

struct ComputeNodeStats {
  std::atomic<uint64_t> local_txns{0};
  std::atomic<uint64_t> delegated_txns{0};
  std::atomic<uint64_t> two_pc_txns{0};
  std::atomic<uint64_t> two_pc_aborts{0};
  std::atomic<uint64_t> reshard_cache_drops{0};
};

/// One DSM-DB compute node (Figure 2): strong CPU, small local memory.
///
/// Wires together, per DbOptions: a DsmClient, an optional local buffer
/// pool with the configured coherence controller, the CC protocol, the
/// timestamp oracle, and the durability sink. In the sharded architecture
/// it also acts as a 2PC participant/coordinator for one-shot
/// transactions.
///
/// Thread-safe: many worker threads may Begin()/ExecuteOneShot()
/// concurrently on the same node (the paper's "local concurrency" within a
/// compute node).
class ComputeNode {
 public:
  ComputeNode(dsm::Cluster* cluster, storage::CloudStorage* cloud,
              const DbOptions& options, const std::string& name,
              uint32_t slot);
  ~ComputeNode();

  ComputeNode(const ComputeNode&) = delete;
  ComputeNode& operator=(const ComputeNode&) = delete;

  dsm::DsmClient& dsm() { return *dsm_; }
  txn::CcManager& cc() { return *cc_; }
  buffer::BufferPool* pool() { return pool_.get(); }
  txn::TimestampOracle& oracle() { return *oracle_; }
  txn::LogSink& log_sink() { return *sink_; }
  log::Wal* wal() { return wal_.get(); }
  log::ReplicatedLog* replicated_log() { return rlog_.get(); }
  uint32_t slot() const { return slot_; }
  rdma::NodeId fabric_id() const { return dsm_->self(); }
  const DbOptions& options() const { return options_; }
  ComputeNodeStats& node_stats() { return stats_; }

  /// Interactive transaction (single compute node; all architectures).
  Result<std::unique_ptr<txn::Transaction>> Begin() { return cc_->Begin(); }

  /// Executes a one-shot transaction against `table`. In the sharded
  /// architecture this routes by ownership: local execution, whole-txn
  /// delegation to the owning node, or 2PC across owners. Returns
  /// committed=false (not an error status) on a CC abort, so callers can
  /// count and retry.
  Result<TxnResult> ExecuteOneShot(const Table& table,
                                   const std::vector<TxnOp>& ops);

  /// Enables Figure 3c routing. `owner_fabric_ids[slot]` addresses each
  /// owner. All compute nodes must be wired with the same objects.
  void EnableSharding(ShardManager* shards, const Table* table,
                      std::vector<rdma::NodeId> owner_fabric_ids);

  /// Swaps the value accessor (e.g. txn::ReplicatedDirectAccessor for
  /// read-failover under memory-node crashes) and rebuilds the CC manager
  /// around it. Call during setup, before any transaction runs.
  void InstallAccessor(std::unique_ptr<txn::DataAccessor> accessor);

 private:
  /// Runs `ops` through a local transaction; fills `out`.
  /// Distinguishes protocol aborts (committed=false) from hard errors.
  Result<TxnResult> ExecuteLocal(const Table& table,
                                 const std::vector<TxnOp>& ops);

  /// 2PC coordinator path for `by_owner`-partitioned ops.
  Result<TxnResult> ExecuteTwoPc(
      const Table& table, const std::vector<TxnOp>& ops,
      const std::vector<std::vector<size_t>>& by_owner);

  // RPC handlers (run on the calling thread, operate on this node's CC).
  uint64_t HandleExec(std::string_view req, std::string* resp);
  uint64_t HandlePrepare(std::string_view req, std::string* resp);
  uint64_t HandleDecide(std::string_view req, std::string* resp);
  uint64_t HandleCoherence(std::string_view req, std::string* resp);

  void MaybeDropCacheOnReshard();

  dsm::Cluster* cluster_;
  DbOptions options_;
  uint32_t slot_;

  std::unique_ptr<dsm::DsmClient> dsm_;
  std::unique_ptr<buffer::CoherenceController> coherence_;
  std::unique_ptr<buffer::BufferPool> pool_;
  std::unique_ptr<txn::DataAccessor> accessor_;
  std::unique_ptr<txn::TimestampOracle> oracle_;
  std::unique_ptr<log::Wal> wal_;
  std::unique_ptr<log::ReplicatedLog> rlog_;
  std::unique_ptr<txn::LogSink> sink_;
  std::unique_ptr<txn::CcManager> cc_;

  // Sharding state (Figure 3c).
  ShardManager* shards_ = nullptr;
  const Table* sharded_table_ = nullptr;
  std::vector<rdma::NodeId> owner_fabric_ids_;
  std::atomic<uint64_t> seen_shard_version_{0};

  // 2PC participant state.
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<txn::Transaction>> pending_;
  std::atomic<uint64_t> txn_seq_{1};

  ComputeNodeStats stats_;
};

}  // namespace dsmdb::core

#endif  // DSMDB_CORE_COMPUTE_NODE_H_
