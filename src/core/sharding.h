#ifndef DSMDB_CORE_SHARDING_H_
#define DSMDB_CORE_SHARDING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/spin_latch.h"
#include "obs/skew_monitor.h"

namespace dsmdb::core {

/// Logical sharding for Figure 3c: each compute node is *responsible* for
/// a key range, but the data itself stays in the DSM layer. Because
/// sharding is metadata-only, resharding means swapping this map — no data
/// movement — which is the paper's argument for DSM-DB's skew resilience
/// ("only the metadata is copied ... the obsolete data from the old
/// compute nodes can be recycled asynchronously").
///
/// The map is an ordered list of range boundaries over the dense key
/// space. Thread-safe snapshot semantics: readers grab an immutable
/// shared_ptr; UpdateRanges swaps it atomically.
class ShardManager {
 public:
  struct Range {
    uint64_t begin;  ///< inclusive
    uint64_t end;    ///< exclusive
    uint32_t owner;  ///< compute-node slot (0..num_owners-1)
  };

  /// Even partition of [0, num_keys) across `num_owners`.
  ShardManager(uint64_t num_keys, uint32_t num_owners);

  /// Owner of `key` under the current map.
  uint32_t OwnerOf(uint64_t key) const;

  /// Installs a new range map (logical resharding). Returns the number of
  /// keys whose owner changed (the amount of *metadata* movement).
  uint64_t UpdateRanges(std::vector<Range> ranges);

  /// Rebuilds an even partition, rotated so that `hot_start`'s range is
  /// split more finely — helper for skew-shift experiments.
  std::vector<Range> CurrentRanges() const;

  /// Projects SkewSignals heat-shard buckets onto the current owners:
  /// out[owner] = decayed access heat of every heat shard whose key range
  /// that owner is responsible for (heat shards are an even range
  /// partition of [0, num_keys), see obs::HeatMap). This is the input
  /// ROADMAP item 4's self-driving resharder scores imbalance on.
  std::vector<double> OwnerHeat(const obs::SkewSignals& signals) const;

  uint64_t num_keys() const { return num_keys_; }
  uint32_t num_owners() const { return num_owners_; }
  uint64_t Version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  using RangeMap = std::vector<Range>;

  uint64_t num_keys_;
  uint32_t num_owners_;
  mutable SpinLatch latch_;
  std::shared_ptr<const RangeMap> map_;
  std::atomic<uint64_t> version_{1};
};

}  // namespace dsmdb::core

#endif  // DSMDB_CORE_SHARDING_H_
