#include "core/recovery_manager.h"

#include <algorithm>
#include <vector>

#include "common/coding.h"
#include "log/recovery.h"
#include "txn/log_sink.h"

namespace dsmdb::core {

namespace {

/// Applies one committed record-write to the rebuilt node.
Status ApplyWrite(DsmDb* db, dsm::MemNodeId node,
                  const txn::CommitWrite& w, uint64_t* applied) {
  if (w.addr.node != node) return Status::OK();
  // w.addr is the record base; the payload is the value (header follows
  // zeroed, which is correct for freshly recovered records: locks free,
  // versions reset).
  DSMDB_RETURN_NOT_OK(db->admin().Write(
      dsm::GlobalAddress{w.addr.node, w.addr.offset + 16}, w.value.data(),
      w.value.size()));
  (*applied)++;
  return Status::OK();
}

}  // namespace

Result<uint64_t> RecoveryManager::RecoverMemoryNode(DsmDb* db,
                                                    dsm::MemNodeId node) {
  if (db->options().durability == DurabilityMode::kNone) {
    return Status::NotSupported(
        "no durability configured: a crashed memory node's data is lost");
  }

  // 1. Restart the node if it is still down, then re-bind every client to
  // its new incarnation (ops carry an incarnation fence; without the
  // refresh they would fail StaleIncarnation forever).
  if (!db->cluster().IsMemoryNodeAlive(node)) {
    db->cluster().RecoverMemoryNode(node);
  }
  db->admin().RefreshIncarnation(node);
  for (const auto& cn : db->compute_nodes()) {
    cn->dsm().RefreshIncarnation(node);
  }

  // 2. Re-establish the table stripes at their original logical offsets.
  std::vector<const Table*> tables = db->Tables();
  std::sort(tables.begin(), tables.end(),
            [](const Table* a, const Table* b) { return a->id() < b->id(); });
  for (const Table* table : tables) {
    const uint64_t keys_here = table->KeysPerStripe(node);
    const uint64_t bytes =
        keys_here == 0 ? table->record_stride()
                       : keys_here * table->record_stride();
    Result<dsm::GlobalAddress> stripe = db->admin().Alloc(bytes, node);
    if (!stripe.ok()) return stripe.status();
    if (stripe->offset != table->stripes()[node].offset) {
      return Status::Internal(
          "recovered stripe landed at a different offset; table stripes "
          "were not this node's first allocations");
    }
  }

  // 3. Replay committed writes from every compute node's log.
  uint64_t applied = 0;
  for (const auto& cn : db->compute_nodes()) {
    if (cn->wal() != nullptr) {
      Result<std::string> image =
          db->cloud().ReadStream(cn->wal()->options().stream_name);
      if (!image.ok()) {
        if (image.status().IsNotFound()) continue;  // never flushed
        return image.status();
      }
      Status apply_status = Status::OK();
      Result<uint64_t> n = log::RedoRecovery::ReplayFromImage(
          *image, [&](const log::LogRecord& rec) {
            txn::CommitWrite w;
            if (!txn::DecodeCommitWrite(rec.payload, &w)) {
              apply_status = Status::Corruption("bad redo payload");
              return;
            }
            Status s = ApplyWrite(db, node, w, &applied);
            if (!s.ok()) apply_status = s;
          });
      if (!n.ok()) return n.status();
      if (!apply_status.ok()) return apply_status;
    }
    if (cn->replicated_log() != nullptr) {
      Result<std::vector<log::LogRecord>> records =
          cn->replicated_log()->GatherLog();
      if (!records.ok()) return records.status();
      for (const log::LogRecord& rec : *records) {
        if (rec.type != log::LogRecordType::kCommit) continue;
        size_t pos = 0;
        std::string_view payload(rec.payload);
        std::string_view entry;
        while (GetLengthPrefixed(payload, &pos, &entry)) {
          txn::CommitWrite w;
          if (!txn::DecodeCommitWrite(entry, &w)) {
            return Status::Corruption("bad replicated-log payload");
          }
          DSMDB_RETURN_NOT_OK(ApplyWrite(db, node, w, &applied));
        }
      }
    }
  }
  return applied;
}

}  // namespace dsmdb::core
