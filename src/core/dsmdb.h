#ifndef DSMDB_CORE_DSMDB_H_
#define DSMDB_CORE_DSMDB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/compute_node.h"
#include "core/options.h"
#include "core/sharding.h"
#include "core/table.h"
#include "dsm/cluster.h"
#include "storage/cloud_storage.h"

namespace dsmdb::core {

/// The DSM-DB database façade (Figure 2): owns the simulated cluster
/// (fabric + memory nodes), the cloud storage service, the catalog of
/// tables, and the compute nodes.
///
/// Typical use:
///
///   core::DsmDb db(cluster_options, db_options);
///   core::ComputeNode* cn = db.AddComputeNode();
///   const core::Table* t = db.CreateTable("accounts", {.value_size = 64,
///                                                      .num_keys = 1'000'000});
///   db.FinishSetup();  // wires sharding if Figure 3c is configured
///   auto result = cn->ExecuteOneShot(*t, ops);
class DsmDb {
 public:
  DsmDb(const dsm::ClusterOptions& cluster_options,
        const DbOptions& db_options);
  ~DsmDb();

  DsmDb(const DsmDb&) = delete;
  DsmDb& operator=(const DsmDb&) = delete;

  dsm::Cluster& cluster() { return cluster_; }
  storage::CloudStorage& cloud() { return cloud_; }
  const DbOptions& options() const { return db_options_; }
  /// The DDL/admin DSM client (also usable for loading data directly).
  dsm::DsmClient& admin() { return *admin_; }

  /// Adds a compute node. Call before FinishSetup().
  ComputeNode* AddComputeNode(const std::string& name = "");

  /// Creates a table (DDL). The returned pointer is owned by the db.
  Result<const Table*> CreateTable(const std::string& name,
                                   const Table::Options& options);
  const Table* GetTable(const std::string& name) const;
  /// All tables (unordered; sort by id() for creation order).
  std::vector<const Table*> Tables() const;

  /// After all compute nodes and tables exist: wires Figure 3c sharding
  /// (one ShardManager per table, even ranges across compute nodes).
  /// No-op for the other architectures.
  Status FinishSetup();

  ShardManager* shards(const std::string& table_name);
  const std::vector<std::unique_ptr<ComputeNode>>& compute_nodes() const {
    return compute_nodes_;
  }

 private:
  DbOptions db_options_;
  dsm::Cluster cluster_;
  storage::CloudStorage cloud_;
  std::unique_ptr<dsm::DsmClient> admin_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<ShardManager>> shard_managers_;
  bool setup_done_ = false;
};

}  // namespace dsmdb::core

#endif  // DSMDB_CORE_DSMDB_H_
