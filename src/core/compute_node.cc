#include "core/compute_node.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "common/sim_clock.h"
#include "dsm/rpc_ids.h"
#include "obs/trace.h"

namespace dsmdb::core {

namespace {

// One-shot op wire helpers.
void EncodeOps(const std::vector<TxnOp>& ops,
               const std::vector<size_t>& indices, std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(indices.size()));
  for (size_t idx : indices) {
    const TxnOp& op = ops[idx];
    out->push_back(static_cast<char>(op.type));
    PutFixed64(out, op.key);
    if (op.type == TxnOpType::kWrite) {
      out->append(op.value);
    } else if (op.type == TxnOpType::kAdd) {
      PutFixed64(out, static_cast<uint64_t>(op.delta));
    }
  }
}

bool DecodeOps(std::string_view req, size_t* pos, uint32_t value_size,
               std::vector<TxnOp>* ops) {
  if (*pos + 4 > req.size()) return false;
  const uint32_t n = DecodeFixed32(req.data() + *pos);
  *pos += 4;
  ops->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    if (*pos + 9 > req.size()) return false;
    TxnOp op;
    op.type = static_cast<TxnOpType>(req[*pos]);
    op.key = DecodeFixed64(req.data() + *pos + 1);
    *pos += 9;
    if (op.type == TxnOpType::kWrite) {
      if (*pos + value_size > req.size()) return false;
      op.value.assign(req.data() + *pos, value_size);
      *pos += value_size;
    } else if (op.type == TxnOpType::kAdd) {
      if (*pos + 8 > req.size()) return false;
      op.delta = static_cast<int64_t>(DecodeFixed64(req.data() + *pos));
      *pos += 8;
    }
    ops->push_back(std::move(op));
  }
  return true;
}

/// Applies one op inside an open transaction; fills `read_out` for kRead.
Status ApplyOp(txn::Transaction* txn, const Table& table, const TxnOp& op,
               std::string* read_out) {
  const txn::RecordRef ref = table.RefFor(op.key);
  switch (op.type) {
    case TxnOpType::kRead:
      return txn->Read(ref, read_out);
    case TxnOpType::kWrite:
      return txn->Write(ref, op.value);
    case TxnOpType::kAdd: {
      std::string cur;
      DSMDB_RETURN_NOT_OK(txn->Read(ref, &cur));
      if (cur.size() < 8) return Status::Internal("record too small");
      const int64_t balance =
          static_cast<int64_t>(DecodeFixed64(cur.data())) + op.delta;
      EncodeFixed64(cur.data(), static_cast<uint64_t>(balance));
      return txn->Write(ref, cur);
    }
  }
  return Status::InvalidArgument("bad op type");
}

}  // namespace

ComputeNode::ComputeNode(dsm::Cluster* cluster, storage::CloudStorage* cloud,
                         const DbOptions& options, const std::string& name,
                         uint32_t slot)
    : cluster_(cluster), options_(options), slot_(slot) {
  const rdma::NodeId fid = cluster->AddComputeNode(name);
  dsm_ = std::make_unique<dsm::DsmClient>(cluster, fid);

  if (options_.architecture != Architecture::kNoCacheNoSharding) {
    if (options_.architecture == Architecture::kCacheNoSharding) {
      coherence_ = std::make_unique<buffer::DirectoryCoherence>(
          dsm_.get(),
          options_.coherence == CoherencePropagation::kUpdate);
    }
    pool_ = std::make_unique<buffer::BufferPool>(
        dsm_.get(), options_.buffer, coherence_.get());
    accessor_ = std::make_unique<txn::CachedAccessor>(pool_.get());
  } else {
    accessor_ = std::make_unique<txn::DirectAccessor>(dsm_.get());
  }

  oracle_ = std::make_unique<txn::TimestampOracle>(
      dsm_.get(), options_.oracle, txn::TimestampOracle::DefaultCounter());

  switch (options_.durability) {
    case DurabilityMode::kCloudWal: {
      log::WalOptions wopts = options_.wal;
      wopts.stream_name = "wal/" + name;
      wal_ = std::make_unique<log::Wal>(cloud, wopts);
      sink_ = std::make_unique<txn::WalLogSink>(wal_.get());
      break;
    }
    case DurabilityMode::kMemReplication: {
      log::ReplicatedLogOptions ropts = options_.replicated_log;
      ropts.name = "rlog/" + name;
      rlog_ = std::make_unique<log::ReplicatedLog>(dsm_.get(), ropts);
      sink_ = std::make_unique<txn::ReplicatedLogSink>(rlog_.get());
      break;
    }
    case DurabilityMode::kNone:
      sink_ = std::make_unique<txn::NoopLogSink>();
      break;
  }

  cc_ = txn::MakeCcManager(options_.cc, dsm_.get(), accessor_.get(),
                           oracle_.get(), sink_.get());

  rdma::Fabric& fabric = cluster_->fabric();
  fabric.RegisterRpcHandler(
      fid, dsm::kSvcInvalidate,
      [this](std::string_view req, std::string* resp) {
        return HandleCoherence(req, resp);
      });
  fabric.RegisterRpcHandler(
      fid, kSvcTxnExec, [this](std::string_view req, std::string* resp) {
        return HandleExec(req, resp);
      });
  fabric.RegisterRpcHandler(
      fid, kSvcTxnPrepare,
      [this](std::string_view req, std::string* resp) {
        return HandlePrepare(req, resp);
      });
  fabric.RegisterRpcHandler(
      fid, kSvcTxnDecide, [this](std::string_view req, std::string* resp) {
        return HandleDecide(req, resp);
      });
}

ComputeNode::~ComputeNode() = default;

void ComputeNode::EnableSharding(ShardManager* shards, const Table* table,
                                 std::vector<rdma::NodeId> owner_fabric_ids) {
  shards_ = shards;
  sharded_table_ = table;
  owner_fabric_ids_ = std::move(owner_fabric_ids);
  seen_shard_version_.store(shards->Version(), std::memory_order_release);
}

void ComputeNode::InstallAccessor(
    std::unique_ptr<txn::DataAccessor> accessor) {
  accessor_ = std::move(accessor);
  // The CC manager captured the old accessor pointer at construction;
  // rebuild it around the new one (setup-time only, so protocol stats
  // starting from zero again is fine).
  cc_ = txn::MakeCcManager(options_.cc, dsm_.get(), accessor_.get(),
                           oracle_.get(), sink_.get());
}

void ComputeNode::MaybeDropCacheOnReshard() {
  if (shards_ == nullptr || pool_ == nullptr) return;
  const uint64_t v = shards_->Version();
  uint64_t seen = seen_shard_version_.load(std::memory_order_acquire);
  if (seen == v) return;
  if (seen_shard_version_.compare_exchange_strong(seen, v)) {
    pool_->DropAll();  // another owner may have written our old range
    stats_.reshard_cache_drops.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<TxnResult> ComputeNode::ExecuteLocal(const Table& table,
                                            const std::vector<TxnOp>& ops) {
  // Root of the causal span tree when called directly; joins the caller's
  // transaction when reached via delegation (HandleExec) or a driver
  // attempt scope.
  obs::TraceTxnScope root("txn.local", "txn");
  // Shard boundaries are key-granular but caching is page-granular, so a
  // page can hold records of several owners (false sharing). Within an
  // ownership epoch only the owner writes its keys, so this is safe; at a
  // reshard every execution path (local, delegated, 2PC participant) must
  // drop the stale cache before serving newly-acquired keys.
  MaybeDropCacheOnReshard();
  Result<std::unique_ptr<txn::Transaction>> txn = cc_->Begin();
  if (!txn.ok()) return txn.status();
  TxnResult result;
  result.reads.resize(ops.size());
  for (size_t i = 0; i < ops.size(); i++) {
    Status s = ApplyOp(txn->get(), table, ops[i], &result.reads[i]);
    if (s.IsAborted()) return result;  // committed = false
    if (!s.ok()) return s;
  }
  Status s = (*txn)->Commit();
  if (s.IsAborted()) return result;
  if (!s.ok()) return s;
  result.committed = true;
  stats_.local_txns.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Result<TxnResult> ComputeNode::ExecuteOneShot(const Table& table,
                                              const std::vector<TxnOp>& ops) {
  obs::TraceTxnScope root("txn.oneshot", "txn");
  if (shards_ == nullptr ||
      options_.architecture != Architecture::kCacheSharding) {
    return ExecuteLocal(table, ops);
  }
  MaybeDropCacheOnReshard();

  // Partition by owner.
  std::vector<std::vector<size_t>> by_owner(owner_fabric_ids_.size());
  for (size_t i = 0; i < ops.size(); i++) {
    by_owner[shards_->OwnerOf(ops[i].key)].push_back(i);
  }
  uint32_t owners = 0;
  uint32_t only_owner = 0;
  for (uint32_t o = 0; o < by_owner.size(); o++) {
    if (!by_owner[o].empty()) {
      owners++;
      only_owner = o;
    }
  }

  if (owners <= 1 && (owners == 0 || only_owner == slot_)) {
    return ExecuteLocal(table, ops);  // single shard, ours
  }
  if (owners == 1) {
    // Whole-transaction delegation to the owning compute node.
    std::string req;
    std::vector<size_t> all(ops.size());
    for (size_t i = 0; i < all.size(); i++) all[i] = i;
    EncodeOps(ops, all, &req);
    std::string resp;
    DSMDB_RETURN_NOT_OK(dsm_->nic().Call(owner_fabric_ids_[only_owner],
                                         kSvcTxnExec, req, &resp));
    if (resp.empty()) return Status::Internal("bad exec response");
    TxnResult result;
    result.reads.resize(ops.size());
    result.committed = resp[0] == 1;
    if (result.committed) {
      size_t pos = 1;
      for (size_t i = 0; i < ops.size(); i++) {
        if (ops[i].type != TxnOpType::kRead) continue;
        if (pos + table.value_size() > resp.size()) {
          return Status::Internal("short exec response");
        }
        result.reads[i].assign(resp.data() + pos, table.value_size());
        pos += table.value_size();
      }
      stats_.delegated_txns.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  }
  return ExecuteTwoPc(table, ops, by_owner);
}

Result<TxnResult> ComputeNode::ExecuteTwoPc(
    const Table& table, const std::vector<TxnOp>& ops,
    const std::vector<std::vector<size_t>>& by_owner) {
  stats_.two_pc_txns.fetch_add(1, std::memory_order_relaxed);
  const uint64_t txn_id =
      (txn_seq_.fetch_add(1, std::memory_order_relaxed) << 10) |
      (slot_ & 0x3FF);

  TxnResult result;
  result.reads.resize(ops.size());
  bool all_yes = true;
  // Hard (non-abort) failures are deferred until after the decide round:
  // a participant that voted yes holds its locks in pending_ until a
  // DECIDE arrives, so returning early here would leak them forever.
  Status hard_error;
  std::unique_ptr<txn::Transaction> local_txn;

  // Phase 1: PREPARE, one pipelined RPC fan-out on the async verb engine
  // with the local participant run inline; WaitAll joins at the slowest
  // leg. Participants are contacted in ascending owner order with the
  // local leg at its ordinal slot, so every coordinator tries participant
  // locks in the same global order — two conflicting NO_WAIT transactions
  // cannot keep aborting each other from opposite ends (the holder of the
  // lowest contended owner always progresses). The local leg's simulated
  // time is rewound and re-joined after WaitAll (same accounting PostCall
  // uses for handlers), so it still overlaps the remote legs.
  std::vector<uint32_t> remote;
  std::vector<std::string> resps(by_owner.size());
  std::vector<rdma::WrId> wr(by_owner.size(), 0);
  uint64_t local_end_ns = 0;
  dsm::DsmPipeline pipe(dsm_.get());
  {
  obs::TraceScope prepare_span("2pc.prepare", "txn");
  for (uint32_t o = 0; o < by_owner.size(); o++) {
    if (by_owner[o].empty()) continue;
    if (o == slot_) {
      // Local participant: run the sub-transaction in-process.
      const uint64_t local_start = SimClock::Now();
      SimHandlerScope local_scope;
      Result<std::unique_ptr<txn::Transaction>> txn = cc_->Begin();
      if (!txn.ok()) {
        all_yes = false;
        hard_error = txn.status();
        local_end_ns = local_start + local_scope.End();
        continue;
      }
      bool ok = true;
      for (size_t idx : by_owner[slot_]) {
        Status s = ApplyOp(txn->get(), table, ops[idx], &result.reads[idx]);
        if (!s.ok()) {
          ok = false;
          if (!s.IsAborted()) hard_error = s;
          break;
        }
      }
      if (ok) {
        // Acquire deferred locks inside the overlapped prepare phase.
        Status s = (*txn)->Prepare();
        if (!s.ok()) {
          ok = false;
          if (!s.IsAborted()) hard_error = s;
        }
      }
      if (ok) {
        local_txn = std::move(*txn);
      } else {
        all_yes = false;
      }
      local_end_ns = local_start + local_scope.End();
      continue;
    }
    remote.push_back(o);
    std::string req;
    PutFixed64(&req, txn_id);
    EncodeOps(ops, by_owner[o], &req);
    wr[o] = pipe.Call(owner_fabric_ids_[o], kSvcTxnPrepare, req, &resps[o]);
  }
  (void)pipe.WaitAll();
  SimClock::AdvanceTo(local_end_ns);
  for (uint32_t o : remote) {
    const std::string& resp = resps[o];
    if (!pipe.status(wr[o]).ok() || resp.empty() || resp[0] != 1) {
      all_yes = false;
      continue;
    }
    size_t pos = 1;
    for (size_t idx : by_owner[o]) {
      if (ops[idx].type != TxnOpType::kRead) continue;
      if (pos + table.value_size() > resp.size()) {
        all_yes = false;
        hard_error = Status::Internal("short prepare response");
        break;
      }
      result.reads[idx].assign(resp.data() + pos, table.value_size());
      pos += table.value_size();
    }
  }
  }  // prepare_span

  // Phase 2: COMMIT / ABORT decision, the same pipelined shape.
  bool commit_ok = all_yes;
  {
  obs::TraceScope decide_span("2pc.decide", "txn");
  pipe.Reset();
  std::string decide;
  PutFixed64(&decide, txn_id);
  decide.push_back(all_yes ? 1 : 0);
  for (uint32_t o : remote) {
    wr[o] = pipe.Call(owner_fabric_ids_[o], kSvcTxnDecide, decide, &resps[o]);
  }
  if (local_txn != nullptr) {
    Status s = all_yes ? local_txn->Commit() : local_txn->Abort();
    if (all_yes && !s.ok()) commit_ok = false;
  }
  (void)pipe.WaitAll();
  for (uint32_t o : remote) {
    if (all_yes && (!pipe.status(wr[o]).ok() || resps[o].empty() ||
                    resps[o][0] != 1)) {
      commit_ok = false;
    }
  }
  }  // decide_span

  if (!hard_error.ok()) return hard_error;
  result.committed = commit_ok;
  if (!commit_ok) {
    stats_.two_pc_aborts.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

uint64_t ComputeNode::HandleExec(std::string_view req, std::string* resp) {
  std::vector<TxnOp> ops;
  size_t pos = 0;
  if (sharded_table_ == nullptr ||
      !DecodeOps(req, &pos, sharded_table_->value_size(), &ops)) {
    resp->push_back(2);
    return 500;
  }
  Result<TxnResult> r = ExecuteLocal(*sharded_table_, ops);
  if (!r.ok()) {
    resp->push_back(2);
  } else if (!r->committed) {
    resp->push_back(0);
  } else {
    resp->push_back(1);
    for (size_t i = 0; i < ops.size(); i++) {
      if (ops[i].type == TxnOpType::kRead) resp->append(r->reads[i]);
    }
  }
  return 600 + 200 * ops.size();
}

uint64_t ComputeNode::HandlePrepare(std::string_view req,
                                    std::string* resp) {
  // Runs inside the coordinator's prepare leg: the engine re-parents this
  // under the leg's handler-cpu span and re-times it to simulated arrival.
  obs::TraceScope span("2pc.participant.prepare", "txn");
  if (req.size() < 8 || sharded_table_ == nullptr) {
    resp->push_back(0);
    return 500;
  }
  const uint64_t txn_id = DecodeFixed64(req.data());
  std::vector<TxnOp> ops;
  size_t pos = 8;
  if (!DecodeOps(req, &pos, sharded_table_->value_size(), &ops)) {
    resp->push_back(0);
    return 500;
  }
  MaybeDropCacheOnReshard();
  Result<std::unique_ptr<txn::Transaction>> txn = cc_->Begin();
  if (!txn.ok()) {
    resp->push_back(0);
    return 500;
  }
  std::vector<std::string> reads(ops.size());
  for (size_t i = 0; i < ops.size(); i++) {
    Status s = ApplyOp(txn->get(), *sharded_table_, ops[i], &reads[i]);
    if (!s.ok()) {  // aborted or failed: vote no
      resp->push_back(0);
      return 600 + 200 * ops.size();
    }
  }
  // Deferred write locks are paid here, inside the coordinator's
  // overlapped prepare fan-out, not on the serial decide path.
  if (!(*txn)->Prepare().ok()) {
    resp->push_back(0);
    return 600 + 200 * ops.size();
  }
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_[txn_id] = std::move(*txn);
  }
  resp->push_back(1);
  for (size_t i = 0; i < ops.size(); i++) {
    if (ops[i].type == TxnOpType::kRead) resp->append(reads[i]);
  }
  return 600 + 200 * ops.size();
}

uint64_t ComputeNode::HandleDecide(std::string_view req, std::string* resp) {
  obs::TraceScope span("2pc.participant.decide", "txn");
  if (req.size() != 9) {
    resp->push_back(0);
    return 400;
  }
  const uint64_t txn_id = DecodeFixed64(req.data());
  const bool commit = req[8] != 0;
  std::unique_ptr<txn::Transaction> txn;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    auto it = pending_.find(txn_id);
    if (it != pending_.end()) {
      txn = std::move(it->second);
      pending_.erase(it);
    }
  }
  if (txn == nullptr) {
    resp->push_back(0);
    return 400;
  }
  const Status s = commit ? txn->Commit() : txn->Abort();
  resp->push_back(s.ok() ? 1 : 0);
  return 400;
}

uint64_t ComputeNode::HandleCoherence(std::string_view req,
                                      std::string* resp) {
  (void)resp;
  if (pool_ == nullptr) return 100;
  return pool_->HandleCoherenceRpc(req);
}

}  // namespace dsmdb::core
