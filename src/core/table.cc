#include "core/table.h"

#include <string>

#include "obs/heat_map.h"

namespace dsmdb::core {

Result<Table> Table::Create(dsm::DsmClient* dsm, uint32_t table_id,
                            const Options& options) {
  if (options.num_keys == 0) {
    return Status::InvalidArgument("table needs at least one key");
  }
  Table t;
  t.id_ = table_id;
  t.value_size_ = options.value_size;
  t.num_keys_ = options.num_keys;
  t.stride_ = txn::RecordStride(options.value_size);

  const uint32_t m = dsm->cluster()->num_memory_nodes();
  t.stripes_.resize(m);
  // Zero an entire stripe in bounded chunks so record headers (lock,
  // version) start clean even on recycled slab memory.
  std::string zeros(64 * 1024, '\0');
  for (uint32_t node = 0; node < m; node++) {
    const uint64_t keys_here = (options.num_keys + m - 1 - node) / m;
    if (keys_here == 0) {
      // Still allocate a minimal stripe so RefFor stays uniform.
      Result<dsm::GlobalAddress> base =
          dsm->Alloc(t.stride_, static_cast<dsm::MemNodeId>(node));
      if (!base.ok()) return base.status();
      t.stripes_[node] = *base;
      continue;
    }
    const uint64_t bytes = keys_here * t.stride_;
    Result<dsm::GlobalAddress> base =
        dsm->Alloc(bytes, static_cast<dsm::MemNodeId>(node));
    if (!base.ok()) return base.status();
    t.stripes_[node] = *base;
    for (uint64_t off = 0; off < bytes; off += zeros.size()) {
      const uint64_t n = std::min<uint64_t>(zeros.size(), bytes - off);
      DSMDB_RETURN_NOT_OK(dsm->Write(base->Plus(off), zeros.data(), n));
    }
  }
  // Register the stripe layout with the heat observatory so address-level
  // hooks (verb issue, coherence rounds) resolve back to primary keys.
  obs::HeatMap::TableLayout layout;
  layout.table_id = table_id;
  layout.num_keys = t.num_keys_;
  layout.stride = t.stride_;
  layout.stripe_bases.reserve(t.stripes_.size());
  for (const dsm::GlobalAddress& base : t.stripes_) {
    layout.stripe_bases.push_back(base.Pack());
  }
  obs::HeatMap::Instance().RegisterTableLayout(std::move(layout));
  return t;
}

}  // namespace dsmdb::core
