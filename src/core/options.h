#ifndef DSMDB_CORE_OPTIONS_H_
#define DSMDB_CORE_OPTIONS_H_

#include <cstdint>

#include "buffer/buffer_pool.h"
#include "log/replicated_log.h"
#include "log/wal.h"
#include "storage/cloud_storage.h"
#include "txn/cc_protocol.h"
#include "txn/timestamp_oracle.h"

namespace dsmdb::core {

/// The three concurrency-control architectures of Figure 3.
enum class Architecture {
  /// (a) No cache, no sharding: every access is a one-sided verb; locks in
  /// data; no coherence problem, maximal network traffic.
  kNoCacheNoSharding,
  /// (b) Cache, no sharding: local buffer pools + software cache
  /// coherence (directory + invalidation/update).
  kCacheNoSharding,
  /// (c) Cache, logical sharding: each compute node owns a key range;
  /// caches need no coherence; cross-shard transactions use 2PC.
  kCacheSharding,
};

std::string_view ArchitectureName(Architecture a);

/// Coherence propagation for Figure 3b.
enum class CoherencePropagation { kInvalidation, kUpdate };

/// Commit-log placement (Challenge #2).
enum class DurabilityMode {
  kNone,            ///< No logging (CC microbenchmarks).
  kCloudWal,        ///< Approach #1: WAL on cloud storage.
  kMemReplication,  ///< Approach #2: k-way memory-replicated log.
};

struct DbOptions {
  Architecture architecture = Architecture::kNoCacheNoSharding;
  txn::CcOptions cc;
  txn::OracleMode oracle = txn::OracleMode::kRdmaFaa;

  /// Local cache settings (architectures b and c).
  buffer::BufferPoolOptions buffer;
  CoherencePropagation coherence = CoherencePropagation::kInvalidation;

  DurabilityMode durability = DurabilityMode::kNone;
  log::WalOptions wal;
  log::ReplicatedLogOptions replicated_log;
  /// Simulated cloud-storage service parameters (WAL, checkpoints).
  storage::CloudStorageOptions cloud;
};

}  // namespace dsmdb::core

#endif  // DSMDB_CORE_OPTIONS_H_
