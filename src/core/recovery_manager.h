#ifndef DSMDB_CORE_RECOVERY_MANAGER_H_
#define DSMDB_CORE_RECOVERY_MANAGER_H_

#include <cstdint>

#include "common/result.h"
#include "core/dsmdb.h"

namespace dsmdb::core {

/// Rebuilds a crashed memory node's database contents (Challenges #2/#3
/// end to end): the node's DRAM is gone, but the logical address layout
/// and the durable commit log let us reconstruct it.
///
/// Procedure:
///  1. bring the node back up (fresh, empty region, same logical id);
///  2. re-establish the table stripes: stripes are a node's first
///     allocations in table-id order, so re-running the same allocation
///     sequence lands them at the same logical offsets (the paper's
///     Challenge #1 argument for logical addresses — "if a memory node
///     crashes then recovers ... the old address cannot refer to the new
///     memory" unless addressing is logical);
///  3. replay committed writes targeting the node from the durability
///     source (every compute node's cloud WAL, or the surviving replicas
///     of every compute node's memory-replicated log).
///
/// Requires DurabilityMode != kNone; with kNone the data is simply lost
/// (the paper's "a single memory node is volatile").
///
/// Assumes table stripes were the node's first allocations (tables created
/// at setup time, before any index/arena allocations) — the deployment
/// pattern of every example and bench in this repository.
class RecoveryManager {
 public:
  /// Recovers logical memory node `node` of `db`. The node may be crashed
  /// (it is restarted) or already restarted-but-empty. Returns the number
  /// of committed record-writes re-applied.
  static Result<uint64_t> RecoverMemoryNode(DsmDb* db, dsm::MemNodeId node);
};

}  // namespace dsmdb::core

#endif  // DSMDB_CORE_RECOVERY_MANAGER_H_
