#include "core/dsmdb.h"

namespace dsmdb::core {

std::string_view ArchitectureName(Architecture a) {
  switch (a) {
    case Architecture::kNoCacheNoSharding:
      return "3a-nocache-noshard";
    case Architecture::kCacheNoSharding:
      return "3b-cache-noshard";
    case Architecture::kCacheSharding:
      return "3c-cache-shard";
  }
  return "?";
}

DsmDb::DsmDb(const dsm::ClusterOptions& cluster_options,
             const DbOptions& db_options)
    : db_options_(db_options),
      cluster_(cluster_options),
      cloud_(db_options.cloud) {
  const rdma::NodeId fid = cluster_.AddComputeNode("admin");
  admin_ = std::make_unique<dsm::DsmClient>(&cluster_, fid);
}

DsmDb::~DsmDb() = default;

ComputeNode* DsmDb::AddComputeNode(const std::string& name) {
  const uint32_t slot = static_cast<uint32_t>(compute_nodes_.size());
  const std::string node_name =
      name.empty() ? "cn" + std::to_string(slot) : name;
  compute_nodes_.push_back(std::make_unique<ComputeNode>(
      &cluster_, &cloud_, db_options_, node_name, slot));
  return compute_nodes_.back().get();
}

Result<const Table*> DsmDb::CreateTable(const std::string& name,
                                        const Table::Options& options) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table " + name);
  }
  const uint32_t table_id = static_cast<uint32_t>(tables_.size());
  Result<Table> t = Table::Create(admin_.get(), table_id, options);
  if (!t.ok()) return t.status();
  auto owned = std::make_unique<Table>(std::move(*t));
  const Table* ptr = owned.get();
  tables_[name] = std::move(owned);
  return ptr;
}

const Table* DsmDb::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<const Table*> DsmDb::Tables() const {
  std::vector<const Table*> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(table.get());
  return out;
}

Status DsmDb::FinishSetup() {
  if (setup_done_) return Status::OK();
  setup_done_ = true;
  if (db_options_.architecture != Architecture::kCacheSharding) {
    return Status::OK();
  }
  if (compute_nodes_.empty()) {
    return Status::InvalidArgument("sharding needs compute nodes");
  }
  std::vector<rdma::NodeId> owner_ids;
  owner_ids.reserve(compute_nodes_.size());
  for (const auto& cn : compute_nodes_) {
    owner_ids.push_back(cn->fabric_id());
  }
  for (const auto& [name, table] : tables_) {
    auto mgr = std::make_unique<ShardManager>(
        table->num_keys(), static_cast<uint32_t>(compute_nodes_.size()));
    for (const auto& cn : compute_nodes_) {
      cn->EnableSharding(mgr.get(), table.get(), owner_ids);
    }
    shard_managers_[name] = std::move(mgr);
  }
  return Status::OK();
}

ShardManager* DsmDb::shards(const std::string& table_name) {
  auto it = shard_managers_.find(table_name);
  return it == shard_managers_.end() ? nullptr : it->second.get();
}

}  // namespace dsmdb::core
