#include "core/sharding.h"

#include <algorithm>
#include <cassert>

namespace dsmdb::core {

ShardManager::ShardManager(uint64_t num_keys, uint32_t num_owners)
    : num_keys_(num_keys), num_owners_(num_owners == 0 ? 1 : num_owners) {
  RangeMap map;
  const uint64_t per = (num_keys_ + num_owners_ - 1) / num_owners_;
  for (uint32_t i = 0; i < num_owners_; i++) {
    const uint64_t begin = std::min<uint64_t>(i * per, num_keys_);
    const uint64_t end = std::min<uint64_t>(begin + per, num_keys_);
    map.push_back(Range{begin, end, i});
  }
  map_ = std::make_shared<const RangeMap>(std::move(map));
}

uint32_t ShardManager::OwnerOf(uint64_t key) const {
  std::shared_ptr<const RangeMap> map;
  {
    SpinLatchGuard g(latch_);
    map = map_;
  }
  // Ranges are sorted by begin; binary search the covering range.
  auto it = std::upper_bound(
      map->begin(), map->end(), key,
      [](uint64_t k, const Range& r) { return k < r.begin; });
  assert(it != map->begin());
  --it;
  assert(key >= it->begin && key < it->end);
  return it->owner;
}

uint64_t ShardManager::UpdateRanges(std::vector<Range> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });
  auto next = std::make_shared<const RangeMap>(std::move(ranges));
  std::shared_ptr<const RangeMap> old;
  {
    SpinLatchGuard g(latch_);
    old = map_;
    map_ = next;
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  // Count keys whose ownership changed (metadata-only churn).
  uint64_t moved = 0;
  for (const Range& r : *next) {
    for (const Range& o : *old) {
      const uint64_t lo = std::max(r.begin, o.begin);
      const uint64_t hi = std::min(r.end, o.end);
      if (lo < hi && r.owner != o.owner) moved += hi - lo;
    }
  }
  return moved;
}

std::vector<ShardManager::Range> ShardManager::CurrentRanges() const {
  SpinLatchGuard g(latch_);
  return *map_;
}

std::vector<double> ShardManager::OwnerHeat(
    const obs::SkewSignals& signals) const {
  std::vector<double> out(num_owners_, 0.0);
  const size_t n = signals.shard_heat.size();
  if (n == 0 || num_keys_ == 0) return out;
  // Heat shard s covers keys [s*num_keys/n, (s+1)*num_keys/n); charge its
  // heat to the owner of its midpoint key (heat shards are much finer than
  // owner ranges in practice, so midpoint attribution is exact enough for
  // imbalance scoring).
  for (size_t s = 0; s < n; s++) {
    if (signals.shard_heat[s] <= 0) continue;
    const uint64_t mid =
        std::min(num_keys_ - 1, (2 * s + 1) * num_keys_ / (2 * n));
    out[OwnerOf(mid)] += signals.shard_heat[s];
  }
  return out;
}

}  // namespace dsmdb::core
