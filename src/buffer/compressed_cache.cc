#include "buffer/compressed_cache.h"

#include <cstring>

#include "common/sim_clock.h"

namespace dsmdb::buffer {

std::string PageCodec::Compress(const char* data, size_t len) {
  std::string out;
  out.reserve(len / 4);
  size_t i = 0;
  while (i < len) {
    // Measure the run starting at i.
    size_t run = 1;
    while (i + run < len && data[i + run] == data[i] && run < 255) run++;
    if (run >= 4) {
      out.push_back(static_cast<char>(run));
      out.push_back(data[i]);
      i += run;
      continue;
    }
    // Literal stretch: up to 255 bytes with no run >= 4 inside.
    size_t lit_end = i;
    size_t probe = i;
    while (probe < len && probe - i < 255) {
      size_t r = 1;
      while (probe + r < len && data[probe + r] == data[probe] && r < 4) r++;
      if (r >= 4) break;
      probe += r;
      lit_end = probe;
    }
    if (lit_end == i) lit_end = i + 1;
    if (lit_end - i > 255) lit_end = i + 255;
    out.push_back('\0');
    out.push_back(static_cast<char>(lit_end - i));
    out.append(data + i, lit_end - i);
    i = lit_end;
  }
  return out;
}

bool PageCodec::Decompress(std::string_view compressed, char* out,
                           size_t expected) {
  size_t pos = 0;
  size_t produced = 0;
  while (pos < compressed.size()) {
    const auto tag = static_cast<unsigned char>(compressed[pos]);
    if (tag == 0) {
      if (pos + 2 > compressed.size()) return false;
      const auto lit = static_cast<unsigned char>(compressed[pos + 1]);
      if (pos + 2 + lit > compressed.size() || produced + lit > expected) {
        return false;
      }
      std::memcpy(out + produced, compressed.data() + pos + 2, lit);
      produced += lit;
      pos += 2 + lit;
    } else {
      if (pos + 2 > compressed.size() || produced + tag > expected) {
        return false;
      }
      std::memset(out + produced, compressed[pos + 1], tag);
      produced += tag;
      pos += 2;
    }
  }
  return produced == expected;
}

CompressedPageCache::CompressedPageCache(dsm::DsmClient* dsm,
                                         const Options& options)
    : dsm_(dsm), options_(options) {}

Status CompressedPageCache::Read(dsm::GlobalAddress addr, void* out,
                                 size_t len) {
  auto* dst = static_cast<char*>(out);
  while (len > 0) {
    const uint64_t in_page = addr.offset % options_.page_size;
    const size_t chunk = std::min<size_t>(len, options_.page_size - in_page);
    DSMDB_RETURN_NOT_OK(ReadChunk(addr, dst, chunk));
    addr.offset += chunk;
    dst += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status CompressedPageCache::ReadChunk(dsm::GlobalAddress addr, void* out,
                                      size_t len) {
  const dsm::GlobalAddress page{
      addr.node, addr.offset - addr.offset % options_.page_size};
  const uint64_t key = page.Pack();
  const size_t off = addr.offset - page.offset;

  {
    SpinLatchGuard g(latch_);
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      // Hit: decompress the page, charge the decompression cost.
      std::vector<char> image(options_.page_size);
      if (!PageCodec::Decompress(it->second.compressed, image.data(),
                                 image.size())) {
        return Status::Corruption("compressed page failed to decode");
      }
      std::memcpy(out, image.data() + off, len);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      SimClock::Advance(static_cast<uint64_t>(
          static_cast<double>(options_.page_size) /
          options_.decompress_bytes_per_ns));
      return Status::OK();
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Miss: fetch, compress, insert.
  std::vector<char> image(options_.page_size);
  DSMDB_RETURN_NOT_OK(dsm_->Read(page, image.data(), image.size()));
  std::string compressed = PageCodec::Compress(image.data(), image.size());
  SimClock::Advance(static_cast<uint64_t>(
      static_cast<double>(options_.page_size) /
      options_.compress_bytes_per_ns));
  std::memcpy(out, image.data() + off, len);

  SpinLatchGuard g(latch_);
  if (!pages_.contains(key)) {
    lru_.push_front(key);
    compressed_bytes_ += compressed.size();
    uncompressed_bytes_ += options_.page_size;
    pages_[key] = Frame{std::move(compressed), lru_.begin()};
    EvictToFitLocked();
  }
  return Status::OK();
}

void CompressedPageCache::EvictToFitLocked() {
  while (compressed_bytes_ > options_.capacity_bytes && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = pages_.find(victim);
    if (it != pages_.end()) {
      compressed_bytes_ -= it->second.compressed.size();
      uncompressed_bytes_ -= options_.page_size;
      pages_.erase(it);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void CompressedPageCache::Invalidate(dsm::GlobalAddress addr) {
  const dsm::GlobalAddress page{
      addr.node, addr.offset - addr.offset % options_.page_size};
  SpinLatchGuard g(latch_);
  auto it = pages_.find(page.Pack());
  if (it == pages_.end()) return;
  compressed_bytes_ -= it->second.compressed.size();
  uncompressed_bytes_ -= options_.page_size;
  lru_.erase(it->second.lru_it);
  pages_.erase(it);
}

CompressedCacheStats CompressedPageCache::Snapshot() const {
  CompressedCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  SpinLatchGuard g(latch_);
  s.compressed_bytes = compressed_bytes_;
  s.uncompressed_bytes = uncompressed_bytes_;
  return s;
}

size_t CompressedPageCache::ResidentPages() const {
  SpinLatchGuard g(latch_);
  return pages_.size();
}

}  // namespace dsmdb::buffer
