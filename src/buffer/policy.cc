#include "buffer/policy.h"

#include "buffer/arc.h"
#include "buffer/clock.h"
#include "buffer/fifo.h"
#include "buffer/lru.h"
#include "buffer/lru_k.h"
#include "buffer/two_q.h"

namespace dsmdb::buffer {

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return "fifo";
    case PolicyKind::kLru:
      return "lru";
    case PolicyKind::kLruK:
      return "lru-2";
    case PolicyKind::kTwoQ:
      return "2q";
    case PolicyKind::kClock:
      return "clock";
    case PolicyKind::kArc:
      return "arc";
  }
  return "?";
}

std::unique_ptr<ReplacementPolicy> MakePolicy(PolicyKind kind,
                                              size_t capacity) {
  if (capacity == 0) capacity = 1;
  switch (kind) {
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>(capacity);
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>(capacity);
    case PolicyKind::kLruK:
      return std::make_unique<LruKPolicy>(capacity);
    case PolicyKind::kTwoQ:
      return std::make_unique<TwoQPolicy>(capacity);
    case PolicyKind::kClock:
      return std::make_unique<ClockPolicy>(capacity);
    case PolicyKind::kArc:
      return std::make_unique<ArcPolicy>(capacity);
  }
  return nullptr;
}

}  // namespace dsmdb::buffer
