#ifndef DSMDB_BUFFER_ARC_H_
#define DSMDB_BUFFER_ARC_H_

#include <list>
#include <unordered_map>

#include "buffer/policy.h"

namespace dsmdb::buffer {

/// ARC [43]: self-tuning between recency (T1) and frequency (T2) lists
/// with ghost lists B1/B2 steering the adaptation target `p`. The highest
/// hit rates of the classical policies on mixed workloads, but also the
/// most per-access bookkeeping — the tension bench E6 measures.
class ArcPolicy final : public ReplacementPolicy {
 public:
  explicit ArcPolicy(size_t capacity) : capacity_(capacity) {}

  std::string_view name() const override { return "arc"; }

  void OnHit(uint64_t key) override;
  std::optional<uint64_t> OnInsert(uint64_t key) override;
  void OnErase(uint64_t key) override;
  size_t Size() const override { return resident_.size(); }

  /// Adaptation target (diagnostics).
  size_t p() const { return p_; }

 private:
  enum class Where { kT1, kT2, kB1, kB2 };

  struct Entry {
    Where where;
    std::list<uint64_t>::iterator it;
  };

  std::list<uint64_t>& ListOf(Where w);
  /// REPLACE(p) from the ARC paper: evicts from T1 or T2 into the ghost
  /// lists; returns the evicted resident key.
  uint64_t Replace(bool hit_in_b2);
  void TrimGhosts();

  size_t capacity_;
  size_t p_ = 0;  // target size of T1

  std::list<uint64_t> t1_, t2_, b1_, b2_;  // front = MRU
  std::unordered_map<uint64_t, Entry> resident_;  // keys in T1 or T2
  std::unordered_map<uint64_t, Entry> ghost_;     // keys in B1 or B2
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_ARC_H_
