#include "buffer/coherence.h"

#include "check/checker.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "dsm/rpc_ids.h"
#include "obs/heat_map.h"
#include "obs/trace.h"

namespace dsmdb::buffer {

void DirectoryCoherence::OnCacheInsert(dsm::GlobalAddress page) {
  (void)dsm_->DirRegisterSharer(page, dsm_->self());
}

void DirectoryCoherence::OnCacheEvict(dsm::GlobalAddress page) {
  (void)dsm_->DirUnregisterSharer(page, dsm_->self());
}

std::string DirectoryCoherence::EncodeInvalidate(dsm::GlobalAddress page) {
  std::string msg;
  msg.push_back(0);
  PutFixed64(&msg, page.Pack());
  return msg;
}

std::string DirectoryCoherence::EncodeUpdate(dsm::GlobalAddress chunk,
                                             const void* data, size_t len) {
  std::string msg;
  msg.push_back(1);
  PutFixed64(&msg, chunk.Pack());
  msg.append(static_cast<const char*>(data), len);
  return msg;
}

Status DirectoryCoherence::OnLocalWrite(dsm::GlobalAddress page,
                                        dsm::GlobalAddress chunk,
                                        const void* data, size_t len) {
  obs::TraceScope span("coherence.fanout", "coherence");
  // Invalidation mode transfers exclusivity (peers drop their copies and
  // leave the sharer set); update mode refreshes peers in place, so they
  // stay registered for future writes.
  Result<std::vector<uint32_t>> sharers =
      update_based_ ? dsm_->DirPeersForUpdate(page, dsm_->self())
                    : dsm_->DirAcquireExclusive(page, dsm_->self());
  if (!sharers.ok()) return sharers.status();
  if (sharers->empty()) return Status::OK();

  const std::string msg = update_based_
                              ? EncodeUpdate(chunk, data, len)
                              : EncodeInvalidate(page);
  // Notify all peer sharers as one pipelined two-sided fan-out (~1 RTT
  // plus a posting per peer, via the async verb engine).
  dsm::DsmPipeline pipe(dsm_);
  std::vector<std::string> resps(sharers->size());
  for (size_t i = 0; i < sharers->size(); i++) {
    pipe.Call((*sharers)[i], dsm::kSvcInvalidate, msg, &resps[i]);
  }
  // A dead peer cannot hold a stale cache, so Unavailable is fine.
  (void)pipe.WaitAll();
  // Checker edge: every peer has acked (dropped or refreshed its copy);
  // a later miss-fill of this page joins here.
  check::SyncPublish(check::kNsPage, page.Pack());
  if (update_based_) {
    updates_sent_.fetch_add(sharers->size(), std::memory_order_relaxed);
  } else {
    invalidations_sent_.fetch_add(sharers->size(),
                                  std::memory_order_relaxed);
  }
  // Heat: one invalidation-round unit per notified peer, charged to the
  // written chunk (record granularity beats page for hot-key attribution).
  if (obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kInvalidation,
                                              chunk.Pack(),
                                              sharers->size());
  }
  return Status::OK();
}

}  // namespace dsmdb::buffer
