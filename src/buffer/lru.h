#ifndef DSMDB_BUFFER_LRU_H_
#define DSMDB_BUFFER_LRU_H_

#include <list>
#include <unordered_map>

#include "buffer/policy.h"

namespace dsmdb::buffer {

/// Classic LRU: doubly-linked recency list plus a hash map of list
/// iterators. Every hit splices the entry to the front — the maintenance
/// cost the paper flags as potentially dominating with fast RDMA.
class LruPolicy final : public ReplacementPolicy {
 public:
  explicit LruPolicy(size_t capacity) : capacity_(capacity) {}

  std::string_view name() const override { return "lru"; }

  void OnHit(uint64_t key) override;
  std::optional<uint64_t> OnInsert(uint64_t key) override;
  void OnErase(uint64_t key) override;
  size_t Size() const override { return map_.size(); }

 private:
  size_t capacity_;
  std::list<uint64_t> list_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_LRU_H_
