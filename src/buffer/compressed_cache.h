#ifndef DSMDB_BUFFER_COMPRESSED_CACHE_H_
#define DSMDB_BUFFER_COMPRESSED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <list>

#include "common/result.h"
#include "common/spin_latch.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"

namespace dsmdb::buffer {

/// Byte-oriented RLE codec for page images. Deliberately light-weight: the
/// paper's point (Challenge #8) is that with RDMA-narrowed miss penalties,
/// only *light-weight* compression can pay for itself — "decompression
/// overhead might even be higher than directly fetching uncompressed data
/// from remote memory".
///
/// Format: sequence of (count:1B, byte:1B) pairs for runs >= 4, and
/// (0x00, len:1B, literal bytes) escape for literal stretches. Worst case
/// ~1.01x expansion on incompressible data.
class PageCodec {
 public:
  static std::string Compress(const char* data, size_t len);
  /// Decompresses into `out` (must hold `expected` bytes). Returns false
  /// on malformed input or size mismatch.
  static bool Decompress(std::string_view compressed, char* out,
                         size_t expected);
};

struct CompressedCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Bytes of page images currently cached, after compression.
  uint64_t compressed_bytes = 0;
  /// What the same pages would occupy uncompressed.
  uint64_t uncompressed_bytes = 0;
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
  double CompressionRatio() const {
    return compressed_bytes == 0
               ? 1.0
               : static_cast<double>(uncompressed_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

/// A read-mostly page cache that stores pages *compressed* in local memory
/// (Challenge #8's "evaluate the effectiveness of caching compressed
/// pages"): the same local-memory budget holds CompressionRatio() times
/// more pages, at a per-hit decompression cost charged to simulated time.
///
/// Capacity is enforced in *compressed bytes* — that is the whole point.
/// Writes invalidate (read-only cache; writers go through DsmClient or a
/// BufferPool). Thread-safe.
class CompressedPageCache {
 public:
  struct Options {
    uint64_t capacity_bytes = 4ULL << 20;  ///< budget for compressed bytes
    size_t page_size = 4096;
    /// Simulated decompression speed (bytes per ns); ~2 bytes/ns models an
    /// LZ4-class decompressor on one core.
    double decompress_bytes_per_ns = 2.0;
    /// Simulated compression speed on insert.
    double compress_bytes_per_ns = 1.0;
  };

  CompressedPageCache(dsm::DsmClient* dsm, const Options& options);

  /// Reads `len` bytes at `addr` through the cache (may span pages).
  Status Read(dsm::GlobalAddress addr, void* out, size_t len);

  /// Drops the page containing `addr` (call on writes).
  void Invalidate(dsm::GlobalAddress addr);

  CompressedCacheStats Snapshot() const;
  size_t ResidentPages() const;

 private:
  struct Frame {
    std::string compressed;
    std::list<uint64_t>::iterator lru_it;
  };

  Status ReadChunk(dsm::GlobalAddress addr, void* out, size_t len);
  /// Evicts LRU pages until compressed bytes fit the budget (latch held).
  void EvictToFitLocked();

  dsm::DsmClient* dsm_;
  Options options_;

  mutable SpinLatch latch_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, Frame> pages_;
  uint64_t compressed_bytes_ = 0;
  uint64_t uncompressed_bytes_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_COMPRESSED_CACHE_H_
