#ifndef DSMDB_BUFFER_COHERENCE_H_
#define DSMDB_BUFFER_COHERENCE_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"

namespace dsmdb::buffer {

/// Software cache coherence for Figure 3b ("Cache, No Sharding"): there is
/// no hardware coherence across compute nodes, so the buffer manager must
/// keep caches consistent itself (Challenge #4, Approach #2).
///
/// The pool calls these hooks; implementations talk to the per-page
/// directory on the owning memory node and notify peer compute nodes.
/// IMPORTANT: hooks are invoked *without* any pool latch held, because
/// peer notification re-enters the peer's pool.
class CoherenceController {
 public:
  virtual ~CoherenceController() = default;
  virtual std::string_view name() const = 0;

  /// This node cached `page` (read miss completed).
  virtual void OnCacheInsert(dsm::GlobalAddress page) = 0;

  /// This node dropped `page` from its cache.
  virtual void OnCacheEvict(dsm::GlobalAddress page) = 0;

  /// This node is writing the bytes [chunk, chunk+len) inside `page`
  /// (the page-aligned base). `data` is the new content of that range
  /// (used by update-based propagation; invalidation-based ignores it).
  virtual Status OnLocalWrite(dsm::GlobalAddress page,
                              dsm::GlobalAddress chunk, const void* data,
                              size_t len) = 0;
};

/// For Figure 3a/3c, where coherence is unnecessary by construction.
class NoCoherence final : public CoherenceController {
 public:
  std::string_view name() const override { return "none"; }
  void OnCacheInsert(dsm::GlobalAddress) override {}
  void OnCacheEvict(dsm::GlobalAddress) override {}
  Status OnLocalWrite(dsm::GlobalAddress, dsm::GlobalAddress, const void*,
                      size_t) override {
    return Status::OK();
  }
};

/// Directory-based coherence. Two propagation modes (the paper's
/// "invalidation- vs update-based" design axis):
///  * invalidation: peers drop their stale copy (cheap message, next read
///    re-fetches);
///  * update: peers receive the new page image (bigger message, no
///    subsequent miss).
class DirectoryCoherence final : public CoherenceController {
 public:
  /// `cache_id` is this compute node's fabric id; peers are addressed by
  /// the ids recorded in the directory.
  DirectoryCoherence(dsm::DsmClient* dsm, bool update_based)
      : dsm_(dsm), update_based_(update_based) {}

  std::string_view name() const override {
    return update_based_ ? "dir-update" : "dir-invalidate";
  }

  void OnCacheInsert(dsm::GlobalAddress page) override;
  void OnCacheEvict(dsm::GlobalAddress page) override;
  Status OnLocalWrite(dsm::GlobalAddress page, dsm::GlobalAddress chunk,
                      const void* data, size_t len) override;

  uint64_t InvalidationsSent() const {
    return invalidations_sent_.load(std::memory_order_relaxed);
  }
  uint64_t UpdatesSent() const {
    return updates_sent_.load(std::memory_order_relaxed);
  }

  /// Wire helpers for the compute-node side (kSvcInvalidate handler).
  /// Request layout: byte mode (0=invalidate, 1=update) | fixed64
  /// page.Pack() | page image (update only).
  static std::string EncodeInvalidate(dsm::GlobalAddress page);
  static std::string EncodeUpdate(dsm::GlobalAddress chunk,
                                  const void* data, size_t len);

 private:
  dsm::DsmClient* dsm_;
  bool update_based_;
  std::atomic<uint64_t> invalidations_sent_{0};
  std::atomic<uint64_t> updates_sent_{0};
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_COHERENCE_H_
