#ifndef DSMDB_BUFFER_FIFO_H_
#define DSMDB_BUFFER_FIFO_H_

#include <deque>
#include <unordered_set>

#include "buffer/policy.h"

namespace dsmdb::buffer {

/// First-in-first-out: the cheapest possible policy (no per-hit work at
/// all). Baseline for the software-overhead study: it has the worst hit
/// rate on skewed traces but zero hit-path maintenance cost.
class FifoPolicy final : public ReplacementPolicy {
 public:
  explicit FifoPolicy(size_t capacity) : capacity_(capacity) {}

  std::string_view name() const override { return "fifo"; }

  void OnHit(uint64_t key) override { (void)key; }

  std::optional<uint64_t> OnInsert(uint64_t key) override;

  void OnErase(uint64_t key) override;

  size_t Size() const override { return resident_.size(); }

 private:
  size_t capacity_;
  std::deque<uint64_t> queue_;
  std::unordered_set<uint64_t> resident_;
  std::unordered_set<uint64_t> erased_;  // lazily dropped from queue_
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_FIFO_H_
