#include "buffer/lru_k.h"

namespace dsmdb::buffer {

void LruKPolicy::Touch(Entry& e, uint64_t key) {
  for (int i = kK - 1; i > 0; i--) e.history[i] = e.history[i - 1];
  e.history[0] = ++tick_;
  order_.erase(e.order_it);
  e.order_it = order_.emplace(KthTime(e), key);
}

void LruKPolicy::OnHit(uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Touch(it->second, key);
}

std::optional<uint64_t> LruKPolicy::OnInsert(uint64_t key) {
  Entry e;
  e.history.fill(0);  // unknown history => infinite K-distance
  e.history[0] = ++tick_;
  e.order_it = order_.emplace(KthTime(e), key);
  entries_.emplace(key, e);

  if (entries_.size() <= capacity_) return std::nullopt;
  // Victim: smallest K-th access time (entries with < K references evict
  // first, per the LRU-K paper's fallback) — but never the key we just
  // admitted.
  auto vit = order_.begin();
  if (vit->second == key) ++vit;
  const uint64_t victim = vit->second;
  entries_.erase(victim);
  order_.erase(vit);
  return victim;
}

void LruKPolicy::OnErase(uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  order_.erase(it->second.order_it);
  entries_.erase(it);
}

}  // namespace dsmdb::buffer
