#include "buffer/two_q.h"

#include <algorithm>

namespace dsmdb::buffer {

TwoQPolicy::TwoQPolicy(size_t capacity)
    : capacity_(capacity),
      kin_(std::max<size_t>(1, capacity / 4)),
      kout_(std::max<size_t>(1, capacity / 2)) {}

void TwoQPolicy::OnHit(uint64_t key) {
  auto it = where_.find(key);
  if (it == where_.end()) return;
  if (it->second.where == Where::kAm) {
    am_.splice(am_.begin(), am_, it->second.it);
  }
  // Hits in A1in are deliberately ignored (2Q's cheap-hit property).
}

void TwoQPolicy::GhostInsert(uint64_t key) {
  a1out_.push_front(key);
  ghosts_[key] = a1out_.begin();
  if (ghosts_.size() > kout_) {
    const uint64_t dropped = a1out_.back();
    a1out_.pop_back();
    ghosts_.erase(dropped);
  }
}

uint64_t TwoQPolicy::EvictOne() {
  // Per 2Q: if A1in is over its share, evict its tail to ghost; otherwise
  // evict the LRU tail of Am.
  if (a1in_.size() > kin_ || am_.empty()) {
    const uint64_t victim = a1in_.back();
    a1in_.pop_back();
    where_.erase(victim);
    GhostInsert(victim);
    return victim;
  }
  const uint64_t victim = am_.back();
  am_.pop_back();
  where_.erase(victim);
  return victim;
}

std::optional<uint64_t> TwoQPolicy::OnInsert(uint64_t key) {
  auto git = ghosts_.find(key);
  if (git != ghosts_.end()) {
    // Second reference within the ghost window: promote to Am.
    a1out_.erase(git->second);
    ghosts_.erase(git);
    am_.push_front(key);
    where_[key] = Entry{Where::kAm, am_.begin()};
  } else {
    a1in_.push_front(key);
    where_[key] = Entry{Where::kA1in, a1in_.begin()};
  }
  if (where_.size() <= capacity_) return std::nullopt;
  return EvictOne();
}

void TwoQPolicy::OnErase(uint64_t key) {
  auto it = where_.find(key);
  if (it == where_.end()) return;
  if (it->second.where == Where::kA1in) {
    a1in_.erase(it->second.it);
  } else {
    am_.erase(it->second.it);
  }
  where_.erase(it);
}

}  // namespace dsmdb::buffer
