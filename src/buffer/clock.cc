#include "buffer/clock.h"

namespace dsmdb::buffer {

ClockPolicy::ClockPolicy(size_t capacity)
    : capacity_(capacity), slots_(capacity) {}

void ClockPolicy::OnHit(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  slots_[it->second].referenced = true;
}

std::optional<uint64_t> ClockPolicy::OnInsert(uint64_t key) {
  // Fast path: free slot available.
  if (index_.size() < capacity_) {
    for (size_t scanned = 0; scanned < capacity_; scanned++) {
      Slot& s = slots_[hand_];
      hand_ = (hand_ + 1) % capacity_;
      if (!s.occupied) {
        s = Slot{key, true, true};
        index_[key] = (hand_ + capacity_ - 1) % capacity_;
        return std::nullopt;
      }
    }
  }
  // Sweep: clear reference bits until an unreferenced victim is found.
  while (true) {
    Slot& s = slots_[hand_];
    const size_t pos = hand_;
    hand_ = (hand_ + 1) % capacity_;
    if (!s.occupied) {
      s = Slot{key, true, true};
      index_[key] = pos;
      return std::nullopt;
    }
    if (s.referenced) {
      s.referenced = false;
      continue;
    }
    const uint64_t victim = s.key;
    index_.erase(victim);
    s = Slot{key, true, true};
    index_[key] = pos;
    return victim;
  }
}

void ClockPolicy::OnErase(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  slots_[it->second] = Slot{};
  index_.erase(it);
}

}  // namespace dsmdb::buffer
