#include "buffer/arc.h"

#include <algorithm>
#include <cassert>

namespace dsmdb::buffer {

std::list<uint64_t>& ArcPolicy::ListOf(Where w) {
  switch (w) {
    case Where::kT1:
      return t1_;
    case Where::kT2:
      return t2_;
    case Where::kB1:
      return b1_;
    case Where::kB2:
      return b2_;
  }
  return t1_;  // unreachable
}

void ArcPolicy::OnHit(uint64_t key) {
  auto it = resident_.find(key);
  if (it == resident_.end()) return;
  // Case I: move to MRU of T2.
  ListOf(it->second.where).erase(it->second.it);
  t2_.push_front(key);
  it->second = Entry{Where::kT2, t2_.begin()};
}

uint64_t ArcPolicy::Replace(bool hit_in_b2) {
  const bool take_t1 =
      !t1_.empty() && (t1_.size() > p_ || (hit_in_b2 && t1_.size() == p_));
  if (take_t1 || t2_.empty()) {
    assert(!t1_.empty());
    const uint64_t victim = t1_.back();
    t1_.pop_back();
    resident_.erase(victim);
    b1_.push_front(victim);
    ghost_[victim] = Entry{Where::kB1, b1_.begin()};
    return victim;
  }
  const uint64_t victim = t2_.back();
  t2_.pop_back();
  resident_.erase(victim);
  b2_.push_front(victim);
  ghost_[victim] = Entry{Where::kB2, b2_.begin()};
  return victim;
}

std::optional<uint64_t> ArcPolicy::OnInsert(uint64_t key) {
  std::optional<uint64_t> victim;
  auto git = ghost_.find(key);
  if (git != ghost_.end()) {
    // Cases II / III: ghost hit steers the adaptation target.
    const bool in_b2 = git->second.where == Where::kB2;
    if (!in_b2) {
      const size_t delta = std::max<size_t>(1, b2_.size() / std::max<size_t>(1, b1_.size()));
      p_ = std::min(capacity_, p_ + delta);
    } else {
      const size_t delta = std::max<size_t>(1, b1_.size() / std::max<size_t>(1, b2_.size()));
      p_ = p_ > delta ? p_ - delta : 0;
    }
    ListOf(git->second.where).erase(git->second.it);
    ghost_.erase(git);
    if (resident_.size() >= capacity_) victim = Replace(in_b2);
    t2_.push_front(key);
    resident_[key] = Entry{Where::kT2, t2_.begin()};
    return victim;
  }

  // Case IV: brand-new key.
  if (t1_.size() + b1_.size() == capacity_) {
    if (t1_.size() < capacity_) {
      const uint64_t dropped = b1_.back();
      b1_.pop_back();
      ghost_.erase(dropped);
      if (resident_.size() >= capacity_) victim = Replace(false);
    } else {
      // |T1| == c: evict LRU of T1 without ghosting it.
      const uint64_t v = t1_.back();
      t1_.pop_back();
      resident_.erase(v);
      victim = v;
    }
  } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >=
             capacity_) {
    if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >=
        2 * capacity_) {
      if (!b2_.empty()) {
        const uint64_t dropped = b2_.back();
        b2_.pop_back();
        ghost_.erase(dropped);
      }
    }
    if (resident_.size() >= capacity_) victim = Replace(false);
  }
  t1_.push_front(key);
  resident_[key] = Entry{Where::kT1, t1_.begin()};
  return victim;
}

void ArcPolicy::OnErase(uint64_t key) {
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    ListOf(it->second.where).erase(it->second.it);
    resident_.erase(it);
    return;
  }
  auto git = ghost_.find(key);
  if (git != ghost_.end()) {
    ListOf(git->second.where).erase(git->second.it);
    ghost_.erase(git);
  }
}

}  // namespace dsmdb::buffer
