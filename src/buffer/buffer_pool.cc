#include "buffer/buffer_pool.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "check/checker.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "obs/heat_map.h"
#include "obs/obs_config.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace dsmdb::buffer {

namespace {

/// Real-time measurement of metadata/maintenance sections; charged to the
/// simulated clock so "software overhead" competes with network time.
class OverheadTimer {
 public:
  explicit OverheadTimer(bool enabled) : enabled_(enabled) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  uint64_t StopNs() {
    if (!enabled_) return 0;
    const auto end = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count());
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

BufferPool::BufferPool(dsm::DsmClient* dsm, const BufferPoolOptions& options,
                       CoherenceController* coherence)
    : dsm_(dsm),
      options_(options),
      coherence_(coherence != nullptr ? coherence : &no_coherence_),
      capacity_pages_(
          std::max<size_t>(1, options.capacity_bytes / options.page_size)),
      shards_(options.shards == 0 ? 1 : options.shards) {
  const size_t per_shard =
      std::max<size_t>(1, capacity_pages_ / shards_.size());
  for (Shard& s : shards_) {
    s.policy = MakePolicy(options_.policy, per_shard);
  }

  obs::Telemetry& telemetry = obs::Telemetry::Instance();
  obs_.read_hit_ns = telemetry.GetHistogram("buffer.read.hit_ns");
  obs_.read_miss_ns = telemetry.GetHistogram("buffer.read.miss_ns");
  obs_.write_ns = telemetry.GetHistogram("buffer.write_ns");
  MetricsRegistry& metrics = GlobalMetrics();
  const auto publish = [&](const char* name,
                           const std::atomic<uint64_t>* src) {
    gauge_tokens_.push_back(metrics.RegisterGauge(
        name, [src] { return src->load(std::memory_order_relaxed); }));
  };
  publish("buffer.pool.hits", &hits_);
  publish("buffer.pool.misses", &misses_);
  publish("buffer.pool.evictions", &evictions_);
  publish("buffer.pool.writebacks", &writebacks_);
  publish("buffer.pool.invalidations_received", &invalidations_received_);
  publish("buffer.pool.updates_received", &updates_received_);
  publish("buffer.pool.policy_ns", &policy_ns_);
  hit_rate_gauge_ = obs::FlightRecorder::Instance().RegisterGauge(
      "buffer.hit_rate", [this](uint64_t) {
        const uint64_t h = hits_.load(std::memory_order_relaxed);
        const uint64_t m = misses_.load(std::memory_order_relaxed);
        return h + m == 0
                   ? 0.0
                   : static_cast<double>(h) / static_cast<double>(h + m);
      });
}

BufferPool::~BufferPool() = default;

Status BufferPool::Read(dsm::GlobalAddress addr, void* out, size_t len) {
  auto* dst = static_cast<char*>(out);
  while (len > 0) {
    const uint64_t in_page = addr.offset % options_.page_size;
    const size_t chunk =
        std::min<size_t>(len, options_.page_size - in_page);
    DSMDB_RETURN_NOT_OK(ReadChunk(addr, dst, chunk));
    addr.offset += chunk;
    dst += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status BufferPool::Write(dsm::GlobalAddress addr, const void* src,
                         size_t len) {
  const auto* p = static_cast<const char*>(src);
  while (len > 0) {
    const uint64_t in_page = addr.offset % options_.page_size;
    const size_t chunk =
        std::min<size_t>(len, options_.page_size - in_page);
    DSMDB_RETURN_NOT_OK(WriteChunk(addr, p, chunk));
    addr.offset += chunk;
    p += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status BufferPool::ReadChunk(dsm::GlobalAddress addr, void* out,
                             size_t len) {
  obs::TraceScope span("buffer.read", "buffer");
  const uint64_t obs_start = SimClock::Now();
  const dsm::GlobalAddress page = PageBase(addr);
  const uint64_t key = page.Pack();
  const size_t off = addr.offset - page.offset;
  const rdma::CpuModel& cpu = dsm_->cluster()->compute_cpu();
  Shard& shard = ShardFor(key);

  {
    OverheadTimer timer(options_.charge_policy_overhead);
    check::NoCallZone zone("buffer.read.hit");
    shard.latch.Lock();
    auto it = shard.pages.find(key);
    if (it != shard.pages.end()) {
      shard.policy->OnHit(key);
      std::memcpy(out, it->second.data.data() + off, len);
      shard.latch.Unlock();
      const uint64_t meta_ns = timer.StopNs();
      policy_ns_.fetch_add(meta_ns, std::memory_order_relaxed);
      SimClock::Advance(meta_ns + cpu.LocalCopyNs(len));
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::HeatMap::Enabled()) {
        obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kHit,
                                                  addr.Pack());
      }
      if (obs::ObsConfig::Enabled()) {
        obs_.read_hit_ns->Add(SimClock::Now() - obs_start);
      }
      return Status::OK();
    }
    shard.latch.Unlock();
    const uint64_t meta_ns = timer.StopNs();
    policy_ns_.fetch_add(meta_ns, std::memory_order_relaxed);
    SimClock::Advance(meta_ns);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kMiss,
                                              addr.Pack());
  }

  // Fetch the whole page without holding the latch. Joining the page's
  // coherence var first orders the fill after the last acked writer; the
  // fill itself is page-granular IO the pool may race benignly (a peer's
  // concurrent chunk write lands via invalidation/update), so it is not
  // tracked as data accesses.
  check::SyncJoin(check::kNsPage, key);
  Frame frame;
  frame.data.resize(options_.page_size);
  {
    check::OptimisticScope opt("buffer.fill");
    DSMDB_RETURN_NOT_OK(dsm_->Read(page, frame.data.data(),
                                   options_.page_size));
  }

  OverheadTimer timer(options_.charge_policy_overhead);
  Evicted evicted;
  bool inserted = false;
  {
    check::NoCallZone zone("buffer.read.insert");
    shard.latch.Lock();
    auto it = shard.pages.find(key);
    if (it == shard.pages.end()) {
      auto victim = shard.policy->OnInsert(key);
      it = shard.pages.emplace(key, std::move(frame)).first;
      inserted = true;
      if (victim.has_value() && *victim != key) {
        evicted = EvictLocked(shard, *victim);
        it = shard.pages.find(key);  // rehash may have moved it
      }
    }
    std::memcpy(out, it->second.data.data() + off, len);
    shard.latch.Unlock();
  }
  // Register as a sharer only after our frame is visible in the shard (and
  // only if we won the insert race — the winner registers its own copy).
  // Paired with FinishEviction's recheck this closes the evict-vs-refill
  // window: either our insert is visible to the evictor's recheck, or our
  // registration is ordered after its deregistration. Runs latch-free —
  // it posts a two-sided call, and a handler on the peer may call back
  // into a pool (see the class invariant in buffer_pool.h).
  if (inserted) coherence_->OnCacheInsert(page);
  FinishEviction(shard, evicted);
  const uint64_t meta_ns = timer.StopNs();
  policy_ns_.fetch_add(meta_ns, std::memory_order_relaxed);
  SimClock::Advance(meta_ns + cpu.LocalCopyNs(len));
  if (obs::ObsConfig::Enabled()) {
    obs_.read_miss_ns->Add(SimClock::Now() - obs_start);
  }
  return Status::OK();
}

Status BufferPool::WriteChunk(dsm::GlobalAddress addr, const void* src,
                              size_t len) {
  obs::TraceScope span("buffer.write", "buffer");
  const uint64_t obs_start = SimClock::Now();
  const dsm::GlobalAddress page = PageBase(addr);
  const uint64_t key = page.Pack();
  const size_t off = addr.offset - page.offset;
  const rdma::CpuModel& cpu = dsm_->cluster()->compute_cpu();

  // 1. Coherence first, with no latch held: exclusivity + peer
  //    notification may re-enter peer pools.
  DSMDB_RETURN_NOT_OK(coherence_->OnLocalWrite(page, addr, src, len));

  // 2. Write through to the DSM so one-sided readers and later cache
  //    misses observe the new value. Like all pool IO this is not race-
  //    tracked: the pool's contract is bounded staleness via coherence,
  //    not happens-before ordering (DESIGN.md §7 limitations).
  if (options_.write_through) {
    check::OptimisticScope opt("buffer.write_through");
    DSMDB_RETURN_NOT_OK(dsm_->Write(addr, src, len));
  }

  // 3. Update the local copy if the page is cached (no write-allocate).
  OverheadTimer timer(options_.charge_policy_overhead);
  Shard& shard = ShardFor(key);
  check::NoCallZone zone("buffer.write");
  shard.latch.Lock();
  auto it = shard.pages.find(key);
  if (it != shard.pages.end()) {
    shard.policy->OnHit(key);
    std::memcpy(it->second.data.data() + off, src, len);
    if (!options_.write_through) it->second.dirty = true;
  } else if (!options_.write_through) {
    // Write-back mode must cache the write; fetch-free allocate requires a
    // full-page write, otherwise fall back to write-through for this chunk.
    shard.latch.Unlock();
    const uint64_t ns = timer.StopNs();
    policy_ns_.fetch_add(ns, std::memory_order_relaxed);
    SimClock::Advance(ns);
    Status st;
    {
      check::OptimisticScope opt("buffer.write_through");
      st = dsm_->Write(addr, src, len);
    }
    if (obs::ObsConfig::Enabled()) {
      obs_.write_ns->Add(SimClock::Now() - obs_start);
    }
    return st;
  }
  shard.latch.Unlock();
  const uint64_t meta_ns = timer.StopNs();
  policy_ns_.fetch_add(meta_ns, std::memory_order_relaxed);
  SimClock::Advance(meta_ns + cpu.LocalCopyNs(len));
  if (obs::ObsConfig::Enabled()) {
    obs_.write_ns->Add(SimClock::Now() - obs_start);
  }
  return Status::OK();
}

BufferPool::Evicted BufferPool::EvictLocked(Shard& shard,
                                            uint64_t victim_key) {
  Evicted out;
  auto it = shard.pages.find(victim_key);
  if (it == shard.pages.end()) return out;
  out.page = dsm::GlobalAddress::Unpack(victim_key);
  if (it->second.dirty) {
    // The write-back must complete before the erase becomes visible:
    // once the victim leaves the shard, a concurrent miss refills from
    // home memory and would cache pre-writeback bytes (stale reads, and
    // the refilled frame is clean so the lost update is never repaired).
    // It is a one-sided write, so it is legal inside the NoCallZone;
    // page-granular write-back is coherence-managed IO, not a protocol
    // data access — exclude it from race tracking like the miss fill.
    check::OptimisticScope opt("buffer.writeback");
    (void)dsm_->Write(out.page, it->second.data.data(),
                      it->second.data.size());
    writebacks_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.pages.erase(it);
  out.valid = true;
  return out;
}

void BufferPool::FinishEviction(Shard& shard, Evicted evicted) {
  if (!evicted.valid) return;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  if (obs::HeatMap::Enabled()) {
    obs::HeatMap::Instance().RecordPackedAddr(obs::HeatKind::kEvict,
                                              evicted.page.Pack());
  }
  coherence_->OnCacheEvict(evicted.page);
  // A concurrent miss may have re-cached the victim and registered with
  // the directory before the OnCacheEvict above, which then deregistered
  // a live copy — future invalidations would skip this node and the copy
  // would go permanently stale. Recheck under the latch (presence at this
  // instant is exact) and re-register; a fill that inserts after this
  // recheck registers itself after our OnCacheEvict, so every stable
  // cached copy ends up registered. Spurious registration (the rechecked
  // copy got evicted again meanwhile) is benign: invalidating an absent
  // page is a no-op.
  bool recached = false;
  {
    check::NoCallZone zone("buffer.evict.recheck");
    SpinLatchGuard g(shard.latch);
    recached = shard.pages.find(evicted.page.Pack()) != shard.pages.end();
  }
  if (recached) coherence_->OnCacheInsert(evicted.page);
}

Status BufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    check::NoCallZone zone("buffer.flush_all");
    check::OptimisticScope opt("buffer.writeback");
    SpinLatchGuard g(shard.latch);
    for (auto& [key, frame] : shard.pages) {
      if (!frame.dirty) continue;
      DSMDB_RETURN_NOT_OK(dsm_->Write(dsm::GlobalAddress::Unpack(key),
                                      frame.data.data(),
                                      frame.data.size()));
      frame.dirty = false;
      writebacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

void BufferPool::DropAll() {
  const size_t per_shard =
      std::max<size_t>(1, capacity_pages_ / shards_.size());
  for (Shard& shard : shards_) {
    SpinLatchGuard g(shard.latch);
    shard.pages.clear();
    shard.policy = MakePolicy(options_.policy, per_shard);
  }
}

void BufferPool::Invalidate(dsm::GlobalAddress page) {
  const uint64_t key = page.Pack();
  Shard& shard = ShardFor(key);
  check::NoCallZone zone("buffer.invalidate");
  SpinLatchGuard g(shard.latch);
  auto it = shard.pages.find(key);
  if (it == shard.pages.end()) return;
  shard.policy->OnErase(key);
  shard.pages.erase(it);
  invalidations_received_.fetch_add(1, std::memory_order_relaxed);
}

void BufferPool::ApplyUpdate(dsm::GlobalAddress page, std::string_view data) {
  // `page` here is the chunk address; data replaces bytes at that address.
  const dsm::GlobalAddress base = PageBase(page);
  const uint64_t key = base.Pack();
  const size_t off = page.offset - base.offset;
  Shard& shard = ShardFor(key);
  check::NoCallZone zone("buffer.apply_update");
  SpinLatchGuard g(shard.latch);
  auto it = shard.pages.find(key);
  if (it == shard.pages.end()) return;
  if (off + data.size() > it->second.data.size()) return;
  std::memcpy(it->second.data.data() + off, data.data(), data.size());
  updates_received_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t BufferPool::HandleCoherenceRpc(std::string_view request) {
  if (request.size() < 9) return 100;
  const uint8_t mode = static_cast<uint8_t>(request[0]);
  const dsm::GlobalAddress addr =
      dsm::GlobalAddress::Unpack(DecodeFixed64(request.data() + 1));
  if (mode == 0) {
    Invalidate(PageBase(addr));
    return 300;
  }
  const std::string_view payload = request.substr(9);
  ApplyUpdate(addr, payload);
  return 300 + payload.size() / 32;
}

BufferPoolStats BufferPool::Snapshot() const {
  BufferPoolStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.writebacks = writebacks_.load(std::memory_order_relaxed);
  s.invalidations_received =
      invalidations_received_.load(std::memory_order_relaxed);
  s.updates_received = updates_received_.load(std::memory_order_relaxed);
  s.policy_ns = policy_ns_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  writebacks_.store(0, std::memory_order_relaxed);
  invalidations_received_.store(0, std::memory_order_relaxed);
  updates_received_.store(0, std::memory_order_relaxed);
  policy_ns_.store(0, std::memory_order_relaxed);
}

size_t BufferPool::ResidentPages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    SpinLatchGuard g(const_cast<Shard&>(shard).latch);
    total += shard.pages.size();
  }
  return total;
}

}  // namespace dsmdb::buffer
