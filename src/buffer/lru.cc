#include "buffer/lru.h"

namespace dsmdb::buffer {

void LruPolicy::OnHit(uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  list_.splice(list_.begin(), list_, it->second);
}

std::optional<uint64_t> LruPolicy::OnInsert(uint64_t key) {
  list_.push_front(key);
  map_[key] = list_.begin();
  if (map_.size() <= capacity_) return std::nullopt;
  const uint64_t victim = list_.back();
  list_.pop_back();
  map_.erase(victim);
  return victim;
}

void LruPolicy::OnErase(uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  list_.erase(it->second);
  map_.erase(it);
}

}  // namespace dsmdb::buffer
