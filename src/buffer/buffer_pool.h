#ifndef DSMDB_BUFFER_BUFFER_POOL_H_
#define DSMDB_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "buffer/coherence.h"
#include "buffer/policy.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/spin_latch.h"
#include "common/status.h"
#include "dsm/dsm_client.h"
#include "dsm/gaddr.h"
#include "obs/flight_recorder.h"

namespace dsmdb::buffer {

struct BufferPoolOptions {
  /// Local cache budget; the paper's compute nodes have "a few GBs".
  uint64_t capacity_bytes = 8ULL << 20;
  size_t page_size = 4096;
  size_t shards = 16;
  PolicyKind policy = PolicyKind::kLru;
  /// Write-through (default) pushes every write to DSM immediately —
  /// required for coherence and for one-sided readers to see fresh data.
  /// Write-back defers to eviction/flush (usable only single-node).
  bool write_through = true;
  /// Charge the measured real CPU time of page-table + policy maintenance
  /// to simulated time (the "software overhead" of Challenge #8).
  bool charge_policy_overhead = true;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t invalidations_received = 0;
  uint64_t updates_received = 0;
  uint64_t policy_ns = 0;  ///< Real metadata/maintenance time charged.
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// The compute node's local page cache over the DSM layer (Sec. 5).
///
/// The hierarchy is two-level: *all* data lives in remote memory; hot
/// pages are cached locally. Pages are fixed-size aligned blocks of a
/// memory node's region, so arbitrary byte ranges (records, index nodes)
/// are cacheable regardless of allocation boundaries.
///
/// Thread-safe via sharded page tables. Coherence hooks are invoked
/// without shard latches held (see CoherenceController).
class BufferPool {
 public:
  BufferPool(dsm::DsmClient* dsm, const BufferPoolOptions& options,
             CoherenceController* coherence = nullptr);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads `len` bytes at `addr` through the cache. May span pages.
  Status Read(dsm::GlobalAddress addr, void* out, size_t len);

  /// Writes `len` bytes at `addr` through the cache (and through to DSM if
  /// write_through). Runs the coherence protocol for each touched page.
  Status Write(dsm::GlobalAddress addr, const void* src, size_t len);

  /// Writes back all dirty pages (write-back mode).
  Status FlushAll();

  /// Drops every cached page (e.g. after losing shard ownership).
  void DropAll();

  /// Coherence entry points (called from the compute node's kSvcInvalidate
  /// handler — i.e. from a *peer's* thread).
  void Invalidate(dsm::GlobalAddress page);
  void ApplyUpdate(dsm::GlobalAddress page, std::string_view data);
  /// Decodes a kSvcInvalidate request and applies it. Returns the
  /// simulated handler cost.
  uint64_t HandleCoherenceRpc(std::string_view request);

  BufferPoolStats Snapshot() const;
  void ResetStats();

  size_t page_size() const { return options_.page_size; }
  size_t capacity_pages() const { return capacity_pages_; }
  size_t ResidentPages() const;

  dsm::GlobalAddress PageBase(dsm::GlobalAddress addr) const {
    return dsm::GlobalAddress{
        addr.node, addr.offset - (addr.offset % options_.page_size)};
  }

 private:
  /// Latency histograms (obs::Telemetry, `buffer.*`); recording gated on
  /// obs::ObsConfig::Enabled(). The pool's counters are also published to
  /// GlobalMetrics() as gauges so StatsExporter::CollectGlobal() sees them.
  struct ObsHooks {
    ConcurrentHistogram* read_hit_ns = nullptr;
    ConcurrentHistogram* read_miss_ns = nullptr;
    ConcurrentHistogram* write_ns = nullptr;
  };

  struct Frame {
    std::vector<char> data;
    bool dirty = false;
  };

  struct Shard {
    SpinLatch latch;
    std::unique_ptr<ReplacementPolicy> policy;
    std::unordered_map<uint64_t, Frame> pages;  // key = page base Pack()
  };

  Shard& ShardFor(uint64_t key) {
    return shards_[(key * 0x9E3779B97F4A7C15ULL >> 32) % shards_.size()];
  }

  /// A page evicted from its shard, pending the coherence notification
  /// (which runs with no latch held — OnCacheEvict posts a two-sided
  /// call, which must never happen under a shard latch).
  struct Evicted {
    dsm::GlobalAddress page;
    bool valid = false;
  };

  /// Reads one within-page chunk.
  Status ReadChunk(dsm::GlobalAddress addr, void* out, size_t len);
  Status WriteChunk(dsm::GlobalAddress addr, const void* src, size_t len);

  /// Writes back `victim_key` if dirty (one-sided, before the erase is
  /// visible) and removes it from `shard` (latch held).
  Evicted EvictLocked(Shard& shard, uint64_t victim_key);
  /// OnCacheEvict for an evicted page, then re-registers if a concurrent
  /// miss re-cached it (latch NOT held on entry; retaken for the recheck).
  void FinishEviction(Shard& shard, Evicted evicted);

  dsm::DsmClient* dsm_;
  BufferPoolOptions options_;
  CoherenceController* coherence_;
  NoCoherence no_coherence_;
  size_t capacity_pages_;
  std::vector<Shard> shards_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> writebacks_{0};
  mutable std::atomic<uint64_t> invalidations_received_{0};
  mutable std::atomic<uint64_t> updates_received_{0};
  mutable std::atomic<uint64_t> policy_ns_{0};

  ObsHooks obs_;
  std::vector<GaugeToken> gauge_tokens_;
  /// Keeps `buffer.hit_rate` registered in the flight recorder.
  obs::FlightRecorder::Token hit_rate_gauge_;
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_BUFFER_POOL_H_
