#ifndef DSMDB_BUFFER_CLOCK_H_
#define DSMDB_BUFFER_CLOCK_H_

#include <unordered_map>
#include <vector>

#include "buffer/policy.h"

namespace dsmdb::buffer {

/// CLOCK (second chance): reference bits swept by a hand. Hit cost is a
/// single bit set — the classic low-overhead approximation of LRU, which
/// the paper's thesis predicts should shine once the hit/miss latency gap
/// narrows to RDMA's ~10x.
class ClockPolicy final : public ReplacementPolicy {
 public:
  explicit ClockPolicy(size_t capacity);

  std::string_view name() const override { return "clock"; }

  void OnHit(uint64_t key) override;
  std::optional<uint64_t> OnInsert(uint64_t key) override;
  void OnErase(uint64_t key) override;
  size_t Size() const override { return index_.size(); }

 private:
  struct Slot {
    uint64_t key = 0;
    bool occupied = false;
    bool referenced = false;
  };

  size_t capacity_;
  std::vector<Slot> slots_;
  std::unordered_map<uint64_t, size_t> index_;  // key -> slot
  size_t hand_ = 0;
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_CLOCK_H_
