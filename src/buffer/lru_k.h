#ifndef DSMDB_BUFFER_LRU_K_H_
#define DSMDB_BUFFER_LRU_K_H_

#include <array>
#include <map>
#include <unordered_map>

#include "buffer/policy.h"

namespace dsmdb::buffer {

/// LRU-K [46] with K = 2: evicts the page whose K-th most recent reference
/// is oldest, which filters out one-shot scans. Heavier bookkeeping than
/// LRU (an ordered index keyed by the K-distance, updated on every hit) —
/// exactly the trade bench E6 quantifies.
class LruKPolicy final : public ReplacementPolicy {
 public:
  static constexpr int kK = 2;

  explicit LruKPolicy(size_t capacity) : capacity_(capacity) {}

  std::string_view name() const override { return "lru-2"; }

  void OnHit(uint64_t key) override;
  std::optional<uint64_t> OnInsert(uint64_t key) override;
  void OnErase(uint64_t key) override;
  size_t Size() const override { return entries_.size(); }

 private:
  struct Entry {
    /// history[0] = most recent access tick, history[K-1] = K-th.
    std::array<uint64_t, kK> history;
    std::multimap<uint64_t, uint64_t>::iterator order_it;
  };

  /// Key in the order index: the K-th most recent access (0 = "infinite
  /// K-distance", evicted first).
  uint64_t KthTime(const Entry& e) const { return e.history[kK - 1]; }

  void Touch(Entry& e, uint64_t key);

  size_t capacity_;
  uint64_t tick_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  std::multimap<uint64_t, uint64_t> order_;  // kth-time -> key
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_LRU_K_H_
