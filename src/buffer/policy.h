#ifndef DSMDB_BUFFER_POLICY_H_
#define DSMDB_BUFFER_POLICY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

namespace dsmdb::buffer {

/// Replacement policies under evaluation (Challenge #8: "research is
/// needed to evaluate the overhead of popular buffer management policies,
/// e.g., LRU, LRU-K, 2Q, CLOCK, and ARC").
enum class PolicyKind {
  kFifo,
  kLru,
  kLruK,   // K = 2
  kTwoQ,
  kClock,
  kArc,
};

std::string_view PolicyKindName(PolicyKind kind);

/// Replacement policy for one buffer-pool shard.
///
/// The pool owns the page table and frames; the policy mirrors the set of
/// resident keys and decides victims. Calls are externally synchronized by
/// the shard latch. The pool measures the *real* CPU time spent inside
/// these calls and charges it to simulated time — that is the "software
/// overhead" the paper says starts to matter when the hit/miss gap shrinks
/// to RDMA's ~10x.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual std::string_view name() const = 0;

  /// A resident key was accessed.
  virtual void OnHit(uint64_t key) = 0;

  /// `key` becomes resident. If the policy is at capacity, returns the key
  /// to evict to make room (the pool erases it); otherwise nullopt.
  virtual std::optional<uint64_t> OnInsert(uint64_t key) = 0;

  /// `key` was removed by the pool (invalidation/explicit drop).
  virtual void OnErase(uint64_t key) = 0;

  /// Number of resident keys tracked.
  virtual size_t Size() const = 0;
};

/// Creates a policy instance with room for `capacity` resident pages.
std::unique_ptr<ReplacementPolicy> MakePolicy(PolicyKind kind,
                                              size_t capacity);

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_POLICY_H_
