#ifndef DSMDB_BUFFER_TWO_Q_H_
#define DSMDB_BUFFER_TWO_Q_H_

#include <list>
#include <unordered_map>

#include "buffer/policy.h"

namespace dsmdb::buffer {

/// 2Q [31] (full version): new pages enter a FIFO probation queue A1in;
/// on eviction from A1in their identity moves to ghost queue A1out; a
/// reference while in A1out promotes the page to the main LRU queue Am.
/// Cheap on hits in A1in (no-op, like FIFO) and resistant to scans.
///
/// Sizing follows the paper's recommendation: Kin = 25% of capacity,
/// Kout = 50% of capacity (ghost entries are identity-only).
class TwoQPolicy final : public ReplacementPolicy {
 public:
  explicit TwoQPolicy(size_t capacity);

  std::string_view name() const override { return "2q"; }

  void OnHit(uint64_t key) override;
  std::optional<uint64_t> OnInsert(uint64_t key) override;
  void OnErase(uint64_t key) override;
  size_t Size() const override { return where_.size(); }

 private:
  enum class Where { kA1in, kAm };

  struct Entry {
    Where where;
    std::list<uint64_t>::iterator it;
  };

  /// Evicts one resident page to make room; returns its key.
  uint64_t EvictOne();
  void GhostInsert(uint64_t key);

  size_t capacity_;
  size_t kin_;   // max A1in size
  size_t kout_;  // max A1out size

  std::list<uint64_t> a1in_;   // front = newest
  std::list<uint64_t> am_;     // front = most recent
  std::list<uint64_t> a1out_;  // ghost, front = newest
  std::unordered_map<uint64_t, Entry> where_;  // resident pages
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> ghosts_;
};

}  // namespace dsmdb::buffer

#endif  // DSMDB_BUFFER_TWO_Q_H_
