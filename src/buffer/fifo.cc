#include "buffer/fifo.h"

namespace dsmdb::buffer {

std::optional<uint64_t> FifoPolicy::OnInsert(uint64_t key) {
  resident_.insert(key);
  queue_.push_back(key);
  if (resident_.size() <= capacity_) return std::nullopt;
  // Pop the oldest key that has not been lazily erased.
  while (!queue_.empty()) {
    const uint64_t victim = queue_.front();
    queue_.pop_front();
    auto it = erased_.find(victim);
    if (it != erased_.end()) {
      erased_.erase(it);
      continue;
    }
    if (resident_.erase(victim) > 0) return victim;
  }
  return std::nullopt;
}

void FifoPolicy::OnErase(uint64_t key) {
  if (resident_.erase(key) > 0) erased_.insert(key);
}

}  // namespace dsmdb::buffer
