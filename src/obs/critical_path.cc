#include "obs/critical_path.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "obs/obs_config.h"

namespace dsmdb::obs {

namespace {

constexpr size_t kBuckets = static_cast<size_t>(LatencyBucket::kCount);

/// Category -> bucket. Unmapped categories return kCount and are resolved
/// by context (cpu, or handler-cpu under a remote handler).
LatencyBucket BucketForCat(const char* cat) {
  if (cat == nullptr) return LatencyBucket::kCount;
  if (std::strcmp(cat, "verb.wire") == 0) return LatencyBucket::kVerbWire;
  if (std::strcmp(cat, "verb.post") == 0) return LatencyBucket::kVerbPost;
  if (std::strcmp(cat, "lock.wait") == 0) return LatencyBucket::kLockWait;
  if (std::strcmp(cat, "handler.cpu") == 0) {
    return LatencyBucket::kHandlerCpu;
  }
  if (std::strcmp(cat, "cpu.queue") == 0) return LatencyBucket::kQueue;
  if (std::strcmp(cat, "log.device") == 0) return LatencyBucket::kLog;
  return LatencyBucket::kCount;
}

struct Node {
  const TraceEvent* ev = nullptr;
  // Interval clamped to the ancestor chain (so children never leak
  // outside their parent and the sweep partitions the root exactly).
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint32_t depth = 0;
  LatencyBucket bucket = LatencyBucket::kCpu;
  std::vector<Node*> children;
};

/// Attribution of one transaction's tree; adds bucket totals (ns) and
/// returns the root duration.
uint64_t AttributeTxn(const std::vector<const TraceEvent*>& spans,
                      uint64_t totals[kBuckets]) {
  std::unordered_map<uint64_t, Node> nodes;
  nodes.reserve(spans.size());
  for (const TraceEvent* e : spans) {
    Node& n = nodes[e->span_id];
    n.ev = e;
  }
  // Root = the parentless span (or one whose parent fell outside the
  // captured set, e.g. dropped to ring wraparound); with several
  // candidates keep the longest, which is the outermost surviving scope.
  Node* root = nullptr;
  for (auto& [id, n] : nodes) {
    auto parent = nodes.find(n.ev->parent_id);
    if (n.ev->parent_id != 0 && parent != nodes.end() &&
        parent->second.ev != n.ev) {
      parent->second.children.push_back(&n);
    } else if (root == nullptr || n.ev->dur_ns > root->ev->dur_ns) {
      root = &n;
    }
  }
  if (root == nullptr) return 0;

  // Clamp intervals to parents and assign buckets, iteratively (commit
  // trees are shallow, but avoid recursion on adversarial input).
  root->lo = root->ev->start_ns;
  root->hi = root->ev->start_ns + root->ev->dur_ns;
  root->depth = 0;
  root->bucket = LatencyBucket::kCpu;
  std::vector<Node*> order;
  order.reserve(nodes.size());
  order.push_back(root);
  std::vector<Node*> live;
  live.push_back(root);
  for (size_t i = 0; i < order.size(); i++) {
    Node* p = order[i];
    for (Node* c : p->children) {
      c->lo = std::max(p->lo, c->ev->start_ns);
      c->hi = std::min(p->hi, c->ev->start_ns + c->ev->dur_ns);
      if (c->hi < c->lo) c->hi = c->lo;
      c->depth = p->depth + 1;
      LatencyBucket b = BucketForCat(c->ev->cat);
      if (b == LatencyBucket::kCount) {
        // Untyped span: its residual is CPU — of the remote handler when
        // it runs inside one, of the coordinator otherwise.
        b = p->bucket == LatencyBucket::kHandlerCpu
                ? LatencyBucket::kHandlerCpu
                : LatencyBucket::kCpu;
      }
      c->bucket = b;
      order.push_back(c);
    }
  }

  // Sweep the root interval: every elementary segment goes to the deepest
  // covering span (ties -> later start, then higher span id, so the most
  // specific overlapping sibling wins).
  std::vector<uint64_t> cuts;
  cuts.reserve(order.size() * 2);
  for (Node* n : order) {
    if (n->hi > n->lo) {
      cuts.push_back(n->lo);
      cuts.push_back(n->hi);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::sort(order.begin(), order.end(),
            [](const Node* a, const Node* b) { return a->lo < b->lo; });
  for (size_t i = 0; i + 1 < cuts.size(); i++) {
    const uint64_t a = cuts[i];
    const uint64_t b = cuts[i + 1];
    const Node* best = nullptr;
    for (const Node* n : order) {
      if (n->lo > a) break;
      if (n->hi < b) continue;
      if (best == nullptr || n->depth > best->depth ||
          (n->depth == best->depth &&
           (n->ev->start_ns > best->ev->start_ns ||
            (n->ev->start_ns == best->ev->start_ns &&
             n->ev->span_id > best->ev->span_id)))) {
        best = n;
      }
    }
    if (best != nullptr) {
      totals[static_cast<size_t>(best->bucket)] += b - a;
    }
  }
  return root->ev->dur_ns;
}

}  // namespace

const char* LatencyBucketName(LatencyBucket b) {
  switch (b) {
    case LatencyBucket::kCpu: return "cpu";
    case LatencyBucket::kVerbWire: return "verb_wire";
    case LatencyBucket::kVerbPost: return "verb_post";
    case LatencyBucket::kLockWait: return "lock_wait";
    case LatencyBucket::kHandlerCpu: return "handler_cpu";
    case LatencyBucket::kQueue: return "queue_wait";
    case LatencyBucket::kLog: return "log_device";
    case LatencyBucket::kCount: break;
  }
  return "?";
}

double LatencyBreakdown::Sum() const {
  double s = 0;
  for (double v : mean_ns) s += v;
  return s;
}

void LatencyBreakdown::Merge(const LatencyBreakdown& other) {
  const uint64_t n = txns + other.txns;
  if (n == 0) return;
  const double wa = static_cast<double>(txns) / static_cast<double>(n);
  const double wb = static_cast<double>(other.txns) / static_cast<double>(n);
  total_mean_ns = total_mean_ns * wa + other.total_mean_ns * wb;
  for (size_t i = 0; i < kBuckets; i++) {
    mean_ns[i] = mean_ns[i] * wa + other.mean_ns[i] * wb;
  }
  txns = n;
}

std::map<std::string, double> LatencyBreakdown::ToMap() const {
  std::map<std::string, double> out;
  for (size_t i = 0; i < kBuckets; i++) {
    out[LatencyBucketName(static_cast<LatencyBucket>(i))] = mean_ns[i];
  }
  return out;
}

LatencyBreakdown AnalyzeCriticalPath(const std::vector<TraceEvent>& events) {
  std::unordered_map<uint64_t, std::vector<const TraceEvent*>> by_txn;
  for (const TraceEvent& e : events) {
    if (e.txn_id != 0 && e.span_id != 0) by_txn[e.txn_id].push_back(&e);
  }
  LatencyBreakdown out;
  double sum_total = 0;
  double sums[kBuckets] = {};
  for (const auto& [txn, spans] : by_txn) {
    uint64_t totals[kBuckets] = {};
    const uint64_t root_dur = AttributeTxn(spans, totals);
    out.txns++;
    sum_total += static_cast<double>(root_dur);
    for (size_t i = 0; i < kBuckets; i++) {
      sums[i] += static_cast<double>(totals[i]);
    }
  }
  if (out.txns > 0) {
    const double n = static_cast<double>(out.txns);
    out.total_mean_ns = sum_total / n;
    for (size_t i = 0; i < kBuckets; i++) out.mean_ns[i] = sums[i] / n;
  }
  return out;
}

ScopedAttribution::ScopedAttribution() {
  if (!ObsConfig::Enabled()) return;
  active_ = true;
  prev_tracing_ = ObsConfig::TracingEnabled();
  ObsConfig::SetTracing(true);
  // With --trace the user wants the whole run in the final dump; keep the
  // rings and rely on the txn watermark to bound this section's analysis.
  if (!prev_tracing_) TraceCollector::Instance().Clear();
  txn_watermark_ = TxnIdWatermark();
}

LatencyBreakdown ScopedAttribution::Finish() {
  LatencyBreakdown b;
  if (active_) {
    std::vector<TraceEvent> events = TraceCollector::Instance().Snapshot();
    events.erase(std::remove_if(events.begin(), events.end(),
                                [this](const TraceEvent& e) {
                                  return e.txn_id < txn_watermark_;
                                }),
                 events.end());
    b = AnalyzeCriticalPath(events);
    ObsConfig::SetTracing(prev_tracing_);
    finished_ = true;
  }
  return b;
}

ScopedAttribution::~ScopedAttribution() {
  if (active_ && !finished_) ObsConfig::SetTracing(prev_tracing_);
}

}  // namespace dsmdb::obs
