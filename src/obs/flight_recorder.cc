#include "obs/flight_recorder.h"

#include <algorithm>
#include <limits>

namespace dsmdb::obs {

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Token& FlightRecorder::Token::operator=(
    Token&& other) noexcept {
  if (this != &other) {
    Release();
    rec_ = other.rec_;
    id_ = other.id_;
    other.rec_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void FlightRecorder::Token::Release() {
  if (rec_ != nullptr) {
    rec_->Unregister(id_);
    rec_ = nullptr;
    id_ = 0;
  }
}

FlightRecorder::Token FlightRecorder::RegisterGauge(const std::string& name,
                                                    Sampler sampler) {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t id = next_id_++;
  gauges_.push_back(Gauge{id, name, std::move(sampler)});
  return Token(this, id);
}

FlightRecorder::Token FlightRecorder::RegisterGaugeFamily(
    const std::string& name, FamilySampler sampler) {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t id = next_id_++;
  families_.push_back(GaugeFamily{id, name, std::move(sampler)});
  return Token(this, id);
}

void FlightRecorder::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_.erase(std::remove_if(gauges_.begin(), gauges_.end(),
                               [id](const Gauge& g) { return g.id == id; }),
                gauges_.end());
  families_.erase(
      std::remove_if(families_.begin(), families_.end(),
                     [id](const GaugeFamily& f) { return f.id == id; }),
      families_.end());
}

void FlightRecorder::Configure(uint64_t interval_ns, size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  interval_ns_ = interval_ns == 0 ? 1 : interval_ns;
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.resize(capacity_);
  next_ = 0;
  total_.store(0, std::memory_order_relaxed);
  next_due_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::Sample(uint64_t now_ns) {
  // One sampler at a time; concurrent losers just skip — the next due
  // time has moved on by the time they would retry.
  std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
  if (!lk.owns_lock()) return;
  if (now_ns < next_due_.load(std::memory_order_relaxed)) return;
  if (ring_.size() != capacity_) ring_.resize(capacity_);
  SampleRow& row = ring_[next_];
  row.t_ns = now_ns;
  row.values.clear();
  // Sum same-named gauges (e.g. one abort-rate gauge per CC manager).
  auto merge = [&row](const std::string& name, double v) {
    for (auto& [existing, value] : row.values) {
      if (existing == name) {
        value += v;
        return;
      }
    }
    row.values.emplace_back(name, v);
  };
  for (const Gauge& g : gauges_) {
    merge(g.name, g.sampler(now_ns));
  }
  // Families fan one sampler out into `name{label}` columns.
  std::vector<std::pair<std::string, double>> labeled;
  for (const GaugeFamily& f : families_) {
    labeled.clear();
    f.sampler(now_ns, &labeled);
    for (const auto& [label, v] : labeled) {
      merge(f.name + "{" + label + "}", v);
    }
  }
  next_ = (next_ + 1) % ring_.size();
  total_.fetch_add(1, std::memory_order_relaxed);
  next_due_.store(now_ns + interval_ns_, std::memory_order_relaxed);
}

FlightRecorder::Series FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Series out;
  const uint64_t total = total_.load(std::memory_order_relaxed);
  if (ring_.empty() || total == 0) return out;
  const size_t cap = ring_.size();
  const size_t retained =
      total < cap ? static_cast<size_t>(total) : cap;
  const size_t first = total < cap ? 0 : next_;
  std::vector<const SampleRow*> rows;
  rows.reserve(retained);
  for (size_t i = 0; i < retained; i++) {
    rows.push_back(&ring_[(first + i) % cap]);
  }
  // Worker clocks are unsynchronized; present the series in time order.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const SampleRow* a, const SampleRow* b) {
                     return a->t_ns < b->t_ns;
                   });
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < rows.size(); i++) {
    out.t_ns.push_back(rows[i]->t_ns);
    for (const auto& [name, value] : rows[i]->values) {
      auto it = out.values.find(name);
      if (it == out.values.end()) {
        it = out.values.emplace(name, std::vector<double>(i, nan)).first;
      }
      it->second.push_back(value);
    }
    // Pad gauges absent from this sample.
    for (auto& [name, column] : out.values) {
      if (column.size() < i + 1) column.push_back(nan);
    }
  }
  return out;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (SampleRow& row : ring_) {
    row.t_ns = 0;
    row.values.clear();
  }
  next_ = 0;
  total_.store(0, std::memory_order_relaxed);
  next_due_.store(0, std::memory_order_relaxed);
}

}  // namespace dsmdb::obs
