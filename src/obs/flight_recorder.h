#ifndef DSMDB_OBS_FLIGHT_RECORDER_H_
#define DSMDB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs_config.h"

namespace dsmdb::obs {

/// Congestion time-series: samples registered gauges (fabric in-flight
/// verbs, queue depth, memory-node CPU utilization, buffer hit rate, abort
/// rate) on simulated-time intervals into a fixed ring, so saturation and
/// livelock onset are visible as curves instead of end-state averages.
///
/// Sampling is driven from instrumented hot paths via MaybeSample(now):
/// the fast path is one relaxed flag load plus one relaxed compare against
/// the next due time; the slow path (actually sampling) takes a mutex that
/// losers skip. Worker threads carry unsynchronized simulated clocks, so
/// sample times are only loosely monotonic; Snapshot() sorts by time.
/// Observation-only: never advances SimClock.
class FlightRecorder {
 public:
  using Sampler = std::function<double(uint64_t now_ns)>;

  static FlightRecorder& Instance();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Unregisters its gauge when destroyed (or when released).
  class Token {
   public:
    Token() = default;
    Token(Token&& other) noexcept { *this = std::move(other); }
    Token& operator=(Token&& other) noexcept;
    ~Token() { Release(); }
    void Release();

   private:
    friend class FlightRecorder;
    Token(FlightRecorder* rec, uint64_t id) : rec_(rec), id_(id) {}
    FlightRecorder* rec_ = nullptr;
    uint64_t id_ = 0;
  };

  /// Registers a named gauge. Same-named gauges (one abort-rate per CC
  /// manager, one utilization per fabric) are summed at sample time.
  Token RegisterGauge(const std::string& name, Sampler sampler);

  /// A family sampler emits (label, value) pairs each sample — one labeled
  /// sub-series per distinct label (e.g. per heat shard).
  using FamilySampler = std::function<void(
      uint64_t now_ns, std::vector<std::pair<std::string, double>>* out)>;

  /// Registers a labeled gauge family. Each emitted label becomes its own
  /// series named `name{label}` in Snapshot(); labels may come and go
  /// between samples (missing ones NaN-pad like unregistered gauges).
  /// Same-series values (same name and label, or a plain gauge whose name
  /// collides) are summed like RegisterGauge.
  Token RegisterGaugeFamily(const std::string& name, FamilySampler sampler);

  /// Sampling interval in simulated ns and ring capacity in samples.
  /// Configure() also clears retained samples.
  void Configure(uint64_t interval_ns, size_t capacity);

  /// Samples every gauge if `now_ns` has reached the next due time.
  void MaybeSample(uint64_t now_ns) {
    if (!ObsConfig::Enabled()) return;
    if (now_ns < next_due_.load(std::memory_order_relaxed)) return;
    Sample(now_ns);
  }

  struct Series {
    std::vector<uint64_t> t_ns;  ///< Ascending sample times.
    /// Gauge name -> one value per sample; NaN where the gauge was not
    /// registered at that sample.
    std::map<std::string, std::vector<double>> values;
  };

  /// Retained samples, oldest first, sorted by time.
  Series Snapshot() const;

  /// Samples ever taken (including ones the ring has since overwritten).
  uint64_t total_samples() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Drops retained samples and re-arms the next due time.
  void Clear();

 private:
  struct SampleRow {
    uint64_t t_ns = 0;
    std::vector<std::pair<std::string, double>> values;
  };
  struct Gauge {
    uint64_t id = 0;
    std::string name;
    Sampler sampler;
  };
  struct GaugeFamily {
    uint64_t id = 0;
    std::string name;
    FamilySampler sampler;
  };

  FlightRecorder() = default;
  void Sample(uint64_t now_ns);
  void Unregister(uint64_t id);

  mutable std::mutex mu_;
  std::vector<Gauge> gauges_;
  std::vector<GaugeFamily> families_;
  std::vector<SampleRow> ring_;
  size_t next_ = 0;
  std::atomic<uint64_t> total_{0};
  uint64_t interval_ns_ = 20'000;
  size_t capacity_ = 1024;
  uint64_t next_id_ = 1;
  std::atomic<uint64_t> next_due_{0};
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_FLIGHT_RECORDER_H_
