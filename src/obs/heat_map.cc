#include "obs/heat_map.h"

#include <algorithm>

#include "common/random.h"

namespace dsmdb::obs {

const char* HeatKindName(HeatKind kind) {
  switch (kind) {
    case HeatKind::kRead:
      return "reads";
    case HeatKind::kWrite:
      return "writes";
    case HeatKind::kAtomic:
      return "atomics";
    case HeatKind::kHit:
      return "hits";
    case HeatKind::kMiss:
      return "misses";
    case HeatKind::kEvict:
      return "evictions";
    case HeatKind::kInvalidation:
      return "invalidations";
    case HeatKind::kAbort:
      return "aborts";
    case HeatKind::kCount:
      break;
  }
  return "?";
}

HeatMap& HeatMap::Instance() {
  static HeatMap* map = new HeatMap();
  return *map;
}

void HeatMap::Configure(const HeatOptions& options) {
  std::lock_guard<std::mutex> lk(fold_mu_);
  options_ = options;
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.sketch_stripes == 0) options_.sketch_stripes = 1;
  if (options_.sketch_capacity < options_.sketch_stripes) {
    options_.sketch_capacity = options_.sketch_stripes;
  }
  options_.decay = std::clamp(options_.decay, 0.0, 1.0);
  shards_.clear();
  for (size_t i = 0; i < options_.num_shards; i++) {
    shards_.push_back(std::make_unique<ShardCell>());
  }
  sketch_.clear();
  for (size_t i = 0; i < options_.sketch_stripes; i++) {
    sketch_.push_back(std::make_unique<SketchStripe>());
  }
  unresolved_.store(0, std::memory_order_relaxed);
  intervals_.store(0, std::memory_order_relaxed);
  SetEnabled(true);
}

void HeatMap::Reset() {
  std::lock_guard<std::mutex> lk(fold_mu_);
  for (auto& cell : shards_) {
    for (size_t k = 0; k < kHeatKinds; k++) {
      cell->raw[k].store(0, std::memory_order_relaxed);
      cell->folded[k] = 0;
      cell->heat[k] = 0;
    }
  }
  for (auto& stripe : sketch_) {
    SpinLatchGuard g(stripe->latch);
    stripe->entries.clear();
    stripe->index.clear();
  }
  unresolved_.store(0, std::memory_order_relaxed);
  intervals_.store(0, std::memory_order_relaxed);
}

void HeatMap::RegisterTableLayout(TableLayout layout) {
  SpinLatchGuard g(layout_latch_);
  auto next = std::make_shared<std::vector<TableLayout>>(*layouts_);
  // Re-registering a table id (bench sections rebuild the same DB shape)
  // replaces the stale layout.
  next->erase(std::remove_if(next->begin(), next->end(),
                             [&](const TableLayout& l) {
                               return l.table_id == layout.table_id;
                             }),
              next->end());
  next->push_back(std::move(layout));
  layouts_ = std::move(next);
}

bool HeatMap::Resolve(uint64_t packed_addr, uint64_t* key,
                      uint64_t* keyspace) const {
  std::shared_ptr<const std::vector<TableLayout>> layouts;
  {
    SpinLatchGuard g(layout_latch_);
    layouts = layouts_;
  }
  const uint16_t node = static_cast<uint16_t>(packed_addr >> 48);
  const uint64_t offset = packed_addr & ((1ULL << 48) - 1);
  for (const TableLayout& l : *layouts) {
    if (node >= l.stripe_bases.size() || l.stride == 0) continue;
    const uint64_t base = l.stripe_bases[node] & ((1ULL << 48) - 1);
    if (static_cast<uint16_t>(l.stripe_bases[node] >> 48) != node) continue;
    if (offset < base) continue;
    const uint64_t m = l.stripe_bases.size();
    const uint64_t keys_here = (l.num_keys + m - 1 - node) / m;
    if (offset >= base + keys_here * l.stride) continue;
    const uint64_t slot = (offset - base) / l.stride;
    *key = slot * m + node;
    *keyspace = l.num_keys;
    return true;
  }
  return false;
}

void HeatMap::SketchStripe::Offer(uint64_t key, double weight,
                                  size_t capacity) {
  auto it = index.find(key);
  if (it != index.end()) {
    entries[it->second].count += weight;
    return;
  }
  if (entries.size() < capacity) {
    index.emplace(key, entries.size());
    entries.push_back(Entry{key, weight, 0});
    return;
  }
  // SpaceSaving replacement: the minimum-count entry is recycled; the new
  // key inherits its count as the overestimation error bound.
  size_t min_i = 0;
  for (size_t i = 1; i < entries.size(); i++) {
    if (entries[i].count < entries[min_i].count) min_i = i;
  }
  Entry& victim = entries[min_i];
  index.erase(victim.key);
  index.emplace(key, min_i);
  victim.error = victim.count;
  victim.count += weight;
  victim.key = key;
}

void HeatMap::SketchStripe::Decay(double factor) {
  // Decay in place, then drop entries whose decayed estimate can no longer
  // distinguish them from noise (< 0.5 of one access) so the sketch
  // follows the *current* hot set instead of pinning historic keys.
  size_t w = 0;
  for (size_t i = 0; i < entries.size(); i++) {
    Entry e = entries[i];
    e.count *= factor;
    e.error *= factor;
    if (e.count < 0.5) continue;
    entries[w] = e;
    w++;
  }
  entries.resize(w);
  index.clear();
  for (size_t i = 0; i < entries.size(); i++) {
    index.emplace(entries[i].key, i);
  }
}

void HeatMap::RecordKey(HeatKind kind, uint64_t key, uint64_t keyspace,
                        uint64_t count) {
  if (!Enabled() || shards_.empty()) return;
  ShardCell& cell = *shards_[ShardOf(key, keyspace)];
  cell.raw[static_cast<size_t>(kind)].fetch_add(count,
                                                std::memory_order_relaxed);
  // Only record-level accesses feed the hot-key sketch; cache/meta kinds
  // are page-granular and would drown key identity.
  if (kind == HeatKind::kRead || kind == HeatKind::kWrite ||
      kind == HeatKind::kAtomic || kind == HeatKind::kAbort) {
    SketchStripe& stripe = *sketch_[Hash64(key) % sketch_.size()];
    const size_t cap =
        std::max<size_t>(1, options_.sketch_capacity / sketch_.size());
    SpinLatchGuard g(stripe.latch);
    stripe.Offer(key, static_cast<double>(count), cap);
  }
}

void HeatMap::RecordPackedAddr(HeatKind kind, uint64_t packed_addr,
                               uint64_t count) {
  if (!Enabled() || shards_.empty()) return;
  uint64_t key = 0;
  uint64_t keyspace = 0;
  if (!Resolve(packed_addr, &key, &keyspace)) {
    unresolved_.fetch_add(count, std::memory_order_relaxed);
    return;
  }
  RecordKey(kind, key, keyspace, count);
}

void HeatMap::Fold() {
  std::lock_guard<std::mutex> lk(fold_mu_);
  for (auto& cell : shards_) {
    for (size_t k = 0; k < kHeatKinds; k++) {
      const uint64_t raw = cell->raw[k].load(std::memory_order_relaxed);
      const uint64_t delta = raw - cell->folded[k];
      cell->folded[k] = raw;
      // Post-add decay, matching SketchStripe::Decay (offers accumulate
      // during the interval, then the fold decays them): hot-key estimates
      // and shard heat stay directly comparable, so sketch-derived shares
      // (SkewMonitor's top_k_share) are unbiased.
      cell->heat[k] = (cell->heat[k] + static_cast<double>(delta)) *
                      options_.decay;
    }
  }
  for (auto& stripe : sketch_) {
    SpinLatchGuard g(stripe->latch);
    stripe->Decay(options_.decay);
  }
  intervals_.fetch_add(1, std::memory_order_relaxed);
}

HeatSnapshot HeatMap::Snapshot(size_t top_k) const {
  std::lock_guard<std::mutex> lk(fold_mu_);
  HeatSnapshot out;
  out.intervals = intervals_.load(std::memory_order_relaxed);
  out.shard_heat.resize(shards_.size());
  out.shard_total.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); s++) {
    const ShardCell& cell = *shards_[s];
    for (size_t k = 0; k < kHeatKinds; k++) {
      out.shard_heat[s][k] = cell.heat[k];
      out.shard_total[s][k] = cell.raw[k].load(std::memory_order_relaxed);
    }
    out.total_access_heat +=
        cell.heat[static_cast<size_t>(HeatKind::kRead)] +
        cell.heat[static_cast<size_t>(HeatKind::kWrite)] +
        cell.heat[static_cast<size_t>(HeatKind::kAtomic)];
    out.total_accesses +=
        out.shard_total[s][static_cast<size_t>(HeatKind::kRead)] +
        out.shard_total[s][static_cast<size_t>(HeatKind::kWrite)] +
        out.shard_total[s][static_cast<size_t>(HeatKind::kAtomic)];
  }
  for (const auto& stripe : sketch_) {
    SpinLatchGuard g(stripe->latch);
    for (const SketchStripe::Entry& e : stripe->entries) {
      out.hot_keys.push_back(HotKey{e.key, e.count, e.error});
    }
  }
  std::sort(out.hot_keys.begin(), out.hot_keys.end(),
            [](const HotKey& a, const HotKey& b) { return a.est > b.est; });
  if (top_k != 0 && out.hot_keys.size() > top_k) {
    out.hot_keys.resize(top_k);
  }
  return out;
}

}  // namespace dsmdb::obs
