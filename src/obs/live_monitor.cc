#include "obs/live_monitor.h"

#include <algorithm>
#include <cinttypes>
#include <numeric>
#include <vector>

namespace dsmdb::obs {

LiveMonitor& LiveMonitor::Instance() {
  static LiveMonitor* monitor = new LiveMonitor();
  return *monitor;
}

void LiveMonitor::Attach(const LiveMonitorOptions& options) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    options_ = options;
    if (options_.out == nullptr) options_.out = stdout;
    if (options_.header_every == 0) options_.header_every = 1;
    committed_.store(0, std::memory_order_relaxed);
    aborted_.store(0, std::memory_order_relaxed);
    latency_.Clear();
    rows_.store(0, std::memory_order_relaxed);
    prev_t_ns_ = 0;
    prev_committed_ = 0;
    prev_aborted_ = 0;
    prev_hits_ = 0;
    prev_misses_ = 0;
  }
  SkewMonitor::Instance().SetSampleHook(
      [this](const SkewSignals& sig) { OnSignals(sig); });
  enabled_.store(true, std::memory_order_relaxed);
}

void LiveMonitor::Detach() {
  enabled_.store(false, std::memory_order_relaxed);
  SkewMonitor::Instance().SetSampleHook(nullptr);
}

void LiveMonitor::OnSignals(const SkewSignals& sig) {
  std::lock_guard<std::mutex> lk(mu_);

  const uint64_t committed = committed_.load(std::memory_order_relaxed);
  const uint64_t aborted = aborted_.load(std::memory_order_relaxed);
  const uint64_t d_commit = committed - prev_committed_;
  const uint64_t d_abort = aborted - prev_aborted_;
  prev_committed_ = committed;
  prev_aborted_ = aborted;

  const Histogram lat = latency_.Merged();
  latency_.Clear();

  // Buffer hit rate for the interval, from the heat shard totals.
  uint64_t hits = 0, misses = 0;
  {
    const HeatSnapshot snap = HeatMap::Instance().Snapshot(/*top_k=*/1);
    for (const auto& t : snap.shard_total) {
      hits += t[static_cast<size_t>(HeatKind::kHit)];
      misses += t[static_cast<size_t>(HeatKind::kMiss)];
    }
  }
  const uint64_t d_hit = hits - prev_hits_;
  const uint64_t d_miss = misses - prev_misses_;
  prev_hits_ = hits;
  prev_misses_ = misses;

  const uint64_t dt_ns = sig.t_ns > prev_t_ns_ ? sig.t_ns - prev_t_ns_ : 0;
  prev_t_ns_ = sig.t_ns;
  const double tput_mtps =
      dt_ns == 0 ? 0
                 : static_cast<double>(d_commit) * 1000.0 /
                       static_cast<double>(dt_ns);
  const uint64_t txns = d_commit + d_abort;
  const double abort_pct =
      txns == 0 ? 0 : 100.0 * static_cast<double>(d_abort) /
                          static_cast<double>(txns);
  const double hit_pct =
      d_hit + d_miss == 0 ? 0
                          : 100.0 * static_cast<double>(d_hit) /
                                static_cast<double>(d_hit + d_miss);

  // Hottest shards by decayed access heat.
  std::vector<size_t> order(sig.shard_heat.size());
  std::iota(order.begin(), order.end(), size_t{0});
  const size_t n_shards = std::min(options_.top_shards, order.size());
  std::partial_sort(order.begin(), order.begin() + n_shards, order.end(),
                    [&](size_t a, size_t b) {
                      return sig.shard_heat[a] > sig.shard_heat[b];
                    });
  const double heat_sum = std::accumulate(sig.shard_heat.begin(),
                                          sig.shard_heat.end(), 0.0);

  std::FILE* out = options_.out;
  const uint64_t row = rows_.fetch_add(1, std::memory_order_relaxed);
  if (row % options_.header_every == 0) {
    std::fprintf(out,
                 "%6s %9s %10s %9s %7s %6s  %-22s %-28s %s\n",
                 "int", "txns", "tput(M/s)", "p99(us)", "abort%", "hit%",
                 "hot-shards(share)", "hot-keys", "flags");
  }

  char shards_buf[64] = "-";
  if (n_shards > 0 && heat_sum > 0) {
    size_t off = 0;
    for (size_t i = 0; i < n_shards && off + 16 < sizeof(shards_buf); i++) {
      const size_t s = order[i];
      off += static_cast<size_t>(std::snprintf(
          shards_buf + off, sizeof(shards_buf) - off, "%s%zu(%.0f%%)",
          i == 0 ? "" : " ", s, 100.0 * sig.shard_heat[s] / heat_sum));
    }
  }
  char keys_buf[64] = "-";
  if (!sig.top_keys.empty()) {
    size_t off = 0;
    const size_t n_keys = std::min(options_.top_keys, sig.top_keys.size());
    for (size_t i = 0; i < n_keys && off + 16 < sizeof(keys_buf); i++) {
      off += static_cast<size_t>(std::snprintf(
          keys_buf + off, sizeof(keys_buf) - off, "%s%" PRIu64,
          i == 0 ? "" : " ", sig.top_keys[i].key));
    }
  }

  std::fprintf(out,
               "%6" PRIu64 " %9" PRIu64 " %10.3f %9.1f %7.2f %6.1f  "
               "%-22s %-28s %s%s\n",
               sig.seq, txns, tput_mtps,
               static_cast<double>(lat.P99()) / 1000.0, abort_pct, hit_pct,
               shards_buf, keys_buf, sig.shift ? "SKEW-SHIFT " : "",
               sig.zipf_theta >= 0.8 ? "HOT" : "");
  std::fflush(out);
}

}  // namespace dsmdb::obs
