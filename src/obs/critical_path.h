#ifndef DSMDB_OBS_CRITICAL_PATH_H_
#define DSMDB_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace dsmdb::obs {

/// Exclusive latency buckets for "where does the time go" attribution
/// (Challenges #4, #6, #10). Every simulated nanosecond of a transaction's
/// end-to-end latency lands in exactly one bucket.
enum class LatencyBucket {
  kCpu,         ///< Coordinator-side compute (anything not otherwise claimed).
  kVerbWire,    ///< One-sided/two-sided verb wire + NIC time.
  kVerbPost,    ///< Sender CPU building WRs and ringing doorbells.
  kLockWait,    ///< Lock acquisition residual: retries, backoff, contention.
  kHandlerCpu,  ///< Remote handler execution on memory/peer-node cores.
  kQueue,       ///< Fluid-queue wait at a saturated remote CPU.
  kLog,         ///< Log-device / cloud-storage residual on the commit path.
  kCount,
};

const char* LatencyBucketName(LatencyBucket b);

/// Per-protocol attribution result: mean nanoseconds per bucket over all
/// analyzed transactions. The buckets partition each root span exactly, so
/// Sum() equals total_mean_ns up to floating-point rounding.
struct LatencyBreakdown {
  uint64_t txns = 0;
  double total_mean_ns = 0.0;
  double mean_ns[static_cast<size_t>(LatencyBucket::kCount)] = {};

  double Sum() const;
  double Mean(LatencyBucket b) const {
    return mean_ns[static_cast<size_t>(b)];
  }
  /// Folds `other` in, weighting means by transaction count.
  void Merge(const LatencyBreakdown& other);
  /// Bucket name -> mean ns (for export).
  std::map<std::string, double> ToMap() const;
};

/// Walks the causally-linked span trees in `events` (grouped by txn id,
/// rooted at the parentless span) and attributes each root's duration to
/// exclusive buckets with a sweep over the root interval: each instant
/// belongs to the deepest span covering it, and the span's category picks
/// the bucket (verb.wire, verb.post, lock.wait, handler.cpu, cpu.queue,
/// log.device; anything else is cpu, or handler-cpu when it runs inside a
/// remote handler). Spans are clamped to their parent, so the partition is
/// exact and the buckets sum to the root duration by construction.
LatencyBreakdown AnalyzeCriticalPath(const std::vector<TraceEvent>& events);

/// RAII helper for benches: enables tracing over a measured section (when
/// observability is on at all), then analyzes the captured spans. The
/// analysis window is bounded by a txn-id watermark, so only transactions
/// started inside the section are attributed. When the caller had not
/// already enabled tracing (no --trace), the collector is cleared on entry
/// to keep the ring for this section; with --trace the accumulated events
/// of earlier sections are preserved for the final trace dump. Restores
/// the previous tracing flag.
class ScopedAttribution {
 public:
  ScopedAttribution();
  ~ScopedAttribution();

  ScopedAttribution(const ScopedAttribution&) = delete;
  ScopedAttribution& operator=(const ScopedAttribution&) = delete;

  /// Snapshots the collector and runs the analyzer. Call once, at the end
  /// of the measured section.
  LatencyBreakdown Finish();

 private:
  bool active_ = false;
  bool prev_tracing_ = false;
  bool finished_ = false;
  uint64_t txn_watermark_ = 0;
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_CRITICAL_PATH_H_
