#ifndef DSMDB_OBS_HEAT_MAP_H_
#define DSMDB_OBS_HEAT_MAP_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/spin_latch.h"

namespace dsmdb::obs {

/// What kind of access is being accounted. Verb-level kinds (read/write/
/// atomic) come from the DSM client's issue paths, cache kinds from the
/// buffer pool, invalidation from the coherence fan-out, abort from the CC
/// protocols' conflict sites.
enum class HeatKind : uint8_t {
  kRead = 0,
  kWrite,
  kAtomic,
  kHit,
  kMiss,
  kEvict,
  kInvalidation,
  kAbort,
  kCount,
};
inline constexpr size_t kHeatKinds = static_cast<size_t>(HeatKind::kCount);
const char* HeatKindName(HeatKind kind);

/// One entry of the hot-key sketch: estimated access count (decayed) and
/// the SpaceSaving overestimation bound.
struct HotKey {
  uint64_t key = 0;
  double est = 0;    ///< Estimated (decayed) access count.
  double error = 0;  ///< est - error is a guaranteed lower bound.
};

/// Point-in-time heat state. Shard vectors are indexed by heat shard id
/// (a range partition of the key space into num_shards buckets).
struct HeatSnapshot {
  uint64_t intervals = 0;  ///< Fold()s since Configure/Reset.
  /// Decayed per-interval EWMA per shard per kind.
  std::vector<std::array<double, kHeatKinds>> shard_heat;
  /// Cumulative raw counts per shard per kind (never decayed).
  std::vector<std::array<uint64_t, kHeatKinds>> shard_total;
  /// Hottest keys, descending by estimated count.
  std::vector<HotKey> hot_keys;
  /// Sum over shards of the decayed read+write heat (the sketch's
  /// denominator for concentration estimates).
  double total_access_heat = 0;
  /// Cumulative read+write accesses (raw).
  uint64_t total_accesses = 0;
};

struct HeatOptions {
  /// Heat shards: range-partition of [0, keyspace) into this many buckets.
  size_t num_shards = 64;
  /// EWMA retention per Fold(): heat' = (heat + interval_count) * decay
  /// (post-add decay, the same order the hot-key sketch uses).
  double decay = 0.8;
  /// Total SpaceSaving capacity across stripes (>= ~8x the top-k you want
  /// to query accurately).
  size_t sketch_capacity = 256;
  /// Lock stripes for the sketch (hot keys by definition hammer one
  /// stripe, so the critical section is kept tiny).
  size_t sketch_stripes = 8;
};

/// Process-wide access-heat accounting: per-shard exponentially-decayed
/// read/write/abort/invalidation/hit/miss counters over the key space,
/// plus a space-bounded SpaceSaving hot-key sketch. This is the signal
/// layer hot-key combining (ROADMAP item 2) and self-driving placement
/// (item 4) consume; SkewMonitor derives concentration/churn estimates
/// from Snapshot().
///
/// Fast paths are gated on one relaxed atomic-bool (`Enabled()`, default
/// off — a disabled build pays a load and a branch). Recording is a couple
/// of relaxed fetch_adds plus, for key-level kinds, one striped spin-latch
/// sketch offer. Observation-only: never advances SimClock (like
/// FlightRecorder, the accounting is free in simulated time; wall-clock
/// cost is what the bench gate checks).
///
/// Address resolution: tables register their stripe layout at creation
/// (RegisterTableLayout), so hooks that only see a GlobalAddress — verb
/// issue, buffer pages, coherence rounds — can be mapped back to a primary
/// key and charged to the right heat shard. Unresolvable addresses (index
/// nodes, log segments, allocator metadata) fall into a catch-all shard
/// counter (`unresolved()`), never the sketch.
class HeatMap {
 public:
  static HeatMap& Instance();

  HeatMap(const HeatMap&) = delete;
  HeatMap& operator=(const HeatMap&) = delete;

  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Enables/disables recording. Configure() implies enable.
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// (Re)configures shards/decay/sketch and clears all state, then
  /// enables recording. Not safe concurrent with recording threads.
  void Configure(const HeatOptions& options);
  const HeatOptions& options() const { return options_; }

  /// Clears counters, sketch, and interval count (layouts survive).
  void Reset();

  /// A table's striping, registered once at Table::Create so packed
  /// addresses resolve to keys: key = slot * num_stripes + stripe_index
  /// where slot = (offset - stripe_base) / stride (see core::Table).
  struct TableLayout {
    uint32_t table_id = 0;
    uint64_t num_keys = 0;
    uint64_t stride = 0;
    /// Packed GlobalAddress of each memory node's stripe base, indexed by
    /// stripe (= memory node) id.
    std::vector<uint64_t> stripe_bases;
  };
  void RegisterTableLayout(TableLayout layout);

  /// Key-level accounting (key known to the caller; `keyspace` scales the
  /// key onto the heat shards — pass the owning table's num_keys).
  void RecordKey(HeatKind kind, uint64_t key, uint64_t keyspace,
                 uint64_t count = 1);

  /// Address-level accounting from hooks that only see a packed
  /// GlobalAddress (dsm::GlobalAddress::Pack()). Resolves through the
  /// registered table layouts; unresolvable addresses are counted in the
  /// catch-all bucket.
  void RecordPackedAddr(HeatKind kind, uint64_t packed_addr,
                        uint64_t count = 1);

  /// Folds one sampling interval: every shard EWMA decays and absorbs the
  /// raw counts recorded since the previous fold; sketch counts decay and
  /// entries below the eviction floor are dropped. Called by SkewMonitor
  /// on its interval clock (or directly by tests).
  void Fold();

  /// Point-in-time copy; `top_k` bounds hot_keys (0 = all sketch entries).
  HeatSnapshot Snapshot(size_t top_k = 0) const;

  /// Accesses whose address did not resolve to any registered table.
  uint64_t unresolved() const {
    return unresolved_.load(std::memory_order_relaxed);
  }

 private:
  /// Raw per-shard counters (written by worker threads) plus the folded
  /// EWMA (written only under fold_mu_).
  struct alignas(64) ShardCell {
    std::atomic<uint64_t> raw[kHeatKinds] = {};
    /// Raw value at the last Fold(), so the fold can take interval deltas
    /// without resetting the cumulative counters.
    uint64_t folded[kHeatKinds] = {};
    double heat[kHeatKinds] = {};
  };

  /// SpaceSaving stripe: bounded set of (key -> decayed count, error).
  struct SketchStripe {
    SpinLatch latch;
    struct Entry {
      uint64_t key = 0;
      double count = 0;
      double error = 0;
    };
    std::vector<Entry> entries;                  // size <= capacity
    std::unordered_map<uint64_t, size_t> index;  // key -> entries slot
    void Offer(uint64_t key, double weight, size_t capacity);
    void Decay(double factor);
  };

  HeatMap() = default;

  size_t ShardOf(uint64_t key, uint64_t keyspace) const {
    if (keyspace == 0) return 0;
    if (key >= keyspace) key = keyspace - 1;
    // 128-bit-free range partition: safe for keyspace < 2^32 shards*keys.
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(key) * shards_.size()) / keyspace);
  }

  /// addr -> (key, keyspace); false if no layout covers it.
  bool Resolve(uint64_t packed_addr, uint64_t* key,
               uint64_t* keyspace) const;

  static inline std::atomic<bool> enabled_{false};

  HeatOptions options_;
  std::vector<std::unique_ptr<ShardCell>> shards_;
  std::vector<std::unique_ptr<SketchStripe>> sketch_;
  std::atomic<uint64_t> unresolved_{0};
  std::atomic<uint64_t> intervals_{0};

  mutable std::mutex fold_mu_;

  /// Layout registry: snapshot-swapped so resolution is lock-free on the
  /// hot path (registration happens once per table at setup).
  mutable SpinLatch layout_latch_;
  std::shared_ptr<const std::vector<TableLayout>> layouts_ =
      std::make_shared<const std::vector<TableLayout>>();
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_HEAT_MAP_H_
