#ifndef DSMDB_OBS_STATS_EXPORTER_H_
#define DSMDB_OBS_STATS_EXPORTER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/heat_map.h"
#include "obs/skew_monitor.h"

namespace dsmdb::obs {

/// Merges heterogeneous stats sources — MetricsRegistry counters/gauges,
/// fabric VerbStats, per-layer latency histograms, workload results — into
/// one report, exported as machine-readable JSON or a human text block.
///
/// Merge semantics: counters under the same name ADD, histograms under the
/// same name MERGE (bucket-wise), scalars OVERWRITE (last writer wins).
/// That makes it safe to feed several components that share metric names
/// (two compute nodes' pools, a fabric snapshot plus a registry snapshot).
class StatsExporter {
 public:
  void AddCounter(const std::string& name, uint64_t value);
  void AddCounters(const std::map<std::string, uint64_t>& counters);
  void AddScalar(const std::string& name, double value);
  void AddHistogram(const std::string& name, const Histogram& hist);

  /// Critical-path attribution for one protocol/config; repeated names
  /// MERGE (txn-weighted).
  void AddBreakdown(const std::string& name, const LatencyBreakdown& b);

  /// Congestion time-series captured by the FlightRecorder. OVERWRITES any
  /// previously-added series.
  void AddTimeseries(const FlightRecorder::Series& series);

  /// Run metadata stamped into the report root (`meta` section): schema
  /// version, seed, build flags. String values OVERWRITE.
  void SetMeta(const std::string& key, const std::string& value);
  void SetMeta(const std::string& key, uint64_t value);
  /// Stamps the standard fields: schema version, build type/sanitizer
  /// flags, and the driver seed (skipped when `seed` is 0/unknown).
  void StampRunMeta(uint64_t seed);

  /// Heat-observatory section: per-shard kind table + hot-key list from
  /// the HeatMap, plus the latest SkewSignals estimates. OVERWRITES any
  /// previously-added heat data. `top_k` bounds the exported hot keys.
  void AddHeat(const HeatSnapshot& snap, const SkewSignals& signals,
               size_t top_k = 32);

  /// Pulls the whole process: GlobalMetrics() counters + gauges, and every
  /// Telemetry histogram.
  void CollectGlobal();

  bool empty() const {
    return counters_.empty() && scalars_.empty() && histograms_.empty() &&
           breakdowns_.empty() && timeseries_.t_ns.empty() &&
           !has_heat_;
  }

  /// One JSON object:
  ///   {"counters":{...},"scalars":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"mean":..,"min":..,
  ///                          "p50":..,"p95":..,"p99":..,"max":..},...}}
  /// plus, when present, `latency_breakdown` (per-protocol exclusive
  /// bucket means) and `timeseries` (sample times + gauge columns).
  std::string ToJson() const;

  /// Aligned text block (one line per metric) for quick eyeballing.
  std::string ToText() const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> scalars_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, LatencyBreakdown> breakdowns_;
  FlightRecorder::Series timeseries_;
  std::map<std::string, std::string> meta_;
  bool has_heat_ = false;
  HeatSnapshot heat_;
  SkewSignals skew_;
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_STATS_EXPORTER_H_
