#ifndef DSMDB_OBS_TELEMETRY_H_
#define DSMDB_OBS_TELEMETRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/histogram.h"
#include "common/metrics.h"

namespace dsmdb::obs {

/// Process-wide home of named latency histograms (counters/gauges live in
/// GlobalMetrics()). Instrumented components fetch their histogram pointer
/// once at construction — `GetHistogram` is create-on-demand with pointer
/// stability — and record into it lock-cheaply on the hot path.
///
/// Naming convention: `layer.component.metric`, unit-suffixed, e.g.
/// `fabric.verb.read_ns`, `buffer.pool.miss_ns`, `txn.occ.commit_ns`.
/// Components constructed several times (one fabric per bench section, one
/// pool per compute node) share the named histogram; use Reset() between
/// bench sections for per-section numbers.
class Telemetry {
 public:
  static Telemetry& Instance();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// The process-wide counter/gauge registry (= GlobalMetrics()).
  MetricsRegistry& metrics() { return GlobalMetrics(); }

  /// Histogram registered under `name`, created if absent. The pointer
  /// stays valid for the process lifetime.
  ConcurrentHistogram* GetHistogram(const std::string& name);

  /// Point-in-time merged copy of every named histogram.
  std::map<std::string, Histogram> SnapshotHistograms() const;

  /// Clears all histograms and resets all owned counters (live gauges keep
  /// reporting their components' running values).
  void Reset();

 private:
  Telemetry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ConcurrentHistogram>> histograms_;
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_TELEMETRY_H_
