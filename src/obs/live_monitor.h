#ifndef DSMDB_OBS_LIVE_MONITOR_H_
#define DSMDB_OBS_LIVE_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>

#include "common/histogram.h"
#include "obs/skew_monitor.h"

namespace dsmdb::obs {

struct LiveMonitorOptions {
  /// Shown per row: hottest shards and hottest keys.
  size_t top_shards = 4;
  size_t top_keys = 5;
  /// Re-print the column header every this many rows.
  size_t header_every = 16;
  /// Destination stream (default stdout). Not owned.
  std::FILE* out = nullptr;
};

/// `top`-style live view of a running workload: one row per SkewMonitor
/// sampling interval with throughput, p99, abort rate, buffer hit rate,
/// the hottest shards/keys, and a SKEW-SHIFT flag. Installed as the
/// SkewMonitor sample hook (Attach), fed per-transaction by the driver
/// (OnTxn); printing happens on the sampling worker thread, off the
/// simulated clock.
class LiveMonitor {
 public:
  static LiveMonitor& Instance();

  LiveMonitor(const LiveMonitor&) = delete;
  LiveMonitor& operator=(const LiveMonitor&) = delete;

  /// Resets interval state and installs this monitor as the SkewMonitor
  /// sample hook.
  void Attach(const LiveMonitorOptions& options);
  /// Uninstalls the hook (sampling continues, printing stops).
  void Detach();

  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Per-transaction accounting from the driver loop. Cheap: two relaxed
  /// fetch_adds plus a striped histogram add.
  void OnTxn(bool committed, uint64_t latency_ns) {
    if (!Enabled()) return;
    (committed ? committed_ : aborted_)
        .fetch_add(1, std::memory_order_relaxed);
    latency_.Add(latency_ns);
  }

  uint64_t rows_printed() const {
    return rows_.load(std::memory_order_relaxed);
  }

 private:
  LiveMonitor() = default;
  void OnSignals(const SkewSignals& sig);

  static inline std::atomic<bool> enabled_{false};

  LiveMonitorOptions options_;
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  ConcurrentHistogram latency_;
  std::atomic<uint64_t> rows_{0};

  std::mutex mu_;  // serializes OnSignals prints
  uint64_t prev_t_ns_ = 0;
  uint64_t prev_committed_ = 0;
  uint64_t prev_aborted_ = 0;
  uint64_t prev_hits_ = 0;
  uint64_t prev_misses_ = 0;
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_LIVE_MONITOR_H_
