#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "common/sim_clock.h"
#include "common/spin_latch.h"

namespace dsmdb::obs {

namespace {

/// Per-thread causal context. Handlers run inline on the caller's thread,
/// so a single context per thread is enough to thread txn identity through
/// 2PC legs, coherence fan-outs, and log appends.
struct TraceCtx {
  uint64_t txn_id = 0;
  uint64_t span_id = 0;   ///< Current parent for newly-opened spans.
  int64_t shift_ns = 0;   ///< Added to every stamp (handler re-timing).
};

TraceCtx& Ctx() {
  thread_local TraceCtx ctx;
  return ctx;
}

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_txn_id{1};

uint64_t Shifted(uint64_t raw_ns, int64_t shift_ns) {
  const int64_t v = static_cast<int64_t>(raw_ns) + shift_ns;
  return v > 0 ? static_cast<uint64_t>(v) : 0;
}

}  // namespace

uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TxnIdWatermark() {
  return g_next_txn_id.load(std::memory_order_relaxed);
}

uint64_t CurrentTxnId() { return Ctx().txn_id; }
uint64_t CurrentSpanId() { return Ctx().span_id; }

/// Single-writer (the owning thread) ring; the latch only serializes the
/// writer against Snapshot()/Clear() readers.
struct TraceCollector::Buffer {
  explicit Buffer(uint32_t tid_in, size_t capacity)
      : tid(tid_in), ring(capacity) {}

  const uint32_t tid;
  mutable SpinLatch latch;
  std::vector<TraceEvent> ring;
  size_t next = 0;      ///< Write cursor.
  uint64_t total = 0;   ///< Events ever emitted to this buffer.
};

TraceCollector& TraceCollector::Instance() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::SetBufferCapacity(size_t events) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = events == 0 ? 1 : events;
}

TraceCollector::Buffer* TraceCollector::ThreadBuffer() {
  thread_local Buffer* buffer = nullptr;
  thread_local TraceCollector* owner = nullptr;
  if (buffer == nullptr || owner != this) {
    std::lock_guard<std::mutex> lk(mu_);
    buffers_.push_back(std::make_unique<Buffer>(
        static_cast<uint32_t>(buffers_.size()), capacity_));
    buffer = buffers_.back().get();
    owner = this;
  }
  return buffer;
}

void TraceCollector::Emit(const char* name, const char* cat,
                          uint64_t start_ns, uint64_t dur_ns,
                          uint64_t txn_id, uint64_t span_id,
                          uint64_t parent_id) {
  Buffer* b = ThreadBuffer();
  SpinLatchGuard g(b->latch);
  b->ring[b->next] =
      TraceEvent{name, cat, start_ns, dur_ns, txn_id, span_id, parent_id,
                 b->tid};
  b->next = (b->next + 1) % b->ring.size();
  b->total++;
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  for (const auto& b : buffers_) {
    SpinLatchGuard g(b->latch);
    const size_t cap = b->ring.size();
    const size_t retained = b->total < cap ? static_cast<size_t>(b->total)
                                           : cap;
    // Oldest retained event sits at `next` once the ring has wrapped.
    const size_t first = b->total < cap ? 0 : b->next;
    for (size_t i = 0; i < retained; i++) {
      out.push_back(b->ring[(first + i) % cap]);
    }
  }
  return out;
}

uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t dropped = 0;
  for (const auto& b : buffers_) {
    SpinLatchGuard g(b->latch);
    const size_t cap = b->ring.size();
    if (b->total > cap) dropped += b->total - cap;
  }
  return dropped;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& b : buffers_) {
    SpinLatchGuard g(b->latch);
    b->next = 0;
    b->total = 0;
  }
}

std::string TraceCollector::ToChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out;
  out.reserve(events.size() * 140 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[320];
  bool first = true;
  for (const TraceEvent& e : events) {
    // Chrome trace timestamps are microseconds; keep ns precision via the
    // fractional part.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u",
                  first ? "" : ",", e.name, e.cat,
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.tid);
    out += buf;
    if (e.span_id != 0) {
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"txn\":%llu,\"span\":%llu,\"parent\":%llu}",
                    static_cast<unsigned long long>(e.txn_id),
                    static_cast<unsigned long long>(e.span_id),
                    static_cast<unsigned long long>(e.parent_id));
      out += buf;
    }
    out += "}";
    first = false;
  }
  out += "]}";
  return out;
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

uint64_t EmitSpan(const char* name, const char* cat, uint64_t start_ns,
                  uint64_t dur_ns) {
  TraceCtx& ctx = Ctx();
  return EmitSpanUnder(name, cat, start_ns, dur_ns, ctx.span_id);
}

uint64_t EmitSpanUnder(const char* name, const char* cat, uint64_t start_ns,
                       uint64_t dur_ns, uint64_t parent_id,
                       uint64_t span_id) {
  TraceCtx& ctx = Ctx();
  if (span_id == 0) span_id = NextSpanId();
  TraceCollector::Instance().Emit(name, cat, Shifted(start_ns, ctx.shift_ns),
                                  dur_ns, ctx.txn_id, span_id, parent_id);
  return span_id;
}

TraceScope::TraceScope(const char* name, const char* cat) {
  if (ObsConfig::TracingEnabled()) {
    TraceCtx& ctx = Ctx();
    name_ = name;
    cat_ = cat;
    start_ns_ = Shifted(SimClock::Now(), ctx.shift_ns);
    parent_id_ = ctx.span_id;
    span_id_ = NextSpanId();
    ctx.span_id = span_id_;
  }
}

TraceScope::~TraceScope() {
  if (name_ != nullptr) {
    TraceCtx& ctx = Ctx();
    ctx.span_id = parent_id_;
    const uint64_t end_ns = Shifted(SimClock::Now(), ctx.shift_ns);
    TraceCollector::Instance().Emit(
        name_, cat_, start_ns_, end_ns > start_ns_ ? end_ns - start_ns_ : 0,
        ctx.txn_id, span_id_, parent_id_);
  }
}

TraceTxnScope::TraceTxnScope(const char* name, const char* cat) {
  if (ObsConfig::TracingEnabled()) {
    TraceCtx& ctx = Ctx();
    name_ = name;
    cat_ = cat;
    saved_txn_id_ = ctx.txn_id;
    if (ctx.txn_id == 0) {
      ctx.txn_id = g_next_txn_id.fetch_add(1, std::memory_order_relaxed);
    }
    txn_id_ = ctx.txn_id;
    start_ns_ = Shifted(SimClock::Now(), ctx.shift_ns);
    parent_id_ = ctx.span_id;
    span_id_ = NextSpanId();
    ctx.span_id = span_id_;
  }
}

TraceTxnScope::~TraceTxnScope() {
  if (name_ != nullptr) {
    TraceCtx& ctx = Ctx();
    ctx.span_id = parent_id_;
    const uint64_t end_ns = Shifted(SimClock::Now(), ctx.shift_ns);
    TraceCollector::Instance().Emit(
        name_, cat_, start_ns_, end_ns > start_ns_ ? end_ns - start_ns_ : 0,
        txn_id_, span_id_, parent_id_);
    ctx.txn_id = saved_txn_id_;
  }
}

TraceParentScope::TraceParentScope(uint64_t parent_id) {
  if (parent_id != 0) {
    TraceCtx& ctx = Ctx();
    saved_span_id_ = ctx.span_id;
    ctx.span_id = parent_id;
    active_ = true;
  }
}

TraceParentScope::~TraceParentScope() {
  if (active_) Ctx().span_id = saved_span_id_;
}

TraceTimeShift::TraceTimeShift(int64_t delta_ns) {
  if (ObsConfig::TracingEnabled()) {
    delta_ns_ = delta_ns;
    Ctx().shift_ns += delta_ns;
  }
}

TraceTimeShift::~TraceTimeShift() {
  if (delta_ns_ != 0) Ctx().shift_ns -= delta_ns_;
}

}  // namespace dsmdb::obs
