#include "obs/trace.h"

#include <cstdio>

#include "common/sim_clock.h"
#include "common/spin_latch.h"

namespace dsmdb::obs {

/// Single-writer (the owning thread) ring; the latch only serializes the
/// writer against Snapshot()/Clear() readers.
struct TraceCollector::Buffer {
  explicit Buffer(uint32_t tid_in, size_t capacity)
      : tid(tid_in), ring(capacity) {}

  const uint32_t tid;
  mutable SpinLatch latch;
  std::vector<TraceEvent> ring;
  size_t next = 0;      ///< Write cursor.
  uint64_t total = 0;   ///< Events ever emitted to this buffer.
};

TraceCollector& TraceCollector::Instance() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::SetBufferCapacity(size_t events) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = events == 0 ? 1 : events;
}

TraceCollector::Buffer* TraceCollector::ThreadBuffer() {
  thread_local Buffer* buffer = nullptr;
  thread_local TraceCollector* owner = nullptr;
  if (buffer == nullptr || owner != this) {
    std::lock_guard<std::mutex> lk(mu_);
    buffers_.push_back(std::make_unique<Buffer>(
        static_cast<uint32_t>(buffers_.size()), capacity_));
    buffer = buffers_.back().get();
    owner = this;
  }
  return buffer;
}

void TraceCollector::Emit(const char* name, const char* cat,
                          uint64_t start_ns, uint64_t dur_ns) {
  Buffer* b = ThreadBuffer();
  SpinLatchGuard g(b->latch);
  b->ring[b->next] = TraceEvent{name, cat, start_ns, dur_ns, b->tid};
  b->next = (b->next + 1) % b->ring.size();
  b->total++;
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  for (const auto& b : buffers_) {
    SpinLatchGuard g(b->latch);
    const size_t cap = b->ring.size();
    const size_t retained = b->total < cap ? static_cast<size_t>(b->total)
                                           : cap;
    // Oldest retained event sits at `next` once the ring has wrapped.
    const size_t first = b->total < cap ? 0 : b->next;
    for (size_t i = 0; i < retained; i++) {
      out.push_back(b->ring[(first + i) % cap]);
    }
  }
  return out;
}

uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t dropped = 0;
  for (const auto& b : buffers_) {
    SpinLatchGuard g(b->latch);
    const size_t cap = b->ring.size();
    if (b->total > cap) dropped += b->total - cap;
  }
  return dropped;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& b : buffers_) {
    SpinLatchGuard g(b->latch);
    b->next = 0;
    b->total = 0;
  }
}

std::string TraceCollector::ToChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& e : events) {
    // Chrome trace timestamps are microseconds; keep ns precision via the
    // fractional part.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u}",
                  first ? "" : ",", e.name, e.cat,
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.tid);
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

TraceScope::TraceScope(const char* name, const char* cat) {
  if (ObsConfig::TracingEnabled()) {
    name_ = name;
    cat_ = cat;
    start_ns_ = SimClock::Now();
  }
}

TraceScope::~TraceScope() {
  if (name_ != nullptr) {
    TraceCollector::Instance().Emit(name_, cat_, start_ns_,
                                    SimClock::Now() - start_ns_);
  }
}

}  // namespace dsmdb::obs
