#include "obs/telemetry.h"

namespace dsmdb::obs {

Telemetry& Telemetry::Instance() {
  static Telemetry* telemetry = new Telemetry();
  return *telemetry;
}

ConcurrentHistogram* Telemetry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<ConcurrentHistogram>())
             .first;
  }
  return it->second.get();
}

std::map<std::string, Histogram> Telemetry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, Histogram> out;
  for (const auto& [name, hist] : histograms_) {
    out.emplace(name, hist->Merged());
  }
  return out;
}

void Telemetry::Reset() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [name, hist] : histograms_) {
      hist->Clear();
    }
  }
  GlobalMetrics().ResetAll();
}

}  // namespace dsmdb::obs
