#include "obs/stats_exporter.h"

#include <cstdio>

#include "obs/telemetry.h"

namespace dsmdb::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void StatsExporter::AddCounter(const std::string& name, uint64_t value) {
  counters_[name] += value;
}

void StatsExporter::AddCounters(
    const std::map<std::string, uint64_t>& counters) {
  for (const auto& [name, value] : counters) {
    counters_[name] += value;
  }
}

void StatsExporter::AddScalar(const std::string& name, double value) {
  scalars_[name] = value;
}

void StatsExporter::AddHistogram(const std::string& name,
                                 const Histogram& hist) {
  histograms_[name].Merge(hist);
}

void StatsExporter::AddBreakdown(const std::string& name,
                                 const LatencyBreakdown& b) {
  breakdowns_[name].Merge(b);
}

void StatsExporter::AddTimeseries(const FlightRecorder::Series& series) {
  timeseries_ = series;
}

void StatsExporter::SetMeta(const std::string& key,
                            const std::string& value) {
  meta_[key] = "\"" + JsonEscape(value) + "\"";
}

void StatsExporter::SetMeta(const std::string& key, uint64_t value) {
  meta_[key] = std::to_string(value);
}

void StatsExporter::StampRunMeta(uint64_t seed) {
  // Bump when the report layout changes (sections added/renamed).
  SetMeta("schema_version", uint64_t{2});
  if (seed != 0) SetMeta("seed", seed);
#ifdef NDEBUG
  SetMeta("build", "release");
#else
  SetMeta("build", "debug");
#endif
  std::string san;
#if defined(__SANITIZE_ADDRESS__)
  san += "asan,";
#endif
#if defined(__SANITIZE_THREAD__)
  san += "tsan,";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  san += "asan,";
#endif
#if __has_feature(thread_sanitizer)
  san += "tsan,";
#endif
#if __has_feature(undefined_behavior_sanitizer)
  san += "ubsan,";
#endif
#endif
  if (!san.empty()) san.pop_back();
  SetMeta("sanitizers", san.empty() ? "none" : san);
#if defined(__clang_major__)
  SetMeta("compiler", "clang-" + std::to_string(__clang_major__));
#elif defined(__GNUC__)
  SetMeta("compiler", "gcc-" + std::to_string(__GNUC__));
#endif
}

void StatsExporter::AddHeat(const HeatSnapshot& snap,
                            const SkewSignals& signals, size_t top_k) {
  heat_ = snap;
  if (top_k != 0 && heat_.hot_keys.size() > top_k) {
    heat_.hot_keys.resize(top_k);
  }
  skew_ = signals;
  has_heat_ = true;
}

void StatsExporter::CollectGlobal() {
  AddCounters(GlobalMetrics().Snapshot());
  for (const auto& [name, hist] : Telemetry::Instance().SnapshotHistograms()) {
    if (hist.count() > 0) AddHistogram(name, hist);
  }
}

std::string StatsExporter::ToJson() const {
  std::string out = "{";
  bool first = true;
  if (!meta_.empty()) {
    out += "\"meta\":{";
    for (const auto& [key, encoded] : meta_) {
      if (!first) out += ",";
      out += "\"" + JsonEscape(key) + "\":" + encoded;
      first = false;
    }
    out += "},";
  }
  out += "\"counters\":{";
  first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
    first = false;
  }
  out += "},\"scalars\":{";
  first = true;
  for (const auto& [name, value] : scalars_) {
    if (!first) out += ",";
    out += "\"" + JsonEscape(name) + "\":" + FmtDouble(value);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "{\"count\":%llu,\"sum\":%llu,\"mean\":%.1f,\"min\":%llu,"
        "\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,\"max\":%llu}",
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.sum()), h.Mean(),
        static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.Percentile(50)),
        static_cast<unsigned long long>(h.Percentile(95)),
        static_cast<unsigned long long>(h.Percentile(99)),
        static_cast<unsigned long long>(h.max()));
    out += "\"" + JsonEscape(name) + "\":" + buf;
    first = false;
  }
  out += "}";
  if (!breakdowns_.empty()) {
    out += ",\"latency_breakdown\":{";
    first = true;
    for (const auto& [name, b] : breakdowns_) {
      if (!first) out += ",";
      out += "\"" + JsonEscape(name) + "\":{\"txns\":" +
             std::to_string(b.txns) +
             ",\"total_mean_ns\":" + FmtDouble(b.total_mean_ns) +
             ",\"buckets\":{";
      bool bfirst = true;
      for (const auto& [bucket, mean] : b.ToMap()) {
        if (!bfirst) out += ",";
        out += "\"" + bucket + "\":" + FmtDouble(mean);
        bfirst = false;
      }
      out += "}}";
      first = false;
    }
    out += "}";
  }
  if (!timeseries_.t_ns.empty()) {
    out += ",\"timeseries\":{\"t_ns\":[";
    first = true;
    for (uint64_t t : timeseries_.t_ns) {
      if (!first) out += ",";
      out += std::to_string(t);
      first = false;
    }
    out += "],\"series\":{";
    first = true;
    for (const auto& [name, column] : timeseries_.values) {
      if (!first) out += ",";
      out += "\"" + JsonEscape(name) + "\":[";
      bool vfirst = true;
      for (double v : column) {
        if (!vfirst) out += ",";
        // NaN marks "gauge not yet registered"; JSON has no NaN literal.
        out += v == v ? FmtDouble(v) : std::string("null");
        vfirst = false;
      }
      out += "]";
      first = false;
    }
    out += "}}";
  }
  if (has_heat_) {
    out += ",\"heat\":{\"intervals\":" + std::to_string(heat_.intervals);
    // Per-shard table: one column-array per kind, indexed by heat shard.
    out += ",\"shard_heat\":{";
    first = true;
    for (size_t k = 0; k < kHeatKinds; k++) {
      if (!first) out += ",";
      out += "\"" +
             std::string(HeatKindName(static_cast<HeatKind>(k))) + "\":[";
      bool vfirst = true;
      for (const auto& shard : heat_.shard_heat) {
        if (!vfirst) out += ",";
        out += FmtDouble(shard[k]);
        vfirst = false;
      }
      out += "]";
      first = false;
    }
    out += "},\"shard_total\":{";
    first = true;
    for (size_t k = 0; k < kHeatKinds; k++) {
      if (!first) out += ",";
      out += "\"" +
             std::string(HeatKindName(static_cast<HeatKind>(k))) + "\":[";
      bool vfirst = true;
      for (const auto& shard : heat_.shard_total) {
        if (!vfirst) out += ",";
        out += std::to_string(shard[k]);
        vfirst = false;
      }
      out += "]";
      first = false;
    }
    out += "},\"hot_keys\":[";
    first = true;
    for (const HotKey& k : heat_.hot_keys) {
      if (!first) out += ",";
      out += "{\"key\":" + std::to_string(k.key) +
             ",\"est\":" + FmtDouble(k.est) +
             ",\"err\":" + FmtDouble(k.error) + "}";
      first = false;
    }
    out += "],\"skew\":{\"seq\":" + std::to_string(skew_.seq) +
           ",\"top_k_share\":" + FmtDouble(skew_.top_k_share) +
           ",\"zipf_theta\":" + FmtDouble(skew_.zipf_theta) +
           ",\"churn\":" + FmtDouble(skew_.churn) +
           ",\"shift\":" + (skew_.shift ? "true" : "false") +
           ",\"interval_accesses\":" +
           std::to_string(skew_.interval_accesses) +
           ",\"interval_aborts\":" + std::to_string(skew_.interval_aborts) +
           ",\"interval_invalidations\":" +
           std::to_string(skew_.interval_invalidations) + "}}";
  }
  out += "}";
  return out;
}

std::string StatsExporter::ToText() const {
  std::string out;
  char buf[384];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : scalars_) {
    std::snprintf(buf, sizeof(buf), "%-44s %.3f\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf), "%-44s %s\n", name.c_str(),
                  h.ToString().c_str());
    out += buf;
  }
  for (const auto& [name, b] : breakdowns_) {
    std::string line;
    for (const auto& [bucket, mean] : b.ToMap()) {
      if (mean <= 0) continue;
      char item[64];
      std::snprintf(item, sizeof(item), " %s=%.0f", bucket.c_str(), mean);
      line += item;
    }
    std::snprintf(buf, sizeof(buf), "%-44s total=%.0f ns%s\n",
                  ("breakdown." + name).c_str(), b.total_mean_ns,
                  line.c_str());
    out += buf;
  }
  if (has_heat_) {
    std::string keys;
    for (size_t i = 0; i < heat_.hot_keys.size() && i < 8; i++) {
      char item[48];
      std::snprintf(item, sizeof(item), " %llu(%.0f)",
                    static_cast<unsigned long long>(heat_.hot_keys[i].key),
                    heat_.hot_keys[i].est);
      keys += item;
    }
    std::snprintf(buf, sizeof(buf), "%-44s%s\n", "heat.hot_keys",
                  keys.empty() ? " -" : keys.c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "%-44s share=%.3f theta=%.2f churn=%.2f shift=%d\n",
                  "heat.skew", skew_.top_k_share, skew_.zipf_theta,
                  skew_.churn, skew_.shift ? 1 : 0);
    out += buf;
  }
  return out;
}

}  // namespace dsmdb::obs
