#include "obs/stats_exporter.h"

#include <cstdio>

#include "obs/telemetry.h"

namespace dsmdb::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void StatsExporter::AddCounter(const std::string& name, uint64_t value) {
  counters_[name] += value;
}

void StatsExporter::AddCounters(
    const std::map<std::string, uint64_t>& counters) {
  for (const auto& [name, value] : counters) {
    counters_[name] += value;
  }
}

void StatsExporter::AddScalar(const std::string& name, double value) {
  scalars_[name] = value;
}

void StatsExporter::AddHistogram(const std::string& name,
                                 const Histogram& hist) {
  histograms_[name].Merge(hist);
}

void StatsExporter::AddBreakdown(const std::string& name,
                                 const LatencyBreakdown& b) {
  breakdowns_[name].Merge(b);
}

void StatsExporter::AddTimeseries(const FlightRecorder::Series& series) {
  timeseries_ = series;
}

void StatsExporter::CollectGlobal() {
  AddCounters(GlobalMetrics().Snapshot());
  for (const auto& [name, hist] : Telemetry::Instance().SnapshotHistograms()) {
    if (hist.count() > 0) AddHistogram(name, hist);
  }
}

std::string StatsExporter::ToJson() const {
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
    first = false;
  }
  out += "},\"scalars\":{";
  first = true;
  for (const auto& [name, value] : scalars_) {
    if (!first) out += ",";
    out += "\"" + JsonEscape(name) + "\":" + FmtDouble(value);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "{\"count\":%llu,\"sum\":%llu,\"mean\":%.1f,\"min\":%llu,"
        "\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,\"max\":%llu}",
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.sum()), h.Mean(),
        static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.Percentile(50)),
        static_cast<unsigned long long>(h.Percentile(95)),
        static_cast<unsigned long long>(h.Percentile(99)),
        static_cast<unsigned long long>(h.max()));
    out += "\"" + JsonEscape(name) + "\":" + buf;
    first = false;
  }
  out += "}";
  if (!breakdowns_.empty()) {
    out += ",\"latency_breakdown\":{";
    first = true;
    for (const auto& [name, b] : breakdowns_) {
      if (!first) out += ",";
      out += "\"" + JsonEscape(name) + "\":{\"txns\":" +
             std::to_string(b.txns) +
             ",\"total_mean_ns\":" + FmtDouble(b.total_mean_ns) +
             ",\"buckets\":{";
      bool bfirst = true;
      for (const auto& [bucket, mean] : b.ToMap()) {
        if (!bfirst) out += ",";
        out += "\"" + bucket + "\":" + FmtDouble(mean);
        bfirst = false;
      }
      out += "}}";
      first = false;
    }
    out += "}";
  }
  if (!timeseries_.t_ns.empty()) {
    out += ",\"timeseries\":{\"t_ns\":[";
    first = true;
    for (uint64_t t : timeseries_.t_ns) {
      if (!first) out += ",";
      out += std::to_string(t);
      first = false;
    }
    out += "],\"series\":{";
    first = true;
    for (const auto& [name, column] : timeseries_.values) {
      if (!first) out += ",";
      out += "\"" + JsonEscape(name) + "\":[";
      bool vfirst = true;
      for (double v : column) {
        if (!vfirst) out += ",";
        // NaN marks "gauge not yet registered"; JSON has no NaN literal.
        out += v == v ? FmtDouble(v) : std::string("null");
        vfirst = false;
      }
      out += "]";
      first = false;
    }
    out += "}}";
  }
  out += "}";
  return out;
}

std::string StatsExporter::ToText() const {
  std::string out;
  char buf[384];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : scalars_) {
    std::snprintf(buf, sizeof(buf), "%-44s %.3f\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf), "%-44s %s\n", name.c_str(),
                  h.ToString().c_str());
    out += buf;
  }
  for (const auto& [name, b] : breakdowns_) {
    std::string line;
    for (const auto& [bucket, mean] : b.ToMap()) {
      if (mean <= 0) continue;
      char item[64];
      std::snprintf(item, sizeof(item), " %s=%.0f", bucket.c_str(), mean);
      line += item;
    }
    std::snprintf(buf, sizeof(buf), "%-44s total=%.0f ns%s\n",
                  ("breakdown." + name).c_str(), b.total_mean_ns,
                  line.c_str());
    out += buf;
  }
  return out;
}

}  // namespace dsmdb::obs
