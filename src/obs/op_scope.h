#ifndef DSMDB_OBS_OP_SCOPE_H_
#define DSMDB_OBS_OP_SCOPE_H_

#include <cstdint>

#include "common/histogram.h"
#include "common/sim_clock.h"
#include "obs/obs_config.h"
#include "obs/trace.h"

namespace dsmdb::obs {

/// One-liner instrumentation for an operation: records the enclosed
/// simulated-time interval into `hist` (when metrics are on) and emits a
/// trace span under `name` (when tracing is on). Costs two relaxed flag
/// loads when both are off.
///
///   Status DsmClient::Read(...) {
///     obs::OpScope op("dsm.read", "dsm", obs_.read_ns);
///     ...
///   }
class OpScope {
 public:
  OpScope(const char* name, const char* cat, ConcurrentHistogram* hist)
      : span_(name, cat) {
    if (ObsConfig::Enabled() && hist != nullptr) {
      hist_ = hist;
      start_ns_ = SimClock::Now();
    }
  }

  ~OpScope() {
    if (hist_ != nullptr) hist_->Add(SimClock::Now() - start_ns_);
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  TraceScope span_;
  ConcurrentHistogram* hist_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_OP_SCOPE_H_
