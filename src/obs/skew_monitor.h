#ifndef DSMDB_OBS_SKEW_MONITOR_H_
#define DSMDB_OBS_SKEW_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "obs/heat_map.h"

namespace dsmdb::obs {

/// One sampling interval's workload-skew estimate, derived from the
/// HeatMap. This is the stable contract ShardManager-side placement logic
/// (ROADMAP item 4) and hot-key combining (item 2) consume: everything
/// here is already decayed/normalized, so consumers never touch raw
/// counters.
struct SkewSignals {
  uint64_t seq = 0;   ///< Sampling interval sequence number (1-based).
  uint64_t t_ns = 0;  ///< Simulated time of the sampling thread.

  /// Decayed accesses attributed to the top-k hot keys / all accesses.
  /// ~k/num_keys when uniform; -> 1 under extreme skew.
  double top_k_share = 0;
  /// Zipf-theta estimate: least-squares slope of log(count) over
  /// log(rank) across the hot-key sketch. ~0 uniform, ~1 heavy skew.
  double zipf_theta = 0;
  /// Fraction of the current top-k set absent from the *anchor* top-k
  /// set — the hot set captured at the last shift (or the first interval
  /// with meaningful traffic). Anchored comparison lets a hotspot jump
  /// that EWMA decay smears over several intervals still accumulate to
  /// the shift threshold (0 = stable hot set, 1 = fully rotated).
  double churn = 0;
  /// True when this interval detected a hotspot *shift*: high churn on a
  /// concentrated hot set with enough traffic to mean something.
  bool shift = false;

  /// Interval access counts (raw deltas, not decayed).
  uint64_t interval_accesses = 0;
  uint64_t interval_aborts = 0;
  uint64_t interval_invalidations = 0;

  /// Current hot keys (descending) and per-shard read+write+atomic heat,
  /// copied from the HeatMap fold this interval.
  std::vector<HotKey> top_keys;
  std::vector<double> shard_heat;
};

struct SkewMonitorOptions {
  /// Sampling interval in simulated ns.
  uint64_t interval_ns = 200'000;
  /// Hot-set size used for share/churn estimates.
  size_t top_k = 16;
  /// Churn at or above this flags a shift.
  double shift_churn_threshold = 0.5;
  /// Intervals with fewer accesses than this never flag (startup noise).
  uint64_t min_interval_accesses = 64;
  /// Shift needs a concentrated hot set: top-k share at or above this.
  /// Uniform traffic churns its top-k every interval by definition; the
  /// share floor keeps that from reading as a hotspot *move*.
  double min_top_k_share = 0.2;
  /// Retained SkewSignals history (ring).
  size_t history = 256;
};

/// Online skew detector over the HeatMap: on each sampling interval
/// (simulated time, driven from instrumented hot loops via
/// MaybeSample(now) — same loose-clock discipline as FlightRecorder) it
/// folds the HeatMap, estimates hot-set concentration and zipf-theta,
/// measures top-k churn against an anchored hot set (re-seeded on every
/// flagged shift), and raises a SKEW-SHIFT flag when the hot set rotates.
/// Observation-only: never advances SimClock.
class SkewMonitor {
 public:
  using SampleHook = std::function<void(const SkewSignals&)>;

  static SkewMonitor& Instance();

  SkewMonitor(const SkewMonitor&) = delete;
  SkewMonitor& operator=(const SkewMonitor&) = delete;

  /// (Re)configures and clears history; enables sampling. The HeatMap must
  /// be configured separately (Configure here does not touch it).
  void Configure(const SkewMonitorOptions& options);
  const SkewMonitorOptions& options() const { return options_; }

  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Drops history and re-arms the interval clock (options survive).
  void Reset();

  /// Samples if `now_ns` reached the next due time. Fast path: one
  /// relaxed flag load + one relaxed compare. The winning thread folds
  /// the HeatMap and computes this interval's SkewSignals.
  void MaybeSample(uint64_t now_ns) {
    if (!Enabled()) return;
    if (now_ns < next_due_.load(std::memory_order_relaxed)) return;
    Sample(now_ns);
  }

  /// Forces a sample regardless of the interval clock (tests, end-of-run
  /// flush).
  void ForceSample(uint64_t now_ns) { Sample(now_ns, /*force=*/true); }

  /// Most recent interval's signals (empty default before any sample).
  SkewSignals Latest() const;

  /// Retained per-interval history, oldest first.
  std::vector<SkewSignals> History() const;

  /// Shift events since Configure/Reset.
  uint64_t shift_count() const {
    return shift_count_.load(std::memory_order_relaxed);
  }

  /// Invoked after every interval sample with that interval's signals
  /// (used by the live monitor to print). Runs on the sampling worker
  /// thread, outside the monitor mutex.
  void SetSampleHook(SampleHook hook);

 private:
  SkewMonitor() = default;
  void Sample(uint64_t now_ns, bool force = false);

  static inline std::atomic<bool> enabled_{false};

  SkewMonitorOptions options_;
  std::atomic<uint64_t> next_due_{0};
  std::atomic<uint64_t> shift_count_{0};

  mutable std::mutex mu_;
  std::vector<SkewSignals> history_;  // ring, `next_` is the write slot
  size_t next_ = 0;
  uint64_t samples_ = 0;
  /// Anchor hot set churn is measured against; re-seeded on shift, and
  /// whenever the current anchor came from a low-traffic interval.
  std::vector<uint64_t> anchor_top_;
  bool anchor_strong_ = false;
  uint64_t prev_total_accesses_ = 0;
  uint64_t prev_total_aborts_ = 0;
  uint64_t prev_total_invalidations_ = 0;
  SampleHook hook_;
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_SKEW_MONITOR_H_
