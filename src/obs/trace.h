#ifndef DSMDB_OBS_TRACE_H_
#define DSMDB_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/obs_config.h"

namespace dsmdb::obs {

/// One completed span. `name`/`cat` must be string literals (or otherwise
/// outlive the collector) — events store the pointers, never copies, so
/// emission stays allocation-free. Timestamps are *simulated* nanoseconds
/// of the emitting thread (each worker's SimClock starts at 0).
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  ///< Dense per-thread id assigned at first emission.
};

/// Process-wide sink for trace spans: one fixed-capacity ring buffer per
/// emitting thread (registered on first use), so `Emit` is a thread-local
/// pointer hop plus an uncontended spin latch. When a ring wraps, the
/// oldest events of that thread are overwritten and counted in `dropped()`.
///
/// The whole run can be exported as Chrome `trace_event` JSON and opened
/// in chrome://tracing or https://ui.perfetto.dev.
class TraceCollector {
 public:
  static TraceCollector& Instance();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Per-thread ring capacity in events. Applies to buffers created after
  /// the call; existing buffers keep their size. Default 64K events.
  void SetBufferCapacity(size_t events);

  /// Records one completed span for the calling thread. Callers gate on
  /// ObsConfig::TracingEnabled() (TraceScope does this for you).
  void Emit(const char* name, const char* cat, uint64_t start_ns,
            uint64_t dur_ns);

  /// Point-in-time copy of every retained event, oldest-first per thread.
  std::vector<TraceEvent> Snapshot() const;

  /// Events lost to ring wraparound since the last Clear().
  uint64_t dropped() const;

  /// Drops all retained events and resets the dropped counter (buffers and
  /// thread ids survive).
  void Clear();

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
  std::string ToChromeJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct Buffer;

  TraceCollector() = default;
  Buffer* ThreadBuffer();

  mutable std::mutex mu_;  ///< Guards buffer registration + capacity.
  std::vector<std::unique_ptr<Buffer>> buffers_;
  size_t capacity_ = 64 * 1024;
};

/// RAII span: records [construction, destruction) of the calling thread's
/// simulated clock under `name`. Free when tracing is off (one flag load).
///
///   {
///     obs::TraceScope span("txn.commit", "txn");
///     ... work that advances SimClock ...
///   }
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* cat = "dsmdb");
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry.
  const char* cat_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_TRACE_H_
