#ifndef DSMDB_OBS_TRACE_H_
#define DSMDB_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/obs_config.h"

namespace dsmdb::obs {

/// One completed span. `name`/`cat` must be string literals (or otherwise
/// outlive the collector) — events store the pointers, never copies, so
/// emission stays allocation-free. Timestamps are *simulated* nanoseconds
/// of the emitting thread (each worker's SimClock starts at 0).
///
/// Causal linkage: every span carries the transaction it belongs to and
/// its parent span, so a commit that fans out across the async verb
/// engine, two-sided handlers, and 2PC participants still renders as one
/// connected tree. Ids are process-global and never reused; 0 means
/// "none" (a span outside any transaction, or a root).
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t txn_id = 0;     ///< Trace-local transaction id (0 = none).
  uint64_t span_id = 0;    ///< Unique id of this span (0 = untracked).
  uint64_t parent_id = 0;  ///< Enclosing span at emission (0 = root).
  uint32_t tid = 0;  ///< Dense per-thread id assigned at first emission.
};

/// Allocates a fresh span id (never 0). Exposed so callers that must emit
/// children before their parent completes (the async engine's call legs)
/// can reserve the parent id up front.
uint64_t NextSpanId();

/// The next trace txn id that will be handed out. Ids are monotonically
/// increasing, so this acts as a watermark: every transaction started
/// after the call gets an id >= the returned value (lets an analysis
/// window over a shared collector select only its own transactions).
uint64_t TxnIdWatermark();

/// The calling thread's active trace context.
uint64_t CurrentTxnId();
uint64_t CurrentSpanId();

/// Process-wide sink for trace spans: one fixed-capacity ring buffer per
/// emitting thread (registered on first use), so `Emit` is a thread-local
/// pointer hop plus an uncontended spin latch. When a ring wraps, the
/// oldest events of that thread are overwritten and counted in `dropped()`.
///
/// The whole run can be exported as Chrome `trace_event` JSON and opened
/// in chrome://tracing or https://ui.perfetto.dev.
class TraceCollector {
 public:
  static TraceCollector& Instance();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Per-thread ring capacity in events. Applies to buffers created after
  /// the call; existing buffers keep their size. Default 64K events.
  void SetBufferCapacity(size_t events);

  /// Records one completed span for the calling thread. Callers gate on
  /// ObsConfig::TracingEnabled() (TraceScope does this for you).
  void Emit(const char* name, const char* cat, uint64_t start_ns,
            uint64_t dur_ns, uint64_t txn_id = 0, uint64_t span_id = 0,
            uint64_t parent_id = 0);

  /// Point-in-time copy of every retained event, oldest-first per thread.
  std::vector<TraceEvent> Snapshot() const;

  /// Events lost to ring wraparound since the last Clear().
  uint64_t dropped() const;

  /// Drops all retained events and resets the dropped counter (buffers and
  /// thread ids survive).
  void Clear();

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds,
  /// causal ids in args so Perfetto queries can group by txn).
  std::string ToChromeJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct Buffer;

  TraceCollector() = default;
  Buffer* ThreadBuffer();

  mutable std::mutex mu_;  ///< Guards buffer registration + capacity.
  std::vector<std::unique_ptr<Buffer>> buffers_;
  size_t capacity_ = 64 * 1024;
};

/// Emits an already-timed span under the current thread context (txn id
/// from context, parent = current span). `start_ns` is a raw SimClock
/// stamp; the thread's trace time shift is applied here, exactly as
/// TraceScope does. Returns the new span's id. Caller gates on
/// ObsConfig::TracingEnabled().
uint64_t EmitSpan(const char* name, const char* cat, uint64_t start_ns,
                  uint64_t dur_ns);

/// Same, but under an explicit parent (and optionally with a caller-
/// reserved id from NextSpanId(), so children can be emitted first).
uint64_t EmitSpanUnder(const char* name, const char* cat, uint64_t start_ns,
                       uint64_t dur_ns, uint64_t parent_id,
                       uint64_t span_id = 0);

/// RAII span: records [construction, destruction) of the calling thread's
/// simulated clock under `name`, linked to the thread's current trace
/// context (it becomes the current span for its lifetime, so nested
/// scopes and EmitSpan calls parent under it). Free when tracing is off
/// (one flag load).
///
///   {
///     obs::TraceScope span("txn.commit", "txn");
///     ... work that advances SimClock ...
///   }
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* cat = "dsmdb");
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// This scope's span id (0 when tracing was off at construction). Lets
  /// out-of-band children (engine-emitted verb legs) parent under it.
  uint64_t span_id() const { return span_id_; }

 private:
  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry.
  const char* cat_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
};

/// Root scope of one transaction attempt. Starts a fresh trace txn id if
/// the thread has none (2PC handler legs and delegated executions run
/// inline on a thread that already carries the coordinator's txn id, and
/// then simply nest). Restores the previous context at destruction.
class TraceTxnScope {
 public:
  explicit TraceTxnScope(const char* name, const char* cat = "txn.root");
  ~TraceTxnScope();

  TraceTxnScope(const TraceTxnScope&) = delete;
  TraceTxnScope& operator=(const TraceTxnScope&) = delete;

  uint64_t txn_id() const { return txn_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t txn_id_ = 0;
  uint64_t saved_txn_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
};

/// Re-parents spans emitted in its scope under `parent_id` instead of the
/// thread's current span. Used by the async engine to hang handler-side
/// spans off a verb leg whose own span is emitted only at completion.
/// No-op when `parent_id` is 0.
class TraceParentScope {
 public:
  explicit TraceParentScope(uint64_t parent_id);
  ~TraceParentScope();

  TraceParentScope(const TraceParentScope&) = delete;
  TraceParentScope& operator=(const TraceParentScope&) = delete;

 private:
  uint64_t saved_span_id_ = 0;
  bool active_ = false;
};

/// Shifts the timestamps of every span emitted in its scope by `delta_ns`
/// (signed). The async engine runs two-sided handlers inline on the
/// poster's thread at post time, but in simulated time the handler only
/// starts once the request has crossed the wire and cleared the remote
/// CPU's queue — without the shift, handler spans would stamp wall thread
/// order and appear *before* the verb that carried them. No-op when
/// tracing is off.
class TraceTimeShift {
 public:
  explicit TraceTimeShift(int64_t delta_ns);
  ~TraceTimeShift();

  TraceTimeShift(const TraceTimeShift&) = delete;
  TraceTimeShift& operator=(const TraceTimeShift&) = delete;

 private:
  int64_t delta_ns_ = 0;
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_TRACE_H_
