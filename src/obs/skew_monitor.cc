#include "obs/skew_monitor.h"

#include <algorithm>
#include <cmath>

namespace dsmdb::obs {

namespace {

/// Least-squares fit of log(count) = c - theta * log(rank) over the
/// hot-key estimates; under a zipfian workload the sketch's top counts
/// follow count(rank) ~ rank^-theta.
double EstimateZipfTheta(const std::vector<HotKey>& keys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t n = 0;
  for (size_t i = 0; i < keys.size(); i++) {
    if (keys[i].est <= 0) break;
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(keys[i].est);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    n++;
  }
  if (n < 3) return 0;
  const double dn = static_cast<double>(n);
  const double var = sxx - sx * sx / dn;
  if (var <= 0) return 0;
  const double slope = (sxy - sx * sy / dn) / var;
  return std::clamp(-slope, 0.0, 2.0);
}

}  // namespace

SkewMonitor& SkewMonitor::Instance() {
  static SkewMonitor* monitor = new SkewMonitor();
  return *monitor;
}

void SkewMonitor::Configure(const SkewMonitorOptions& options) {
  std::lock_guard<std::mutex> lk(mu_);
  options_ = options;
  if (options_.interval_ns == 0) options_.interval_ns = 1;
  if (options_.top_k == 0) options_.top_k = 1;
  if (options_.history == 0) options_.history = 1;
  history_.assign(options_.history, SkewSignals{});
  next_ = 0;
  samples_ = 0;
  anchor_top_.clear();
  anchor_strong_ = false;
  prev_total_accesses_ = 0;
  prev_total_aborts_ = 0;
  prev_total_invalidations_ = 0;
  next_due_.store(0, std::memory_order_relaxed);
  shift_count_.store(0, std::memory_order_relaxed);
  SetEnabled(true);
}

void SkewMonitor::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  history_.assign(std::max<size_t>(1, options_.history), SkewSignals{});
  next_ = 0;
  samples_ = 0;
  anchor_top_.clear();
  anchor_strong_ = false;
  prev_total_accesses_ = 0;
  prev_total_aborts_ = 0;
  prev_total_invalidations_ = 0;
  next_due_.store(0, std::memory_order_relaxed);
  shift_count_.store(0, std::memory_order_relaxed);
}

void SkewMonitor::SetSampleHook(SampleHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  hook_ = std::move(hook);
}

void SkewMonitor::Sample(uint64_t now_ns, bool force) {
  SkewSignals sig;
  SampleHook hook;
  {
    // One sampler at a time; losers skip — by the time they would retry,
    // the due time has moved on (FlightRecorder's discipline).
    std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
    if (!lk.owns_lock()) return;
    if (!force && now_ns < next_due_.load(std::memory_order_relaxed)) {
      return;
    }
    next_due_.store(now_ns + options_.interval_ns,
                    std::memory_order_relaxed);

    // Fold the heat interval and read back the decayed state. The fold
    // and this snapshot are the interval boundary.
    HeatMap& heat = HeatMap::Instance();
    heat.Fold();
    const HeatSnapshot snap = heat.Snapshot(options_.top_k);

    sig.seq = ++samples_;
    sig.t_ns = now_ns;
    sig.top_keys = snap.hot_keys;
    sig.shard_heat.reserve(snap.shard_heat.size());
    uint64_t total_aborts = 0;
    uint64_t total_invalidations = 0;
    for (size_t s = 0; s < snap.shard_heat.size(); s++) {
      sig.shard_heat.push_back(
          snap.shard_heat[s][static_cast<size_t>(HeatKind::kRead)] +
          snap.shard_heat[s][static_cast<size_t>(HeatKind::kWrite)] +
          snap.shard_heat[s][static_cast<size_t>(HeatKind::kAtomic)]);
      total_aborts +=
          snap.shard_total[s][static_cast<size_t>(HeatKind::kAbort)];
      total_invalidations += snap.shard_total[s][static_cast<size_t>(
          HeatKind::kInvalidation)];
    }
    sig.interval_accesses = snap.total_accesses - prev_total_accesses_;
    sig.interval_aborts = total_aborts - prev_total_aborts_;
    sig.interval_invalidations =
        total_invalidations - prev_total_invalidations_;
    prev_total_accesses_ = snap.total_accesses;
    prev_total_aborts_ = total_aborts;
    prev_total_invalidations_ = total_invalidations;

    double top_sum = 0;
    for (const HotKey& k : sig.top_keys) top_sum += k.est;
    sig.top_k_share =
        snap.total_access_heat <= 0 ? 0 : top_sum / snap.total_access_heat;
    sig.zipf_theta = EstimateZipfTheta(sig.top_keys);

    // Churn: how much of the current hot set is new relative to the
    // anchor set. EWMA decay smears an abrupt hotspot jump over several
    // intervals (old keys fade rank by rank), so interval-to-interval
    // churn can stay under the threshold while the hot set fully rotates;
    // against a fixed anchor the replacement accumulates instead.
    if (!anchor_top_.empty() && !sig.top_keys.empty()) {
      size_t fresh = 0;
      for (const HotKey& k : sig.top_keys) {
        if (std::find(anchor_top_.begin(), anchor_top_.end(), k.key) ==
            anchor_top_.end()) {
          fresh++;
        }
      }
      sig.churn =
          static_cast<double>(fresh) / static_cast<double>(sig.top_keys.size());
      sig.shift = anchor_strong_ &&
                  sig.churn >= options_.shift_churn_threshold &&
                  sig.interval_accesses >= options_.min_interval_accesses &&
                  sig.top_k_share >= options_.min_top_k_share;
    }
    // (Re-)anchor on the first sample, after a flagged shift, and while
    // the anchor only saw startup-noise traffic.
    if (anchor_top_.empty() || !anchor_strong_ || sig.shift) {
      anchor_top_.clear();
      for (const HotKey& k : sig.top_keys) anchor_top_.push_back(k.key);
      anchor_strong_ =
          sig.interval_accesses >= options_.min_interval_accesses;
    }

    if (sig.shift) shift_count_.fetch_add(1, std::memory_order_relaxed);
    history_[next_] = sig;
    next_ = (next_ + 1) % history_.size();
    hook = hook_;
  }
  if (hook) hook(sig);
}

SkewSignals SkewMonitor::Latest() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (samples_ == 0) return SkewSignals{};
  const size_t last = (next_ + history_.size() - 1) % history_.size();
  return history_[last];
}

std::vector<SkewSignals> SkewMonitor::History() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SkewSignals> out;
  const size_t retained =
      samples_ < history_.size() ? static_cast<size_t>(samples_)
                                 : history_.size();
  const size_t first = samples_ < history_.size() ? 0 : next_;
  out.reserve(retained);
  for (size_t i = 0; i < retained; i++) {
    out.push_back(history_[(first + i) % history_.size()]);
  }
  return out;
}

}  // namespace dsmdb::obs
