#ifndef DSMDB_OBS_OBS_CONFIG_H_
#define DSMDB_OBS_OBS_CONFIG_H_

#include <atomic>

namespace dsmdb::obs {

/// Process-wide telemetry switches, checked on every instrumented hot path
/// (one relaxed atomic-bool load). Both default OFF so instrumented builds
/// cost nothing unless a bench/test opts in:
///
///  * `Enabled()`  — latency histograms + per-layer counters ("metrics").
///  * `TracingEnabled()` — trace-span ring buffers (Chrome trace export).
///
/// Tracing is independent of metrics so a trace can be captured without
/// paying histogram costs and vice versa.
class ObsConfig {
 public:
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  static bool TracingEnabled() {
    return tracing_.load(std::memory_order_relaxed);
  }
  static void SetTracing(bool on) {
    tracing_.store(on, std::memory_order_relaxed);
  }

 private:
  ObsConfig() = delete;

  static inline std::atomic<bool> enabled_{false};
  static inline std::atomic<bool> tracing_{false};
};

}  // namespace dsmdb::obs

#endif  // DSMDB_OBS_OBS_CONFIG_H_
