#ifndef DSMDB_RDMA_ASYNC_ENGINE_H_
#define DSMDB_RDMA_ASYNC_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdma/verbs.h"

namespace dsmdb::rdma {

class Fabric;

/// Handle for one posted work request (index into the queue's op table).
using WrId = uint32_t;

/// Default bound on in-flight work requests, mirroring a real QP's send
/// queue depth.
inline constexpr uint32_t kDefaultQpDepth = 64;

/// The async verb engine: a per-initiator completion queue that keeps many
/// one-sided verbs (and two-sided calls) in flight, so independent ops
/// overlap their round trips instead of serializing them.
///
/// This is the single overlap-accounting implementation in the tree — all
/// parallel fan-out (k-way log replication, pipelined lock acquisition, 2PC
/// prepare/decide, coherence invalidation) is expressed as posts into one of
/// these queues. Hand-rolled `SimClock::Set`/`AdvanceTo` snapshots are
/// forbidden outside `SimFanOut` (see sim_clock.h).
///
/// Timing model (all per the fabric's NetworkModel):
///  * Each Post* charges `post_overhead_ns` to the calling thread's
///    SimClock at issue time — posting n ops costs n postings of CPU.
///  * An op posted when the clock reads `t_issue` completes at
///    `max(t_issue + modeled_cost, completion of the previous op to the
///    same target)`: per-target in-order (QP ordering guarantee),
///    cross-target parallel.
///  * A pipeline of n same-size ops therefore completes at
///    `n * post_overhead_ns + rtt_ns + transfer` after the first post —
///    one RTT total, not n.
///  * `WaitAll` advances the clock to the *max* completion time of all
///    outstanding ops; `PollAll` retires ops the clock has already passed
///    without advancing it.
///  * Posting while `max_outstanding` ops are in flight first retires the
///    earliest completion (advancing the clock to it), like a full send
///    queue stalling the poster.
///
/// Failure model: ops against a crashed node (or a bad address) fail that
/// op only. The failure is detected one RTT after issue (a real NIC's
/// timeout/NAK), recorded in the op's `Status`, and surfaced as the first
/// error by `WaitAll`; other ops in the pipeline complete normally.
/// An *injected loss* (FaultInjector drop) is different: a real RC QP that
/// exhausts its retransmit budget transitions to the error state and every
/// later WR on it completes with a flush error, never executing. The queue
/// models that — once a verb to a target is dropped, subsequent posts to
/// the same target flush (TimedOut, no memory effect) until Reset(), which
/// stands in for tearing down and reconnecting the QP. Without this, a
/// dropped version-bump FAA followed by an executed unlock CAS in the same
/// install pipeline would expose an ordering no real NIC can produce (the
/// isolation oracle caught exactly that as an OCC lost update).
///
/// Real memory effects (memcpy / atomics / RPC handler execution) happen
/// immediately at post time, in posting order — only *time* is deferred.
/// This means a posted write's source buffer may be reused as soon as
/// Post* returns, and CAS results are available before WaitAll (callers
/// should still only consume them after WaitAll, when the modeled time has
/// been paid).
///
/// Not thread-safe: one CompletionQueue per thread (like a QP owned by one
/// core). Reuse across pipelines via Reset() to avoid allocation churn.
class CompletionQueue {
 public:
  CompletionQueue(Fabric* fabric, NodeId initiator,
                  uint32_t max_outstanding = kDefaultQpDepth);
  ~CompletionQueue();

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  // --- Posting verbs ------------------------------------------------------

  WrId PostRead(RemotePtr src, void* dst, size_t length);
  WrId PostWrite(RemotePtr dst, const void* src, size_t length);
  /// 8-byte CAS; previous value via value() after completion.
  WrId PostCas(RemotePtr addr, uint64_t expected, uint64_t desired);
  /// 8-byte FAA; previous value via value() after completion.
  WrId PostFaa(RemotePtr addr, uint64_t delta);
  /// Two-sided call. `*response` is filled by WaitAll time; the handler's
  /// CPU cost is charged to the target's VirtualCpu as in Fabric::Call.
  WrId PostCall(NodeId target, uint32_t service, std::string_view request,
                std::string* response);
  /// Records an op that failed before reaching the wire (e.g. an
  /// incarnation-fence rejection) so it flows through the normal
  /// status()/WaitAll error plumbing. Charges post overhead only.
  WrId PostError(NodeId target, Status error);

  // --- Completion ---------------------------------------------------------

  /// Advances the clock to the slowest outstanding completion and retires
  /// everything. Returns the first error among all ops posted since the
  /// last Reset() (OK if none).
  Status WaitAll();

  /// Retires ops whose completion time the clock has already reached,
  /// without advancing it. Returns the number retired.
  size_t PollAll();

  /// Per-op outcome; valid for any posted id until Reset().
  const Status& status(WrId id) const { return ops_[id].status; }
  /// Previous value of a completed CAS/FAA.
  uint64_t value(WrId id) const { return ops_[id].value; }
  /// Absolute simulated completion time of `id`.
  uint64_t completion_ns(WrId id) const { return ops_[id].complete_ns; }

  size_t outstanding() const { return outstanding_; }
  /// Ops posted since the last Reset().
  size_t size() const { return ops_.size(); }
  uint32_t max_outstanding() const { return depth_; }

  /// Forgets all ops (does not advance the clock; outstanding modeled time
  /// is abandoned — call WaitAll first unless discarding the pipeline).
  void Reset();

 private:
  struct Op {
    Status status;
    uint64_t value = 0;        // CAS/FAA previous value
    uint64_t complete_ns = 0;  // absolute simulated completion time
    bool retired = false;
  };

  /// Enforces the depth bound and charges post overhead; returns the
  /// simulated issue time (clock after the post).
  uint64_t BeginPost();
  /// Applies per-target ordering and records the op. `wire_cost_ns`
  /// excludes post overhead (already charged by BeginPost).
  WrId FinishPost(NodeId target, Status status, uint64_t value,
                  uint64_t issue_ns, uint64_t wire_cost_ns);
  /// Emits the causal trace spans of one completed one-sided post (no-op
  /// unless tracing is on).
  void TraceOneSided(const char* name, WrId id, uint64_t issue_ns);

  /// True once an injected loss has put this queue's flow to `target` in
  /// the error state; posts to it then flush without executing.
  bool FlowBroken(NodeId target) const {
    return flow_error_.count(target) != 0;
  }
  /// Completes a post to a broken flow: flush error, no memory effect, no
  /// wire cost (a flushed WR completes locally).
  WrId PostFlushed(NodeId target, uint64_t issue_ns) {
    return FinishPost(target,
                      Status::TimedOut("injected: flushed after lost verb"),
                      0, issue_ns, 0);
  }

  Fabric* fabric_;
  NodeId initiator_;
  uint32_t depth_;
  std::vector<Op> ops_;
  size_t outstanding_ = 0;
  Status first_error_;
  /// Completion time of the last op posted to each target (QP in-order).
  std::unordered_map<NodeId, uint64_t> last_complete_;
  /// Targets whose flow hit an injected loss (QP error state; see above).
  std::unordered_set<NodeId> flow_error_;
};

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_ASYNC_ENGINE_H_
