#ifndef DSMDB_RDMA_VIRTUAL_CPU_H_
#define DSMDB_RDMA_VIRTUAL_CPU_H_

#include <atomic>
#include <cstdint>

namespace dsmdb::rdma {

/// Virtual-time multi-core CPU for a simulated node (also reused as the
/// queue of a simulated storage device).
///
/// Memory nodes have "a few CPU cores" (paper, Sec. 1). Work offloaded to
/// them must queue once the cores saturate. Client threads carry
/// *unsynchronized* per-thread simulated clocks, so a FIFO busy-until
/// horizon would be order-sensitive: a task "arriving" at an early
/// simulated time would queue behind work submitted by a thread whose
/// clock happens to be far ahead, welding all client clocks together.
///
/// Instead we model the node as a fluid server with capacity
/// `cores * elapsed_time`: the backlog seen by a task arriving at
/// simulated time `t` is the total work submitted so far minus the
/// capacity available up to `t`. This is insensitive to submission order,
/// leaves an unsaturated server contention-free, and converges to full
/// serialization (total_work / cores) under saturation — the regime that
/// matters for the caching-vs-offloading and durability experiments.
class VirtualCpu {
 public:
  /// `num_cores` cores; `speed_factor` > 1 makes each unit of work take
  /// proportionally longer (memory-node cores are wimpy).
  explicit VirtualCpu(uint32_t num_cores, double speed_factor = 1.0)
      : cores_(num_cores == 0 ? 1 : num_cores),
        speed_factor_(speed_factor) {}

  VirtualCpu(const VirtualCpu&) = delete;
  VirtualCpu& operator=(const VirtualCpu&) = delete;

  /// Schedules a task of nominal cost `cost_ns` arriving at simulated time
  /// `now_ns`; returns its completion time (>= now_ns + scaled cost).
  uint64_t Execute(uint64_t now_ns, uint64_t cost_ns) {
    const auto scaled =
        static_cast<uint64_t>(static_cast<double>(cost_ns) * speed_factor_);
    const uint64_t prior =
        total_work_.fetch_add(scaled, std::memory_order_relaxed);
    const uint64_t capacity = static_cast<uint64_t>(cores_) * now_ns;
    const uint64_t backlog =
        prior > capacity ? (prior - capacity) / cores_ : 0;
    return now_ns + backlog + scaled;
  }

  /// Backlog a task arriving at `now_ns` would wait behind, without
  /// submitting work (observation-only; the tracing layer uses it to place
  /// queueing-wait spans). Racy under concurrent Execute() by design —
  /// it's an estimate of the queue depth, never a scheduling input.
  uint64_t BacklogNs(uint64_t now_ns) const {
    const uint64_t prior = total_work_.load(std::memory_order_relaxed);
    const uint64_t capacity = static_cast<uint64_t>(cores_) * now_ns;
    return prior > capacity ? (prior - capacity) / cores_ : 0;
  }

  /// Resets accumulated work (between benchmark repetitions).
  void Reset() { total_work_.store(0, std::memory_order_relaxed); }

  uint32_t num_cores() const { return cores_; }
  double speed_factor() const { return speed_factor_; }
  /// Total scaled work submitted so far (diagnostics).
  uint64_t TotalWorkNs() const {
    return total_work_.load(std::memory_order_relaxed);
  }

 private:
  uint32_t cores_;
  double speed_factor_;
  std::atomic<uint64_t> total_work_{0};
};

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_VIRTUAL_CPU_H_
