#ifndef DSMDB_RDMA_FABRIC_H_
#define DSMDB_RDMA_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/spin_latch.h"
#include "common/status.h"
#include "obs/flight_recorder.h"
#include "rdma/network_model.h"
#include "rdma/verbs.h"
#include "rdma/virtual_cpu.h"

namespace dsmdb::rdma {

class FaultInjector;

/// Two-sided RPC handler. Runs the real work inline and returns the
/// *simulated* CPU cost (ns, unscaled) it consumed on the target node; the
/// fabric schedules that cost on the node's VirtualCpu.
using RpcHandler =
    std::function<uint64_t(std::string_view request, std::string* response)>;

/// The simulated RDMA fabric: a registry of nodes with registered memory
/// regions, one-sided verbs (READ / WRITE / CAS / FAA, with doorbell
/// batching), and two-sided RPC.
///
/// Semantics mirror libibverbs where it matters to the paper:
///  * One-sided verbs never involve the remote CPU. They execute as real
///    loads/stores/atomics on the registered memory, so concurrent access
///    behaves like real RDMA (including races unless the caller uses CAS
///    protocols).
///  * Atomics operate on naturally-aligned 8-byte words.
///  * Each verb advances the calling thread's SimClock per NetworkModel.
///  * Crashed nodes fail all verbs with Status::Unavailable until recovered;
///    recovery bumps the node's incarnation and invalidates old regions
///    (memory contents are lost, as with real DRAM).
///
/// Thread-safe. All verbs may be issued concurrently from any thread.
class Fabric {
 public:
  explicit Fabric(NetworkModel model = NetworkModel{});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Adds a node. `cpu_cores`/`cpu_speed_factor` size its VirtualCpu (used
  /// only for two-sided handlers; one-sided verbs bypass the CPU).
  NodeId AddNode(std::string name, uint32_t cpu_cores = 2,
                 double cpu_speed_factor = 1.0);

  size_t num_nodes() const;

  /// Registers `[base, base+length)` on `node`; returns the rkey.
  Result<uint32_t> RegisterMemory(NodeId node, void* base, size_t length);

  /// Drops all regions of `node` (used on recovery before re-registering).
  Status DeregisterAll(NodeId node);

  // --- One-sided verbs (charged to `initiator`'s stats) ------------------

  Status Read(NodeId initiator, RemotePtr src, void* dst, size_t length);
  Status Write(NodeId initiator, RemotePtr dst, const void* src,
               size_t length);

  /// Doorbell-batched reads: one RTT for the whole batch.
  Status ReadBatch(NodeId initiator, const std::vector<BatchOp>& ops);
  Status WriteBatch(NodeId initiator, const std::vector<BatchOp>& ops);

  /// 8-byte compare-and-swap; returns the *previous* value (like ibv CAS).
  Result<uint64_t> CompareAndSwap(NodeId initiator, RemotePtr addr,
                                  uint64_t expected, uint64_t desired);

  /// 8-byte fetch-and-add; returns the previous value.
  Result<uint64_t> FetchAndAdd(NodeId initiator, RemotePtr addr,
                               uint64_t delta);

  // --- Two-sided RPC ------------------------------------------------------

  /// Registers `handler` as `service` on `node` (overwrites any previous).
  void RegisterRpcHandler(NodeId node, uint32_t service, RpcHandler handler);

  /// Synchronous call; charges network cost to the caller and handler cost
  /// to the target's VirtualCpu (queueing included).
  Status Call(NodeId initiator, NodeId target, uint32_t service,
              std::string_view request, std::string* response);

  // --- Failure injection ---------------------------------------------------

  void CrashNode(NodeId node);
  /// Marks the node alive again with a new incarnation. Old regions are
  /// gone; the owner must re-register memory.
  void RecoverNode(NodeId node);
  bool IsAlive(NodeId node) const;
  uint64_t Incarnation(NodeId node) const;

  /// Installs a fault injector that decides each verb's fate (nullptr to
  /// disable). Not owned; must outlive injection. When null — the default —
  /// the verb hot path pays one relaxed load and nothing else.
  void SetFaultInjector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return fault_.load(std::memory_order_acquire);
  }

  // --- Introspection -------------------------------------------------------

  const NetworkModel& model() const { return model_; }
  /// Per-initiator verb counters.
  VerbStats& stats(NodeId node);
  /// Sum of all nodes' counters.
  VerbStats::Values TotalStats() const;
  void ResetStats();
  VirtualCpu* cpu(NodeId node);
  const std::string& node_name(NodeId node) const;

 private:
  /// The async verb engine posts ops through the fabric's internals
  /// (Resolve + real memory effect) while deferring the modeled time to
  /// its own completion accounting.
  friend class CompletionQueue;

  struct Region {
    char* base = nullptr;
    size_t length = 0;
  };

  struct NodeCtx {
    std::string name;
    std::atomic<bool> alive{true};
    std::atomic<uint64_t> incarnation{0};
    mutable SharedSpinLatch region_latch;
    std::vector<Region> regions;
    mutable SpinLatch rpc_latch;
    std::vector<RpcHandler> handlers;  // indexed by service id
    std::unique_ptr<VirtualCpu> cpu;
    VerbStats stats;
  };

  /// Per-verb latency histograms + time-attribution counters, registered
  /// in obs::Telemetry under `fabric.*`. Pointers are process-lifetime;
  /// recording is gated on obs::ObsConfig::Enabled().
  struct ObsHooks {
    ConcurrentHistogram* read_ns = nullptr;
    ConcurrentHistogram* write_ns = nullptr;
    ConcurrentHistogram* read_batch_ns = nullptr;
    ConcurrentHistogram* write_batch_ns = nullptr;
    ConcurrentHistogram* cas_ns = nullptr;
    ConcurrentHistogram* faa_ns = nullptr;
    ConcurrentHistogram* rpc_ns = nullptr;
    Counter* network_ns = nullptr;  ///< Wire+NIC share of all verbs.
    Counter* rpc_cpu_ns = nullptr;  ///< Remote handler + queueing share.
  };

  /// Resolves `ptr` to a host address, checking aliveness and bounds.
  /// On success the node's region latch is held shared; call
  /// `ReleaseResolve` after the access.
  Result<char*> Resolve(const RemotePtr& ptr, size_t length) const;
  void ReleaseResolve(NodeId node) const;

  NodeCtx* GetNode(NodeId id) const;

  static constexpr size_t kMaxNodes = 1024;

  NetworkModel model_;
  std::atomic<FaultInjector*> fault_{nullptr};
  mutable std::mutex nodes_mu_;  // guards AddNode only
  std::atomic<size_t> num_nodes_{0};
  /// Lock-free slot table so the verb hot path never takes a mutex.
  std::vector<std::atomic<NodeCtx*>> slots_;

  ObsHooks obs_;
  /// Keeps `fabric.verbs.*` gauges in GlobalMetrics() for our lifetime.
  std::vector<GaugeToken> gauge_tokens_;

  /// Congestion gauges for the flight recorder: verbs posted but not yet
  /// retired across all CompletionQueues, and the number of live queues
  /// (for mean per-QP depth). Maintained by the async engine.
  std::atomic<int64_t> inflight_verbs_{0};
  std::atomic<int64_t> active_cqs_{0};
  std::vector<obs::FlightRecorder::Token> flight_tokens_;
};

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_FABRIC_H_
