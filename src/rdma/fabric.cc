#include "rdma/fabric.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "check/checker.h"
#include "common/sim_clock.h"
#include "obs/obs_config.h"
#include "rdma/fault.h"
#include "rdma/sim_mem.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rt/scheduler.h"

namespace dsmdb::rdma {

namespace {

/// True when per-verb histograms/counters should be recorded.
inline bool ObsOn() { return obs::ObsConfig::Enabled(); }

/// Straggler scaling of a wire cost; exact passthrough when no window is
/// active (the common case — no float rounding on the hot path).
inline uint64_t ScaleWire(uint64_t ns, const FaultInjector::Decision& fd) {
  if (fd.wire_multiplier <= 1.0) return ns;
  return static_cast<uint64_t>(static_cast<double>(ns) * fd.wire_multiplier);
}

}  // namespace

std::string VerbStats::Values::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "reads=%llu writes=%llu cas=%llu faa=%llu rpc=%llu "
                "batches=%llu bytes_rd=%llu bytes_wr=%llu rtts=%llu",
                static_cast<unsigned long long>(one_sided_reads),
                static_cast<unsigned long long>(one_sided_writes),
                static_cast<unsigned long long>(cas_ops),
                static_cast<unsigned long long>(faa_ops),
                static_cast<unsigned long long>(rpc_calls),
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(bytes_read),
                static_cast<unsigned long long>(bytes_written),
                static_cast<unsigned long long>(RoundTrips()));
  return buf;
}

Fabric::Fabric(NetworkModel model) : model_(model), slots_(kMaxNodes) {
  for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);

  obs::Telemetry& telemetry = obs::Telemetry::Instance();
  obs_.read_ns = telemetry.GetHistogram("fabric.verb.read_ns");
  obs_.write_ns = telemetry.GetHistogram("fabric.verb.write_ns");
  obs_.read_batch_ns = telemetry.GetHistogram("fabric.verb.read_batch_ns");
  obs_.write_batch_ns = telemetry.GetHistogram("fabric.verb.write_batch_ns");
  obs_.cas_ns = telemetry.GetHistogram("fabric.verb.cas_ns");
  obs_.faa_ns = telemetry.GetHistogram("fabric.verb.faa_ns");
  obs_.rpc_ns = telemetry.GetHistogram("fabric.verb.rpc_ns");
  obs_.network_ns = GlobalMetrics().GetCounter("fabric.network_ns");
  obs_.rpc_cpu_ns = GlobalMetrics().GetCounter("fabric.rpc.cpu_ns");

  // Publish live VerbStats totals so GlobalMetrics().Snapshot() sees the
  // real fabric; tokens unregister on destruction.
  const struct {
    const char* name;
    uint64_t VerbStats::Values::*field;
  } kGauges[] = {
      {"fabric.verbs.reads", &VerbStats::Values::one_sided_reads},
      {"fabric.verbs.writes", &VerbStats::Values::one_sided_writes},
      {"fabric.verbs.cas", &VerbStats::Values::cas_ops},
      {"fabric.verbs.faa", &VerbStats::Values::faa_ops},
      {"fabric.verbs.rpc", &VerbStats::Values::rpc_calls},
      {"fabric.verbs.batches", &VerbStats::Values::batches},
      {"fabric.verbs.bytes_read", &VerbStats::Values::bytes_read},
      {"fabric.verbs.bytes_written", &VerbStats::Values::bytes_written},
  };
  for (const auto& g : kGauges) {
    gauge_tokens_.push_back(GlobalMetrics().RegisterGauge(
        g.name, [this, field = g.field] { return TotalStats().*field; }));
  }
  gauge_tokens_.push_back(GlobalMetrics().RegisterGauge(
      "fabric.verbs.round_trips",
      [this] { return TotalStats().RoundTrips(); }));
  gauge_tokens_.push_back(
      GlobalMetrics().RegisterGauge("fabric.cpu.total_work_ns", [this] {
        uint64_t total = 0;
        const size_t n = num_nodes();
        for (size_t i = 0; i < n; i++) {
          total += GetNode(static_cast<NodeId>(i))->cpu->TotalWorkNs();
        }
        return total;
      }));

  // Congestion gauges for the flight recorder's time-series.
  obs::FlightRecorder& recorder = obs::FlightRecorder::Instance();
  flight_tokens_.push_back(recorder.RegisterGauge(
      "fabric.inflight_verbs", [this](uint64_t) {
        const int64_t v = inflight_verbs_.load(std::memory_order_relaxed);
        return v > 0 ? static_cast<double>(v) : 0.0;
      }));
  flight_tokens_.push_back(recorder.RegisterGauge(
      "fabric.qp_depth", [this](uint64_t) {
        const int64_t q = active_cqs_.load(std::memory_order_relaxed);
        const int64_t v = inflight_verbs_.load(std::memory_order_relaxed);
        return q > 0 && v > 0
                   ? static_cast<double>(v) / static_cast<double>(q)
                   : 0.0;
      }));
  flight_tokens_.push_back(recorder.RegisterGauge(
      "fabric.cpu_utilization", [this](uint64_t now_ns) {
        if (now_ns == 0) return 0.0;
        uint64_t work = 0;
        uint64_t cores = 0;
        const size_t n = num_nodes();
        for (size_t i = 0; i < n; i++) {
          const NodeCtx* ctx = GetNode(static_cast<NodeId>(i));
          work += ctx->cpu->TotalWorkNs();
          cores += ctx->cpu->num_cores();
        }
        if (cores == 0) return 0.0;
        const double u = static_cast<double>(work) /
                         (static_cast<double>(cores) *
                          static_cast<double>(now_ns));
        return u > 1.0 ? 1.0 : u;
      }));
}

Fabric::~Fabric() {
  // Unregister (and fold into counters) the gauges before tearing down the
  // node state their lambdas read.
  flight_tokens_.clear();
  gauge_tokens_.clear();
  for (auto& s : slots_) delete s.load(std::memory_order_relaxed);
}

NodeId Fabric::AddNode(std::string name, uint32_t cpu_cores,
                       double cpu_speed_factor) {
  std::lock_guard<std::mutex> lk(nodes_mu_);
  const size_t id = num_nodes_.load(std::memory_order_relaxed);
  assert(id < kMaxNodes);
  auto* ctx = new NodeCtx();
  ctx->name = std::move(name);
  ctx->cpu = std::make_unique<VirtualCpu>(cpu_cores, cpu_speed_factor);
  slots_[id].store(ctx, std::memory_order_release);
  num_nodes_.store(id + 1, std::memory_order_release);
  return static_cast<NodeId>(id);
}

size_t Fabric::num_nodes() const {
  return num_nodes_.load(std::memory_order_acquire);
}

Fabric::NodeCtx* Fabric::GetNode(NodeId id) const {
  if (id >= num_nodes_.load(std::memory_order_acquire)) return nullptr;
  return slots_[id].load(std::memory_order_acquire);
}

Result<uint32_t> Fabric::RegisterMemory(NodeId node, void* base,
                                        size_t length) {
  NodeCtx* ctx = GetNode(node);
  if (ctx == nullptr) return Status::InvalidArgument("unknown node");
  if (base == nullptr || length == 0) {
    return Status::InvalidArgument("empty region");
  }
  ctx->region_latch.LockExclusive();
  ctx->regions.push_back(Region{static_cast<char*>(base), length});
  const auto rkey = static_cast<uint32_t>(ctx->regions.size() - 1);
  ctx->region_latch.UnlockExclusive();
  // Host memory handed to the fabric may have been recycled from a torn-
  // down cluster; drop any checker shadow state left on it.
  check::OnRegionRegistered(base, length);
  return rkey;
}

Status Fabric::DeregisterAll(NodeId node) {
  NodeCtx* ctx = GetNode(node);
  if (ctx == nullptr) return Status::InvalidArgument("unknown node");
  ctx->region_latch.LockExclusive();
  for (const Region& r : ctx->regions) check::OnRegionDropped(r.base, r.length);
  ctx->regions.clear();
  ctx->region_latch.UnlockExclusive();
  return Status::OK();
}

Result<char*> Fabric::Resolve(const RemotePtr& ptr, size_t length) const {
  NodeCtx* ctx = GetNode(ptr.node);
  if (ctx == nullptr) return Status::InvalidArgument("unknown node");
  if (!ctx->alive.load(std::memory_order_acquire)) {
    return Status::Unavailable("node " + ctx->name + " is down");
  }
  ctx->region_latch.LockShared();
  if (ptr.rkey >= ctx->regions.size()) {
    ctx->region_latch.UnlockShared();
    return Status::InvalidArgument("bad rkey");
  }
  const Region& r = ctx->regions[ptr.rkey];
  if (ptr.offset + length > r.length) {
    ctx->region_latch.UnlockShared();
    return Status::InvalidArgument("remote access out of bounds");
  }
  return r.base + ptr.offset;
}

void Fabric::ReleaseResolve(NodeId node) const {
  NodeCtx* ctx = GetNode(node);
  assert(ctx != nullptr);
  ctx->region_latch.UnlockShared();
}

Status Fabric::Read(NodeId initiator, RemotePtr src, void* dst,
                    size_t length) {
  obs::TraceScope span("fabric.read", "verb.wire");
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fault_.load(std::memory_order_acquire)) {
    fd = inj->OnVerb(initiator, src.node, FaultInjector::Verb::kRead);
    if (fd.drop) {
      rt::SimCharge(model_.post_overhead_ns, fd.timeout_ns);
      return Status::TimedOut("injected: read lost");
    }
  }
  Result<char*> host = Resolve(src, length);
  if (!host.ok()) return host.status();
  SimMemRead(dst, *host, length);
  check::OnRemoteRead(*host, length, src.node, src.offset);
  ReleaseResolve(src.node);
  const uint64_t cost = ScaleWire(model_.OneSidedNs(length), fd);
  // Post overhead is CPU (serial on the core); the rest is wire time a
  // cooperative task may overlap with sibling transactions.
  rt::SimCharge(model_.post_overhead_ns, cost - model_.post_overhead_ns);
  VerbStats& s = stats(initiator);
  s.one_sided_reads.fetch_add(1, std::memory_order_relaxed);
  s.bytes_read.fetch_add(length, std::memory_order_relaxed);
  if (ObsOn()) {
    obs_.read_ns->Add(cost);
    obs_.network_ns->Add(cost);
  }
  return Status::OK();
}

Status Fabric::Write(NodeId initiator, RemotePtr dst, const void* src,
                     size_t length) {
  obs::TraceScope span("fabric.write", "verb.wire");
  FaultInjector::Decision fd;
  FaultInjector* inj = fault_.load(std::memory_order_acquire);
  if (inj != nullptr) {
    fd = inj->OnVerb(initiator, dst.node, FaultInjector::Verb::kWrite);
  }
  Result<char*> host = Resolve(dst, length);
  if (!host.ok()) return host.status();
  SimMemWrite(*host, src, length);
  check::OnRemoteWrite(*host, length, dst.node, dst.offset);
  ReleaseResolve(dst.node);
  if (fd.drop) {
    // Ack loss: the NIC applied the store but the initiator never hears —
    // the retry is idempotent (see FaultInjector loss semantics).
    rt::SimCharge(model_.post_overhead_ns, fd.timeout_ns);
    return Status::TimedOut("injected: write ack lost");
  }
  const uint64_t cost = ScaleWire(model_.OneSidedNs(length), fd);
  rt::SimCharge(model_.post_overhead_ns, cost - model_.post_overhead_ns);
  VerbStats& s = stats(initiator);
  s.one_sided_writes.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(length, std::memory_order_relaxed);
  if (ObsOn()) {
    obs_.write_ns->Add(cost);
    obs_.network_ns->Add(cost);
  }
  return Status::OK();
}

Status Fabric::ReadBatch(NodeId initiator, const std::vector<BatchOp>& ops) {
  obs::TraceScope span("fabric.read_batch", "verb.wire");
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fault_.load(std::memory_order_acquire)) {
    const NodeId target = ops.empty() ? 0 : ops.front().remote.node;
    fd = inj->OnVerb(initiator, target, FaultInjector::Verb::kRead);
    if (fd.drop) {
      rt::SimCharge(model_.post_overhead_ns * ops.size(), fd.timeout_ns);
      return Status::TimedOut("injected: read batch lost");
    }
  }
  size_t total = 0;
  for (const BatchOp& op : ops) {
    Result<char*> host = Resolve(op.remote, op.length);
    if (!host.ok()) return host.status();
    SimMemRead(op.local, *host, op.length);
    check::OnRemoteRead(*host, op.length, op.remote.node, op.remote.offset);
    ReleaseResolve(op.remote.node);
    total += op.length;
  }
  const uint64_t cost = ScaleWire(model_.BatchNs(ops.size(), total), fd);
  const uint64_t post = model_.post_overhead_ns * ops.size();
  rt::SimCharge(post, cost > post ? cost - post : 0);
  VerbStats& s = stats(initiator);
  s.batches.fetch_add(1, std::memory_order_relaxed);
  s.bytes_read.fetch_add(total, std::memory_order_relaxed);
  if (ObsOn()) {
    obs_.read_batch_ns->Add(cost);
    obs_.network_ns->Add(cost);
  }
  return Status::OK();
}

Status Fabric::WriteBatch(NodeId initiator, const std::vector<BatchOp>& ops) {
  obs::TraceScope span("fabric.write_batch", "verb.wire");
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fault_.load(std::memory_order_acquire)) {
    const NodeId target = ops.empty() ? 0 : ops.front().remote.node;
    fd = inj->OnVerb(initiator, target, FaultInjector::Verb::kWrite);
  }
  size_t total = 0;
  for (const BatchOp& op : ops) {
    Result<char*> host = Resolve(op.remote, op.length);
    if (!host.ok()) return host.status();
    SimMemWrite(*host, op.local, op.length);
    check::OnRemoteWrite(*host, op.length, op.remote.node, op.remote.offset);
    ReleaseResolve(op.remote.node);
    total += op.length;
  }
  if (fd.drop) {  // ack loss after the stores applied, as in Write
    rt::SimCharge(model_.post_overhead_ns * ops.size(), fd.timeout_ns);
    return Status::TimedOut("injected: write batch ack lost");
  }
  const uint64_t cost = ScaleWire(model_.BatchNs(ops.size(), total), fd);
  const uint64_t post = model_.post_overhead_ns * ops.size();
  rt::SimCharge(post, cost > post ? cost - post : 0);
  VerbStats& s = stats(initiator);
  s.batches.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(total, std::memory_order_relaxed);
  if (ObsOn()) {
    obs_.write_batch_ns->Add(cost);
    obs_.network_ns->Add(cost);
  }
  return Status::OK();
}

Result<uint64_t> Fabric::CompareAndSwap(NodeId initiator, RemotePtr addr,
                                        uint64_t expected, uint64_t desired) {
  obs::TraceScope span("fabric.cas", "verb.wire");
  if (addr.offset % 8 != 0) {
    return Status::InvalidArgument("atomic requires 8-byte alignment");
  }
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fault_.load(std::memory_order_acquire)) {
    fd = inj->OnVerb(initiator, addr.node, FaultInjector::Verb::kCas);
    if (fd.drop) {  // request loss: the swap never reaches the NIC
      rt::SimCharge(model_.post_overhead_ns, fd.timeout_ns);
      return Status::TimedOut("injected: cas lost");
    }
  }
  Result<char*> host = Resolve(addr, 8);
  if (!host.ok()) return host.status();
  const uint64_t prev = SimMemCas(*host, expected, desired);
  check::OnRemoteCas(*host, addr.node, addr.offset, expected, desired, prev);
  ReleaseResolve(addr.node);
  const uint64_t cost = ScaleWire(model_.AtomicNs(), fd);
  rt::SimCharge(model_.post_overhead_ns, cost - model_.post_overhead_ns);
  stats(initiator).cas_ops.fetch_add(1, std::memory_order_relaxed);
  if (ObsOn()) {
    obs_.cas_ns->Add(cost);
    obs_.network_ns->Add(cost);
  }
  return prev;
}

Result<uint64_t> Fabric::FetchAndAdd(NodeId initiator, RemotePtr addr,
                                     uint64_t delta) {
  obs::TraceScope span("fabric.faa", "verb.wire");
  if (addr.offset % 8 != 0) {
    return Status::InvalidArgument("atomic requires 8-byte alignment");
  }
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fault_.load(std::memory_order_acquire)) {
    fd = inj->OnVerb(initiator, addr.node, FaultInjector::Verb::kFaa);
    if (fd.drop) {  // request loss: the add never reaches the NIC
      rt::SimCharge(model_.post_overhead_ns, fd.timeout_ns);
      return Status::TimedOut("injected: faa lost");
    }
  }
  Result<char*> host = Resolve(addr, 8);
  if (!host.ok()) return host.status();
  const uint64_t prev = SimMemFaa(*host, delta);
  check::OnRemoteFaa(*host, addr.node, addr.offset);
  ReleaseResolve(addr.node);
  const uint64_t cost = ScaleWire(model_.AtomicNs(), fd);
  rt::SimCharge(model_.post_overhead_ns, cost - model_.post_overhead_ns);
  stats(initiator).faa_ops.fetch_add(1, std::memory_order_relaxed);
  if (ObsOn()) {
    obs_.faa_ns->Add(cost);
    obs_.network_ns->Add(cost);
  }
  return prev;
}

void Fabric::RegisterRpcHandler(NodeId node, uint32_t service,
                                RpcHandler handler) {
  NodeCtx* ctx = GetNode(node);
  assert(ctx != nullptr);
  SpinLatchGuard g(ctx->rpc_latch);
  if (ctx->handlers.size() <= service) ctx->handlers.resize(service + 1);
  ctx->handlers[service] = std::move(handler);
}

Status Fabric::Call(NodeId initiator, NodeId target, uint32_t service,
                    std::string_view request, std::string* response) {
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fault_.load(std::memory_order_acquire)) {
    // Fires due timed events first, so a crash scheduled "now" fails this
    // call with Unavailable below rather than slipping through.
    fd = inj->OnVerb(initiator, target, FaultInjector::Verb::kRpc);
    if (fd.drop) {  // request loss: the handler never runs
      rt::SimCharge(model_.post_overhead_ns, fd.timeout_ns);
      return Status::TimedOut("injected: rpc request lost");
    }
  }
  NodeCtx* ctx = GetNode(target);
  if (ctx == nullptr) return Status::InvalidArgument("unknown node");
  if (!ctx->alive.load(std::memory_order_acquire)) {
    return Status::Unavailable("node " + ctx->name + " is down");
  }
  RpcHandler handler;
  {
    SpinLatchGuard g(ctx->rpc_latch);
    if (service >= ctx->handlers.size() || !ctx->handlers[service]) {
      return Status::NotFound("no such rpc service");
    }
    handler = ctx->handlers[service];
  }
  obs::TraceScope span("fabric.rpc", "verb.wire");
  // Handler execution on the target serializes callers of this service:
  // join before running the handler, publish after it returns.
  check::OnRpcCall(target, service);
  const uint64_t t0 = SimClock::Now();
  // Request travels to the target and is dispatched into software.
  const uint64_t arrival =
      t0 + model_.post_overhead_ns +
      ScaleWire(model_.rtt_ns / 2 + model_.TransferNs(request.size()), fd) +
      model_.recv_dispatch_ns;
  response->clear();
  const bool tracing = obs::ObsConfig::TracingEnabled();
  const uint64_t backlog = tracing ? ctx->cpu->BacklogNs(arrival) : 0;
  const uint64_t handler_start = arrival + backlog;
  const uint64_t handler_span = tracing ? obs::NextSpanId() : 0;
  uint64_t handler_cost;
  {
    // The handler runs inline at the caller's current clock, but in
    // simulated time it only starts once the request has crossed the wire
    // and cleared the remote CPU's queue — re-time its spans there, and
    // hang them off the handler-cpu span emitted below.
    obs::TraceParentScope reparent(handler_span);
    obs::TraceTimeShift shift(tracing
                                  ? static_cast<int64_t>(handler_start) -
                                        static_cast<int64_t>(SimClock::Now())
                                  : 0);
    // The handler's internal clock advances are rewound and folded into
    // the call's completion time below — a provisional timeline, so any
    // nested SimWait must not park (a parked sibling's progress would
    // leak into time that is about to be discarded).
    SimNoPark no_park;
    handler_cost = handler(request, response);
  }
  check::OnRpcReturn(target, service);
  const uint64_t done = ctx->cpu->Execute(arrival, handler_cost);
  const uint64_t finish =
      done +
      ScaleWire(model_.rtt_ns / 2 + model_.TransferNs(response->size()), fd);
  rt::SimWait(finish);
  if (tracing) {
    obs::EmitSpanUnder("verb.post", "verb.post", t0,
                       model_.post_overhead_ns, span.span_id());
    if (backlog > 0) {
      obs::EmitSpanUnder("cpu.queue", "cpu.queue", arrival, backlog,
                         span.span_id());
    }
    obs::EmitSpanUnder("handler.cpu", "handler.cpu", handler_start,
                       done > handler_start ? done - handler_start : 0,
                       span.span_id(), handler_span);
  }
  VerbStats& s = stats(initiator);
  s.rpc_calls.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(request.size(), std::memory_order_relaxed);
  s.bytes_read.fetch_add(response->size(), std::memory_order_relaxed);
  if (ObsOn()) {
    const uint64_t elapsed = SimClock::Now() - t0;
    const uint64_t network =
        model_.TwoSidedNs(request.size(), response->size());
    obs_.rpc_ns->Add(elapsed);
    obs_.network_ns->Add(network < elapsed ? network : elapsed);
    // Whatever is not wire/NIC time was spent in (or queueing for) the
    // target's virtual CPU.
    obs_.rpc_cpu_ns->Add(elapsed > network ? elapsed - network : 0);
  }
  return Status::OK();
}

void Fabric::CrashNode(NodeId node) {
  NodeCtx* ctx = GetNode(node);
  assert(ctx != nullptr);
  ctx->alive.store(false, std::memory_order_release);
  ctx->region_latch.LockExclusive();
  for (const Region& r : ctx->regions) check::OnRegionDropped(r.base, r.length);
  ctx->regions.clear();
  ctx->region_latch.UnlockExclusive();
}

void Fabric::RecoverNode(NodeId node) {
  NodeCtx* ctx = GetNode(node);
  assert(ctx != nullptr);
  ctx->incarnation.fetch_add(1, std::memory_order_acq_rel);
  ctx->cpu->Reset();
  ctx->alive.store(true, std::memory_order_release);
}

bool Fabric::IsAlive(NodeId node) const {
  NodeCtx* ctx = GetNode(node);
  return ctx != nullptr && ctx->alive.load(std::memory_order_acquire);
}

uint64_t Fabric::Incarnation(NodeId node) const {
  NodeCtx* ctx = GetNode(node);
  assert(ctx != nullptr);
  return ctx->incarnation.load(std::memory_order_acquire);
}

VerbStats& Fabric::stats(NodeId node) {
  NodeCtx* ctx = GetNode(node);
  assert(ctx != nullptr);
  return ctx->stats;
}

VerbStats::Values Fabric::TotalStats() const {
  VerbStats::Values total{};
  const size_t n = num_nodes();
  for (size_t i = 0; i < n; i++) {
    const NodeCtx* ctx = GetNode(static_cast<NodeId>(i));
    const VerbStats::Values v = ctx->stats.Snapshot();
    total.one_sided_reads += v.one_sided_reads;
    total.one_sided_writes += v.one_sided_writes;
    total.cas_ops += v.cas_ops;
    total.faa_ops += v.faa_ops;
    total.rpc_calls += v.rpc_calls;
    total.bytes_read += v.bytes_read;
    total.bytes_written += v.bytes_written;
    total.batches += v.batches;
  }
  return total;
}

void Fabric::ResetStats() {
  const size_t n = num_nodes();
  for (size_t i = 0; i < n; i++) {
    GetNode(static_cast<NodeId>(i))->stats.Reset();
  }
}

VirtualCpu* Fabric::cpu(NodeId node) {
  NodeCtx* ctx = GetNode(node);
  assert(ctx != nullptr);
  return ctx->cpu.get();
}

const std::string& Fabric::node_name(NodeId node) const {
  NodeCtx* ctx = GetNode(node);
  assert(ctx != nullptr);
  return ctx->name;
}

}  // namespace dsmdb::rdma
