#ifndef DSMDB_RDMA_NIC_H_
#define DSMDB_RDMA_NIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdma/fabric.h"
#include "rdma/verbs.h"

namespace dsmdb::rdma {

/// A node's handle onto the fabric. Thin wrapper that binds the initiator
/// id so call sites read like libibverbs usage.
class Nic {
 public:
  Nic(Fabric* fabric, NodeId self) : fabric_(fabric), self_(self) {}

  NodeId self() const { return self_; }
  Fabric* fabric() const { return fabric_; }
  const NetworkModel& model() const { return fabric_->model(); }

  Status Read(RemotePtr src, void* dst, size_t length) const {
    return fabric_->Read(self_, src, dst, length);
  }
  Status Write(RemotePtr dst, const void* src, size_t length) const {
    return fabric_->Write(self_, dst, src, length);
  }
  Status ReadBatch(const std::vector<BatchOp>& ops) const {
    return fabric_->ReadBatch(self_, ops);
  }
  Status WriteBatch(const std::vector<BatchOp>& ops) const {
    return fabric_->WriteBatch(self_, ops);
  }
  Result<uint64_t> CompareAndSwap(RemotePtr addr, uint64_t expected,
                                  uint64_t desired) const {
    return fabric_->CompareAndSwap(self_, addr, expected, desired);
  }
  Result<uint64_t> FetchAndAdd(RemotePtr addr, uint64_t delta) const {
    return fabric_->FetchAndAdd(self_, addr, delta);
  }
  Status Call(NodeId target, uint32_t service, std::string_view request,
              std::string* response) const {
    return fabric_->Call(self_, target, service, request, response);
  }

  VerbStats& stats() const { return fabric_->stats(self_); }

 private:
  Fabric* fabric_;
  NodeId self_;
};

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_NIC_H_
