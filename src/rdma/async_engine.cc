#include "rdma/async_engine.h"

#include <algorithm>
#include <cstring>

#include "common/sim_clock.h"
#include "obs/obs_config.h"
#include "rdma/sim_mem.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rdma/fabric.h"

namespace dsmdb::rdma {

namespace {

inline bool ObsOn() { return obs::ObsConfig::Enabled(); }

/// Simulated duration of one WaitAll (the pipeline's critical path).
ConcurrentHistogram* PipelineHist() {
  static ConcurrentHistogram* h =
      obs::Telemetry::Instance().GetHistogram("fabric.verb.pipeline_ns");
  return h;
}

}  // namespace

CompletionQueue::CompletionQueue(Fabric* fabric, NodeId initiator,
                                 uint32_t max_outstanding)
    : fabric_(fabric),
      initiator_(initiator),
      depth_(max_outstanding == 0 ? 1 : max_outstanding) {}

uint64_t CompletionQueue::BeginPost() {
  if (outstanding_ >= depth_) {
    // Send queue full: the poster stalls until the earliest outstanding op
    // completes, then its slot is free.
    uint64_t earliest = UINT64_MAX;
    for (const Op& op : ops_) {
      if (!op.retired) earliest = std::min(earliest, op.complete_ns);
    }
    SimClock::AdvanceTo(earliest);
    PollAll();
  }
  SimClock::Advance(fabric_->model_.post_overhead_ns);
  return SimClock::Now();
}

WrId CompletionQueue::FinishPost(NodeId target, Status status, uint64_t value,
                                 uint64_t issue_ns, uint64_t wire_cost_ns) {
  uint64_t complete = issue_ns + wire_cost_ns;
  // Per-target in-order: an op cannot complete before an earlier op posted
  // to the same target (QP ordering); different targets run in parallel.
  auto [it, inserted] = last_complete_.try_emplace(target, complete);
  if (!inserted) {
    complete = std::max(complete, it->second);
    it->second = complete;
  }
  if (!status.ok() && first_error_.ok()) first_error_ = status;
  Op op;
  op.status = std::move(status);
  op.value = value;
  op.complete_ns = complete;
  ops_.push_back(std::move(op));
  outstanding_++;
  return static_cast<WrId>(ops_.size() - 1);
}

WrId CompletionQueue::PostRead(RemotePtr src, void* dst, size_t length) {
  const uint64_t issue = BeginPost();
  const NetworkModel& m = fabric_->model_;
  Status s;
  uint64_t cost;
  Result<char*> host = fabric_->Resolve(src, length);
  if (host.ok()) {
    SimMemRead(dst, *host, length);
    fabric_->ReleaseResolve(src.node);
    cost = m.rtt_ns + m.TransferNs(length);
    VerbStats& st = fabric_->stats(initiator_);
    st.one_sided_reads.fetch_add(1, std::memory_order_relaxed);
    st.bytes_read.fetch_add(length, std::memory_order_relaxed);
  } else {
    s = host.status();
    cost = m.rtt_ns;  // failure detected after a round trip (NAK/timeout)
  }
  const WrId id = FinishPost(src.node, std::move(s), 0, issue, cost);
  if (ObsOn()) {
    fabric_->obs_.read_ns->Add(ops_[id].complete_ns -
                               (issue - m.post_overhead_ns));
    fabric_->obs_.network_ns->Add(m.post_overhead_ns + cost);
  }
  return id;
}

WrId CompletionQueue::PostWrite(RemotePtr dst, const void* src,
                                size_t length) {
  const uint64_t issue = BeginPost();
  const NetworkModel& m = fabric_->model_;
  Status s;
  uint64_t cost;
  Result<char*> host = fabric_->Resolve(dst, length);
  if (host.ok()) {
    SimMemWrite(*host, src, length);
    fabric_->ReleaseResolve(dst.node);
    cost = m.rtt_ns + m.TransferNs(length);
    VerbStats& st = fabric_->stats(initiator_);
    st.one_sided_writes.fetch_add(1, std::memory_order_relaxed);
    st.bytes_written.fetch_add(length, std::memory_order_relaxed);
  } else {
    s = host.status();
    cost = m.rtt_ns;
  }
  const WrId id = FinishPost(dst.node, std::move(s), 0, issue, cost);
  if (ObsOn()) {
    fabric_->obs_.write_ns->Add(ops_[id].complete_ns -
                                (issue - m.post_overhead_ns));
    fabric_->obs_.network_ns->Add(m.post_overhead_ns + cost);
  }
  return id;
}

WrId CompletionQueue::PostCas(RemotePtr addr, uint64_t expected,
                              uint64_t desired) {
  const uint64_t issue = BeginPost();
  const NetworkModel& m = fabric_->model_;
  Status s;
  uint64_t prev = 0;
  uint64_t cost = m.rtt_ns + m.atomic_extra_ns + m.TransferNs(8);
  if (addr.offset % 8 != 0) {
    s = Status::InvalidArgument("atomic requires 8-byte alignment");
    cost = m.rtt_ns;
  } else {
    Result<char*> host = fabric_->Resolve(addr, 8);
    if (host.ok()) {
      auto* word = reinterpret_cast<uint64_t*>(*host);
      prev = expected;
      __atomic_compare_exchange_n(word, &prev, desired, /*weak=*/false,
                                  __ATOMIC_ACQ_REL, __ATOMIC_ACQUIRE);
      fabric_->ReleaseResolve(addr.node);
      fabric_->stats(initiator_).cas_ops.fetch_add(1,
                                                   std::memory_order_relaxed);
    } else {
      s = host.status();
      cost = m.rtt_ns;
    }
  }
  const WrId id = FinishPost(addr.node, std::move(s), prev, issue, cost);
  if (ObsOn()) {
    fabric_->obs_.cas_ns->Add(ops_[id].complete_ns -
                              (issue - m.post_overhead_ns));
    fabric_->obs_.network_ns->Add(m.post_overhead_ns + cost);
  }
  return id;
}

WrId CompletionQueue::PostFaa(RemotePtr addr, uint64_t delta) {
  const uint64_t issue = BeginPost();
  const NetworkModel& m = fabric_->model_;
  Status s;
  uint64_t prev = 0;
  uint64_t cost = m.rtt_ns + m.atomic_extra_ns + m.TransferNs(8);
  if (addr.offset % 8 != 0) {
    s = Status::InvalidArgument("atomic requires 8-byte alignment");
    cost = m.rtt_ns;
  } else {
    Result<char*> host = fabric_->Resolve(addr, 8);
    if (host.ok()) {
      auto* word = reinterpret_cast<uint64_t*>(*host);
      prev = __atomic_fetch_add(word, delta, __ATOMIC_ACQ_REL);
      fabric_->ReleaseResolve(addr.node);
      fabric_->stats(initiator_).faa_ops.fetch_add(1,
                                                   std::memory_order_relaxed);
    } else {
      s = host.status();
      cost = m.rtt_ns;
    }
  }
  const WrId id = FinishPost(addr.node, std::move(s), prev, issue, cost);
  if (ObsOn()) {
    fabric_->obs_.faa_ns->Add(ops_[id].complete_ns -
                              (issue - m.post_overhead_ns));
    fabric_->obs_.network_ns->Add(m.post_overhead_ns + cost);
  }
  return id;
}

WrId CompletionQueue::PostCall(NodeId target, uint32_t service,
                               std::string_view request,
                               std::string* response) {
  const uint64_t issue = BeginPost();
  const NetworkModel& m = fabric_->model_;
  Fabric::NodeCtx* ctx = fabric_->GetNode(target);
  if (ctx == nullptr) {
    return FinishPost(target, Status::InvalidArgument("unknown node"), 0,
                      issue, m.rtt_ns);
  }
  if (!ctx->alive.load(std::memory_order_acquire)) {
    return FinishPost(target,
                      Status::Unavailable("node " + ctx->name + " is down"),
                      0, issue, m.rtt_ns);
  }
  RpcHandler handler;
  {
    SpinLatchGuard g(ctx->rpc_latch);
    if (service >= ctx->handlers.size() || !ctx->handlers[service]) {
      return FinishPost(target, Status::NotFound("no such rpc service"), 0,
                        issue, m.rtt_ns);
    }
    handler = ctx->handlers[service];
  }
  // Same schedule as Fabric::Call, with `issue` standing in for t0 + post.
  const uint64_t arrival = issue + m.rtt_ns / 2 +
                           m.TransferNs(request.size()) + m.recv_dispatch_ns;
  response->clear();
  // The handler runs inline but on the PARTICIPANT's time: its internal
  // clock advances (the participant's own DSM traffic) are rewound here
  // and folded into this leg's completion, so calls posted to different
  // targets overlap their handler work instead of serializing it on the
  // poster's clock. Matching Fabric::Call, the handler's own verbs are
  // modeled as overlapping the call's wire/CPU schedule (both start at the
  // post), so the leg costs whichever side dominates.
  SimHandlerScope handler_scope;
  const uint64_t handler_cost = handler(request, response);
  const uint64_t handler_inner_ns = handler_scope.End();
  const uint64_t done = ctx->cpu->Execute(arrival, handler_cost);
  const uint64_t cost =
      std::max(handler_inner_ns,
               done - issue + m.rtt_ns / 2 + m.TransferNs(response->size()));
  VerbStats& st = fabric_->stats(initiator_);
  st.rpc_calls.fetch_add(1, std::memory_order_relaxed);
  st.bytes_written.fetch_add(request.size(), std::memory_order_relaxed);
  st.bytes_read.fetch_add(response->size(), std::memory_order_relaxed);
  const WrId id = FinishPost(target, Status::OK(), 0, issue, cost);
  if (ObsOn()) {
    const uint64_t elapsed =
        ops_[id].complete_ns - (issue - m.post_overhead_ns);
    const uint64_t network = m.TwoSidedNs(request.size(), response->size());
    fabric_->obs_.rpc_ns->Add(elapsed);
    fabric_->obs_.network_ns->Add(network < elapsed ? network : elapsed);
    fabric_->obs_.rpc_cpu_ns->Add(elapsed > network ? elapsed - network : 0);
  }
  return id;
}

Status CompletionQueue::WaitAll() {
  obs::TraceScope span("fabric.pipeline", "rdma");
  const uint64_t start = SimClock::Now();
  uint64_t max_end = start;
  for (Op& op : ops_) {
    if (!op.retired) {
      max_end = std::max(max_end, op.complete_ns);
      op.retired = true;
    }
  }
  SimClock::AdvanceTo(max_end);
  outstanding_ = 0;
  if (ObsOn()) PipelineHist()->Add(max_end - start);
  return first_error_;
}

size_t CompletionQueue::PollAll() {
  const uint64_t now = SimClock::Now();
  size_t retired = 0;
  for (Op& op : ops_) {
    if (!op.retired && op.complete_ns <= now) {
      op.retired = true;
      retired++;
    }
  }
  outstanding_ -= retired;
  return retired;
}

void CompletionQueue::Reset() {
  ops_.clear();
  outstanding_ = 0;
  first_error_ = Status::OK();
  last_complete_.clear();
}

}  // namespace dsmdb::rdma
