#include "rdma/async_engine.h"

#include <algorithm>
#include <cstring>

#include "check/checker.h"
#include "common/sim_clock.h"
#include "obs/flight_recorder.h"
#include "obs/obs_config.h"
#include "rdma/sim_mem.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rdma/fabric.h"
#include "rdma/fault.h"
#include "rt/scheduler.h"

namespace dsmdb::rdma {

namespace {

inline bool ObsOn() { return obs::ObsConfig::Enabled(); }
inline bool TracingOn() { return obs::ObsConfig::TracingEnabled(); }

/// Straggler scaling of a posted op's wire cost (exact passthrough when no
/// window is active).
inline uint64_t ScaleWire(uint64_t ns, const FaultInjector::Decision& fd) {
  if (fd.wire_multiplier <= 1.0) return ns;
  return static_cast<uint64_t>(static_cast<double>(ns) * fd.wire_multiplier);
}

/// Simulated duration of one WaitAll (the pipeline's critical path).
ConcurrentHistogram* PipelineHist() {
  static ConcurrentHistogram* h =
      obs::Telemetry::Instance().GetHistogram("fabric.verb.pipeline_ns");
  return h;
}

}  // namespace

CompletionQueue::CompletionQueue(Fabric* fabric, NodeId initiator,
                                 uint32_t max_outstanding)
    : fabric_(fabric),
      initiator_(initiator),
      depth_(max_outstanding == 0 ? 1 : max_outstanding) {
  fabric_->active_cqs_.fetch_add(1, std::memory_order_relaxed);
}

CompletionQueue::~CompletionQueue() {
  if (outstanding_ > 0) {
    fabric_->inflight_verbs_.fetch_sub(
        static_cast<int64_t>(outstanding_), std::memory_order_relaxed);
  }
  fabric_->active_cqs_.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t CompletionQueue::BeginPost() {
  if (outstanding_ >= depth_) {
    // Send queue full: the poster stalls until the earliest outstanding op
    // completes, then its slot is free.
    uint64_t earliest = UINT64_MAX;
    for (const Op& op : ops_) {
      if (!op.retired) earliest = std::min(earliest, op.complete_ns);
    }
    const uint64_t stall_start = SimClock::Now();
    rt::SimWait(earliest);
    PollAll();
    if (TracingOn() && earliest != UINT64_MAX && earliest > stall_start) {
      obs::EmitSpan("qp.stall", "cpu.queue", stall_start,
                    earliest - stall_start);
    }
  }
  SimClock::Advance(fabric_->model_.post_overhead_ns);
  return SimClock::Now();
}

WrId CompletionQueue::FinishPost(NodeId target, Status status, uint64_t value,
                                 uint64_t issue_ns, uint64_t wire_cost_ns) {
  uint64_t complete = issue_ns + wire_cost_ns;
  // Per-target in-order: an op cannot complete before an earlier op posted
  // to the same target (QP ordering); different targets run in parallel.
  auto [it, inserted] = last_complete_.try_emplace(target, complete);
  if (!inserted) {
    complete = std::max(complete, it->second);
    it->second = complete;
  }
  if (!status.ok() && first_error_.ok()) first_error_ = status;
  Op op;
  op.status = std::move(status);
  op.value = value;
  op.complete_ns = complete;
  ops_.push_back(std::move(op));
  outstanding_++;
  fabric_->inflight_verbs_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<WrId>(ops_.size() - 1);
}

/// Emits the causal spans of one completed one-sided post: the verb leg
/// [issue, complete] under the poster's current span, with the doorbell
/// post [issue - post_overhead, issue] as its child. complete_ns is final
/// at FinishPost time (the engine defers only *time*), so the spans can be
/// emitted here even though the op retires later.
void CompletionQueue::TraceOneSided(const char* name, WrId id,
                                    uint64_t issue_ns) {
  if (!TracingOn()) return;
  const uint64_t post = fabric_->model_.post_overhead_ns;
  const uint64_t leg = obs::EmitSpan(
      name, "verb.wire", issue_ns, ops_[id].complete_ns - issue_ns);
  obs::EmitSpanUnder("verb.post", "verb.post", issue_ns - post, post, leg);
}

WrId CompletionQueue::PostRead(RemotePtr src, void* dst, size_t length) {
  const uint64_t issue = BeginPost();
  if (FlowBroken(src.node)) return PostFlushed(src.node, issue);
  const NetworkModel& m = fabric_->model_;
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fabric_->fault_injector()) {
    fd = inj->OnVerb(initiator_, src.node, FaultInjector::Verb::kRead);
    if (fd.drop) flow_error_.insert(src.node);
  }
  Status s;
  uint64_t cost;
  Result<char*> host =
      fd.drop ? Result<char*>(Status::TimedOut("injected: read lost"))
              : fabric_->Resolve(src, length);
  if (host.ok()) {
    SimMemRead(dst, *host, length);
    check::OnRemoteRead(*host, length, src.node, src.offset);
    fabric_->ReleaseResolve(src.node);
    cost = ScaleWire(m.rtt_ns + m.TransferNs(length), fd);
    VerbStats& st = fabric_->stats(initiator_);
    st.one_sided_reads.fetch_add(1, std::memory_order_relaxed);
    st.bytes_read.fetch_add(length, std::memory_order_relaxed);
  } else {
    s = host.status();
    // Failure detected after a round trip (NAK) or the retransmit budget.
    cost = fd.drop ? fd.timeout_ns : m.rtt_ns;
  }
  const WrId id = FinishPost(src.node, std::move(s), 0, issue, cost);
  if (ObsOn()) {
    fabric_->obs_.read_ns->Add(ops_[id].complete_ns -
                               (issue - m.post_overhead_ns));
    fabric_->obs_.network_ns->Add(m.post_overhead_ns + cost);
  }
  TraceOneSided("verb.read", id, issue);
  return id;
}

WrId CompletionQueue::PostWrite(RemotePtr dst, const void* src,
                                size_t length) {
  const uint64_t issue = BeginPost();
  if (FlowBroken(dst.node)) return PostFlushed(dst.node, issue);
  const NetworkModel& m = fabric_->model_;
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fabric_->fault_injector()) {
    fd = inj->OnVerb(initiator_, dst.node, FaultInjector::Verb::kWrite);
    // Ack loss applies the store (idempotent retransmit ambiguity) but
    // still exhausts the WR's retransmit budget — the QP breaks the same.
    if (fd.drop) flow_error_.insert(dst.node);
  }
  Status s;
  uint64_t cost;
  Result<char*> host = fabric_->Resolve(dst, length);
  if (host.ok()) {
    SimMemWrite(*host, src, length);
    check::OnRemoteWrite(*host, length, dst.node, dst.offset);
    fabric_->ReleaseResolve(dst.node);
    if (fd.drop) {  // ack loss: store applied, initiator times out
      s = Status::TimedOut("injected: write ack lost");
      cost = fd.timeout_ns;
    } else {
      cost = ScaleWire(m.rtt_ns + m.TransferNs(length), fd);
    }
    VerbStats& st = fabric_->stats(initiator_);
    st.one_sided_writes.fetch_add(1, std::memory_order_relaxed);
    st.bytes_written.fetch_add(length, std::memory_order_relaxed);
  } else {
    s = host.status();
    cost = m.rtt_ns;
  }
  const WrId id = FinishPost(dst.node, std::move(s), 0, issue, cost);
  if (ObsOn()) {
    fabric_->obs_.write_ns->Add(ops_[id].complete_ns -
                                (issue - m.post_overhead_ns));
    fabric_->obs_.network_ns->Add(m.post_overhead_ns + cost);
  }
  TraceOneSided("verb.write", id, issue);
  return id;
}

WrId CompletionQueue::PostCas(RemotePtr addr, uint64_t expected,
                              uint64_t desired) {
  const uint64_t issue = BeginPost();
  if (FlowBroken(addr.node)) return PostFlushed(addr.node, issue);
  const NetworkModel& m = fabric_->model_;
  Status s;
  uint64_t prev = 0;
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fabric_->fault_injector()) {
    fd = inj->OnVerb(initiator_, addr.node, FaultInjector::Verb::kCas);
    if (fd.drop) flow_error_.insert(addr.node);
  }
  uint64_t cost = ScaleWire(m.rtt_ns + m.atomic_extra_ns + m.TransferNs(8),
                            fd);
  if (addr.offset % 8 != 0) {
    s = Status::InvalidArgument("atomic requires 8-byte alignment");
    cost = m.rtt_ns;
  } else if (fd.drop) {  // request loss: the swap never reaches the NIC
    s = Status::TimedOut("injected: cas lost");
    cost = fd.timeout_ns;
  } else {
    Result<char*> host = fabric_->Resolve(addr, 8);
    if (host.ok()) {
      prev = SimMemCas(*host, expected, desired);
      check::OnRemoteCas(*host, addr.node, addr.offset, expected, desired,
                         prev);
      fabric_->ReleaseResolve(addr.node);
      fabric_->stats(initiator_).cas_ops.fetch_add(1,
                                                   std::memory_order_relaxed);
    } else {
      s = host.status();
      cost = m.rtt_ns;
    }
  }
  const WrId id = FinishPost(addr.node, std::move(s), prev, issue, cost);
  if (ObsOn()) {
    fabric_->obs_.cas_ns->Add(ops_[id].complete_ns -
                              (issue - m.post_overhead_ns));
    fabric_->obs_.network_ns->Add(m.post_overhead_ns + cost);
  }
  TraceOneSided("verb.cas", id, issue);
  return id;
}

WrId CompletionQueue::PostFaa(RemotePtr addr, uint64_t delta) {
  const uint64_t issue = BeginPost();
  if (FlowBroken(addr.node)) return PostFlushed(addr.node, issue);
  const NetworkModel& m = fabric_->model_;
  Status s;
  uint64_t prev = 0;
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fabric_->fault_injector()) {
    fd = inj->OnVerb(initiator_, addr.node, FaultInjector::Verb::kFaa);
    if (fd.drop) flow_error_.insert(addr.node);
  }
  uint64_t cost = ScaleWire(m.rtt_ns + m.atomic_extra_ns + m.TransferNs(8),
                            fd);
  if (addr.offset % 8 != 0) {
    s = Status::InvalidArgument("atomic requires 8-byte alignment");
    cost = m.rtt_ns;
  } else if (fd.drop) {  // request loss: the add never reaches the NIC
    s = Status::TimedOut("injected: faa lost");
    cost = fd.timeout_ns;
  } else {
    Result<char*> host = fabric_->Resolve(addr, 8);
    if (host.ok()) {
      prev = SimMemFaa(*host, delta);
      check::OnRemoteFaa(*host, addr.node, addr.offset);
      fabric_->ReleaseResolve(addr.node);
      fabric_->stats(initiator_).faa_ops.fetch_add(1,
                                                   std::memory_order_relaxed);
    } else {
      s = host.status();
      cost = m.rtt_ns;
    }
  }
  const WrId id = FinishPost(addr.node, std::move(s), prev, issue, cost);
  if (ObsOn()) {
    fabric_->obs_.faa_ns->Add(ops_[id].complete_ns -
                              (issue - m.post_overhead_ns));
    fabric_->obs_.network_ns->Add(m.post_overhead_ns + cost);
  }
  TraceOneSided("verb.faa", id, issue);
  return id;
}

WrId CompletionQueue::PostError(NodeId target, Status error) {
  const uint64_t issue = BeginPost();
  return FinishPost(target, std::move(error), 0, issue, 0);
}

WrId CompletionQueue::PostCall(NodeId target, uint32_t service,
                               std::string_view request,
                               std::string* response) {
  const uint64_t issue = BeginPost();
  if (FlowBroken(target)) return PostFlushed(target, issue);
  const NetworkModel& m = fabric_->model_;
  FaultInjector::Decision fd;
  if (FaultInjector* inj = fabric_->fault_injector()) {
    fd = inj->OnVerb(initiator_, target, FaultInjector::Verb::kRpc);
    if (fd.drop) {  // request loss: the handler never runs
      flow_error_.insert(target);
      return FinishPost(target, Status::TimedOut("injected: rpc lost"), 0,
                        issue, fd.timeout_ns);
    }
  }
  Fabric::NodeCtx* ctx = fabric_->GetNode(target);
  if (ctx == nullptr) {
    return FinishPost(target, Status::InvalidArgument("unknown node"), 0,
                      issue, m.rtt_ns);
  }
  if (!ctx->alive.load(std::memory_order_acquire)) {
    return FinishPost(target,
                      Status::Unavailable("node " + ctx->name + " is down"),
                      0, issue, m.rtt_ns);
  }
  RpcHandler handler;
  {
    SpinLatchGuard g(ctx->rpc_latch);
    if (service >= ctx->handlers.size() || !ctx->handlers[service]) {
      return FinishPost(target, Status::NotFound("no such rpc service"), 0,
                        issue, m.rtt_ns);
    }
    handler = ctx->handlers[service];
  }
  check::OnRpcCall(target, service);
  // Same schedule as Fabric::Call, with `issue` standing in for t0 + post.
  const uint64_t arrival =
      issue + ScaleWire(m.rtt_ns / 2 + m.TransferNs(request.size()), fd) +
      m.recv_dispatch_ns;
  response->clear();
  const bool tracing = TracingOn();
  const uint64_t backlog = tracing ? ctx->cpu->BacklogNs(arrival) : 0;
  const uint64_t handler_start = arrival + backlog;
  // The leg's own span is only emitted after the handler returns (its
  // completion time is known then), so reserve ids up front for the
  // handler's internal spans to parent under.
  const uint64_t leg_span = tracing ? obs::NextSpanId() : 0;
  const uint64_t handler_span = tracing ? obs::NextSpanId() : 0;
  const uint64_t leg_parent = tracing ? obs::CurrentSpanId() : 0;
  // The handler runs inline but on the PARTICIPANT's time: its internal
  // clock advances (the participant's own DSM traffic) are rewound here
  // and folded into this leg's completion, so calls posted to different
  // targets overlap their handler work instead of serializing it on the
  // poster's clock. Matching Fabric::Call, the handler's own verbs are
  // modeled as overlapping the call's wire/CPU schedule (both start at the
  // post), so the leg costs whichever side dominates.
  SimHandlerScope handler_scope;
  uint64_t handler_cost;
  {
    // Re-time handler spans to the request's simulated arrival (wire +
    // remote queue), not the poster's current clock — otherwise they would
    // render *before* the verb that carried them.
    obs::TraceParentScope reparent(handler_span);
    obs::TraceTimeShift shift(tracing
                                  ? static_cast<int64_t>(handler_start) -
                                        static_cast<int64_t>(SimClock::Now())
                                  : 0);
    handler_cost = handler(request, response);
  }
  check::OnRpcReturn(target, service);
  const uint64_t handler_inner_ns = handler_scope.End();
  const uint64_t done = ctx->cpu->Execute(arrival, handler_cost);
  const uint64_t cost = std::max(
      handler_inner_ns,
      done - issue +
          ScaleWire(m.rtt_ns / 2 + m.TransferNs(response->size()), fd));
  VerbStats& st = fabric_->stats(initiator_);
  st.rpc_calls.fetch_add(1, std::memory_order_relaxed);
  st.bytes_written.fetch_add(request.size(), std::memory_order_relaxed);
  st.bytes_read.fetch_add(response->size(), std::memory_order_relaxed);
  const WrId id = FinishPost(target, Status::OK(), 0, issue, cost);
  if (ObsOn()) {
    const uint64_t elapsed =
        ops_[id].complete_ns - (issue - m.post_overhead_ns);
    const uint64_t network = m.TwoSidedNs(request.size(), response->size());
    fabric_->obs_.rpc_ns->Add(elapsed);
    fabric_->obs_.network_ns->Add(network < elapsed ? network : elapsed);
    fabric_->obs_.rpc_cpu_ns->Add(elapsed > network ? elapsed - network : 0);
  }
  if (tracing) {
    obs::EmitSpanUnder("verb.call", "verb.wire", issue,
                       ops_[id].complete_ns - issue, leg_parent, leg_span);
    obs::EmitSpanUnder("verb.post", "verb.post",
                       issue - m.post_overhead_ns, m.post_overhead_ns,
                       leg_span);
    if (backlog > 0) {
      obs::EmitSpanUnder("cpu.queue", "cpu.queue", arrival, backlog,
                         leg_span);
    }
    obs::EmitSpanUnder("handler.cpu", "handler.cpu", handler_start,
                       done > handler_start ? done - handler_start : 0,
                       leg_span, handler_span);
  }
  return id;
}

Status CompletionQueue::WaitAll() {
  // The wait is time spent on outstanding wire round trips; categorize it
  // so the critical-path analyzer books un-overlapped residual as wire.
  obs::TraceScope span("fabric.pipeline", "verb.wire");
  const uint64_t start = SimClock::Now();
  uint64_t max_end = start;
  size_t retired = 0;
  for (Op& op : ops_) {
    if (!op.retired) {
      max_end = std::max(max_end, op.complete_ns);
      op.retired = true;
      retired++;
    }
  }
  rt::SimWait(max_end);
  outstanding_ = 0;
  if (retired > 0) {
    fabric_->inflight_verbs_.fetch_sub(static_cast<int64_t>(retired),
                                       std::memory_order_relaxed);
  }
  if (ObsOn()) PipelineHist()->Add(max_end - start);
  obs::FlightRecorder::Instance().MaybeSample(max_end);
  return first_error_;
}

size_t CompletionQueue::PollAll() {
  const uint64_t now = SimClock::Now();
  size_t retired = 0;
  for (Op& op : ops_) {
    if (!op.retired && op.complete_ns <= now) {
      op.retired = true;
      retired++;
    }
  }
  outstanding_ -= retired;
  if (retired > 0) {
    fabric_->inflight_verbs_.fetch_sub(static_cast<int64_t>(retired),
                                       std::memory_order_relaxed);
  }
  return retired;
}

void CompletionQueue::Reset() {
  if (outstanding_ > 0) {
    fabric_->inflight_verbs_.fetch_sub(
        static_cast<int64_t>(outstanding_), std::memory_order_relaxed);
  }
  ops_.clear();
  outstanding_ = 0;
  first_error_ = Status::OK();
  last_complete_.clear();
  flow_error_.clear();  // Reset stands in for tearing down/reconnecting QPs.
}

}  // namespace dsmdb::rdma
