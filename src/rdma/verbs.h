#ifndef DSMDB_RDMA_VERBS_H_
#define DSMDB_RDMA_VERBS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dsmdb::rdma {

/// Identifies a node (compute or memory) attached to the fabric.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// A raw fabric-level remote pointer: node + registered-region key + offset.
/// The DSM layer wraps this in a logical GlobalAddress; RemotePtr is what
/// the NIC actually understands.
struct RemotePtr {
  NodeId node = kInvalidNode;
  uint32_t rkey = 0;
  uint64_t offset = 0;

  bool operator==(const RemotePtr&) const = default;
};

/// One entry of a doorbell-batched one-sided read/write.
struct BatchOp {
  RemotePtr remote;
  void* local = nullptr;
  size_t length = 0;
};

/// Per-NIC verb counters. Relaxed atomics; snapshot with Snapshot().
struct VerbStats {
  std::atomic<uint64_t> one_sided_reads{0};
  std::atomic<uint64_t> one_sided_writes{0};
  std::atomic<uint64_t> cas_ops{0};
  std::atomic<uint64_t> faa_ops{0};
  std::atomic<uint64_t> rpc_calls{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> batches{0};

  struct Values {
    uint64_t one_sided_reads;
    uint64_t one_sided_writes;
    uint64_t cas_ops;
    uint64_t faa_ops;
    uint64_t rpc_calls;
    uint64_t bytes_read;
    uint64_t bytes_written;
    uint64_t batches;

    /// Total verbs that each cost a network round trip.
    uint64_t RoundTrips() const {
      return one_sided_reads + one_sided_writes + cas_ops + faa_ops +
             rpc_calls + batches;
    }
    std::string ToString() const;
  };

  Values Snapshot() const {
    return Values{one_sided_reads.load(std::memory_order_relaxed),
                  one_sided_writes.load(std::memory_order_relaxed),
                  cas_ops.load(std::memory_order_relaxed),
                  faa_ops.load(std::memory_order_relaxed),
                  rpc_calls.load(std::memory_order_relaxed),
                  bytes_read.load(std::memory_order_relaxed),
                  bytes_written.load(std::memory_order_relaxed),
                  batches.load(std::memory_order_relaxed)};
  }

  void Reset() {
    one_sided_reads.store(0, std::memory_order_relaxed);
    one_sided_writes.store(0, std::memory_order_relaxed);
    cas_ops.store(0, std::memory_order_relaxed);
    faa_ops.store(0, std::memory_order_relaxed);
    rpc_calls.store(0, std::memory_order_relaxed);
    bytes_read.store(0, std::memory_order_relaxed);
    bytes_written.store(0, std::memory_order_relaxed);
    batches.store(0, std::memory_order_relaxed);
  }
};

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_VERBS_H_
