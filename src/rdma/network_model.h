#ifndef DSMDB_RDMA_NETWORK_MODEL_H_
#define DSMDB_RDMA_NETWORK_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace dsmdb::rdma {

/// Cost model for the simulated RDMA fabric.
///
/// Calibrated to the paper's reference NIC (Mellanox ConnectX-6: ~0.8 usec
/// small-message latency, 200 Gb/s). All verbs charge:
///
///   post_overhead_ns            CPU cost to build the WR and ring doorbell
///   + rtt_ns                    propagation + NIC processing, round trip
///   + payload_bytes / bandwidth wire time
///   (+ atomic_extra_ns for CAS/FAA: PCIe read-modify-write at the target)
///
/// Doorbell-batched verbs pay `post_overhead_ns` per WR but `rtt_ns` once.
struct NetworkModel {
  /// Round-trip base latency for a minimum-size message, in ns.
  uint64_t rtt_ns = 1600;
  /// Link bandwidth in bytes/ns (200 Gb/s = 25 GB/s = 25 bytes/ns).
  double bandwidth_bytes_per_ns = 25.0;
  /// Sender CPU cost to post one work request.
  uint64_t post_overhead_ns = 150;
  /// Extra target-side cost of an RDMA atomic (CAS / fetch-add).
  uint64_t atomic_extra_ns = 120;
  /// Receiver CPU cost to dispatch a two-sided message into software
  /// (RECV completion, demux). One-sided verbs bypass this: the remote CPU
  /// is not involved.
  uint64_t recv_dispatch_ns = 400;

  /// Wire time for `bytes` of payload.
  uint64_t TransferNs(size_t bytes) const {
    return static_cast<uint64_t>(static_cast<double>(bytes) /
                                 bandwidth_bytes_per_ns);
  }

  /// One-sided READ/WRITE of `bytes`: post + 1 RTT + wire time.
  uint64_t OneSidedNs(size_t bytes) const {
    return post_overhead_ns + rtt_ns + TransferNs(bytes);
  }

  /// One-sided atomic (8-byte CAS/FAA).
  uint64_t AtomicNs() const {
    return post_overhead_ns + rtt_ns + atomic_extra_ns + TransferNs(8);
  }

  /// Doorbell batch of `n` one-sided ops moving `total_bytes` in total:
  /// one RTT, n postings.
  uint64_t BatchNs(size_t n, size_t total_bytes) const {
    return post_overhead_ns * n + rtt_ns + TransferNs(total_bytes);
  }

  /// Network share of a two-sided call (request out, response back). The
  /// remote handler's CPU time is charged separately via VirtualCpu.
  uint64_t TwoSidedNs(size_t req_bytes, size_t resp_bytes) const {
    return post_overhead_ns + rtt_ns + TransferNs(req_bytes) +
           TransferNs(resp_bytes) + recv_dispatch_ns;
  }

  /// A model with `factor`-times the base RTT (for slow-network sweeps).
  NetworkModel WithRttFactor(double factor) const {
    NetworkModel m = *this;
    m.rtt_ns = static_cast<uint64_t>(static_cast<double>(rtt_ns) * factor);
    return m;
  }
};

/// Cost model for node-local actions of compute/memory nodes; used so local
/// and remote work are expressed in the same simulated time base.
struct CpuModel {
  /// Local DRAM: ~100 ns access + ~50 GB/s streaming.
  uint64_t dram_access_ns = 100;
  double dram_bandwidth_bytes_per_ns = 50.0;
  /// Cost to process one tuple in a scan/filter (compute-node core).
  uint64_t per_tuple_ns = 30;

  uint64_t LocalCopyNs(size_t bytes) const {
    return dram_access_ns + static_cast<uint64_t>(
                                static_cast<double>(bytes) /
                                dram_bandwidth_bytes_per_ns);
  }
};

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_NETWORK_MODEL_H_
