#include "rdma/fault.h"

#include <algorithm>

#include "common/sim_clock.h"

namespace dsmdb::rdma {

namespace {

/// splitmix64 finalizer: decorrelates consecutive counter values.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultOptions opts) : opts_(std::move(opts)) {
  live_verb_loss_.store(opts_.verb_loss_prob, std::memory_order_relaxed);
  live_rpc_loss_.store(opts_.rpc_loss_prob, std::memory_order_relaxed);
  std::sort(opts_.events.begin(), opts_.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at_ns < b.at_ns;
            });
  if (!opts_.events.empty()) {
    next_event_due_.store(opts_.events.front().at_ns,
                          std::memory_order_relaxed);
  }
  verb_failures_ = GlobalMetrics().GetCounter("fault.verb_failures");
  rpc_failures_ = GlobalMetrics().GetCounter("fault.rpc_failures");
  events_fired_ = GlobalMetrics().GetCounter("fault.events_fired");
  fr_token_ = obs::FlightRecorder::Instance().RegisterGaugeFamily(
      "fault",
      [](uint64_t, std::vector<std::pair<std::string, double>>* out) {
        MetricsRegistry& m = GlobalMetrics();
        for (const char* name :
             {"fault.verb_failures", "fault.rpc_failures",
              "fault.events_fired", "fault.retries", "fault.failovers",
              "fault.lease_expiries", "fault.orphan_locks_reclaimed"}) {
          // Label = suffix after "fault.".
          out->emplace_back(
              name + 6, static_cast<double>(m.GetCounter(name)->Get()));
        }
      });
}

double FaultInjector::LossProbFor(NodeId target, Verb verb) const {
  if (verb == Verb::kRpc) {
    return live_rpc_loss_.load(std::memory_order_relaxed);
  }
  if (target < opts_.per_node_loss.size() &&
      opts_.per_node_loss[target] >= 0) {
    return opts_.per_node_loss[target];
  }
  return live_verb_loss_.load(std::memory_order_relaxed);
}

double FaultInjector::NextUniform() {
  const uint64_t seq = flip_seq_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<double>(Mix64(opts_.seed ^ (seq * 0xD6E8FEB86659FD93ULL))
                             >> 11) *
         0x1.0p-53;
}

FaultInjector::Decision FaultInjector::OnVerb(NodeId initiator, NodeId target,
                                              Verb verb) {
  (void)initiator;
  Decision d;
  const uint64_t now = SimClock::Now();
  if (now >= next_event_due_.load(std::memory_order_acquire)) {
    FireDueEvents(now);
  }
  for (const StragglerWindow& w : opts_.stragglers) {
    if (w.node == target && now >= w.start_ns && now < w.end_ns &&
        w.wire_multiplier > d.wire_multiplier) {
      d.wire_multiplier = w.wire_multiplier;
    }
  }
  const double p = LossProbFor(target, verb);
  if (p > 0 && NextUniform() < p) {
    d.drop = true;
    d.timeout_ns = opts_.lost_verb_timeout_ns;
    verbs_dropped_.fetch_add(1, std::memory_order_relaxed);
    (verb == Verb::kRpc ? rpc_failures_ : verb_failures_)->Add(1);
  }
  return d;
}

void FaultInjector::FireDueEvents(uint64_t now_ns) {
  std::lock_guard<std::mutex> lk(events_mu_);
  while (next_event_ < opts_.events.size() &&
         opts_.events[next_event_].at_ns <= now_ns) {
    FaultEvent& ev = opts_.events[next_event_++];
    // Publish the new horizon before running the callback so a concurrent
    // OnVerb does not pile up on events_mu_ behind a slow callback.
    next_event_due_.store(next_event_ < opts_.events.size()
                              ? opts_.events[next_event_].at_ns
                              : UINT64_MAX,
                          std::memory_order_release);
    if (ev.fire) ev.fire();
    events_fired_->Add(1);
  }
}

bool FaultInjector::AllEventsFired() const {
  return next_event_due_.load(std::memory_order_acquire) == UINT64_MAX;
}

}  // namespace dsmdb::rdma
