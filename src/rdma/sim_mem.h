#ifndef DSMDB_RDMA_SIM_MEM_H_
#define DSMDB_RDMA_SIM_MEM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dsmdb::rdma {

/// Word-wise atomic copies for simulated remote memory.
///
/// A real RDMA NIC DMAs host memory coherently at word granularity while
/// CPUs (and other NICs) race on the same cache lines: a one-sided read
/// concurrent with a CAS observes either the old or the new word, never a
/// shredded one. Plain memcpy models that fine at the value level but is a
/// data race to ThreadSanitizer the moment a lock word is CASed while a
/// fused header read is in flight. These helpers do the remote-side access
/// with relaxed 8-byte atomics (byte atomics off alignment), which is both
/// race-free to TSan and a closer model of the hardware: torn *multi-word*
/// payloads remain possible and intended — protocols must tolerate them
/// (OCC re-validates, MVCC re-chases).
///
/// Only the remote (shared) side needs atomics; the local buffer is private
/// to the initiator, so it is staged through memcpy, which also tolerates
/// unaligned local pointers (std::string storage).

inline void SimMemRead(void* dst, const char* src, size_t n) {
  char* d = static_cast<char*>(dst);
  while (n > 0 && reinterpret_cast<uintptr_t>(src) % 8 != 0) {
    *d++ = __atomic_load_n(src++, __ATOMIC_RELAXED);
    --n;
  }
  while (n >= 8) {
    const uint64_t w = __atomic_load_n(
        reinterpret_cast<const uint64_t*>(src), __ATOMIC_RELAXED);
    std::memcpy(d, &w, 8);
    src += 8;
    d += 8;
    n -= 8;
  }
  while (n > 0) {
    *d++ = __atomic_load_n(src++, __ATOMIC_RELAXED);
    --n;
  }
}

inline void SimMemWrite(char* dst, const void* src, size_t n) {
  const char* s = static_cast<const char*>(src);
  while (n > 0 && reinterpret_cast<uintptr_t>(dst) % 8 != 0) {
    __atomic_store_n(dst++, *s++, __ATOMIC_RELAXED);
    --n;
  }
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, s, 8);
    __atomic_store_n(reinterpret_cast<uint64_t*>(dst), w, __ATOMIC_RELAXED);
    dst += 8;
    s += 8;
    n -= 8;
  }
  while (n > 0) {
    __atomic_store_n(dst++, *s++, __ATOMIC_RELAXED);
    --n;
  }
}

/// The remote side of a simulated CAS verb: returns the previous word
/// value (callers compare it to `expected` to learn success). Shared by
/// Fabric::CompareAndSwap and CompletionQueue::PostCas so the checker can
/// hook one funnel.
inline uint64_t SimMemCas(char* word, uint64_t expected, uint64_t desired) {
  uint64_t prev = expected;
  __atomic_compare_exchange_n(reinterpret_cast<uint64_t*>(word), &prev,
                              desired, /*weak=*/false, __ATOMIC_ACQ_REL,
                              __ATOMIC_ACQUIRE);
  return prev;
}

/// The remote side of a simulated FAA verb: returns the pre-add value.
inline uint64_t SimMemFaa(char* word, uint64_t delta) {
  return __atomic_fetch_add(reinterpret_cast<uint64_t*>(word), delta,
                            __ATOMIC_ACQ_REL);
}

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_SIM_MEM_H_
