#ifndef DSMDB_RDMA_SIM_MEM_H_
#define DSMDB_RDMA_SIM_MEM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dsmdb::rdma {

/// Word-wise atomic copies for simulated remote memory.
///
/// A real RDMA NIC DMAs host memory coherently at word granularity while
/// CPUs (and other NICs) race on the same cache lines: a one-sided read
/// concurrent with a CAS observes either the old or the new word, never a
/// shredded one. Plain memcpy models that fine at the value level but is a
/// data race to ThreadSanitizer the moment a lock word is CASed while a
/// fused header read is in flight. These helpers do the remote-side access
/// with relaxed 8-byte atomics (byte atomics off alignment), which is both
/// race-free to TSan and a closer model of the hardware: torn *multi-word*
/// payloads remain possible and intended — protocols must tolerate them
/// (OCC re-validates, MVCC re-chases).
///
/// Only the remote (shared) side needs atomics; the local buffer is private
/// to the initiator, so it is staged through memcpy, which also tolerates
/// unaligned local pointers (std::string storage).

inline void SimMemRead(void* dst, const char* src, size_t n) {
  char* d = static_cast<char*>(dst);
  while (n > 0 && reinterpret_cast<uintptr_t>(src) % 8 != 0) {
    *d++ = __atomic_load_n(src++, __ATOMIC_RELAXED);
    --n;
  }
  while (n >= 8) {
    const uint64_t w = __atomic_load_n(
        reinterpret_cast<const uint64_t*>(src), __ATOMIC_RELAXED);
    std::memcpy(d, &w, 8);
    src += 8;
    d += 8;
    n -= 8;
  }
  while (n > 0) {
    *d++ = __atomic_load_n(src++, __ATOMIC_RELAXED);
    --n;
  }
}

inline void SimMemWrite(char* dst, const void* src, size_t n) {
  const char* s = static_cast<const char*>(src);
  while (n > 0 && reinterpret_cast<uintptr_t>(dst) % 8 != 0) {
    __atomic_store_n(dst++, *s++, __ATOMIC_RELAXED);
    --n;
  }
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, s, 8);
    __atomic_store_n(reinterpret_cast<uint64_t*>(dst), w, __ATOMIC_RELAXED);
    dst += 8;
    s += 8;
    n -= 8;
  }
  while (n > 0) {
    __atomic_store_n(dst++, *s++, __ATOMIC_RELAXED);
    --n;
  }
}

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_SIM_MEM_H_
