#ifndef DSMDB_RDMA_FAULT_H_
#define DSMDB_RDMA_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "obs/flight_recorder.h"
#include "rdma/verbs.h"

namespace dsmdb::rdma {

/// A window of simulated time during which the links to `node` are slow:
/// every verb's wire cost is multiplied by `wire_multiplier` (a straggler
/// link / congested ToR, the tail-latency failure mode of Challenge #3).
struct StragglerWindow {
  NodeId node = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  double wire_multiplier = 1.0;
};

/// A one-shot event fired the first time any thread's simulated clock
/// crosses `at_ns` while issuing a verb. The callback runs on that thread,
/// outside any fabric latch — wiring it to Cluster::CrashMemoryNode /
/// RecoverMemoryNode gives node flap under live traffic.
struct FaultEvent {
  uint64_t at_ns = 0;
  std::function<void()> fire;
  const char* label = "";
};

/// Seeded description of everything that will go wrong.
struct FaultOptions {
  uint64_t seed = 1;
  /// Probability an individual one-sided verb (or doorbell batch) is lost.
  double verb_loss_prob = 0.0;
  /// Probability a two-sided call's request is lost (handler never runs).
  double rpc_loss_prob = 0.0;
  /// Simulated latency a lost verb costs the initiator before the NIC
  /// reports a timeout (retransmit budget exhausted).
  uint64_t lost_verb_timeout_ns = 20'000;
  /// Per-target-node override of verb_loss_prob; entries < 0 mean "use the
  /// default". Indexed by NodeId.
  std::vector<double> per_node_loss;
  std::vector<StragglerWindow> stragglers;
  /// Fired in at_ns order, each exactly once.
  std::vector<FaultEvent> events;
};

/// Decides the fate of every verb the fabric issues. Installed on a Fabric
/// via SetFaultInjector; a null injector costs the verb hot path one relaxed
/// atomic load, so fault-free runs are simulation-identical to a build
/// without this layer.
///
/// Loss semantics (per verb class):
///  * READ / CAS / FAA / RPC — request loss: no memory effect, the
///    initiator sees Status::TimedOut after `lost_verb_timeout_ns`.
///  * WRITE — response (ack) loss: the store *is* applied, then the
///    initiator times out. Retrying a write is idempotent, so this models
///    the harder ambiguity without breaking exactly-once for atomics.
///
/// Within a pipeline (one CompletionQueue), any drop also puts that
/// queue's flow to the target into the error state: subsequent posts to
/// the same target flush without executing, like a real RC QP after its
/// retransmit budget — see the CompletionQueue failure-model comment. A
/// later install verb can therefore never execute "past" a lost earlier
/// one. Sync verbs (Fabric::Read etc.) are one-shot flows and unaffected.
///
/// Determinism: the coin-flip stream is fixed by `seed`, but flips are
/// assigned to verbs in global issue order, so with multiple worker threads
/// the *assignment* depends on host interleaving (aggregate counts stay
/// concentrated). Single-threaded runs are exactly reproducible.
class FaultInjector {
 public:
  enum class Verb : uint8_t { kRead, kWrite, kCas, kFaa, kRpc };

  struct Decision {
    bool drop = false;            ///< Lose the verb (see loss semantics).
    double wire_multiplier = 1.0; ///< Straggler scaling of the wire cost.
    uint64_t timeout_ns = 0;      ///< Latency charged when drop is set.
  };

  explicit FaultInjector(FaultOptions opts);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Called by the fabric at the top of every verb. Fires any due timed
  /// events, then rolls this verb's fate.
  Decision OnVerb(NodeId initiator, NodeId target, Verb verb);

  /// Fires all events with at_ns <= now (normally driven by OnVerb; public
  /// so quiescent tests and the bench can pump the schedule directly).
  void FireDueEvents(uint64_t now_ns);

  /// True once every scheduled event has fired.
  bool AllEventsFired() const;

  /// Live-adjustable loss probabilities, so FaultEvent callbacks can open
  /// and close fault windows mid-run (initialized from FaultOptions).
  void SetVerbLossProb(double p) {
    live_verb_loss_.store(p, std::memory_order_relaxed);
  }
  void SetRpcLossProb(double p) {
    live_rpc_loss_.store(p, std::memory_order_relaxed);
  }

  uint64_t verbs_dropped() const {
    return verbs_dropped_.load(std::memory_order_relaxed);
  }

 private:
  double LossProbFor(NodeId target, Verb verb) const;
  /// Uniform [0,1) from the seeded counter stream (splitmix64 finalizer).
  double NextUniform();

  FaultOptions opts_;
  std::atomic<double> live_verb_loss_{0.0};
  std::atomic<double> live_rpc_loss_{0.0};
  std::atomic<uint64_t> flip_seq_{0};
  std::atomic<uint64_t> verbs_dropped_{0};
  std::atomic<uint64_t> next_event_due_{UINT64_MAX};
  std::mutex events_mu_;
  size_t next_event_ = 0;  // guarded by events_mu_; opts_.events is sorted

  // fault.* counters surface in STATS_JSON via GlobalMetrics().
  Counter* verb_failures_;
  Counter* rpc_failures_;
  Counter* events_fired_;
  /// Live `fault{...}` gauge family in the flight recorder (dip/recovery
  /// visible on the same timeline as throughput and sched gauges).
  obs::FlightRecorder::Token fr_token_;
};

}  // namespace dsmdb::rdma

#endif  // DSMDB_RDMA_FAULT_H_
