#ifndef DSMDB_COMMON_CODING_H_
#define DSMDB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace dsmdb {

/// Little-endian fixed-width encoding helpers (RocksDB style). All buffers
/// must have sufficient space; callers own bounds checking.

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Reads a length-prefixed slice starting at `*pos` in `src`; advances
/// `*pos`. Returns false on truncation.
inline bool GetLengthPrefixed(std::string_view src, size_t* pos,
                              std::string_view* out) {
  if (*pos + 4 > src.size()) return false;
  const uint32_t len = DecodeFixed32(src.data() + *pos);
  *pos += 4;
  if (*pos + len > src.size()) return false;
  *out = src.substr(*pos, len);
  *pos += len;
  return true;
}

/// CRC-free 64-bit checksum (FNV-1a); adequate for simulated storage
/// integrity checks.
inline uint64_t Checksum64(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace dsmdb

#endif  // DSMDB_COMMON_CODING_H_
