#ifndef DSMDB_COMMON_RESULT_H_
#define DSMDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dsmdb {

/// A value-or-status type (Arrow's `Result`, absl's `StatusOr`).
///
/// Usage:
///   Result<Page> r = pool.Fetch(pid);
///   if (!r.ok()) return r.status();
///   Page page = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success) or a Status (error), so
  /// `return value;` and `return Status::NotFound();` both work.
  Result(T value) : value_(std::move(value)) {}       // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define DSMDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define DSMDB_ASSIGN_OR_RETURN(lhs, expr)                                    \
  DSMDB_ASSIGN_OR_RETURN_IMPL(DSMDB_CONCAT_(_res_, __LINE__), lhs, expr)

#define DSMDB_CONCAT_INNER_(a, b) a##b
#define DSMDB_CONCAT_(a, b) DSMDB_CONCAT_INNER_(a, b)

}  // namespace dsmdb

#endif  // DSMDB_COMMON_RESULT_H_
