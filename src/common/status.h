#ifndef DSMDB_COMMON_STATUS_H_
#define DSMDB_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dsmdb {

/// Error codes used across DSM-DB. Kept deliberately small; subsystems
/// attach context via the message string.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfMemory,
  kIOError,
  kCorruption,
  kAborted,         ///< Transaction aborted (conflict, deadlock avoidance).
  kBusy,            ///< Lock or resource busy; caller may retry.
  kTimedOut,
  kUnavailable,     ///< Node crashed / not reachable.
  kNotSupported,
  kInternal,
  kStaleIncarnation,  ///< Op fenced: target node re-incarnated since bind.
};

/// Returns a static human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// A lightweight status object, following the RocksDB/Arrow convention:
/// functions that can fail return `Status` (or `Result<T>`), never throw.
///
/// `Status` is cheap to copy in the OK case (no allocation); error statuses
/// carry a heap-allocated message.
class Status {
 public:
  Status() = default;

  Status(const Status& other)
      : code_(other.code_),
        msg_(other.msg_ == nullptr ? nullptr : new std::string(*other.msg_)) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      code_ = other.code_;
      delete msg_;
      msg_ = other.msg_ == nullptr ? nullptr : new std::string(*other.msg_);
    }
    return *this;
  }
  Status(Status&& other) noexcept : code_(other.code_), msg_(other.msg_) {
    other.code_ = StatusCode::kOk;
    other.msg_ = nullptr;
  }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      code_ = other.code_;
      delete msg_;
      msg_ = other.msg_;
      other.code_ = StatusCode::kOk;
      other.msg_ = nullptr;
    }
    return *this;
  }
  ~Status() { delete msg_; }

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg = "") {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status OutOfMemory(std::string_view msg = "") {
    return Status(StatusCode::kOutOfMemory, msg);
  }
  static Status IOError(std::string_view msg = "") {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(StatusCode::kBusy, msg);
  }
  static Status TimedOut(std::string_view msg = "") {
    return Status(StatusCode::kTimedOut, msg);
  }
  static Status Unavailable(std::string_view msg = "") {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg = "") {
    return Status(StatusCode::kInternal, msg);
  }
  static Status StaleIncarnation(std::string_view msg = "") {
    return Status(StatusCode::kStaleIncarnation, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsStaleIncarnation() const {
    return code_ == StatusCode::kStaleIncarnation;
  }

  StatusCode code() const { return code_; }

  /// Message attached at construction; empty for OK.
  std::string_view message() const {
    return msg_ == nullptr ? std::string_view() : std::string_view(*msg_);
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string_view msg) : code_(code) {
    if (!msg.empty()) msg_ = new std::string(msg);
  }

  StatusCode code_ = StatusCode::kOk;
  std::string* msg_ = nullptr;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define DSMDB_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::dsmdb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace dsmdb

#endif  // DSMDB_COMMON_STATUS_H_
