#include "common/sim_clock.h"

#include <cassert>

namespace dsmdb {

namespace {
thread_local uint64_t tls_sim_now_ns = 0;
#ifndef NDEBUG
thread_local bool tls_set_allowed = false;
#endif
}  // namespace

uint64_t SimClock::Now() { return tls_sim_now_ns; }

void SimClock::Advance(uint64_t ns) { tls_sim_now_ns += ns; }

void SimClock::AdvanceTo(uint64_t t) {
  if (t > tls_sim_now_ns) tls_sim_now_ns = t;
}

void SimClock::Reset() { tls_sim_now_ns = 0; }

void SimClock::Set(uint64_t t) {
#ifndef NDEBUG
  // grep-able invariant: SimClock::Set is reserved for SimFanOut; verb
  // overlap goes through rdma::CompletionQueue.
  assert(tls_set_allowed &&
         "SimClock::Set outside SimFanOut/async verb engine");
#endif
  tls_sim_now_ns = t;
}

void SimClock::AllowSet(bool allowed) {
#ifndef NDEBUG
  tls_set_allowed = allowed;
#else
  (void)allowed;
#endif
}

}  // namespace dsmdb
