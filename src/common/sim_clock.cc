#include "common/sim_clock.h"

namespace dsmdb {

namespace {
thread_local uint64_t tls_sim_now_ns = 0;
}  // namespace

uint64_t SimClock::Now() { return tls_sim_now_ns; }

void SimClock::Advance(uint64_t ns) { tls_sim_now_ns += ns; }

void SimClock::AdvanceTo(uint64_t t) {
  if (t > tls_sim_now_ns) tls_sim_now_ns = t;
}

void SimClock::Reset() { tls_sim_now_ns = 0; }

void SimClock::Set(uint64_t t) { tls_sim_now_ns = t; }

}  // namespace dsmdb
