#ifndef DSMDB_COMMON_METRICS_H_
#define DSMDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dsmdb {

/// A relaxed atomic counter. Copyable snapshot semantics are provided by
/// MetricsRegistry::Snapshot().
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Named counter registry. Counters are created on first access and live
/// for the registry's lifetime; pointer stability is guaranteed (std::map).
class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it if absent.
  /// The returned pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);

  /// Point-in-time copy of all counter values.
  std::map<std::string, uint64_t> Snapshot() const;

  /// Resets every counter to zero.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
};

}  // namespace dsmdb

#endif  // DSMDB_COMMON_METRICS_H_
