#ifndef DSMDB_COMMON_METRICS_H_
#define DSMDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dsmdb {

/// A relaxed atomic counter. Copyable snapshot semantics are provided by
/// MetricsRegistry::Snapshot().
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class MetricsRegistry;

/// RAII registration of a gauge callback; unregisters on destruction so a
/// component (Fabric, BufferPool, ...) can expose its live counters for its
/// own lifetime without dangling reads after teardown.
class GaugeToken {
 public:
  GaugeToken() = default;
  GaugeToken(GaugeToken&& other) noexcept { *this = std::move(other); }
  GaugeToken& operator=(GaugeToken&& other) noexcept;
  GaugeToken(const GaugeToken&) = delete;
  GaugeToken& operator=(const GaugeToken&) = delete;
  ~GaugeToken();

 private:
  friend class MetricsRegistry;
  GaugeToken(MetricsRegistry* registry, uint64_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

/// Named metrics registry: owned counters plus pull-style gauges.
///
/// * Counters are created on first access and live for the registry's
///   lifetime; pointer stability is guaranteed (std::map).
/// * Gauges are callbacks registered by live components; several components
///   may register under the same name and `Snapshot()` reports their sum
///   (e.g. two buffer pools both publishing `buffer.pool.hits`).
class MetricsRegistry {
 public:
  using GaugeFn = std::function<uint64_t()>;

  /// Returns the counter registered under `name`, creating it if absent.
  /// The returned pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);

  /// Registers `fn` under `name`; the gauge is dropped when the returned
  /// token dies. Same-name registrations sum in Snapshot(). When a token
  /// dies, the gauge's final reading is folded into the counter of the
  /// same name, so totals survive component teardown.
  [[nodiscard]] GaugeToken RegisterGauge(const std::string& name, GaugeFn fn);

  /// Point-in-time copy of all counter values and evaluated gauges. If a
  /// counter and a gauge share a name, their values sum.
  std::map<std::string, uint64_t> Snapshot() const;

  /// Resets every counter to zero (gauges are owned by their components
  /// and are not touched).
  void ResetAll();

 private:
  friend class GaugeToken;
  void Unregister(uint64_t id);

  struct Gauge {
    uint64_t id;
    std::string name;
    GaugeFn fn;
  };

  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::vector<Gauge> gauges_;
  uint64_t next_gauge_id_ = 1;
};

/// The process-wide registry every subsystem publishes into; a single
/// Snapshot() here sees the whole system (fabric verbs, buffer pools, ...).
MetricsRegistry& GlobalMetrics();

}  // namespace dsmdb

#endif  // DSMDB_COMMON_METRICS_H_
