#include "common/metrics.h"

#include <algorithm>

namespace dsmdb {

GaugeToken& GaugeToken::operator=(GaugeToken&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr) registry_->Unregister(id_);
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

GaugeToken::~GaugeToken() {
  if (registry_ != nullptr) registry_->Unregister(id_);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return &counters_[name];
}

GaugeToken MetricsRegistry::RegisterGauge(const std::string& name,
                                          GaugeFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t id = next_gauge_id_++;
  gauges_.push_back(Gauge{id, name, std::move(fn)});
  return GaugeToken(this, id);
}

void MetricsRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = std::find_if(gauges_.begin(), gauges_.end(),
                         [id](const Gauge& g) { return g.id == id; });
  if (it == gauges_.end()) return;
  // Fold the final reading into the same-named counter so the total
  // survives component teardown (Snapshot() keeps summing it).
  counters_[it->name].Add(it->fn());
  gauges_.erase(it);
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] += counter.Get();
  }
  for (const Gauge& g : gauges_) {
    out[g.name] += g.fn();
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dsmdb
