#include "common/metrics.h"

namespace dsmdb {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return &counters_[name];
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter.Get();
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
}

}  // namespace dsmdb
