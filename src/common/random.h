#ifndef DSMDB_COMMON_RANDOM_H_
#define DSMDB_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace dsmdb {

/// Fast, seedable PRNG (xorshift64*). Not cryptographic; used for workload
/// generation and randomized tests where reproducibility matters.
class Random64 {
 public:
  explicit Random64(uint64_t seed = 0x2545F4914F6CDD1DULL) : state_(seed) {
    if (state_ == 0) state_ = 0x9E3779B97F4A7C15ULL;
  }

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// Zipfian-distributed generator over [0, n), YCSB-style.
///
/// Uses the Gray et al. rejection-free inversion method with precomputed
/// zeta values. theta=0 degenerates to uniform; theta -> 1 is maximally
/// skewed (YCSB default is 0.99).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 7)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    assert(theta >= 0.0 && theta < 1.0);
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Next zipfian sample in [0, n). Rank 0 is the hottest item; callers
  /// typically scramble with a hash to spread hot keys over the keyspace.
  uint64_t Next() {
    if (theta_ == 0.0) return rng_.Uniform(n_);
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  /// Next sample scrambled with a 64-bit mix so that hot ranks are spread
  /// uniformly across the keyspace (YCSB "scrambled zipfian").
  uint64_t NextScrambled() {
    uint64_t v = Next();
    v = FnvMix(v);
    return v % n_;
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  static uint64_t FnvMix(uint64_t v) {
    uint64_t h = 14695981039346656037ULL;
    for (int i = 0; i < 8; i++) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
    return h;
  }

  uint64_t n_;
  double theta_;
  Random64 rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// 64-bit finalizer (SplitMix64); good cheap hash for keys.
inline uint64_t Hash64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace dsmdb

#endif  // DSMDB_COMMON_RANDOM_H_
