#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace dsmdb {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  // Sub-bucket index: next 4 bits below the MSB.
  const int shift = msb - 4;
  const int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  // First kSubBuckets buckets are the linear region [0, 16).
  const int bucket = (msb - 3) * kSubBuckets + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const int msb = bucket / kSubBuckets + 3;
  const int sub = bucket % kSubBuckets;
  const int shift = msb - 4;
  return ((1ULL << msb) | (static_cast<uint64_t>(sub) << shift)) +
         ((1ULL << shift) - 1);
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const auto target = static_cast<uint64_t>(
      p / 100.0 * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets_[i];
    if (seen > target || (seen == target && seen == count_)) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(95)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace dsmdb
