#include "common/histogram.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>

#include "common/spin_latch.h"

namespace dsmdb {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  // Sub-bucket index: next 4 bits below the MSB.
  const int shift = msb - 4;
  const int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  // First kSubBuckets buckets are the linear region [0, 16).
  const int bucket = (msb - 3) * kSubBuckets + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const int msb = bucket / kSubBuckets + 3;
  const int sub = bucket % kSubBuckets;
  const int shift = msb - 4;
  return ((1ULL << msb) | (static_cast<uint64_t>(sub) << shift)) +
         ((1ULL << shift) - 1);
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max_;
  const auto target = static_cast<uint64_t>(
      p / 100.0 * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets_[i];
    if (seen > target || (seen == target && seen == count_)) {
      return std::clamp(BucketUpperBound(i), min(), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(95)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

/// Cache-line sized so concurrent writers on different shards never false-
/// share the latch or the hot bucket counters' containing line.
struct alignas(64) ConcurrentHistogram::Shard {
  mutable SpinLatch latch;
  Histogram hist;
};

namespace {

/// Dense per-thread index (not the hashed std::thread::id) so the first N
/// threads land on N distinct shards.
size_t ThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace

ConcurrentHistogram::~ConcurrentHistogram() = default;

ConcurrentHistogram::ConcurrentHistogram(size_t shards) {
  shards_.reserve(shards == 0 ? 1 : shards);
  for (size_t i = 0; i < std::max<size_t>(1, shards); i++) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ConcurrentHistogram::Add(uint64_t value) {
  Shard& s = *shards_[ThreadIndex() % shards_.size()];
  SpinLatchGuard g(s.latch);
  s.hist.Add(value);
}

Histogram ConcurrentHistogram::Merged() const {
  Histogram out;
  for (const auto& s : shards_) {
    SpinLatchGuard g(s->latch);
    out.Merge(s->hist);
  }
  return out;
}

void ConcurrentHistogram::Clear() {
  for (const auto& s : shards_) {
    SpinLatchGuard g(s->latch);
    s->hist.Clear();
  }
}

}  // namespace dsmdb
