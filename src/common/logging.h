#ifndef DSMDB_COMMON_LOGGING_H_
#define DSMDB_COMMON_LOGGING_H_

#include <sstream>

namespace dsmdb {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level; messages below it are dropped.
/// Default is kWarn so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DSMDB_LOG(level)                                              \
  if (::dsmdb::LogLevel::k##level < ::dsmdb::GetLogLevel()) {         \
  } else                                                              \
    ::dsmdb::internal::LogMessage(::dsmdb::LogLevel::k##level,        \
                                  __FILE__, __LINE__)                 \
        .stream()

}  // namespace dsmdb

#endif  // DSMDB_COMMON_LOGGING_H_
