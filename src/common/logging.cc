#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dsmdb {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; p++) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lk(g_log_mu);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace dsmdb
