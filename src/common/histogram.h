#ifndef DSMDB_COMMON_HISTOGRAM_H_
#define DSMDB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dsmdb {

/// Log-bucketed histogram for latency-style measurements (nanoseconds).
///
/// Buckets are powers-of-two sub-divided 16 ways, giving <= ~6% relative
/// error on percentile queries while staying allocation-free after
/// construction. Not thread-safe; use one per thread and `Merge`, or use
/// `ConcurrentHistogram`.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Value at percentile p. `p` is clamped to [0, 100]: p <= 0 returns
  /// min(), p >= 100 returns max(), and an empty histogram returns 0 for
  /// every percentile.
  uint64_t Percentile(double p) const;
  uint64_t Median() const { return Percentile(50.0); }
  uint64_t P99() const { return Percentile(99.0); }

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;

 private:
  static constexpr int kSubBuckets = 16;
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Thread-safe histogram: a fixed set of cache-line-separated shards, each
/// a `Histogram` behind its own tiny lock. Writers hash their thread onto a
/// shard, so under the common pattern (one recording thread per worker)
/// `Add` never contends; readers `Merged()` a point-in-time union.
class ConcurrentHistogram {
 public:
  explicit ConcurrentHistogram(size_t shards = 16);
  ~ConcurrentHistogram();

  ConcurrentHistogram(const ConcurrentHistogram&) = delete;
  ConcurrentHistogram& operator=(const ConcurrentHistogram&) = delete;

  void Add(uint64_t value);

  /// Point-in-time merge of all shards.
  Histogram Merged() const;

  void Clear();

 private:
  struct Shard;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dsmdb

#endif  // DSMDB_COMMON_HISTOGRAM_H_
