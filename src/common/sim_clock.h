#ifndef DSMDB_COMMON_SIM_CLOCK_H_
#define DSMDB_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace dsmdb {

/// Per-thread simulated clock.
///
/// DSM-DB runs on an in-process simulated fabric: data operations execute
/// for real on shared memory, but *time* is modeled. Every simulated device
/// (RDMA NIC, memory-node CPU, cloud storage) charges its cost by advancing
/// the calling thread's `SimClock`. Benchmarks report simulated time, which
/// makes the relative shapes (who wins, crossover points) deterministic and
/// independent of host hardware.
///
/// Each worker thread models one execution stream (e.g. one core of a
/// compute node). Aggregation across threads (e.g. throughput =
/// total_ops / max_i(sim_time_i)) is done by the benchmark driver.
class SimClock {
 public:
  /// Current simulated time of the calling thread, in nanoseconds.
  static uint64_t Now();

  /// Advances the calling thread's clock by `ns`.
  static void Advance(uint64_t ns);

  /// Advances the calling thread's clock to at least `t` (no-op if already
  /// past). Used when synchronizing with a virtual-time server.
  static void AdvanceTo(uint64_t t);

  /// Resets the calling thread's clock to zero.
  static void Reset();

  /// Sets the clock to an absolute value (it may move *backwards*).
  ///
  /// Reserved for `SimFanOut` below. Verb-level overlap is modeled by the
  /// async verb engine (rdma::CompletionQueue, see rdma/async_engine.h),
  /// which only ever moves the clock forward; rewinding is needed only
  /// when fanning out *coarse-grained* actions that are not expressible as
  /// posted verbs (e.g. whole transactions across simulated WAN sites).
  /// Debug builds assert that no other caller uses Set.
  static void Set(uint64_t t);

 private:
  friend class SimFanOut;
  friend class SimHandlerScope;
  /// Debug-only permission token for Set (see SimFanOut).
  static void AllowSet(bool allowed);

  SimClock() = delete;
};

/// Marks a region whose simulated timeline is provisional — a SimFanOut
/// branch (rewound to the fan-out origin per branch) or an inline RPC
/// handler whose elapsed time is rewound and folded into a verb's cost.
/// Cooperative task schedulers (src/rt) must not park inside such a
/// region: a park computes its wake time from the provisional clock and
/// would leak another task's progress into a timeline that is about to be
/// rewound. rt::SimWait degrades to SimClock::AdvanceTo while any
/// SimNoPark is active on the thread.
class SimNoPark {
 public:
  SimNoPark() { Depth()++; }
  ~SimNoPark() { Depth()--; }
  SimNoPark(const SimNoPark&) = delete;
  SimNoPark& operator=(const SimNoPark&) = delete;

  static bool Active() { return Depth() > 0; }

 private:
  static uint32_t& Depth() {
    thread_local uint32_t depth = 0;
    return depth;
  }
};

/// RAII helper modeling a parallel fan-out of coarse-grained branches on
/// one thread: each branch is issued from the same start time, and Join()
/// advances the clock to the slowest branch's completion.
///
///   SimFanOut fan;
///   for (auto& site : sites) {
///     fan.BeginBranch();   // rewind to the fan-out start
///     RunOnSite(site);     // advances the clock by this branch's cost
///   }
///   fan.Join();            // clock = max over branches
///
/// One of the two sanctioned callers of SimClock::Set (the other is
/// SimHandlerScope below, used inside the async verb engine). Prefer the
/// engine (rdma::CompletionQueue) whenever the parallel work is made of
/// individual verbs/RPCs.
class SimFanOut {
 public:
  SimFanOut() : t0_(SimClock::Now()), max_end_(t0_) {}
  ~SimFanOut() {
    if (!joined_) Join();
  }

  SimFanOut(const SimFanOut&) = delete;
  SimFanOut& operator=(const SimFanOut&) = delete;

  /// Starts the next parallel branch at the fan-out origin time (records
  /// the previous branch's completion first).
  void BeginBranch() {
    if (SimClock::Now() > max_end_) max_end_ = SimClock::Now();
    SimClock::AllowSet(true);
    SimClock::Set(t0_);
    SimClock::AllowSet(false);
  }

  /// Advances the clock to the slowest branch's completion.
  void Join() {
    if (SimClock::Now() > max_end_) max_end_ = SimClock::Now();
    SimClock::AdvanceTo(max_end_);
    joined_ = true;
  }

 private:
  uint64_t t0_;
  uint64_t max_end_;
  bool joined_ = false;
  SimNoPark no_park_;  ///< Branch timelines are rewound; parking is unsafe.
};

/// Scope used by the async verb engine (rdma::CompletionQueue::PostCall)
/// to run an RPC handler inline while keeping the handler's simulated cost
/// off the caller's clock: the handler's internal Advances (the
/// participant's own DSM traffic) are measured and rewound by End(), and
/// the engine folds that elapsed time into the posted call's wire cost —
/// so participant-side work lands on the leg's completion time and
/// overlaps across targets instead of serializing at the post site. The
/// only sanctioned SimClock::Set caller besides SimFanOut.
class SimHandlerScope {
 public:
  SimHandlerScope() : t0_(SimClock::Now()) {}
  ~SimHandlerScope() {
    if (!ended_) (void)End();
  }

  SimHandlerScope(const SimHandlerScope&) = delete;
  SimHandlerScope& operator=(const SimHandlerScope&) = delete;

  /// Rewinds the clock to the scope's start and returns the simulated
  /// nanoseconds the handler consumed in between.
  uint64_t End() {
    ended_ = true;
    const uint64_t elapsed = SimClock::Now() - t0_;
    SimClock::AllowSet(true);
    SimClock::Set(t0_);
    SimClock::AllowSet(false);
    return elapsed;
  }

 private:
  uint64_t t0_;
  bool ended_ = false;
  SimNoPark no_park_;  ///< Handler time is rewound by End(); no parking.
};

/// RAII scope that measures elapsed simulated time on the calling thread.
class SimTimer {
 public:
  SimTimer() : start_(SimClock::Now()) {}
  /// Simulated nanoseconds elapsed since construction.
  uint64_t ElapsedNs() const { return SimClock::Now() - start_; }

 private:
  uint64_t start_;
};

}  // namespace dsmdb

#endif  // DSMDB_COMMON_SIM_CLOCK_H_
