#ifndef DSMDB_COMMON_SIM_CLOCK_H_
#define DSMDB_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace dsmdb {

/// Per-thread simulated clock.
///
/// DSM-DB runs on an in-process simulated fabric: data operations execute
/// for real on shared memory, but *time* is modeled. Every simulated device
/// (RDMA NIC, memory-node CPU, cloud storage) charges its cost by advancing
/// the calling thread's `SimClock`. Benchmarks report simulated time, which
/// makes the relative shapes (who wins, crossover points) deterministic and
/// independent of host hardware.
///
/// Each worker thread models one execution stream (e.g. one core of a
/// compute node). Aggregation across threads (e.g. throughput =
/// total_ops / max_i(sim_time_i)) is done by the benchmark driver.
class SimClock {
 public:
  /// Current simulated time of the calling thread, in nanoseconds.
  static uint64_t Now();

  /// Advances the calling thread's clock by `ns`.
  static void Advance(uint64_t ns);

  /// Advances the calling thread's clock to at least `t` (no-op if already
  /// past). Used when synchronizing with a virtual-time server.
  static void AdvanceTo(uint64_t t);

  /// Resets the calling thread's clock to zero.
  static void Reset();

  /// Sets the clock to an absolute value. Needed when modeling *parallel*
  /// fan-out on one thread: snapshot Now(), issue each branch after
  /// Set(snapshot), and AdvanceTo(max of branch completion times).
  static void Set(uint64_t t);

 private:
  SimClock() = delete;
};

/// RAII scope that measures elapsed simulated time on the calling thread.
class SimTimer {
 public:
  SimTimer() : start_(SimClock::Now()) {}
  /// Simulated nanoseconds elapsed since construction.
  uint64_t ElapsedNs() const { return SimClock::Now() - start_; }

 private:
  uint64_t start_;
};

}  // namespace dsmdb

#endif  // DSMDB_COMMON_SIM_CLOCK_H_
