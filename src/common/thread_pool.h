#ifndef DSMDB_COMMON_THREAD_POOL_H_
#define DSMDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsmdb {

/// Fixed-size thread pool. Used for parallel data loading and for running
/// per-compute-node worker loops in tests/benchmarks.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run FIFO across workers.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

/// Runs `fn(i)` for i in [0, n) on `n` dedicated threads and joins them.
/// Simpler than ThreadPool when each worker has a distinct identity
/// (e.g. one thread per simulated compute-node core).
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

}  // namespace dsmdb

#endif  // DSMDB_COMMON_THREAD_POOL_H_
