#ifndef DSMDB_COMMON_SPIN_LATCH_H_
#define DSMDB_COMMON_SPIN_LATCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace dsmdb {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

namespace internal {
/// Installed per worker thread by the cooperative task scheduler
/// (rt::Scheduler). See CoopYield below.
inline thread_local void (*tls_coop_yield)() = nullptr;
}  // namespace internal

/// Installs (or clears, with nullptr) the calling thread's cooperative
/// yield hook. Owned by src/rt; declared here so the latches can call it
/// without a dependency on the scheduler.
inline void SetCoopYieldHook(void (*fn)()) {
  internal::tls_coop_yield = fn;
}

/// Yield point for latch spin loops. On a plain thread this is
/// std::this_thread::yield(). On a worker thread driving cooperative
/// tasks the hook parks the spinning task so a sibling task — possibly
/// the latch holder, parked mid-IO while holding the latch — can run;
/// without it a spinner would busy-wait forever on a holder that can only
/// resume on this same OS thread. The hook never advances the simulated
/// clock (latch spins are host-level waits, exactly like the plain
/// yield they replace).
inline void CoopYield() {
  if (internal::tls_coop_yield != nullptr) {
    internal::tls_coop_yield();
  } else {
    std::this_thread::yield();
  }
}

/// Test-and-test-and-set spin latch for very short critical sections
/// (buffer-pool metadata, policy state). Not reentrant.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      int spins = 0;
      while (flag_.load(std::memory_order_relaxed)) {
        CpuRelax();
        // On few-core hosts the holder may be descheduled; yield instead
        // of burning the whole quantum.
        if (++spins > 64) {
          CoopYield();
          spins = 0;
        }
      }
    }
  }

  bool TryLock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLatch.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinLatchGuard() { latch_.Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// Reader-writer spin latch (writer-preferring is not needed at our scale;
/// this is a simple fair-enough design for mostly-read metadata).
class SharedSpinLatch {
 public:
  SharedSpinLatch() = default;
  SharedSpinLatch(const SharedSpinLatch&) = delete;
  SharedSpinLatch& operator=(const SharedSpinLatch&) = delete;

  void LockShared() {
    int spins = 0;
    while (true) {
      int32_t v = state_.load(std::memory_order_relaxed);
      if (v >= 0 &&
          state_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
        return;
      }
      CpuRelax();
      if (++spins > 64) {
        CoopYield();
        spins = 0;
      }
    }
  }

  void UnlockShared() { state_.fetch_sub(1, std::memory_order_release); }

  void LockExclusive() {
    int spins = 0;
    while (true) {
      int32_t expected = 0;
      if (state_.compare_exchange_weak(expected, -1,
                                       std::memory_order_acquire)) {
        return;
      }
      CpuRelax();
      if (++spins > 64) {
        CoopYield();
        spins = 0;
      }
    }
  }

  void UnlockExclusive() { state_.store(0, std::memory_order_release); }

 private:
  /// -1 = writer, 0 = free, >0 = reader count.
  std::atomic<int32_t> state_{0};
};

}  // namespace dsmdb

#endif  // DSMDB_COMMON_SPIN_LATCH_H_
