#include "common/status.h"

namespace dsmdb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kStaleIncarnation:
      return "StaleIncarnation";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (msg_ != nullptr && !msg_->empty()) {
    out += ": ";
    out += *msg_;
  }
  return out;
}

}  // namespace dsmdb
