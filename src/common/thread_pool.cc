#include "common/thread_pool.h"

#include "check/checker.h"

namespace dsmdb {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Checker edge: work submitted before the task runs happened-before it;
  // everything tasks published is visible after WaitIdle. One pool-keyed
  // sync var over-approximates (it also chains unrelated tasks), which is
  // fine for the pool's loading/worker-loop uses.
  check::SyncPublish(check::kNsPool, reinterpret_cast<uint64_t>(this));
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
  check::SyncJoin(check::kNsPool, reinterpret_cast<uint64_t>(this));
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    check::SyncJoin(check::kNsPool, reinterpret_cast<uint64_t>(this));
    task();
    check::SyncPublish(check::kNsPool, reinterpret_cast<uint64_t>(this));
    {
      std::lock_guard<std::mutex> lk(mu_);
      active_--;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  // Checker fork/join edges: setup done by the caller happened-before every
  // branch, and every branch happened-before the code after the join.
  const uint64_t fork = check::ForkPoint();
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; i++) {
    threads.emplace_back([&fn, i, fork] {
      check::OnThreadStart(fork);
      fn(i);
      check::OnThreadFinish(fork);
    });
  }
  for (auto& t : threads) t.join();
  check::OnThreadsJoined(fork);
}

}  // namespace dsmdb
