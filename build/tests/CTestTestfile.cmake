# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_policy_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/compressed_cache_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_test[1]_include.cmake")
include("/root/repo/build/tests/txn_lock_test[1]_include.cmake")
include("/root/repo/build/tests/txn_protocols_test[1]_include.cmake")
include("/root/repo/build/tests/index_btree_test[1]_include.cmake")
include("/root/repo/build/tests/index_hash_test[1]_include.cmake")
include("/root/repo/build/tests/index_lsm_test[1]_include.cmake")
include("/root/repo/build/tests/index_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
