file(REMOVE_RECURSE
  "CMakeFiles/index_lsm_test.dir/index_lsm_test.cc.o"
  "CMakeFiles/index_lsm_test.dir/index_lsm_test.cc.o.d"
  "index_lsm_test"
  "index_lsm_test.pdb"
  "index_lsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_lsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
