
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/index_lsm_test.cc" "tests/CMakeFiles/index_lsm_test.dir/index_lsm_test.cc.o" "gcc" "tests/CMakeFiles/index_lsm_test.dir/index_lsm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dsmdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dsmdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/dsmdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/dsmdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/dsmdb_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/dsmdb_log.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dsmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/dsmdb_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dsmdb_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
