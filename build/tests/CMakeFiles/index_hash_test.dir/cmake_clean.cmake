file(REMOVE_RECURSE
  "CMakeFiles/index_hash_test.dir/index_hash_test.cc.o"
  "CMakeFiles/index_hash_test.dir/index_hash_test.cc.o.d"
  "index_hash_test"
  "index_hash_test.pdb"
  "index_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
