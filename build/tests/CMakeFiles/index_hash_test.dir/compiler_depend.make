# Empty compiler generated dependencies file for index_hash_test.
# This may be replaced when dependencies are built.
