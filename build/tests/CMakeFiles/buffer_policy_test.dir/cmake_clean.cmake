file(REMOVE_RECURSE
  "CMakeFiles/buffer_policy_test.dir/buffer_policy_test.cc.o"
  "CMakeFiles/buffer_policy_test.dir/buffer_policy_test.cc.o.d"
  "buffer_policy_test"
  "buffer_policy_test.pdb"
  "buffer_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
