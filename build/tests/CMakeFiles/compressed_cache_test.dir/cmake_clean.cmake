file(REMOVE_RECURSE
  "CMakeFiles/compressed_cache_test.dir/compressed_cache_test.cc.o"
  "CMakeFiles/compressed_cache_test.dir/compressed_cache_test.cc.o.d"
  "compressed_cache_test"
  "compressed_cache_test.pdb"
  "compressed_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
