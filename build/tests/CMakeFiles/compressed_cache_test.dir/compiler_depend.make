# Empty compiler generated dependencies file for compressed_cache_test.
# This may be replaced when dependencies are built.
