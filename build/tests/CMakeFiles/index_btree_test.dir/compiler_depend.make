# Empty compiler generated dependencies file for index_btree_test.
# This may be replaced when dependencies are built.
