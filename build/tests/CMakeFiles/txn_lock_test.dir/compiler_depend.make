# Empty compiler generated dependencies file for txn_lock_test.
# This may be replaced when dependencies are built.
