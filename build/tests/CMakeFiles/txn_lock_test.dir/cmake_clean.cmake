file(REMOVE_RECURSE
  "CMakeFiles/txn_lock_test.dir/txn_lock_test.cc.o"
  "CMakeFiles/txn_lock_test.dir/txn_lock_test.cc.o.d"
  "txn_lock_test"
  "txn_lock_test.pdb"
  "txn_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
