file(REMOVE_RECURSE
  "CMakeFiles/txn_protocols_test.dir/txn_protocols_test.cc.o"
  "CMakeFiles/txn_protocols_test.dir/txn_protocols_test.cc.o.d"
  "txn_protocols_test"
  "txn_protocols_test.pdb"
  "txn_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
