# Empty dependencies file for txn_protocols_test.
# This may be replaced when dependencies are built.
