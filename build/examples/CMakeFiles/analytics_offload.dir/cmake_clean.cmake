file(REMOVE_RECURSE
  "CMakeFiles/analytics_offload.dir/analytics_offload.cpp.o"
  "CMakeFiles/analytics_offload.dir/analytics_offload.cpp.o.d"
  "analytics_offload"
  "analytics_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
