# Empty compiler generated dependencies file for ycsb_cluster.
# This may be replaced when dependencies are built.
