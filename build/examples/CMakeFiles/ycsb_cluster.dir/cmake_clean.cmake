file(REMOVE_RECURSE
  "CMakeFiles/ycsb_cluster.dir/ycsb_cluster.cpp.o"
  "CMakeFiles/ycsb_cluster.dir/ycsb_cluster.cpp.o.d"
  "ycsb_cluster"
  "ycsb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
