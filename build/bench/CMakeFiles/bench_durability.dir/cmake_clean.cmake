file(REMOVE_RECURSE
  "CMakeFiles/bench_durability.dir/bench_durability.cc.o"
  "CMakeFiles/bench_durability.dir/bench_durability.cc.o.d"
  "bench_durability"
  "bench_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
