file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_ratio.dir/bench_memory_ratio.cc.o"
  "CMakeFiles/bench_memory_ratio.dir/bench_memory_ratio.cc.o.d"
  "bench_memory_ratio"
  "bench_memory_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
