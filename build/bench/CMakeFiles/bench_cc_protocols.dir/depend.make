# Empty dependencies file for bench_cc_protocols.
# This may be replaced when dependencies are built.
