file(REMOVE_RECURSE
  "CMakeFiles/bench_cc_protocols.dir/bench_cc_protocols.cc.o"
  "CMakeFiles/bench_cc_protocols.dir/bench_cc_protocols.cc.o.d"
  "bench_cc_protocols"
  "bench_cc_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cc_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
