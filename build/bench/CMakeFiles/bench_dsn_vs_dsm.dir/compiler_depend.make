# Empty compiler generated dependencies file for bench_dsn_vs_dsm.
# This may be replaced when dependencies are built.
