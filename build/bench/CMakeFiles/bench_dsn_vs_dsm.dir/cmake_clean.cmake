file(REMOVE_RECURSE
  "CMakeFiles/bench_dsn_vs_dsm.dir/bench_dsn_vs_dsm.cc.o"
  "CMakeFiles/bench_dsn_vs_dsm.dir/bench_dsn_vs_dsm.cc.o.d"
  "bench_dsn_vs_dsm"
  "bench_dsn_vs_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsn_vs_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
