file(REMOVE_RECURSE
  "CMakeFiles/bench_allocator.dir/bench_allocator.cc.o"
  "CMakeFiles/bench_allocator.dir/bench_allocator.cc.o.d"
  "bench_allocator"
  "bench_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
