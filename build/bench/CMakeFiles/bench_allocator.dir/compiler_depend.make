# Empty compiler generated dependencies file for bench_allocator.
# This may be replaced when dependencies are built.
