file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_vs_offload.dir/bench_cache_vs_offload.cc.o"
  "CMakeFiles/bench_cache_vs_offload.dir/bench_cache_vs_offload.cc.o.d"
  "bench_cache_vs_offload"
  "bench_cache_vs_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_vs_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
