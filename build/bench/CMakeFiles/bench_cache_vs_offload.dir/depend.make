# Empty dependencies file for bench_cache_vs_offload.
# This may be replaced when dependencies are built.
