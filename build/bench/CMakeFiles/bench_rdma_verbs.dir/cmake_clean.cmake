file(REMOVE_RECURSE
  "CMakeFiles/bench_rdma_verbs.dir/bench_rdma_verbs.cc.o"
  "CMakeFiles/bench_rdma_verbs.dir/bench_rdma_verbs.cc.o.d"
  "bench_rdma_verbs"
  "bench_rdma_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rdma_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
