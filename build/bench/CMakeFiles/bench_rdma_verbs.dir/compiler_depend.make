# Empty compiler generated dependencies file for bench_rdma_verbs.
# This may be replaced when dependencies are built.
