# Empty dependencies file for bench_buffer_policies.
# This may be replaced when dependencies are built.
