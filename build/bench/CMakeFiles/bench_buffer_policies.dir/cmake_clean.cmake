file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_policies.dir/bench_buffer_policies.cc.o"
  "CMakeFiles/bench_buffer_policies.dir/bench_buffer_policies.cc.o.d"
  "bench_buffer_policies"
  "bench_buffer_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
