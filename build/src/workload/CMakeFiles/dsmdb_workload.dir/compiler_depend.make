# Empty compiler generated dependencies file for dsmdb_workload.
# This may be replaced when dependencies are built.
