file(REMOVE_RECURSE
  "libdsmdb_workload.a"
)
