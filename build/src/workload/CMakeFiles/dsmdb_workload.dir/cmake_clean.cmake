file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_workload.dir/driver.cc.o"
  "CMakeFiles/dsmdb_workload.dir/driver.cc.o.d"
  "CMakeFiles/dsmdb_workload.dir/smallbank.cc.o"
  "CMakeFiles/dsmdb_workload.dir/smallbank.cc.o.d"
  "CMakeFiles/dsmdb_workload.dir/tpcc_lite.cc.o"
  "CMakeFiles/dsmdb_workload.dir/tpcc_lite.cc.o.d"
  "CMakeFiles/dsmdb_workload.dir/ycsb.cc.o"
  "CMakeFiles/dsmdb_workload.dir/ycsb.cc.o.d"
  "libdsmdb_workload.a"
  "libdsmdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
