file(REMOVE_RECURSE
  "libdsmdb_core.a"
)
