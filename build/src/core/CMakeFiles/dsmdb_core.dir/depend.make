# Empty dependencies file for dsmdb_core.
# This may be replaced when dependencies are built.
