file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_core.dir/compute_node.cc.o"
  "CMakeFiles/dsmdb_core.dir/compute_node.cc.o.d"
  "CMakeFiles/dsmdb_core.dir/dsmdb.cc.o"
  "CMakeFiles/dsmdb_core.dir/dsmdb.cc.o.d"
  "CMakeFiles/dsmdb_core.dir/recovery_manager.cc.o"
  "CMakeFiles/dsmdb_core.dir/recovery_manager.cc.o.d"
  "CMakeFiles/dsmdb_core.dir/sharding.cc.o"
  "CMakeFiles/dsmdb_core.dir/sharding.cc.o.d"
  "CMakeFiles/dsmdb_core.dir/table.cc.o"
  "CMakeFiles/dsmdb_core.dir/table.cc.o.d"
  "libdsmdb_core.a"
  "libdsmdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
