file(REMOVE_RECURSE
  "libdsmdb_buffer.a"
)
