
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/buffer/arc.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/arc.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/arc.cc.o.d"
  "/root/repo/src/buffer/buffer_pool.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/buffer_pool.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/buffer_pool.cc.o.d"
  "/root/repo/src/buffer/clock.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/clock.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/clock.cc.o.d"
  "/root/repo/src/buffer/coherence.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/coherence.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/coherence.cc.o.d"
  "/root/repo/src/buffer/compressed_cache.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/compressed_cache.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/compressed_cache.cc.o.d"
  "/root/repo/src/buffer/fifo.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/fifo.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/fifo.cc.o.d"
  "/root/repo/src/buffer/lru.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/lru.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/lru.cc.o.d"
  "/root/repo/src/buffer/lru_k.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/lru_k.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/lru_k.cc.o.d"
  "/root/repo/src/buffer/policy.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/policy.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/policy.cc.o.d"
  "/root/repo/src/buffer/two_q.cc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/two_q.cc.o" "gcc" "src/buffer/CMakeFiles/dsmdb_buffer.dir/two_q.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/dsmdb_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsmdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dsmdb_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
