file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_buffer.dir/arc.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/arc.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/buffer_pool.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/buffer_pool.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/clock.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/clock.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/coherence.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/coherence.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/compressed_cache.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/compressed_cache.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/fifo.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/fifo.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/lru.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/lru.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/lru_k.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/lru_k.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/policy.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/policy.cc.o.d"
  "CMakeFiles/dsmdb_buffer.dir/two_q.cc.o"
  "CMakeFiles/dsmdb_buffer.dir/two_q.cc.o.d"
  "libdsmdb_buffer.a"
  "libdsmdb_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
