# Empty dependencies file for dsmdb_buffer.
# This may be replaced when dependencies are built.
