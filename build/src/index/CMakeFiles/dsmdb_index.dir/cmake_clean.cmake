file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_index.dir/lsm_index.cc.o"
  "CMakeFiles/dsmdb_index.dir/lsm_index.cc.o.d"
  "CMakeFiles/dsmdb_index.dir/race_hash.cc.o"
  "CMakeFiles/dsmdb_index.dir/race_hash.cc.o.d"
  "CMakeFiles/dsmdb_index.dir/sherman_btree.cc.o"
  "CMakeFiles/dsmdb_index.dir/sherman_btree.cc.o.d"
  "libdsmdb_index.a"
  "libdsmdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
