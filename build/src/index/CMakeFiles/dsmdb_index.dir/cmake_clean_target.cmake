file(REMOVE_RECURSE
  "libdsmdb_index.a"
)
