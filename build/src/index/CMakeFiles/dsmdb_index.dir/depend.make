# Empty dependencies file for dsmdb_index.
# This may be replaced when dependencies are built.
