
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/lsm_index.cc" "src/index/CMakeFiles/dsmdb_index.dir/lsm_index.cc.o" "gcc" "src/index/CMakeFiles/dsmdb_index.dir/lsm_index.cc.o.d"
  "/root/repo/src/index/race_hash.cc" "src/index/CMakeFiles/dsmdb_index.dir/race_hash.cc.o" "gcc" "src/index/CMakeFiles/dsmdb_index.dir/race_hash.cc.o.d"
  "/root/repo/src/index/sherman_btree.cc" "src/index/CMakeFiles/dsmdb_index.dir/sherman_btree.cc.o" "gcc" "src/index/CMakeFiles/dsmdb_index.dir/sherman_btree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/dsmdb_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsmdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dsmdb_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
