
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/log_record.cc" "src/log/CMakeFiles/dsmdb_log.dir/log_record.cc.o" "gcc" "src/log/CMakeFiles/dsmdb_log.dir/log_record.cc.o.d"
  "/root/repo/src/log/recovery.cc" "src/log/CMakeFiles/dsmdb_log.dir/recovery.cc.o" "gcc" "src/log/CMakeFiles/dsmdb_log.dir/recovery.cc.o.d"
  "/root/repo/src/log/replicated_log.cc" "src/log/CMakeFiles/dsmdb_log.dir/replicated_log.cc.o" "gcc" "src/log/CMakeFiles/dsmdb_log.dir/replicated_log.cc.o.d"
  "/root/repo/src/log/wal.cc" "src/log/CMakeFiles/dsmdb_log.dir/wal.cc.o" "gcc" "src/log/CMakeFiles/dsmdb_log.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/dsmdb_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dsmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsmdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dsmdb_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
