file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_log.dir/log_record.cc.o"
  "CMakeFiles/dsmdb_log.dir/log_record.cc.o.d"
  "CMakeFiles/dsmdb_log.dir/recovery.cc.o"
  "CMakeFiles/dsmdb_log.dir/recovery.cc.o.d"
  "CMakeFiles/dsmdb_log.dir/replicated_log.cc.o"
  "CMakeFiles/dsmdb_log.dir/replicated_log.cc.o.d"
  "CMakeFiles/dsmdb_log.dir/wal.cc.o"
  "CMakeFiles/dsmdb_log.dir/wal.cc.o.d"
  "libdsmdb_log.a"
  "libdsmdb_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
