# Empty compiler generated dependencies file for dsmdb_log.
# This may be replaced when dependencies are built.
