file(REMOVE_RECURSE
  "libdsmdb_log.a"
)
