# Empty dependencies file for dsmdb_storage.
# This may be replaced when dependencies are built.
