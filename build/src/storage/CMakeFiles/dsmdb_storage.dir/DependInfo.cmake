
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/checkpoint.cc" "src/storage/CMakeFiles/dsmdb_storage.dir/checkpoint.cc.o" "gcc" "src/storage/CMakeFiles/dsmdb_storage.dir/checkpoint.cc.o.d"
  "/root/repo/src/storage/cloud_storage.cc" "src/storage/CMakeFiles/dsmdb_storage.dir/cloud_storage.cc.o" "gcc" "src/storage/CMakeFiles/dsmdb_storage.dir/cloud_storage.cc.o.d"
  "/root/repo/src/storage/erasure.cc" "src/storage/CMakeFiles/dsmdb_storage.dir/erasure.cc.o" "gcc" "src/storage/CMakeFiles/dsmdb_storage.dir/erasure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdma/CMakeFiles/dsmdb_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
