file(REMOVE_RECURSE
  "libdsmdb_storage.a"
)
