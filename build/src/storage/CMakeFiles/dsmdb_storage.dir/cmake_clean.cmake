file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_storage.dir/checkpoint.cc.o"
  "CMakeFiles/dsmdb_storage.dir/checkpoint.cc.o.d"
  "CMakeFiles/dsmdb_storage.dir/cloud_storage.cc.o"
  "CMakeFiles/dsmdb_storage.dir/cloud_storage.cc.o.d"
  "CMakeFiles/dsmdb_storage.dir/erasure.cc.o"
  "CMakeFiles/dsmdb_storage.dir/erasure.cc.o.d"
  "libdsmdb_storage.a"
  "libdsmdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
