file(REMOVE_RECURSE
  "libdsmdb_dsm.a"
)
