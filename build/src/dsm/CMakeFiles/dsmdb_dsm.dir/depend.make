# Empty dependencies file for dsmdb_dsm.
# This may be replaced when dependencies are built.
