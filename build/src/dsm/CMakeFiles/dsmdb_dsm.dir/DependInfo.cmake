
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/allocator.cc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/allocator.cc.o" "gcc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/allocator.cc.o.d"
  "/root/repo/src/dsm/cluster.cc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/cluster.cc.o" "gcc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/cluster.cc.o.d"
  "/root/repo/src/dsm/directory.cc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/directory.cc.o" "gcc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/directory.cc.o.d"
  "/root/repo/src/dsm/dsm_client.cc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/dsm_client.cc.o" "gcc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/dsm_client.cc.o.d"
  "/root/repo/src/dsm/memory_node.cc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/memory_node.cc.o" "gcc" "src/dsm/CMakeFiles/dsmdb_dsm.dir/memory_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdma/CMakeFiles/dsmdb_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
