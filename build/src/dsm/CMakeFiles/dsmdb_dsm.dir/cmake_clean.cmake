file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_dsm.dir/allocator.cc.o"
  "CMakeFiles/dsmdb_dsm.dir/allocator.cc.o.d"
  "CMakeFiles/dsmdb_dsm.dir/cluster.cc.o"
  "CMakeFiles/dsmdb_dsm.dir/cluster.cc.o.d"
  "CMakeFiles/dsmdb_dsm.dir/directory.cc.o"
  "CMakeFiles/dsmdb_dsm.dir/directory.cc.o.d"
  "CMakeFiles/dsmdb_dsm.dir/dsm_client.cc.o"
  "CMakeFiles/dsmdb_dsm.dir/dsm_client.cc.o.d"
  "CMakeFiles/dsmdb_dsm.dir/memory_node.cc.o"
  "CMakeFiles/dsmdb_dsm.dir/memory_node.cc.o.d"
  "libdsmdb_dsm.a"
  "libdsmdb_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
