file(REMOVE_RECURSE
  "libdsmdb_common.a"
)
