file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_common.dir/histogram.cc.o"
  "CMakeFiles/dsmdb_common.dir/histogram.cc.o.d"
  "CMakeFiles/dsmdb_common.dir/logging.cc.o"
  "CMakeFiles/dsmdb_common.dir/logging.cc.o.d"
  "CMakeFiles/dsmdb_common.dir/metrics.cc.o"
  "CMakeFiles/dsmdb_common.dir/metrics.cc.o.d"
  "CMakeFiles/dsmdb_common.dir/sim_clock.cc.o"
  "CMakeFiles/dsmdb_common.dir/sim_clock.cc.o.d"
  "CMakeFiles/dsmdb_common.dir/status.cc.o"
  "CMakeFiles/dsmdb_common.dir/status.cc.o.d"
  "CMakeFiles/dsmdb_common.dir/thread_pool.cc.o"
  "CMakeFiles/dsmdb_common.dir/thread_pool.cc.o.d"
  "libdsmdb_common.a"
  "libdsmdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
