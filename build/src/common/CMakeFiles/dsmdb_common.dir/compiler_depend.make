# Empty compiler generated dependencies file for dsmdb_common.
# This may be replaced when dependencies are built.
