# Empty compiler generated dependencies file for dsmdb_rdma.
# This may be replaced when dependencies are built.
