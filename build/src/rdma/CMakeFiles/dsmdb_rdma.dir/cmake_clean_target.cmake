file(REMOVE_RECURSE
  "libdsmdb_rdma.a"
)
