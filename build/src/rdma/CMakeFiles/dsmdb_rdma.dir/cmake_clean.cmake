file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_rdma.dir/fabric.cc.o"
  "CMakeFiles/dsmdb_rdma.dir/fabric.cc.o.d"
  "libdsmdb_rdma.a"
  "libdsmdb_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
