# Empty compiler generated dependencies file for dsmdb_txn.
# This may be replaced when dependencies are built.
