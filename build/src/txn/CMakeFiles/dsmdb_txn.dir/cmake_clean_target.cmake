file(REMOVE_RECURSE
  "libdsmdb_txn.a"
)
