
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/cc_factory.cc" "src/txn/CMakeFiles/dsmdb_txn.dir/cc_factory.cc.o" "gcc" "src/txn/CMakeFiles/dsmdb_txn.dir/cc_factory.cc.o.d"
  "/root/repo/src/txn/log_sink.cc" "src/txn/CMakeFiles/dsmdb_txn.dir/log_sink.cc.o" "gcc" "src/txn/CMakeFiles/dsmdb_txn.dir/log_sink.cc.o.d"
  "/root/repo/src/txn/mvcc.cc" "src/txn/CMakeFiles/dsmdb_txn.dir/mvcc.cc.o" "gcc" "src/txn/CMakeFiles/dsmdb_txn.dir/mvcc.cc.o.d"
  "/root/repo/src/txn/occ.cc" "src/txn/CMakeFiles/dsmdb_txn.dir/occ.cc.o" "gcc" "src/txn/CMakeFiles/dsmdb_txn.dir/occ.cc.o.d"
  "/root/repo/src/txn/rdma_lock.cc" "src/txn/CMakeFiles/dsmdb_txn.dir/rdma_lock.cc.o" "gcc" "src/txn/CMakeFiles/dsmdb_txn.dir/rdma_lock.cc.o.d"
  "/root/repo/src/txn/timestamp_oracle.cc" "src/txn/CMakeFiles/dsmdb_txn.dir/timestamp_oracle.cc.o" "gcc" "src/txn/CMakeFiles/dsmdb_txn.dir/timestamp_oracle.cc.o.d"
  "/root/repo/src/txn/tso.cc" "src/txn/CMakeFiles/dsmdb_txn.dir/tso.cc.o" "gcc" "src/txn/CMakeFiles/dsmdb_txn.dir/tso.cc.o.d"
  "/root/repo/src/txn/two_pl.cc" "src/txn/CMakeFiles/dsmdb_txn.dir/two_pl.cc.o" "gcc" "src/txn/CMakeFiles/dsmdb_txn.dir/two_pl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/buffer/CMakeFiles/dsmdb_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/dsmdb_log.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/dsmdb_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsmdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dsmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dsmdb_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
