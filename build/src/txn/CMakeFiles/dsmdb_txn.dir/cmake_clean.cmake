file(REMOVE_RECURSE
  "CMakeFiles/dsmdb_txn.dir/cc_factory.cc.o"
  "CMakeFiles/dsmdb_txn.dir/cc_factory.cc.o.d"
  "CMakeFiles/dsmdb_txn.dir/log_sink.cc.o"
  "CMakeFiles/dsmdb_txn.dir/log_sink.cc.o.d"
  "CMakeFiles/dsmdb_txn.dir/mvcc.cc.o"
  "CMakeFiles/dsmdb_txn.dir/mvcc.cc.o.d"
  "CMakeFiles/dsmdb_txn.dir/occ.cc.o"
  "CMakeFiles/dsmdb_txn.dir/occ.cc.o.d"
  "CMakeFiles/dsmdb_txn.dir/rdma_lock.cc.o"
  "CMakeFiles/dsmdb_txn.dir/rdma_lock.cc.o.d"
  "CMakeFiles/dsmdb_txn.dir/timestamp_oracle.cc.o"
  "CMakeFiles/dsmdb_txn.dir/timestamp_oracle.cc.o.d"
  "CMakeFiles/dsmdb_txn.dir/tso.cc.o"
  "CMakeFiles/dsmdb_txn.dir/tso.cc.o.d"
  "CMakeFiles/dsmdb_txn.dir/two_pl.cc.o"
  "CMakeFiles/dsmdb_txn.dir/two_pl.cc.o.d"
  "libdsmdb_txn.a"
  "libdsmdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
