// Experiment E11 (DESIGN.md): rethinking distributed commit,
// Challenge #5.
//
// "If DSM-DB uses a no-sharding architecture, there is no need for
// distributed commit ... if DSM-DB uses sharding, distributed commit may
// become relevant." We sweep the cross-shard fraction of SmallBank-style
// transfers and compare the no-sharding single-node commit path against
// the sharded path (local / delegated / 2PC), reporting throughput and
// the 2PC share.

#include <memory>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/dsmdb.h"
#include "obs/critical_path.h"
#include "workload/driver.h"
#include "workload/smallbank.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

/// (config label, breakdown) rows for the attribution table, in run order.
using BreakdownList =
    std::vector<std::pair<std::string, obs::LatencyBreakdown>>;

void RunOne(Table* out, obs::StatsExporter* exporter,
            BreakdownList* breakdowns, core::Architecture arch,
            double cross_fraction) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 64 << 20;

  core::DbOptions dopts;
  dopts.architecture = arch;
  dopts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  dopts.buffer.capacity_bytes = 512 * 4096;
  dopts.buffer.charge_policy_overhead = false;

  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes;
  for (int i = 0; i < 4; i++) nodes.push_back(db.AddComputeNode());
  const core::Table* t = *db.CreateTable("accounts", {64, 40'000});
  (void)db.FinishSetup();

  workload::SmallBankOptions sopts;
  sopts.num_accounts = 40'000;
  sopts.zipf_theta = 0.5;
  sopts.balance_fraction = 0.2;
  sopts.payment_fraction = 0.6;
  sopts.cross_shard_fraction = cross_fraction;
  sopts.num_shards = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = 2;
  dropts.txns_per_thread = 200;

  obs::ScopedAttribution attr;
  workload::DriverResult result = workload::RunDriver(
      nodes, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::SmallBankWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        if (wl_tid != tid) {
          wl = std::make_unique<workload::SmallBankWorkload>(sopts, tid + 1);
          wl_tid = tid;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });
  const obs::LatencyBreakdown bd = attr.Finish();
  const std::string label = Fmt(
      "%s cross=%.0f%%", std::string(core::ArchitectureName(arch)).c_str(),
      cross_fraction * 100);
  if (bd.txns > 0) {
    breakdowns->push_back({label, bd});
    exporter->AddBreakdown(label, bd);
  }

  result.ExportTo(exporter, "smallbank");
  uint64_t two_pc = 0, delegated = 0, local = 0;
  for (const auto& cn : db.compute_nodes()) {
    two_pc += cn->node_stats().two_pc_txns.load();
    delegated += cn->node_stats().delegated_txns.load();
    local += cn->node_stats().local_txns.load();
  }
  out->AddRow({
      std::string(core::ArchitectureName(arch)),
      Fmt("%.0f%%", cross_fraction * 100),
      Fmt("%.0f", result.throughput_tps),
      Fmt("%.1f%%", result.AbortRate() * 100),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(50))),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(99))),
      arch == core::Architecture::kCacheSharding
          ? Fmt("%llu/%llu/%llu", static_cast<unsigned long long>(local),
                static_cast<unsigned long long>(delegated),
                static_cast<unsigned long long>(two_pc))
          : "-",
  });
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  env.SetSeed(dsmdb::workload::DriverOptions{}.seed);
  Section(
      "E11: distributed commit — single-node commit (no sharding) vs "
      "2PC (sharded), SmallBank transfers, 4 compute nodes x 2 threads");
  Table table({"architecture", "cross-shard", "tput(txn/s)", "aborts",
               "p50(ns)", "p99(ns)", "local/deleg/2pc"});
  BreakdownList breakdowns;
  for (double cross : {0.0, 0.1, 0.3, 0.6, 1.0}) {
    RunOne(&table, &env.exporter(), &breakdowns,
           core::Architecture::kCacheSharding, cross);
  }
  // The no-sharding architectures never need distributed commit, at any
  // "cross-shard" fraction (the notion does not exist for them).
  RunOne(&table, &env.exporter(), &breakdowns,
         core::Architecture::kNoCacheNoSharding, 1.0);
  RunOne(&table, &env.exporter(), &breakdowns,
         core::Architecture::kCacheNoSharding, 1.0);
  table.Print();
  if (!breakdowns.empty()) {
    Section(
        "E11 attribution: where the commit-path time goes (mean ns per "
        "txn attempt, exclusive buckets)");
    Table attr_table({"config", "txns", "total(ns)", "cpu", "verb_wire",
                      "verb_post", "lock_wait", "handler_cpu", "queue_wait",
                      "log_device"});
    for (const auto& [label, bd] : breakdowns) {
      std::vector<std::string> row = {
          label, Fmt("%llu", static_cast<unsigned long long>(bd.txns)),
          Fmt("%.0f", bd.total_mean_ns)};
      for (size_t b = 0;
           b < static_cast<size_t>(obs::LatencyBucket::kCount); b++) {
        const double pct = bd.total_mean_ns == 0
                               ? 0
                               : 100.0 * bd.mean_ns[b] / bd.total_mean_ns;
        row.push_back(Fmt("%.0f (%.0f%%)", bd.mean_ns[b], pct));
      }
      attr_table.AddRow(std::move(row));
    }
    attr_table.Print();
  }
  std::printf(
      "Claim check (paper Challenge #5): with no sharding every "
      "transaction commits on a single compute node — no 2PC at all; "
      "under sharding, throughput and tail latency degrade as the "
      "cross-shard fraction grows (prepare+decide round trips and "
      "blocking), which is exactly the cost dynamic resharding (E10) "
      "tries to keep low.\n");
  return 0;
}
