// Systematic schedule exploration for the six CC protocols (DESIGN.md §12).
//
// Each explored schedule is one fully fresh world: cluster, table, manager,
// cooperative scheduler — driven by a seeded PCT policy (rt::PctPolicy) so
// the interleaving of the in-flight transactions is chosen adversarially
// rather than by timing. After the schedule finishes, the isolation oracle
// (check::History::Analyze) rebuilds the direct serialization graph from
// the recorded reads/installs and reports any cycle, lost update, or
// fractured read.
//
//   check_explore --protocol=all --schedules=200 --seeds=1,2          # sweep
//   check_explore --protocol=occ --faults=1                           # ± faults
//   check_explore --protocol=2pl-nowait --broken=2pl_early_release
//                 --expect-anomaly                                    # self-test
//
// Exit codes: 0 = clean (or expected anomaly found), 1 = anomaly in a stock
// protocol (or harness error), 2 = --expect-anomaly but the sweep stayed
// clean. In a plain build (no -DDSMDB_CHECK=ON) the binary prints a notice
// and exits 0 so script wiring stays unconditional.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/history.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "core/table.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "rdma/fault.h"
#include "rt/pct_policy.h"
#include "rt/scheduler.h"
#include "txn/cc_protocol.h"
#include "txn/data_accessor.h"

namespace dsmdb {
namespace {

struct ExploreOptions {
  std::string protocol = "all";
  uint32_t schedules = 200;
  std::vector<uint64_t> seeds = {1, 2};
  uint32_t depth = 3;          // PCT change points d.
  uint32_t tasks = 4;          // Concurrent transaction streams.
  uint32_t txns_per_task = 4;  // Transaction intents per stream.
  uint64_t keys = 4;           // Contention domain.
  bool faults = false;
  std::string broken = "none";
  bool expect_anomaly = false;
  bool verbose = false;
};

struct ProtocolSpec {
  const char* name;
  txn::CcProtocolKind kind;
  txn::TwoPlLockMode lock_mode;
  check::History::IsolationLevel level;
};

constexpr ProtocolSpec kProtocols[] = {
    {"2pl-nowait", txn::CcProtocolKind::kTwoPlNoWait,
     txn::TwoPlLockMode::kExclusiveOnly,
     check::History::IsolationLevel::kStrictSerializable},
    {"2pl-nowait-se", txn::CcProtocolKind::kTwoPlNoWait,
     txn::TwoPlLockMode::kSharedExclusive,
     check::History::IsolationLevel::kStrictSerializable},
    {"2pl-waitdie", txn::CcProtocolKind::kTwoPlWaitDie,
     txn::TwoPlLockMode::kExclusiveOnly,
     check::History::IsolationLevel::kStrictSerializable},
    {"occ", txn::CcProtocolKind::kOcc, txn::TwoPlLockMode::kExclusiveOnly,
     check::History::IsolationLevel::kStrictSerializable},
    {"tso", txn::CcProtocolKind::kTso, txn::TwoPlLockMode::kExclusiveOnly,
     check::History::IsolationLevel::kStrictSerializable},
    {"mvcc", txn::CcProtocolKind::kMvcc, txn::TwoPlLockMode::kExclusiveOnly,
     check::History::IsolationLevel::kSnapshotIsolation},
};

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Aggregated over one protocol's full sweep.
struct SweepResult {
  uint64_t schedules_run = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t indoubt = 0;
  uint64_t versions = 0;
  uint64_t write_skew_cycles = 0;
  uint64_t masked_by_indoubt = 0;
  uint64_t anomalies = 0;
  uint64_t checker_reports = 0;
  /// 1-based index of the first anomalous schedule (0 = none).
  uint64_t first_anomaly_at = 0;
};

#if defined(DSMDB_CHECK_ENABLED)

constexpr uint32_t kValueSize = 16;

std::string EncodedValue(uint64_t v) {
  std::string s(kValueSize, '\0');
  EncodeFixed64(s.data(), v);
  EncodeFixed64(s.data() + 8, v);
  return s;
}

/// One transaction stream: `txns_per_task` intents, each retried a bounded
/// number of times. Intents rotate through three shapes:
///  * increment — single-key RMW (lost-update bait);
///  * transfer  — two-key RMW (cycle bait, exercises multi-lock commits);
///  * skew      — read two keys, write only one (write-skew bait: two
///    siblings skewing the same pair in opposite directions form the
///    classic rw/rw cycle SI permits and serializable protocols must
///    refuse).
void RunStream(txn::CcManager* mgr, core::Table* table,
               const ExploreOptions& opt, uint64_t stream_seed) {
  Random64 rng(stream_seed);
  for (uint32_t t = 0; t < opt.txns_per_task; t++) {
    const uint32_t shape = opt.keys >= 2 ? t % 3 : 0;
    const uint64_t k1 = rng.Uniform(opt.keys);
    uint64_t k2 = rng.Uniform(opt.keys);
    if (k2 == k1) k2 = (k2 + 1) % opt.keys;
    const uint64_t lo = std::min(k1, k2), hi = std::max(k1, k2);
    for (int attempt = 0; attempt < 50; attempt++) {
      Result<std::unique_ptr<txn::Transaction>> txn = mgr->Begin();
      if (!txn.ok()) break;
      std::string a, b;
      Status s = (*txn)->Read(table->RefFor(shape == 0 ? k1 : lo), &a);
      if (!s.ok()) continue;
      if (shape == 0) {
        const uint64_t va = DecodeFixed64(a.data());
        s = (*txn)->Write(table->RefFor(k1), EncodedValue(va + 1));
        if (!s.ok()) continue;
      } else {
        s = (*txn)->Read(table->RefFor(hi), &b);
        if (!s.ok()) continue;
        const uint64_t va = DecodeFixed64(a.data());
        const uint64_t vb = DecodeFixed64(b.data());
        if (shape == 1) {
          s = (*txn)->Write(table->RefFor(lo), EncodedValue(va - 1));
          if (!s.ok()) continue;
          s = (*txn)->Write(table->RefFor(hi), EncodedValue(vb + 1));
          if (!s.ok()) continue;
        } else {
          // Write the end this stream's seed picks, conditioned on the
          // pair's sum — the bank-overdraft shape of write skew.
          const uint64_t target = (stream_seed & 1) != 0 ? lo : hi;
          s = (*txn)->Write(table->RefFor(target),
                            EncodedValue(va + vb > 1'000 ? va - 1 : va));
          if (!s.ok()) continue;
        }
      }
      if ((*txn)->Commit().ok()) break;
    }
  }
}

/// Runs ONE schedule in a fresh world and returns its oracle analysis.
check::History::Analysis RunSchedule(const ProtocolSpec& spec,
                                     const ExploreOptions& opt,
                                     uint64_t schedule_seed,
                                     uint64_t* steps_estimate) {
  SimClock::Reset();
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 16 << 20;
  dsm::Cluster cluster(copts);
  dsm::DsmClient client(&cluster, cluster.AddComputeNode("cn0"));
  txn::DirectAccessor accessor(&client);
  txn::TimestampOracle oracle(&client, txn::OracleMode::kRdmaFaa,
                              txn::TimestampOracle::DefaultCounter());
  core::Table table =
      *core::Table::Create(&client, 0, {kValueSize, opt.keys});
  txn::NoopLogSink sink;

  txn::CcOptions cc;
  cc.protocol = spec.kind;
  cc.lock_mode = spec.lock_mode;
  cc.debug_break.release_read_locks_early = opt.broken == "2pl_early_release";
  cc.debug_break.skip_version_recheck = opt.broken == "occ_skip_recheck";
  std::unique_ptr<txn::CcManager> mgr =
      txn::MakeCcManager(cc, &client, &accessor, &oracle, &sink);

  // The history must observe the seeding writes: version tags are absolute
  // (OCC's install count, TSO's wts, MVCC's commit_ts), so a schedule
  // reader observing a seeded version needs its install on record or the
  // oracle would misreport a fractured read.
  check::History::Reset();
  check::History::SetEnabled(true);

  // Seed every key (serially, fault-free) so the initial state is real.
  for (uint64_t k = 0; k < opt.keys; k++) {
    auto txn = std::move(*mgr->Begin());
    (void)txn->Write(table.RefFor(k), EncodedValue(1'000));
    (void)txn->Commit();
  }

  std::unique_ptr<rdma::FaultInjector> injector;
  if (opt.faults) {
    rdma::FaultOptions fopts;
    fopts.seed = Mix64(schedule_seed ^ 0xFA017ULL);
    fopts.verb_loss_prob = 0.002;
    fopts.lost_verb_timeout_ns = 5'000;
    injector = std::make_unique<rdma::FaultInjector>(std::move(fopts));
    cluster.fabric().SetFaultInjector(injector.get());
  }

  rt::PctPolicy::Options popts;
  popts.seed = schedule_seed;
  popts.change_points = opt.depth;
  popts.steps_estimate = *steps_estimate == 0 ? 500 : *steps_estimate;
  rt::PctPolicy policy(popts);

  rt::Scheduler sched;
  sched.SetPolicy(&policy);
  sched.Run([&] {
    for (uint32_t i = 0; i < opt.tasks; i++) {
      const uint64_t stream_seed = Mix64(schedule_seed ^ (i + 1));
      sched.Spawn([&, stream_seed] {
        RunStream(mgr.get(), &table, opt, stream_seed);
      });
    }
  });
  SimClock::AdvanceTo(sched.FinalSimNs());

  check::History::SetEnabled(false);
  // Feed the observed step count back so the next schedule's change points
  // land inside the actual run (PCT's k parameter).
  if (policy.steps() > 0) *steps_estimate = policy.steps();
  check::History::Analysis a = check::History::Analyze(spec.level);
  if (opt.faults) cluster.fabric().SetFaultInjector(nullptr);
  return a;
}

SweepResult RunSweep(const ProtocolSpec& spec, const ExploreOptions& opt) {
  SweepResult r;
  uint64_t steps_estimate = 0;
  for (uint64_t seed : opt.seeds) {
    for (uint32_t i = 0; i < opt.schedules; i++) {
      const size_t reports_before = check::Checker::ReportCount();
      const uint64_t schedule_seed = Mix64(seed * 0x10001ULL + i);
      check::History::Analysis a =
          RunSchedule(spec, opt, schedule_seed, &steps_estimate);
      r.schedules_run++;
      r.committed += a.txns_committed;
      r.aborted += a.txns_aborted;
      r.indoubt += a.txns_indoubt;
      r.versions += a.versions_installed;
      r.write_skew_cycles += a.write_skew_cycles;
      r.masked_by_indoubt += a.masked_by_indoubt;
      r.checker_reports += check::Checker::ReportCount() - reports_before;
      if (!a.Clean()) {
        r.anomalies += a.anomalies.size();
        if (r.first_anomaly_at == 0) r.first_anomaly_at = r.schedules_run;
        if (opt.verbose || !opt.expect_anomaly) {
          for (const check::Anomaly& an : a.anomalies) {
            std::fprintf(stderr,
                         "[%s seed=%" PRIu64 " schedule=%u]\n%s\n",
                         spec.name, seed, i, an.message.c_str());
          }
        }
        if (opt.expect_anomaly) return r;  // found what the self-test wants
      }
    }
  }
  return r;
}

#endif  // DSMDB_CHECK_ENABLED

int Usage() {
  std::fprintf(
      stderr,
      "usage: check_explore [--protocol=all|2pl-nowait|2pl-nowait-se|"
      "2pl-waitdie|occ|tso|mvcc]\n"
      "  [--schedules=N] [--seeds=a,b,...] [--depth=D] [--tasks=N]\n"
      "  [--txns=N] [--keys=N] [--faults=0|1]\n"
      "  [--broken=none|2pl_early_release|occ_skip_recheck]\n"
      "  [--expect-anomaly] [--verbose]\n");
  return 1;
}

int Main(int argc, char** argv) {
  ExploreOptions opt;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--protocol=", 0) == 0) {
      opt.protocol = val("--protocol=");
    } else if (arg.rfind("--schedules=", 0) == 0) {
      opt.schedules = std::strtoul(val("--schedules="), nullptr, 10);
    } else if (arg.rfind("--seeds=", 0) == 0) {
      opt.seeds.clear();
      for (const char* p = val("--seeds="); *p != '\0';) {
        char* end = nullptr;
        opt.seeds.push_back(std::strtoull(p, &end, 10));
        p = *end == ',' ? end + 1 : end;
      }
    } else if (arg.rfind("--depth=", 0) == 0) {
      opt.depth = std::strtoul(val("--depth="), nullptr, 10);
    } else if (arg.rfind("--tasks=", 0) == 0) {
      opt.tasks = std::strtoul(val("--tasks="), nullptr, 10);
    } else if (arg.rfind("--txns=", 0) == 0) {
      opt.txns_per_task = std::strtoul(val("--txns="), nullptr, 10);
    } else if (arg.rfind("--keys=", 0) == 0) {
      opt.keys = std::strtoull(val("--keys="), nullptr, 10);
    } else if (arg.rfind("--faults=", 0) == 0) {
      opt.faults = std::strtoul(val("--faults="), nullptr, 10) != 0;
    } else if (arg.rfind("--broken=", 0) == 0) {
      opt.broken = val("--broken=");
    } else if (arg == "--expect-anomaly") {
      opt.expect_anomaly = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      return Usage();
    }
  }
  if (opt.schedules == 0 || opt.seeds.empty() || opt.tasks == 0 ||
      opt.keys == 0) {
    return Usage();
  }
  if (opt.broken != "none" && opt.broken != "2pl_early_release" &&
      opt.broken != "occ_skip_recheck") {
    return Usage();
  }

  if (!check::History::Compiled()) {
    std::printf(
        "check_explore: built without -DDSMDB_CHECK=ON; nothing to do\n");
    return 0;
  }

#if defined(DSMDB_CHECK_ENABLED)
  // Race reports (sim-TSan) are collected, not fatal: the broken protocol
  // variants are *supposed* to misbehave, and the oracle is the detector
  // under test here. The per-protocol report delta still lands in the
  // summary so a stock-protocol race cannot pass silently.
  check::Checker::SetAbortOnReport(false);

  std::vector<const ProtocolSpec*> selected;
  for (const ProtocolSpec& spec : kProtocols) {
    if (opt.protocol == "all" || opt.protocol == spec.name) {
      selected.push_back(&spec);
    }
  }
  if (selected.empty()) return Usage();

  std::printf(
      "# schedules=%u x seeds=%zu, pct depth=%u, tasks=%u x txns=%u, "
      "keys=%" PRIu64 ", faults=%d, broken=%s\n",
      opt.schedules, opt.seeds.size(), opt.depth, opt.tasks,
      opt.txns_per_task, opt.keys, opt.faults ? 1 : 0, opt.broken.c_str());
  std::printf("%-14s %9s %9s %8s %8s %9s %10s %7s %9s %11s\n", "protocol",
              "schedules", "committed", "aborted", "indoubt", "versions",
              "write_skew", "masked", "anomalies", "detected_at");

  int rc = 0;
  for (const ProtocolSpec* spec : selected) {
    SweepResult r = RunSweep(*spec, opt);
    char detected[24] = "-";
    if (r.first_anomaly_at != 0) {
      std::snprintf(detected, sizeof(detected), "#%" PRIu64,
                    r.first_anomaly_at);
    }
    std::printf("%-14s %9" PRIu64 " %9" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %9" PRIu64 " %10" PRIu64 " %7" PRIu64 " %9" PRIu64
                " %11s\n",
                spec->name, r.schedules_run, r.committed, r.aborted,
                r.indoubt, r.versions, r.write_skew_cycles,
                r.masked_by_indoubt, r.anomalies, detected);
    if (opt.expect_anomaly) {
      if (r.anomalies == 0) {
        std::fprintf(stderr,
                     "FAIL: %s with --broken=%s stayed clean over %" PRIu64
                     " schedules\n",
                     spec->name, opt.broken.c_str(), r.schedules_run);
        rc = 2;
      }
    } else if (r.anomalies != 0 || r.checker_reports != 0) {
      if (r.checker_reports != 0) {
        std::fprintf(stderr, "FAIL: %s had %" PRIu64 " race report(s)\n",
                     spec->name, r.checker_reports);
      }
      rc = 1;
    }
  }
  std::printf(rc == 0 ? "EXPLORE PASS\n" : "EXPLORE FAIL\n");
  return rc;
#else
  return 0;
#endif
}

}  // namespace
}  // namespace dsmdb

int main(int argc, char** argv) { return dsmdb::Main(argc, argv); }
