// Experiment E4 (DESIGN.md): "A systematic evaluation of different
// concurrency control protocols over RDMA is necessary" (Challenge #6).
//
// Compares 2PL NO_WAIT (1-RTT exclusive spinlock), 2PL NO_WAIT with the
// 2-RTT shared-exclusive lock, 2PL WAIT_DIE, OCC, TSO, and MVCC-SI under
// YCSB at low/high contention and read-heavy/write-heavy mixes. Reports
// simulated throughput, abort rate, and RDMA round trips per committed
// transaction — the currency of RDMA CC design.

#include <memory>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/dsmdb.h"
#include "obs/critical_path.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

struct ProtocolCfg {
  std::string name;
  std::string key;  ///< Short stable key for the attribution aggregation.
  txn::CcOptions cc;
};

std::vector<ProtocolCfg> Protocols() {
  std::vector<ProtocolCfg> out;
  txn::CcOptions cc;
  cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  out.push_back({"2pl-nowait (1-RTT excl lock)", "2pl-nowait", cc});
  cc.lock_mode = txn::TwoPlLockMode::kSharedExclusive;
  out.push_back({"2pl-nowait (2-RTT SE lock)", "2pl-nowait-se", cc});
  cc = txn::CcOptions{};
  cc.protocol = txn::CcProtocolKind::kTwoPlWaitDie;
  out.push_back({"2pl-waitdie", "2pl-waitdie", cc});
  cc = txn::CcOptions{};
  cc.protocol = txn::CcProtocolKind::kOcc;
  out.push_back({"occ (batched validation)", "occ", cc});
  cc = txn::CcOptions{};
  cc.protocol = txn::CcProtocolKind::kTso;
  out.push_back({"tso (FAA timestamps)", "tso", cc});
  cc = txn::CcOptions{};
  cc.protocol = txn::CcProtocolKind::kMvcc;
  out.push_back({"mvcc-si", "mvcc-si", cc});
  return out;
}

/// Per-protocol "where the time goes" accumulation, in run order.
using BreakdownList =
    std::vector<std::pair<std::string, obs::LatencyBreakdown>>;

void MergeBreakdown(BreakdownList* list, const std::string& key,
                    const obs::LatencyBreakdown& bd) {
  for (auto& entry : *list) {
    if (entry.first == key) {
      entry.second.Merge(bd);
      return;
    }
  }
  list->push_back({key, bd});
}

void PrintBreakdowns(const BreakdownList& list) {
  Table table({"protocol", "txns", "total(ns)", "cpu", "verb_wire",
               "verb_post", "lock_wait", "handler_cpu", "queue_wait",
               "log_device"});
  for (const auto& [key, bd] : list) {
    std::vector<std::string> row = {key,
                                    Fmt("%llu", static_cast<unsigned long long>(
                                                    bd.txns)),
                                    Fmt("%.0f", bd.total_mean_ns)};
    for (size_t b = 0; b < static_cast<size_t>(obs::LatencyBucket::kCount);
         b++) {
      const double mean = bd.mean_ns[b];
      const double pct =
          bd.total_mean_ns == 0 ? 0 : 100.0 * mean / bd.total_mean_ns;
      row.push_back(Fmt("%.0f (%.0f%%)", mean, pct));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

void RunOne(Table* out, obs::StatsExporter* exporter,
            BreakdownList* breakdowns, const ProtocolCfg& proto,
            double write_fraction, double zipf) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 128 << 20;

  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kNoCacheNoSharding;
  dopts.cc = proto.cc;

  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes = {db.AddComputeNode(),
                                           db.AddComputeNode()};
  const core::Table* t = *db.CreateTable("ycsb", {64, 8'192});
  (void)db.FinishSetup();

  workload::YcsbOptions yopts;
  yopts.num_keys = 8'192;
  yopts.write_fraction = write_fraction;
  yopts.zipf_theta = zipf;
  yopts.ops_per_txn = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = 4;
  dropts.txns_per_thread = 150;

  db.cluster().fabric().ResetStats();
  obs::ScopedAttribution attr;
  workload::DriverResult result = workload::RunDriver(
      nodes, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        if (wl_tid != tid) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
          wl_tid = tid;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });
  const obs::LatencyBreakdown bd = attr.Finish();
  if (bd.txns > 0) {
    MergeBreakdown(breakdowns, proto.key, bd);
    exporter->AddBreakdown(proto.key, bd);
  }

  result.ExportTo(exporter, "ycsb");
  const auto verbs = db.cluster().fabric().TotalStats();
  out->AddRow({
      proto.name,
      Fmt("%.2f", write_fraction),
      Fmt("%.2f", zipf),
      Fmt("%.0f", result.throughput_tps),
      Fmt("%.1f%%", result.AbortRate() * 100),
      Fmt("%.1f", static_cast<double>(verbs.RoundTrips()) /
                      static_cast<double>(std::max<uint64_t>(
                          1, result.committed))),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(50))),
  });
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section(
      "E4: CC protocols over RDMA (2 nodes x 4 threads, YCSB 4 ops/txn, "
      "8k keys; simulated time)");
  Table table({"protocol", "write_frac", "zipf", "tput(txn/s)", "aborts",
               "rtts/txn", "p50(ns)"});
  BreakdownList breakdowns;
  for (double zipf : {0.0, 0.9}) {
    for (double wf : {0.05, 0.5}) {
      for (const ProtocolCfg& proto : Protocols()) {
        RunOne(&table, &env.exporter(), &breakdowns, proto, wf, zipf);
      }
    }
  }
  table.Print();
  if (!breakdowns.empty()) {
    Section(
        "E4 attribution: where the commit-path time goes (mean ns per txn "
        "attempt, exclusive buckets, all mixes pooled)");
    PrintBreakdowns(breakdowns);
  }
  std::printf(
      "Claim check (paper Challenge #6): the SE lock's extra round trips "
      "only pay off for read-heavy, high-contention mixes (reader "
      "sharing); under low contention the 1-RTT spinlock wins. OCC's "
      "batched validation keeps rtts/txn low; TSO pays one FAA per txn "
      "for timestamps; MVCC reads never abort but writes cost version-"
      "chain installs.\n");
  return 0;
}
