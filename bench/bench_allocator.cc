// Experiment E12 (DESIGN.md): DSM memory-allocation APIs, Challenge #1.
//
// "To allocate memory efficiently and reduce memory fragmentation, DSM-DB
// can allocate a giant continuous memory space and keep track of memory
// usage in user space [CoRM, 57]."
//
// Compares three allocator designs on a size-mixed alloc/free trace:
//  * bump allocator (no free list — never reuses; fragmentation ~ leak),
//  * extent allocator (first fit + coalescing),
//  * slab-over-extent (size classes for small objects).
// Also measures the RPC cost of remote allocation vs. arena batching.

#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "dsm/allocator.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "txn/mvcc.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

constexpr uint64_t kCapacity = 256 << 20;
constexpr int kOps = 60'000;

/// Size-mixed OLTP-ish trace: mostly record-sized, occasional big extents.
uint64_t TraceSize(Random64& rng) {
  const double p = rng.NextDouble();
  if (p < 0.70) return 64 + rng.Uniform(192);        // records
  if (p < 0.95) return 1'024 + rng.Uniform(3'072);   // pages
  return 64 * 1024 + rng.Uniform(192 * 1024);        // extents
}

struct TraceResult {
  uint64_t failed = 0;
  double frag = 0;
  uint64_t live_bytes = 0;
  uint64_t reserved_bytes = 0;
};

template <typename AllocFn, typename FreeFn, typename StatsFn>
TraceResult RunTrace(const AllocFn& alloc, const FreeFn& free_fn,
                     const StatsFn& stats) {
  Random64 rng(31);
  std::vector<std::pair<uint64_t, uint64_t>> live;  // (offset, size)
  TraceResult result;
  for (int i = 0; i < kOps; i++) {
    if (!live.empty() && rng.Bernoulli(0.45)) {
      const size_t idx = rng.Uniform(live.size());
      free_fn(live[idx].first, live[idx].second);
      live[idx] = live.back();
      live.pop_back();
    } else {
      const uint64_t size = TraceSize(rng);
      uint64_t offset = 0;
      if (alloc(size, &offset)) {
        live.emplace_back(offset, size);
      } else {
        result.failed++;
      }
    }
  }
  const dsm::AllocatorStats s = stats();
  result.frag = s.external_fragmentation;
  result.live_bytes = s.allocated_bytes;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section("E12a: allocator designs on a size-mixed alloc/free trace");
  Table a({"allocator", "failed allocs", "ext. fragmentation",
           "live bytes"});

  {  // Bump allocator: allocation is an offset increment; frees are lost.
    uint64_t next = 64;
    uint64_t failed = 0, freed_bytes = 0, live = 0;
    Random64 rng(31);
    std::vector<std::pair<uint64_t, uint64_t>> live_v;
    for (int i = 0; i < kOps; i++) {
      if (!live_v.empty() && rng.Bernoulli(0.45)) {
        const size_t idx = rng.Uniform(live_v.size());
        freed_bytes += live_v[idx].second;
        live -= live_v[idx].second;
        live_v[idx] = live_v.back();
        live_v.pop_back();
      } else {
        const uint64_t size = TraceSize(rng);
        if (next + size > kCapacity) {
          failed++;
        } else {
          live_v.emplace_back(next, size);
          next += size;
          live += size;
        }
      }
    }
    // Bump "fragmentation": freed bytes that can never be reused.
    a.AddRow({"bump (no reuse)",
              Fmt("%llu", static_cast<unsigned long long>(failed)),
              Fmt("%.1f%% (unreclaimable)",
                  100.0 * static_cast<double>(freed_bytes) /
                      static_cast<double>(next)),
              Fmt("%llu", static_cast<unsigned long long>(live))});
  }
  {  // Extent allocator.
    dsm::ExtentAllocator extents(kCapacity);
    TraceResult r = RunTrace(
        [&](uint64_t size, uint64_t* off) {
          Result<uint64_t> a2 = extents.Alloc(size);
          if (!a2.ok()) return false;
          *off = *a2;
          return true;
        },
        [&](uint64_t off, uint64_t) { (void)extents.Free(off); },
        [&] { return extents.GetStats(); });
    a.AddRow({"extent (first fit + coalesce)",
              Fmt("%llu", static_cast<unsigned long long>(r.failed)),
              Fmt("%.1f%%", r.frag * 100),
              Fmt("%llu", static_cast<unsigned long long>(r.live_bytes))});
  }
  {  // Slab over extent.
    dsm::ExtentAllocator extents(kCapacity);
    dsm::SlabAllocator slab(&extents);
    TraceResult r = RunTrace(
        [&](uint64_t size, uint64_t* off) {
          Result<uint64_t> a2 = slab.Alloc(size);
          if (!a2.ok()) return false;
          *off = *a2;
          return true;
        },
        [&](uint64_t off, uint64_t size) { (void)slab.Free(off, size); },
        [&] { return slab.GetStats(); });
    a.AddRow({"slab over extent",
              Fmt("%llu", static_cast<unsigned long long>(r.failed)),
              Fmt("%.1f%%", r.frag * 100),
              Fmt("%llu", static_cast<unsigned long long>(r.live_bytes))});
  }
  a.Print();

  Section("E12b: remote allocation cost — per-object RPC vs arena batching");
  Table b({"strategy", "sim ns/alloc"});
  {
    const int n = 3'000;
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 128 << 20;
    {
      // Fresh cluster per strategy: virtual-time CPU horizons are
      // monotonic, so reusing one would bill the second strategy for the
      // first one's queueing.
      dsm::Cluster cluster(copts);
      dsm::DsmClient client(&cluster, cluster.AddComputeNode("bench"));
      SimClock::Reset();
      for (int i = 0; i < n; i++) {
        (void)client.Alloc(128);
      }
      b.AddRow({"kSvcAlloc RPC per object",
                Fmt("%.0f", static_cast<double>(SimClock::Now()) / n)});
    }
    {
      dsm::Cluster cluster(copts);
      dsm::DsmClient client(&cluster, cluster.AddComputeNode("bench"));
      txn::VersionArena arena(&client, 256 * 1024);
      SimClock::Reset();
      for (int i = 0; i < n; i++) {
        (void)arena.Alloc(128);
      }
      b.AddRow({"arena (256 KiB chunks)",
                Fmt("%.0f", static_cast<double>(SimClock::Now()) / n)});
    }
  }
  b.Print();

  std::printf(
      "Claim check (paper Challenge #1 / CoRM [57]): user-space extent "
      "management with coalescing keeps external fragmentation low where "
      "a bump allocator leaks every freed byte; slabs remove small-object "
      "fragmentation entirely; and batching allocations into arenas "
      "amortizes the control-plane RPC to near zero.\n");
  return 0;
}
