// Experiment E8 (DESIGN.md): RDMA-conscious index design, Challenges
// #10–#11.
//
// Compares:
//  * Sherman-style B+tree with internal-node caching (the paper's cited
//    state of the art [62]),
//  * the same tree with the cache disabled (naive remote B+tree),
//  * RACE-style one-sided hash index [76],
//  * a two-sided RPC index (ops executed by the memory node's wimpy CPU).
//
// Reports simulated ns/op and RDMA round trips per op for lookups and
// inserts, plus local memory consumed by caching, and concurrent
// throughput.

#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "index/lsm_index.h"
#include "index/race_hash.h"
#include "index/sherman_btree.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

constexpr uint64_t kKeys = 40'000;
constexpr uint32_t kRpcGetFn = 5;
constexpr uint32_t kRpcPutFn = 6;

struct Env {
  Env() {
    dsm::ClusterOptions opts;
    opts.num_memory_nodes = 2;
    opts.memory_node.capacity_bytes = 256 << 20;
    cluster = std::make_unique<dsm::Cluster>(opts);
    client = std::make_unique<dsm::DsmClient>(
        cluster.get(), cluster->AddComputeNode("bench"));
  }
  std::unique_ptr<dsm::Cluster> cluster;
  std::unique_ptr<dsm::DsmClient> client;
};

struct OpCosts {
  double lookup_ns;
  double lookup_rtts;
  double insert_ns;
  double insert_rtts;
};

template <typename LookupFn, typename InsertFn>
OpCosts Measure(Env& env, const LookupFn& lookup, const InsertFn& insert,
                uint64_t insert_base) {
  Random64 rng(4242);
  OpCosts costs{};
  const int kOps = 3'000;

  env.cluster->fabric().ResetStats();
  SimClock::Reset();
  for (int i = 0; i < kOps; i++) {
    lookup(rng.Uniform(kKeys) + 1);
  }
  costs.lookup_ns = static_cast<double>(SimClock::Now()) / kOps;
  costs.lookup_rtts =
      static_cast<double>(env.cluster->fabric().TotalStats().RoundTrips()) /
      kOps;

  env.cluster->fabric().ResetStats();
  SimClock::Reset();
  for (int i = 0; i < kOps; i++) {
    insert(insert_base + i + 1);
  }
  costs.insert_ns = static_cast<double>(SimClock::Now()) / kOps;
  costs.insert_rtts =
      static_cast<double>(env.cluster->fabric().TotalStats().RoundTrips()) /
      kOps;
  return costs;
}

void AddRow(Table* t, const std::string& name, const OpCosts& c,
            const std::string& local_mem) {
  t->AddRow({name, Fmt("%.0f", c.lookup_ns), Fmt("%.1f", c.lookup_rtts),
             Fmt("%.0f", c.insert_ns), Fmt("%.1f", c.insert_rtts),
             local_mem});
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section("E8a: index designs, 40k keys preloaded (simulated time)");
  Table a({"index", "lookup ns", "lookup rtts", "insert ns",
           "insert rtts", "local mem"});

  {  // Sherman-style B+tree, internal nodes cached.
    Env env;
    index::BTreeOptions opts;
    opts.cache_internal_nodes = true;
    dsm::GlobalAddress meta = *index::ShermanBTree::Create(env.client.get());
    index::ShermanBTree tree(env.client.get(), meta, opts);
    for (uint64_t k = 1; k <= kKeys; k++) (void)tree.Insert(k, k);
    // Warm the cache.
    Random64 warm(7);
    for (int i = 0; i < 2'000; i++) {
      (void)tree.Search(warm.Uniform(kKeys) + 1);
    }
    const OpCosts c = Measure(
        env, [&](uint64_t k) { (void)tree.Search(k); },
        [&](uint64_t k) { (void)tree.Insert(k, k); }, kKeys);
    AddRow(&a, "sherman b+tree (cached internals)", c,
           Fmt("%zu nodes (%.1f MB)", tree.CachedNodes(),
               tree.CachedNodes() * sizeof(index::BTreeNode) / 1e6));
  }
  {  // Naive remote B+tree: no cache, one RTT per level.
    Env env;
    index::BTreeOptions opts;
    opts.cache_internal_nodes = false;
    dsm::GlobalAddress meta = *index::ShermanBTree::Create(env.client.get());
    index::ShermanBTree tree(env.client.get(), meta, opts);
    for (uint64_t k = 1; k <= kKeys; k++) (void)tree.Insert(k, k);
    const OpCosts c = Measure(
        env, [&](uint64_t k) { (void)tree.Search(k); },
        [&](uint64_t k) { (void)tree.Insert(k, k); }, kKeys);
    AddRow(&a, "naive remote b+tree (no cache)", c, "0");
  }
  {  // RACE-style hash.
    Env env;
    dsm::GlobalAddress base = *index::RaceHash::Create(env.client.get(),
                                                       2 * kKeys);
    index::RaceHash hash(env.client.get(), base, 2 * kKeys);
    for (uint64_t k = 1; k <= kKeys; k++) (void)hash.Insert(k, k);
    const OpCosts c = Measure(
        env, [&](uint64_t k) { (void)hash.Get(k); },
        [&](uint64_t k) { (void)hash.Insert(k, k); }, kKeys);
    AddRow(&a, "race hash (one-sided, 2-choice)", c, "0");
  }
  {  // Two-sided RPC index: memory node executes a local hash op.
    Env env;
    auto* table = new std::unordered_map<uint64_t, uint64_t>();
    for (uint64_t k = 1; k <= kKeys; k++) (*table)[k] = k;
    env.cluster->memory_node(0)->RegisterOffload(
        kRpcGetFn,
        [table](dsm::MemoryNode&, std::string_view arg,
                std::string* out) -> uint64_t {
          auto it = table->find(DecodeFixed64(arg.data()));
          PutFixed64(out, it == table->end() ? 0 : it->second);
          return 400;  // hash probe on the wimpy core
        });
    env.cluster->memory_node(0)->RegisterOffload(
        kRpcPutFn,
        [table](dsm::MemoryNode&, std::string_view arg,
                std::string* out) -> uint64_t {
          (void)out;
          (*table)[DecodeFixed64(arg.data())] =
              DecodeFixed64(arg.data() + 8);
          return 500;
        });
    const OpCosts c = Measure(
        env,
        [&](uint64_t k) {
          std::string arg, out;
          PutFixed64(&arg, k);
          (void)env.client->Offload(0, kRpcGetFn, arg, &out);
        },
        [&](uint64_t k) {
          std::string arg, out;
          PutFixed64(&arg, k);
          PutFixed64(&arg, k);
          (void)env.client->Offload(0, kRpcPutFn, arg, &out);
        },
        kKeys);
    AddRow(&a, "two-sided rpc index", c, "0");
  }
  a.Print();

  Section("E8b: concurrent index ops (4 threads, 50% lookup / 50% insert)");
  Table b({"index", "ops/s (simulated)"});
  for (bool cached : {true, false}) {
    Env env;
    index::BTreeOptions opts;
    opts.cache_internal_nodes = cached;
    dsm::GlobalAddress meta = *index::ShermanBTree::Create(env.client.get());
    index::ShermanBTree tree(env.client.get(), meta, opts);
    for (uint64_t k = 1; k <= kKeys / 4; k++) (void)tree.Insert(k, k);
    std::vector<uint64_t> ns(4);
    ParallelFor(4, [&](size_t t) {
      SimClock::Reset();
      Random64 rng(t + 1);
      for (int i = 0; i < 1'500; i++) {
        if (rng.Bernoulli(0.5)) {
          (void)tree.Search(rng.Uniform(kKeys / 4) + 1);
        } else {
          (void)tree.Insert(kKeys + t * 1'000'000 + i, 1);
        }
      }
      ns[t] = SimClock::Now();
    });
    uint64_t max_ns = 0;
    for (uint64_t v : ns) max_ns = std::max(max_ns, v);
    b.AddRow({cached ? "sherman b+tree (cached)" : "naive remote b+tree",
              Fmt("%.0f", 4 * 1'500 / (static_cast<double>(max_ns) / 1e9))});
  }
  {
    Env env;
    dsm::GlobalAddress base =
        *index::RaceHash::Create(env.client.get(), 2 * kKeys);
    index::RaceHash hash(env.client.get(), base, 2 * kKeys);
    for (uint64_t k = 1; k <= kKeys / 4; k++) (void)hash.Insert(k, k);
    std::vector<uint64_t> ns(4);
    ParallelFor(4, [&](size_t t) {
      SimClock::Reset();
      Random64 rng(t + 1);
      for (int i = 0; i < 1'500; i++) {
        if (rng.Bernoulli(0.5)) {
          (void)hash.Get(rng.Uniform(kKeys / 4) + 1);
        } else {
          (void)hash.Insert(kKeys + t * 1'000'000 + i, 1);
        }
      }
      ns[t] = SimClock::Now();
    });
    uint64_t max_ns = 0;
    for (uint64_t v : ns) max_ns = std::max(max_ns, v);
    b.AddRow({"race hash",
              Fmt("%.0f", 4 * 1'500 / (static_cast<double>(max_ns) / 1e9))});
  }
  b.Print();

  Section(
      "E8c: LSM index — local filters/fences + compaction offload "
      "(Challenge #11)");
  Table c({"variant", "get ns (hot)", "absent-get rtts", "compaction "
           "bytes moved"});
  for (bool offload : {false, true}) {
    Env env;
    index::LsmOptions lopts;
    lopts.memtable_entries = 2'048;
    lopts.max_runs = 100;  // compact only when we say so
    lopts.offload_compaction = offload;
    index::LsmIndex lsm(env.client.get(), 0, lopts);
    Random64 rng(3);
    for (uint64_t i = 0; i < 20'000; i++) {
      (void)lsm.Put(rng.Next() | 1, i + 1);
    }
    (void)lsm.Flush();

    env.cluster->fabric().ResetStats();
    SimClock::Reset();
    Random64 probe(3);
    for (int i = 0; i < 2'000; i++) {
      (void)lsm.Get(probe.Next() | 1);  // present keys
    }
    const double get_ns = static_cast<double>(SimClock::Now()) / 2'000;

    env.cluster->fabric().ResetStats();
    for (int i = 0; i < 2'000; i++) {
      (void)lsm.Get(Hash64(i) | (1ULL << 62));  // almost surely absent
    }
    const double absent_rtts =
        static_cast<double>(
            env.cluster->fabric().TotalStats().RoundTrips()) /
        2'000;

    env.cluster->fabric().ResetStats();
    (void)lsm.Compact();
    const auto cs = env.cluster->fabric().TotalStats();
    c.AddRow({offload ? "offloaded compaction" : "local compaction",
              Fmt("%.0f", get_ns), Fmt("%.2f", absent_rtts),
              Fmt("%.2f MB", (cs.bytes_read + cs.bytes_written) / 1e6)});
  }
  c.Print();

  std::printf(
      "Claim check (paper Challenges #10-#11): caching internal nodes "
      "(Sherman) collapses lookups to ~1 RTT at the price of local "
      "memory; the hash index reaches ~1 RTT with zero local state but "
      "no range scans; the two-sided index pays the memory node's wimpy "
      "CPU and its dispatch on every op. For the LSM, local bloom "
      "filters answer absent-key probes with ~0 round trips and "
      "near-data compaction moves orders of magnitude fewer bytes than "
      "pulling runs to the compute node.\n");
  return 0;
}
