// Experiment E10 (DESIGN.md): DSN-DB vs DSM-DB under skew shift.
//
// Paper, Sec. 7/8: DSM-DB "is more resilient to skew due to fast
// resharding", because sharding is *logical* — resharding copies only
// metadata, while a shared-nothing DSN-DB must physically move the data
// between compute nodes.
//
// Scenario: 4 compute nodes; the workload hammers a hot 10% key range
// that initially belongs to one owner. We reshard to spread the hot
// range. For DSM-DB the reshard is a map swap; for the DSN baseline we
// additionally perform (and time) the physical data movement of the
// moved range between node-local memories over the same fabric.

#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/sim_clock.h"
#include "core/dsmdb.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

constexpr uint64_t kNumKeys = 20'000;
constexpr uint64_t kHotKeys = kNumKeys / 10;

workload::DriverResult RunPhase(core::DsmDb& db,
                                std::vector<core::ComputeNode*>& nodes,
                                const core::Table* t, bool hot_phase) {
  workload::YcsbOptions yopts;
  yopts.num_keys = kNumKeys;
  yopts.write_fraction = 0.3;
  yopts.zipf_theta = 0.2;
  if (hot_phase) {
    yopts.range_begin = 0;
    yopts.range_end = kHotKeys;  // all traffic on the hot tenth
  }
  yopts.ops_per_txn = 2;

  workload::DriverOptions dropts;
  dropts.threads_per_node = 2;
  dropts.txns_per_thread = 150;

  return workload::RunDriver(
      nodes, dropts,
      [&, hot_phase](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        thread_local bool wl_hot = false;
        if (wl_tid != tid || wl_hot != hot_phase) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
          wl_tid = tid;
          wl_hot = hot_phase;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });
}

/// E10b: continuous high-skew run (YCSB theta=0.99) whose hot range jumps
/// to the opposite half of the keyspace mid-run. With --heat/--monitor the
/// heat observatory should flag the jump (SKEW-SHIFT) within a few
/// sampling intervals — the trigger a self-driving resharder would act on.
workload::DriverResult RunMonitoredShift(
    std::vector<core::ComputeNode*>& nodes, const core::Table* t) {
  // Fresh observatory state so the printed timeline covers only this run
  // (the earlier phases reset worker sim-clocks, which would interleave).
  if (obs::HeatMap::Enabled()) obs::HeatMap::Instance().Reset();
  if (obs::SkewMonitor::Enabled()) obs::SkewMonitor::Instance().Reset();
  workload::DriverOptions dropts;
  dropts.threads_per_node = 2;
  dropts.txns_per_thread = 400;
  const uint64_t switch_at = dropts.txns_per_thread / 2;

  auto make = [](uint32_t tid, bool shifted) {
    workload::YcsbOptions yopts;
    yopts.num_keys = kNumKeys;
    yopts.write_fraction = 0.3;
    yopts.zipf_theta = 0.99;
    yopts.range_begin = shifted ? kNumKeys / 2 : 0;
    yopts.range_end = yopts.range_begin + kHotKeys;
    yopts.ops_per_txn = 2;
    return std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
  };

  return workload::RunDriver(
      nodes, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        thread_local uint64_t done = 0;
        thread_local bool shifted = false;
        if (wl_tid != tid) {
          wl_tid = tid;
          done = 0;
          shifted = false;
          wl = make(tid, shifted);
        }
        if (!shifted && done >= switch_at) {
          shifted = true;  // hotspot jumps to the other half
          wl = make(tid, shifted);
        }
        done++;
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });
}

/// Prints the skew monitor's interval-by-interval view of the E10b run.
void PrintSkewTimeline() {
  const std::vector<obs::SkewSignals> history =
      obs::SkewMonitor::Instance().History();
  if (history.empty()) return;
  Section("E10b skew-shift timeline (heat observatory)");
  Table table({"seq", "t(us)", "accesses", "top-k share", "zipf-theta",
               "churn", "flag"});
  for (const obs::SkewSignals& sig : history) {
    table.AddRow({Fmt("%llu", static_cast<unsigned long long>(sig.seq)),
                  Fmt("%.0f", sig.t_ns / 1e3),
                  Fmt("%llu",
                      static_cast<unsigned long long>(sig.interval_accesses)),
                  Fmt("%.2f", sig.top_k_share),
                  Fmt("%.2f", sig.zipf_theta), Fmt("%.2f", sig.churn),
                  sig.shift ? "SKEW-SHIFT" : ""});
  }
  table.Print();
  std::printf(
      "shifts flagged: %llu (expect >=1: the hot range jumps halves "
      "mid-run)\n",
      static_cast<unsigned long long>(
          obs::SkewMonitor::Instance().shift_count()));
}

/// Resharding map: split the hot range evenly across all owners; the cold
/// remainder stays with owner 3.
std::vector<core::ShardManager::Range> HotSplitRanges(uint32_t owners) {
  std::vector<core::ShardManager::Range> ranges;
  const uint64_t per = kHotKeys / owners;
  for (uint32_t o = 0; o < owners; o++) {
    ranges.push_back({o * per,
                      o + 1 == owners ? kHotKeys : (o + 1) * per, o});
  }
  ranges.push_back({kHotKeys, kNumKeys, owners - 1});
  return ranges;
}

/// Physically copies `bytes` between two node-local memories over the
/// fabric (the DSN-DB reshard path); returns simulated ns.
uint64_t PhysicalMoveNs(core::DsmDb& db, uint64_t bytes) {
  rdma::Fabric& fabric = db.cluster().fabric();
  const rdma::NodeId src = fabric.AddNode("dsn-src", 8, 1.0);
  const rdma::NodeId dst = fabric.AddNode("dsn-dst", 8, 1.0);
  static std::vector<char> src_mem, dst_mem;
  src_mem.assign(bytes, 1);
  dst_mem.assign(bytes, 0);
  const uint32_t src_key = *fabric.RegisterMemory(src, src_mem.data(), bytes);
  const uint32_t dst_key = *fabric.RegisterMemory(dst, dst_mem.data(), bytes);

  SimClock::Reset();
  std::vector<char> chunk(64 * 1024);
  for (uint64_t off = 0; off < bytes; off += chunk.size()) {
    const size_t n = std::min<uint64_t>(chunk.size(), bytes - off);
    (void)fabric.Read(dst, rdma::RemotePtr{src, src_key, off}, chunk.data(),
                      n);
    (void)fabric.Write(dst, rdma::RemotePtr{dst, dst_key, off},
                       chunk.data(), n);
  }
  return SimClock::Now();
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  env.SetSeed(workload::DriverOptions{}.seed);
  Section(
      "E10: skew shift and resharding — DSM-DB (logical) vs DSN-DB "
      "(physical) [4 compute nodes]");

  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 4;
  copts.memory_node.capacity_bytes = 64 << 20;
  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kCacheSharding;
  dopts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  dopts.buffer.capacity_bytes = 512 * 4096;
  dopts.buffer.charge_policy_overhead = false;

  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes;
  for (int i = 0; i < 4; i++) nodes.push_back(db.AddComputeNode());
  const core::Table* t = *db.CreateTable("kv", {64, kNumKeys});
  (void)db.FinishSetup();

  Table table({"phase", "tput(txn/s)", "aborts", "notes"});

  // Phase 0: uniform load, even shards.
  workload::DriverResult ph0 = RunPhase(db, nodes, t, /*hot_phase=*/false);
  table.AddRow({"uniform, even shards", Fmt("%.0f", ph0.throughput_tps),
                Fmt("%.1f%%", ph0.AbortRate() * 100), ""});

  // Phase 1: hotspot lands on owner 0's range.
  workload::DriverResult ph1 = RunPhase(db, nodes, t, /*hot_phase=*/true);
  table.AddRow({"hotspot on one shard", Fmt("%.0f", ph1.throughput_tps),
                Fmt("%.1f%%", ph1.AbortRate() * 100),
                "owner 0 is the bottleneck"});

  // Reshard: DSM-DB pays only a metadata swap.
  SimClock::Reset();
  const uint64_t moved_keys =
      db.shards("kv")->UpdateRanges(HotSplitRanges(4));
  const uint64_t dsm_reshard_ns = SimClock::Now() + 2 * 1'600 * 4;
  // (+ one RTT per compute node to broadcast the new map)
  const uint64_t moved_bytes = moved_keys * txn::RecordStride(64);
  const uint64_t dsn_reshard_ns = PhysicalMoveNs(db, moved_bytes);
  table.AddRow({"reshard cost: DSM-DB (logical)", "-", "-",
                Fmt("%.3f ms for %llu keys", dsm_reshard_ns / 1e6,
                    static_cast<unsigned long long>(moved_keys))});
  table.AddRow({"reshard cost: DSN-DB (physical)", "-", "-",
                Fmt("%.3f ms to move %.1f MB", dsn_reshard_ns / 1e6,
                    moved_bytes / 1e6)});

  // Phase 2: hot range now spread over all owners.
  workload::DriverResult ph2 = RunPhase(db, nodes, t, /*hot_phase=*/true);
  table.AddRow({"hotspot after reshard", Fmt("%.0f", ph2.throughput_tps),
                Fmt("%.1f%%", ph2.AbortRate() * 100),
                "hot range split across 4 owners"});
  table.Print();

  // E10b: continuous theta=0.99 run whose hotspot jumps halves mid-run,
  // watched by the heat observatory (enable with --heat or --monitor).
  workload::DriverResult shift = RunMonitoredShift(nodes, t);
  shift.ExportTo(&env.exporter(), "ycsb_shift");
  std::printf("E10b monitored shift run: %s\n", shift.ToString().c_str());
  PrintSkewTimeline();

  std::printf(
      "Claim check (paper Sec. 7/8): resharding in DSM-DB is %.0fx "
      "cheaper than the DSN-DB physical move, because 'only the metadata "
      "is copied ... without physically moving data'; post-reshard "
      "throughput recovers toward the uniform baseline.\n",
      static_cast<double>(dsn_reshard_ns) /
          static_cast<double>(std::max<uint64_t>(1, dsm_reshard_ns)));
  return 0;
}
