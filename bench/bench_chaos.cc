// Experiment E16 (DESIGN.md §11): chaos — YCSB-B under a randomized,
// seeded fault schedule, with the full robustness stack on:
//
//   * background verb/RPC loss + a straggler-link window (FaultInjector),
//   * deadline/retry/backoff on every one-sided verb (DsmClient),
//   * per-stripe value replication with read-failover
//     (txn::ReplicatedDirectAccessor: WriteAll primary+mirror, ReadAny),
//   * a memory-node flap: crash mid-run, later recover + repair the
//     stripe from its mirror + incarnation refresh,
//   * a "doomed" compute node that grabs record locks, heartbeats once
//     and dies — its orphaned locks must be lease-reclaimed by peers.
//
// The run reports the throughput dip depth, time-to-recover, and the
// fault.* counters, and checks the chaos invariants:
//
//   1. zero hangs — every lane drains its full attempt budget;
//   2. zero lost committed writes — tallied increments are all present in
//      the surviving copies, and the repaired primary matches its mirror;
//   3. orphaned locks reclaimed within ~one lease period of expiry;
//   4. throughput recovers to >= 90% of the pre-fault rate after the flap.
//
// Flag --assert-chaos makes the process exit nonzero if any invariant
// fails (CI smoke); --seed=<n> varies the fault schedule.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "core/dsmdb.h"
#include "dsm/lease.h"
#include "rdma/fault.h"
#include "txn/data_accessor.h"
#include "txn/rdma_lock.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

// Cluster / workload shape (acceptance: YCSB-B, 4 threads x depth 8).
constexpr uint32_t kMemNodes = 4;
constexpr uint64_t kTableKeys = 16'384;
// YCSB traffic stays below the counter keys reserved at the top.
constexpr uint64_t kYcsbKeys = kTableKeys - 64;
constexpr uint32_t kThreads = 4;
constexpr uint32_t kDepth = 8;
constexpr uint64_t kTxnsPerThread = 6'000;

// Fault schedule (simulated ns; per-worker clocks all start at 0).
constexpr double kVerbLoss = 0.015;  // >= 1% background verb loss
constexpr double kRpcLoss = 0.005;
constexpr uint64_t kStragglerStart = 500'000;
constexpr uint64_t kStragglerEnd = 1'000'000;
constexpr uint64_t kCrashNs = 2'000'000;    // memory node 0 dies...
constexpr uint64_t kRecoverNs = 3'000'000;  // ...and comes back repaired
constexpr uint64_t kLeaseNs = 500'000;

// Dip/recovery bucketing.
constexpr uint64_t kBucketNs = 250'000;

// Tallied-increment keys (never touched by the YCSB stream) and the
// subset whose locks the doomed node takes to its grave. All live on
// memory nodes 1..3 (home = key % kMemNodes) so the node-0 flap cannot
// free them — only lease reclaim can.
constexpr std::array<uint64_t, 6> kCounterKeys = {
    kTableKeys - 63, kTableKeys - 62, kTableKeys - 61,
    kTableKeys - 59, kTableKeys - 58, kTableKeys - 57};
constexpr std::array<uint64_t, 3> kDoomedKeys = {
    kTableKeys - 63, kTableKeys - 62, kTableKeys - 61};

struct Sample {
  uint32_t lane;
  uint64_t now_ns;
  bool committed;
  uint64_t reclaims;  ///< fault.orphan_locks_reclaimed at sample time
};

uint64_t FaultCounter(const char* name) {
  return GlobalMetrics().GetCounter(name)->Get();
}

}  // namespace

int main(int argc, char** argv) {
  bool assert_chaos = false;
  uint64_t seed = 42;
  std::vector<char*> fwd = {argv[0]};
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--assert-chaos") == 0) {
      assert_chaos = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      fwd.push_back(argv[i]);
    }
  }
  BenchEnv env(static_cast<int>(fwd.size()), fwd.data());
  env.SetSeed(seed);

  Section(Fmt(
      "E16: chaos fabric — YCSB-B (95/5), %u threads x depth %u, "
      "verb loss %.1f%%, straggler window, mem-node flap @%.1f-%.1fms, "
      "doomed locks + lease reclaim (seed %llu; simulated time)",
      kThreads, kDepth, kVerbLoss * 100, kCrashNs / 1e6, kRecoverNs / 1e6,
      static_cast<unsigned long long>(seed)));

  // --- database ------------------------------------------------------------
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = kMemNodes;
  copts.memory_node.capacity_bytes = 64 << 20;
  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kNoCacheNoSharding;
  dopts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  core::DsmDb db(copts, dopts);
  core::ComputeNode* cn = db.AddComputeNode("cn0");
  const core::Table* table = *db.CreateTable("ycsb", {64, kTableKeys});
  if (!db.FinishSetup().ok()) return 2;

  // --- per-stripe mirrors + replicating accessor ---------------------------
  // Every stripe's values are mirrored on the next memory node; writes go
  // to both copies (one pipelined WriteAll), reads fail over.
  std::vector<txn::ReplicatedDirectAccessor::Mirror> mirrors(kMemNodes);
  for (uint32_t n = 0; n < kMemNodes; n++) {
    const uint64_t bytes = table->KeysPerStripe(n) * table->record_stride();
    const dsm::GlobalAddress m =
        *db.admin().Alloc(bytes, static_cast<dsm::MemNodeId>((n + 1) % kMemNodes));
    mirrors[n] = {m.node,
                  static_cast<int64_t>(m.offset) -
                      static_cast<int64_t>(table->stripes()[n].offset),
                  true};
  }
  cn->InstallAccessor(std::make_unique<txn::ReplicatedDirectAccessor>(
      &cn->dsm(), mirrors));
  const auto mirror_addr = [&](dsm::GlobalAddress a) {
    return dsm::GlobalAddress{
        mirrors[a.node].node,
        a.offset + static_cast<uint64_t>(mirrors[a.node].offset_delta)};
  };

  // --- liveness leases -----------------------------------------------------
  // Lease table on node 1 so it survives the node-0 flap. The workers get
  // a LeaseManager (so they stamp lock owners and can reclaim) but never
  // heartbeat — an un-leased owner is never considered expired, so live
  // worker locks are immune to false reclaim even across worker-clock skew.
  dsm::GlobalAddress lease_table = *dsm::LeaseManager::CreateTable(&db.admin(), 1);
  dsm::LeaseManager::Options lopts;
  lopts.table = lease_table;
  lopts.lease_ns = kLeaseNs;
  lopts.recheck_ns = 20'000;
  dsm::LeaseManager worker_leases(&cn->dsm(), lopts);
  cn->dsm().SetLeaseManager(&worker_leases);

  // --- the doomed compute node ---------------------------------------------
  // Heartbeats once at t~0, takes exclusive locks on half the counter
  // keys, then "crashes" (never runs again). Its lease expires at
  // ~kLeaseNs into the run; the first worker that trips on each lock
  // after that must CAS-reclaim it.
  dsm::DsmClient doomed(&db.cluster(), db.cluster().AddComputeNode("doomed"));
  dsm::LeaseManager doomed_leases(&doomed, lopts);
  doomed.SetLeaseManager(&doomed_leases);
  SimClock::Reset();  // expiry stamped in the workers' time frame
  if (!doomed_leases.Heartbeat().ok()) return 2;
  txn::RdmaSpinLock doomed_lock(&doomed);
  for (uint64_t k : kDoomedKeys) {
    if (!doomed_lock.TryAcquire(table->RefFor(k).LockWord(), 1).ok()) return 2;
  }

  // --- fault schedule ------------------------------------------------------
  const uint64_t retries0 = FaultCounter("fault.retries");
  const uint64_t failovers0 = FaultCounter("fault.failovers");
  const uint64_t verb_failures0 = FaultCounter("fault.verb_failures");
  const uint64_t reclaims0 = FaultCounter("fault.orphan_locks_reclaimed");
  const uint64_t expiries0 = FaultCounter("fault.lease_expiries");

  rdma::FaultOptions fopts;
  fopts.seed = seed;
  fopts.verb_loss_prob = kVerbLoss;
  fopts.rpc_loss_prob = kRpcLoss;
  fopts.stragglers.push_back(rdma::StragglerWindow{
      db.cluster().MemFabricId(3), kStragglerStart, kStragglerEnd, 4.0});
  fopts.events.push_back(rdma::FaultEvent{
      kCrashNs, [&db] { db.cluster().CrashMemoryNode(0); }, "crash mem0"});
  fopts.events.push_back(rdma::FaultEvent{
      kRecoverNs,
      [&] {
        // Bring the node back (empty, re-incarnated), restore its stripe
        // from the mirror — the committed writes survived there — and only
        // then let the workers' fences re-bind. Until the refresh, every
        // worker op against node 0 fails fast with StaleIncarnation, so
        // the copy runs against a write-quiesced mirror.
        db.cluster().RecoverMemoryNode(0);
        db.admin().RefreshIncarnation(0);
        // Stripe-0 primary <- its mirror (on node 1).
        const uint64_t bytes0 =
            table->KeysPerStripe(0) * table->record_stride();
        std::vector<char> buf(bytes0);
        if (db.admin().Read(mirror_addr(table->stripes()[0]), buf.data(),
                            bytes0).ok()) {
          (void)db.admin().Write(table->stripes()[0], buf.data(), bytes0);
        }
        // Node 0 also hosted the mirror of stripe 3 — rebuild it from the
        // stripe-3 primary so that replica set is back to two copies.
        const uint64_t bytes3 =
            table->KeysPerStripe(3) * table->record_stride();
        buf.assign(bytes3, 0);
        if (db.admin().Read(table->stripes()[3], buf.data(), bytes3).ok()) {
          (void)db.admin().Write(mirror_addr(table->stripes()[3]), buf.data(),
                                 bytes3);
        }
        cn->dsm().RefreshIncarnation(0);
      },
      "recover+repair mem0"});
  rdma::FaultInjector injector(std::move(fopts));
  db.cluster().fabric().SetFaultInjector(&injector);

  // --- the run -------------------------------------------------------------
  workload::YcsbOptions yopts;
  yopts.num_keys = kYcsbKeys;
  yopts.write_fraction = 0.05;  // YCSB-B
  yopts.zipf_theta = 0.7;
  yopts.ops_per_txn = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = kThreads;
  dropts.txns_per_thread = kTxnsPerThread;
  dropts.in_flight_depth = kDepth;
  dropts.seed = seed;

  std::array<std::atomic<uint64_t>, kCounterKeys.size()> committed_adds{};
  std::array<std::atomic<uint64_t>, kCounterKeys.size()> indoubt_adds{};
  std::mutex samples_mu;
  std::vector<Sample> samples;
  samples.reserve(kThreads * kTxnsPerThread);

  workload::DriverResult result = workload::RunDriver(
      {cn}, dropts,
      [&](core::ComputeNode* node, uint32_t lane, Random64& rng) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_lane = UINT32_MAX;
        if (wl_lane != lane) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, lane + 1);
          wl_lane = lane;
        }
        bool committed = false;
        if (rng.Next() % 8 == 0) {
          // Tallied increment on a counter key: the audit trail for the
          // zero-lost-committed-writes invariant. A hard (non-abort)
          // error is in-doubt — the delta may or may not have landed.
          const size_t i = rng.Next() % kCounterKeys.size();
          Result<core::TxnResult> r = node->ExecuteOneShot(
              *table, {core::TxnOp::Add(kCounterKeys[i], 1)});
          if (r.ok() && r->committed) {
            committed_adds[i].fetch_add(1, std::memory_order_relaxed);
            committed = true;
          } else if (!r.ok()) {
            indoubt_adds[i].fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          Result<core::TxnResult> r =
              node->ExecuteOneShot(*table, wl->NextTxn());
          committed = r.ok() && r->committed;
        }
        const Sample s{lane, SimClock::Now(), committed,
                       FaultCounter("fault.orphan_locks_reclaimed")};
        {
          std::lock_guard<std::mutex> lk(samples_mu);
          samples.push_back(s);
        }
        return committed;
      });
  db.cluster().fabric().SetFaultInjector(nullptr);

  // --- invariant 1: zero hangs --------------------------------------------
  const bool drained =
      result.attempts == static_cast<uint64_t>(kThreads) * kTxnsPerThread;
  const bool schedule_ran = injector.AllEventsFired();

  // --- invariant 2: zero lost committed writes -----------------------------
  // (a) Every tallied increment is present in both copies of its counter.
  bool tally_ok = true;
  Table tally({"key", "committed", "in-doubt", "primary", "mirror", "ok"});
  for (size_t i = 0; i < kCounterKeys.size(); i++) {
    const dsm::GlobalAddress value =
        table->RefFor(kCounterKeys[i]).Value();
    uint64_t primary = 0, mirror = 0;
    const bool read_ok =
        db.admin().Read(value, &primary, 8).ok() &&
        db.admin().Read(mirror_addr(value), &mirror, 8).ok();
    const uint64_t lo = committed_adds[i].load();
    const uint64_t hi = lo + indoubt_adds[i].load();
    const bool ok = read_ok && primary >= lo && primary <= hi &&
                    mirror >= lo && mirror <= hi;
    tally_ok = tally_ok && ok;
    tally.AddRow({Fmt("%llu", static_cast<unsigned long long>(kCounterKeys[i])),
                  Fmt("%llu", static_cast<unsigned long long>(lo)),
                  Fmt("%llu", static_cast<unsigned long long>(hi - lo)),
                  Fmt("%llu", static_cast<unsigned long long>(primary)),
                  Fmt("%llu", static_cast<unsigned long long>(mirror)),
                  ok ? "yes" : "NO"});
  }
  // (b) The repaired node-0 stripe agrees with its mirror (the surviving
  // copy of every committed pre-crash write): sample 256 records.
  uint64_t divergent = 0;
  for (uint64_t s = 0; s < 256; s++) {
    const uint64_t key = (s * 101) % kYcsbKeys * kMemNodes % kTableKeys;
    const dsm::GlobalAddress value = table->RefFor(key & ~3ULL).Value();
    std::array<char, 64> a{}, b{};
    if (!db.admin().Read(value, a.data(), a.size()).ok() ||
        !db.admin().Read(mirror_addr(value), b.data(), b.size()).ok() ||
        std::memcmp(a.data(), b.data(), a.size()) != 0) {
      divergent++;
    }
  }
  const bool no_lost_writes = tally_ok && divergent == 0;

  // --- invariant 3: orphan locks reclaimed within ~one lease period --------
  const uint64_t reclaims = FaultCounter("fault.orphan_locks_reclaimed") - reclaims0;
  uint64_t all_reclaimed_by = UINT64_MAX;
  for (const Sample& s : samples) {
    if (s.reclaims - reclaims0 >= kDoomedKeys.size()) {
      all_reclaimed_by = std::min(all_reclaimed_by, s.now_ns);
    }
  }
  // The doomed lease expires at ~kLeaseNs; "within one lease period"
  // plus recheck/backoff slack.
  const uint64_t reclaim_deadline = 2 * kLeaseNs + 100'000;
  const bool reclaim_ok = reclaims >= kDoomedKeys.size() &&
                          all_reclaimed_by <= reclaim_deadline;

  // --- invariant 4: throughput dip + recovery ------------------------------
  // Bucket committed txns over the common window (min over lanes of each
  // lane's last sample — beyond that some worker has drained its budget
  // and rate comparisons would under-count).
  std::vector<uint64_t> lane_end(kThreads * kDepth, 0);
  for (const Sample& s : samples) {
    if (s.lane < lane_end.size()) {
      lane_end[s.lane] = std::max(lane_end[s.lane], s.now_ns);
    }
  }
  uint64_t window_end = UINT64_MAX;
  for (uint64_t e : lane_end) {
    if (e > 0) window_end = std::min(window_end, e);
  }
  if (window_end == UINT64_MAX) window_end = 0;
  const size_t num_buckets = window_end / kBucketNs;
  std::vector<uint64_t> bucket_committed(num_buckets, 0);
  for (const Sample& s : samples) {
    const size_t b = s.now_ns / kBucketNs;
    if (s.committed && b < num_buckets) bucket_committed[b]++;
  }
  const auto bucket_start = [](size_t b) { return b * kBucketNs; };
  double pre_sum = 0;
  size_t pre_n = 0;
  double dip_min = -1;
  for (size_t b = 1; b < num_buckets; b++) {  // skip the warmup bucket
    const uint64_t t0 = bucket_start(b);
    if (t0 + kBucketNs <= kCrashNs) {
      pre_sum += static_cast<double>(bucket_committed[b]);
      pre_n++;
    } else if (t0 >= kCrashNs && t0 + kBucketNs <= kRecoverNs) {
      const double r = static_cast<double>(bucket_committed[b]);
      if (dip_min < 0 || r < dip_min) dip_min = r;
    }
  }
  const double pre_rate = pre_n == 0 ? 0 : pre_sum / static_cast<double>(pre_n);
  uint64_t recovered_at = UINT64_MAX;
  double post_rate = 0;
  for (size_t b = 1; b < num_buckets; b++) {
    const uint64_t t0 = bucket_start(b);
    if (t0 < kRecoverNs) continue;
    post_rate = static_cast<double>(bucket_committed[b]);
    if (post_rate >= 0.9 * pre_rate) {
      recovered_at = t0;
      break;
    }
  }
  const bool recovery_ok = pre_rate > 0 && recovered_at != UINT64_MAX;

  // --- report --------------------------------------------------------------
  Table t({"metric", "value"});
  t.AddRow({"attempts", Fmt("%llu", static_cast<unsigned long long>(result.attempts))});
  t.AddRow({"committed", Fmt("%llu", static_cast<unsigned long long>(result.committed))});
  t.AddRow({"abort rate", Fmt("%.1f%%", result.AbortRate() * 100)});
  t.AddRow({"throughput (txn/s, sim)", Fmt("%.0f", result.throughput_tps)});
  t.AddRow({"pre-fault rate (txn/bucket)", Fmt("%.1f", pre_rate)});
  t.AddRow({"dip floor during flap", Fmt("%.1f (%.0f%% of pre)", dip_min,
                                         pre_rate > 0 ? 100 * dip_min / pre_rate : 0)});
  t.AddRow({"recovered to >=90% at",
            recovered_at == UINT64_MAX
                ? "NEVER"
                : Fmt("%.2fms (+%.2fms after repair)", recovered_at / 1e6,
                      (recovered_at - kRecoverNs) / 1e6)});
  t.AddRow({"verb failures injected",
            Fmt("%llu", static_cast<unsigned long long>(
                            FaultCounter("fault.verb_failures") - verb_failures0))});
  t.AddRow({"retries", Fmt("%llu", static_cast<unsigned long long>(
                                       FaultCounter("fault.retries") - retries0))});
  t.AddRow({"read failovers", Fmt("%llu", static_cast<unsigned long long>(
                                              FaultCounter("fault.failovers") - failovers0))});
  t.AddRow({"lease expiries observed",
            Fmt("%llu", static_cast<unsigned long long>(
                            FaultCounter("fault.lease_expiries") - expiries0))});
  t.AddRow({"orphan locks reclaimed",
            Fmt("%llu of %zu", static_cast<unsigned long long>(reclaims),
                kDoomedKeys.size())});
  t.AddRow({"all reclaimed by",
            all_reclaimed_by == UINT64_MAX
                ? "NEVER"
                : Fmt("%.2fms (deadline %.2fms)", all_reclaimed_by / 1e6,
                      reclaim_deadline / 1e6)});
  t.AddRow({"mirror divergence (256 sampled)", Fmt("%llu", static_cast<unsigned long long>(divergent))});
  t.Print();
  tally.Print();

  struct Check {
    const char* name;
    bool ok;
  };
  const Check checks[] = {
      {"zero hangs (all lanes drained)", drained},
      {"fault schedule fully fired", schedule_ran},
      {"zero lost committed writes", no_lost_writes},
      {"orphan locks reclaimed in time", reclaim_ok},
      {"throughput recovered to >=90% of pre-fault", recovery_ok},
  };
  bool all_ok = true;
  for (const Check& c : checks) {
    std::printf("%-48s %s\n", c.name, c.ok ? "PASS" : "FAIL");
    all_ok = all_ok && c.ok;
  }
  std::printf(
      "\nClaim check (paper Challenge #3, availability): with replicated "
      "values and incarnation-fenced retry, a memory-node flap costs a "
      "bounded throughput dip — not an outage and not lost data — and a "
      "crashed compute node's locks are reclaimed after one lease period "
      "instead of wedging the system.\n");

  result.ExportTo(&env.exporter(), "chaos");
  env.exporter().AddScalar("chaos.pre_rate_per_bucket", pre_rate);
  env.exporter().AddScalar("chaos.dip_floor_per_bucket", dip_min < 0 ? 0 : dip_min);
  env.exporter().AddCounter("chaos.recovered_at_ns",
                            recovered_at == UINT64_MAX ? 0 : recovered_at);
  env.exporter().AddCounter("chaos.orphans_reclaimed", reclaims);
  env.exporter().AddCounter("chaos.mirror_divergence", divergent);
  env.exporter().AddCounter("chaos.invariants_ok", all_ok ? 1 : 0);

  if (assert_chaos && !all_ok) {
    std::fprintf(stderr, "FAIL: chaos invariant violated\n");
    return 1;
  }
  return 0;
}
