// Experiment E6 (DESIGN.md): buffer management for the RDMA era,
// Challenge #8 — "research is needed to evaluate the overhead of popular
// buffer management policies, e.g., LRU, LRU-K, 2Q, CLOCK, and ARC. New
// buffer management policies must consider actual running time instead of
// purely optimizing cache hit rates."
//
// Part A: each policy runs the same zipfian page trace; we report hit
// rate, measured policy/software overhead (real ns charged to simulated
// time), and total simulated time per access — at the RDMA gap (~10x) and
// at a disk-era gap (1000x RTT) to show when hit rate stops being the
// whole story.
//
// Part B: caching compressed pages — 2x effective capacity vs. per-hit
// decompression cost, across decompression speeds.

#include <memory>
#include <vector>

#include "bench_util.h"
#include "buffer/buffer_pool.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

constexpr uint64_t kNumPages = 8'192;
constexpr size_t kPageSize = 4'096;
constexpr uint64_t kAccesses = 60'000;

struct Env {
  explicit Env(double rtt_factor) {
    dsm::ClusterOptions opts;
    opts.num_memory_nodes = 2;
    opts.memory_node.capacity_bytes = 64 << 20;
    opts.network = opts.network.WithRttFactor(rtt_factor);
    cluster = std::make_unique<dsm::Cluster>(opts);
    client = std::make_unique<dsm::DsmClient>(
        cluster.get(), cluster->AddComputeNode("bench"));
    base0 = *client->Alloc(kNumPages / 2 * kPageSize, 0);
    base1 = *client->Alloc(kNumPages / 2 * kPageSize, 1);
  }

  dsm::GlobalAddress PageAddr(uint64_t page) const {
    const dsm::GlobalAddress base = page % 2 == 0 ? base0 : base1;
    return base.Plus(page / 2 * kPageSize);
  }

  std::unique_ptr<dsm::Cluster> cluster;
  std::unique_ptr<dsm::DsmClient> client;
  dsm::GlobalAddress base0, base1;
};

void RunPolicy(Table* out, Env& env, buffer::PolicyKind kind,
               double cache_fraction, double rtt_factor,
               uint32_t threads) {
  buffer::BufferPoolOptions opts;
  opts.page_size = kPageSize;
  opts.capacity_bytes = static_cast<uint64_t>(
      cache_fraction * kNumPages * kPageSize);
  opts.policy = kind;
  opts.shards = threads > 1 ? 8 : 1;
  opts.charge_policy_overhead = true;
  buffer::BufferPool pool(env.client.get(), opts);

  std::vector<uint64_t> worker_ns(threads, 0);
  ParallelFor(threads, [&](size_t w) {
    SimClock::Reset();
    ZipfianGenerator zipf(kNumPages, 0.9, 17 + w);
    char buf[64];
    const uint64_t per_thread = kAccesses / threads;
    for (uint64_t i = 0; i < per_thread; i++) {
      (void)pool.Read(env.PageAddr(zipf.NextScrambled()), buf, sizeof(buf));
    }
    worker_ns[w] = SimClock::Now();
  });
  uint64_t max_ns = 0;
  for (uint64_t ns : worker_ns) max_ns = std::max(max_ns, ns);

  const buffer::BufferPoolStats stats = pool.Snapshot();
  const uint64_t accesses = stats.hits + stats.misses;
  out->AddRow({
      std::string(buffer::PolicyKindName(kind)),
      Fmt("%.0f%%", cache_fraction * 100),
      Fmt("%.0fx", rtt_factor),
      Fmt("%u", threads),
      Fmt("%.1f%%", stats.HitRate() * 100),
      Fmt("%.0f", static_cast<double>(stats.policy_ns) /
                      static_cast<double>(accesses)),
      Fmt("%.0f", static_cast<double>(max_ns) * threads /
                      static_cast<double>(kAccesses)),
  });
}

void RunCompressed(Table* out, Env& env, bool compressed,
                   uint64_t decompress_ns_per_page) {
  buffer::BufferPoolOptions opts;
  opts.page_size = kPageSize;
  // Compression doubles the effective capacity of the same local budget.
  const uint64_t budget = kNumPages / 20 * kPageSize;  // 5%
  opts.capacity_bytes = compressed ? 2 * budget : budget;
  opts.policy = buffer::PolicyKind::kLru;
  opts.shards = 1;
  opts.charge_policy_overhead = false;
  buffer::BufferPool pool(env.client.get(), opts);

  SimClock::Reset();
  ZipfianGenerator zipf(kNumPages, 0.9, 29);
  char buf[64];
  uint64_t hits_before = 0;
  for (uint64_t i = 0; i < kAccesses / 2; i++) {
    (void)pool.Read(env.PageAddr(zipf.NextScrambled()), buf, sizeof(buf));
    const auto s = pool.Snapshot();
    if (compressed && s.hits > hits_before) {
      SimClock::Advance(decompress_ns_per_page);  // decompress on hit
    }
    hits_before = s.hits;
  }
  const auto stats = pool.Snapshot();
  out->AddRow({
      compressed ? Fmt("compressed (%llu ns/page)",
                       static_cast<unsigned long long>(
                           decompress_ns_per_page))
                 : "uncompressed",
      Fmt("%.1f%%", stats.HitRate() * 100),
      Fmt("%.0f", static_cast<double>(SimClock::Now()) /
                      static_cast<double>(kAccesses / 2)),
  });
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section(
      "E6a: replacement policies — hit rate vs actual simulated runtime "
      "(zipfian 0.9 trace over 8k pages)");
  Table a({"policy", "cache", "rtt", "threads", "hit_rate",
           "policy_ns/op", "sim_ns/op"});
  for (double rtt_factor : {1.0, 1000.0}) {
    Env env(rtt_factor);
    for (double frac : {0.05, 0.20}) {
      for (buffer::PolicyKind kind :
           {buffer::PolicyKind::kFifo, buffer::PolicyKind::kLru,
            buffer::PolicyKind::kLruK, buffer::PolicyKind::kTwoQ,
            buffer::PolicyKind::kClock, buffer::PolicyKind::kArc}) {
        RunPolicy(&a, env, kind, frac, rtt_factor, 1);
      }
    }
  }
  a.Print();

  Section("E6b: synchronization cost — 4 threads on one shared pool");
  Table b({"policy", "cache", "rtt", "threads", "hit_rate",
           "policy_ns/op", "sim_ns/op"});
  {
    Env env(1.0);
    for (buffer::PolicyKind kind :
         {buffer::PolicyKind::kLru, buffer::PolicyKind::kClock,
          buffer::PolicyKind::kArc}) {
      RunPolicy(&b, env, kind, 0.20, 1.0, 4);
    }
  }
  b.Print();

  Section("E6c: caching compressed pages (same local-memory budget)");
  Table c({"variant", "hit_rate", "sim_ns/op"});
  {
    Env env(1.0);
    RunCompressed(&c, env, false, 0);
    RunCompressed(&c, env, true, 500);     // light compression (LZ4-class)
    RunCompressed(&c, env, true, 5'000);   // heavy compression
  }
  c.Print();

  std::printf(
      "Claim check (paper Challenge #8): at disk-era gaps (1000x) hit "
      "rate dominates and ARC/LRU-K justify their bookkeeping; at the "
      "RDMA gap (~10x) policy software overhead is a visible share of "
      "total time, favoring cheap policies (CLOCK/FIFO) — 'focus on the "
      "actual running time instead of just cache hit rates'. Compressed "
      "caching helps only while decompression stays cheaper than the "
      "narrowed remote fetch ('light-weight compression is important').\n");
  return 0;
}
