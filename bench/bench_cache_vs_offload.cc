// Experiment E7 (DESIGN.md): caching vs. offloading, Challenge #9.
//
// An aggregate query (sum over a scan) can either pull data to the
// compute node (cache it locally, compute with fast cores) or push the
// function to the memory node (move only the result, compute with wimpy
// cores). We sweep network latency, memory-node CPU speed, and query
// repetition (cold vs. warm cache), and also saturate the memory node
// with concurrent offloads to expose queueing.

#include <memory>
#include <vector>

#include "bench_util.h"
#include "buffer/buffer_pool.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

constexpr uint64_t kNumTuples = 250'000;  // 8-byte tuples, ~2 MB
constexpr uint32_t kSumFn = 1;

struct Env {
  Env(double rtt_factor, double mem_cpu_factor) {
    dsm::ClusterOptions opts;
    opts.num_memory_nodes = 1;
    opts.memory_node.capacity_bytes = 64 << 20;
    opts.memory_node.cpu_cores = 2;
    opts.memory_node.cpu_speed_factor = mem_cpu_factor;
    opts.network = opts.network.WithRttFactor(rtt_factor);
    cluster = std::make_unique<dsm::Cluster>(opts);
    client = std::make_unique<dsm::DsmClient>(
        cluster.get(), cluster->AddComputeNode("bench"));
    data = *client->Alloc(kNumTuples * 8, 0);
    // Load tuples 1..N via host access (setup, untimed).
    char* base = cluster->memory_node(0)->base() + data.offset;
    for (uint64_t i = 0; i < kNumTuples; i++) {
      EncodeFixed64(base + i * 8, i + 1);
    }
    // Near-data aggregate: sum of the first `n` tuples.
    const uint64_t data_off = data.offset;
    cluster->memory_node(0)->RegisterOffload(
        kSumFn,
        [data_off](dsm::MemoryNode& node, std::string_view arg,
                   std::string* out) -> uint64_t {
          const uint64_t n = DecodeFixed64(arg.data());
          uint64_t sum = 0;
          for (uint64_t i = 0; i < n; i++) {
            sum += DecodeFixed64(node.base() + data_off + i * 8);
          }
          PutFixed64(out, sum);
          return 4 * n;  // nominal 4 ns/tuple before the wimpy-core factor
        });
  }

  std::unique_ptr<dsm::Cluster> cluster;
  std::unique_ptr<dsm::DsmClient> client;
  dsm::GlobalAddress data;
};

uint64_t ExpectedSum(uint64_t n) { return n * (n + 1) / 2; }

/// Pull-based: read tuples through the local cache and aggregate on the
/// (fast) compute node. Returns simulated ns per query.
double RunCaching(Env& env, uint64_t n, uint32_t repeats) {
  buffer::BufferPoolOptions opts;
  opts.capacity_bytes = kNumTuples * 8 * 2;  // cache fits the scan
  opts.shards = 4;
  opts.charge_policy_overhead = false;
  buffer::BufferPool pool(env.client.get(), opts);
  const rdma::CpuModel& cpu = env.cluster->compute_cpu();

  SimClock::Reset();
  std::vector<char> chunk(4096);
  for (uint32_t q = 0; q < repeats; q++) {
    uint64_t sum = 0;
    for (uint64_t off = 0; off < n * 8; off += chunk.size()) {
      const size_t len = std::min<uint64_t>(chunk.size(), n * 8 - off);
      (void)pool.Read(env.data.Plus(off), chunk.data(), len);
      for (size_t i = 0; i + 8 <= len; i += 8) {
        sum += DecodeFixed64(chunk.data() + i);
      }
      SimClock::Advance(len / 8 * cpu.per_tuple_ns / 8);  // fast cores
    }
    if (sum != ExpectedSum(n)) std::abort();
  }
  return static_cast<double>(SimClock::Now()) / repeats;
}

/// Push-based: invoke the near-data sum; only 8 bytes come back.
double RunOffload(Env& env, uint64_t n, uint32_t repeats) {
  SimClock::Reset();
  for (uint32_t q = 0; q < repeats; q++) {
    std::string arg, out;
    PutFixed64(&arg, n);
    (void)env.client->Offload(0, kSumFn, arg, &out);
    if (DecodeFixed64(out.data() + 0) != ExpectedSum(n)) std::abort();
  }
  return static_cast<double>(SimClock::Now()) / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section(
      "E7a: caching vs offloading — aggregate over 250k tuples "
      "(simulated ms per query)");
  Table a({"rtt", "mem-cpu slowdown", "queries", "caching", "offload",
           "winner"});
  for (double rtt : {1.0, 8.0, 64.0}) {
    for (double cpu_factor : {2.0, 8.0}) {
      Env env(rtt, cpu_factor);
      for (uint32_t repeats : {1u, 5u}) {
        const double cache_ns = RunCaching(env, kNumTuples, repeats);
        const double off_ns = RunOffload(env, kNumTuples, repeats);
        a.AddRow({Fmt("%.0fx", rtt), Fmt("%.0fx", cpu_factor),
                  repeats == 1 ? "1 (cold)" : "5 (warm)",
                  Fmt("%.2f ms", cache_ns / 1e6),
                  Fmt("%.2f ms", off_ns / 1e6),
                  cache_ns < off_ns ? "caching" : "offload"});
      }
    }
  }
  a.Print();

  Section(
      "E7b: memory-node CPU saturation — 4 compute clients offloading "
      "concurrently (queueing on 2 wimpy cores)");
  Table b({"clients", "offload ms/query (mean)"});
  for (uint32_t clients : {1u, 4u}) {
    Env env(1.0, 8.0);
    std::vector<std::unique_ptr<dsm::DsmClient>> extra;
    std::vector<dsm::DsmClient*> cls;
    cls.push_back(env.client.get());
    for (uint32_t i = 1; i < clients; i++) {
      extra.push_back(std::make_unique<dsm::DsmClient>(
          env.cluster.get(),
          env.cluster->AddComputeNode("c" + std::to_string(i))));
      cls.push_back(extra.back().get());
    }
    std::vector<uint64_t> ns(clients);
    ParallelFor(clients, [&](size_t c) {
      SimClock::Reset();
      for (int q = 0; q < 3; q++) {
        std::string arg, out;
        PutFixed64(&arg, kNumTuples);
        (void)cls[c]->Offload(0, kSumFn, arg, &out);
      }
      ns[c] = SimClock::Now() / 3;
    });
    uint64_t total = 0;
    for (uint64_t v : ns) total += v;
    b.AddRow({Fmt("%u", clients),
              Fmt("%.2f", static_cast<double>(total) / clients / 1e6)});
  }
  b.Print();

  std::printf(
      "Claim check (paper Challenge #9): fast networks favor caching — "
      "'if network latency is zero, it is favorable to bring data to "
      "local memory because compute nodes have better compute power'; "
      "slow networks and repeated cold scans favor offload; warm caches "
      "beat offload everywhere; and offload throughput collapses once "
      "the memory node's wimpy cores saturate (E7b queueing).\n");
  return 0;
}
