// Experiment E13 (DESIGN.md): RDMA verb microbenchmarks.
//
// Validates the simulated network model against the paper's reference
// numbers (Sec. 1: ConnectX-6, ~0.8 usec latency, 200 Gb/s) and quantifies
// the primitives the paper's design arguments lean on: one- vs two-sided
// verbs, atomics, doorbell batching, and the local:remote gap (~10x).
//
// Uses google-benchmark for the harness; the *reported* metric is
// simulated nanoseconds per op (counter "sim_ns_per_op"), which is
// deterministic and host-independent. Wall time measures simulator
// overhead only.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/sim_clock.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"

namespace {

using dsmdb::SimClock;
using dsmdb::dsm::Cluster;
using dsmdb::dsm::ClusterOptions;
using dsmdb::dsm::DsmBatchOp;
using dsmdb::dsm::DsmClient;
using dsmdb::dsm::GlobalAddress;

struct Env {
  Env() {
    ClusterOptions opts;
    opts.num_memory_nodes = 2;
    opts.memory_node.capacity_bytes = 64 << 20;
    cluster = std::make_unique<Cluster>(opts);
    client = std::make_unique<DsmClient>(cluster.get(),
                                         cluster->AddComputeNode("bench"));
    region = *client->Alloc(8 << 20, 0);
  }
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<DsmClient> client;
  GlobalAddress region;
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

void BM_OneSidedRead(benchmark::State& state) {
  Env& env = GetEnv();
  const size_t size = static_cast<size_t>(state.range(0));
  std::vector<char> buf(size);
  SimClock::Reset();
  const uint64_t t0 = SimClock::Now();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.client->Read(env.region, buf.data(), size));
    ops++;
  }
  state.counters["sim_ns_per_op"] = static_cast<double>(
      (SimClock::Now() - t0) / (ops == 0 ? 1 : ops));
  state.SetBytesProcessed(static_cast<int64_t>(ops * size));
}
BENCHMARK(BM_OneSidedRead)->Arg(8)->Arg(256)->Arg(4096)->Arg(65536);

void BM_OneSidedWrite(benchmark::State& state) {
  Env& env = GetEnv();
  const size_t size = static_cast<size_t>(state.range(0));
  std::vector<char> buf(size, 7);
  SimClock::Reset();
  const uint64_t t0 = SimClock::Now();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.client->Write(env.region, buf.data(), size));
    ops++;
  }
  state.counters["sim_ns_per_op"] = static_cast<double>(
      (SimClock::Now() - t0) / (ops == 0 ? 1 : ops));
}
BENCHMARK(BM_OneSidedWrite)->Arg(8)->Arg(4096);

void BM_RdmaCas(benchmark::State& state) {
  Env& env = GetEnv();
  SimClock::Reset();
  const uint64_t t0 = SimClock::Now();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.client->CompareAndSwap(env.region, 0, 0));
    ops++;
  }
  state.counters["sim_ns_per_op"] = static_cast<double>(
      (SimClock::Now() - t0) / (ops == 0 ? 1 : ops));
}
BENCHMARK(BM_RdmaCas);

void BM_RdmaFaa(benchmark::State& state) {
  Env& env = GetEnv();
  SimClock::Reset();
  const uint64_t t0 = SimClock::Now();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.client->FetchAndAdd(env.region, 1));
    ops++;
  }
  state.counters["sim_ns_per_op"] = static_cast<double>(
      (SimClock::Now() - t0) / (ops == 0 ? 1 : ops));
}
BENCHMARK(BM_RdmaFaa);

/// Doorbell batching: n 8-byte reads in one RTT vs n RTTs.
void BM_DoorbellBatchRead(benchmark::State& state) {
  Env& env = GetEnv();
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> out(n);
  std::vector<DsmBatchOp> ops;
  for (size_t i = 0; i < n; i++) {
    ops.push_back(DsmBatchOp{env.region.Plus(i * 4096), &out[i], 8});
  }
  SimClock::Reset();
  const uint64_t t0 = SimClock::Now();
  uint64_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.client->ReadBatch(ops));
    iters++;
  }
  state.counters["sim_ns_per_batch"] = static_cast<double>(
      (SimClock::Now() - t0) / (iters == 0 ? 1 : iters));
  state.counters["sim_ns_per_op"] =
      state.counters["sim_ns_per_batch"] / static_cast<double>(n);
}
BENCHMARK(BM_DoorbellBatchRead)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Async verb engine: pipeline-depth sweep. n 64-byte reads posted into one
/// CompletionQueue must complete in max(RTT) + n*post_overhead + transfer —
/// the sweep validates the closed form within 1% at every depth (the
/// acceptance criterion for the engine's overlap accounting).
void BM_PipelinedRead(benchmark::State& state) {
  Env& env = GetEnv();
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t kBytes = 64;
  const dsmdb::rdma::NetworkModel& m = env.cluster->fabric().model();
  std::vector<char> out(n * kBytes);
  SimClock::Reset();
  const uint64_t t0 = SimClock::Now();
  uint64_t iters = 0;
  for (auto _ : state) {
    dsmdb::dsm::DsmPipeline pipe(env.client.get());
    for (size_t i = 0; i < n; i++) {
      pipe.Read(env.region.Plus(i * 4096), out.data() + i * kBytes, kBytes);
    }
    benchmark::DoNotOptimize(pipe.WaitAll());
    iters++;
  }
  const double per_pipeline = static_cast<double>(
      (SimClock::Now() - t0) / (iters == 0 ? 1 : iters));
  const double model_ns = static_cast<double>(
      n * m.post_overhead_ns + m.rtt_ns + m.TransferNs(kBytes));
  const double closed_form =
      static_cast<double>(m.rtt_ns + n * m.post_overhead_ns);
  state.counters["sim_ns_per_pipeline"] = per_pipeline;
  state.counters["sim_ns_per_op"] = per_pipeline / static_cast<double>(n);
  state.counters["model_ns"] = model_ns;
  state.counters["closed_form_pct_err"] =
      100.0 * (per_pipeline - closed_form) / closed_form;
  state.counters["serial_ns"] =
      static_cast<double>(n) * static_cast<double>(m.OneSidedNs(kBytes));
}
BENCHMARK(BM_PipelinedRead)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

/// Two-sided RPC (echo) vs one-sided read of the same payload.
void BM_TwoSidedRpc(benchmark::State& state) {
  Env& env = GetEnv();
  const size_t size = static_cast<size_t>(state.range(0));
  env.cluster->fabric().RegisterRpcHandler(
      env.cluster->MemFabricId(0), 63,
      [size](std::string_view, std::string* resp) -> uint64_t {
        resp->assign(size, 'x');
        return 500;  // handler CPU
      });
  std::string resp;
  SimClock::Reset();
  const uint64_t t0 = SimClock::Now();
  uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.client->nic().Call(
        env.cluster->MemFabricId(0), 63, "", &resp));
    ops++;
  }
  state.counters["sim_ns_per_op"] = static_cast<double>(
      (SimClock::Now() - t0) / (ops == 0 ? 1 : ops));
}
BENCHMARK(BM_TwoSidedRpc)->Arg(8)->Arg(4096);

/// The local-vs-remote gap the buffer-management argument rests on.
void BM_LocalCopyBaseline(benchmark::State& state) {
  Env& env = GetEnv();
  const size_t size = static_cast<size_t>(state.range(0));
  const dsmdb::rdma::CpuModel& cpu = env.cluster->compute_cpu();
  SimClock::Reset();
  const uint64_t t0 = SimClock::Now();
  uint64_t ops = 0;
  for (auto _ : state) {
    SimClock::Advance(cpu.LocalCopyNs(size));
    ops++;
  }
  state.counters["sim_ns_per_op"] = static_cast<double>(
      (SimClock::Now() - t0) / (ops == 0 ? 1 : ops));
}
BENCHMARK(BM_LocalCopyBaseline)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
