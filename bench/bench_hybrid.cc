// Experiment E14 (DESIGN.md): the hybrid deployment of Sec. 7.
//
// "For large-scale applications that require cross data-center
// deployment, DSM-DBs alone would not work because RDMA is not applicable
// due to the long latency dominated by speed-of-light delays among
// data-centers. Thus, a hybrid design that combines shared-memory and
// shared-nothing is required with shared-memory within the same data
// center and shared-nothing across data centers."
//
// We build two independent DSM-DB data centers (each its own fabric,
// memory nodes, compute nodes) and partition the key space between them
// shared-nothing style. A coordinator executes transfers:
//  * intra-DC: a normal DSM-DB transaction (possibly 2PC inside the DC);
//  * cross-DC: two-phase commit across the data centers, each message
//    paying a modeled WAN latency (speed-of-light ~ms scale).
// The table sweeps the cross-DC fraction, showing why the paper insists
// on keeping RDMA-grade sharing *inside* a DC and partitioning across.

#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/coding.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "core/dsmdb.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

constexpr uint64_t kKeysPerDc = 20'000;
constexpr uint64_t kWanRttNs = 2'000'000;  // 2 ms inter-DC round trip

struct DataCenter {
  DataCenter() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 64 << 20;
    core::DbOptions dopts;
    dopts.architecture = core::Architecture::kCacheSharding;
    dopts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
    dopts.buffer.capacity_bytes = 512 * 4096;
    dopts.buffer.charge_policy_overhead = false;
    db = std::make_unique<core::DsmDb>(copts, dopts);
    for (int i = 0; i < 2; i++) nodes.push_back(db->AddComputeNode());
    table = *db->CreateTable("accounts", {64, kKeysPerDc});
    (void)db->FinishSetup();
    // Seed balances.
    std::string v(64, '\0');
    EncodeFixed64(v.data(), 1'000);
    for (uint64_t k = 0; k < kKeysPerDc; k += 997) {  // sparse seed is enough
      (void)nodes[0]->ExecuteOneShot(*table, {core::TxnOp::Write(k, v)});
    }
  }

  std::unique_ptr<core::DsmDb> db;
  std::vector<core::ComputeNode*> nodes;
  const core::Table* table;
};

/// One intra-DC transfer (both keys in the same data center).
bool IntraDcTransfer(DataCenter& dc, Random64& rng) {
  const uint64_t a = rng.Uniform(kKeysPerDc);
  uint64_t b = rng.Uniform(kKeysPerDc);
  if (b == a) b = (b + 1) % kKeysPerDc;
  const uint64_t lo = std::min(a, b), hi = std::max(a, b);
  Result<core::TxnResult> r = dc.nodes[0]->ExecuteOneShot(
      *dc.table,
      {core::TxnOp::Add(lo, -5), core::TxnOp::Add(hi, 5)});
  return r.ok() && r->committed;
}

/// One cross-DC transfer: 2PC where each participant leg is a one-shot
/// sub-transaction in its own data center, and every coordinator->DC
/// message pays the WAN round trip. (The remote DC's leg is prepared and
/// decided with two WAN exchanges — presumed-commit would save one.)
bool CrossDcTransfer(DataCenter& home, DataCenter& remote, Random64& rng) {
  const uint64_t a = rng.Uniform(kKeysPerDc);
  const uint64_t b = rng.Uniform(kKeysPerDc);

  // Phase 1: prepare both legs in parallel (coordinator in `home`).
  SimFanOut fan;
  // Local leg: executed within the home DC at RDMA speed.
  fan.BeginBranch();
  Result<core::TxnResult> local = home.nodes[0]->ExecuteOneShot(
      *home.table, {core::TxnOp::Add(a, -5)});
  // Remote leg: WAN hop + execution in the remote DC + WAN hop back.
  fan.BeginBranch();
  SimClock::Advance(kWanRttNs / 2);
  Result<core::TxnResult> rem = remote.nodes[0]->ExecuteOneShot(
      *remote.table, {core::TxnOp::Add(b, 5)});
  SimClock::Advance(kWanRttNs / 2);
  fan.Join();

  // Phase 2: decision to the remote DC (one more WAN round trip). Our
  // one-shot legs auto-commit, so this models the ack the coordinator
  // must still wait for before reporting commit.
  SimClock::Advance(kWanRttNs);
  return local.ok() && local->committed && rem.ok() && rem->committed;
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section(
      "E14: hybrid shared-memory (intra-DC) / shared-nothing (cross-DC) "
      "— 2 data centers, 2 ms WAN RTT, transfer workload");
  DataCenter dc0, dc1;

  Table table({"cross-DC fraction", "tput(txn/s)", "p50(ns)", "p99(ns)"});
  for (double cross : {0.0, 0.01, 0.05, 0.20, 1.0}) {
    Random64 rng(11);
    Histogram lat;
    SimClock::Reset();
    uint64_t committed = 0;
    const int kTxns = 600;
    for (int i = 0; i < kTxns; i++) {
      const uint64_t t0 = SimClock::Now();
      bool ok;
      if (rng.Bernoulli(cross)) {
        ok = CrossDcTransfer(dc0, dc1, rng);
      } else {
        ok = IntraDcTransfer(dc0, rng);
      }
      lat.Add(SimClock::Now() - t0);
      if (ok) committed++;
    }
    const double seconds = static_cast<double>(SimClock::Now()) / 1e9;
    table.AddRow({Fmt("%.0f%%", cross * 100),
                  Fmt("%.0f", static_cast<double>(committed) / seconds),
                  Fmt("%llu", static_cast<unsigned long long>(
                                  lat.Percentile(50))),
                  Fmt("%llu", static_cast<unsigned long long>(
                                  lat.Percentile(99)))});
  }
  table.Print();
  std::printf(
      "Claim check (paper Sec. 7): WAN round trips are ~1000x an RDMA "
      "round trip, so even a few percent of cross-DC transactions "
      "dominates latency and throughput — DSM sharing must stay inside a "
      "data center, with shared-nothing partitioning (and as few cross-"
      "partition transactions as possible) across data centers.\n");
  return 0;
}
