#ifndef DSMDB_BENCH_BENCH_UTIL_H_
#define DSMDB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/heat_map.h"
#include "obs/live_monitor.h"
#include "obs/obs_config.h"
#include "obs/skew_monitor.h"
#include "obs/stats_exporter.h"
#include "obs/trace.h"

namespace dsmdb::bench {

/// Shared bench harness. Construct first thing in main():
///
///   int main(int argc, char** argv) {
///     dsmdb::bench::BenchEnv env(argc, argv);
///     ...
///   }
///
/// Flags:
///   --obs=off       disable metrics (histograms + counters); default on.
///   --trace=<file>  enable span tracing and write Chrome trace_event JSON
///                   to <file> at exit (open in chrome://tracing/Perfetto).
///   --stats=<file>  write the stats JSON to <file> instead of the
///                   STATS_JSON stdout line.
///   --heat          enable the heat observatory (per-shard access heat +
///                   hot-key sketch + skew monitor; heat section in the
///                   stats JSON).
///   --monitor[=ns]  live per-interval workload table on stdout (implies
///                   --heat); optional sampling interval in simulated ns
///                   (default 200000).
///
/// At exit (metrics on) prints one machine-readable JSON block tagged
/// `STATS_JSON` merging every layer's histograms and counters (or writes
/// it to the --stats file), including the flight recorder's congestion
/// time-series when any samples were taken.
class BenchEnv {
 public:
  BenchEnv(int argc, char** argv) {
    bool metrics = true;
    bool heat = false;
    bool monitor = false;
    uint64_t monitor_interval_ns = 200'000;
    for (int i = 1; i < argc; i++) {
      const std::string arg = argv[i];
      if (arg == "--obs=off") {
        metrics = false;
      } else if (arg.rfind("--trace=", 0) == 0) {
        trace_path_ = arg.substr(8);
      } else if (arg.rfind("--stats=", 0) == 0) {
        stats_path_ = arg.substr(8);
      } else if (arg == "--heat") {
        heat = true;
      } else if (arg == "--monitor" || arg.rfind("--monitor=", 0) == 0) {
        heat = true;
        monitor = true;
        if (arg.size() > 10 && arg[9] == '=') {
          const uint64_t ns = std::strtoull(arg.c_str() + 10, nullptr, 10);
          if (ns > 0) monitor_interval_ns = ns;
        }
      } else {
        std::fprintf(stderr,
                     "%s: unknown flag %s (supported: --obs=off "
                     "--trace=<file> --stats=<file> --heat "
                     "--monitor[=interval_ns])\n",
                     argv[0], arg.c_str());
      }
    }
    obs::ObsConfig::SetEnabled(metrics);
    if (!trace_path_.empty()) obs::ObsConfig::SetTracing(true);
    if (heat) {
      heat_ = true;
      obs::HeatMap::Instance().Configure(obs::HeatOptions{});
      obs::SkewMonitorOptions skew;
      skew.interval_ns = monitor_interval_ns;
      obs::SkewMonitor::Instance().Configure(skew);
      if (monitor) obs::LiveMonitor::Instance().Attach({});
      // Dimensional congestion curves: the hottest heat shards become
      // labeled flight-recorder series (heat.shard{<idx>}).
      heat_family_ = obs::FlightRecorder::Instance().RegisterGaugeFamily(
          "heat.shard",
          [](uint64_t,
             std::vector<std::pair<std::string, double>>* out) {
            const obs::HeatSnapshot snap =
                obs::HeatMap::Instance().Snapshot(/*top_k=*/1);
            std::vector<std::pair<double, size_t>> by_heat;
            for (size_t s = 0; s < snap.shard_heat.size(); s++) {
              const auto& h = snap.shard_heat[s];
              const double heat_s =
                  h[static_cast<size_t>(obs::HeatKind::kRead)] +
                  h[static_cast<size_t>(obs::HeatKind::kWrite)] +
                  h[static_cast<size_t>(obs::HeatKind::kAtomic)];
              if (heat_s > 0) by_heat.emplace_back(heat_s, s);
            }
            std::sort(by_heat.rbegin(), by_heat.rend());
            if (by_heat.size() > 8) by_heat.resize(8);
            for (const auto& [heat_s, s] : by_heat) {
              out->emplace_back(std::to_string(s), heat_s);
            }
          });
    }
  }

  /// Merge additional per-bench results (e.g. DriverResult::ExportTo) into
  /// the final STATS_JSON block.
  obs::StatsExporter& exporter() { return exporter_; }

  /// Stamp the driver seed into the report's `meta` section (call from the
  /// bench once its DriverOptions are known).
  void SetSeed(uint64_t seed) { seed_ = seed; }

  ~BenchEnv() {
    if (heat_) {
      // Final interval flush so short runs still get one skew sample, then
      // freeze recording before teardown.
      obs::SkewMonitor::Instance().ForceSample(
          obs::SkewMonitor::Instance().Latest().t_ns +
          obs::SkewMonitor::Instance().options().interval_ns);
      obs::LiveMonitor::Instance().Detach();
      heat_family_.Release();
      obs::HeatMap::SetEnabled(false);
      obs::SkewMonitor::SetEnabled(false);
    }
    if (obs::ObsConfig::Enabled()) {
      exporter_.CollectGlobal();
      exporter_.StampRunMeta(seed_);
      const obs::FlightRecorder& fr = obs::FlightRecorder::Instance();
      if (fr.total_samples() > 0) exporter_.AddTimeseries(fr.Snapshot());
      if (heat_) {
        exporter_.AddHeat(obs::HeatMap::Instance().Snapshot(),
                          obs::SkewMonitor::Instance().Latest());
        exporter_.AddCounter("heat.unresolved",
                             obs::HeatMap::Instance().unresolved());
        exporter_.AddCounter("heat.skew_shifts",
                             obs::SkewMonitor::Instance().shift_count());
      }
      const std::string json = exporter_.ToJson();
      if (!stats_path_.empty()) {
        std::FILE* f = std::fopen(stats_path_.c_str(), "w");
        if (f != nullptr) {
          std::fwrite(json.data(), 1, json.size(), f);
          std::fclose(f);
          std::printf("stats: wrote %s\n", stats_path_.c_str());
        } else {
          std::fprintf(stderr, "stats: cannot open %s\n",
                       stats_path_.c_str());
        }
      } else {
        std::printf("\nSTATS_JSON %s\n", json.c_str());
      }
    }
    if (!trace_path_.empty()) {
      const obs::TraceCollector& tc = obs::TraceCollector::Instance();
      const Status s = tc.WriteChromeTrace(trace_path_);
      if (s.ok()) {
        std::printf("trace: wrote %s (%llu events dropped)\n",
                    trace_path_.c_str(),
                    static_cast<unsigned long long>(tc.dropped()));
      } else {
        std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
      }
    }
    std::fflush(stdout);
  }

  BenchEnv(const BenchEnv&) = delete;
  BenchEnv& operator=(const BenchEnv&) = delete;

 private:
  std::string trace_path_;
  std::string stats_path_;
  obs::StatsExporter exporter_;
  bool heat_ = false;
  uint64_t seed_ = 0;
  obs::FlightRecorder::Token heat_family_;
};

/// printf-style std::string.
inline std::string Fmt(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Minimal fixed-width table printer for experiment output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); c++) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); c++) {
        const std::string& cell = c < row.size() ? row[c] : "";
        std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); c++) {
      for (size_t i = 0; i < width[c] + 2; i++) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
  std::fflush(stdout);
}

}  // namespace dsmdb::bench

#endif  // DSMDB_BENCH_BENCH_UTIL_H_
