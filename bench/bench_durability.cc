// Experiment E2 (DESIGN.md): durability designs, Challenge #2.
//
// Approach #1: WAL on cloud storage — with and without group commit, and
// with command logging (smaller records).
// Approach #2: RAMCloud-style k-way memory-replicated log.
//
// Reports simulated commit latency and throughput under an update-heavy
// workload, plus storage flushes per commit (group-commit batching).

#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/dsmdb.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace {

using namespace dsmdb;          // NOLINT
using namespace dsmdb::bench;   // NOLINT

struct Config {
  std::string name;
  core::DurabilityMode durability;
  bool group_commit = true;
  uint32_t replication_factor = 3;
  /// false = pre-engine A/B baseline: eager per-RTT write locks and the
  /// two-sided RPC log append instead of the pipelined one-sided path.
  bool pipelined = true;
};

void RunOne(Table* out, const Config& cfg, uint32_t threads) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 4;
  copts.memory_node.capacity_bytes = 64 << 20;

  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kNoCacheNoSharding;
  dopts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  dopts.durability = cfg.durability;
  dopts.wal.group_commit = cfg.group_commit;
  dopts.replicated_log.replication_factor = cfg.replication_factor;
  dopts.cc.defer_write_locks = cfg.pipelined;
  dopts.replicated_log.one_sided = cfg.pipelined;
  if (cfg.durability == core::DurabilityMode::kCloudWal) {
    // Group-commit batching depends on committers overlapping in time;
    // the simulated flush completes instantly in real time, so give the
    // storage device a small real latency to recreate the overlap a real
    // 0.5 ms log device produces (see CloudStorageOptions).
    dopts.cloud.real_append_delay_us = 150;
  }

  core::DsmDb db(copts, dopts);
  core::ComputeNode* cn = db.AddComputeNode("cn0");
  const core::Table* t = *db.CreateTable("kv", {64, 10'000});
  (void)db.FinishSetup();

  workload::YcsbOptions yopts;
  yopts.num_keys = 10'000;
  yopts.write_fraction = 1.0;  // update-only: every commit must be durable
  yopts.zipf_theta = 0.5;
  yopts.ops_per_txn = 2;

  workload::DriverOptions dropts;
  dropts.threads_per_node = threads;
  dropts.txns_per_thread = 200;

  workload::DriverResult result = workload::RunDriver(
      {cn}, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        if (wl_tid != tid) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
          wl_tid = tid;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });

  std::string flushes = "-";
  if (cn->wal() != nullptr) {
    flushes = Fmt("%.2f", static_cast<double>(result.committed) /
                              static_cast<double>(cn->wal()->FlushCount()));
  }
  out->AddRow({
      cfg.name,
      Fmt("%u", threads),
      Fmt("%.0f", result.throughput_tps),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(50))),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(99))),
      flushes,
  });
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section(
      "E2: durability designs (update-only YCSB, 2 writes/txn, one "
      "compute node; simulated time)");
  Table table({"design", "threads", "tput(txn/s)", "p50(ns)", "p99(ns)",
               "commits/flush"});
  for (uint32_t threads : {1u, 8u}) {
    RunOne(&table,
           {"none (no durability)", core::DurabilityMode::kNone},
           threads);
    RunOne(&table,
           {"cloud-wal (per-commit flush)", core::DurabilityMode::kCloudWal,
            /*group_commit=*/false},
           threads);
    RunOne(&table,
           {"cloud-wal + group commit", core::DurabilityMode::kCloudWal,
            /*group_commit=*/true},
           threads);
    RunOne(&table,
           {"mem-replication k=2", core::DurabilityMode::kMemReplication,
            true, 2},
           threads);
    RunOne(&table,
           {"mem-replication k=3", core::DurabilityMode::kMemReplication,
            true, 3},
           threads);
    RunOne(&table,
           {"mem-repl k=3 (eager locks, rpc log)",
            core::DurabilityMode::kMemReplication, true, 3,
            /*pipelined=*/false},
           threads);
  }
  table.Print();
  std::printf(
      "Claim check (paper Sec. 3, Challenge #2): memory replication "
      "commits in a few RDMA RTTs (microseconds) while cloud-storage "
      "logging pays ~0.5 ms on the critical path; group commit recovers "
      "throughput (many commits per flush) but not latency. k=3 costs "
      "little more than k=2 because replica appends are parallel.\n");
  return 0;
}
