// Experiment E3 (DESIGN.md): availability designs, Challenge #3.
//
// Three ways to survive a memory-node crash, as the paper enumerates:
//  1. full in-memory replication (r copies)      — fast recovery, r x RAM;
//  2. erasure coding (k data + 1 parity)         — 1/k overhead, slower;
//  3. RAMCloud-style: single copy in DRAM, periodic checkpoints to cloud
//     storage + redo-log replay                  — 1x RAM, slowest.
//
// For each design we actually crash memory node 0, run the recovery path
// with real data movement, and report simulated recovery time plus the
// memory overhead factor.

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "log/log_record.h"
#include "log/recovery.h"
#include "storage/checkpoint.h"
#include "storage/cloud_storage.h"
#include "storage/erasure.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

std::unique_ptr<dsm::Cluster> MakeCluster(uint32_t nodes,
                                          uint64_t capacity) {
  dsm::ClusterOptions opts;
  opts.num_memory_nodes = nodes;
  opts.memory_node.capacity_bytes = capacity;
  return std::make_unique<dsm::Cluster>(opts);
}

std::string MakeData(size_t bytes) {
  std::string data(bytes, '\0');
  for (size_t i = 0; i < bytes; i += 64) {
    data[i] = static_cast<char>(i * 2654435761u >> 24);
  }
  return data;
}

/// Full replication: primary on node 0, replica on node 1. Recovery =
/// copy the replica onto the replacement node, page by page.
void RunReplication(Table* out, size_t data_bytes, uint32_t r) {
  auto cluster = MakeCluster(4, 64 << 20);
  dsm::DsmClient client(cluster.get(), cluster->AddComputeNode("rec"));
  const std::string data = MakeData(data_bytes);

  std::vector<dsm::GlobalAddress> copies;
  for (uint32_t i = 0; i < r; i++) {
    dsm::GlobalAddress a =
        *client.Alloc(data_bytes, static_cast<dsm::MemNodeId>(i));
    (void)client.Write(a, data.data(), data.size());
    copies.push_back(a);
  }

  cluster->CrashMemoryNode(0);
  cluster->RecoverMemoryNode(0);
  client.RefreshIncarnation(0);
  SimClock::Reset();
  // Re-allocate on the fresh node and copy from replica 1 in 64 KiB pages.
  dsm::GlobalAddress dst = *client.Alloc(data_bytes, 0);
  std::vector<char> page(64 * 1024);
  for (size_t off = 0; off < data_bytes; off += page.size()) {
    const size_t n = std::min(page.size(), data_bytes - off);
    (void)client.Read(copies[1].Plus(off), page.data(), n);
    (void)client.Write(dst.Plus(off), page.data(), n);
  }
  out->AddRow({Fmt("replication r=%u", r), Fmt("%zu MiB", data_bytes >> 20),
               Fmt("%.2fx", static_cast<double>(r)),
               Fmt("%.2f ms", SimClock::Now() / 1e6)});
}

/// Erasure coding: k data shards + 1 parity across k+1 nodes. Recovery =
/// read surviving shards + parity, XOR-decode, write rebuilt shard.
void RunErasure(Table* out, size_t data_bytes, uint32_t k) {
  auto cluster = MakeCluster(k + 1, 64 << 20);
  dsm::DsmClient client(cluster.get(), cluster->AddComputeNode("rec"));
  const std::string data = MakeData(data_bytes);
  const auto shards = storage::XorErasure::Split(data, k);
  const std::string parity = *storage::XorErasure::EncodeParity(shards);

  std::vector<dsm::GlobalAddress> locs;
  for (uint32_t i = 0; i < k; i++) {
    dsm::GlobalAddress a =
        *client.Alloc(shards[i].size(), static_cast<dsm::MemNodeId>(i));
    (void)client.Write(a, shards[i].data(), shards[i].size());
    locs.push_back(a);
  }
  dsm::GlobalAddress ploc =
      *client.Alloc(parity.size(), static_cast<dsm::MemNodeId>(k));
  (void)client.Write(ploc, parity.data(), parity.size());

  cluster->CrashMemoryNode(0);
  cluster->RecoverMemoryNode(0);
  client.RefreshIncarnation(0);
  SimClock::Reset();
  std::vector<std::string> surviving;
  for (uint32_t i = 1; i < k; i++) {
    std::string s(shards[i].size(), '\0');
    (void)client.Read(locs[i], s.data(), s.size());
    surviving.push_back(std::move(s));
  }
  std::string p(parity.size(), '\0');
  (void)client.Read(ploc, p.data(), p.size());
  const std::string rebuilt =
      *storage::XorErasure::Reconstruct(surviving, p);
  // XOR decode CPU cost: ~1 byte/ns per input shard.
  SimClock::Advance(rebuilt.size() * k / 4);
  dsm::GlobalAddress dst = *client.Alloc(rebuilt.size(), 0);
  (void)client.Write(dst, rebuilt.data(), rebuilt.size());
  out->AddRow({Fmt("erasure k=%u +1 parity", k),
               Fmt("%zu MiB", data_bytes >> 20),
               Fmt("%.2fx", (k + 1.0) / k),
               Fmt("%.2f ms", SimClock::Now() / 1e6)});
}

/// RAMCloud-style: single DRAM copy, checkpoint in cloud storage, redo log
/// tail. Recovery = fetch checkpoint object + replay `tail_fraction` of
/// the data as log records.
void RunRamCloudStyle(Table* out, size_t data_bytes, double tail_fraction) {
  auto cluster = MakeCluster(2, 64 << 20);
  dsm::DsmClient client(cluster.get(), cluster->AddComputeNode("rec"));
  storage::CloudStorage cloud;
  storage::Checkpointer ckpt(&cloud, "ckpt/mem0");
  const std::string data = MakeData(data_bytes);
  dsm::GlobalAddress primary = *client.Alloc(data_bytes, 0);
  (void)client.Write(primary, data.data(), data.size());
  (void)ckpt.Write(data);  // background checkpoint (not timed)

  // Post-checkpoint log tail: updates covering tail_fraction of the data.
  std::string log_image;
  const size_t record_bytes = 128;
  const auto tail_records = static_cast<uint64_t>(
      static_cast<double>(data_bytes) * tail_fraction / record_bytes);
  for (uint64_t i = 0; i < tail_records; i++) {
    log::LogRecord rec;
    rec.lsn = i + 1;
    rec.txn_id = i;
    rec.type = log::LogRecordType::kUpdate;
    rec.payload.assign(record_bytes, 'u');
    log::EncodeLogRecord(rec, &log_image);
    log::LogRecord commit;
    commit.lsn = tail_records + i + 1;
    commit.txn_id = i;
    commit.type = log::LogRecordType::kCommit;
    log::EncodeLogRecord(commit, &log_image);
  }
  (void)cloud.Append("wal/mem0", log_image);

  cluster->CrashMemoryNode(0);
  cluster->RecoverMemoryNode(0);
  client.RefreshIncarnation(0);
  SimClock::Reset();
  const auto snap = *ckpt.ReadLatest();
  dsm::GlobalAddress dst = *client.Alloc(snap.bytes.size(), 0);
  (void)client.Write(dst, snap.bytes.data(), snap.bytes.size());
  const std::string wal = *cloud.ReadStream("wal/mem0");
  uint64_t applied_bytes = 0;
  (void)log::RedoRecovery::ReplayFromImage(
      wal, [&](const log::LogRecord& rec) {
        // Apply each redo record to the rebuilt image (a remote write).
        (void)client.Write(dst.Plus(applied_bytes % data_bytes),
                           rec.payload.data(),
                           std::min<size_t>(rec.payload.size(), 128));
        applied_bytes += rec.payload.size();
      });
  out->AddRow({Fmt("ramcloud ckpt+%.0f%% log tail", tail_fraction * 100),
               Fmt("%zu MiB", data_bytes >> 20), "1.00x",
               Fmt("%.2f ms", SimClock::Now() / 1e6)});
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section("E3: availability designs — crash memory node 0, rebuild it");
  Table table({"design", "data", "memory overhead", "recovery time"});
  for (size_t mb : {4, 16}) {
    const size_t bytes = mb << 20;
    RunReplication(&table, bytes, 2);
    RunReplication(&table, bytes, 3);
    RunErasure(&table, bytes, 3);
    RunRamCloudStyle(&table, bytes, 0.1);
    RunRamCloudStyle(&table, bytes, 0.5);
  }
  table.Print();
  std::printf(
      "Claim check (paper Sec. 3, Challenge #3): replication recovers "
      "fastest but costs r x memory; erasure coding cuts the overhead to "
      "1/k at a longer recovery; the RAMCloud approach stores data once "
      "but pays slow cloud-storage reads plus log replay, growing with "
      "the log tail (hence: checkpoint more often / 'more research to "
      "speed up crash recovery').\n");
  return 0;
}
