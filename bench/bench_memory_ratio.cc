// Experiment E9 (DESIGN.md): the local-memory ratio sweep.
//
// Paper, Sec. 7: "As demonstrated in [73], caching 50% data in local
// memory achieves almost no performance drop. Obviously, there is a
// tradeoff between more local memory capacity and memory utilization."
//
// We sweep the compute node's cache budget from 1% to 100% of the data
// and measure YCSB throughput relative to the all-local ceiling.

#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/dsmdb.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

double RunOne(Table* out, double cache_fraction, double zipf) {
  const uint64_t num_keys = 16'384;
  const uint64_t data_bytes = num_keys * txn::RecordStride(64);

  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 256 << 20;

  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kCacheNoSharding;
  dopts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  dopts.buffer.capacity_bytes = std::max<uint64_t>(
      4096, static_cast<uint64_t>(cache_fraction * data_bytes));
  dopts.buffer.charge_policy_overhead = false;

  core::DsmDb db(copts, dopts);
  core::ComputeNode* cn = db.AddComputeNode();
  const core::Table* t = *db.CreateTable("ycsb", {64, num_keys});
  (void)db.FinishSetup();

  workload::YcsbOptions yopts;
  yopts.num_keys = num_keys;
  yopts.write_fraction = 0.1;
  yopts.zipf_theta = zipf;
  yopts.ops_per_txn = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = 2;
  dropts.txns_per_thread = 400;

  workload::DriverResult result = workload::RunDriver(
      {cn}, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        if (wl_tid != tid) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
          wl_tid = tid;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });

  out->AddRow({
      Fmt("%.0f%%", cache_fraction * 100),
      Fmt("%.2f", zipf),
      Fmt("%.0f", result.throughput_tps),
      Fmt("%.1f%%", cn->pool()->Snapshot().HitRate() * 100),
  });
  return result.throughput_tps;
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section(
      "E9: throughput vs local-memory ratio (YCSB 10% writes, 1 compute "
      "node x 2 threads; simulated time)");
  Table table({"cache size / data", "zipf", "tput(txn/s)", "hit_rate"});
  std::vector<double> fractions = {0.01, 0.05, 0.10, 0.25, 0.50, 0.75,
                                   1.00};
  std::vector<std::vector<double>> tputs;
  for (double zipf : {0.5, 0.99}) {
    std::vector<double> row;
    for (double f : fractions) {
      row.push_back(RunOne(&table, f, zipf));
    }
    tputs.push_back(row);
  }
  table.Print();
  for (size_t z = 0; z < tputs.size(); z++) {
    const double at50 = tputs[z][4];
    const double at100 = tputs[z].back();
    std::printf(
        "zipf=%s: 50%% cache reaches %.0f%% of the all-cached throughput.\n",
        z == 0 ? "0.5" : "0.99", 100.0 * at50 / at100);
  }
  std::printf(
      "Claim check (paper Sec. 7 / PolarDB Serverless [73]): caching "
      "about half the data should already get close to all-local "
      "performance, and far less suffices under skew — MD's flexibility "
      "in sizing local memory is what makes this tradeoff tunable.\n");
  return 0;
}
