// Experiment E1 (DESIGN.md): the Figure 3 architecture comparison the
// paper calls for in Challenge #4 — "The following three approaches to
// address the cache coherence challenge need to be systematically
// evaluated": (3a) no cache / no sharding, (3b) cache + software
// coherence, (3c) cache + logical sharding (2PC for cross-shard).
//
// Sweeps write fraction and zipfian skew; reports committed throughput in
// simulated time, abort rate, RDMA round trips per committed transaction,
// and cache hit rate.

#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/dsmdb.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace {

using namespace dsmdb;          // NOLINT
using namespace dsmdb::bench;   // NOLINT

struct Config {
  core::Architecture arch;
  double write_fraction;
  double zipf_theta;
};

void RunOne(Table* table, const Config& cfg) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 4;
  copts.memory_node.capacity_bytes = 64 << 20;

  core::DbOptions dopts;
  dopts.architecture = cfg.arch;
  dopts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  dopts.buffer.capacity_bytes = 1024 * 4096;
  dopts.buffer.charge_policy_overhead = false;

  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes;
  for (int i = 0; i < 4; i++) nodes.push_back(db.AddComputeNode());
  const core::Table* t = *db.CreateTable("ycsb", {64, 20'000});
  (void)db.FinishSetup();

  workload::YcsbOptions yopts;
  yopts.num_keys = 20'000;
  yopts.write_fraction = cfg.write_fraction;
  yopts.zipf_theta = cfg.zipf_theta;
  yopts.ops_per_txn = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = 2;
  dropts.txns_per_thread = 250;

  db.cluster().fabric().ResetStats();
  workload::DriverResult result = workload::RunDriver(
      nodes, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        if (wl_tid != tid) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
          wl_tid = tid;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });

  const auto verbs = db.cluster().fabric().TotalStats();
  double hit_rate = 0;
  int pools = 0;
  for (const auto& cn : db.compute_nodes()) {
    if (cn->pool() != nullptr) {
      hit_rate += cn->pool()->Snapshot().HitRate();
      pools++;
    }
  }
  if (pools > 0) hit_rate /= pools;
  uint64_t two_pc = 0;
  for (const auto& cn : db.compute_nodes()) {
    two_pc += cn->node_stats().two_pc_txns.load();
  }

  table->AddRow({
      std::string(core::ArchitectureName(cfg.arch)),
      Fmt("%.2f", cfg.write_fraction),
      Fmt("%.2f", cfg.zipf_theta),
      Fmt("%.0f", result.throughput_tps),
      Fmt("%.1f%%", result.AbortRate() * 100),
      Fmt("%.1f", static_cast<double>(verbs.RoundTrips()) /
                      static_cast<double>(result.committed)),
      pools > 0 ? Fmt("%.1f%%", hit_rate * 100) : "-",
      Fmt("%llu", static_cast<unsigned long long>(two_pc)),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(50))),
  });
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section(
      "E1: Figure-3 architectures (4 compute nodes x 2 threads, YCSB "
      "4 ops/txn, 20k keys, 2PL NO_WAIT; simulated time)");
  Table table({"architecture", "write_frac", "zipf", "tput(txn/s)",
               "aborts", "rtts/txn", "hit_rate", "2pc_txns", "p50(ns)"});
  for (double wf : {0.05, 0.50}) {
    for (double theta : {0.50, 0.99}) {
      for (core::Architecture arch :
           {core::Architecture::kNoCacheNoSharding,
            core::Architecture::kCacheNoSharding,
            core::Architecture::kCacheSharding}) {
        RunOne(&table, Config{arch, wf, theta});
      }
    }
  }
  table.Print();
  std::printf(
      "Claim check (paper Sec. 4): 3a pays a round trip per access; 3b "
      "recovers locality for read-heavy mixes but pays coherence on "
      "writes; 3c has the fewest remote ops for single-shard work but "
      "pays 2PC on cross-shard transactions.\n");
  return 0;
}
