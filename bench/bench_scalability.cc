// Experiment E5 (DESIGN.md): massive concurrency, Challenge #7.
//
// Throughput vs. number of compute nodes for a multi-master DSM-DB,
// at low and high contention, and the effect of the timestamp-oracle
// choice (centralized FAA vs. local clocks) — the paper's "distinguish
// local CC (within a compute node) and global CC (across nodes)".

#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/dsmdb.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

void RunOne(Table* out, uint32_t num_nodes, double zipf,
            txn::CcProtocolKind protocol, txn::OracleMode oracle,
            const std::string& label) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 4;
  copts.memory_node.capacity_bytes = 64 << 20;

  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kNoCacheNoSharding;
  dopts.cc.protocol = protocol;
  dopts.oracle = oracle;

  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes;
  for (uint32_t i = 0; i < num_nodes; i++) {
    nodes.push_back(db.AddComputeNode());
  }
  const core::Table* t = *db.CreateTable("ycsb", {64, 32'768});
  (void)db.FinishSetup();

  workload::YcsbOptions yopts;
  yopts.num_keys = 32'768;
  yopts.write_fraction = 0.3;
  yopts.zipf_theta = zipf;
  yopts.ops_per_txn = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = 2;
  dropts.txns_per_thread = 120;

  workload::DriverResult result = workload::RunDriver(
      nodes, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        if (wl_tid != tid) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
          wl_tid = tid;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });

  out->AddRow({
      label,
      Fmt("%u", num_nodes),
      Fmt("%.2f", zipf),
      Fmt("%.0f", result.throughput_tps),
      Fmt("%.1f%%", result.AbortRate() * 100),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(50))),
  });
}

}  // namespace

int main(int argc, char** argv) {
  dsmdb::bench::BenchEnv env(argc, argv);
  Section(
      "E5: multi-master scalability (2 worker threads per compute node, "
      "YCSB 30% writes; simulated time)");
  Table table({"config", "compute nodes", "zipf", "tput(txn/s)", "aborts",
               "p50(ns)"});
  for (double zipf : {0.0, 0.99}) {
    for (uint32_t n : {1u, 2u, 4u, 8u}) {
      RunOne(&table, n, zipf, txn::CcProtocolKind::kTwoPlNoWait,
             txn::OracleMode::kRdmaFaa, "2pl-nowait");
    }
  }
  // Oracle bottleneck study: TSO needs a timestamp per txn.
  for (uint32_t n : {1u, 4u, 8u}) {
    RunOne(&table, n, 0.0, txn::CcProtocolKind::kTso,
           txn::OracleMode::kRdmaFaa, "tso + central FAA oracle");
    RunOne(&table, n, 0.0, txn::CcProtocolKind::kTso,
           txn::OracleMode::kLocalClock, "tso + local clocks");
  }
  table.Print();
  std::printf(
      "Claim check (paper Challenge #7 + Sec. 2): multi-master DSM-DB "
      "scales with compute nodes under low contention (every node "
      "writes); high skew caps scaling via aborts. The centralized FAA "
      "timestamp generator adds a round trip per transaction and becomes "
      "a shared hot word as nodes grow — the paper's motivation for "
      "vector timestamps / clock sync.\n");
  return 0;
}
