// Experiment E5 (DESIGN.md): massive concurrency, Challenge #7.
//
// Throughput vs. number of compute nodes for a multi-master DSM-DB,
// at low and high contention, and the effect of the timestamp-oracle
// choice (centralized FAA vs. local clocks) — the paper's "distinguish
// local CC (within a compute node) and global CC (across nodes)".
//
// Experiment E15 (DESIGN.md §10): in-flight depth sweep. One worker
// thread multiplexes N cooperative transaction lanes (rt::Scheduler);
// a lane parked on a verb completion donates its core to siblings, so
// throughput should scale with depth until the core saturates with
// compute. The wire-overlap factor — total fabric wire-ns divided by
// total worker core-ns — measures how much network time is in flight
// per core-second: intra-txn batch fusion already lifts it above 1 at
// depth 1, and cross-lane multiplexing multiplies it until saturation.
//
// Flag --assert-depth-speedup=<X> makes the process exit nonzero unless
// the single-thread depth-8 YCSB-B run beats depth 1 by at least X
// (CI smoke for the scheduler's whole point).

#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "core/dsmdb.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace {

using namespace dsmdb;         // NOLINT
using namespace dsmdb::bench;  // NOLINT

void RunOne(Table* out, uint32_t num_nodes, double zipf,
            txn::CcProtocolKind protocol, txn::OracleMode oracle,
            const std::string& label) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 4;
  copts.memory_node.capacity_bytes = 64 << 20;

  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kNoCacheNoSharding;
  dopts.cc.protocol = protocol;
  dopts.oracle = oracle;

  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes;
  for (uint32_t i = 0; i < num_nodes; i++) {
    nodes.push_back(db.AddComputeNode());
  }
  const core::Table* t = *db.CreateTable("ycsb", {64, 32'768});
  (void)db.FinishSetup();

  workload::YcsbOptions yopts;
  yopts.num_keys = 32'768;
  yopts.write_fraction = 0.3;
  yopts.zipf_theta = zipf;
  yopts.ops_per_txn = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = 2;
  dropts.txns_per_thread = 120;

  workload::DriverResult result = workload::RunDriver(
      nodes, dropts,
      [&](core::ComputeNode* node, uint32_t tid, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_tid = UINT32_MAX;
        if (wl_tid != tid) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, tid + 1);
          wl_tid = tid;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });

  out->AddRow({
      label,
      Fmt("%u", num_nodes),
      Fmt("%.2f", zipf),
      Fmt("%.0f", result.throughput_tps),
      Fmt("%.1f%%", result.AbortRate() * 100),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(50))),
  });
}

/// One E15 cell: YCSB-B (95/5) on a single compute node, `threads`
/// workers each multiplexing `depth` transaction lanes. Returns the
/// committed-txn throughput in simulated txn/s.
double RunDepthCell(Table* out, uint32_t threads, uint32_t depth) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 64 << 20;

  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kNoCacheNoSharding;
  dopts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;

  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes = {db.AddComputeNode()};
  const core::Table* t = *db.CreateTable("ycsb", {64, 32'768});
  (void)db.FinishSetup();

  workload::YcsbOptions yopts;
  yopts.num_keys = 32'768;
  yopts.write_fraction = 0.05;  // YCSB-B
  yopts.zipf_theta = 0.7;
  yopts.ops_per_txn = 4;

  workload::DriverOptions dropts;
  dropts.threads_per_node = threads;
  dropts.txns_per_thread = 400;
  dropts.in_flight_depth = depth;

  Counter* wire = GlobalMetrics().GetCounter("fabric.network_ns");
  const uint64_t wire_before = wire->Get();

  workload::DriverResult result = workload::RunDriver(
      nodes, dropts,
      [&](core::ComputeNode* node, uint32_t lane, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        thread_local uint32_t wl_lane = UINT32_MAX;
        if (wl_lane != lane) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, lane + 1);
          wl_lane = lane;
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });

  // Wire time issued per simulated core-second (0 when --obs=off since
  // the fabric counters are gated on ObsConfig).
  const double core_ns = result.sim_seconds * 1e9 * threads;
  const double overlap =
      core_ns == 0 ? 0
                   : static_cast<double>(wire->Get() - wire_before) / core_ns;

  out->AddRow({
      Fmt("%u", threads),
      Fmt("%u", depth),
      Fmt("%.0f", result.throughput_tps),
      Fmt("%.2fx", overlap),
      Fmt("%.1f%%", result.AbortRate() * 100),
      Fmt("%llu", static_cast<unsigned long long>(
                      result.latency_ns.Percentile(50))),
  });
  return result.throughput_tps;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the flags this bench owns before BenchEnv sees (and warns
  // about) them.
  double assert_speedup = 0;
  std::vector<char*> fwd = {argv[0]};
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--assert-depth-speedup=", 23) == 0) {
      assert_speedup = std::atof(argv[i] + 23);
    } else {
      fwd.push_back(argv[i]);
    }
  }
  dsmdb::bench::BenchEnv env(static_cast<int>(fwd.size()), fwd.data());
  Section(
      "E5: multi-master scalability (2 worker threads per compute node, "
      "YCSB 30% writes; simulated time)");
  Table table({"config", "compute nodes", "zipf", "tput(txn/s)", "aborts",
               "p50(ns)"});
  for (double zipf : {0.0, 0.99}) {
    for (uint32_t n : {1u, 2u, 4u, 8u}) {
      RunOne(&table, n, zipf, txn::CcProtocolKind::kTwoPlNoWait,
             txn::OracleMode::kRdmaFaa, "2pl-nowait");
    }
  }
  // Oracle bottleneck study: TSO needs a timestamp per txn.
  for (uint32_t n : {1u, 4u, 8u}) {
    RunOne(&table, n, 0.0, txn::CcProtocolKind::kTso,
           txn::OracleMode::kRdmaFaa, "tso + central FAA oracle");
    RunOne(&table, n, 0.0, txn::CcProtocolKind::kTso,
           txn::OracleMode::kLocalClock, "tso + local clocks");
  }
  table.Print();
  std::printf(
      "Claim check (paper Challenge #7 + Sec. 2): multi-master DSM-DB "
      "scales with compute nodes under low contention (every node "
      "writes); high skew caps scaling via aborts. The centralized FAA "
      "timestamp generator adds a round trip per transaction and becomes "
      "a shared hot word as nodes grow — the paper's motivation for "
      "vector timestamps / clock sync.\n");

  Section(
      "E15: in-flight depth sweep (YCSB-B 95/5, 1 compute node, 2PL "
      "no-wait; simulated time)");
  Table dt({"threads", "depth", "tput(txn/s)", "wire-overlap", "aborts",
            "p50(ns)"});
  double d1 = 0, d8 = 0;
  for (uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double tput = RunDepthCell(&dt, 1, depth);
    if (depth == 1) d1 = tput;
    if (depth == 8) d8 = tput;
  }
  for (uint32_t threads : {2u, 4u}) {
    for (uint32_t depth : {1u, 8u}) RunDepthCell(&dt, threads, depth);
  }
  dt.Print();
  const double speedup = d1 == 0 ? 0 : d8 / d1;
  std::printf(
      "depth-8 speedup over depth-1 (single thread): %.2fx\n"
      "Claim check (paper Challenge #7): one worker multiplexing "
      "cooperative lanes hides verb RTTs behind sibling compute — "
      "throughput per core scales with depth until the core is "
      "compute-bound, exactly the coroutine argument for thousands of "
      "in-flight transactions per thread.\n",
      speedup);
  if (assert_speedup > 0 && speedup < assert_speedup) {
    std::fprintf(stderr,
                 "FAIL: depth-8 speedup %.2fx < required %.2fx\n", speedup,
                 assert_speedup);
    return 1;
  }
  return 0;
}
