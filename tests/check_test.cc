#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/checker.h"
#include "common/coding.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "core/table.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "dsm/lease.h"
#include "txn/cc_protocol.h"
#include "txn/data_accessor.h"
#include "txn/rdma_lock.h"

namespace dsmdb::check {
namespace {

// Runs in every configuration: the management surface must be callable
// whether or not the instrumentation was compiled in.
TEST(CheckerSurfaceTest, SafeInAllBuilds) {
  if (!Checker::Compiled()) {
    EXPECT_FALSE(Checker::Enabled());
    EXPECT_EQ(Checker::ReportCount(), 0u);
    EXPECT_TRUE(Checker::TakeReports().empty());
    Checker::Reset();  // must be a no-op, not a crash
  } else {
    EXPECT_TRUE(Checker::Enabled());
  }
}

/// Everything below exercises the checker against seeded protocol bugs,
/// so it only makes sense in a -DDSMDB_CHECK=ON build. Reports are
/// collected (not fatal) and drained between tests.
class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Checker::Compiled()) {
      GTEST_SKIP() << "built without DSMDB_CHECK=ON";
    }
    Checker::SetAbortOnReport(false);
    Checker::Reset();
  }

  void TearDown() override {
    if (!Checker::Compiled()) return;
    (void)Checker::TakeReports();
    Checker::Reset();
    Checker::SetAbortOnReport(true);
  }

  void MakeCluster(uint32_t memory_nodes = 1) {
    dsm::ClusterOptions opts;
    opts.num_memory_nodes = memory_nodes;
    cluster_ = std::make_unique<dsm::Cluster>(opts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    SimClock::Reset();
  }

  dsm::GlobalAddress AllocZeroed(uint64_t bytes) {
    dsm::GlobalAddress addr = *client_->Alloc(bytes);
    const std::string zeros(bytes, '\0');
    EXPECT_TRUE(client_->Write(addr, zeros.data(), bytes).ok());
    return addr;
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
};

// Seeded bug #1: a reader that skips the record lock. The writer mutates
// the value word under an RdmaSpinLock; the reader goes straight to the
// word with a one-sided READ. Real TSan sees nothing (sim_mem is
// word-atomic); the protocol checker must flag the pair — under either
// interleaving, since neither side's clock ever covers the other.
TEST_F(CheckTest, DetectsUnlockedReaderAgainstLockedWriter) {
  MakeCluster();
  const dsm::GlobalAddress record = AllocZeroed(24);
  const dsm::GlobalAddress lock_word = record;
  const dsm::GlobalAddress value_word = record.Plus(16);
  txn::RdmaSpinLock lock(client_.get());

  ParallelFor(2, [&](size_t t) {
    SimClock::Reset();
    if (t == 0) {
      ASSERT_TRUE(lock.Acquire(lock_word, 1).ok());
      const uint64_t v = 42;
      ASSERT_TRUE(client_->Write(value_word, &v, 8).ok());
      ASSERT_TRUE(lock.Release(lock_word, 1).ok());
    } else {
      // BUG (seeded): reads the protected value without the lock.
      uint64_t v = 0;
      ASSERT_TRUE(client_->Read(value_word, &v, 8).ok());
    }
  });

  std::vector<Report> reports = Checker::TakeReports();
  ASSERT_EQ(reports.size(), 1u) << "expected exactly the seeded race";
  const Report& r = reports[0];
  EXPECT_EQ(r.kind, ReportKind::kDataRace);
  // The report must carry both sides of the access pair, actionably.
  EXPECT_NE(r.first.tid, r.second.tid);
  EXPECT_TRUE(r.first.is_write || r.second.is_write);
  EXPECT_NE(r.message.find("protocol data race"), std::string::npos);
  EXPECT_NE(r.message.find("span"), std::string::npos);
}

// Seeded bug #2: AB/BA blocking-lock acquisition. The lock-order graph is
// global, so the inversion is caught even when the two orders never
// overlap in time — lockdep's whole point.
TEST_F(CheckTest, DetectsLockOrderInversion) {
  MakeCluster();
  const dsm::GlobalAddress a = AllocZeroed(8);
  const dsm::GlobalAddress b = AllocZeroed(8);
  txn::RdmaSpinLock lock(client_.get());

  ASSERT_TRUE(lock.Acquire(a, 1).ok());
  ASSERT_TRUE(lock.Acquire(b, 1).ok());  // graph learns a -> b
  ASSERT_TRUE(lock.Release(b, 1).ok());
  ASSERT_TRUE(lock.Release(a, 1).ok());
  EXPECT_EQ(Checker::ReportCount(), 0u);

  // BUG (seeded): the reverse order on the same two words.
  ASSERT_TRUE(lock.Acquire(b, 2).ok());
  ASSERT_TRUE(lock.Acquire(a, 2).ok());  // b -> a closes the cycle
  ASSERT_TRUE(lock.Release(a, 2).ok());
  ASSERT_TRUE(lock.Release(b, 2).ok());

  std::vector<Report> reports = Checker::TakeReports();
  ASSERT_EQ(reports.size(), 1u) << "expected exactly the seeded inversion";
  EXPECT_EQ(reports[0].kind, ReportKind::kLockCycle);
  EXPECT_NE(reports[0].message.find("lock-order inversion"),
            std::string::npos);
  EXPECT_NE(reports[0].message.find("->"), std::string::npos);
}

// Try-locks never create lock-order edges: AB/BA with TryAcquire is a
// legal no-wait pattern (the loser aborts instead of blocking).
TEST_F(CheckTest, TryLocksDoNotFeedLockdep) {
  MakeCluster();
  const dsm::GlobalAddress a = AllocZeroed(8);
  const dsm::GlobalAddress b = AllocZeroed(8);
  txn::RdmaSpinLock lock(client_.get());

  ASSERT_TRUE(lock.TryAcquire(a, 1).ok());
  ASSERT_TRUE(lock.TryAcquire(b, 1).ok());
  ASSERT_TRUE(lock.Release(b, 1).ok());
  ASSERT_TRUE(lock.Release(a, 1).ok());
  ASSERT_TRUE(lock.TryAcquire(b, 2).ok());
  ASSERT_TRUE(lock.TryAcquire(a, 2).ok());
  ASSERT_TRUE(lock.Release(a, 2).ok());
  ASSERT_TRUE(lock.Release(b, 2).ok());

  EXPECT_EQ(Checker::ReportCount(), 0u);
}

// Lease reclaim vs lockdep: when a peer CAS-frees an expired holder's lock
// word, (a) the reclaim CAS itself is try-lock traffic (it runs inside the
// reclaimer's blocking acquisition loop but frees a *stranger's* word — it
// must not become a lock-order edge), and (b) the doomed holder's failed
// release must still drop the word from its held set, or every later
// acquisition on that thread grows false edges out of a lock it no longer
// owns — a false inversion on the next reverse-order pair.
TEST_F(CheckTest, LeaseReclaimDoesNotPoisonLockdep) {
  MakeCluster();
  std::unique_ptr<dsm::DsmClient> crashed = std::make_unique<dsm::DsmClient>(
      cluster_.get(), cluster_->AddComputeNode("cn-crashed"));
  const dsm::GlobalAddress w = AllocZeroed(8);
  const dsm::GlobalAddress x = AllocZeroed(8);

  const dsm::GlobalAddress table = *dsm::LeaseManager::CreateTable(
      client_.get());
  dsm::LeaseManager::Options lopts;
  lopts.table = table;
  dsm::LeaseManager leases_live(client_.get(), lopts);
  dsm::LeaseManager leases_crashed(crashed.get(), lopts);
  client_->SetLeaseManager(&leases_live);
  crashed->SetLeaseManager(&leases_crashed);

  // The doomed node leases, takes W... and "crashes" (stops heartbeating).
  txn::RdmaSpinLock crashed_lock(crashed.get());
  ASSERT_TRUE(leases_crashed.Heartbeat().ok());
  ASSERT_TRUE(crashed_lock.Acquire(w, 1).ok());
  SimClock::Advance(2 * lopts.lease_ns);

  // The live node's blocking acquisition reclaims the orphaned word.
  txn::RdmaSpinLock live_lock(client_.get());
  ASSERT_TRUE(live_lock.Acquire(w, 2).ok());
  ASSERT_TRUE(live_lock.Release(w, 2).ok());

  // The doomed holder resurfaces: its release fails benignly (the word
  // moved under it) — and must erase W from this thread's held set.
  EXPECT_FALSE(crashed_lock.Release(w, 1).ok());

  // No stale W entry may leak into lock-order edges: W after X here is the
  // only real ordering, and a leftover held W would have recorded W -> X
  // during the first acquisition below, turning it into an inversion.
  ASSERT_TRUE(live_lock.Acquire(x, 3).ok());
  ASSERT_TRUE(live_lock.Release(x, 3).ok());
  ASSERT_TRUE(live_lock.Acquire(x, 4).ok());
  ASSERT_TRUE(live_lock.Acquire(w, 4).ok());
  ASSERT_TRUE(live_lock.Release(w, 4).ok());
  ASSERT_TRUE(live_lock.Release(x, 4).ok());

  std::vector<Report> reports = Checker::TakeReports();
  std::string first = reports.empty() ? "" : reports[0].message;
  EXPECT_EQ(reports.size(), 0u) << "first report:\n" << first;
  client_->SetLeaseManager(nullptr);
  crashed->SetLeaseManager(nullptr);
}

// The hold-while-posting-verb lint: a two-sided call from inside a
// latched section is flagged (a peer's handler may call back in and
// self-deadlock); one-sided verbs in the same zone are fine.
TEST_F(CheckTest, FlagsTwoSidedCallInNoCallZone) {
  MakeCluster();
  const dsm::GlobalAddress word = AllocZeroed(8);
  {
    NoCallZone zone("check_test.zone");
    uint64_t v = 0;
    ASSERT_TRUE(client_->Read(word, &v, 8).ok());  // one-sided: allowed
    EXPECT_EQ(Checker::ReportCount(), 0u);
    (void)client_->Alloc(64);  // two-sided kSvcAlloc: flagged
  }
  std::vector<Report> reports = Checker::TakeReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ReportKind::kCallInNoCallZone);
  EXPECT_NE(reports[0].message.find("check_test.zone"), std::string::npos);
}

// Race reports name the host-word-aligned offset: two conflicting accesses
// whose request offsets are not 8-aligned must still print the same
// aligned node/offset for the word they collided on.
TEST_F(CheckTest, RaceReportsUseWordAlignedOffsets) {
  MakeCluster();
  const dsm::GlobalAddress rec = AllocZeroed(16);

  ParallelFor(2, [&](size_t t) {
    SimClock::Reset();
    if (t == 0) {
      const uint64_t v = 7;
      ASSERT_TRUE(client_->Write(rec.Plus(4), &v, 8).ok());
    } else {
      uint64_t v = 0;
      ASSERT_TRUE(client_->Read(rec.Plus(2), &v, 8).ok());
    }
  });

  std::vector<Report> reports = Checker::TakeReports();
  ASSERT_GE(reports.size(), 1u) << "expected the seeded unaligned race";
  for (const Report& r : reports) {
    EXPECT_EQ(r.kind, ReportKind::kDataRace);
    EXPECT_EQ(r.first.offset % 8, 0u);
    EXPECT_EQ(r.first.offset, r.second.offset)
        << "both sides must report the aligned host word they collided on";
  }
}

// Labels are recorded for the first 8 NoCallZone levels only; a call at
// depth 9+ must report a sentinel, not an outer zone's (or stale) label.
TEST_F(CheckTest, DeepNoCallNestingReportsSentinel) {
  MakeCluster();
  std::vector<std::unique_ptr<NoCallZone>> zones;
  for (int i = 0; i < 9; i++) {
    zones.push_back(std::make_unique<NoCallZone>("check_test.outer"));
  }
  (void)client_->Alloc(64);  // two-sided kSvcAlloc: flagged at depth 9
  zones.clear();

  std::vector<Report> reports = Checker::TakeReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ReportKind::kCallInNoCallZone);
  EXPECT_EQ(reports[0].message.find("check_test.outer"), std::string::npos)
      << "must not attribute the call to a non-innermost zone";
  EXPECT_NE(reports[0].message.find("nested deeper"), std::string::npos);
}

// ---------------------------------------------------------------------------
// False-positive guard: all six CC protocols run a contended read-modify-
// write workload under the checker and must stay silent. This is the
// regression net for the happens-before model in DESIGN.md §7.
// ---------------------------------------------------------------------------

struct ProtocolCase {
  const char* name;
  txn::CcOptions cc;
};

std::vector<ProtocolCase> AllProtocolCases() {
  std::vector<ProtocolCase> cases;
  {
    txn::CcOptions cc;
    cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
    cases.push_back({"TwoPlNoWait", cc});
  }
  {
    txn::CcOptions cc;
    cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
    cc.lock_mode = txn::TwoPlLockMode::kSharedExclusive;
    cases.push_back({"TwoPlNoWaitSharedExclusive", cc});
  }
  {
    txn::CcOptions cc;
    cc.protocol = txn::CcProtocolKind::kTwoPlWaitDie;
    cases.push_back({"TwoPlWaitDie", cc});
  }
  {
    txn::CcOptions cc;
    cc.protocol = txn::CcProtocolKind::kOcc;
    cases.push_back({"Occ", cc});
  }
  {
    txn::CcOptions cc;
    cc.protocol = txn::CcProtocolKind::kTso;
    cases.push_back({"Tso", cc});
  }
  {
    txn::CcOptions cc;
    cc.protocol = txn::CcProtocolKind::kMvcc;
    cases.push_back({"MvccSi", cc});
  }
  return cases;
}

TEST_F(CheckTest, AllProtocolsRunCleanUnderChecker) {
  constexpr uint32_t kValueSize = 16;
  constexpr uint64_t kNumKeys = 16;
  constexpr size_t kThreads = 4;
  constexpr int kTxnsPerThread = 40;

  for (const ProtocolCase& pc : AllProtocolCases()) {
    SCOPED_TRACE(pc.name);
    {
      MakeCluster(2);
      txn::DirectAccessor accessor(client_.get());
      txn::TimestampOracle oracle(client_.get(), txn::OracleMode::kRdmaFaa,
                                  txn::TimestampOracle::DefaultCounter());
      core::Table table(
          *core::Table::Create(client_.get(), 0, {kValueSize, kNumKeys}));
      txn::NoopLogSink sink;
      std::unique_ptr<txn::CcManager> manager = txn::MakeCcManager(
          pc.cc, client_.get(), &accessor, &oracle, &sink);

      ParallelFor(kThreads, [&](size_t t) {
        SimClock::Reset();
        for (int i = 0; i < kTxnsPerThread; i++) {
          const uint64_t k1 = (t * 7 + static_cast<uint64_t>(i)) % kNumKeys;
          const uint64_t k2 =
              (t * 3 + static_cast<uint64_t>(i) * 5 + 1) % kNumKeys;
          for (int attempt = 0; attempt < 10'000; attempt++) {
            Result<std::unique_ptr<txn::Transaction>> txn =
                manager->Begin();
            ASSERT_TRUE(txn.ok());
            std::string v;
            Status s = (*txn)->Read(table.RefFor(k1), &v);
            if (s.IsAborted()) continue;
            ASSERT_TRUE(s.ok()) << s;
            std::string next(kValueSize, '\0');
            EncodeFixed64(next.data(), DecodeFixed64(v.data()) + 1);
            s = (*txn)->Write(table.RefFor(k2), next);
            if (s.IsAborted()) continue;
            ASSERT_TRUE(s.ok()) << s;
            s = (*txn)->Commit();
            if (s.IsAborted()) continue;
            ASSERT_TRUE(s.ok()) << s;
            break;
          }
        }
      });

      std::vector<Report> reports = Checker::TakeReports();
      std::string first = reports.empty() ? "" : reports[0].message;
      EXPECT_EQ(reports.size(), 0u) << "first report:\n" << first;
    }
    // The cluster is gone; drop shadow/lock state before the next
    // protocol reuses the same host addresses.
    Checker::Reset();
  }
}

}  // namespace
}  // namespace dsmdb::check
